package socialscope

// Engine-facade observability: every engine resolves its metric
// handles once at construction (from Config.Obs, defaulting to the
// process-global obs.Default registry) and the hot query path performs
// only atomic updates — no locks, no map lookups. Tracing rides the
// request context: when a serving layer attaches an obs.Span, QueryCtx
// annotates it with the same work report it returns in Response.Stats.

import (
	"sync/atomic"
	"time"

	"socialscope/internal/obs"
)

// engineMetrics is the facade's registry wiring. Handles are shared by
// every engine instrumenting into the same registry (several engines
// in one test process accumulate; gauges are last-writer-wins), which
// is exactly the per-process semantics /metrics exposes.
type engineMetrics struct {
	reg        *obs.Registry
	version    *obs.Gauge     // ss_snapshot_version
	lag        *obs.Gauge     // ss_replication_lag_records
	applies    *obs.Counter   // ss_engine_applies_total
	applyBatch *obs.Histogram // ss_engine_apply_batch_size
	queries    [4]*obs.Counter
	fusion     *obs.Counter
	postings   *obs.Histogram
	exact      *obs.Histogram

	// publishNanos is the wall time of the last RCU state publish,
	// backing the snapshot-age gauge.
	publishNanos atomic.Int64
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		reg = obs.Default
	}
	m := &engineMetrics{
		reg: reg,
		version: reg.Gauge("ss_snapshot_version",
			"engine state version the RCU snapshot serves (bumped by Apply and Analyze)"),
		lag: reg.Gauge("ss_replication_lag_records",
			"confirmed-but-unapplied WAL records on a follower (0 on leaders)"),
		applies: reg.Counter("ss_engine_applies_total",
			"mutation batches folded into the engine (live and replayed)"),
		applyBatch: reg.Histogram("ss_engine_apply_batch_size",
			"mutations per applied batch", obs.ExpBuckets(1, 2, 12)),
		fusion: reg.CounterVec("ss_queries_total",
			"queries answered, by evaluation strategy", "strategy").With("fusion"),
		postings: reg.Histogram("ss_query_postings_scanned",
			"sorted posting-list accesses per index-backed query", obs.ExpBuckets(1, 4, 10)),
		exact: reg.Histogram("ss_query_exact_scores",
			"exact rescoring computations per index-backed query", obs.ExpBuckets(1, 4, 8)),
	}
	qv := reg.CounterVec("ss_queries_total", "queries answered, by evaluation strategy", "strategy")
	for _, s := range []TopKStrategy{TopKOff, TopKExhaustive, TopKTA, TopKNRA} {
		m.queries[s] = qv.With(s.String())
	}
	reg.GaugeFunc("ss_engine_snapshot_age_seconds",
		"seconds since the last RCU state publish", func() float64 {
			ns := m.publishNanos.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	return m
}

// publish makes st current and keeps the version and snapshot-age
// metrics in step with the RCU pointer.
func (e *Engine) publish(st *engineState) {
	e.state.Store(st)
	e.met.version.SetUint(st.version)
	e.met.publishNanos.Store(time.Now().UnixNano())
}

// recordQuery folds one evaluation's work report into the metrics and,
// when the request context carries a span, annotates it with the same
// fields Response.Stats reports.
func (e *Engine) recordQuery(sp *obs.Span, stats *SearchStats, version uint64) {
	if stats == nil {
		e.met.fusion.Inc()
		sp.SetString("strategy", "fusion")
		sp.SetUint("snapshot_version", version)
		return
	}
	e.met.queries[stats.Strategy].Inc()
	e.met.postings.Observe(float64(stats.PostingsScanned))
	e.met.exact.Observe(float64(stats.ExactScores))
	sp.SetString("strategy", stats.Strategy.String())
	sp.SetUint("snapshot_version", stats.SnapshotVersion)
	sp.SetInt("postings_scanned", int64(stats.PostingsScanned))
	sp.SetInt("exact_scores", int64(stats.ExactScores))
	sp.SetInt("candidates", int64(stats.Candidates))
	sp.SetBool("early_terminated", stats.EarlyTerminated)
}
