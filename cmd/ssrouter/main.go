// Command ssrouter fronts a leader + N follower ssserve instances with
// SocialScope's fault-tolerant read router: health-check-driven
// membership, budgeted retries with jittered backoff, hedged requests,
// per-backend circuit breakers, a monotonic-read consistency token with
// explicit stale degradation, and automatic leader failover via
// POST /promote.
//
// Usage:
//
//	ssrouter -addr :8090 -backends localhost:8080,localhost:8081,localhost:8082
//
// Endpoints (proxied): /search, /query, /recommend, /apply, /stats.
// Router-local: GET /healthz (router health), GET /routerz (routing
// view and fault counters), GET /metrics (Prometheus text exposition).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"socialscope/internal/obs"
	"socialscope/internal/route"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated ssserve addresses (host:port or URLs); roles are discovered")
	tryTimeout := flag.Duration("trytimeout", route.DefaultTryTimeout, "per-try deadline against one backend")
	retries := flag.Int("retries", route.DefaultRetries, "retries after a failed try (0 = no retries)")
	hedge := flag.Bool("hedge", true, "hedge slow reads to a second backend")
	hedgeQ := flag.Float64("hedgequantile", route.DefaultHedgeQuantile, "latency quantile that triggers a hedge")
	healthEvery := flag.Duration("healthevery", route.DefaultHealthEvery, "health-check interval")
	staleWait := flag.Duration("stalewait", route.DefaultStalenessWait, "budget for satisfying the read token before serving stale")
	failover := flag.Bool("failover", true, "promote a follower automatically when the leader dies")
	failoverAfter := flag.Int("failoverafter", route.DefaultFailoverAfter, "consecutive failed leader health checks that trigger failover")
	breakerFails := flag.Int("breakerfails", route.DefaultBreakerFails, "consecutive failures that open a backend's circuit")
	breakerCool := flag.Duration("breakercooldown", route.DefaultBreakerCooldown, "open-circuit cooldown before a half-open probe")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	if *backends == "" {
		fail(fmt.Errorf("-backends is required (comma-separated ssserve addresses)"))
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}

	r, err := route.New(route.Config{
		Backends:        list,
		TryTimeout:      *tryTimeout,
		Retries:         *retries,
		NoRetries:       *retries == 0,
		DisableHedging:  !*hedge,
		HedgeQuantile:   *hedgeQ,
		HealthEvery:     *healthEvery,
		StalenessWait:   *staleWait,
		DisableFailover: !*failover,
		FailoverAfter:   *failoverAfter,
		BreakerFails:    *breakerFails,
		BreakerCooldown: *breakerCool,
		Obs:             obs.Default,
		EnablePprof:     *pprofFlag,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ssrouter: "+format+"\n", args...)
		},
	})
	if err != nil {
		fail(err)
	}
	defer r.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	leader := "none"
	if l := r.Leader(); l != nil {
		leader = l.Host
	}
	fmt.Fprintf(os.Stderr, "ssrouter: routing %d backends on http://%s (leader %s)\n",
		len(list), ln.Addr(), leader)

	srv := &http.Server{Handler: r.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ssrouter: %v — closing\n", s)
		_ = srv.Close()
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}
	fmt.Fprintln(os.Stderr, "ssrouter: bye")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ssrouter: %v\n", err)
	os.Exit(1)
}
