package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"socialscope/internal/serve"
)

// queryRemote issues the query against a running ssserve instance and
// prints the answer in the same layout the local path uses, plus the
// serving metadata the wire carries (state version, cache outcome).
func queryRemote(addr string, userID int64, q string, k int) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	u.Path = "/search"
	u.RawQuery = url.Values{
		"user": {strconv.FormatInt(userID, 10)},
		"q":    {q},
		"k":    {strconv.Itoa(k)},
	}.Encode()

	httpResp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if json.NewDecoder(httpResp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (%s)", e.Error, httpResp.Status)
		}
		return fmt.Errorf("server: %s", httpResp.Status)
	}
	var resp serve.SearchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}

	fmt.Printf("query %q for user %d against %s (version %d, cache %s)\n",
		q, userID, addr, resp.Version, httpResp.Header.Get("X-SS-Cache"))
	if resp.Basis != "" {
		fmt.Printf("social basis: %s\n", resp.Basis)
	}
	if resp.Stats != nil {
		fmt.Printf("index work: strategy=%s postings=%d rescores=%d early=%v\n",
			resp.Stats.Strategy, resp.Stats.PostingsScanned,
			resp.Stats.ExactScores, resp.Stats.EarlyTerminated)
	}
	fmt.Println()
	if len(resp.Results) == 0 {
		fmt.Println("no results")
		return nil
	}
	for i, r := range resp.Results {
		fmt.Printf("%2d. %-28s score=%.3f sem=%.3f soc=%.3f — %s\n",
			i+1, orID(r.Name, int64(r.Item)), r.Score, r.Semantic, r.Social, r.Explanation)
	}
	if resp.Groups.Criterion != "" {
		fmt.Printf("\ngrouping (%s):\n", resp.Groups.Criterion)
		for _, grp := range resp.Groups.Groups {
			fmt.Printf("  [%s] %d item(s), quality %.3f\n", grp.Label, len(grp.Items), grp.Quality)
		}
	}
	if len(resp.Related.Topics)+len(resp.Related.Users) > 0 {
		fmt.Println("\nexplore further:")
		for _, rt := range resp.Related.Topics {
			fmt.Printf("  topic %-24s (%d results belong to it)\n", orID(rt.Name, int64(rt.ID)), rt.Count)
		}
		for _, ru := range resp.Related.Users {
			fmt.Printf("  user  %-24s (acted on %d results)\n", orID(ru.Name, int64(ru.ID)), ru.Count)
		}
	}
	return nil
}

func orID(name string, id int64) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("node-%d", id)
}
