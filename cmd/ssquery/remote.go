package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"socialscope/internal/serve"
)

// queryRemote issues the query against a running ssserve (or ssrouter)
// instance and prints the answer in the same layout the local path
// uses, plus the serving metadata the wire carries: state version,
// cache outcome, and — when the serving tier degraded to an old
// snapshot — an explicit STALE marker.
//
// minVersion > 0 sends the monotonic-read floor (X-SS-Min-Version);
// retries govern how often a failed or shed request is re-issued, with
// jittered exponential backoff honoring the server's Retry-After hint.
func queryRemote(addr string, userID int64, q string, k, retries int, minVersion uint64) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("bad -addr: %w", err)
	}
	u.Path = "/search"
	u.RawQuery = url.Values{
		"user": {strconv.FormatInt(userID, 10)},
		"q":    {q},
		"k":    {strconv.Itoa(k)},
	}.Encode()

	httpResp, err := getWithRetry(u.String(), retries, minVersion)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if json.NewDecoder(httpResp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (%s)", e.Error, httpResp.Status)
		}
		return fmt.Errorf("server: %s", httpResp.Status)
	}
	var resp serve.SearchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}

	staleMark := ""
	if httpResp.Header.Get(serve.HeaderStale) == "true" {
		staleMark = " STALE"
	}
	fmt.Printf("query %q for user %d against %s (version %d%s, cache %s)\n",
		q, userID, addr, resp.Version, staleMark, httpResp.Header.Get(serve.HeaderCache))
	if staleMark != "" {
		fmt.Printf("NOTE: degraded answer — snapshot %d is older than the requested floor\n", resp.Version)
	}
	if resp.Basis != "" {
		fmt.Printf("social basis: %s\n", resp.Basis)
	}
	if resp.Stats != nil {
		fmt.Printf("index work: strategy=%s postings=%d rescores=%d early=%v\n",
			resp.Stats.Strategy, resp.Stats.PostingsScanned,
			resp.Stats.ExactScores, resp.Stats.EarlyTerminated)
	}
	fmt.Println()
	if len(resp.Results) == 0 {
		fmt.Println("no results")
		return nil
	}
	for i, r := range resp.Results {
		fmt.Printf("%2d. %-28s score=%.3f sem=%.3f soc=%.3f — %s\n",
			i+1, orID(r.Name, int64(r.Item)), r.Score, r.Semantic, r.Social, r.Explanation)
	}
	if resp.Groups.Criterion != "" {
		fmt.Printf("\ngrouping (%s):\n", resp.Groups.Criterion)
		for _, grp := range resp.Groups.Groups {
			fmt.Printf("  [%s] %d item(s), quality %.3f\n", grp.Label, len(grp.Items), grp.Quality)
		}
	}
	if len(resp.Related.Topics)+len(resp.Related.Users) > 0 {
		fmt.Println("\nexplore further:")
		for _, rt := range resp.Related.Topics {
			fmt.Printf("  topic %-24s (%d results belong to it)\n", orID(rt.Name, int64(rt.ID)), rt.Count)
		}
		for _, ru := range resp.Related.Users {
			fmt.Printf("  user  %-24s (acted on %d results)\n", orID(ru.Name, int64(ru.ID)), ru.Count)
		}
	}
	return nil
}

// getWithRetry issues the GET with minVersion as the monotonic-read
// floor, retrying transport errors and 5xx answers up to retries times
// with jittered exponential backoff. A 503's Retry-After hint floors
// the wait; 4xx answers are the server's final word and return as-is.
func getWithRetry(url string, retries int, minVersion uint64) (*http.Response, error) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := 50 * time.Millisecond
	for try := 0; ; try++ {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if minVersion > 0 {
			req.Header.Set(serve.HeaderMinVersion, strconv.FormatUint(minVersion, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil && resp.StatusCode < http.StatusInternalServerError {
			return resp, nil
		}
		wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		if err == nil {
			if ms, perr := strconv.ParseInt(resp.Header.Get(serve.HeaderRetryAfterMs), 10, 64); perr == nil && time.Duration(ms)*time.Millisecond > wait {
				wait = time.Duration(ms) * time.Millisecond
			}
			if try >= retries {
				return resp, nil // out of budget: hand the caller the last answer
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "ssquery: %s — retrying in %v (%d left)\n", resp.Status, wait, retries-try)
		} else {
			if try >= retries {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "ssquery: %v — retrying in %v (%d left)\n", err, wait, retries-try)
		}
		time.Sleep(wait)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

func orID(name string, id int64) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("node-%d", id)
}
