// Command ssquery answers one query end-to-end against a social content
// graph: load (or generate) a site, run the Content Analyzer, discover,
// present, and explain — the full Figure 1 flow on the command line.
// With -addr it instead issues the same query against a running ssserve
// instance over HTTP, sharing the wire types of internal/serve.
//
// Usage:
//
//	ssquery -data travel.json -user 1 -q "denver attractions"
//	ssquery -gen -users 120 -items 60 -user 1 -q "family museum" -analyze=false
//	ssquery -addr localhost:8080 -user 1 -q "denver attractions"
package main

import (
	"flag"
	"fmt"
	"os"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "host:port of a running ssserve; queries remotely instead of locally")
	data := flag.String("data", "", "JSON graph file (from ssgen); empty with -gen generates one")
	gen := flag.Bool("gen", false, "generate a travel corpus instead of loading")
	users := flag.Int("users", 120, "generated users (with -gen)")
	items := flag.Int("items", 60, "generated destinations (with -gen)")
	seed := flag.Int64("seed", 42, "generator seed")
	userID := flag.Int64("user", 1, "querying user node id")
	q := flag.String("q", "", "query string (empty = pure social recommendations)")
	itemType := flag.String("itemtype", "destination", "node type of candidate results")
	analyze := flag.Bool("analyze", true, "run the content analyzer before querying")
	k := flag.Int("k", 10, "results wanted")
	retries := flag.Int("retries", 2, "with -addr: retries after a failed or shed request (0 = none)")
	minVersion := flag.Uint64("minversion", 0, "with -addr: lowest acceptable snapshot version (monotonic-read floor; answers below it come back marked STALE)")
	flag.Parse()

	if *addr != "" {
		if err := queryRemote(*addr, *userID, *q, *k, *retries, *minVersion); err != nil {
			fail(err)
		}
		return
	}

	g, err := loadGraph(*data, *gen, *users, *items, *seed)
	if err != nil {
		fail(err)
	}
	eng, err := socialscope.New(g, socialscope.Config{ItemType: *itemType})
	if err != nil {
		fail(err)
	}
	if *analyze {
		if err := eng.Analyze(); err != nil {
			fail(err)
		}
	}
	resp, err := eng.Search(socialscope.NodeID(*userID), *q)
	if err != nil {
		fail(err)
	}
	gg := eng.Graph()
	fmt.Printf("query %q for user %d over %s\n", *q, *userID, gg)
	fmt.Printf("social basis: %s (%d users)\n\n", resp.MSG.Basis.Kind, len(resp.MSG.Basis.Users))
	results := resp.Results()
	if len(results) > *k {
		results = results[:*k]
	}
	if len(results) == 0 {
		fmt.Println("no results")
		return
	}
	for i, r := range results {
		n := gg.Node(r.Item)
		fmt.Printf("%2d. %-28s score=%.3f sem=%.3f soc=%.3f — %s\n",
			i+1, label(n), r.Score, r.Semantic, r.Social, resp.Explanations[r.Item].Summary)
	}
	fmt.Printf("\ngrouping (%s):\n", resp.Presentation.Chosen.Criterion)
	for _, grp := range resp.Presentation.Chosen.Groups {
		fmt.Printf("  [%s] %d item(s), quality %.3f\n", grp.Label, grp.Size(), grp.Quality)
	}
	if len(resp.Related.Topics)+len(resp.Related.Users) > 0 {
		fmt.Println("\nexplore further:")
		for _, rt := range resp.Related.Topics {
			fmt.Printf("  topic %-24s (%d results belong to it)\n", label(gg.Node(rt.Topic)), rt.Count)
		}
		for _, ru := range resp.Related.Users {
			fmt.Printf("  user  %-24s (acted on %d results)\n", label(gg.Node(ru.User)), ru.Count)
		}
	}
}

func loadGraph(path string, gen bool, users, items int, seed int64) (*graph.Graph, error) {
	if gen || path == "" {
		corpus, err := workload.Travel(workload.TravelConfig{
			Users: users, Destinations: items, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return corpus.Graph, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Decode(f)
}

func label(n *graph.Node) string {
	if n == nil {
		return "?"
	}
	if name := n.Attrs.Get("name"); name != "" {
		return name
	}
	return fmt.Sprintf("node-%d", n.ID)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ssquery: %v\n", err)
	os.Exit(1)
}
