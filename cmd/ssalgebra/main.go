// Command ssalgebra evaluates textual SocialScope algebra expressions
// against a dataset — a workbench for the Section 5 algebra.
//
// Usage:
//
//	ssalgebra -data site.json 'selectL{type=friend}(semijoin(src,src)(G, selectN{id=1}(G)))'
//	ssalgebra -gen 'selectN{type=destination; 'denver'}(G)' -explain
//
// The base graph is bound to the name G. With -explain the (possibly
// rewritten) plan is printed before evaluation; with -optimize the default
// rewrite rules run first.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"socialscope/internal/core"
	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

func main() {
	data := flag.String("data", "", "JSON graph file (from ssgen); empty generates a corpus")
	users := flag.Int("users", 50, "generated users")
	items := flag.Int("items", 30, "generated destinations")
	seed := flag.Int64("seed", 42, "generator seed")
	explain := flag.Bool("explain", false, "print the plan before evaluating")
	optimize := flag.Bool("optimize", false, "apply the default rewrite rules")
	limit := flag.Int("limit", 10, "max nodes/links printed")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "ssalgebra: exactly one expression argument required")
		os.Exit(2)
	}
	expr, err := core.Parse(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if *optimize {
		var fired []string
		expr, fired = core.Rewrite(expr, core.DefaultRules)
		if len(fired) > 0 {
			fmt.Fprintf(os.Stderr, "ssalgebra: rewrites fired: %s\n", strings.Join(fired, ", "))
		}
	}
	if *explain {
		fmt.Print(core.Explain(expr))
	}

	g, err := loadGraph(*data, *users, *items, *seed)
	if err != nil {
		fail(err)
	}
	result, err := expr.Eval(core.NewContext(g))
	if err != nil {
		fail(err)
	}
	fmt.Printf("result: %s\n", result)
	for i, n := range result.Nodes() {
		if i >= *limit {
			fmt.Printf("  ... %d more nodes\n", result.NumNodes()-*limit)
			break
		}
		fmt.Printf("  node %s\n", n)
	}
	for i, l := range result.Links() {
		if i >= *limit {
			fmt.Printf("  ... %d more links\n", result.NumLinks()-*limit)
			break
		}
		fmt.Printf("  link %s\n", l)
	}
}

func loadGraph(path string, users, items int, seed int64) (*graph.Graph, error) {
	if path == "" {
		corpus, err := workload.Travel(workload.TravelConfig{
			Users: users, Destinations: items, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return corpus.Graph, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Decode(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ssalgebra: %v\n", err)
	os.Exit(1)
}
