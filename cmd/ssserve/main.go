// Command ssserve runs the SocialScope query-serving subsystem: an HTTP
// JSON server over a live Engine, with a snapshot-version-keyed result
// cache, write coalescing onto the storage layer's bulk path, admission
// control and graceful shutdown. It is the request-serving front end of
// the paper's Figure 1 site architecture.
//
// Usage:
//
//	ssserve -addr :8080 -data travel.json
//	ssserve -addr :8080 -gen -users 500 -items 200 -topk ta
//	ssserve -addr :8080 -gen -durable /var/lib/socialscope
//	ssserve -addr :8081 -follow /var/lib/socialscope
//
// Endpoints:
//
//	GET  /search?user=ID&q=QUERY[&k=N][&alpha=A][&nocache=1]
//	POST /query      {"user":ID,"query":"...","k":N,"alpha":A}
//	GET  /recommend?user=ID[&variant=stepwise|pattern]
//	POST /apply      {"mutations":[{"op":"add-link","link":{...}},...]}
//	POST /promote    (follower only: become the writable leader)
//	GET  /stats
//	GET  /healthz
//	GET  /metrics    (Prometheus text exposition; see docs/observability.md)
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish (bounded by
// -drain), buffered writes flush, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/serve"
	"socialscope/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "JSON graph file (from ssgen); empty with -gen generates one")
	gen := flag.Bool("gen", false, "generate a travel corpus instead of loading")
	users := flag.Int("users", 200, "generated users (with -gen)")
	items := flag.Int("items", 80, "generated destinations (with -gen)")
	seed := flag.Int64("seed", 42, "generator seed")
	itemType := flag.String("itemtype", "destination", "node type of candidate results")
	analyze := flag.Bool("analyze", false, "run the content analyzer before serving")
	topkFlag := flag.String("topk", "ta", "keyword-query strategy: off|exhaustive|ta|nra")
	clusterStrat := flag.String("cluster", "peruser", "index clustering: peruser|network|behavior|hybrid|global")
	theta := flag.Float64("theta", 0.3, "clustering similarity threshold")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain bound")
	cacheSize := flag.Int("cachesize", serve.DefaultCacheEntries, "result cache entries (0 = default)")
	noCache := flag.Bool("nocache", false, "disable the result cache")
	flush := flag.Duration("flush", serve.DefaultFlushInterval, "write-coalescer flush interval")
	maxBatch := flag.Int("maxbatch", graph.BulkApplyThreshold, "mutations that trigger an immediate flush")
	maxConc := flag.Int("maxconc", serve.DefaultMaxConcurrent, "admitted concurrent requests")
	maxQueue := flag.Int("maxqueue", serve.DefaultMaxQueue, "admission queue depth")
	durableDir := flag.String("durable", "", "durability directory (WAL + checkpoints); empty = in-memory only")
	ckptEvery := flag.Int("ckptevery", 64, "with -durable: checkpoint after this many applied batches (0 = only on shutdown)")
	follow := flag.String("follow", "", "follow a leader's durability directory as a read-only replica (POST /promote to take over)")
	followPoll := flag.Duration("followpoll", 50*time.Millisecond, "with -follow: leader WAL/manifest poll interval")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceLog := flag.Int("tracelog", 0, "log a structured trace line for 1-in-N requests (0 = off)")
	flag.Parse()

	strat, err := socialscope.ParseTopKStrategy(*topkFlag)
	if err != nil {
		fail(err)
	}
	cfg := socialscope.Config{
		ItemType:        *itemType,
		TopK:            strat,
		ClusterStrategy: *clusterStrat,
		ClusterTheta:    *theta,
	}
	var eng *socialscope.Engine
	switch {
	case *follow != "":
		// A follower's entire state comes from the leader's checkpoints
		// and WAL: no graph is loaded, and analysis arrives by replaying
		// the leader's analyze record rather than running locally.
		if *durableDir != "" {
			fail(fmt.Errorf("-follow and -durable are mutually exclusive (a replica tails the leader's directory)"))
		}
		if *analyze {
			fail(fmt.Errorf("-follow replicates analysis from the leader; drop -analyze"))
		}
		eng, err = socialscope.OpenFollower(*follow, cfg, socialscope.DurableOptions{})
		if err == nil {
			fmt.Fprintf(os.Stderr, "ssserve: following %s from version %d (poll %v)\n",
				*follow, eng.Version(), *followPoll)
		}
	case *durableDir != "":
		// On a fresh directory the loaded/generated graph seeds the durable
		// state; on an existing one it is ignored — the engine resumes from
		// its checkpoints and WAL at the exact version it last acknowledged.
		var g *graph.Graph
		g, err = loadGraph(*data, *gen, *users, *items, *seed)
		if err != nil {
			fail(err)
		}
		eng, err = socialscope.OpenDurable(*durableDir, g, cfg, socialscope.DurableOptions{
			CheckpointEvery: *ckptEvery,
		})
		if err == nil {
			fmt.Fprintf(os.Stderr, "ssserve: durable in %s, recovered version %d\n",
				*durableDir, eng.Version())
		}
	default:
		var g *graph.Graph
		g, err = loadGraph(*data, *gen, *users, *items, *seed)
		if err != nil {
			fail(err)
		}
		eng, err = socialscope.New(g, cfg)
	}
	if err != nil {
		fail(err)
	}
	if *follow != "" {
		go followLoop(eng, *followPoll)
	}
	if *analyze && !eng.Analyzed() {
		fmt.Fprintln(os.Stderr, "ssserve: analyzing...")
		if err := eng.Analyze(); err != nil {
			fail(err)
		}
	}

	srv := serve.New(eng, serve.Config{
		RequestTimeout: *timeout,
		CacheEntries:   *cacheSize,
		DisableCache:   *noCache,
		FlushInterval:  *flush,
		MaxBatch:       *maxBatch,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		EnablePprof:    *pprofFlag,
		TraceLogEvery:  *traceLog,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "ssserve: serving %s on http://%s (topk=%s cluster=%s cache=%v)\n",
		eng.Graph(), ln.Addr(), strat, *clusterStrat, !*noCache)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ssserve: %v — draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail(err)
		}
		<-done // http.ErrServerClosed
		// Writes are flushed; seal the durable state with a final checkpoint.
		if err := eng.Close(); err != nil {
			fail(err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}
	fmt.Fprintln(os.Stderr, "ssserve: bye")
}

// followLoop tails the leader until the engine stops being a follower
// (POST /promote) or the process exits. The poll interval is the base
// of a jittered exponential backoff: consecutive failed polls — the
// leader mid-rotation, a checkpoint truncation racing the poll, a dead
// leader — double the wait (±25% jitter) up to a cap, and any
// successful poll resets it, so a healthy replica tails tightly while a
// broken one stops hammering a directory that cannot answer.
func followLoop(eng *socialscope.Engine, every time.Duration) {
	const maxBackoffFactor = 32
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	wait := every
	for {
		// Full-period jitter on the backoff tail only: ±25% keeps replicas
		// from thundering in lockstep after a leader hiccup.
		d := wait
		if wait > every {
			d = wait - wait/4 + time.Duration(rng.Int63n(int64(wait)/2+1))
		}
		time.Sleep(d)
		if !eng.IsFollower() {
			return
		}
		if _, err := eng.CatchUp(0); err != nil {
			if !eng.IsFollower() {
				return // lost the race with /promote; not an error
			}
			if wait < every*maxBackoffFactor {
				wait *= 2
			}
			fmt.Fprintf(os.Stderr, "ssserve: catch-up: %v (retrying in ~%v)\n", err, wait)
			continue
		}
		wait = every
	}
}

func loadGraph(path string, gen bool, users, items int, seed int64) (*graph.Graph, error) {
	if gen || path == "" {
		corpus, err := workload.Travel(workload.TravelConfig{
			Users: users, Destinations: items, Seed: seed,
			VisitsPerUser: 8, TagFraction: 0.8,
		})
		if err != nil {
			return nil, err
		}
		return corpus.Graph, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Decode(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ssserve: %v\n", err)
	os.Exit(1)
}
