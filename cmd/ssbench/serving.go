package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/serve"
	"socialscope/internal/workload"
)

// servingCell is one serving-sweep measurement: a fresh engine + HTTP
// server over the (immutable) corpus graph, driven by a closed-loop
// mixed workload. A fresh engine per cell keeps the comparison fair:
// Engine.Apply advances private copy-on-write state, the corpus graph
// itself never mutates, so every cell starts from the identical world
// instead of querying whatever the previous cell's writes grew.
type servingCell struct {
	srv    *serve.Server
	ln     net.Listener
	base   string
	client *http.Client
	stream *workload.TaggingStream
}

func newServingCell(corpus *workload.TravelCorpus, seed int64, client *http.Client) (*servingCell, error) {
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA, ClusterStrategy: "peruser",
	})
	if err != nil {
		return nil, err
	}
	srv := serve.New(eng, serve.Config{
		RequestTimeout: 30 * time.Second,
		MaxConcurrent:  256,
		MaxQueue:       1024,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	go srv.Serve(ln)
	stream, err := workload.NewTaggingStream(corpus.Graph, corpus.Users, corpus.Destinations,
		workload.Categories, seed)
	if err != nil {
		srv.Close()
		ln.Close()
		return nil, err
	}
	c := &servingCell{
		srv: srv, ln: ln, base: "http://" + ln.Addr().String(),
		client: client, stream: stream,
	}
	// Warm-up: the first tagged query pays the one-time cluster+index
	// build; keep it out of every measurement.
	if _, _, err := c.search(corpus.Users[0], workload.Categories[0], true); err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

func (c *servingCell) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c.srv.Shutdown(ctx)
	c.ln.Close()
}

func (c *servingCell) search(user graph.NodeID, q string, nocache bool) ([]byte, string, error) {
	v := url.Values{"user": {strconv.FormatInt(int64(user), 10)}, "q": {q}, "k": {"10"}}
	if nocache {
		v.Set("nocache", "1")
	}
	u := c.base + "/search?" + v.Encode()
	resp, err := c.client.Get(u)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s: %s: %s", u, resp.Status, body)
	}
	return body, resp.Header.Get("X-SS-Cache"), nil
}

func (c *servingCell) apply(muts []graph.Mutation) error {
	req := serve.ApplyRequest{Mutations: make([]serve.MutationWire, len(muts))}
	for i, m := range muts {
		req.Mutations[i] = serve.MutationToWire(m)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(c.base+"/apply", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /apply: %s: %s", resp.Status, body)
	}
	return nil
}

func (c *servingCell) stats() (serve.StatsResponse, error) {
	var stats serve.StatsResponse
	resp, err := c.client.Get(c.base + "/stats")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&stats)
	return stats, err
}

// runServing measures the query-serving subsystem end-to-end: a real
// ssserve-equivalent HTTP server over a live engine, driven by a
// closed-loop mixed read/write workload at rising concurrency, with the
// snapshot-version-keyed result cache on versus off. Reported per cell:
// read p50/p99 latency and total throughput. Before the sweep, the
// cached and uncached paths are cross-checked byte-for-byte on a sample
// of queries — including across an /apply version bump — and the run
// fails hard if they ever diverge, so the cache can never trade
// correctness for speed silently.
func runServing(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 300 * scale, Destinations: 100 * scale, Seed: seed,
		VisitsPerUser: 8, TagFraction: 0.8,
	})
	if err != nil {
		return err
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 512, MaxIdleConnsPerHost: 512,
	}}

	fmt.Printf("Serving — HTTP front end over the live engine (%s)\n", corpus.Graph)
	if err := checkByteIdentity(corpus, seed, client); err != nil {
		return err
	}

	// Closed-loop mixed workload: read-heavy (98% reads over a hot query
	// set — the shape a result cache exists for, and the shape of the
	// paper's content-site traffic), 2% writes in 8-mutation /apply
	// batches that the server coalesces. Total ops per cell is fixed so
	// the comparison across concurrency is work-for-work.
	const (
		readFraction = 0.98
		totalOps     = 2000
		hotPairs     = 16
		writeBatch   = 8
	)
	type hotQuery struct {
		user graph.NodeID
		q    string
	}
	hotRng := rand.New(rand.NewSource(seed + 1))
	hot := make([]hotQuery, hotPairs)
	for i := range hot {
		hot[i] = hotQuery{
			user: corpus.Users[hotRng.Intn(len(corpus.Users))],
			q:    workload.Categories[hotRng.Intn(len(workload.Categories))],
		}
	}

	fmt.Printf("closed-loop mixed workload: %.0f%% reads over %d hot (user,query) pairs,\n",
		readFraction*100, hotPairs)
	fmt.Printf("%.0f%% writes (%d-mutation /apply batches, server-coalesced), %d ops per cell,\n",
		(1-readFraction)*100, writeBatch, totalOps)
	fmt.Printf("fresh engine per cell (identical starting state)\n\n")
	fmt.Printf("%-6s %-7s %-12s %-12s %-12s %-10s %-10s %-8s\n",
		"conc", "cache", "read p50", "read p99", "write p99", "ops/s", "hit-rate", "errors")

	type cellResult struct {
		p99        time.Duration
		throughput float64
	}
	results := make(map[string]cellResult)
	for _, conc := range []int{1, 4, 16, 32} {
		for _, cached := range []bool{false, true} {
			cell, err := newServingCell(corpus, seed, client)
			if err != nil {
				return err
			}
			res, err := workload.ClosedLoop(conc, totalOps/conc, seed+int64(conc),
				func(w, i int, rng *rand.Rand) (bool, error) {
					if rng.Float64() < readFraction {
						hq := hot[rng.Intn(len(hot))]
						_, _, err := cell.search(hq.user, hq.q, !cached)
						return true, err
					}
					return false, cell.apply(cell.stream.Batch(writeBatch))
				})
			if err != nil {
				cell.close()
				return err
			}
			stats, err := cell.stats()
			cell.close()
			if err != nil {
				return err
			}
			if res.Errors > 0 {
				return fmt.Errorf("serving cell conc=%d cache=%v: %d failed ops", conc, cached, res.Errors)
			}
			mode := "off"
			hitRate := 0.0
			if cached {
				mode = "on"
				if tot := stats.Cache.Hits + stats.Cache.Misses + stats.Cache.Shared; tot > 0 {
					hitRate = float64(stats.Cache.Hits+stats.Cache.Shared) / float64(tot)
				}
			}
			fmt.Printf("%-6d %-7s %-12v %-12v %-12v %-10.0f %-10.2f %-8d\n",
				conc, mode, res.ReadLat.P(0.50), res.ReadLat.P(0.99),
				res.WriteLat.P(0.99), res.Throughput(), hitRate, res.Errors)
			key := fmt.Sprintf("c%d.cache_%s", conc, mode)
			benchMetric(key+".read_p50_us", float64(res.ReadLat.P(0.50).Microseconds()))
			benchMetric(key+".read_p99_us", float64(res.ReadLat.P(0.99).Microseconds()))
			benchMetric(key+".write_p99_us", float64(res.WriteLat.P(0.99).Microseconds()))
			benchMetric(key+".throughput_rps", res.Throughput())
			if cached {
				benchMetric(key+".hit_rate", hitRate)
				benchMetric(key+".coalesced_per_flush",
					float64(stats.Coalescer.Requests)/float64(max(stats.Coalescer.Flushes, 1)))
			}
			results[key] = cellResult{p99: res.ReadLat.P(0.99), throughput: res.Throughput()}
		}
	}

	// The claim under test: at meaningful concurrency the cache must win
	// on both tail latency and throughput for a read-heavy mix.
	pass := true
	for _, conc := range []int{16, 32} {
		on := results[fmt.Sprintf("c%d.cache_on", conc)]
		off := results[fmt.Sprintf("c%d.cache_off", conc)]
		better := on.p99 < off.p99 && on.throughput > off.throughput
		verdict := "PASS"
		if !better {
			verdict = "WARNING"
			pass = false
		}
		fmt.Printf("%s: conc=%d cache-on p99 %v vs off %v (%.1f×), throughput %.0f vs %.0f ops/s (%.1f×)\n",
			verdict, conc, on.p99, off.p99,
			float64(off.p99)/float64(max(on.p99, 1)),
			on.throughput, off.throughput, on.throughput/off.throughput)
		benchMetric(fmt.Sprintf("c%d.p99_speedup", conc), float64(off.p99)/float64(max(on.p99, 1)))
		benchMetric(fmt.Sprintf("c%d.throughput_speedup", conc), on.throughput/off.throughput)
	}
	if !pass {
		fmt.Println("WARNING: cache did not strictly win at high concurrency — investigate")
	}
	return nil
}

// checkByteIdentity asserts the cache can never change an answer: for a
// sample of queries the cold miss, the warm hit and an explicit
// ?nocache=1 bypass must produce identical bytes — and after an /apply
// version bump, the re-computed answer must be served (the old entry is
// orphaned by its version key), again byte-identical to an uncached
// evaluation of the new state.
func checkByteIdentity(corpus *workload.TravelCorpus, seed int64, client *http.Client) error {
	cell, err := newServingCell(corpus, seed, client)
	if err != nil {
		return err
	}
	defer cell.close()
	checked := 0
	for i, u := range corpus.Users {
		if checked >= 20 {
			break
		}
		if i%7 != 0 {
			continue
		}
		q := workload.Categories[i%len(workload.Categories)]
		miss, o1, err := cell.search(u, q, false)
		if err != nil {
			return err
		}
		hit, o2, err := cell.search(u, q, false)
		if err != nil {
			return err
		}
		bypass, o3, err := cell.search(u, q, true)
		if err != nil {
			return err
		}
		if !bytes.Equal(miss, hit) || !bytes.Equal(miss, bypass) {
			return fmt.Errorf("byte-identity violation for user=%d q=%q (outcomes %s/%s/%s):\n  miss:   %s\n  hit:    %s\n  bypass: %s",
				u, q, o1, o2, o3, miss, hit, bypass)
		}
		checked++
	}
	// Freshness leg: bump the version, then verify the cached path serves
	// the new world, not the orphaned entry.
	u, q := corpus.Users[0], workload.Categories[0]
	if _, _, err := cell.search(u, q, false); err != nil { // ensure an entry exists
		return err
	}
	if err := cell.apply(cell.stream.Batch(4)); err != nil {
		return err
	}
	fresh, outcome, err := cell.search(u, q, false)
	if err != nil {
		return err
	}
	if outcome == string(serve.OutcomeHit) {
		return fmt.Errorf("stale cache: post-apply search for user=%d q=%q served a hit from the old version", u, q)
	}
	bypass, _, err := cell.search(u, q, true)
	if err != nil {
		return err
	}
	if !bytes.Equal(fresh, bypass) {
		return fmt.Errorf("byte-identity violation after apply for user=%d q=%q:\n  cached: %s\n  bypass: %s",
			u, q, fresh, bypass)
	}
	fmt.Printf("cache correctness: %d query samples byte-identical across miss/hit/bypass paths,\n", checked)
	fmt.Printf("post-apply freshness verified (version bump orphans old entries)\n\n")
	return nil
}
