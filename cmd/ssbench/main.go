// Command ssbench regenerates every table and figure of the SocialScope
// paper on synthetic workloads and prints them in the paper's layout.
// EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	ssbench [-exp all|table1|table2|example4|figure2|index|topk|sync|presentation|analyzer|pipeline|fusion|liveupdate|bulkload|serving] [-scale N] [-seed S] [-benchdir DIR]
//
// Besides the printed tables, experiments that record metrics write them
// as BENCH_<exp>.json into -benchdir so successive runs can be diffed.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"socialscope"
	"socialscope/internal/analyzer"
	"socialscope/internal/cluster"
	"socialscope/internal/core"
	"socialscope/internal/discovery"
	"socialscope/internal/federation"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/queryclass"
	"socialscope/internal/scoring"
	"socialscope/internal/topk"
	"socialscope/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	seed := flag.Int64("seed", 42, "workload seed")
	benchdir := flag.String("benchdir", ".", "directory for BENCH_<exp>.json result files (empty disables)")
	flag.Parse()

	runners := map[string]func(int, int64) error{
		"table1":       runTable1,
		"table2":       runTable2,
		"example4":     runExample4,
		"figure2":      runFigure2,
		"index":        runIndex,
		"topk":         runTopK,
		"sync":         runSync,
		"presentation": runPresentation,
		"analyzer":     runAnalyzer,
		"pipeline":     runPipeline,
		"fusion":       runFusion,
		"liveupdate":   runLiveUpdate,
		"bulkload":     runBulkload,
		"serving":      runServing,
	}
	order := []string{"table1", "table2", "example4", "figure2", "index",
		"topk", "sync", "presentation", "analyzer", "pipeline", "fusion",
		"liveupdate", "bulkload", "serving"}

	run := func(name string) {
		fmt.Printf("\n===== %s =====\n", name)
		benchMetrics = make(map[string]float64)
		if err := runners[name](*scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := writeBenchJSON(*benchdir, name, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: %s: writing results: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := runners[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "ssbench: unknown experiment %q (have %s)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run(*exp)
}

// runTable1 regenerates Table 1: query-class statistics over a synthetic
// log drawn from the published mixture.
func runTable1(scale int, seed int64) error {
	n := 100000 * scale
	log, err := workload.QueryLog(n, workload.PaperMixture(), seed)
	if err != nil {
		return err
	}
	texts := make([]string, len(log))
	for i, q := range log {
		texts[i] = q.Text
	}
	start := time.Now()
	table := queryclass.Default().Summarize(texts)
	elapsed := time.Since(start)
	fmt.Printf("Table 1 — summary statistics of %d synthetic queries (paper: 10M Y!Travel queries)\n\n", n)
	fmt.Print(table.String())
	fmt.Printf("\npaper cells:  with loc 32.36 / 22.52 / 8.37 ; w/o loc 21.38 / 5.34 / -\n")
	fmt.Printf("classified %d queries in %v (%.0f queries/ms)\n",
		n, elapsed, float64(n)/float64(elapsed.Milliseconds()+1))
	return nil
}

// runTable2 regenerates Table 2 by probing the three management models.
func runTable2(int, int64) error {
	table, err := federation.CompareModels()
	if err != nil {
		return err
	}
	fmt.Println("Table 2 — comparison of content management models (probed, not asserted)")
	fmt.Println()
	fmt.Print(table.String())

	// Quantify the qualitative cells: remote calls to analyze the full
	// graph under each model.
	social := federation.NewSocialSite("fb")
	closed := federation.NewClosedCartel(social)
	socialO := federation.NewSocialSite("fb2")
	open := federation.NewOpenCartel(socialO)
	dec := federation.NewDecentralized()
	const users = 50
	for i := 0; i < users; i++ {
		p := federation.Profile{ID: fmt.Sprintf("u:%d", i), Name: fmt.Sprintf("u%d", i)}
		for _, m := range []federation.Model{dec, closed, open} {
			if err := m.RegisterUser(p); err != nil {
				return err
			}
		}
	}
	for i := 0; i < users-1; i++ {
		from, to := fmt.Sprintf("u:%d", i), fmt.Sprintf("u:%d", i+1)
		for _, m := range []federation.Model{dec, closed, open} {
			if err := m.Connect(from, to); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\nremote calls to materialize the analyzable graph (%d users):\n", users)
	if err := open.Sync(nil); err != nil {
		return err
	}
	for _, m := range []federation.Model{dec, closed, open} {
		before := m.RemoteCalls().Calls
		if _, err := m.LocalGraph(); err != nil {
			return err
		}
		fmt.Printf("  %-14s %4d calls (analysis) — total %d incl. setup/sync\n",
			m.Name(), m.RemoteCalls().Calls-before, m.RemoteCalls().Calls)
	}
	return nil
}

// runExample4 executes the Example 4 search program on a travel corpus.
func runExample4(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 200 * scale, Destinations: 80 * scale, Seed: seed,
	})
	if err != nil {
		return err
	}
	g := corpus.Graph
	john := corpus.Users[0]
	uid := fmt.Sprintf("%d", john)
	start := time.Now()
	c1 := core.NewCondition(core.Cond("id", uid))
	c2 := core.NewCondition(core.Cond("type", graph.SubtypeFriend))
	c3 := core.NewCondition(core.Cond("type", "destination")).WithKeywords("denver attractions")
	c4 := core.NewCondition(core.Cond("type", graph.SubtypeVisit))
	c5 := core.NewCondition(core.Cond("type", graph.TypeAct))
	g1 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, c1, nil), core.Delta(graph.Src, graph.Src)), c2, nil)
	g2 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, c3, nil), core.Delta(graph.Tgt, graph.Src)), c4, nil)
	g3 := core.SemiJoin(g1, g2, core.Delta(graph.Tgt, graph.Src))
	g4 := core.SemiJoin(g2, g1, core.Delta(graph.Src, graph.Tgt))
	g5, err := core.Union(g3, g4)
	if err != nil {
		return err
	}
	g6 := core.LinkSelect(core.SemiJoin(g, g3, core.Delta(graph.Src, graph.Tgt)), c5, nil)
	g7, err := core.Union(g5, g6)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Println("Example 4 — \"John's friends who visited destinations near Denver and all their activities\"")
	fmt.Printf("  corpus: %s\n", g)
	fmt.Printf("  G1 (friend network):      %d links\n", g1.NumLinks())
	fmt.Printf("  G2 (near-Denver visits):  %d links\n", g2.NumLinks())
	fmt.Printf("  G3 (qualifying friends):  %d links\n", g3.NumLinks())
	fmt.Printf("  G4 (their visits):        %d links\n", g4.NumLinks())
	fmt.Printf("  G6 (their activities):    %d links\n", g6.NumLinks())
	fmt.Printf("  G7 (answer graph):        %d nodes, %d links in %v\n",
		g7.NumNodes(), g7.NumLinks(), elapsed)
	return nil
}

// runFigure2 compares the two collaborative-filtering evaluation
// strategies — the paper's open question at the end of Section 5.4.
func runFigure2(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 150 * scale, Destinations: 60 * scale, Seed: seed, VisitsPerUser: 10,
	})
	if err != nil {
		return err
	}
	fmt.Println("Figure 2 / Example 5 — multi-step composition+aggregation vs. graph-pattern aggregation")
	fmt.Printf("%-10s %-14s %-14s %-10s\n", "variant", "total time", "per user", "recs(u0)")
	var recCounts [2]int
	for vi, variant := range []discovery.CFVariant{discovery.CFStepwise, discovery.CFPattern} {
		start := time.Now()
		users := corpus.Users
		if len(users) > 30 {
			users = users[:30]
		}
		var first int
		for i, u := range users {
			recs, err := discovery.CollaborativeFiltering(corpus.Graph, u, discovery.CFConfig{
				Variant: variant, SimThreshold: 0.2,
			})
			if err != nil {
				return err
			}
			if i == 0 {
				first = len(recs)
			}
		}
		elapsed := time.Since(start)
		recCounts[vi] = first
		fmt.Printf("%-10s %-14v %-14v %-10d\n", variant, elapsed,
			elapsed/time.Duration(len(users)), first)
	}
	if recCounts[0] == recCounts[1] {
		fmt.Println("variants agree on recommendation count (cross-checked item-for-item in tests)")
	} else {
		fmt.Println("WARNING: variants disagree — investigate")
	}
	return nil
}

// runIndex runs the Section 6.2 storage study: strategy × θ sweep of index
// size and query work, with result quality vs. exact.
func runIndex(scale int, seed int64) error {
	corpus, err := workload.Tagging(workload.TaggingConfig{
		Users: 150 * scale, Items: 300 * scale, Tags: 20, Seed: seed, TagsPerUser: 15,
	})
	if err != nil {
		return err
	}
	data := index.Extract(corpus.Graph)
	queryTags := data.Tags
	if len(queryTags) > 3 {
		queryTags = queryTags[:3]
	}
	fmt.Printf("Section 6.2 — index size and query work (users=%d items=%d tags=%d, query=%v, k=10)\n",
		len(data.Users), len(data.Items), len(data.Tags), queryTags)
	fmt.Printf("%-10s %-6s %-9s %-8s %-10s %-12s %-12s %-10s\n",
		"strategy", "theta", "clusters", "lists", "entries", "bytes(10B/e)", "rescores/q", "time/q")

	type cfg struct {
		s     cluster.Strategy
		theta float64
	}
	var cfgs []cfg
	cfgs = append(cfgs, cfg{cluster.PerUser, 0}, cfg{cluster.Global, 0})
	for _, theta := range []float64{0.1, 0.3, 0.5, 0.7} {
		cfgs = append(cfgs, cfg{cluster.NetworkBased, theta}, cfg{cluster.BehaviorBased, theta})
	}
	cfgs = append(cfgs, cfg{cluster.Hybrid, 0.3}) // Def. 13, the paper's future-work strategy
	sort.SliceStable(cfgs, func(i, j int) bool {
		if cfgs[i].s != cfgs[j].s {
			return cfgs[i].s < cfgs[j].s
		}
		return cfgs[i].theta < cfgs[j].theta
	})
	for _, c := range cfgs {
		cl, err := cluster.Build(corpus.Graph, c.s, c.theta)
		if err != nil {
			return err
		}
		ix, err := index.Build(data, cl, scoring.CountF)
		if err != nil {
			return err
		}
		r := ix.Report()
		users := data.Users
		if len(users) > 50 {
			users = users[:50]
		}
		start := time.Now()
		totalRescores := 0
		for _, u := range users {
			_, stats, err := ix.TopK(u, queryTags, 10, scoring.SumG)
			if err != nil {
				return err
			}
			totalRescores += stats.ExactScores
		}
		perQ := time.Since(start) / time.Duration(len(users))
		fmt.Printf("%-10s %-6.2f %-9d %-8d %-10d %-12d %-12.1f %-10v\n",
			c.s, c.theta, r.Clusters, r.Lists, r.Entries, r.Bytes,
			float64(totalRescores)/float64(len(users)), perQ)
	}

	// The paper's 1TB back-of-envelope, reproduced analytically.
	fmt.Println("\npaper's sizing estimate (§6.2): 100k users, 1M items, 1k tags,")
	fmt.Println("20 tags/item by 5% of users, 10 B/entry → per-(tag,user) index ≈ 1 TB:")
	// One entry per (user, item) with a positive score ≈ 10^5 × 10^6 at
	// the paper's visibility assumptions; × 10 B/entry ≈ 1 TB.
	fmt.Printf("  10^5 users × 10^6 items × 10 B ≈ %.1f TB (paper: ~1 TB)\n",
		float64(100000)*float64(1000000)*10/1e12)
	return nil
}

// runTopK compares the early-terminating query processors against the
// exhaustive baseline: postings scanned (sorted accesses), exact rescores
// (random accesses), early-termination counts and wall time, per strategy
// and clustering. This is the experiment docs/benchmark.md walks through.
func runTopK(scale int, seed int64) error {
	corpus, err := workload.Tagging(workload.TaggingConfig{
		Users: 150 * scale, Items: 300 * scale, Tags: 20, Seed: seed, TagsPerUser: 15,
	})
	if err != nil {
		return err
	}
	data := index.Extract(corpus.Graph)
	queryTags := data.Tags
	if len(queryTags) > 3 {
		queryTags = queryTags[:3]
	}
	users := data.Users
	if len(users) > 50 {
		users = users[:50]
	}
	fmt.Printf("Top-k query processing — TA/NRA early termination vs. exhaustive\n")
	fmt.Printf("(users=%d items=%d tags=%d, query=%v, k=10, %d queries per row)\n\n",
		len(data.Users), len(data.Items), len(data.Tags), queryTags, len(users))
	fmt.Printf("%-10s %-12s %-12s %-12s %-12s %-10s %-10s\n",
		"cluster", "strategy", "postings/q", "rescores/q", "cands/q", "early", "time/q")

	for _, cc := range []struct {
		s     cluster.Strategy
		theta float64
	}{{cluster.PerUser, 0}, {cluster.NetworkBased, 0.3}, {cluster.Global, 0}} {
		cl, err := cluster.Build(corpus.Graph, cc.s, cc.theta)
		if err != nil {
			return err
		}
		buildStart := time.Now()
		ix, err := index.Build(data, cl, scoring.CountF)
		if err != nil {
			return err
		}
		buildTime := time.Since(buildStart)
		proc, err := topk.New(ix, scoring.SumG)
		if err != nil {
			return err
		}
		for _, strat := range []topk.Strategy{topk.Exhaustive, topk.TA, topk.NRA} {
			var agg topk.Stats
			early := 0
			start := time.Now()
			for _, u := range users {
				_, st, err := proc.TopK(u, queryTags, 10, strat)
				if err != nil {
					return err
				}
				agg.Add(st)
				if st.EarlyTerminated {
					early++
				}
			}
			perQ := time.Since(start) / time.Duration(len(users))
			n := float64(len(users))
			fmt.Printf("%-10s %-12s %-12.1f %-12.1f %-12.1f %-10s %-10v\n",
				cc.s, strat,
				float64(agg.PostingsScanned)/n,
				float64(agg.ExactScores)/n,
				float64(agg.Candidates)/n,
				fmt.Sprintf("%d/%d", early, len(users)), perQ)
		}
		fmt.Printf("%-10s (index: %d entries, built in %v — sharded by tag across workers)\n\n",
			"", ix.EntryCount(), buildTime)
	}
	fmt.Println("postings/q: sorted accesses into the per-(cluster,tag) lists;")
	fmt.Println("rescores/q: exact score_k computations (random accesses);")
	fmt.Println("early: queries that stopped before draining their lists.")
	fmt.Println("exhaustive postings/q counts the (item,tag) cells the full scan computes.")
	return nil
}

// runSync compares uniform vs. activity-driven synchronization (Section
// 6.2 Further Discussion).
func runSync(scale int, seed int64) error {
	users := 40 * scale
	build := func() (*federation.SocialSite, *federation.OpenCartel) {
		s := federation.NewSocialSite("fb")
		for i := 0; i < users; i++ {
			s.CreateProfile(federation.Profile{ID: fmt.Sprintf("u:%d", i)})
		}
		return s, federation.NewOpenCartel(s)
	}
	// 10% of users are hot: they mutate every round.
	hot := users / 10
	mutate := func(s *federation.SocialSite) func(int) map[string]int {
		return func(round int) map[string]int {
			out := make(map[string]int)
			for i := 0; i < hot; i++ {
				id := fmt.Sprintf("u:%d", i)
				if err := s.UpdateProfile(id, []string{fmt.Sprintf("r%d", round)}); err != nil {
					panic(err)
				}
				out[id] = 5
			}
			return out
		}
	}
	const rounds = 20
	fmt.Printf("Activity-driven sync — %d users (%d hot), %d rounds\n", users, hot, rounds)
	fmt.Printf("%-16s %-8s %-10s %-10s\n", "policy", "calls", "stale-rate", "reads")

	s1, o1 := build()
	uni, err := federation.SimulateSync(s1, o1, federation.UniformPolicy{Period: 1}, nil, rounds, mutate(s1))
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-8d %-10.3f %-10d\n", uni.Policy, uni.Calls, uni.StaleRate(), uni.Reads)

	s2, o2 := build()
	am := federation.NewActivityManager()
	act, err := federation.SimulateSync(s2, o2, federation.ActivityDrivenPolicy{
		Manager: am, MediumCount: 10, HighCount: 40, MediumPeriod: 2, LowPeriod: 5,
	}, am, rounds, mutate(s2))
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-8d %-10.3f %-10d\n", act.Policy, act.Calls, act.StaleRate(), act.Reads)
	fmt.Printf("activity-driven saves %.0f%% of calls at comparable freshness\n",
		100*(1-float64(act.Calls)/float64(uni.Calls)))
	return nil
}

// runPresentation exercises Section 7 on an Alexia-style broad query.
func runPresentation(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 150 * scale, Destinations: 80 * scale, Seed: seed,
	})
	if err != nil {
		return err
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		return err
	}
	if err := eng.Analyze(); err != nil {
		return err
	}
	resp, err := eng.Search(corpus.Users[0], "attractions")
	if err != nil {
		return err
	}
	fmt.Printf("Section 7 — presentation for a broad query (%d results)\n", len(resp.Results()))
	fmt.Printf("chosen grouping: %s (meaningfulness %.3f)\n",
		resp.Presentation.Chosen.Criterion, resp.Presentation.Score)
	for _, g := range resp.Presentation.Chosen.Groups {
		fmt.Printf("  group %-22q size=%-3d quality=%.3f\n", g.Label, g.Size(), g.Quality)
	}
	for _, alt := range resp.Presentation.Alternatives {
		fmt.Printf("alternative: %s (%d groups)\n", alt.Criterion, len(alt.Groups))
	}
	if len(resp.Results()) > 0 {
		top := resp.Results()[0].Item
		fmt.Printf("explanation for top item: %s\n", resp.Explanations[top].Summary)
	}
	return nil
}

// runAnalyzer runs the off-line analyses: LDA topics and association rules.
func runAnalyzer(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 100 * scale, Destinations: 60 * scale, Seed: seed,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	enriched, model, err := analyzer.DeriveTopics(corpus.Graph, "destination",
		analyzer.LDAConfig{Topics: 5, Iterations: 150, Seed: seed, Alpha: 0.1})
	if err != nil {
		return err
	}
	fmt.Printf("Content Analyzer — LDA over %d destinations in %v\n",
		len(corpus.Destinations), time.Since(start))
	for t := 0; t < 5; t++ {
		fmt.Printf("  topic %d: %s\n", t, strings.Join(model.TopTerms(t, 4), " "))
	}
	fmt.Printf("  derived %d topic nodes, %d belong links\n",
		enriched.CountNodes(graph.TypeTopic), enriched.CountLinks(graph.TypeBelong))

	txs := analyzer.TagTransactions(corpus.Graph)
	start = time.Now()
	sets := analyzer.Apriori(txs, analyzer.AprioriConfig{MinSupport: 5, MaxLen: 3})
	rules := analyzer.Rules(sets, analyzer.AprioriConfig{MinSupport: 5, MinConfidence: 0.25})
	fmt.Printf("Association rules — %d transactions, %d frequent sets, %d rules in %v\n",
		len(txs), len(sets), len(rules), time.Since(start))
	for i, r := range rules {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", r)
	}
	return nil
}

// runPipeline measures the end-to-end Figure 1 flow.
func runPipeline(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 200 * scale, Destinations: 100 * scale, Seed: seed,
	})
	if err != nil {
		return err
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		return err
	}
	start := time.Now()
	if err := eng.Analyze(); err != nil {
		return err
	}
	analyzeTime := time.Since(start)
	queries := []string{"denver attractions", "family trip", "museum historic", "", "city:paris"}
	start = time.Now()
	n := 0
	for i, u := range corpus.Users {
		if i >= 50 {
			break
		}
		resp, err := eng.Search(u, queries[i%len(queries)])
		if err != nil {
			return err
		}
		n += len(resp.Results())
	}
	queryTime := time.Since(start)
	fmt.Printf("Figure 1 pipeline — %s\n", corpus.Graph)
	fmt.Printf("  analyze (LDA + matches): %v\n", analyzeTime)
	fmt.Printf("  50 queries (discover + present + explain): %v (%v/query, %d results)\n",
		queryTime, queryTime/50, n)
	return nil
}

// runLiveUpdate measures the maintenance problem the paper defers ("index
// maintenance upon updates"): a live travel site absorbing a stream of new
// tagging actions while queries keep arriving. Incremental maintenance
// (index.ApplyDelta copy-on-write snapshots) is compared against the
// rebuild-per-update baseline (full index.Build after every action); both
// serve an interleaved TA query per update, and the final indexes are
// cross-checked for byte-identity. A second phase drives the same stream
// through the Engine.Apply facade path with concurrent-read-safe RCU
// snapshots.
func runLiveUpdate(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 200 * scale, Destinations: 80 * scale, Seed: seed,
		VisitsPerUser: 8, TagFraction: 0.8,
	})
	if err != nil {
		return err
	}
	g := corpus.Graph
	cl, err := cluster.Build(g, cluster.NetworkBased, 0.3)
	if err != nil {
		return err
	}
	data := index.Extract(g)
	steps := 200 * scale
	rng := rand.New(rand.NewSource(seed))
	muts := make([]graph.Mutation, steps)
	nextLink := g.MaxLinkID()
	for i := range muts {
		nextLink++
		u := data.Users[rng.Intn(len(data.Users))]
		d := corpus.Destinations[rng.Intn(len(corpus.Destinations))]
		tag := data.Tags[rng.Intn(len(data.Tags))]
		l := graph.NewLink(nextLink, u, d, graph.TypeAct, graph.SubtypeTag)
		l.Attrs.Add("tags", tag)
		muts[i] = graph.Mutation{Kind: graph.MutAddLink, Link: l}
	}
	queryTags := data.Tags
	if len(queryTags) > 3 {
		queryTags = queryTags[:3]
	}
	query := func(ix *index.Index, i int) error {
		proc, err := topk.New(ix, scoring.SumG)
		if err != nil {
			return err
		}
		_, _, err = proc.TopK(data.Users[i%len(data.Users)], queryTags, 10, topk.TA)
		return err
	}

	fmt.Printf("Live updates — travel workload (users=%d destinations=%d), %d tagging\n",
		len(data.Users), len(corpus.Destinations), steps)
	fmt.Printf("actions applied one at a time, one TA query (k=10, %v) after each\n\n", queryTags)
	fmt.Printf("%-22s %-13s %-13s %-13s %-12s\n",
		"mode", "maintenance", "per update", "queries", "wall total")

	// Incremental: copy-on-write snapshot per update.
	ix, err := index.Build(data, cl, scoring.CountF)
	if err != nil {
		return err
	}
	var incUpd, incQ time.Duration
	for i := range muts {
		start := time.Now()
		ix = ix.ApplyDelta(muts[i : i+1])
		incUpd += time.Since(start)
		start = time.Now()
		if err := query(ix, i); err != nil {
			return err
		}
		incQ += time.Since(start)
	}
	fmt.Printf("%-22s %-13v %-13v %-13v %-12v\n", "incremental",
		incUpd, incUpd/time.Duration(steps), incQ, incUpd+incQ)
	benchMetric("incremental_per_update_us", float64(incUpd.Microseconds())/float64(steps))

	// Baseline: fold the action into the substrate, then rebuild the whole
	// index (what a batch-built Section 6.2 index has to do today).
	dataR := index.Extract(g)
	ixR, err := index.Build(dataR, cl, scoring.CountF)
	if err != nil {
		return err
	}
	var rebUpd, rebQ time.Duration
	for i, m := range muts {
		l := m.Link
		start := time.Now()
		dataR.AddTagging(l.Src, l.Tgt, l.Attrs.All("tags")[0])
		ixR, err = index.Build(dataR, cl, scoring.CountF)
		if err != nil {
			return err
		}
		rebUpd += time.Since(start)
		start = time.Now()
		if err := query(ixR, i); err != nil {
			return err
		}
		rebQ += time.Since(start)
	}
	fmt.Printf("%-22s %-13v %-13v %-13v %-12v\n", "rebuild-per-update",
		rebUpd, rebUpd/time.Duration(steps), rebQ, rebUpd+rebQ)
	benchMetric("rebuild_per_update_us", float64(rebUpd.Microseconds())/float64(steps))
	benchMetric("maintenance_speedup", rebUpd.Seconds()/incUpd.Seconds())
	fmt.Printf("\nmaintenance speedup: %.1f× (wall %.1f×; snapshot version %d, %d entries",
		rebUpd.Seconds()/incUpd.Seconds(),
		(rebUpd + rebQ).Seconds()/(incUpd + incQ).Seconds(),
		ix.Version(), ix.EntryCount())
	fmt.Printf("; final indexes identical: %v)\n", sameLists(ix, ixR))

	// Facade path: batches through Engine.Apply, RCU snapshots underneath.
	eng, err := socialscope.New(g, socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA, ClusterStrategy: "network",
		ClusterTheta: 0.3,
	})
	if err != nil {
		return err
	}
	if _, err := eng.Search(corpus.Users[0], workload.Categories[0]); err != nil {
		return err
	}
	const batch = 10
	start := time.Now()
	for i := 0; i < len(muts); i += batch {
		end := min(i+batch, len(muts))
		if err := eng.Apply(muts[i:end]); err != nil {
			return err
		}
		if _, err := eng.Search(corpus.Users[i%len(corpus.Users)], workload.Categories[0]); err != nil {
			return err
		}
	}
	engTime := time.Since(start)
	benchMetric("engine_apply_total_ms", float64(engTime.Milliseconds()))
	stats, _ := eng.LastSearchStats()
	fmt.Printf("engine: %d mutations in batches of %d via Engine.Apply in %v "+
		"(version %d, last query read snapshot %d)\n",
		len(muts), batch, engTime, eng.Version(), stats.SnapshotVersion)

	return runSnapshotScaling(scale, seed)
}

// runSnapshotScaling is the O(delta) study: per-batch Engine.Apply latency
// across growing corpora, against the pre-persistent (PR 2) baseline whose
// per-batch fixed costs scaled with the corpus — a full map copy of every
// node, link and adjacency entry (the old ShallowClone) plus an eager BM25
// corpus rebuild (the old NewDiscoverer). With persistent structural
// sharing both snapshots are O(1) header copies, so per-batch latency
// tracks the batch, not the graph.
func runSnapshotScaling(scale int, seed int64) error {
	fmt.Printf("\nsnapshot cost — per-batch apply, persistent vs pre-persistent baseline\n")
	fmt.Printf("(batches of 10 tagging actions; legacy/batch = full graph map copy + corpus\n")
	fmt.Printf("rebuild, the fixed per-batch costs of the previous engine)\n\n")
	fmt.Printf("%-8s %-8s %-8s %-14s %-14s %-10s\n",
		"factor", "nodes", "links", "legacy/batch", "apply/batch", "speedup")

	const batchSize = 10
	var flat []time.Duration
	for _, factor := range []int{1, 2, 4} {
		sc := scale * factor
		corpus, err := workload.Travel(workload.TravelConfig{
			Users: 200 * sc, Destinations: 80 * sc, Seed: seed,
			VisitsPerUser: 8, TagFraction: 0.8,
		})
		if err != nil {
			return err
		}
		g := corpus.Graph
		data := index.Extract(g)

		// Legacy baseline, reproduced faithfully: copy every node, link and
		// adjacency entry into fresh maps, then rebuild the item corpus.
		// Element slices are materialized outside the timed region so the
		// measurement is the copy the old ShallowClone performed, nothing
		// more.
		nodes := g.Nodes()
		links := g.Links()
		const legacyReps = 5
		legacyStart := time.Now()
		for r := 0; r < legacyReps; r++ {
			nm := make(map[graph.NodeID]*graph.Node, len(nodes))
			for _, n := range nodes {
				nm[n.ID] = n
			}
			lm := make(map[graph.LinkID]*graph.Link, len(links))
			outAdj := make(map[graph.NodeID][]graph.LinkID, len(nodes))
			inAdj := make(map[graph.NodeID][]graph.LinkID, len(nodes))
			for _, l := range links {
				lm[l.ID] = l
				outAdj[l.Src] = append(outAdj[l.Src], l.ID)
				inAdj[l.Tgt] = append(inAdj[l.Tgt], l.ID)
			}
			if len(lm) != len(links) {
				return fmt.Errorf("legacy clone dropped links")
			}
			_ = scoring.NodeCorpus(g, "destination")
		}
		legacyPerBatch := time.Since(legacyStart) / legacyReps

		// Persistent path: the real Engine.Apply, batch after batch.
		// PerUser clustering keeps setup linear so the table stays cheap to
		// produce at large factors; the clustering choice does not change
		// what is measured (snapshot + delta maintenance).
		eng, err := socialscope.New(g, socialscope.Config{
			ItemType: "destination", TopK: socialscope.TopKTA, ClusterStrategy: "peruser",
		})
		if err != nil {
			return err
		}
		if _, err := eng.Search(corpus.Users[0], workload.Categories[0]); err != nil {
			return err
		}
		const batches = 50
		rng := rand.New(rand.NewSource(seed + int64(factor)))
		nextLink := g.MaxLinkID()
		start := time.Now()
		for b := 0; b < batches; b++ {
			muts := make([]graph.Mutation, batchSize)
			for i := range muts {
				nextLink++
				u := data.Users[rng.Intn(len(data.Users))]
				d := corpus.Destinations[rng.Intn(len(corpus.Destinations))]
				tag := data.Tags[rng.Intn(len(data.Tags))]
				l := graph.NewLink(nextLink, u, d, graph.TypeAct, graph.SubtypeTag)
				l.Attrs.Add("tags", tag)
				muts[i] = graph.Mutation{Kind: graph.MutAddLink, Link: l}
			}
			if err := eng.Apply(muts); err != nil {
				return err
			}
		}
		applyPerBatch := time.Since(start) / batches
		flat = append(flat, applyPerBatch)
		benchMetric(fmt.Sprintf("factor%d.apply_per_batch_us", factor),
			float64(applyPerBatch.Microseconds()))
		benchMetric(fmt.Sprintf("factor%d.legacy_per_batch_us", factor),
			float64(legacyPerBatch.Microseconds()))

		fmt.Printf("%-8d %-8d %-8d %-14v %-14v %-10.1f\n",
			factor, g.NumNodes(), g.NumLinks(), legacyPerBatch, applyPerBatch,
			float64(legacyPerBatch)/float64(applyPerBatch))
	}
	if len(flat) == 3 {
		fmt.Printf("\napply/batch growth 1×→4× corpus: %.2f× — bounded by trie depth "+
			"(O(log n) path copies), while the legacy baseline grows linearly; the "+
			"speedup therefore widens with the corpus\n",
			float64(flat[2])/float64(flat[0]))
	}
	return nil
}

// sameLists reports whether two indexes hold identical posting lists.
func sameLists(a, b *index.Index) bool {
	if a.EntryCount() != b.EntryCount() || a.NumLists() != b.NumLists() {
		return false
	}
	type key struct {
		cluster int
		tag     string
	}
	lists := make(map[key][]index.Entry, a.NumLists())
	a.ForEachList(func(cl int, tag string, l []index.Entry) {
		lists[key{cl, tag}] = append([]index.Entry(nil), l...)
	})
	same := true
	b.ForEachList(func(cl int, tag string, l []index.Entry) {
		w, ok := lists[key{cl, tag}]
		if !ok || len(w) != len(l) {
			same = false
			return
		}
		for i := range l {
			if l[i] != w[i] {
				same = false
				return
			}
		}
	})
	return same
}

// runFusion measures the paper's central integration thesis: for general
// queries ("attractions" — one in two Y!Travel queries, Table 1), pure
// semantic relevance cannot discriminate, while the social leg recovers
// the user's planted interest. Ground truth: destinations matching the
// user's planted interest category. Reported: mean precision@5 under
// α = 1 (search only), α = 0.5 (SocialScope fusion), α = 0 (recommendation
// only).
func runFusion(scale int, seed int64) error {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 150 * scale, Destinations: 80 * scale, Seed: seed,
		VisitsPerUser: 8, InterestBias: 0.7,
	})
	if err != nil {
		return err
	}
	d := discovery.NewDiscoverer(corpus.Graph, "destination")
	relevant := func(u graph.NodeID) map[graph.NodeID]bool {
		cat := corpus.Interests[u]
		out := make(map[graph.NodeID]bool)
		for _, dest := range corpus.Destinations {
			if corpus.Graph.Node(dest).Attrs.Get("category") == cat {
				out[dest] = true
			}
		}
		return out
	}
	const k = 5
	sample := corpus.Users
	if len(sample) > 60 {
		sample = sample[:60]
	}
	fmt.Println("Fusion quality — general query \"attractions\", planted interests, precision@5")
	fmt.Printf("%-22s %-12s\n", "alpha (semantic wt)", "mean P@5")
	for _, alpha := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		var total float64
		n := 0
		for _, u := range sample {
			q, err := discovery.ParseQuery("attractions")
			if err != nil {
				return err
			}
			q.Alpha = alpha
			q.K = k
			msg, err := d.Discover(u, q)
			if err != nil {
				return err
			}
			if len(msg.Results) == 0 {
				continue
			}
			rel := relevant(u)
			hit := 0
			for _, r := range msg.Results {
				if rel[r.Item] {
					hit++
				}
			}
			total += float64(hit) / float64(len(msg.Results))
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Printf("%-22.2f %-12.3f\n", alpha, total/float64(n))
	}
	fmt.Println("(α=1 is keyword search alone; lower α folds in the social leg)")
	return nil
}
