package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/persist"
	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

// runBulkload measures the transient (bulk-mutation) storage mode against
// the persistent-only path it replaced, on the cold bulk operations of a
// SocialScope site: deep graph Clone, induced subgraph, JSON decode,
// substrate Extract and the Section 6.2 index Build. Both modes run the
// identical code — persist.DisableTransients routes the transient calls
// back onto per-write path copies — so the delta is purely the storage
// write mode. Allocation is read from runtime.MemStats.TotalAlloc around
// each phase; the transient- and persistent-built indexes (and graphs)
// are cross-checked for byte-identity, the same guarantee the
// differential tests pin: trie shapes are canonical, so the write mode
// can never show through to a reader.
func runBulkload(scale int, seed int64) error {
	fmt.Printf("Bulk build — transient HAMT mode vs persistent-only storage writes\n")
	fmt.Printf("(cold Clone + induced subgraph + Decode + Extract + index Build;\n")
	fmt.Printf("bytes = TotalAlloc over the phase, identical code under both modes)\n\n")

	type phase struct {
		name  string
		bytes [2]uint64 // persistent, transient
		time  [2]time.Duration
	}
	for _, factor := range []int{1, 2, 4} {
		sc := scale * factor
		corpus, err := workload.Tagging(workload.TaggingConfig{
			Users: 150 * sc, Items: 300 * sc, Tags: 20, Seed: seed, TagsPerUser: 15,
		})
		if err != nil {
			return err
		}
		g := corpus.Graph
		cl, err := cluster.Build(g, cluster.NetworkBased, 0.3)
		if err != nil {
			return err
		}
		var enc bytes.Buffer
		if err := g.Encode(&enc); err != nil {
			return err
		}
		keep := make(map[graph.NodeID]struct{})
		for i, id := range g.NodeIDs() {
			if i%2 == 0 {
				keep[id] = struct{}{}
			}
		}

		phases := []phase{{name: "clone"}, {name: "induced"}, {name: "decode"},
			{name: "extract"}, {name: "build"}}
		indexes := make([]*index.Index, 2)
		graphs := make([]*graph.Graph, 2)
		for mode := 0; mode < 2; mode++ {
			persist.DisableTransients = mode == 0
			var data *index.Data
			steps := []func() error{
				func() error { graphs[mode] = g.Clone(); return nil },
				func() error { _ = g.InducedByNodes(keep); return nil },
				func() error {
					_, err := graph.Decode(bytes.NewReader(enc.Bytes()))
					return err
				},
				func() error { data = index.Extract(g); return nil },
				func() error {
					ix, err := index.Build(data, cl, scoring.CountF)
					indexes[mode] = ix
					return err
				},
			}
			for pi, step := range steps {
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				start := time.Now()
				if err := step(); err != nil {
					persist.DisableTransients = false
					return err
				}
				phases[pi].time[mode] = time.Since(start)
				runtime.ReadMemStats(&m1)
				phases[pi].bytes[mode] = m1.TotalAlloc - m0.TotalAlloc
			}
		}
		persist.DisableTransients = false

		fmt.Printf("factor %d — users=%d items=%d nodes=%d links=%d\n",
			factor, len(corpus.Users), len(corpus.Items), g.NumNodes(), g.NumLinks())
		fmt.Printf("%-10s %-14s %-14s %-8s %-12s %-12s %-8s\n",
			"phase", "persist-B", "transient-B", "bytes÷", "persist-t", "transient-t", "wall÷")
		var totP, totT uint64
		var timP, timT time.Duration
		for _, p := range phases {
			totP += p.bytes[0]
			totT += p.bytes[1]
			timP += p.time[0]
			timT += p.time[1]
			fmt.Printf("%-10s %-14d %-14d %-8.2f %-12v %-12v %-8.2f\n",
				p.name, p.bytes[0], p.bytes[1],
				float64(p.bytes[0])/float64(p.bytes[1]),
				p.time[0].Round(time.Microsecond), p.time[1].Round(time.Microsecond),
				float64(p.time[0])/float64(p.time[1]))
			benchMetric(fmt.Sprintf("factor%d.%s_bytes_persistent", factor, p.name), float64(p.bytes[0]))
			benchMetric(fmt.Sprintf("factor%d.%s_bytes_transient", factor, p.name), float64(p.bytes[1]))
		}
		byteRatio := float64(totP) / float64(totT)
		wallRatio := float64(timP) / float64(timT)
		identical := sameLists(indexes[0], indexes[1]) && graphs[0].Equal(graphs[1])
		fmt.Printf("%-10s %-14d %-14d %-8.2f %-12v %-12v %-8.2f\n",
			"total", totP, totT, byteRatio,
			timP.Round(time.Microsecond), timT.Round(time.Microsecond), wallRatio)
		fmt.Printf("alloc reduction %.2f×, wall %.2f×; transient-built index and clone "+
			"byte-identical to persistent-built: %v\n\n", byteRatio, wallRatio, identical)
		if !identical {
			return fmt.Errorf("bulkload: transient and persistent builds diverged at factor %d", factor)
		}
		benchMetric(fmt.Sprintf("factor%d.total_bytes_persistent", factor), float64(totP))
		benchMetric(fmt.Sprintf("factor%d.total_bytes_transient", factor), float64(totT))
		benchMetric(fmt.Sprintf("factor%d.alloc_reduction", factor), byteRatio)
		benchMetric(fmt.Sprintf("factor%d.wall_speedup", factor), wallRatio)
		benchMetric(fmt.Sprintf("factor%d.total_ms_persistent", factor), float64(timP.Milliseconds()))
		benchMetric(fmt.Sprintf("factor%d.total_ms_transient", factor), float64(timT.Milliseconds()))
		benchMetric(fmt.Sprintf("factor%d.nodes", factor), float64(g.NumNodes()))
		benchMetric(fmt.Sprintf("factor%d.links", factor), float64(g.NumLinks()))
		benchMetric(fmt.Sprintf("factor%d.identical", factor), b2f(identical))
	}
	fmt.Println("the ratio widens with corpus size: persistent cold builds discard")
	fmt.Println("O(N log N) path-copied trie nodes, transients claim each node once.")
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
