package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"socialscope/internal/obs"
)

// Machine-readable results: alongside its printed tables, every
// experiment may record named metrics; after the experiment finishes,
// main writes them as BENCH_<exp>.json in -benchdir (default the current
// directory, "" disables). The files give future PRs a stable artifact to
// diff performance against instead of parsing table layouts; one file per
// experiment, overwritten per run.
type benchFile struct {
	Exp         string             `json:"exp"`
	Scale       int                `json:"scale"`
	Seed        int64              `json:"seed"`
	GeneratedAt string             `json:"generated_at"`
	Metrics     map[string]float64 `json:"metrics"`
	// Registry is a flattened snapshot of the obs.Default metrics
	// registry at the end of the run — counters and gauges directly,
	// histograms as _count/_sum/_p50/_p99 — so internal behavior
	// (postings scanned, fsync latency, cache hit counts) lands in the
	// perf trajectory alongside the wall-clock numbers above.
	Registry map[string]float64 `json:"registry,omitempty"`
}

// benchMetrics accumulates the current experiment's metrics; reset by
// main before each runner. Keys are dotted paths ("factor2.build_ms"),
// values plain numbers so diffs need no unit parsing (the key carries
// the unit).
var benchMetrics map[string]float64

func benchMetric(key string, v float64) {
	if benchMetrics != nil {
		benchMetrics[key] = v
	}
}

// writeBenchJSON persists the experiment's metrics. Map keys are emitted
// in sorted order (encoding/json), so the files are diff-stable.
func writeBenchJSON(dir, exp string, scale int, seed int64) error {
	if dir == "" || len(benchMetrics) == 0 {
		return nil
	}
	doc := benchFile{
		Exp:         exp,
		Scale:       scale,
		Seed:        seed,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Metrics:     benchMetrics,
		Registry:    obs.Default.Snapshot(),
	}
	buf, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}
