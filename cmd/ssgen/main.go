// Command ssgen generates synthetic social content datasets (travel or
// tagging corpora) as JSON graphs that ssquery and downstream tools can
// load.
//
// Usage:
//
//	ssgen -kind travel -users 200 -items 100 -seed 42 -o travel.json
//	ssgen -kind tagging -users 150 -items 300 -tags 20 -o tagging.json
package main

import (
	"flag"
	"fmt"
	"os"

	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

func main() {
	kind := flag.String("kind", "travel", "corpus kind: travel | tagging")
	users := flag.Int("users", 200, "number of users")
	items := flag.Int("items", 100, "number of items/destinations")
	tags := flag.Int("tags", 20, "number of distinct tags (tagging corpus)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "travel":
		corpus, err := workload.Travel(workload.TravelConfig{
			Users: *users, Destinations: *items, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		g = corpus.Graph
	case "tagging":
		corpus, err := workload.Tagging(workload.TaggingConfig{
			Users: *users, Items: *items, Tags: *tags, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		g = corpus.Graph
	default:
		fail(fmt.Errorf("unknown kind %q (travel | tagging)", *kind))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	if err := g.Encode(w); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "ssgen: wrote %s\n", g)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ssgen: %v\n", err)
	os.Exit(1)
}
