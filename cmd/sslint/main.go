// Command sslint is the repo's multichecker: it runs the six
// SocialScope analyzers — vfsseam, lockio, ctxflow, closeerr,
// rcupublish, stdlibonly — over the module and exits non-zero on any
// finding. These passes machine-enforce the invariants the compiler
// can't see: durability IO stays behind the vfs.FS seam, no read IO
// under locks, contexts thread through request paths, write-side
// Close/Sync errors surface, nobody writes through a published
// snapshot, and the observability core stays a stdlib-only leaf.
//
// Usage:
//
//	go run ./cmd/sslint ./...
//	go run ./cmd/sslint ./internal/wal ./internal/store/...
//	go run ./cmd/sslint -list
//
// Patterns are package-path patterns relative to the module root
// ("./..." everything, "./x" one package, "./x/..." a subtree). See
// docs/static-analysis.md for each analyzer's invariant, the
// historical bug behind it, and the //sslint:ignore escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"socialscope/internal/analysis"
	"socialscope/internal/analysis/closeerr"
	"socialscope/internal/analysis/ctxflow"
	"socialscope/internal/analysis/lockio"
	"socialscope/internal/analysis/rcupublish"
	"socialscope/internal/analysis/stdlibonly"
	"socialscope/internal/analysis/vfsseam"
)

var analyzers = []*analysis.Analyzer{
	vfsseam.Analyzer,
	lockio.Analyzer,
	ctxflow.Analyzer,
	closeerr.Analyzer,
	rcupublish.Analyzer,
	stdlibonly.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	active, err := selectAnalyzers(*only)
	if err != nil {
		fail(err)
	}

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fail(err)
	}
	if len(pkgs) == 0 {
		fail(fmt.Errorf("no packages under %s", root))
	}
	module := pkgs[0].Path // LoadModule sorts; the root package path is the module name
	for _, p := range pkgs {
		if !strings.Contains(p.Path, "/") {
			module = p.Path
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []*analysis.Package
	for _, pkg := range pkgs {
		if matchesAny(patterns, module, pkg.Path) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		fail(fmt.Errorf("no packages match %v", patterns))
	}

	// All packages load (the //ss:immutable registry is cross-package)
	// but only findings in the selected ones are reported.
	findings, err := analysis.Run(pkgs, active)
	if err != nil {
		fail(err)
	}
	inSel := make(map[string]bool, len(selected))
	for _, p := range selected {
		inSel[p.Path] = true
	}
	bad := 0
	for _, f := range findings {
		if !inSel[owningPkg(pkgs, f.Pos.Filename)] {
			continue
		}
		rel := f.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// matchesAny resolves "./"-relative patterns against the module path
// and matches pkgPath go-style.
func matchesAny(patterns []string, module, pkgPath string) bool {
	for _, pat := range patterns {
		switch {
		case pat == "./...":
			return true
		case pat == ".":
			if pkgPath == module {
				return true
			}
		default:
			p := strings.TrimPrefix(pat, "./")
			if analysis.Match(module+"/"+p, pkgPath) {
				return true
			}
		}
	}
	return false
}

// owningPkg maps a finding's file back to its package path.
func owningPkg(pkgs []*analysis.Package, filename string) string {
	for _, p := range pkgs {
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == filename {
				return p.Path
			}
		}
	}
	return ""
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
	os.Exit(1)
}
