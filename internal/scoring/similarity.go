package scoring

import (
	"math"
	"sort"
)

// Set is a set of comparable scalar values (node ids, items, tags) used by
// the similarity measures that drive clustering (Definitions 11-13), social
// grouping (Definition 14) and collaborative filtering (Example 5).
type Set[T comparable] map[T]struct{}

// NewSet builds a set from the given members.
func NewSet[T comparable](members ...T) Set[T] {
	s := make(Set[T], len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts a member.
func (s Set[T]) Add(m T) { s[m] = struct{}{} }

// Has reports membership.
func (s Set[T]) Has(m T) bool { _, ok := s[m]; return ok }

// Remove deletes a member (no-op when absent).
func (s Set[T]) Remove(m T) { delete(s, m) }

// Clone returns an independent copy of the set.
func (s Set[T]) Clone() Set[T] {
	c := make(Set[T], len(s))
	for m := range s {
		c[m] = struct{}{}
	}
	return c
}

// Len returns the cardinality.
func (s Set[T]) Len() int { return len(s) }

// IntersectionSize returns |s ∩ t| without materializing the intersection.
func IntersectionSize[T comparable](s, t Set[T]) int {
	if len(t) < len(s) {
		s, t = t, s
	}
	n := 0
	for m := range s {
		if _, ok := t[m]; ok {
			n++
		}
	}
	return n
}

// UnionSize returns |s ∪ t|.
func UnionSize[T comparable](s, t Set[T]) int {
	return len(s) + len(t) - IntersectionSize(s, t)
}

// Jaccard returns |s∩t| / |s∪t|; 0 when both sets are empty. This is the
// predicate kernel of Definitions 11 (network-based), 12 (behavior-based),
// 13 (hybrid) and 14 (social grouping) as well as the CF user similarity in
// Example 5 step 5.
func Jaccard[T comparable](s, t Set[T]) float64 {
	u := UnionSize(s, t)
	if u == 0 {
		return 0
	}
	return float64(IntersectionSize(s, t)) / float64(u)
}

// Dice returns 2|s∩t| / (|s|+|t|); 0 when both sets are empty.
func Dice[T comparable](s, t Set[T]) float64 {
	d := len(s) + len(t)
	if d == 0 {
		return 0
	}
	return 2 * float64(IntersectionSize(s, t)) / float64(d)
}

// Overlap returns |s∩t| / min(|s|,|t|); 0 when either set is empty.
func Overlap[T comparable](s, t Set[T]) float64 {
	m := min(len(s), len(t))
	if m == 0 {
		return 0
	}
	return float64(IntersectionSize(s, t)) / float64(m)
}

// Cosine returns the cosine similarity between two sparse vectors.
func Cosine[T comparable](a, b map[T]float64) float64 {
	var dot, na, nb float64
	for k, v := range a {
		na += v * v
		if w, ok := b[k]; ok {
			dot += v * w
		}
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Members returns the set's members in an unspecified order.
func (s Set[T]) Members() []T {
	out := make([]T, 0, len(s))
	for m := range s {
		out = append(out, m)
	}
	return out
}

// SortedInts is a helper that returns sorted members for integer-like sets,
// giving deterministic output in reports and tests.
func SortedInts[T ~int | ~int64](s Set[T]) []T {
	out := s.Members()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
