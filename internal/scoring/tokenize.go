package scoring

import (
	"strings"
	"unicode"
)

// stopwords are dropped during tokenization. The list is deliberately small:
// query terms such as "things to do" must survive classification upstream,
// so only bare glue words appear here.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"by": {}, "for": {}, "from": {}, "in": {}, "is": {}, "it": {}, "of": {},
	"on": {}, "or": {}, "the": {}, "to": {}, "with": {},
}

// Tokenize lowercases the input and splits it into alphanumeric terms,
// dropping stopwords. It is the single tokenizer shared by scoring, the
// query model, and the query classifier, so that a term matches itself
// across layers.
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if _, stop := stopwords[f]; stop {
			continue
		}
		out = append(out, f)
	}
	return out
}

// TokenSet returns the distinct tokens of s.
func TokenSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, t := range Tokenize(s) {
		set[t] = struct{}{}
	}
	return set
}

// TermFreq returns token → occurrence count for s.
func TermFreq(s string) map[string]int {
	tf := make(map[string]int)
	for _, t := range Tokenize(s) {
		tf[t]++
	}
	return tf
}

// IsStopword reports whether the (lowercase) term is in the stopword list.
func IsStopword(term string) bool {
	_, ok := stopwords[term]
	return ok
}
