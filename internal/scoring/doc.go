// Package scoring implements the relevance machinery SocialScope layers on
// its algebra: semantic relevance of nodes and links to keyword queries
// (tf-idf and BM25 over attribute text), set and vector similarities used by
// clustering and collaborative filtering (Jaccard, cosine, Dice, overlap),
// and the monotone score-composition framework of Section 6.2
// (score_k(i,u) = f(network(u) ∩ taggers(i,k)), score(i,u) = g(...)).
//
// # The monotonicity contract
//
// The framework's two function classes carry an implicit contract every
// implementation must honor, because the index and top-k layers rely on it
// for correctness, not just for quality:
//
//   - UserSetFn f must be monotone in set containment: S ⊆ T implies
//     f(S) ≤ f(T). Since every admissible f depends on the user set only
//     through its size, the Go type takes the cardinality, and the
//     contract reads: a ≤ b implies f(a) ≤ f(b), with f(0) = 0.
//   - AggregateFn g must be monotone in every argument: if x_i ≤ y_i for
//     all i then g(x) ≤ g(y), with g(0, ..., 0) = 0.
//
// Two load-bearing consequences:
//
//   - Equation 1's cluster upper bound is admissible. The per-(cluster,
//     tag) posting lists of internal/index store max_{u∈C} score_k(i, u);
//     monotone f guarantees no member of the cluster can exceed the
//     stored value, so a list entry bounds the querying user's true
//     per-keyword score from above.
//   - Threshold-algorithm early termination is safe. internal/topk
//     assembles a threshold g(frontier_1, ..., frontier_n) from the
//     current heads of the sorted lists; monotone g guarantees no unseen
//     item can beat it, so once the k-th exact score strictly exceeds the
//     threshold the top k is provably final — stopping early never
//     changes the answer, it only skips postings that could not matter.
//
// A non-monotone f or g silently voids both guarantees: the index would
// store invalid bounds and TA/NRA could terminate with wrong results.
// CountF, LogCountF, SumG, MaxG and MinPositiveG all satisfy the
// contract; any new implementation must too.
package scoring
