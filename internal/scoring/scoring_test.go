package scoring

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"socialscope/internal/graph"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Denver attractions", []string{"denver", "attractions"}},
		{"things to do", []string{"things", "do"}},
		{"Barcelona family trip with babies", []string{"barcelona", "family", "trip", "babies"}},
		{"  B's  Ballpark-Museum ", []string{"b", "s", "ballpark", "museum"}},
		{"", nil},
		{"the of and", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenSetAndTermFreq(t *testing.T) {
	ts := TokenSet("baseball baseball rockies")
	if len(ts) != 2 {
		t.Errorf("TokenSet = %v", ts)
	}
	tf := TermFreq("baseball baseball rockies")
	if tf["baseball"] != 2 || tf["rockies"] != 1 {
		t.Errorf("TermFreq = %v", tf)
	}
	if !IsStopword("the") || IsStopword("denver") {
		t.Error("IsStopword wrong")
	}
}

func buildCorpus() *Corpus {
	c := NewCorpus()
	c.AddDoc("denver attractions baseball coors field")
	c.AddDoc("san francisco fisherman wharf")
	c.AddDoc("barcelona parc ciutadella family")
	c.AddDoc("denver ballpark museum baseball")
	return c
}

func TestCorpusStats(t *testing.T) {
	c := buildCorpus()
	if c.DocCount() != 4 {
		t.Errorf("DocCount = %d", c.DocCount())
	}
	if c.DocFreq("denver") != 2 || c.DocFreq("baseball") != 2 || c.DocFreq("missing") != 0 {
		t.Error("DocFreq wrong")
	}
	// Rarer terms get higher IDF.
	if c.IDF("barcelona") <= c.IDF("denver") {
		t.Error("IDF not decreasing in document frequency")
	}
	if c.IDF("anything") <= 0 {
		t.Error("IDF must stay positive")
	}
}

func TestTFIDF(t *testing.T) {
	c := buildCorpus()
	q := Tokenize("denver baseball")
	d1 := c.TFIDF(q, "denver ballpark museum baseball")
	d2 := c.TFIDF(q, "san francisco fisherman wharf")
	if d1 <= d2 {
		t.Errorf("matching doc %f should outscore non-matching %f", d1, d2)
	}
	if d2 != 0 {
		t.Errorf("non-matching doc score = %f", d2)
	}
	if c.TFIDF(nil, "anything") != 0 {
		t.Error("empty query should score 0")
	}
	if c.TFIDF(q, "") != 0 {
		t.Error("empty doc should score 0")
	}
}

func TestBM25(t *testing.T) {
	c := buildCorpus()
	q := Tokenize("denver baseball")
	full := c.BM25(q, "denver baseball stadium")
	half := c.BM25(q, "denver hotels downtown")
	none := c.BM25(q, "paris louvre")
	if !(full > half && half > none && none == 0) {
		t.Errorf("BM25 ordering broken: %f %f %f", full, half, none)
	}
	if c.BM25(nil, "x") != 0 {
		t.Error("empty query should score 0")
	}
	// Term-frequency saturation: doubling tf shouldn't double the score.
	one := c.BM25([]string{"denver"}, "denver")
	two := c.BM25([]string{"denver"}, "denver denver")
	if two >= 2*one {
		t.Errorf("BM25 not saturating: tf1=%f tf2=%f", one, two)
	}
}

func TestDefaultScorer(t *testing.T) {
	q := Tokenize("denver attractions")
	if got := DefaultScorer(q, "denver attractions and museums"); got != 1 {
		t.Errorf("full match = %f", got)
	}
	if got := DefaultScorer(q, "denver hotels"); got != 0.5 {
		t.Errorf("half match = %f", got)
	}
	if got := DefaultScorer(q, "paris"); got != 0 {
		t.Errorf("no match = %f", got)
	}
	if DefaultScorer(nil, "x") != 0 {
		t.Error("empty query should be 0")
	}
}

func TestNodeCorpus(t *testing.T) {
	b := graph.NewBuilder()
	b.Node([]string{graph.TypeItem, "city"}, "name", "Denver")
	b.Node([]string{graph.TypeUser}, "name", "John")
	b.Node([]string{graph.TypeItem, "city"}, "name", "Barcelona")
	c := NodeCorpus(b.Graph(), graph.TypeItem)
	if c.DocCount() != 2 {
		t.Errorf("NodeCorpus DocCount = %d", c.DocCount())
	}
	all := NodeCorpus(b.Graph(), "")
	if all.DocCount() != 3 {
		t.Errorf("NodeCorpus('') DocCount = %d", all.DocCount())
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(2, 3, 4, 5)
	if IntersectionSize(a, b) != 2 {
		t.Error("IntersectionSize wrong")
	}
	if UnionSize(a, b) != 5 {
		t.Error("UnionSize wrong")
	}
	if got := Jaccard(a, b); got != 0.4 {
		t.Errorf("Jaccard = %f", got)
	}
	if got := Dice(a, b); math.Abs(got-4.0/7.0) > 1e-12 {
		t.Errorf("Dice = %f", got)
	}
	if got := Overlap(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Overlap = %f", got)
	}
	empty := NewSet[int]()
	if Jaccard(empty, empty) != 0 || Dice(empty, empty) != 0 || Overlap(empty, a) != 0 {
		t.Error("empty-set similarities should be 0")
	}
	a.Add(9)
	if !a.Has(9) || a.Len() != 4 {
		t.Error("Add/Has/Len wrong")
	}
	if got := SortedInts(NewSet(3, 1, 2)); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("SortedInts = %v", got)
	}
	if len(a.Members()) != 4 {
		t.Error("Members wrong")
	}
}

func TestCosine(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %f", got)
	}
	b := map[string]float64{"z": 3}
	if Cosine(a, b) != 0 {
		t.Error("orthogonal cosine should be 0")
	}
	if Cosine(a, map[string]float64{}) != 0 {
		t.Error("empty vector cosine should be 0")
	}
}

func TestMonotoneFunctions(t *testing.T) {
	if CountF(5) != 5 {
		t.Error("CountF wrong")
	}
	if LogCountF(0) != 0 || LogCountF(1) <= 0 {
		t.Error("LogCountF wrong at boundary")
	}
	if SumG([]float64{1, 2, 3}) != 6 {
		t.Error("SumG wrong")
	}
	if MaxG([]float64{1, 5, 3}) != 5 || MaxG(nil) != 0 {
		t.Error("MaxG wrong")
	}
	if MinPositiveG([]float64{2, 1, 3}) != 1 || MinPositiveG(nil) != 0 {
		t.Error("MinPositiveG wrong")
	}
}

// Property: Jaccard is symmetric, bounded in [0,1], and 1 exactly for equal
// nonempty sets.
func TestQuickJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewSet[uint8](), NewSet[uint8]()
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if j1 != j2 || j1 < 0 || j1 > 1 {
			return false
		}
		if len(a) > 0 && Jaccard(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity of f=count and g=sum — growing the input never
// lowers the score. This is the admissibility precondition for the index
// layer's upper bounds.
func TestQuickMonotonicity(t *testing.T) {
	f := func(n uint8, extra uint8, scores []float64) bool {
		if CountF(int(n)) > CountF(int(n)+int(extra)) {
			return false
		}
		if LogCountF(int(n)) > LogCountF(int(n)+int(extra)) {
			return false
		}
		for i := range scores {
			scores[i] = math.Abs(scores[i])
			if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
				scores[i] = 1
			}
		}
		base := SumG(scores)
		grown := SumG(append(append([]float64(nil), scores...), 1.0))
		return grown >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: BM25 and TFIDF are non-negative and zero on disjoint vocabulary.
func TestQuickScoringNonNegative(t *testing.T) {
	c := buildCorpus()
	f := func(q, d string) bool {
		qq := Tokenize(q)
		if c.BM25(qq, d) < 0 || c.TFIDF(qq, d) < 0 {
			return false
		}
		s := DefaultScorer(qq, d)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
