package scoring

import "math"

// Section 6.2 defines the network-aware scoring framework used by the
// activity-driven indexes:
//
//	score_k(i, u) = f(network(u) ∩ taggers(i, k))
//	score(i, u)   = g(score_k1(i,u), ..., score_kn(i,u))
//
// where f is a monotone function of a user set and g a monotone aggregate.
// The paper fixes f = count and g = sum "for ease of exposition" while
// keeping the framework general; we do the same, exposing both as values of
// monotone function types so the index layer stays generic.

// UserSetFn is the class of f: a monotone function from a set of users
// (represented by its cardinality — every f the framework admits depends on
// the set only through monotone set containment, and count-style functions
// depend only on size) to a score. Monotonicity (S ⊆ T ⇒ f(S) ≤ f(T)) is
// what makes cluster-level max upper bounds admissible for top-k pruning.
type UserSetFn func(users int) float64

// AggregateFn is the class of g: a monotone aggregate over per-keyword
// scores.
type AggregateFn func(scores []float64) float64

// CountF is the paper's f = count: the score of an item for (user, tag) is
// the number of the user's network members who tagged the item with the tag.
func CountF(users int) float64 { return float64(users) }

// LogCountF is a dampened alternative: ln(1+count). Still monotone.
func LogCountF(users int) float64 {
	if users <= 0 {
		return 0
	}
	return math.Log1p(float64(users))
}

// SumG is the paper's g = sum.
func SumG(scores []float64) float64 {
	var s float64
	for _, v := range scores {
		s += v
	}
	return s
}

// MaxG is a monotone alternative aggregate.
func MaxG(scores []float64) float64 {
	var m float64
	for _, v := range scores {
		if v > m {
			m = v
		}
	}
	return m
}

// MinPositiveG is a conjunctive-flavored aggregate: the minimum of the
// scores (0 if any keyword contributes nothing). Monotone in each argument.
func MinPositiveG(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	m := scores[0]
	for _, v := range scores[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
