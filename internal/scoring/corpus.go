package scoring

import (
	"math"

	"socialscope/internal/graph"
)

// Corpus holds document statistics over a set of texts (typically the
// searchable text of every node of a given type in a social content graph).
// It supports tf-idf and BM25 scoring of keyword queries against documents,
// providing the paper's "semantic relevance" leg.
type Corpus struct {
	docCount  int
	docFreq   map[string]int
	totalLen  int
	avgDocLen float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// AddDoc folds one document's text into the corpus statistics.
func (c *Corpus) AddDoc(text string) {
	toks := Tokenize(text)
	c.docCount++
	c.totalLen += len(toks)
	seen := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		c.docFreq[t]++
	}
	c.avgDocLen = float64(c.totalLen) / float64(c.docCount)
}

// CorpusFromGraph builds a corpus from the searchable text of every node in
// g that carries nodeType ("" means every node).
func CorpusFromGraph(g *graph.Graph, nodeType string) *Corpus {
	c := NewCorpus()
	for _, n := range g.Nodes() {
		if nodeType != "" && !n.HasType(nodeType) {
			return nil
		}
		c.AddDoc(n.Text())
	}
	return c
}

// NodeCorpus builds a corpus from nodes of the given type only, skipping
// others (unlike CorpusFromGraph, which requires homogeneity).
func NodeCorpus(g *graph.Graph, nodeType string) *Corpus {
	c := NewCorpus()
	for _, n := range g.Nodes() {
		if nodeType == "" || n.HasType(nodeType) {
			c.AddDoc(n.Text())
		}
	}
	return c
}

// DocCount returns the number of documents folded in.
func (c *Corpus) DocCount() int { return c.docCount }

// DocFreq returns in how many documents the term occurs.
func (c *Corpus) DocFreq(term string) int { return c.docFreq[term] }

// IDF returns the smoothed inverse document frequency of the term:
// ln(1 + (N - df + 0.5)/(df + 0.5)), the BM25+ formulation, which stays
// positive for terms present in every document.
func (c *Corpus) IDF(term string) float64 {
	df := float64(c.docFreq[term])
	n := float64(c.docCount)
	return math.Log(1 + (n-df+0.5)/(df+0.5))
}

// TFIDF scores a document's text against query keywords: sum over query
// terms of tf * idf, normalized by document length. Zero when nothing
// matches.
func (c *Corpus) TFIDF(query []string, docText string) float64 {
	if len(query) == 0 {
		return 0
	}
	tf := TermFreq(docText)
	docLen := 0
	for _, n := range tf {
		docLen += n
	}
	if docLen == 0 {
		return 0
	}
	var score float64
	for _, q := range query {
		if f := tf[q]; f > 0 {
			score += (float64(f) / float64(docLen)) * c.IDF(q)
		}
	}
	return score
}

// BM25 parameters. k1 saturates term frequency; b controls length
// normalization. Defaults follow the standard Robertson settings.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BM25 scores a document's text against query keywords with Okapi BM25.
func (c *Corpus) BM25(query []string, docText string) float64 {
	if len(query) == 0 {
		return 0
	}
	tf := TermFreq(docText)
	docLen := 0
	for _, n := range tf {
		docLen += n
	}
	norm := 1.0
	if c.avgDocLen > 0 {
		norm = 1 - bm25B + bm25B*float64(docLen)/c.avgDocLen
	}
	var score float64
	for _, q := range query {
		f := float64(tf[q])
		if f == 0 {
			continue
		}
		score += c.IDF(q) * (f * (bm25K1 + 1)) / (f + bm25K1*norm)
	}
	return score
}

// DefaultScorer is the scoring function selections fall back to when the
// paper's optional S parameter is omitted but the condition carries
// keywords (Section 5.1). It needs no corpus: the score is the fraction of
// query terms present in the document, a simple containment measure that is
// deterministic and corpus-free.
func DefaultScorer(query []string, docText string) float64 {
	if len(query) == 0 {
		return 0
	}
	doc := TokenSet(docText)
	hit := 0
	for _, q := range query {
		if _, ok := doc[q]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(query))
}
