package scoring

import "testing"

func BenchmarkTokenize(b *testing.B) {
	const s = "Barcelona family trip with babies and things to do near the Parc"
	for i := 0; i < b.N; i++ {
		Tokenize(s)
	}
}

func BenchmarkBM25(b *testing.B) {
	c := buildCorpus()
	q := Tokenize("denver baseball attractions")
	const doc = "denver ballpark museum baseball attractions stadium field"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BM25(q, doc)
	}
}

func BenchmarkJaccard(b *testing.B) {
	x := NewSet(1, 2, 3, 4, 5, 6, 7, 8)
	y := NewSet(5, 6, 7, 8, 9, 10, 11, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}
