package federation

import "sort"

// Integrator is the Content Integrator of Figure 1: it pulls social data
// from remote sites through their APIs and tracks per-user versions so the
// Data Manager can reason about staleness.
type Integrator struct {
	source   *SocialSite
	versions map[string]int // last synced profile version per user
}

// NewIntegrator builds an integrator over one remote social site.
func NewIntegrator(source *SocialSite) *Integrator {
	return &Integrator{source: source, versions: make(map[string]int)}
}

// Pull fetches the given users' profiles and connections (two calls per
// user) and records the synced versions.
func (in *Integrator) Pull(users []string) (map[string]Profile, []Connection, error) {
	profiles := make(map[string]Profile, len(users))
	var conns []Connection
	for _, id := range users {
		p, err := in.source.FetchProfile(id)
		if err != nil {
			return nil, nil, err
		}
		profiles[id] = p
		in.versions[id] = p.Version
		cs, err := in.source.FetchConnections(id)
		if err != nil {
			return nil, nil, err
		}
		conns = append(conns, cs...)
	}
	return profiles, conns, nil
}

// StaleUsers returns the users whose authoritative profile version is
// ahead of the last synced one. (Instrumentation: a real deployment would
// learn this from change feeds; the experiments use it as ground truth.)
func (in *Integrator) StaleUsers() []string {
	var out []string
	for id, v := range in.versions {
		if in.source.ProfileVersion(id) > v {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SyncedVersion returns the last version pulled for the user (0 when the
// user has never been synced).
func (in *Integrator) SyncedVersion(id string) int { return in.versions[id] }
