package federation

import (
	"strings"
	"testing"

	"socialscope/internal/graph"
)

func seedSocial(t testing.TB) *SocialSite {
	t.Helper()
	s := NewSocialSite("fb")
	for _, id := range []string{"u:a", "u:b", "u:c"} {
		s.CreateProfile(Profile{ID: id, Name: id})
	}
	if err := s.Connect("u:a", "u:b", "friend"); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("u:b", "u:c", "friend"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSocialSiteAPIAccounting(t *testing.T) {
	s := seedSocial(t)
	if s.Stats().Calls != 0 {
		t.Fatal("local mutations should not charge calls")
	}
	if _, err := s.FetchProfile("u:a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchConnections("u:a"); err != nil {
		t.Fatal(err)
	}
	s.FetchActivities("u:a")
	if got := s.Stats().Calls; got != 3 {
		t.Errorf("calls = %d, want 3", got)
	}
	if s.Stats().SimLatencyU != 3*CallCost {
		t.Error("latency accounting wrong")
	}
	if _, err := s.FetchProfile("nope"); err == nil {
		t.Error("unknown profile fetch accepted")
	}
	if _, err := s.FetchConnections("nope"); err == nil {
		t.Error("unknown connections fetch accepted")
	}
	s.ResetStats()
	if s.Stats().Calls != 0 {
		t.Error("ResetStats failed")
	}
}

func TestSocialSiteVersioning(t *testing.T) {
	s := seedSocial(t)
	if v := s.ProfileVersion("u:a"); v != 1 {
		t.Fatalf("initial version = %d", v)
	}
	if err := s.UpdateProfile("u:a", []string{"baseball"}); err != nil {
		t.Fatal(err)
	}
	if v := s.ProfileVersion("u:a"); v != 2 {
		t.Errorf("version after update = %d", v)
	}
	if err := s.UpdateProfile("nope", nil); err == nil {
		t.Error("unknown profile update accepted")
	}
	if s.ProfileVersion("nope") != 0 {
		t.Error("unknown profile version should be 0")
	}
	if err := s.Connect("nope", "u:a", "friend"); err == nil {
		t.Error("connect with unknown user accepted")
	}
}

func TestDecentralizedModel(t *testing.T) {
	d := NewDecentralized()
	if err := d.RegisterUser(Profile{ID: "u:a", Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u:a", "u:b"); err == nil {
		t.Error("connection to unregistered user accepted")
	}
	if err := d.RegisterUser(Profile{ID: "u:b", Name: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u:a", "u:b"); err != nil {
		t.Fatal(err)
	}
	d.AddItem("item:1", []string{"baseball"})
	if err := d.RecordActivity(Activity{User: "u:a", Item: "item:1", Kind: "tag"}); err != nil {
		t.Fatal(err)
	}
	g, err := d.LocalGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.CountNodes(graph.TypeUser) != 2 || g.CountNodes(graph.TypeItem) != 1 {
		t.Errorf("graph = %v", g)
	}
	if g.CountLinks(graph.TypeConnect) != 1 || g.CountLinks(graph.TypeAct) != 1 {
		t.Errorf("links = %v", g.Links())
	}
	if d.RemoteCalls().Calls != 0 {
		t.Error("decentralized model made remote calls")
	}
	if d.Name() != "decentralized" {
		t.Error("name wrong")
	}
}

func TestClosedCartelChargesForAnalysis(t *testing.T) {
	social := NewSocialSite("fb")
	c := NewClosedCartel(social)
	for _, id := range []string{"u:a", "u:b"} {
		if err := c.RegisterUser(Profile{ID: id, Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect("u:a", "u:b"); err != nil {
		t.Fatal(err)
	}
	c.AddItem("item:1", nil)
	if err := c.RecordActivity(Activity{User: "u:a", Item: "item:1", Kind: "tag"}); err != nil {
		t.Fatal(err)
	}
	// The activity went remote (1 call).
	if got := c.RemoteCalls().Calls; got != 1 {
		t.Errorf("calls after activity = %d, want 1", got)
	}
	g, err := c.LocalGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Graph reconstruction costs 3 calls per user.
	if got := c.RemoteCalls().Calls; got != 1+3*2 {
		t.Errorf("calls after analysis = %d, want 7", got)
	}
	if g.CountLinks(graph.TypeAct) != 1 || g.CountLinks(graph.TypeConnect) != 1 {
		t.Errorf("reconstructed graph wrong: %v", g.Links())
	}
	if c.Name() != "closed-cartel" {
		t.Error("name wrong")
	}
}

func TestOpenCartelSyncAndPushback(t *testing.T) {
	social := NewSocialSite("fb")
	o := NewOpenCartel(social)
	for _, id := range []string{"u:a", "u:b"} {
		if err := o.RegisterUser(Profile{ID: id, Name: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Local connection pushed back to the social site.
	if err := o.Connect("u:a", "u:b"); err != nil {
		t.Fatal(err)
	}
	social.ResetStats()
	if conns, err := social.FetchConnections("u:a"); err != nil || len(conns) != 1 {
		t.Fatalf("push-back failed: %v %v", conns, err)
	}

	o.AddItem("item:1", nil)
	if err := o.RecordActivity(Activity{User: "u:a", Item: "item:1", Kind: "visit"}); err != nil {
		t.Fatal(err)
	}
	social.ResetStats()
	if err := o.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Sync: 2 calls per user.
	if got := social.Stats().Calls; got != 4 {
		t.Errorf("sync calls = %d, want 4", got)
	}
	g, err := o.LocalGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Local analysis after sync: no further remote calls.
	if got := social.Stats().Calls; got != 4 {
		t.Errorf("analysis charged %d extra calls", got-4)
	}
	if g.CountLinks(graph.TypeConnect) != 1 || g.CountLinks(graph.TypeAct) != 1 {
		t.Errorf("graph = %v", g.Links())
	}
	if o.Name() != "open-cartel" {
		t.Error("name wrong")
	}
}

func TestIntegratorStaleness(t *testing.T) {
	social := seedSocial(t)
	in := NewIntegrator(social)
	if _, _, err := in.Pull([]string{"u:a", "u:b"}); err != nil {
		t.Fatal(err)
	}
	if len(in.StaleUsers()) != 0 {
		t.Error("fresh sync reported stale users")
	}
	if err := social.UpdateProfile("u:a", []string{"jazz"}); err != nil {
		t.Fatal(err)
	}
	stale := in.StaleUsers()
	if len(stale) != 1 || stale[0] != "u:a" {
		t.Errorf("stale = %v", stale)
	}
	if in.SyncedVersion("u:a") != 1 {
		t.Error("synced version wrong")
	}
	if _, _, err := in.Pull([]string{"nope"}); err == nil {
		t.Error("pull of unknown user accepted")
	}
}

func TestActivityManagerClassification(t *testing.T) {
	am := NewActivityManager()
	am.Observe("u:hot", 10)
	am.Observe("u:warm", 4)
	am.Observe("u:cold", 1)
	if am.Classify("u:hot", 3, 8) != HighActivity {
		t.Error("hot user misclassified")
	}
	if am.Classify("u:warm", 3, 8) != MediumActivity {
		t.Error("warm user misclassified")
	}
	if am.Classify("u:cold", 3, 8) != LowActivity {
		t.Error("cold user misclassified")
	}
	if am.Classify("u:unknown", 3, 8) != LowActivity {
		t.Error("unknown user should be low")
	}
	for _, c := range []ActivityClass{LowActivity, MediumActivity, HighActivity} {
		if c.String() == "" || c.String() == "unknown" {
			t.Error("class String broken")
		}
	}
	if ActivityClass(9).String() != "unknown" {
		t.Error("unknown class String broken")
	}
}

func TestSyncPolicies(t *testing.T) {
	users := []string{"u:a", "u:b"}
	uni := UniformPolicy{Period: 2}
	if got := uni.Due(1, users); got != nil {
		t.Errorf("round 1 due = %v", got)
	}
	if got := uni.Due(2, users); len(got) != 2 {
		t.Errorf("round 2 due = %v", got)
	}
	if got := (UniformPolicy{}).Due(1, users); len(got) != 2 {
		t.Error("zero period should default to every round")
	}

	am := NewActivityManager()
	am.Observe("u:a", 10) // high
	pol := ActivityDrivenPolicy{Manager: am, MediumCount: 3, HighCount: 8}
	due1 := pol.Due(1, users)
	if len(due1) != 1 || due1[0] != "u:a" {
		t.Errorf("round 1 due = %v", due1)
	}
	due4 := pol.Due(4, users) // low users due on round 4 (default LowPeriod)
	if len(due4) != 2 {
		t.Errorf("round 4 due = %v", due4)
	}
	if pol.Name() == "" || uni.Name() == "" {
		t.Error("policy names empty")
	}
}

func TestSimulateSyncActivityBeatsUniformOnCost(t *testing.T) {
	build := func() (*SocialSite, *OpenCartel) {
		s := NewSocialSite("fb")
		for _, id := range []string{"u:hot", "u:cold1", "u:cold2", "u:cold3"} {
			s.CreateProfile(Profile{ID: id, Name: id})
		}
		return s, NewOpenCartel(s)
	}
	// The hot user mutates every round; cold users never do.
	mutator := func(round int) map[string]int {
		return map[string]int{"u:hot": 5}
	}
	mutate := func(s *SocialSite) func(int) map[string]int {
		return func(round int) map[string]int {
			if err := s.UpdateProfile("u:hot", []string{"r"}); err != nil {
				panic(err)
			}
			return mutator(round)
		}
	}

	s1, o1 := build()
	uniOut, err := SimulateSync(s1, o1, UniformPolicy{Period: 1}, nil, 8, mutate(s1))
	if err != nil {
		t.Fatal(err)
	}
	s2, o2 := build()
	am := NewActivityManager()
	actOut, err := SimulateSync(s2, o2, ActivityDrivenPolicy{
		Manager: am, MediumCount: 2, HighCount: 4, MediumPeriod: 2, LowPeriod: 4,
	}, am, 8, mutate(s2))
	if err != nil {
		t.Fatal(err)
	}
	// Activity-driven: far fewer calls (skips cold users most rounds)…
	if actOut.Calls >= uniOut.Calls {
		t.Errorf("activity-driven calls %d should undercut uniform %d", actOut.Calls, uniOut.Calls)
	}
	// …with no staleness on the only mutating (hot) user beyond uniform's.
	if actOut.StaleRate() > uniOut.StaleRate() {
		t.Errorf("activity-driven stale rate %f worse than uniform %f",
			actOut.StaleRate(), uniOut.StaleRate())
	}
	if uniOut.Reads == 0 || actOut.Rounds != 8 {
		t.Error("outcome bookkeeping wrong")
	}
	if (SyncOutcome{}).StaleRate() != 0 {
		t.Error("zero-read stale rate should be 0")
	}
}

func TestCompareModelsMatchesPaperTable2(t *testing.T) {
	tbl, err := CompareModels()
	if err != nil {
		t.Fatal(err)
	}
	// Every cell of the paper's Table 2, asserted verbatim.
	want := map[[2]string]string{
		{"which site", "decentralized"}:    "content site",
		{"which site", "closed-cartel"}:    "social site",
		{"which site", "open-cartel"}:      "content site",
		{"multiple same", "decentralized"}: "yes",
		{"multiple same", "closed-cartel"}: "no",
		{"multiple same", "open-cartel"}:   "no",
	}
	for k, v := range want {
		got, err := tbl.Cell(k[0], k[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("cell(%q, %q) = %q, want %q", k[0], k[1], got, v)
		}
	}
	// Content-site and social-site control rows.
	type rowWant struct {
		factor string
		cells  [3]string
	}
	// Locate rows by group+factor to disambiguate the duplicated factors.
	findRow := func(group, factor string) *Table2Row {
		for i := range tbl.Rows {
			if tbl.Rows[i].Group == group && strings.Contains(tbl.Rows[i].Factor, factor) {
				return &tbl.Rows[i]
			}
		}
		return nil
	}
	checks := []struct {
		group, factor string
		cells         [3]string
	}{
		{"content sites", "control over content", [3]string{"yes", "limited", "yes"}},
		{"content sites", "control over social graph", [3]string{"yes", "no", "limited"}},
		{"content sites", "control over activities", [3]string{"yes", "no", "yes"}},
		{"social sites", "control over content", [3]string{"no", "limited", "no"}},
		{"social sites", "control over social graph", [3]string{"no", "yes", "yes"}},
		{"social sites", "control over activities", [3]string{"no", "yes", "limited"}},
	}
	for _, c := range checks {
		r := findRow(c.group, c.factor)
		if r == nil {
			t.Fatalf("missing row %s / %s", c.group, c.factor)
		}
		if r.Cells != c.cells {
			t.Errorf("%s / %s = %v, want %v", c.group, c.factor, r.Cells, c.cells)
		}
	}
	// Rendering and lookup errors.
	if !strings.Contains(tbl.String(), "open-cartel") {
		t.Error("table rendering incomplete")
	}
	if _, err := tbl.Cell("which site", "bogus"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.Cell("bogus-factor", "open-cartel"); err == nil {
		t.Error("unknown factor accepted")
	}
}

func TestConnectivityDrivenPolicy(t *testing.T) {
	users := []string{"u:hub", "u:mid", "u:leaf"}
	pol := ConnectivityDrivenPolicy{
		Degrees:      map[string]int{"u:hub": 50, "u:mid": 10, "u:leaf": 1},
		HighDegree:   30,
		MediumDegree: 5,
		MediumPeriod: 2,
		LowPeriod:    4,
	}
	if got := pol.Due(1, users); len(got) != 1 || got[0] != "u:hub" {
		t.Errorf("round 1 due = %v", got)
	}
	if got := pol.Due(2, users); len(got) != 2 {
		t.Errorf("round 2 due = %v", got)
	}
	if got := pol.Due(4, users); len(got) != 3 {
		t.Errorf("round 4 due = %v", got)
	}
	if pol.Name() != "connectivity-driven" {
		t.Error("name wrong")
	}
	// Default periods.
	def := ConnectivityDrivenPolicy{Degrees: map[string]int{}, HighDegree: 1, MediumDegree: 1}
	if got := def.Due(4, []string{"u:x"}); len(got) != 1 {
		t.Errorf("default low period due = %v", got)
	}
}
