// Package federation implements SocialScope's Content Management layer
// (Section 6): the three management models for social content sites
// (Decentralized, Closed Cartel, Open Cartel), a simulated OpenSocial-style
// API to stand in for remote social sites (Facebook, Y!IM, Y!Sports in
// Figure 1), the Content Integrator that folds remote social data into the
// local social content graph, the Data Manager's refresh machinery, and the
// Activity Manager's activity-driven synchronization policy.
//
// Remote sites are in-process simulations: every call is counted and
// charged a deterministic simulated latency, so the models' control and
// cost trade-offs (Table 2) are measurable without network access.
package federation

import (
	"fmt"
	"sort"
)

// Profile is a user's social profile as managed by a social site.
type Profile struct {
	ID        string // external user id, e.g. "fb:123"
	Name      string
	Interests []string
	Version   int // bumped on every update; drives staleness accounting
}

// Connection is a social connection between two external user ids.
type Connection struct {
	From, To string
	Kind     string // friend, contact, ...
}

// Activity is a user action on an item (tag, visit, review).
type Activity struct {
	User string
	Item string
	Kind string
	Tags []string
	Seq  int // site-assigned sequence number
}

// CallCost is the simulated latency charged per remote API call, in
// microseconds. The absolute value is arbitrary; what the experiments
// compare is call counts and their ratios across models.
const CallCost = 50

// APIStats counts the simulated remote traffic of a site.
type APIStats struct {
	Calls       int
	SimLatencyU int64 // CallCost × Calls, in simulated microseconds
}

func (s *APIStats) charge() {
	s.Calls++
	s.SimLatencyU += CallCost
}

// SocialSite simulates a remote social site behind an OpenSocial-style
// API: authoritative storage of profiles and connections, optional hosting
// of activities (Closed Cartel), with call accounting.
type SocialSite struct {
	Name        string
	profiles    map[string]*Profile
	connections map[string][]Connection // by From
	activities  []Activity
	seq         int
	stats       APIStats
}

// NewSocialSite creates an empty simulated social site.
func NewSocialSite(name string) *SocialSite {
	return &SocialSite{
		Name:        name,
		profiles:    make(map[string]*Profile),
		connections: make(map[string][]Connection),
	}
}

// Stats returns the accumulated API statistics.
func (s *SocialSite) Stats() APIStats { return s.stats }

// ResetStats clears the call counters (used between experiment phases).
func (s *SocialSite) ResetStats() { s.stats = APIStats{} }

// CreateProfile registers or replaces a profile (local mutation: the
// site's own users acting on the site; not charged as remote traffic).
func (s *SocialSite) CreateProfile(p Profile) {
	p.Version = 1
	if old, ok := s.profiles[p.ID]; ok {
		p.Version = old.Version + 1
	}
	s.profiles[p.ID] = &p
}

// UpdateProfile mutates a profile, bumping its version.
func (s *SocialSite) UpdateProfile(id string, interests []string) error {
	p, ok := s.profiles[id]
	if !ok {
		return fmt.Errorf("federation: %s has no profile %q", s.Name, id)
	}
	p.Interests = append([]string(nil), interests...)
	p.Version++
	return nil
}

// Connect records a connection between two registered users.
func (s *SocialSite) Connect(from, to, kind string) error {
	if _, ok := s.profiles[from]; !ok {
		return fmt.Errorf("federation: %s has no profile %q", s.Name, from)
	}
	if _, ok := s.profiles[to]; !ok {
		return fmt.Errorf("federation: %s has no profile %q", s.Name, to)
	}
	s.connections[from] = append(s.connections[from], Connection{From: from, To: to, Kind: kind})
	return nil
}

// --- OpenSocial-style remote API (charged) --------------------------------

// FetchProfile returns a profile by id; one remote call.
func (s *SocialSite) FetchProfile(id string) (Profile, error) {
	s.stats.charge()
	p, ok := s.profiles[id]
	if !ok {
		return Profile{}, fmt.Errorf("federation: %s has no profile %q", s.Name, id)
	}
	return *p, nil
}

// FetchConnections returns a user's connections; one remote call.
func (s *SocialSite) FetchConnections(id string) ([]Connection, error) {
	s.stats.charge()
	if _, ok := s.profiles[id]; !ok {
		return nil, fmt.Errorf("federation: %s has no profile %q", s.Name, id)
	}
	return append([]Connection(nil), s.connections[id]...), nil
}

// PushConnection propagates a connection established elsewhere back to the
// social site (the Open Cartel back-channel); one remote call.
func (s *SocialSite) PushConnection(c Connection) error {
	s.stats.charge()
	if _, ok := s.profiles[c.From]; !ok {
		return fmt.Errorf("federation: %s has no profile %q", s.Name, c.From)
	}
	s.connections[c.From] = append(s.connections[c.From], c)
	return nil
}

// PushActivity stores an activity at the social site (Closed Cartel: the
// content site delegates activity management); one remote call.
func (s *SocialSite) PushActivity(a Activity) {
	s.stats.charge()
	s.seq++
	a.Seq = s.seq
	s.activities = append(s.activities, a)
}

// FetchActivities returns a user's activities hosted at the social site;
// one remote call.
func (s *SocialSite) FetchActivities(user string) []Activity {
	s.stats.charge()
	var out []Activity
	for _, a := range s.activities {
		if a.User == user {
			out = append(out, a)
		}
	}
	return out
}

// Users returns the registered external ids, sorted.
func (s *SocialSite) Users() []string {
	out := make([]string, 0, len(s.profiles))
	for id := range s.profiles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ProfileVersion exposes the current version of a profile without charging
// a call (experiment instrumentation, not part of the remote API).
func (s *SocialSite) ProfileVersion(id string) int {
	if p, ok := s.profiles[id]; ok {
		return p.Version
	}
	return 0
}
