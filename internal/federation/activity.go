package federation

import "sort"

// ActivityClass buckets users by how active they are; the Activity Manager
// (Figure 1) uses the classes to drive refresh frequency: "a user who is
// highly connected may require more frequent synchronization of his
// network" (Section 6.2, Further Discussion).
type ActivityClass uint8

const (
	// LowActivity users sync rarely.
	LowActivity ActivityClass = iota
	// MediumActivity users sync at the base rate.
	MediumActivity
	// HighActivity users sync every round.
	HighActivity
)

func (c ActivityClass) String() string {
	switch c {
	case LowActivity:
		return "low"
	case MediumActivity:
		return "medium"
	case HighActivity:
		return "high"
	}
	return "unknown"
}

// ActivityManager categorizes users from observed activity counts.
type ActivityManager struct {
	counts map[string]int
}

// NewActivityManager returns an empty manager.
func NewActivityManager() *ActivityManager {
	return &ActivityManager{counts: make(map[string]int)}
}

// Observe records n activities for the user.
func (m *ActivityManager) Observe(user string, n int) { m.counts[user] += n }

// Classify buckets a user: ≥ high → HighActivity, ≥ medium →
// MediumActivity, else LowActivity.
func (m *ActivityManager) Classify(user string, medium, high int) ActivityClass {
	c := m.counts[user]
	switch {
	case c >= high:
		return HighActivity
	case c >= medium:
		return MediumActivity
	default:
		return LowActivity
	}
}

// SyncPolicy decides which users to refresh each round.
type SyncPolicy interface {
	Name() string
	// Due returns the users to sync on the given round (1-based).
	Due(round int, users []string) []string
}

// UniformPolicy refreshes every user every `period` rounds.
type UniformPolicy struct{ Period int }

// Name identifies the policy.
func (p UniformPolicy) Name() string { return "uniform" }

// Due returns all users on multiples of the period.
func (p UniformPolicy) Due(round int, users []string) []string {
	period := p.Period
	if period <= 0 {
		period = 1
	}
	if round%period != 0 {
		return nil
	}
	return append([]string(nil), users...)
}

// ActivityDrivenPolicy refreshes high-activity users every round,
// medium-activity users every MediumPeriod rounds, and low-activity users
// every LowPeriod rounds.
type ActivityDrivenPolicy struct {
	Manager      *ActivityManager
	MediumCount  int // activity threshold for medium class
	HighCount    int // activity threshold for high class
	MediumPeriod int
	LowPeriod    int
}

// Name identifies the policy.
func (p ActivityDrivenPolicy) Name() string { return "activity-driven" }

// Due classifies each user and applies the per-class period.
func (p ActivityDrivenPolicy) Due(round int, users []string) []string {
	mp, lp := p.MediumPeriod, p.LowPeriod
	if mp <= 0 {
		mp = 2
	}
	if lp <= 0 {
		lp = 4
	}
	var out []string
	for _, u := range users {
		switch p.Manager.Classify(u, p.MediumCount, p.HighCount) {
		case HighActivity:
			out = append(out, u)
		case MediumActivity:
			if round%mp == 0 {
				out = append(out, u)
			}
		case LowActivity:
			if round%lp == 0 {
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	return out
}

// SyncOutcome summarizes a simulated synchronization run: remote cost vs.
// freshness achieved.
type SyncOutcome struct {
	Policy      string
	Rounds      int
	Calls       int
	StaleChecks int // user-rounds where the replica was stale at read time
	Reads       int // user-rounds read
}

// StaleRate returns the fraction of reads that observed stale data.
func (o SyncOutcome) StaleRate() float64 {
	if o.Reads == 0 {
		return 0
	}
	return float64(o.StaleChecks) / float64(o.Reads)
}

// SimulateSync drives an Open Cartel site for `rounds` rounds: each round,
// `mutator` mutates some remote profiles (returning how many activities
// each user generated, which feeds the Activity Manager), the policy picks
// who to sync, the integrator pulls them, and every user's replica is read
// once with staleness recorded. Deterministic given a deterministic
// mutator.
func SimulateSync(site *SocialSite, o *OpenCartel, policy SyncPolicy, am *ActivityManager,
	rounds int, mutator func(round int) map[string]int) (SyncOutcome, error) {
	users := site.Users()
	out := SyncOutcome{Policy: policy.Name(), Rounds: rounds}
	if err := o.Sync(users); err != nil { // initial full sync
		return out, err
	}
	base := site.Stats().Calls
	for round := 1; round <= rounds; round++ {
		for u, n := range mutator(round) {
			if am != nil {
				am.Observe(u, n)
			}
		}
		due := policy.Due(round, users)
		if len(due) > 0 {
			if err := o.Sync(due); err != nil {
				return out, err
			}
		}
		for _, u := range users {
			out.Reads++
			if site.ProfileVersion(u) > o.integrator.SyncedVersion(u) {
				out.StaleChecks++
			}
		}
	}
	out.Calls = site.Stats().Calls - base
	return out, nil
}

// ConnectivityDrivenPolicy refreshes users in proportion to how connected
// they are — the paper's §6.2 closing observation that "a user who is
// highly connected may require more frequent synchronization of his
// network". Degrees are read from a provided snapshot (degree extraction
// is the caller's concern; the policy is deliberately storage-agnostic).
type ConnectivityDrivenPolicy struct {
	Degrees      map[string]int
	HighDegree   int // ≥ HighDegree syncs every round
	MediumDegree int // ≥ MediumDegree syncs every MediumPeriod rounds
	MediumPeriod int
	LowPeriod    int
}

// Name identifies the policy.
func (p ConnectivityDrivenPolicy) Name() string { return "connectivity-driven" }

// Due applies the per-degree-class period.
func (p ConnectivityDrivenPolicy) Due(round int, users []string) []string {
	mp, lp := p.MediumPeriod, p.LowPeriod
	if mp <= 0 {
		mp = 2
	}
	if lp <= 0 {
		lp = 4
	}
	var out []string
	for _, u := range users {
		d := p.Degrees[u]
		switch {
		case d >= p.HighDegree:
			out = append(out, u)
		case d >= p.MediumDegree:
			if round%mp == 0 {
				out = append(out, u)
			}
		default:
			if round%lp == 0 {
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	return out
}
