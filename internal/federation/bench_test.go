package federation

import (
	"fmt"
	"testing"
)

func BenchmarkCompareModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompareModels(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenCartelSync(b *testing.B) {
	s := NewSocialSite("fb")
	o := NewOpenCartel(s)
	for i := 0; i < 100; i++ {
		if err := o.RegisterUser(Profile{ID: fmt.Sprintf("u:%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.Sync(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosedCartelAnalysis(b *testing.B) {
	s := NewSocialSite("fb")
	c := NewClosedCartel(s)
	for i := 0; i < 100; i++ {
		if err := c.RegisterUser(Profile{ID: fmt.Sprintf("u:%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LocalGraph(); err != nil {
			b.Fatal(err)
		}
	}
}
