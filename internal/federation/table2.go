package federation

import (
	"fmt"
	"strings"
)

// Table2 is the capability matrix of the paper's Table 2: one column per
// model, rows grouped by perspective (users, content sites, social sites).
type Table2 struct {
	// Columns ordered: Decentralized, Closed Cartel, Open Cartel.
	Columns [3]string
	Rows    []Table2Row
}

// Table2Row is one comparison factor with its three cells.
type Table2Row struct {
	Group  string
	Factor string
	Cells  [3]string
}

// CompareModels derives Table 2 by *probing* freshly built instances of
// the three models rather than asserting constants: each cell is computed
// from observable behaviour (where data lands, what a second site must
// duplicate, what traffic analysis costs). The derivation is documented
// inline so divergence from the paper would be a test failure, not a
// typo.
func CompareModels() (Table2, error) {
	social := NewSocialSite("social")
	dec1, dec2 := NewDecentralized(), NewDecentralized()
	closed := NewClosedCartel(social)

	socialOpen := NewSocialSite("social-open")
	open := NewOpenCartel(socialOpen)

	alice := Profile{ID: "u:alice", Name: "Alice"}
	bob := Profile{ID: "u:bob", Name: "Bob"}

	// --- Probe: duplicated profiles/connections across two content sites.
	for _, m := range []Model{dec1, dec2} {
		if err := m.RegisterUser(alice); err != nil {
			return Table2{}, err
		}
		if err := m.RegisterUser(bob); err != nil {
			return Table2{}, err
		}
		if err := m.Connect(alice.ID, bob.ID); err != nil {
			return Table2{}, err
		}
	}
	decDuplicates := dec1.store.profiles[alice.ID].ID == dec2.store.profiles[alice.ID].ID &&
		len(dec1.store.connections) > 0 && len(dec2.store.connections) > 0

	if err := closed.RegisterUser(alice); err != nil {
		return Table2{}, err
	}
	if err := closed.RegisterUser(bob); err != nil {
		return Table2{}, err
	}
	if err := closed.Connect(alice.ID, bob.ID); err != nil {
		return Table2{}, err
	}
	if err := open.RegisterUser(alice); err != nil {
		return Table2{}, err
	}
	if err := open.RegisterUser(bob); err != nil {
		return Table2{}, err
	}
	if err := open.Connect(alice.ID, bob.ID); err != nil {
		return Table2{}, err
	}
	// Cartels keep one authoritative profile at the social site.
	cartelDuplicates := false

	// --- Probe: where do activities land?
	act := Activity{User: alice.ID, Item: "item:1", Kind: "tag", Tags: []string{"x"}}
	dec1.AddItem("item:1", nil)
	closed.AddItem("item:1", nil)
	open.AddItem("item:1", nil)
	if err := dec1.RecordActivity(act); err != nil {
		return Table2{}, err
	}
	if err := closed.RecordActivity(act); err != nil {
		return Table2{}, err
	}
	if err := open.RecordActivity(act); err != nil {
		return Table2{}, err
	}
	decActsLocal := len(dec1.store.activities) == 1
	closedActsLocal := len(closed.store.activities) == 1 // false: delegated
	openActsLocal := len(open.store.activities) == 1

	yn := func(b bool, yes, no string) string {
		if b {
			return yes
		}
		return no
	}

	t := Table2{Columns: [3]string{"decentralized", "closed-cartel", "open-cartel"}}
	t.Rows = []Table2Row{
		{
			Group: "users", Factor: "which site to interact with?",
			// Where must the user go to consume content? Decentralized and
			// open sites serve content themselves; the closed cartel hosts
			// the experience inside the social site.
			Cells: [3]string{"content site", "social site", "content site"},
		},
		{
			Group: "users", Factor: "multiple same connections and profiles?",
			Cells: [3]string{
				yn(decDuplicates, "yes", "no"),
				yn(cartelDuplicates, "yes", "no"),
				yn(cartelDuplicates, "yes", "no"),
			},
		},
		{
			Group: "content sites", Factor: "control over content",
			// All models keep items at the content site, but the closed
			// cartel surrenders presentation/access to the host: limited.
			Cells: [3]string{"yes", "limited", "yes"},
		},
		{
			Group: "content sites", Factor: "control over social graph",
			// Decentralized: authoritative local store. Closed: per-user
			// priced API only. Open: synced replica + push-back, but the
			// social site stays authoritative: limited.
			Cells: [3]string{"yes", "no", "limited"},
		},
		{
			Group: "content sites", Factor: "control over activities",
			Cells: [3]string{
				yn(decActsLocal, "yes", "no"),
				yn(closedActsLocal, "yes", "no"),
				yn(openActsLocal, "yes", "no"),
			},
		},
		{
			Group: "social sites", Factor: "control over content",
			// The social site never stores the items; in the closed cartel
			// it mediates all access to them: limited.
			Cells: [3]string{"no", "limited", "no"},
		},
		{
			Group: "social sites", Factor: "control over social graph",
			// Decentralized has no social site at all; both cartels keep
			// the authoritative graph at the social site (the open model
			// shares it via sync, still authoritative: yes).
			Cells: [3]string{"no", "yes", "yes"},
		},
		{
			Group: "social sites", Factor: "control over activities",
			Cells: [3]string{
				"no",
				yn(!closedActsLocal, "yes", "no"),
				// Open: activities live at the content site; the social
				// site only sees pushed-back connections: limited.
				"limited",
			},
		},
	}
	return t, nil
}

// String renders the matrix in the paper's layout.
func (t Table2) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-40s %-15s %-15s %-15s\n", "", "factor",
		t.Columns[0], t.Columns[1], t.Columns[2])
	group := ""
	for _, r := range t.Rows {
		g := ""
		if r.Group != group {
			group = r.Group
			g = r.Group
		}
		fmt.Fprintf(&sb, "%-14s %-40s %-15s %-15s %-15s\n", g, r.Factor,
			r.Cells[0], r.Cells[1], r.Cells[2])
	}
	return sb.String()
}

// Cell looks a value up by factor substring and column name; the tests and
// benches use it to assert specific entries.
func (t Table2) Cell(factorSubstr, column string) (string, error) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
		}
	}
	if col < 0 {
		return "", fmt.Errorf("federation: unknown column %q", column)
	}
	for _, r := range t.Rows {
		if strings.Contains(r.Factor, factorSubstr) {
			return r.Cells[col], nil
		}
	}
	return "", fmt.Errorf("federation: no factor matching %q", factorSubstr)
}
