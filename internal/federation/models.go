package federation

import (
	"fmt"

	"socialscope/internal/graph"
)

// Model is one of Section 6.1's management models, exercised through a
// uniform behavioural interface so the Table 2 comparison can be *probed*
// rather than asserted: register a user, connect two users, record an
// activity, and materialize the social content graph the content site can
// analyze.
type Model interface {
	Name() string
	// RegisterUser makes the user known wherever the model keeps profiles.
	RegisterUser(p Profile) error
	// Connect establishes a social connection under the model's rules.
	Connect(from, to string) error
	// RecordActivity stores a user action on a content item.
	RecordActivity(a Activity) error
	// AddItem adds a content item (always owned by the content site
	// conceptually; Closed Cartel surrenders its presentation).
	AddItem(id string, keywords []string)
	// LocalGraph materializes the social content graph as visible to the
	// content site: the basis for "can the content site analyze the
	// graph?" probes.
	LocalGraph() (*graph.Graph, error)
	// RemoteCalls reports the simulated API traffic incurred so far.
	RemoteCalls() APIStats
}

// contentStore is the content site's own storage, shared by the models.
type contentStore struct {
	items map[string][]string // id -> keywords
	// local users/connections/activities; which of these are used depends
	// on the model.
	profiles    map[string]Profile
	connections []Connection
	activities  []Activity
}

func newContentStore() *contentStore {
	return &contentStore{items: make(map[string][]string), profiles: make(map[string]Profile)}
}

// buildGraph assembles a social content graph from explicit parts.
func buildGraph(profiles map[string]Profile, conns []Connection, acts []Activity,
	items map[string][]string) (*graph.Graph, error) {
	g := graph.New()
	ids := graph.NewIDSource(0, 0)
	ext := make(map[string]graph.NodeID)
	ensureUser := func(id string) graph.NodeID {
		if nid, ok := ext[id]; ok {
			return nid
		}
		n := graph.NewNode(ids.NextNode(), graph.TypeUser)
		n.Attrs.Set("ext", id)
		if p, ok := profiles[id]; ok {
			n.Attrs.Set("name", p.Name)
			if len(p.Interests) > 0 {
				n.Attrs.Set("interests", p.Interests...)
			}
		}
		if err := g.AddNode(n); err != nil {
			panic("federation: buildGraph internal: " + err.Error())
		}
		ext[id] = n.ID
		return n.ID
	}
	itemIDs := make(map[string]graph.NodeID)
	for id, kw := range items {
		n := graph.NewNode(ids.NextNode(), graph.TypeItem)
		n.Attrs.Set("ext", id)
		if len(kw) > 0 {
			n.Attrs.Set("keywords", kw...)
		}
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
		itemIDs[id] = n.ID
	}
	for _, c := range conns {
		l := graph.NewLink(ids.NextLink(), ensureUser(c.From), ensureUser(c.To),
			graph.TypeConnect, c.Kind)
		if err := g.AddLink(l); err != nil {
			return nil, err
		}
	}
	for _, a := range acts {
		item, ok := itemIDs[a.Item]
		if !ok {
			continue // activity on content another site owns
		}
		l := graph.NewLink(ids.NextLink(), ensureUser(a.User), item, graph.TypeAct, a.Kind)
		if len(a.Tags) > 0 {
			l.Attrs.Set("tags", a.Tags...)
		}
		if err := g.AddLink(l); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// --- Decentralized ---------------------------------------------------------

// Decentralized: the content site maintains its own social information
// end-to-end. Full control, zero remote traffic, but users must rebuild
// profiles and connections per site (the cold-start problem).
type Decentralized struct {
	store *contentStore
	stats APIStats
}

// NewDecentralized builds a decentralized content site.
func NewDecentralized() *Decentralized { return &Decentralized{store: newContentStore()} }

// Name identifies the model.
func (d *Decentralized) Name() string { return "decentralized" }

// RegisterUser stores the profile locally.
func (d *Decentralized) RegisterUser(p Profile) error {
	d.store.profiles[p.ID] = p
	return nil
}

// Connect stores the connection locally; both users must have registered
// here (the duplicated-effort cost the model imposes).
func (d *Decentralized) Connect(from, to string) error {
	if _, ok := d.store.profiles[from]; !ok {
		return fmt.Errorf("federation: decentralized site requires local profile %q", from)
	}
	if _, ok := d.store.profiles[to]; !ok {
		return fmt.Errorf("federation: decentralized site requires local profile %q", to)
	}
	d.store.connections = append(d.store.connections, Connection{From: from, To: to, Kind: "friend"})
	return nil
}

// RecordActivity stores the activity locally.
func (d *Decentralized) RecordActivity(a Activity) error {
	d.store.activities = append(d.store.activities, a)
	return nil
}

// AddItem stores a content item.
func (d *Decentralized) AddItem(id string, keywords []string) { d.store.items[id] = keywords }

// LocalGraph exposes the complete graph — full analytical control.
func (d *Decentralized) LocalGraph() (*graph.Graph, error) {
	return buildGraph(d.store.profiles, d.store.connections, d.store.activities, d.store.items)
}

// RemoteCalls is always zero for the decentralized model.
func (d *Decentralized) RemoteCalls() APIStats { return d.stats }

// --- Closed Cartel -----------------------------------------------------------

// ClosedCartel: the social site hosts profiles, connections AND the
// content site's activities; the content site is reduced to an
// application. Every social observation is a remote call, and the site
// cannot see the social graph beyond per-user lookups.
type ClosedCartel struct {
	store  *contentStore
	social *SocialSite
}

// NewClosedCartel builds a content site operating inside the given social
// site.
func NewClosedCartel(social *SocialSite) *ClosedCartel {
	return &ClosedCartel{store: newContentStore(), social: social}
}

// Name identifies the model.
func (c *ClosedCartel) Name() string { return "closed-cartel" }

// RegisterUser registers at the social site (users have one central
// presence; without it they cannot reach the content).
func (c *ClosedCartel) RegisterUser(p Profile) error {
	c.social.CreateProfile(p)
	return nil
}

// Connect happens at the social site.
func (c *ClosedCartel) Connect(from, to string) error {
	return c.social.Connect(from, to, "friend")
}

// RecordActivity delegates storage to the social site (one remote call).
func (c *ClosedCartel) RecordActivity(a Activity) error {
	c.social.PushActivity(a)
	return nil
}

// AddItem keeps the item at the content site (its one remaining asset).
func (c *ClosedCartel) AddItem(id string, keywords []string) { c.store.items[id] = keywords }

// LocalGraph reconstructs what the application can see: it must fetch
// every user's profile, connections and activities through the API —
// comprehensive analysis is priced accordingly, and only spans users the
// site has observed.
func (c *ClosedCartel) LocalGraph() (*graph.Graph, error) {
	profiles := make(map[string]Profile)
	var conns []Connection
	var acts []Activity
	for _, id := range c.social.Users() {
		p, err := c.social.FetchProfile(id)
		if err != nil {
			return nil, err
		}
		profiles[id] = p
		cs, err := c.social.FetchConnections(id)
		if err != nil {
			return nil, err
		}
		conns = append(conns, cs...)
		acts = append(acts, c.social.FetchActivities(id)...)
	}
	return buildGraph(profiles, conns, acts, c.store.items)
}

// RemoteCalls reports the social site's accumulated charges.
func (c *ClosedCartel) RemoteCalls() APIStats { return c.social.Stats() }

// --- Open Cartel --------------------------------------------------------------

// OpenCartel: the social site remains authoritative for profiles and
// connections, but the content site syncs them into a local replica
// (through the Content Integrator), manages its own activities, and
// propagates locally-created connections back. Control is shared;
// analysis runs locally on the synced replica.
type OpenCartel struct {
	store      *contentStore
	social     *SocialSite
	integrator *Integrator
}

// NewOpenCartel builds a content site federated with the social site.
func NewOpenCartel(social *SocialSite) *OpenCartel {
	return &OpenCartel{
		store:      newContentStore(),
		social:     social,
		integrator: NewIntegrator(social),
	}
}

// Name identifies the model.
func (o *OpenCartel) Name() string { return "open-cartel" }

// RegisterUser registers at the social site; the local replica picks the
// profile up on the next sync.
func (o *OpenCartel) RegisterUser(p Profile) error {
	o.social.CreateProfile(p)
	return nil
}

// Connect establishes the connection locally and pushes it back to the
// social site (one remote call) — the symbiosis the paper describes.
func (o *OpenCartel) Connect(from, to string) error {
	conn := Connection{From: from, To: to, Kind: "friend"}
	o.store.connections = append(o.store.connections, conn)
	return o.social.PushConnection(conn)
}

// RecordActivity stays local: the content site controls its activities.
func (o *OpenCartel) RecordActivity(a Activity) error {
	o.store.activities = append(o.store.activities, a)
	return nil
}

// AddItem stores a content item locally.
func (o *OpenCartel) AddItem(id string, keywords []string) { o.store.items[id] = keywords }

// Sync refreshes the local replica of profiles and connections for the
// given users (or all known social-site users when nil).
func (o *OpenCartel) Sync(users []string) error {
	if users == nil {
		users = o.social.Users()
	}
	profiles, conns, err := o.integrator.Pull(users)
	if err != nil {
		return err
	}
	for id, p := range profiles {
		o.store.profiles[id] = p
	}
	// Replace remote-sourced connections; keep locally-created ones (they
	// were pushed back, so the pull returns them too — dedup by identity).
	seen := make(map[Connection]struct{})
	var merged []Connection
	for _, c := range append(conns, o.store.connections...) {
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		merged = append(merged, c)
	}
	o.store.connections = merged
	return nil
}

// LocalGraph materializes the replica plus local activities — analysis is
// local and complete up to replica staleness.
func (o *OpenCartel) LocalGraph() (*graph.Graph, error) {
	return buildGraph(o.store.profiles, o.store.connections, o.store.activities, o.store.items)
}

// RemoteCalls reports the social site's accumulated charges.
func (o *OpenCartel) RemoteCalls() APIStats { return o.social.Stats() }
