package discovery

import (
	"fmt"
	"testing"
)

func BenchmarkDiscover(b *testing.B) {
	f := buildJohnFixtureB(b)
	d := NewDiscoverer(f.g, "destination")
	q, err := ParseQuery("denver attractions")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Discover(f.john, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusionAlpha sweeps the semantic/social fusion weight — the
// DESIGN.md ablation #5. Time is flat (the sweep is about result shape);
// the reported metric is how many results each α admits.
func BenchmarkFusionAlpha(b *testing.B) {
	f := buildJohnFixtureB(b)
	d := NewDiscoverer(f.g, "destination")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			q, err := ParseQuery("denver attractions")
			if err != nil {
				b.Fatal(err)
			}
			q.Alpha = alpha
			n := 0
			for i := 0; i < b.N; i++ {
				msg, err := d.Discover(f.john, q)
				if err != nil {
					b.Fatal(err)
				}
				n = len(msg.Results)
			}
			b.ReportMetric(float64(n), "results")
		})
	}
}

// BenchmarkSocialBasis measures basis selection — the DESIGN.md ablation #4.
func BenchmarkSocialBasis(b *testing.B) {
	f := buildJohnFixtureB(b)
	q, err := ParseQuery("family babies barcelona")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectSocialBasis(f.g, f.selma, q, 1)
	}
}

func BenchmarkCFStepwise(b *testing.B) {
	f := buildJohnFixtureB(b)
	for i := 0; i < b.N; i++ {
		if _, err := CollaborativeFiltering(f.g, f.john, CFConfig{Variant: CFStepwise, SimThreshold: 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCFPattern(b *testing.B) {
	f := buildJohnFixtureB(b)
	for i := 0; i < b.N; i++ {
		if _, err := CollaborativeFiltering(f.g, f.john, CFConfig{Variant: CFPattern, SimThreshold: 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// buildJohnFixtureB adapts the test fixture builder to benchmarks.
func buildJohnFixtureB(b *testing.B) *johnFixture { return buildJohnFixture(b) }
