package discovery

import (
	"reflect"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/topk"
	"socialscope/internal/workload"
)

// TestDiscoverTaggedAcrossSnapshots pins the snapshot semantics of the
// tagged-discovery path: a processor over the old index version keeps
// answering from the old world after ApplyDelta produced a newer one, the
// new processor sees the update, and each reports its own snapshot
// version in the stats.
func TestDiscoverTaggedAcrossSnapshots(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 40, Destinations: 25, Seed: 13, VisitsPerUser: 8, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := corpus.Graph
	cl, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldIx, err := index.Build(index.Extract(g), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldProc, err := topk.New(oldIx, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDiscoverer(g, "destination")
	user := corpus.Users[0]
	q, err := ParseQuery(workload.Categories[0])
	if err != nil {
		t.Fatal(err)
	}
	q.K = len(corpus.Destinations) // the endorsed item must not fall off the top k

	before, st, err := d.DiscoverTagged(user, q, oldProc, topk.TA)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotVersion != 0 {
		t.Fatalf("fresh build reports snapshot %d, want 0", st.SnapshotVersion)
	}

	// A friend of the user endorses a destination with the query tag.
	friends := index.Extract(g).Network.At(user)
	var friend graph.NodeID = -1
	for f := range friends {
		if friend < 0 || f < friend {
			friend = f
		}
	}
	if friend < 0 {
		t.Fatal("test user has no network")
	}
	l := graph.NewLink(g.MaxLinkID()+1, friend, corpus.Destinations[0], graph.TypeAct, graph.SubtypeTag)
	l.Attrs.Add("tags", workload.Categories[0])
	newIx := oldIx.ApplyDelta([]graph.Mutation{{Kind: graph.MutAddLink, Link: l}})
	newProc, err := topk.New(newIx, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The old processor is oblivious to the update.
	again, st, err := d.DiscoverTagged(user, q, oldProc, topk.TA)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotVersion != 0 {
		t.Errorf("old processor reports snapshot %d after delta, want 0", st.SnapshotVersion)
	}
	if !reflect.DeepEqual(before.Results, again.Results) {
		t.Errorf("old snapshot's answers changed after ApplyDelta\n got %v\nwant %v",
			again.Results, before.Results)
	}

	// The new processor sees the endorsement and credits the endorser.
	after, st, err := d.DiscoverTagged(user, q, newProc, topk.TA)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotVersion != 1 {
		t.Errorf("new processor reports snapshot %d, want 1", st.SnapshotVersion)
	}
	found := false
	for _, r := range after.Results {
		if r.Item != corpus.Destinations[0] {
			continue
		}
		found = true
		credited := false
		for _, e := range r.Endorsers {
			if e == friend {
				credited = true
			}
		}
		if !credited {
			t.Errorf("endorsement by %d not credited: %v", friend, r.Endorsers)
		}
	}
	if !found {
		t.Errorf("endorsed destination %d missing from new snapshot's results: %v",
			corpus.Destinations[0], after.Results)
	}
}
