package discovery

import (
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// BasisKind records how a social basis was chosen, so explanations can say
// "your friends", "friends who made similar trips", or "topic experts".
type BasisKind uint8

const (
	// BasisFriends: the user's direct connections were usable as-is.
	BasisFriends BasisKind = iota
	// BasisQueryFriends: the subset of connections with activity relevant
	// to the query (Example 2: Selma's friends with family trips, not her
	// musician friends).
	BasisQueryFriends
	// BasisExperts: no suitable connections; fall back to topic experts.
	BasisExperts
)

func (k BasisKind) String() string {
	switch k {
	case BasisFriends:
		return "friends"
	case BasisQueryFriends:
		return "query-relevant friends"
	case BasisExperts:
		return "experts"
	}
	return "unknown"
}

// SocialBasis is the set of users grounding the social-relevance leg of a
// discovery, with the rationale for the choice.
type SocialBasis struct {
	Kind  BasisKind
	Users []graph.NodeID
}

// SelectSocialBasis implements the Example 2 analysis: start from the
// user's connections; if the query carries keywords, keep only connections
// whose own activities touch keyword-relevant items; if fewer than minSize
// remain, fall back to topic experts drawn from the whole site. The
// "right subset of the connections" problem the paper calls non-trivial is
// resolved by this activity-evidence filter.
func SelectSocialBasis(g *graph.Graph, user graph.NodeID, q Query, minSize int) SocialBasis {
	if minSize <= 0 {
		minSize = 1
	}
	var friends []graph.NodeID
	seen := map[graph.NodeID]struct{}{}
	for _, l := range g.Incident(user) {
		if !l.HasType(graph.TypeConnect) {
			continue
		}
		other := l.Tgt
		if other == user {
			other = l.Src
		}
		if _, dup := seen[other]; !dup && other != user {
			seen[other] = struct{}{}
			friends = append(friends, other)
		}
	}
	sort.Slice(friends, func(i, j int) bool { return friends[i] < friends[j] })

	if len(q.Keywords) == 0 {
		if len(friends) >= minSize {
			return SocialBasis{Kind: BasisFriends, Users: friends}
		}
		return SocialBasis{Kind: BasisFriends, Users: friends}
	}

	// Keep friends with query-relevant activity. A single shared token is
	// not evidence (Selma's musician friends visit Barcelona jazz clubs —
	// the location matches but the intent does not): an acted-on item must
	// match at least half the query terms to count.
	const basisRelevance = 0.5
	var relevant []graph.NodeID
	for _, f := range friends {
		for _, l := range g.Out(f) {
			if !l.HasType(graph.TypeAct) {
				continue
			}
			item := g.Node(l.Tgt)
			if item != nil && scoring.DefaultScorer(q.Keywords, item.Text()) >= basisRelevance {
				relevant = append(relevant, f)
				break
			}
		}
	}
	if len(relevant) >= minSize {
		return SocialBasis{Kind: BasisQueryFriends, Users: relevant}
	}

	// Fall back to experts (Example 2: "identify a group of experts on the
	// topic to help answer Selma's query").
	experts := expertsForBasis(g, q.Keywords, minSize*2, user)
	if len(experts) > 0 {
		return SocialBasis{Kind: BasisExperts, Users: experts}
	}
	return SocialBasis{Kind: BasisQueryFriends, Users: relevant}
}

// expertsForBasis wraps analyzer.ExpertsOn but excludes the querying user.
func expertsForBasis(g *graph.Graph, keywords []string, n int, exclude graph.NodeID) []graph.NodeID {
	// Local inline expert scan (keeps analyzer's ranking semantics).
	type cnt struct {
		id graph.NodeID
		n  int
	}
	matching := make(map[graph.NodeID]struct{})
	for _, item := range g.NodesOfType(graph.TypeItem) {
		if scoring.DefaultScorer(keywords, item.Text()) == 1 {
			matching[item.ID] = struct{}{}
		}
	}
	var counts []cnt
	for _, u := range g.NodesOfType(graph.TypeUser) {
		if u.ID == exclude {
			continue
		}
		c := 0
		for _, l := range g.Out(u.ID) {
			if !l.HasType(graph.TypeAct) {
				continue
			}
			if _, ok := matching[l.Tgt]; ok {
				c++
			}
		}
		if c > 0 {
			counts = append(counts, cnt{u.ID, c})
		}
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].n != counts[j].n {
			return counts[i].n > counts[j].n
		}
		return counts[i].id < counts[j].id
	})
	n = min(n, len(counts))
	out := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = counts[i].id
	}
	return out
}
