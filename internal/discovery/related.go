package discovery

import (
	"sort"

	"socialscope/internal/graph"
)

// RelatedTopic is a derived topic connected to many result items, with the
// count of results belonging to it.
type RelatedTopic struct {
	Topic graph.NodeID
	Count int
}

// RelatedUser is a user who acted on several result items — Example 3's
// "Jane, who left comments on many result destinations".
type RelatedUser struct {
	User  graph.NodeID
	Count int
}

// Related is the exploration payload of Example 3: entities adjacent to the
// result set that a UI offers as onward navigation.
type Related struct {
	Topics []RelatedTopic
	Users  []RelatedUser
}

// RelatedEntities analyzes an MSG's result items against the full graph
// and surfaces related topics (via belong links) and related users (users
// with act links onto ≥ minActs distinct result items, excluding the
// querying user and the social basis — those are already visible as
// provenance). Both lists are ordered by descending count, ties by id, and
// capped at limit entries each.
func RelatedEntities(g *graph.Graph, msg *MSG, minActs, limit int) Related {
	if minActs <= 0 {
		minActs = 2
	}
	if limit <= 0 {
		limit = 5
	}
	inResults := make(map[graph.NodeID]struct{}, len(msg.Results))
	for _, r := range msg.Results {
		inResults[r.Item] = struct{}{}
	}
	exclude := map[graph.NodeID]struct{}{msg.User: {}}
	for _, b := range msg.Basis.Users {
		exclude[b] = struct{}{}
	}

	topicCounts := make(map[graph.NodeID]int)
	userItems := make(map[graph.NodeID]map[graph.NodeID]struct{})
	for item := range inResults {
		for _, l := range g.Out(item) {
			if l.HasType(graph.TypeBelong) {
				topicCounts[l.Tgt]++
			}
		}
		for _, l := range g.In(item) {
			if !l.HasType(graph.TypeAct) {
				continue
			}
			if _, skip := exclude[l.Src]; skip {
				continue
			}
			set, ok := userItems[l.Src]
			if !ok {
				set = make(map[graph.NodeID]struct{})
				userItems[l.Src] = set
			}
			set[item] = struct{}{}
		}
	}

	var rel Related
	for topic, n := range topicCounts {
		rel.Topics = append(rel.Topics, RelatedTopic{topic, n})
	}
	sort.Slice(rel.Topics, func(i, j int) bool {
		if rel.Topics[i].Count != rel.Topics[j].Count {
			return rel.Topics[i].Count > rel.Topics[j].Count
		}
		return rel.Topics[i].Topic < rel.Topics[j].Topic
	})
	if len(rel.Topics) > limit {
		rel.Topics = rel.Topics[:limit]
	}
	for user, items := range userItems {
		if len(items) >= minActs {
			rel.Users = append(rel.Users, RelatedUser{user, len(items)})
		}
	}
	sort.Slice(rel.Users, func(i, j int) bool {
		if rel.Users[i].Count != rel.Users[j].Count {
			return rel.Users[i].Count > rel.Users[j].Count
		}
		return rel.Users[i].User < rel.Users[j].User
	})
	if len(rel.Users) > limit {
		rel.Users = rel.Users[:limit]
	}
	return rel
}
