package discovery

import (
	"fmt"
	"sort"
	"strconv"

	"socialscope/internal/analyzer"
	"socialscope/internal/core"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// Recommendation is one socially-scored item with its provenance: the
// users whose activities produced the score (the "social provenance" the
// presentation layer exposes).
type Recommendation struct {
	Item     graph.NodeID
	Score    float64
	Basis    []graph.NodeID // endorsing users
	Strategy string
}

// sortRecs orders by descending score, ties by ascending item id.
func sortRecs(rs []Recommendation) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Item < rs[j].Item
	})
}

// CFVariant selects how collaborative filtering is evaluated — the paper's
// explicitly posed open question at the end of Section 5.4.
type CFVariant uint8

const (
	// CFStepwise evaluates Example 5's nine-step program (compose links,
	// then aggregate).
	CFStepwise CFVariant = iota
	// CFPattern evaluates the Figure 2 graph-pattern aggregation over
	// G4 ∪ G5.
	CFPattern
)

func (v CFVariant) String() string {
	if v == CFPattern {
		return "pattern"
	}
	return "stepwise"
}

// CFConfig parameterizes collaborative filtering.
type CFConfig struct {
	SimThreshold float64   // minimum Jaccard similarity for the match network (default 0.5, the paper's)
	Variant      CFVariant // evaluation strategy
	ActType      string    // activity link type consulted (default visit)
	ItemType     string    // item node type recommended (default destination)
}

func (c *CFConfig) fill() {
	if c.SimThreshold <= 0 {
		c.SimThreshold = 0.5
	}
	if c.ActType == "" {
		c.ActType = graph.SubtypeVisit
	}
	if c.ItemType == "" {
		c.ItemType = "destination"
	}
}

// CollaborativeFiltering runs Example 5 for the given user and returns the
// scored recommendations. Both variants share steps 1-7 (building the
// similarity network G4 and the activity graph G5) and differ only in how
// the final recommendation links are derived, exactly as Section 5.4
// discusses.
func CollaborativeFiltering(g *graph.Graph, user graph.NodeID, cfg CFConfig) ([]Recommendation, error) {
	cfg.fill()
	if !g.HasNode(user) {
		return nil, fmt.Errorf("%w %d", ErrUnknownUser, user)
	}
	ids := graph.IDSourceFor(g)
	act := core.NewCondition(core.Cond("type", cfg.ActType))
	uid := strconv.FormatInt(int64(user), 10)

	// Steps 1-2: the user and their acted-on items, folded into vst.
	g1 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, core.NewCondition(core.Cond("id", uid)), nil),
		core.Delta(graph.Src, graph.Src)), act, nil)
	g1p, err := core.NodeAggregate(g1, act, graph.Src, "vst", core.CollectEnd(graph.Tgt))
	if err != nil {
		return nil, err
	}
	// Steps 3-4: everyone else.
	g2 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, core.NewCondition(
		core.CondOp("id", core.Ne, uid), core.Cond("type", graph.TypeUser)), nil),
		core.Delta(graph.Src, graph.Src)), act, nil)
	g2p, err := core.NodeAggregate(g2, act, graph.Src, "vst", core.CollectEnd(graph.Tgt))
	if err != nil {
		return nil, err
	}
	// Step 5: Jaccard similarity links.
	delta := core.Delta(graph.Tgt, graph.Tgt)
	g3, err := core.Compose(g1p, g2p, delta, core.JaccardComposer("simpair", "vst", "sim", delta), ids)
	if err != nil {
		return nil, err
	}
	// Step 6: similarity network G4.
	thr := strconv.FormatFloat(cfg.SimThreshold, 'g', -1, 64)
	g4raw, err := core.LinkAggregate(g3, core.NewCondition(core.CondOp("sim", core.Gt, thr)),
		"type", core.ConstAgg("match"), ids, core.WithCarry("sim"))
	if err != nil {
		return nil, err
	}
	g4 := core.LinkSelect(g4raw, core.NewCondition(core.Cond("type", "match")), nil)
	// Step 7: users and their acted-on items G5.
	g5 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, core.NewCondition(
		core.Cond("type", cfg.ItemType)), nil), core.Delta(graph.Tgt, graph.Src)), act, nil)

	var g7 *graph.Graph
	switch cfg.Variant {
	case CFStepwise:
		// Steps 8-9.
		g6, err := core.Compose(core.SemiJoin(g4, g5, core.Delta(graph.Tgt, graph.Src)),
			core.SemiJoin(g5, g4, core.Delta(graph.Src, graph.Tgt)),
			core.Delta(graph.Tgt, graph.Src), core.CopyAttrComposer("rec", "sim", "sim_sc"), ids)
		if err != nil {
			return nil, err
		}
		g7, err = core.LinkAggregate(g6, core.NewCondition(core.Cond("type", "rec")),
			"score", core.Num(core.Average(core.AttrNum("sim_sc"))), ids)
		if err != nil {
			return nil, err
		}
	case CFPattern:
		u45, err := core.Union(g4, g5)
		if err != nil {
			return nil, err
		}
		pattern := core.Pattern{
			Start: core.NewCondition(core.Cond("id", uid)),
			Steps: []core.PatternStep{
				{Link: core.NewCondition(core.Cond("type", "match"))},
				{Link: core.NewCondition(core.Cond("type", cfg.ActType)),
					Node: core.NewCondition(core.Cond("type", cfg.ItemType))},
			},
		}
		g7, err = core.PatternAggregate(u45, pattern, "score", core.AvgPathAttr(0, "sim"), ids)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("discovery: unknown CF variant %d", cfg.Variant)
	}

	// The similarity network members are the provenance basis.
	var basis []graph.NodeID
	for _, l := range g4.Links() {
		if l.Src == user {
			basis = append(basis, l.Tgt)
		}
	}
	sort.Slice(basis, func(i, j int) bool { return basis[i] < basis[j] })

	var recs []Recommendation
	for _, l := range g7.Links() {
		if l.Src != user {
			continue
		}
		score, ok := l.Attrs.Float("score")
		if !ok || score <= 0 {
			continue
		}
		recs = append(recs, Recommendation{
			Item: l.Tgt, Score: score, Basis: basis, Strategy: "cf-" + cfg.Variant.String(),
		})
	}
	sortRecs(recs)
	return recs, nil
}

// ContentBased recommends items similar to those the user has acted on
// (Section 7.2's ItemSim, realized as Jaccard over item token sets). The
// per-item score is the maximum similarity to any past item; provenance is
// empty (content-based explanations cite items, not users).
func ContentBased(g *graph.Graph, user graph.NodeID, itemType string, minSim float64) ([]Recommendation, error) {
	if !g.HasNode(user) {
		return nil, fmt.Errorf("%w %d", ErrUnknownUser, user)
	}
	if itemType == "" {
		itemType = graph.TypeItem
	}
	past := make(map[graph.NodeID]struct{})
	for _, l := range g.Out(user) {
		if l.HasType(graph.TypeAct) {
			past[l.Tgt] = struct{}{}
		}
	}
	var recs []Recommendation
	for _, cand := range g.NodesOfType(itemType) {
		if _, seen := past[cand.ID]; seen {
			continue
		}
		// Content similarity over attribute text only: shared type
		// vocabulary would make every item pair spuriously similar.
		candToks := scoring.TokenSet(cand.Attrs.Text())
		best := 0.0
		for p := range past {
			pn := g.Node(p)
			if pn == nil {
				continue
			}
			if s := scoring.Jaccard(candToks, scoring.TokenSet(pn.Attrs.Text())); s > best {
				best = s
			}
		}
		if best >= minSim && best > 0 {
			recs = append(recs, Recommendation{Item: cand.ID, Score: best, Strategy: "content"})
		}
	}
	sortRecs(recs)
	return recs, nil
}

// ExpertBased recommends the items most acted on by topic experts — the
// Example 2 fallback when the user's own connections cannot ground the
// query. Experts are the top-n users by activity on keyword-matching items;
// each recommended item is scored by how many experts acted on it.
func ExpertBased(g *graph.Graph, keywords []string, nExperts int) ([]Recommendation, error) {
	experts := analyzer.ExpertsOn(g, keywords, nExperts)
	if len(experts) == 0 {
		return nil, nil
	}
	counts := make(map[graph.NodeID]int)
	endorsers := make(map[graph.NodeID][]graph.NodeID)
	for _, e := range experts {
		for _, l := range g.Out(e) {
			if !l.HasType(graph.TypeAct) {
				continue
			}
			item := g.Node(l.Tgt)
			if item == nil || scoring.DefaultScorer(keywords, item.Text()) < 1 {
				continue
			}
			counts[l.Tgt]++
			endorsers[l.Tgt] = append(endorsers[l.Tgt], e)
		}
	}
	var recs []Recommendation
	for item, c := range counts {
		recs = append(recs, Recommendation{
			Item: item, Score: float64(c), Basis: endorsers[item], Strategy: "expert",
		})
	}
	sortRecs(recs)
	return recs, nil
}
