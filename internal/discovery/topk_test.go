package discovery

import (
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/topk"
)

// taggedFixture builds a site whose tags are stored with mixed case, the
// way real graphs carry them.
func taggedFixture(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder()
	users := make([]graph.NodeID, 3)
	for i := range users {
		users[i] = b.Node([]string{graph.TypeUser}, "name", "u")
	}
	item := b.Node([]string{graph.TypeItem}, "name", "club")
	b.Link(users[0], users[1], []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(users[0], users[2], []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(users[1], item, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "Jazz")
	b.Link(users[2], item, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "Jazz")
	return b.Graph(), users
}

func taggedProcessor(t *testing.T, g *graph.Graph) *topk.Processor {
	t.Helper()
	cl, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(index.Extract(g), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := topk.New(ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDiscoverTaggedResolvesTagCase asserts tokenized (lowercased) query
// keywords reach tags the graph stores with different casing.
func TestDiscoverTaggedResolvesTagCase(t *testing.T) {
	g, users := taggedFixture(t)
	p := taggedProcessor(t, g)
	d := NewDiscoverer(g, "")
	q, err := ParseQuery("Jazz") // tokenizes to "jazz"
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Keywords) != 1 || q.Keywords[0] != "jazz" {
		t.Fatalf("keywords = %v, want [jazz]", q.Keywords)
	}
	msg, stats, err := d.DiscoverTagged(users[0], q, p, topk.TA)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Results) != 1 {
		t.Fatalf("results = %v, want the Jazz-tagged item", msg.Results)
	}
	r := msg.Results[0]
	if r.Score != 2 {
		t.Errorf("score = %v, want 2 (both friends tagged it)", r.Score)
	}
	if len(r.Endorsers) != 2 {
		t.Errorf("endorsers = %v, want both tagging friends", r.Endorsers)
	}
	if stats.PostingsScanned == 0 {
		t.Error("stats not populated")
	}
	if msg.Graph == nil || !msg.Graph.HasNode(r.Item) {
		t.Error("MSG graph missing the result item")
	}
}

func TestDiscoverTaggedErrors(t *testing.T) {
	g, users := taggedFixture(t)
	p := taggedProcessor(t, g)
	d := NewDiscoverer(g, "")
	if _, _, err := d.DiscoverTagged(users[0], Query{Keywords: []string{"jazz"}}, nil, topk.TA); err == nil {
		t.Error("nil processor accepted")
	}
	if _, _, err := d.DiscoverTagged(graph.NodeID(1<<40), Query{Keywords: []string{"jazz"}}, p, topk.TA); err == nil {
		t.Error("unknown user accepted")
	}
	if _, _, err := d.DiscoverTagged(users[0], Query{}, p, topk.TA); err == nil {
		t.Error("keyword-less query accepted")
	}
}
