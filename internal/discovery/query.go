// Package discovery implements SocialScope's Information Discoverer
// (Sections 3-5): it parses user queries, computes semantic and social
// relevance over the social content graph, runs the recommendation
// strategies (network search per Example 4, collaborative filtering per
// Example 5 in both its step-wise and graph-pattern forms, content-based,
// and the expert fallback of Example 2), selects the social basis, fuses
// the two relevance legs, and assembles the Meaningful Social Graph (MSG)
// handed to the presentation layer.
package discovery

import (
	"fmt"
	"strings"

	"socialscope/internal/core"
	"socialscope/internal/scoring"
)

// Query is the paper's query model (Section 4): a possibly-empty set of
// content keywords plus structural predicates. Structural predicates scope
// the recommendation; keywords drive semantic relevance; an empty query
// falls back to pure social relevance.
type Query struct {
	Keywords   []string
	Structural []core.StructCond
	K          int     // number of results wanted (default 10)
	Alpha      float64 // semantic weight in [0,1]; social weight is 1-α (default 0.5)
}

// ParseQuery parses the CLI/search-box syntax: bare words become keywords;
// key:value terms become equality structural predicates; key>=value,
// key<=value, key>value, key<value become numeric predicates. Examples:
//
//	"Denver attractions"
//	"family trip type:destination"
//	"type:destination rating>=0.5 baseball"
func ParseQuery(s string) (Query, error) {
	q := Query{K: 10, Alpha: 0.5}
	for _, field := range strings.Fields(s) {
		if cond, ok, err := parseCond(field); err != nil {
			return Query{}, err
		} else if ok {
			q.Structural = append(q.Structural, cond)
			continue
		}
		q.Keywords = append(q.Keywords, scoring.Tokenize(field)...)
	}
	return q, nil
}

func parseCond(field string) (core.StructCond, bool, error) {
	for _, op := range []struct {
		sym string
		op  core.Op
	}{{">=", core.Ge}, {"<=", core.Le}, {"!=", core.Ne}, {">", core.Gt}, {"<", core.Lt}, {":", core.Eq}} {
		i := strings.Index(field, op.sym)
		if i <= 0 {
			continue
		}
		attr, val := field[:i], field[i+len(op.sym):]
		if val == "" {
			return core.StructCond{}, false, fmt.Errorf("discovery: empty value in predicate %q", field)
		}
		return core.CondOp(attr, op.op, val), true, nil
	}
	return core.StructCond{}, false, nil
}

// IsEmpty reports whether the query constrains nothing.
func (q Query) IsEmpty() bool { return len(q.Keywords) == 0 && len(q.Structural) == 0 }

// Condition converts the query into an algebra condition.
func (q Query) Condition() core.Condition {
	return core.Condition{Structural: q.Structural, Keywords: q.Keywords}
}

// String renders the query for logs and explanations.
func (q Query) String() string {
	parts := make([]string, 0, len(q.Structural)+1)
	for _, sc := range q.Structural {
		parts = append(parts, sc.String())
	}
	if len(q.Keywords) > 0 {
		parts = append(parts, "'"+strings.Join(q.Keywords, " ")+"'")
	}
	return strings.Join(parts, " ")
}
