package discovery

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/topk"
)

// DiscoverTagged answers a keyword-only query through the Section 6.2
// activity-driven index instead of the BM25 + social-basis fusion path:
// the query keywords are interpreted as tags, the processor evaluates
// score(i, u) = g(f(network(u) ∩ taggers(i, k1)), ...) with the requested
// early-termination strategy, and the ranked items are assembled into the
// same MSG shape Discover produces — endorsers are the user's network
// members whose tagging produced the score, so presentation-layer
// explanations keep working. The returned Stats expose the postings
// scanned and random accesses the evaluation cost, plus the index
// snapshot version that was read.
//
// The processor wraps one immutable index snapshot, so the evaluation is
// consistent even while a live engine applies mutation batches: results,
// endorsers and scores all come from the snapshot's substrate, and a
// processor over a newer snapshot (index.ApplyDelta) simply sees the
// newer world.
func (d *Discoverer) DiscoverTagged(user graph.NodeID, q Query, proc *topk.Processor,
	strategy topk.Strategy) (*MSG, topk.Stats, error) {
	return d.DiscoverTaggedCtx(context.Background(), user, q, proc, strategy)
}

// DiscoverTaggedCtx is DiscoverTagged under a context: the processor's
// accumulation loops poll ctx (see topk.TopKCtx), so a serving layer's
// per-request deadline bounds the index scan. MSG assembly after a
// successful evaluation is O(k) and runs to completion.
func (d *Discoverer) DiscoverTaggedCtx(ctx context.Context, user graph.NodeID, q Query,
	proc *topk.Processor, strategy topk.Strategy) (*MSG, topk.Stats, error) {
	if proc == nil {
		return nil, topk.Stats{}, fmt.Errorf("discovery: nil top-k processor")
	}
	if !d.g.HasNode(user) {
		return nil, topk.Stats{}, fmt.Errorf("%w %d", ErrUnknownUser, user)
	}
	if q.K <= 0 {
		q.K = 10
	}
	if len(q.Keywords) == 0 {
		return nil, topk.Stats{}, fmt.Errorf("discovery: tagged discovery needs keywords")
	}
	// Query keywords arrive tokenized (lowercased) while tags are indexed
	// verbatim from the graph; resolve case-insensitively so "Museum" in
	// the corpus is reachable from a search box. Multi-word tags are not
	// addressable through a space-separated query — an inherent limit of
	// the keyword syntax, not of the index.
	data := proc.Index().Data()
	tags := make([]string, len(q.Keywords))
	for i, kw := range q.Keywords {
		tags[i] = kw
		if data.Taggers.Has(kw) {
			continue
		}
		// Lexicographically smallest match keeps resolution deterministic
		// when several stored tags fold to the same keyword.
		data.Taggers.Range(func(t string, _ index.ItemTaggers) bool {
			if strings.EqualFold(t, kw) && (tags[i] == kw || t < tags[i]) {
				tags[i] = t
			}
			return true
		})
	}
	ranked, stats, err := proc.TopKCtx(ctx, user, tags, q.K, strategy)
	if err != nil {
		return nil, stats, err
	}

	// Scores are raw counts under the paper's f = count, g = sum; normalize
	// the Social leg to [0,1] by the maximum so downstream presentation
	// sees the same scale the fusion path produces.
	maxScore := 0.0
	for _, r := range ranked {
		if r.Score > maxScore {
			maxScore = r.Score
		}
	}
	net := data.Network.At(user)
	results := make([]Result, 0, len(ranked))
	for _, r := range ranked {
		res := Result{Item: r.Item, Score: r.Score, Social: r.Score}
		if maxScore > 0 {
			res.Social = r.Score / maxScore
		}
		// Provenance: network members who tagged the item with a query tag.
		var endorsers []graph.NodeID
		for _, tag := range tags {
			byItem, ok := data.Taggers.Get(tag)
			if !ok {
				continue
			}
			for tg := range byItem.At(r.Item) {
				if net.Has(tg) && !contains(endorsers, tg) {
					endorsers = append(endorsers, tg)
				}
			}
		}
		// Sorted for determinism: tagger sets iterate in map order.
		sort.Slice(endorsers, func(i, j int) bool { return endorsers[i] < endorsers[j] })
		res.Endorsers = endorsers
		results = append(results, res)
	}
	msgGraph, err := d.assemble(user, results)
	if err != nil {
		return nil, stats, err
	}
	return &MSG{User: user, Query: q, Results: results, Graph: msgGraph}, stats, nil
}
