package discovery

import (
	"math"
	"reflect"
	"testing"

	"socialscope/internal/core"
	"socialscope/internal/graph"
)

// johnFixture reproduces Example 1's setting: John searches "Denver
// attractions"; his friends' baseball activity should surface baseball
// destinations.
type johnFixture struct {
	g                        *graph.Graph
	john, ann, bob, selma    graph.NodeID
	coors, museum, zoo, parc graph.NodeID
	beach                    graph.NodeID
	expertJane, expertMax    graph.NodeID
}

func buildJohnFixture(t testing.TB) *johnFixture {
	t.Helper()
	b := graph.NewBuilder()
	f := &johnFixture{}
	f.john = b.Node([]string{graph.TypeUser}, "name", "John", "interests", "baseball")
	f.ann = b.Node([]string{graph.TypeUser}, "name", "Ann")
	f.bob = b.Node([]string{graph.TypeUser}, "name", "Bob")
	f.selma = b.Node([]string{graph.TypeUser}, "name", "Selma", "interests", "music")
	f.expertJane = b.Node([]string{graph.TypeUser}, "name", "Jane")
	f.expertMax = b.Node([]string{graph.TypeUser}, "name", "Max")

	f.coors = b.Node([]string{graph.TypeItem, "destination"},
		"name", "Coors Field", "city", "Denver", "keywords", "baseball stadium denver attractions", "rating", "0.9")
	f.museum = b.Node([]string{graph.TypeItem, "destination"},
		"name", "Ballpark Museum", "city", "Denver", "keywords", "baseball museum denver attractions", "rating", "0.6")
	f.zoo = b.Node([]string{graph.TypeItem, "destination"},
		"name", "Denver Zoo", "city", "Denver", "keywords", "zoo denver attractions family", "rating", "0.8")
	f.parc = b.Node([]string{graph.TypeItem, "destination"},
		"name", "Parc de la Ciutadella", "city", "Barcelona", "keywords", "family park babies barcelona", "rating", "0.7")
	f.beach = b.Node([]string{graph.TypeItem, "destination"},
		"name", "Barceloneta", "city", "Barcelona", "keywords", "beach barcelona", "rating", "0.5")

	// John's friends.
	b.Link(f.john, f.ann, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(f.john, f.bob, []string{graph.TypeConnect, graph.SubtypeFriend})
	// Selma's friends: the musicians John/Bob? No — Selma connects to Ann only.
	b.Link(f.selma, f.ann, []string{graph.TypeConnect, graph.SubtypeFriend})

	// Friends' activities: Ann and Bob visit baseball places.
	b.Link(f.ann, f.coors, []string{graph.TypeAct, graph.SubtypeVisit})
	b.Link(f.ann, f.museum, []string{graph.TypeAct, graph.SubtypeVisit})
	b.Link(f.bob, f.coors, []string{graph.TypeAct, graph.SubtypeVisit})
	b.Link(f.bob, f.zoo, []string{graph.TypeAct, graph.SubtypeVisit})
	// Experts on Barcelona family travel.
	b.Link(f.expertJane, f.parc, []string{graph.TypeAct, graph.SubtypeReview})
	b.Link(f.expertJane, f.beach, []string{graph.TypeAct, graph.SubtypeReview})
	b.Link(f.expertMax, f.parc, []string{graph.TypeAct, graph.SubtypeVisit})
	f.g = b.Graph()
	return f
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("Denver attractions type:destination rating>=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Keywords, []string{"denver", "attractions"}) {
		t.Errorf("keywords = %v", q.Keywords)
	}
	if len(q.Structural) != 2 {
		t.Fatalf("structural = %v", q.Structural)
	}
	if q.Structural[0].Attr != "type" || q.Structural[1].Op != core.Ge {
		t.Errorf("structural = %v", q.Structural)
	}
	if q.K != 10 || q.Alpha != 0.5 {
		t.Error("defaults not applied")
	}
	if _, err := ParseQuery("rating>="); err == nil {
		t.Error("empty predicate value accepted")
	}
	empty, err := ParseQuery("")
	if err != nil || !empty.IsEmpty() {
		t.Error("empty query should parse as empty")
	}
	if q.String() == "" || q.Condition().IsEmpty() {
		t.Error("String/Condition broken")
	}
}

func TestDiscoverSemanticAndSocial(t *testing.T) {
	f := buildJohnFixture(t)
	d := NewDiscoverer(f.g, "destination")
	q, err := ParseQuery("denver attractions")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := d.Discover(f.john, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Results) == 0 {
		t.Fatal("no results")
	}
	// All Denver attractions are semantically relevant; Coors Field is
	// endorsed by both friends and must rank first.
	if msg.Results[0].Item != f.coors {
		t.Errorf("top result = %d, want Coors Field (%d)", msg.Results[0].Item, f.coors)
	}
	// Coors has 2 endorsers, museum and zoo 1 each.
	if len(msg.Results[0].Endorsers) != 2 {
		t.Errorf("Coors endorsers = %v", msg.Results[0].Endorsers)
	}
	// Barcelona items must not surface for a Denver query.
	for _, r := range msg.Results {
		if r.Item == f.parc || r.Item == f.beach {
			t.Errorf("irrelevant item %d surfaced", r.Item)
		}
	}
	// MSG graph carries provenance.
	if msg.Graph.NumLinks() == 0 || !msg.Graph.HasNode(f.ann) {
		t.Error("MSG lacks provenance")
	}
	if err := msg.Graph.Validate(); err != nil {
		t.Error(err)
	}
	if msg.Basis.Kind != BasisQueryFriends && msg.Basis.Kind != BasisFriends {
		t.Errorf("basis = %v", msg.Basis.Kind)
	}
}

func TestDiscoverEmptyQueryIsPureSocial(t *testing.T) {
	f := buildJohnFixture(t)
	d := NewDiscoverer(f.g, "destination")
	msg, err := d.Discover(f.john, Query{K: 10, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Social-only: results are exactly the friends' endorsed items.
	for _, r := range msg.Results {
		if r.Semantic != 0 {
			t.Errorf("empty query produced semantic score %f", r.Semantic)
		}
		if len(r.Endorsers) == 0 {
			t.Errorf("social-only result %d lacks endorsers", r.Item)
		}
	}
	if len(msg.Results) != 3 { // coors, museum, zoo
		t.Errorf("results = %v", msg.Results)
	}
}

func TestDiscoverStructuralScope(t *testing.T) {
	f := buildJohnFixture(t)
	d := NewDiscoverer(f.g, "destination")
	q, err := ParseQuery("city:Denver rating>=0.7")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := d.Discover(f.john, q)
	if err != nil {
		t.Fatal(err)
	}
	// Scope: Coors (0.9) and Zoo (0.8); both endorsed → both surface.
	for _, r := range msg.Results {
		if r.Item != f.coors && r.Item != f.zoo {
			t.Errorf("out-of-scope item %d", r.Item)
		}
	}
	if len(msg.Results) != 2 {
		t.Errorf("results = %v", msg.Results)
	}
}

func TestDiscoverNoSocialSignalFallsBackToSemantic(t *testing.T) {
	f := buildJohnFixture(t)
	d := NewDiscoverer(f.g, "destination")
	// Jane has no connections: social leg empty, semantic-only results.
	q, err := ParseQuery("barcelona family")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := d.Discover(f.expertJane, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Results) == 0 {
		t.Fatal("semantic fallback produced nothing")
	}
	if msg.Results[0].Item != f.parc {
		t.Errorf("top = %d, want Parc", msg.Results[0].Item)
	}
}

func TestDiscoverErrors(t *testing.T) {
	f := buildJohnFixture(t)
	d := NewDiscoverer(f.g, "")
	if _, err := d.Discover(9999, Query{}); err == nil {
		t.Error("unknown user accepted")
	}
	if _, err := d.Discover(f.john, Query{Alpha: 1.5}); err == nil {
		t.Error("alpha out of range accepted")
	}
}

func TestSelectSocialBasisSelma(t *testing.T) {
	// Example 2: Selma's musician friends lack family-trip activity; the
	// basis must fall back to query-relevant friends or experts.
	f := buildJohnFixture(t)
	q, err := ParseQuery("family babies barcelona")
	if err != nil {
		t.Fatal(err)
	}
	basis := SelectSocialBasis(f.g, f.selma, q, 1)
	// Selma's only friend Ann visited no Barcelona family items; experts
	// Jane and Max did.
	if basis.Kind != BasisExperts {
		t.Fatalf("basis kind = %v, want experts", basis.Kind)
	}
	found := map[graph.NodeID]bool{}
	for _, u := range basis.Users {
		found[u] = true
		if u == f.selma {
			t.Error("basis includes the querying user")
		}
	}
	if !found[f.expertJane] {
		t.Errorf("expert Jane missing from basis %v", basis.Users)
	}
	if basis.Kind.String() == "" || BasisKind(9).String() != "unknown" {
		t.Error("BasisKind String broken")
	}
}

func TestSelectSocialBasisFriends(t *testing.T) {
	f := buildJohnFixture(t)
	// No keywords: plain friends.
	basis := SelectSocialBasis(f.g, f.john, Query{}, 1)
	if basis.Kind != BasisFriends || len(basis.Users) != 2 {
		t.Errorf("basis = %+v", basis)
	}
	// Baseball keywords: both friends have baseball activity.
	q, _ := ParseQuery("baseball")
	basis2 := SelectSocialBasis(f.g, f.john, q, 1)
	if basis2.Kind != BasisQueryFriends || len(basis2.Users) != 2 {
		t.Errorf("basis2 = %+v", basis2)
	}
}

func TestCollaborativeFilteringBothVariants(t *testing.T) {
	// Reuse the Example 5 shape: John/Ann/Bob/Eve over destinations.
	b := graph.NewBuilder()
	john := b.Node([]string{graph.TypeUser}, "name", "John")
	ann := b.Node([]string{graph.TypeUser}, "name", "Ann")
	bob := b.Node([]string{graph.TypeUser}, "name", "Bob")
	var dest [5]graph.NodeID
	for i := range dest {
		dest[i] = b.Node([]string{graph.TypeItem, "destination"})
	}
	visit := []string{graph.TypeAct, graph.SubtypeVisit}
	b.Link(john, dest[0], visit)
	b.Link(john, dest[1], visit)
	b.Link(ann, dest[0], visit)
	b.Link(ann, dest[1], visit)
	b.Link(ann, dest[2], visit)
	b.Link(bob, dest[3], visit)
	b.Link(bob, dest[4], visit)
	g := b.Graph()

	for _, variant := range []CFVariant{CFStepwise, CFPattern} {
		recs, err := CollaborativeFiltering(g, john, CFConfig{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 3 { // Ann's three destinations
			t.Fatalf("%s: recs = %v", variant, recs)
		}
		for _, r := range recs {
			if math.Abs(r.Score-2.0/3.0) > 1e-9 {
				t.Errorf("%s: score = %f, want 2/3", variant, r.Score)
			}
			if len(r.Basis) != 1 || r.Basis[0] != ann {
				t.Errorf("%s: basis = %v, want [Ann]", variant, r.Basis)
			}
		}
	}

	// The two variants agree item-for-item (the Section 5.4 equivalence).
	a, err := CollaborativeFiltering(g, john, CFConfig{Variant: CFStepwise})
	if err != nil {
		t.Fatal(err)
	}
	p, err := CollaborativeFiltering(g, john, CFConfig{Variant: CFPattern})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(p) {
		t.Fatalf("variant disagreement: %v vs %v", a, p)
	}
	for i := range a {
		if a[i].Item != p[i].Item || math.Abs(a[i].Score-p[i].Score) > 1e-9 {
			t.Errorf("variant disagreement at %d: %v vs %v", i, a[i], p[i])
		}
	}
}

func TestCollaborativeFilteringErrors(t *testing.T) {
	f := buildJohnFixture(t)
	if _, err := CollaborativeFiltering(f.g, 9999, CFConfig{}); err == nil {
		t.Error("unknown user accepted")
	}
	if _, err := CollaborativeFiltering(f.g, f.john, CFConfig{Variant: CFVariant(9)}); err == nil {
		t.Error("unknown variant accepted")
	}
	if CFStepwise.String() != "stepwise" || CFPattern.String() != "pattern" {
		t.Error("CFVariant String broken")
	}
}

func TestContentBased(t *testing.T) {
	f := buildJohnFixture(t)
	// Give John a visit to Coors; Museum shares 'baseball denver
	// attractions' vocabulary and should be recommended.
	l := graph.NewLink(graph.IDSourceFor(f.g).NextLink(), f.john, f.coors,
		graph.TypeAct, graph.SubtypeVisit)
	if err := f.g.AddLink(l); err != nil {
		t.Fatal(err)
	}
	recs, err := ContentBased(f.g, f.john, "destination", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no content-based recommendations")
	}
	for _, r := range recs {
		if r.Item == f.coors {
			t.Error("already-visited item recommended")
		}
	}
	if recs[0].Item != f.museum {
		t.Errorf("top content rec = %d, want Museum", recs[0].Item)
	}
	if _, err := ContentBased(f.g, 9999, "", 0.1); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestExpertBased(t *testing.T) {
	f := buildJohnFixture(t)
	recs, err := ExpertBased(f.g, []string{"barcelona"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no expert recommendations")
	}
	// Parc endorsed by both experts → top, score 2.
	if recs[0].Item != f.parc || recs[0].Score != 2 {
		t.Errorf("top expert rec = %+v", recs[0])
	}
	none, err := ExpertBased(f.g, []string{"nowhere"}, 2)
	if err != nil || none != nil {
		t.Errorf("no-expert case = %v, %v", none, err)
	}
}

func TestRelatedEntities(t *testing.T) {
	// Alexia's scenario: Jane reviews many result destinations; topics
	// attach via belong links.
	b := graph.NewBuilder()
	alexia := b.Node([]string{graph.TypeUser}, "name", "Alexia")
	friend := b.Node([]string{graph.TypeUser}, "name", "Friend")
	jane := b.Node([]string{graph.TypeUser}, "name", "Jane")
	casual := b.Node([]string{graph.TypeUser}, "name", "Casual")
	topic := b.Node([]string{graph.TypeTopic}, "name", "Independence War")
	var items []graph.NodeID
	for i := 0; i < 3; i++ {
		it := b.Node([]string{graph.TypeItem, "destination"},
			"name", "site", "keywords", "american history")
		items = append(items, it)
		b.Link(it, topic, []string{graph.TypeBelong})
	}
	b.Link(alexia, friend, []string{graph.TypeConnect, graph.SubtypeFriend})
	for _, it := range items {
		b.Link(friend, it, []string{graph.TypeAct, graph.SubtypeVisit})
		b.Link(jane, it, []string{graph.TypeAct, graph.SubtypeReview})
	}
	b.Link(casual, items[0], []string{graph.TypeAct, graph.SubtypeVisit})
	g := b.Graph()

	d := NewDiscoverer(g, "destination")
	q, err := ParseQuery("american history")
	if err != nil {
		t.Fatal(err)
	}
	msg, err := d.Discover(alexia, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Results) != 3 {
		t.Fatalf("results = %v", msg.Results)
	}
	rel := RelatedEntities(g, msg, 2, 5)
	// Jane acted on all three results; the basis (friend) and Alexia are
	// excluded; casual only touched one item (< minActs).
	if len(rel.Users) != 1 || rel.Users[0].User != jane || rel.Users[0].Count != 3 {
		t.Errorf("related users = %+v", rel.Users)
	}
	if len(rel.Topics) != 1 || rel.Topics[0].Topic != topic || rel.Topics[0].Count != 3 {
		t.Errorf("related topics = %+v", rel.Topics)
	}
	// Limits and defaults.
	rel2 := RelatedEntities(g, msg, 0, 0)
	if len(rel2.Users) == 0 {
		t.Error("defaults should still surface Jane")
	}
}
