package discovery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"socialscope/internal/core"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// ErrUnknownUser reports a query or recommendation for a user absent
// from the graph. A sentinel (matched with errors.Is) so serving layers
// can map it to a 404 without string inspection.
var ErrUnknownUser = errors.New("discovery: unknown user")

// Result is one ranked discovery: an item with its semantic and social
// relevance legs, the fused score, and the endorsing users (provenance).
type Result struct {
	Item      graph.NodeID
	Semantic  float64
	Social    float64
	Score     float64
	Endorsers []graph.NodeID
}

// MSG is the Meaningful Social Graph (Section 3): the social content
// subgraph semantically and socially relevant to a user and query, plus
// the ranked results it was assembled from.
type MSG struct {
	User    graph.NodeID
	Query   Query
	Basis   SocialBasis
	Results []Result
	// Graph holds the result items, the endorsing users, their provenance
	// act links, and derived 'rec' links user→item carrying fused scores.
	Graph *graph.Graph
}

// Discoverer evaluates queries against a social content graph. The item
// corpus (BM25 statistics) is computed lazily on the first fusion-path
// query and then shared by every subsequent query — and, through
// WithGraph, across engine snapshots whose item text is unchanged — so
// rebinding a discoverer to a new graph version costs O(1), not
// O(items). The lazy build is safe under concurrent queries.
type Discoverer struct {
	g        *graph.Graph
	corpus   *corpusCell
	itemType string
}

// corpusCell is the lazily built, shareable BM25 corpus. It releases its
// graph reference the moment the corpus is built, and an unbuilt cell is
// replaced rather than carried when the discoverer is rebound — so a
// chain of engine snapshots never pins an old graph version just because
// the fusion path was never queried.
type corpusCell struct {
	once     sync.Once
	c        atomic.Pointer[scoring.Corpus]
	g        *graph.Graph // build source; nilled inside once
	itemType string
}

func (cc *corpusCell) get() *scoring.Corpus {
	cc.once.Do(func() {
		cc.c.Store(scoring.NodeCorpus(cc.g, cc.itemType))
		cc.g = nil
	})
	return cc.c.Load()
}

// built returns the corpus if it has been computed, else nil.
func (cc *corpusCell) built() *scoring.Corpus { return cc.c.Load() }

// NewDiscoverer builds a discoverer over the graph. itemType scopes which
// nodes are candidate results ("" means every item-typed node).
func NewDiscoverer(g *graph.Graph, itemType string) *Discoverer {
	if itemType == "" {
		itemType = graph.TypeItem
	}
	return &Discoverer{
		g:        g,
		corpus:   &corpusCell{g: g, itemType: itemType},
		itemType: itemType,
	}
}

// WithGraph rebinds the discoverer to a new graph version. O(1). An
// already-built corpus is shared; an unbuilt one is re-targeted at the
// new graph, so no old graph version stays reachable. Correct only when
// the searchable text of the item nodes is unchanged between the
// versions — the live engine uses it for mutation batches that touch no
// item node and falls back to NewDiscoverer otherwise.
func (d *Discoverer) WithGraph(g *graph.Graph) *Discoverer {
	cell := d.corpus
	if cell.built() == nil {
		cell = &corpusCell{g: g, itemType: d.itemType}
	}
	return &Discoverer{g: g, corpus: cell, itemType: d.itemType}
}

// Discover runs the full Information Discoverer pipeline:
//
//  1. scope candidate items by the query's structural predicates
//     (Section 4: "treating the structural predicates as the constraints
//     defining the scope");
//  2. compute semantic relevance (BM25) for keyword queries;
//  3. select the social basis (Example 2) and compute social relevance as
//     the fraction of the basis endorsing each item;
//  4. fuse with score = α·semantic + (1-α)·social (normalized legs); an
//     empty query degenerates to pure social relevance, keyword-less
//     structural queries to pure social within scope;
//  5. assemble the MSG with provenance links.
func (d *Discoverer) Discover(user graph.NodeID, q Query) (*MSG, error) {
	if !d.g.HasNode(user) {
		return nil, fmt.Errorf("%w %d", ErrUnknownUser, user)
	}
	if q.K <= 0 {
		q.K = 10
	}
	if q.Alpha < 0 || q.Alpha > 1 {
		return nil, fmt.Errorf("discovery: alpha %g outside [0,1]", q.Alpha)
	}

	// 1. Scope.
	scopeCond := core.Condition{Structural: append([]core.StructCond{
		core.Cond("type", d.itemType)}, q.Structural...)}
	scope := core.NodeSelect(d.g, scopeCond, nil)

	// 2. Semantic relevance, normalized to [0,1] by the max.
	semantic := make(map[graph.NodeID]float64)
	if len(q.Keywords) > 0 {
		maxSem := 0.0
		for _, n := range scope.Nodes() {
			s := d.corpus.get().BM25(q.Keywords, n.Text())
			semantic[n.ID] = s
			if s > maxSem {
				maxSem = s
			}
		}
		if maxSem > 0 {
			for id := range semantic {
				semantic[id] /= maxSem
			}
		}
	}

	// 3. Social relevance over the selected basis.
	basis := SelectSocialBasis(d.g, user, q, 1)
	social := make(map[graph.NodeID]float64)
	endorsers := make(map[graph.NodeID][]graph.NodeID)
	if len(basis.Users) > 0 {
		for _, b := range basis.Users {
			for _, l := range d.g.Out(b) {
				if !l.HasType(graph.TypeAct) || !scope.HasNode(l.Tgt) {
					continue
				}
				if !contains(endorsers[l.Tgt], b) {
					endorsers[l.Tgt] = append(endorsers[l.Tgt], b)
				}
			}
		}
		n := float64(len(basis.Users))
		for item, es := range endorsers {
			social[item] = float64(len(es)) / n
		}
	}

	// 4. Fuse.
	alpha := q.Alpha
	switch {
	case len(q.Keywords) == 0:
		alpha = 0 // empty/structural-only query: social relevance only
	case len(social) == 0:
		alpha = 1 // no usable social signal: semantic only
	}
	var ranked []Result
	for _, n := range scope.Nodes() {
		sem := semantic[n.ID]
		soc := social[n.ID]
		score := alpha*sem + (1-alpha)*soc
		if score <= 0 {
			continue
		}
		ranked = append(ranked, Result{
			Item: n.ID, Semantic: sem, Social: soc, Score: score,
			Endorsers: endorsers[n.ID],
		})
	}
	sortResults(ranked)
	if q.K < len(ranked) {
		ranked = ranked[:q.K]
	}

	// 5. MSG assembly.
	msgGraph, err := d.assemble(user, ranked)
	if err != nil {
		return nil, err
	}
	return &MSG{User: user, Query: q, Basis: basis, Results: ranked, Graph: msgGraph}, nil
}

func (d *Discoverer) assemble(user graph.NodeID, results []Result) (*graph.Graph, error) {
	out := graph.New()
	out.PutNode(d.g.Node(user).Clone())
	ids := graph.IDSourceFor(d.g)
	for _, r := range results {
		item := d.g.Node(r.Item).Clone()
		item.SetScore(r.Score)
		out.PutNode(item)
		rec := graph.NewLink(ids.NextLink(), user, r.Item, "rec")
		rec.Attrs.SetFloat("score", r.Score)
		if err := out.AddLink(rec); err != nil {
			return nil, err
		}
		for _, e := range r.Endorsers {
			if !out.HasNode(e) {
				out.PutNode(d.g.Node(e).Clone())
			}
			// Copy the provenance act links endorser→item.
			for _, l := range d.g.Out(e) {
				if l.Tgt == r.Item && l.HasType(graph.TypeAct) && !out.HasLink(l.ID) {
					if err := out.AddLink(l.Clone()); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Score > rs[j-1].Score ||
				(rs[j].Score == rs[j-1].Score && rs[j].Item < rs[j-1].Item) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

func contains(ids []graph.NodeID, id graph.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
