// Package store implements the Data Manager's storage role (Section 6,
// Figure 1): durable, concurrency-safe maintenance of the social content
// graph behind the logical model, so the physical implementation is
// abstracted away from the layers above.
//
// The design is a classic snapshot + write-ahead log pair: mutations append
// JSON records to wal.jsonl before applying to the in-memory graph;
// Snapshot writes the full graph to snapshot.json and truncates the log;
// Open recovers by loading the snapshot and replaying the log, tolerating
// a torn final record (the crash case).
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"socialscope/internal/graph"
)

const (
	snapshotName = "snapshot.json"
	walName      = "wal.jsonl"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store is a durable social content graph. Reads run under a shared lock;
// mutations serialize and hit the log before the graph.
type Store struct {
	mu     sync.RWMutex
	dir    string
	g      *graph.Graph
	wal    *os.File
	walW   *bufio.Writer
	closed bool
	// appliedRecords counts log records since the last snapshot; exposed
	// for compaction policies.
	appliedRecords int
}

// record is one WAL entry. Exactly one of the payload fields is set.
type record struct {
	Op   string    `json:"op"` // putnode | putlink | delnode | dellink
	Node *nodeJSON `json:"node,omitempty"`
	Link *linkJSON `json:"link,omitempty"`
	ID   int64     `json:"id,omitempty"`
}

type nodeJSON struct {
	ID    graph.NodeID        `json:"id"`
	Types []string            `json:"types"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

type linkJSON struct {
	ID    graph.LinkID        `json:"id"`
	Src   graph.NodeID        `json:"src"`
	Tgt   graph.NodeID        `json:"tgt"`
	Types []string            `json:"types"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

// Open loads (or initializes) a store in dir: snapshot first, then WAL
// replay. A torn trailing WAL record — the crash signature — is discarded;
// any earlier corruption is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	g := graph.New()
	snapPath := filepath.Join(dir, snapshotName)
	if f, err := os.Open(snapPath); err == nil {
		loaded, derr := graph.Decode(f)
		cerr := f.Close()
		if derr != nil {
			return nil, fmt.Errorf("store: snapshot corrupt: %w", derr)
		}
		if cerr != nil {
			return nil, cerr
		}
		g = loaded
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	replayed, err := replay(walPath, g)
	if err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{
		dir: dir, g: g, wal: wal, walW: bufio.NewWriter(wal),
		appliedRecords: replayed,
	}, nil
}

// replay applies WAL records to g. It returns the number applied. A
// decode error on the final record truncates the log to the last good
// prefix; a decode error earlier is fatal. Application errors (e.g. a link
// whose endpoint never existed) are fatal: they indicate a corrupt log,
// not a crash.
func replay(path string, g *graph.Graph) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	applied := 0
	var goodBytes int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail: only acceptable if nothing follows.
			if sc.Scan() {
				return 0, fmt.Errorf("store: wal corrupt mid-stream: %w", err)
			}
			if terr := os.Truncate(path, goodBytes); terr != nil {
				return 0, fmt.Errorf("store: truncating torn wal: %w", terr)
			}
			return applied, nil
		}
		if err := apply(g, rec); err != nil {
			return 0, fmt.Errorf("store: wal replay: %w", err)
		}
		goodBytes += int64(len(line)) + 1
		applied++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("store: reading wal: %w", err)
	}
	return applied, nil
}

func apply(g *graph.Graph, rec record) error {
	switch rec.Op {
	case "putnode":
		if rec.Node == nil {
			return fmt.Errorf("putnode without node")
		}
		n := graph.NewNode(rec.Node.ID, rec.Node.Types...)
		if rec.Node.Attrs != nil {
			n.Attrs = graph.Attrs(rec.Node.Attrs)
		}
		g.PutNode(n)
		return nil
	case "putlink":
		if rec.Link == nil {
			return fmt.Errorf("putlink without link")
		}
		l := graph.NewLink(rec.Link.ID, rec.Link.Src, rec.Link.Tgt, rec.Link.Types...)
		if rec.Link.Attrs != nil {
			l.Attrs = graph.Attrs(rec.Link.Attrs)
		}
		return g.PutLink(l)
	case "delnode":
		g.RemoveNode(graph.NodeID(rec.ID))
		return nil
	case "dellink":
		g.RemoveLink(graph.LinkID(rec.ID))
		return nil
	}
	return fmt.Errorf("unknown op %q", rec.Op)
}

// append writes a record to the WAL and flushes it, then applies it.
func (s *Store) append(rec record) error {
	if s.closed {
		return ErrClosed
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.walW.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := s.walW.Flush(); err != nil {
		return fmt.Errorf("store: wal flush: %w", err)
	}
	if err := apply(s.g, rec); err != nil {
		return err
	}
	s.appliedRecords++
	return nil
}

// PutNode durably inserts or consolidates a node.
func (s *Store) PutNode(n *graph.Node) error {
	if n == nil {
		return graph.ErrNilElement
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "putnode", Node: &nodeJSON{ID: n.ID, Types: n.Types, Attrs: n.Attrs}})
}

// PutLink durably inserts or consolidates a link; endpoints must exist.
func (s *Store) PutLink(l *graph.Link) error {
	if l == nil {
		return graph.ErrNilElement
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.g.HasNode(l.Src) || !s.g.HasNode(l.Tgt) {
		return fmt.Errorf("%w: link %d (%d->%d)", graph.ErrMissingEnd, l.ID, l.Src, l.Tgt)
	}
	return s.append(record{Op: "putlink", Link: &linkJSON{
		ID: l.ID, Src: l.Src, Tgt: l.Tgt, Types: l.Types, Attrs: l.Attrs,
	}})
}

// RemoveNode durably removes a node and its incident links.
func (s *Store) RemoveNode(id graph.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "delnode", ID: int64(id)})
}

// RemoveLink durably removes a link.
func (s *Store) RemoveLink(id graph.LinkID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "dellink", ID: int64(id)})
}

// View runs fn with shared read access to the graph. The graph must not be
// mutated or retained past fn.
func (s *Store) View(fn func(*graph.Graph)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	fn(s.g)
	return nil
}

// Graph returns an isolated deep copy of the current graph for long-lived
// analysis (the Content Analyzer's input).
func (s *Store) Graph() (*graph.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.g.Clone(), nil
}

// PendingRecords reports WAL records since the last snapshot.
func (s *Store) PendingRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appliedRecords
}

// Snapshot writes the full graph to snapshot.json (atomically via rename)
// and truncates the WAL — log compaction.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.g.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Truncate the log now that the snapshot covers it.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walW.Reset(s.wal)
	s.appliedRecords = 0
	return nil
}

// Close flushes and closes the WAL. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.walW.Flush(); err != nil {
		s.wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	return s.wal.Close()
}
