// Package store implements the Data Manager's storage role (Section 6,
// Figure 1): durable, concurrency-safe maintenance of the social content
// graph behind the logical model, so the physical implementation is
// abstracted away from the layers above.
//
// The design is a classic snapshot + write-ahead log pair: mutations append
// JSON records to wal.jsonl before applying to the in-memory graph;
// Snapshot writes the full graph to snapshot.json and truncates the log;
// Open recovers by loading the snapshot and replaying the log, tolerating
// a torn final record (the crash case).
//
// All file IO flows through vfs.FS (enforced by the vfsseam analyzer), so
// the fault-injection harness can crash this store at every operation
// boundary exactly as it does the checkpoint/manifest machinery in this
// package's other files. An append is acknowledged only after fsync: a
// nil error from PutNode/PutLink/Remove* means the record survives a
// crash.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"socialscope/internal/graph"
	"socialscope/internal/vfs"
)

const (
	snapshotName = "snapshot.json"
	walName      = "wal.jsonl"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store is a durable social content graph. Reads run under a shared lock;
// mutations serialize and hit the log before the graph.
type Store struct {
	mu     sync.RWMutex
	fsys   vfs.FS
	dir    string
	g      *graph.Graph
	wal    vfs.File
	walW   *bufio.Writer
	closed bool
	// appliedRecords counts log records since the last snapshot; exposed
	// for compaction policies.
	appliedRecords int
}

// record is one WAL entry. Exactly one of the payload fields is set.
type record struct {
	Op   string    `json:"op"` // putnode | putlink | delnode | dellink
	Node *nodeJSON `json:"node,omitempty"`
	Link *linkJSON `json:"link,omitempty"`
	ID   int64     `json:"id,omitempty"`
}

type nodeJSON struct {
	ID    graph.NodeID        `json:"id"`
	Types []string            `json:"types"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

type linkJSON struct {
	ID    graph.LinkID        `json:"id"`
	Src   graph.NodeID        `json:"src"`
	Tgt   graph.NodeID        `json:"tgt"`
	Types []string            `json:"types"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

// Open loads (or initializes) a store in dir on the real filesystem.
func Open(dir string) (*Store, error) {
	return OpenFS(vfs.OS{}, dir)
}

// OpenFS loads (or initializes) a store in dir through fsys: snapshot
// first, then WAL replay. A torn trailing WAL record — the crash
// signature — is discarded; any earlier corruption is an error.
func OpenFS(fsys vfs.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	g := graph.New()
	snapPath := filepath.Join(dir, snapshotName)
	if data, err := vfs.ReadFile(fsys, snapPath); err == nil {
		loaded, derr := graph.Decode(bytes.NewReader(data))
		if derr != nil {
			return nil, fmt.Errorf("store: snapshot corrupt: %w", derr)
		}
		g = loaded
	} else if !vfs.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	replayed, err := replay(fsys, walPath, g)
	if err != nil {
		return nil, err
	}
	wal, err := fsys.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{
		fsys: fsys, dir: dir, g: g, wal: wal, walW: bufio.NewWriter(wal),
		appliedRecords: replayed,
	}, nil
}

// replay applies WAL records to g. It returns the number applied. A
// decode error on the final record truncates the log to the last good
// prefix; a decode error earlier is fatal. Application errors (e.g. a link
// whose endpoint never existed) are fatal: they indicate a corrupt log,
// not a crash.
func replay(fsys vfs.FS, path string, g *graph.Graph) (int, error) {
	data, err := vfs.ReadFile(fsys, path)
	if vfs.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: reading wal: %w", err)
	}

	applied := 0
	var goodBytes int64
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail: only acceptable if nothing follows.
			if len(rest) > 0 {
				return 0, fmt.Errorf("store: wal corrupt mid-stream: %w", err)
			}
			if terr := fsys.Truncate(path, goodBytes); terr != nil {
				return 0, fmt.Errorf("store: truncating torn wal: %w", terr)
			}
			return applied, nil
		}
		if err := apply(g, rec); err != nil {
			return 0, fmt.Errorf("store: wal replay: %w", err)
		}
		goodBytes += int64(len(line)) + 1
		applied++
		data = rest
	}
	return applied, nil
}

func apply(g *graph.Graph, rec record) error {
	switch rec.Op {
	case "putnode":
		if rec.Node == nil {
			return fmt.Errorf("putnode without node")
		}
		n := graph.NewNode(rec.Node.ID, rec.Node.Types...)
		if rec.Node.Attrs != nil {
			n.Attrs = graph.Attrs(rec.Node.Attrs)
		}
		g.PutNode(n)
		return nil
	case "putlink":
		if rec.Link == nil {
			return fmt.Errorf("putlink without link")
		}
		l := graph.NewLink(rec.Link.ID, rec.Link.Src, rec.Link.Tgt, rec.Link.Types...)
		if rec.Link.Attrs != nil {
			l.Attrs = graph.Attrs(rec.Link.Attrs)
		}
		return g.PutLink(l)
	case "delnode":
		g.RemoveNode(graph.NodeID(rec.ID))
		return nil
	case "dellink":
		g.RemoveLink(graph.LinkID(rec.ID))
		return nil
	}
	return fmt.Errorf("unknown op %q", rec.Op)
}

// append writes a record to the WAL, makes it durable, then applies it.
// The fsync before returning is the durability barrier: a nil result
// promises the record survives a crash (this store once flushed without
// syncing, so "acknowledged" writes could vanish — the exact gap the
// fault harness now guards).
func (s *Store) append(rec record) error {
	if s.closed {
		return ErrClosed
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.walW.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := s.walW.Flush(); err != nil {
		return fmt.Errorf("store: wal flush: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	if err := apply(s.g, rec); err != nil {
		return err
	}
	s.appliedRecords++
	return nil
}

// PutNode durably inserts or consolidates a node.
func (s *Store) PutNode(n *graph.Node) error {
	if n == nil {
		return graph.ErrNilElement
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "putnode", Node: &nodeJSON{ID: n.ID, Types: n.Types, Attrs: n.Attrs}})
}

// PutLink durably inserts or consolidates a link; endpoints must exist.
func (s *Store) PutLink(l *graph.Link) error {
	if l == nil {
		return graph.ErrNilElement
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.g.HasNode(l.Src) || !s.g.HasNode(l.Tgt) {
		return fmt.Errorf("%w: link %d (%d->%d)", graph.ErrMissingEnd, l.ID, l.Src, l.Tgt)
	}
	return s.append(record{Op: "putlink", Link: &linkJSON{
		ID: l.ID, Src: l.Src, Tgt: l.Tgt, Types: l.Types, Attrs: l.Attrs,
	}})
}

// RemoveNode durably removes a node and its incident links.
func (s *Store) RemoveNode(id graph.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "delnode", ID: int64(id)})
}

// RemoveLink durably removes a link.
func (s *Store) RemoveLink(id graph.LinkID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "dellink", ID: int64(id)})
}

// View runs fn with shared read access to the graph. The graph must not be
// mutated or retained past fn.
func (s *Store) View(fn func(*graph.Graph)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	fn(s.g)
	return nil
}

// Graph returns an isolated deep copy of the current graph for long-lived
// analysis (the Content Analyzer's input).
func (s *Store) Graph() (*graph.Graph, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.g.Clone(), nil
}

// PendingRecords reports WAL records since the last snapshot.
func (s *Store) PendingRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appliedRecords
}

// Snapshot writes the full graph to snapshot.json (atomically via
// sync-then-rename) and truncates the WAL — log compaction. The open
// append handle stays valid across the truncate: it is in O_APPEND mode,
// so the next record lands at the new end of file.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.g.Encode(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: snapshot encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fsys.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Truncate the log now that the snapshot covers it.
	if err := s.fsys.Truncate(filepath.Join(s.dir, walName), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walW.Reset(s.wal)
	s.appliedRecords = 0
	return nil
}

// Close flushes, syncs and closes the WAL, surfacing any error on the
// way out — on a writable log the Close result is the write's fate.
// Further operations fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.walW.Flush(); err != nil {
		_ = s.wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		_ = s.wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	return s.wal.Close()
}
