package store

import (
	"socialscope/internal/obs"
)

// storeMetrics are the checkpointer's registry handles. The delta
// ratio — last delta's bytes over the chain's full checkpoint bytes —
// is the structural-sharing payoff the PR 7 design bought: near-zero
// means deltas capture only what changed.
type storeMetrics struct {
	saves     *obs.CounterVec // ss_checkpoints_total{kind}
	bytes     *obs.Histogram  // ss_checkpoint_bytes
	lastBytes *obs.Gauge      // ss_checkpoint_last_bytes
	ratio     *obs.Gauge      // ss_checkpoint_delta_ratio
	dur       *obs.Histogram  // ss_checkpoint_seconds
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return &storeMetrics{
		saves: reg.CounterVec("ss_checkpoints_total",
			"checkpoints written, by kind (full resets the chain, delta extends it)", "kind"),
		bytes: reg.Histogram("ss_checkpoint_bytes",
			"bytes per checkpoint file", obs.ExpBuckets(256, 4, 10)),
		lastBytes: reg.Gauge("ss_checkpoint_last_bytes",
			"bytes of the most recent checkpoint file"),
		ratio: reg.Gauge("ss_checkpoint_delta_ratio",
			"last delta checkpoint's bytes over its chain's full checkpoint bytes"),
		dur: reg.Histogram("ss_checkpoint_seconds",
			"end-to-end Save latency (encode, fsync, manifest publish)", nil),
	}
}

// Instrument points the checkpointer's metrics at reg (obs.Default
// when nil — also the default for un-instrumented checkpointers) and
// returns the receiver for chaining at construction sites.
func (c *Checkpointer) Instrument(reg *obs.Registry) *Checkpointer {
	c.met = newStoreMetrics(reg)
	return c
}
