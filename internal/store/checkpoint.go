package store

// Checkpoint files and the manifest that binds them to the WAL — the
// durable half of the engine's recovery pair (the other half is
// internal/wal). A checkpoint file carries a graph checkpoint section
// for the base graph and, when the engine has analyzed, a second
// section for the enriched graph (each full or delta — see
// graph.CkptWriter), framed with a magic, sequence metadata, the engine
// version and WAL position it captures, and a whole-file CRC. The MANIFEST names the current chain: one full
// checkpoint followed by the deltas on top of it, in order. Recovery
// reads the manifest, folds the chain through a graph.CkptReader, and
// replays the WAL from the recorded LSN.
//
// Write protocol (all through vfs, so the fault-injection harness can
// crash it at every operation):
//
//  1. checkpoint file → tmp, fsync, rename into place;
//  2. MANIFEST       → tmp, fsync, rename into place;
//  3. only then delete files no longer referenced.
//
// A crash between any two steps leaves the previous manifest — and
// therefore the previous chain — fully intact; orphaned files from an
// interrupted save are swept by the next successful one. Delta state
// lives in memory (pointer identity over live tries), so the first
// checkpoint after a restart is always full and starts a fresh chain.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path"
	"strings"
	"time"

	"socialscope/internal/graph"
	"socialscope/internal/vfs"
)

const (
	manifestName = "MANIFEST"
	ckptSuffix   = ".ck"
	// DefaultMaxChain bounds how many deltas stack on one full checkpoint
	// before the chain resets; longer chains mean cheaper checkpoints but
	// slower recovery and later file reclamation.
	DefaultMaxChain = 8
)

var ckptMagic = [8]byte{'S', 'S', 'C', 'K', 'P', 'T', '0', '1'}

// ErrCkptCorrupt is returned when checkpoint files or the manifest fail
// validation.
var ErrCkptCorrupt = errors.New("store: corrupt checkpoint")

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// Meta is the engine state a checkpoint captures beyond the graphs
// themselves: the version the serving layer keys its caches by, the
// last WAL LSN the checkpoint covers, and whether the engine had an
// analyzed (enriched) graph — in which case the file carries its
// section too, since the enrichment depends on the base graph as of the
// Analyze call, which a later checkpoint's base no longer is.
type Meta struct {
	Version  uint64
	WalLSN   uint64
	Analyzed bool
}

// Manifest is the durable index of the current checkpoint chain.
type Manifest struct {
	Seq      uint64   `json:"seq"`
	Chain    []string `json:"chain"`
	Version  uint64   `json:"version"`
	WalLSN   uint64   `json:"wal_lsn"`
	Analyzed bool     `json:"analyzed"`
}

// Recovered is the result of loading the latest checkpoint chain.
type Recovered struct {
	Graph *graph.Graph
	// Analyzed is the enriched graph the checkpoint carried, nil when
	// the engine had not analyzed.
	Analyzed *graph.Graph
	Meta     Meta
	Seq      uint64
}

// Checkpointer writes checkpoint files for one graph lineage. It is not
// safe for concurrent use; the engine serializes saves on its write
// path.
type Checkpointer struct {
	fsys      vfs.FS
	dir       string
	maxChain  int
	wBase     *graph.CkptWriter
	wAnalyzed *graph.CkptWriter
	seq       uint64
	chain     []string
	met       *storeMetrics
	lastFull  int // bytes of the chain's full checkpoint, for the delta ratio
}

// NewCheckpointer returns a checkpointer writing into dir, numbering
// files after startSeq (the recovered manifest's Seq, or 0 on a fresh
// directory). Its first Save writes a full checkpoint.
func NewCheckpointer(fsys vfs.FS, dir string, maxChain int, startSeq uint64) *Checkpointer {
	if maxChain < 1 {
		maxChain = DefaultMaxChain
	}
	return &Checkpointer{
		fsys: fsys, dir: dir, maxChain: maxChain, seq: startSeq,
		met: newStoreMetrics(nil),
	}
}

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%016x%s", seq, ckptSuffix) }

// Save writes a checkpoint of the base graph and (when non-nil) the
// analyzed graph — deltas when a chain is open and has room, a fresh
// full checkpoint otherwise — publishes the updated manifest, and
// deletes files the manifest no longer references. On error the
// previous manifest (and chain) remain authoritative. meta.Analyzed is
// derived from the analyzed argument.
func (c *Checkpointer) Save(base, analyzed *graph.Graph, meta Meta) error {
	start := time.Now()
	if err := c.fsys.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	parentSeq := uint64(0)
	full := false
	if c.wBase == nil || len(c.chain) >= c.maxChain {
		c.wBase = graph.NewCkptWriter()
		c.wAnalyzed = graph.NewCkptWriter()
		c.chain = nil
		full = true
	}
	if len(c.chain) > 0 {
		parentSeq = c.seq
	}
	seq := c.seq + 1
	meta.Analyzed = analyzed != nil

	data := append([]byte(nil), ckptMagic[:]...)
	data = binary.AppendUvarint(data, seq)
	data = binary.AppendUvarint(data, parentSeq)
	data = binary.AppendUvarint(data, meta.Version)
	data = binary.AppendUvarint(data, meta.WalLSN)
	if meta.Analyzed {
		data = append(data, 1)
	} else {
		data = append(data, 0)
	}
	baseSec := c.wBase.AppendCheckpoint(nil, base)
	data = binary.AppendUvarint(data, uint64(len(baseSec)))
	data = append(data, baseSec...)
	if analyzed != nil {
		anSec := c.wAnalyzed.AppendCheckpoint(nil, analyzed)
		data = binary.AppendUvarint(data, uint64(len(anSec)))
		data = append(data, anSec...)
	}
	data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(data, ckptCRC))

	name := ckptName(seq)
	tmp := path.Join(c.dir, name+".tmp")
	if err := vfs.WriteFileSync(c.fsys, tmp, data, 0o644); err != nil {
		// The delta state already advanced; force a full restart next time.
		c.wBase = nil
		return fmt.Errorf("store: checkpoint write: %w", err)
	}
	if err := c.fsys.Rename(tmp, path.Join(c.dir, name)); err != nil {
		c.wBase = nil
		return fmt.Errorf("store: checkpoint publish: %w", err)
	}

	man := Manifest{
		Seq: seq, Chain: append(append([]string(nil), c.chain...), name),
		Version: meta.Version, WalLSN: meta.WalLSN, Analyzed: meta.Analyzed,
	}
	if err := c.writeManifest(man); err != nil {
		c.wBase = nil
		return err
	}
	c.seq = seq
	c.chain = man.Chain
	c.sweep()
	if full {
		c.met.saves.With("full").Inc()
		c.lastFull = len(data)
	} else {
		c.met.saves.With("delta").Inc()
		if c.lastFull > 0 {
			c.met.ratio.Set(float64(len(data)) / float64(c.lastFull))
		}
	}
	c.met.bytes.Observe(float64(len(data)))
	c.met.lastBytes.SetUint(uint64(len(data)))
	c.met.dur.ObserveSince(start)
	return nil
}

func (c *Checkpointer) writeManifest(man Manifest) error {
	data, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := path.Join(c.dir, manifestName+".tmp")
	if err := vfs.WriteFileSync(c.fsys, tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: manifest write: %w", err)
	}
	if err := c.fsys.Rename(tmp, path.Join(c.dir, manifestName)); err != nil {
		return fmt.Errorf("store: manifest publish: %w", err)
	}
	return nil
}

// sweep deletes checkpoint files and temporaries the manifest no longer
// references. Failures are ignored: orphans are retried by the next
// save and harm nothing in the meantime.
func (c *Checkpointer) sweep() {
	names, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return
	}
	live := make(map[string]bool, len(c.chain))
	for _, n := range c.chain {
		live[n] = true
	}
	for _, n := range names {
		stale := strings.HasSuffix(n, ".tmp") ||
			(strings.HasSuffix(n, ckptSuffix) && strings.HasPrefix(n, "ckpt-") && !live[n])
		if stale {
			_ = c.fsys.Remove(path.Join(c.dir, n))
		}
	}
}

// LoadLatest reads the manifest and folds the checkpoint chain into the
// graph it encodes. It returns nil (no error) when the directory holds
// no manifest — a fresh deployment.
func LoadLatest(fsys vfs.FS, dir string) (*Recovered, error) {
	man, err := LoadManifest(fsys, dir)
	if err != nil || man == nil {
		return nil, err
	}
	rBase := graph.NewCkptReader()
	rAnalyzed := graph.NewCkptReader()
	var g, an *graph.Graph
	var prevSeq uint64
	var fileMeta Meta
	for i, name := range man.Chain {
		raw, err := vfs.ReadFile(fsys, path.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: chain file %s: %w", name, err)
		}
		baseSec, anSec, seq, parentSeq, meta, err := parseCkptFile(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if i == 0 && parentSeq != 0 {
			return nil, fmt.Errorf("%w: chain starts with delta %s", ErrCkptCorrupt, name)
		}
		if i > 0 && parentSeq != prevSeq {
			return nil, fmt.Errorf("%w: %s parent %d, want %d", ErrCkptCorrupt, name, parentSeq, prevSeq)
		}
		if g, err = rBase.Apply(baseSec); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if anSec != nil {
			if an, err = rAnalyzed.Apply(anSec); err != nil {
				return nil, fmt.Errorf("%s (analyzed): %w", name, err)
			}
		}
		prevSeq = seq
		fileMeta = meta
	}
	if prevSeq != man.Seq || fileMeta.Version != man.Version ||
		fileMeta.WalLSN != man.WalLSN || fileMeta.Analyzed != man.Analyzed {
		return nil, fmt.Errorf("%w: manifest/chain metadata mismatch", ErrCkptCorrupt)
	}
	if !man.Analyzed {
		an = nil
	} else if an == nil {
		return nil, fmt.Errorf("%w: analyzed flagged but no analyzed section in chain", ErrCkptCorrupt)
	}
	return &Recovered{
		Graph:    g,
		Analyzed: an,
		Meta:     Meta{Version: man.Version, WalLSN: man.WalLSN, Analyzed: man.Analyzed},
		Seq:      man.Seq,
	}, nil
}

func parseCkptFile(raw []byte) (baseSec, anSec []byte, seq, parentSeq uint64, meta Meta, err error) {
	fail := func(err error) ([]byte, []byte, uint64, uint64, Meta, error) {
		return nil, nil, 0, 0, Meta{}, err
	}
	if len(raw) < len(ckptMagic)+4 || [8]byte(raw[:8]) != ckptMagic {
		return fail(fmt.Errorf("%w: bad magic", ErrCkptCorrupt))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, ckptCRC) != binary.LittleEndian.Uint32(trailer) {
		return fail(fmt.Errorf("%w: crc mismatch", ErrCkptCorrupt))
	}
	off := len(ckptMagic)
	read := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated header", ErrCkptCorrupt)
		}
		off += n
		return v, nil
	}
	if seq, err = read(); err != nil {
		return fail(err)
	}
	if parentSeq, err = read(); err != nil {
		return fail(err)
	}
	if meta.Version, err = read(); err != nil {
		return fail(err)
	}
	if meta.WalLSN, err = read(); err != nil {
		return fail(err)
	}
	if off >= len(body) {
		return fail(fmt.Errorf("%w: truncated header", ErrCkptCorrupt))
	}
	meta.Analyzed = body[off] != 0
	off++
	section := func() ([]byte, error) {
		l, err := read()
		if err != nil {
			return nil, err
		}
		if l > uint64(len(body)-off) {
			return nil, fmt.Errorf("%w: section overruns file", ErrCkptCorrupt)
		}
		s := body[off : off+int(l)]
		off += int(l)
		return s, nil
	}
	if baseSec, err = section(); err != nil {
		return fail(err)
	}
	if meta.Analyzed {
		if anSec, err = section(); err != nil {
			return fail(err)
		}
		if anSec == nil {
			anSec = []byte{}
		}
	}
	if off != len(body) {
		return fail(fmt.Errorf("%w: trailing bytes after sections", ErrCkptCorrupt))
	}
	return baseSec, anSec, seq, parentSeq, meta, nil
}

// CkptFiles lists the checkpoint-owned files currently in dir (test and
// tooling helper).
func CkptFiles(fsys vfs.FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if vfs.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, n := range names {
		if n == manifestName || strings.HasPrefix(n, "ckpt-") {
			out = append(out, n)
		}
	}
	return out, nil
}
