package store

import (
	"testing"

	"socialscope/internal/vfs"
)

func TestWatcherReportsManifestAdvances(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	w := NewWatcher(fsys, "ck", 0)

	// No manifest yet: quiet.
	if man, changed, err := w.Poll(); man != nil || changed || err != nil {
		t.Fatalf("poll on empty dir: man=%v changed=%v err=%v", man, changed, err)
	}

	g := bigGraph(t, 6, 4)
	c := NewCheckpointer(fsys, "ck", 4, 0)
	if err := c.Save(g, nil, Meta{Version: 3, WalLSN: 7}); err != nil {
		t.Fatal(err)
	}
	man, changed, err := w.Poll()
	if err != nil || !changed || man == nil {
		t.Fatalf("first save unseen: changed=%v err=%v", changed, err)
	}
	if man.Version != 3 || man.WalLSN != 7 {
		t.Fatalf("manifest meta: %+v", man)
	}
	seq1 := man.Seq

	// Unchanged manifest: reported, but not as a change.
	if man, changed, err := w.Poll(); err != nil || changed || man == nil || man.Seq != seq1 {
		t.Fatalf("steady poll: man=%v changed=%v err=%v", man, changed, err)
	}

	// A second save advances the sequence.
	if err := c.Save(g, nil, Meta{Version: 4, WalLSN: 9}); err != nil {
		t.Fatal(err)
	}
	man, changed, err = w.Poll()
	if err != nil || !changed || man.Seq <= seq1 || man.WalLSN != 9 {
		t.Fatalf("second save: man=%+v changed=%v err=%v", man, changed, err)
	}

	// A fresh watcher seeded with the latest seq sees no change.
	w2 := NewWatcher(fsys, "ck", man.Seq)
	if _, changed, err := w2.Poll(); err != nil || changed {
		t.Fatalf("seeded watcher: changed=%v err=%v", changed, err)
	}
}
