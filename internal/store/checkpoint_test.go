package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"

	"socialscope/internal/graph"
	"socialscope/internal/vfs"
)

// bigGraph builds an append-heavy fixture: many users tagging many
// items, the paper's collaborative-tagging shape.
func bigGraph(t *testing.T, users, items int) *graph.Graph {
	t.Helper()
	g := graph.New()
	ids := graph.IDSourceFor(g)
	for i := 0; i < users; i++ {
		n := graph.NewNode(ids.NextNode(), "user")
		n.Attrs.Add("name", fmt.Sprintf("user-%d", i))
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < items; i++ {
		n := graph.NewNode(ids.NextNode(), "item", "city")
		n.Attrs.Add("name", fmt.Sprintf("city-%d", i))
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < users; u++ {
		for k := 0; k < 4; k++ {
			l := graph.NewLink(ids.NextLink(),
				graph.NodeID(u+1), graph.NodeID(users+1+(u*7+k*13)%items), "act", "tag")
			l.Attrs.Add("tags", fmt.Sprintf("tag-%d", (u+k)%17))
			if err := g.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func ckptSize(t *testing.T, fsys *vfs.FaultFS, dir string, name string) int64 {
	t.Helper()
	sz, err := fsys.Size(dir + "/" + name)
	if err != nil {
		t.Fatalf("size %s: %v", name, err)
	}
	return sz
}

// TestDeltaCheckpointsMeasurablySmaller is the acceptance check: on an
// append-heavy stream, a delta checkpoint of a large graph after a
// small batch must be a small fraction of the full checkpoint's size.
func TestDeltaCheckpointsMeasurablySmaller(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	g := bigGraph(t, 200, 100)
	c := NewCheckpointer(fsys, "ck", 16, 0)
	if err := c.Save(g, nil, Meta{Version: 1, WalLSN: 10}); err != nil {
		t.Fatal(err)
	}
	fullSize := ckptSize(t, fsys, "ck", ckptName(1))

	ids := graph.IDSourceFor(g)
	var deltaTotal int64
	const steps = 5
	for s := 0; s < steps; s++ {
		// One small append batch: a new user tags a few existing items.
		uid := ids.NextNode()
		if err := g.AddNode(graph.NewNode(uid, "user")); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			l := graph.NewLink(ids.NextLink(), uid, graph.NodeID(201+(s*3+k)%100), "act", "tag")
			if err := g.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Save(g, nil, Meta{Version: uint64(s + 2), WalLSN: uint64(20 + s)}); err != nil {
			t.Fatal(err)
		}
		deltaTotal += ckptSize(t, fsys, "ck", ckptName(uint64(s+2)))
	}
	avgDelta := deltaTotal / steps
	if avgDelta*4 >= fullSize {
		t.Fatalf("delta checkpoints not measurably smaller: avg delta %dB vs full %dB", avgDelta, fullSize)
	}
	t.Logf("full checkpoint %dB, average delta %dB (%.1f%%)",
		fullSize, avgDelta, 100*float64(avgDelta)/float64(fullSize))

	// And the chain still recovers the exact graph.
	rec, err := LoadLatest(fsys, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Graph.Equal(g) {
		t.Fatal("recovered graph differs")
	}
	if rec.Meta.Version != steps+1 || rec.Meta.WalLSN != 20+steps-1 {
		t.Fatalf("recovered meta %+v", rec.Meta)
	}
}

func TestCheckpointChainResetAndRetention(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	g := bigGraph(t, 20, 10)
	c := NewCheckpointer(fsys, "ck", 3, 0)
	ids := graph.IDSourceFor(g)
	for v := uint64(1); v <= 8; v++ {
		if err := g.AddNode(graph.NewNode(ids.NextNode(), "user")); err != nil {
			t.Fatal(err)
		}
		if err := c.Save(g, nil, Meta{Version: v, WalLSN: v * 10}); err != nil {
			t.Fatal(err)
		}
		// Chains cap at 3: at most 3 checkpoint files + MANIFEST survive.
		files, err := CkptFiles(fsys, "ck")
		if err != nil {
			t.Fatal(err)
		}
		if len(files) > 4 {
			t.Fatalf("after save %d: retention failed, %d files: %v", v, len(files), files)
		}
		rec, err := LoadLatest(fsys, "ck")
		if err != nil {
			t.Fatalf("load after save %d: %v", v, err)
		}
		if !rec.Graph.Equal(g) || rec.Meta.Version != v {
			t.Fatalf("recovery after save %d diverged", v)
		}
	}
}

func TestCheckpointAfterRestartStartsFullChain(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	g := bigGraph(t, 30, 15)
	c := NewCheckpointer(fsys, "ck", 8, 0)
	if err := c.Save(g, nil, Meta{Version: 1, WalLSN: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(g, nil, Meta{Version: 2, WalLSN: 2}); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover, then continue with a fresh checkpointer seeded
	// with the recovered sequence number.
	rec, err := LoadLatest(fsys, "ck")
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCheckpointer(fsys, "ck", 8, rec.Seq)
	if err := c2.Save(rec.Graph, nil, Meta{Version: 3, WalLSN: 3}); err != nil {
		t.Fatal(err)
	}
	rec2, err := LoadLatest(fsys, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if len(chainOf(t, fsys)) != 1 {
		t.Fatalf("post-restart chain: %v", chainOf(t, fsys))
	}
	if !rec2.Graph.Equal(g) || rec2.Meta.Version != 3 {
		t.Fatalf("post-restart recovery: version %d", rec2.Meta.Version)
	}
}

func chainOf(t *testing.T, fsys vfs.FS) []string {
	t.Helper()
	rec, err := LoadLatest(fsys, "ck")
	if err != nil || rec == nil {
		t.Fatalf("load: %v", err)
	}
	// Re-read the raw manifest for its chain.
	data, err := vfs.ReadFile(fsys, "ck/MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	return man.Chain
}

func TestCheckpointCrashBetweenFileAndManifest(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	g := bigGraph(t, 20, 10)
	c := NewCheckpointer(fsys, "ck", 8, 0)
	if err := c.Save(g, nil, Meta{Version: 1, WalLSN: 5}); err != nil {
		t.Fatal(err)
	}
	before := g.ShallowClone()
	ids := graph.IDSourceFor(g)
	if err := g.AddNode(graph.NewNode(ids.NextNode(), "user")); err != nil {
		t.Fatal(err)
	}
	// Enumerate every crash point inside the second save: whatever the
	// point, recovery must yield either the old or the new checkpoint —
	// never an error, never a hybrid.
	probe := NewCheckpointer(fsys, "ck", 8, 1)
	opsBefore := fsys.Ops()
	if err := probe.Save(g, nil, Meta{Version: 2, WalLSN: 9}); err != nil {
		t.Fatal(err)
	}
	opsDuring := fsys.Ops() - opsBefore
	for cp := int64(0); cp <= opsDuring; cp++ {
		fs2 := vfs.NewFaultFS(vfs.DropUnsynced)
		c2 := NewCheckpointer(fs2, "ck", 8, 0)
		if err := c2.Save(before, nil, Meta{Version: 1, WalLSN: 5}); err != nil {
			t.Fatal(err)
		}
		c3 := NewCheckpointer(fs2, "ck", 8, 1)
		fs2.SetCrashAtOp(fs2.Ops() + cp)
		err := c3.Save(g, nil, Meta{Version: 2, WalLSN: 9})
		crashed := fs2.Crashed()
		fs2.Recover()
		rec, lerr := LoadLatest(fs2, "ck")
		if lerr != nil {
			t.Fatalf("crash point %d: recovery error: %v", cp, lerr)
		}
		switch rec.Meta.Version {
		case 1:
			if !rec.Graph.Equal(before) {
				t.Fatalf("crash point %d: version 1 graph differs", cp)
			}
		case 2:
			if !rec.Graph.Equal(g) {
				t.Fatalf("crash point %d: version 2 graph differs", cp)
			}
		default:
			t.Fatalf("crash point %d: version %d", cp, rec.Meta.Version)
		}
		if err == nil && !crashed && rec.Meta.Version != 2 {
			t.Fatalf("crash point %d: save acked but old manifest served", cp)
		}
	}
}

// TestCheckpointCarriesAnalyzedGraph covers the two-section format: an
// analyzed (enriched) graph rides along with the base graph, both as
// deltas, and recovery returns both exactly.
func TestCheckpointCarriesAnalyzedGraph(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	g := bigGraph(t, 30, 15)
	c := NewCheckpointer(fsys, "ck", 8, 0)

	// Not yet analyzed: no analyzed section.
	if err := c.Save(g, nil, Meta{Version: 1, WalLSN: 1}); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadLatest(fsys, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Analyzed != nil || rec.Meta.Analyzed {
		t.Fatal("unanalyzed checkpoint reported an analyzed graph")
	}

	// "Analyze": the enriched graph is a divergent copy of the base.
	an := g.ShallowClone()
	ids := graph.IDSourceFor(an)
	topic := graph.NewNode(ids.NextNode(), "topic")
	topic.Attrs.Add("name", "beaches")
	if err := an.AddNode(topic); err != nil {
		t.Fatal(err)
	}
	if err := an.AddLink(graph.NewLink(ids.NextLink(), 31, topic.ID, "assoc", "about")); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(g, an, Meta{Version: 2, WalLSN: 2}); err != nil {
		t.Fatal(err)
	}

	// Both lineages then evolve; deltas must track each independently.
	// (Allocate past the analyzed graph's marks, as the engine does.)
	nid := an.MaxNodeID() + 1
	if err := g.AddNode(graph.NewNode(nid, "user")); err != nil {
		t.Fatal(err)
	}
	an = an.ShallowClone()
	if err := an.AddNode(graph.NewNode(nid, "user")); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(g, an, Meta{Version: 3, WalLSN: 3}); err != nil {
		t.Fatal(err)
	}

	rec, err = LoadLatest(fsys, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Graph.Equal(g) {
		t.Fatal("recovered base graph differs")
	}
	if rec.Analyzed == nil || !rec.Analyzed.Equal(an) {
		t.Fatal("recovered analyzed graph differs")
	}
	if rec.Meta.Version != 3 || !rec.Meta.Analyzed {
		t.Fatalf("recovered meta %+v", rec.Meta)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	rec, err := LoadLatest(fsys, "nothing-here")
	if err != nil || rec != nil {
		t.Fatalf("empty dir: rec=%v err=%v", rec, err)
	}
}

func TestLoadLatestRejectsTamperedFile(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	g := bigGraph(t, 10, 5)
	c := NewCheckpointer(fsys, "ck", 8, 0)
	if err := c.Save(g, nil, Meta{Version: 1, WalLSN: 1}); err != nil {
		t.Fatal(err)
	}
	name := "ck/" + ckptName(1)
	raw := fsys.Bytes(name)
	raw[len(raw)/2] ^= 0x01
	if err := fsys.Truncate(name, 0); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadLatest(fsys, "ck"); !errors.Is(err, ErrCkptCorrupt) {
		t.Fatalf("tampered file: %v", err)
	}
}
