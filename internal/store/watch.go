package store

// Manifest watching: the follower-side signal that the leader published
// a new checkpoint chain. Manifest replacement is atomic (tmp + fsync +
// rename), so a poll reads either the previous manifest or the new one,
// never a torn mix — no locking is needed across processes.

import (
	"encoding/json"
	"fmt"
	"path"

	"socialscope/internal/vfs"
)

// LoadManifest reads and decodes dir's MANIFEST without folding the
// checkpoint chain it names. It returns (nil, nil) when the directory
// holds no manifest yet.
func LoadManifest(fsys vfs.FS, dir string) (*Manifest, error) {
	data, err := vfs.ReadFile(fsys, path.Join(dir, manifestName))
	if vfs.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCkptCorrupt, err)
	}
	if len(man.Chain) == 0 {
		return nil, fmt.Errorf("%w: manifest names no files", ErrCkptCorrupt)
	}
	return &man, nil
}

// Watcher polls a checkpoint directory for manifest advances. A
// follower uses it to notice new checkpoint chains: new WAL-truncation
// watermarks to confirm tail records against, and — after falling
// behind a truncation — a chain to re-base onto instead of replaying an
// unbounded tail.
type Watcher struct {
	fsys vfs.FS
	dir  string
	seq  uint64
}

// NewWatcher returns a watcher that reports manifests whose Seq moved
// past lastSeq (the manifest the caller already folded; 0 for none).
func NewWatcher(fsys vfs.FS, dir string, lastSeq uint64) *Watcher {
	return &Watcher{fsys: fsys, dir: dir, seq: lastSeq}
}

// Poll reads the current manifest and reports whether it advanced since
// the last change Poll reported. The manifest is returned even when
// unchanged (nil only when none exists yet).
func (w *Watcher) Poll() (*Manifest, bool, error) {
	man, err := LoadManifest(w.fsys, w.dir)
	if err != nil || man == nil {
		return nil, false, err
	}
	if man.Seq == w.seq {
		return man, false, nil
	}
	w.seq = man.Seq
	return man, true, nil
}
