package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"socialscope/internal/graph"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPutNode(t *testing.T, s *Store, id graph.NodeID, types ...string) {
	t.Helper()
	n := graph.NewNode(id, types...)
	n.Attrs.Set("name", "n")
	if err := s.PutNode(n); err != nil {
		t.Fatal(err)
	}
}

func mustPutLink(t *testing.T, s *Store, id graph.LinkID, src, tgt graph.NodeID) {
	t.Helper()
	if err := s.PutLink(graph.NewLink(id, src, tgt, graph.TypeConnect)); err != nil {
		t.Fatal(err)
	}
}

func TestBasicDurability(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustPutNode(t, s, 1, graph.TypeUser)
	mustPutNode(t, s, 2, graph.TypeItem)
	mustPutLink(t, s, 1, 1, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything replayed from the WAL.
	s2 := openStore(t, dir)
	defer s2.Close()
	var nodes, links int
	if err := s2.View(func(g *graph.Graph) {
		nodes, links = g.NumNodes(), g.NumLinks()
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if nodes != 2 || links != 1 {
		t.Errorf("recovered %d nodes %d links", nodes, links)
	}
	if s2.PendingRecords() != 3 {
		t.Errorf("pending = %d, want 3", s2.PendingRecords())
	}
}

func TestSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustPutNode(t, s, 1, graph.TypeUser)
	mustPutNode(t, s, 2, graph.TypeUser)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if s.PendingRecords() != 0 {
		t.Error("snapshot did not reset pending count")
	}
	mustPutLink(t, s, 1, 1, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// WAL holds only the post-snapshot record.
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 1 {
		t.Errorf("wal records after snapshot = %d, want 1", got)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	if err := s2.View(func(g *graph.Graph) {
		if g.NumNodes() != 2 || g.NumLinks() != 1 {
			t.Errorf("recovered graph = %v", g)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustPutNode(t, s, 1, graph.TypeUser)
	mustPutNode(t, s, 2, graph.TypeUser)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage tail without newline.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"putnode","node":{"id":3`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	if err := s2.View(func(g *graph.Graph) {
		if g.NumNodes() != 2 {
			t.Errorf("recovered %d nodes, want 2 (torn record dropped)", g.NumNodes())
		}
	}); err != nil {
		t.Fatal(err)
	}
	// The torn bytes were truncated away; new appends work.
	mustPutNode(t, s2, 3, graph.TypeUser)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir)
	defer s3.Close()
	if err := s3.View(func(g *graph.Graph) {
		if g.NumNodes() != 3 {
			t.Errorf("after repair: %d nodes, want 3", g.NumNodes())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMidStreamCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustPutNode(t, s, 1, graph.TypeUser)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	good, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt record with a valid record after it: not a crash signature.
	bad := append([]byte("{garbage}\n"), good...)
	if err := os.WriteFile(walPath, append(append([]byte{}, good...), bad...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("mid-stream corruption accepted")
	}
}

func TestRemoveOps(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustPutNode(t, s, 1, graph.TypeUser)
	mustPutNode(t, s, 2, graph.TypeUser)
	mustPutLink(t, s, 1, 1, 2)
	if err := s.RemoveLink(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	if err := s2.View(func(g *graph.Graph) {
		if g.NumNodes() != 1 || g.NumLinks() != 0 {
			t.Errorf("after removes: %v", g)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPutLinkValidatesEndpoints(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.PutLink(graph.NewLink(1, 1, 2, graph.TypeConnect)); !errors.Is(err, graph.ErrMissingEnd) {
		t.Errorf("dangling link error = %v", err)
	}
	if err := s.PutNode(nil); !errors.Is(err, graph.ErrNilElement) {
		t.Errorf("nil node error = %v", err)
	}
	if err := s.PutLink(nil); !errors.Is(err, graph.ErrNilElement) {
		t.Errorf("nil link error = %v", err)
	}
}

func TestClosedStore(t *testing.T) {
	s := openStore(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Error("double close should be nil")
	}
	if err := s.PutNode(graph.NewNode(1, graph.TypeUser)); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close = %v", err)
	}
	if err := s.View(func(*graph.Graph) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("view after close = %v", err)
	}
	if _, err := s.Graph(); !errors.Is(err, ErrClosed) {
		t.Errorf("graph after close = %v", err)
	}
	if err := s.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("snapshot after close = %v", err)
	}
}

func TestGraphReturnsIsolatedCopy(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustPutNode(t, s, 1, graph.TypeUser)
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g.Node(1).Attrs.Set("name", "mutated")
	if err := s.View(func(live *graph.Graph) {
		if live.Node(1).Attrs.Get("name") == "mutated" {
			t.Error("Graph() aliases live state")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	mustPutNode(t, s, 1, graph.TypeUser)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := graph.NodeID(100 + w*100 + i)
				n := graph.NewNode(id, graph.TypeUser)
				if err := s.PutNode(n); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.View(func(g *graph.Graph) { _ = g.NumNodes() }); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.View(func(g *graph.Graph) {
		if g.NumNodes() != 101 {
			t.Errorf("nodes = %d, want 101", g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSurvivesReopenCycle(t *testing.T) {
	dir := t.TempDir()
	for cycle := 0; cycle < 3; cycle++ {
		s := openStore(t, dir)
		mustPutNode(t, s, graph.NodeID(cycle+1), graph.TypeUser)
		if cycle%2 == 0 {
			if err := s.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s := openStore(t, dir)
	defer s.Close()
	if err := s.View(func(g *graph.Graph) {
		if g.NumNodes() != 3 {
			t.Errorf("after cycles: %d nodes, want 3", g.NumNodes())
		}
	}); err != nil {
		t.Fatal(err)
	}
}
