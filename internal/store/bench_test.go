package store

import (
	"testing"

	"socialscope/internal/graph"
)

func BenchmarkPutNode(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutNode(graph.NewNode(graph.NodeID(i+1), graph.TypeUser)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		if err := s.PutNode(graph.NewNode(graph.NodeID(i+1), graph.TypeUser)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := s.PutNode(graph.NewNode(graph.NodeID(i+1), graph.TypeUser)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if err := s2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
