package store

import (
	"errors"
	"testing"

	"socialscope/internal/graph"
	"socialscope/internal/vfs"
)

// These tests pin the behavior changes from moving the legacy JSON
// store onto vfs.FS: acknowledged appends are fsynced (they survive a
// DropUnsynced crash), a failed fsync is a failed write (no false
// acks), and the snapshot+truncate compaction is crash-atomic at every
// filesystem-op boundary — all invisible to the harness while the
// store did raw os.* IO.

func openFaultStore(t *testing.T, fsys vfs.FS) *Store {
	t.Helper()
	s, err := OpenFS(fsys, "db")
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	return s
}

// TestAppendAckDurableUnderDropUnsynced: before the port, append
// flushed the bufio layer but never fsynced, so a crash that drops the
// page cache lost writes the caller had been told were durable.
func TestAppendAckDurableUnderDropUnsynced(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.DropUnsynced)
	s := openFaultStore(t, fs)
	if err := s.PutNode(graph.NewNode(1, "user")); err != nil {
		t.Fatalf("PutNode: %v", err)
	}

	// Crash before any further op: everything merely written — not
	// synced — is gone after recovery.
	fs.SetCrashAtOp(fs.Ops())
	if err := s.PutNode(graph.NewNode(2, "user")); err == nil {
		t.Fatal("PutNode after crash point should fail")
	}
	fs.Recover()

	s2 := openFaultStore(t, fs)
	g, err := s2.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if !g.HasNode(1) {
		t.Fatal("acknowledged node 1 lost in crash: append did not fsync before ack")
	}
	if g.HasNode(2) {
		t.Fatal("unacknowledged node 2 resurrected")
	}
}

// TestAppendSyncFailureNotAcked: a transient fsync failure must surface
// as a failed write, not a silent ack.
func TestAppendSyncFailureNotAcked(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.DropUnsynced)
	s := openFaultStore(t, fs)
	if err := s.PutNode(graph.NewNode(1, "user")); err != nil {
		t.Fatalf("PutNode: %v", err)
	}

	// The record is small: one write chunk per 7 bytes, then exactly one
	// Sync. Arm a transient failure for every upcoming op in turn until
	// the Sync is the victim; the write must fail whenever it is.
	start := fs.Ops()
	var failed error
	for n := start; n < start+64; n++ {
		fs.FailAtOp(n)
		err := s.PutNode(graph.NewNode(graph.NodeID(100+n), "user"))
		if err != nil {
			failed = err
			break
		}
	}
	if failed == nil {
		t.Fatal("no op of an append could be made to fail — fault plumbing broken")
	}
	if !errors.Is(failed, vfs.ErrInjected) {
		t.Fatalf("append failure should carry the injected fault, got %v", failed)
	}
}

// TestSnapshotCrashEveryOp drives the full compaction — tmp write,
// sync, close, rename, WAL truncate — with a crash at every op
// boundary under both loss modes. Whatever the crash point, reopening
// must yield exactly the pre-snapshot graph: the snapshot either fully
// replaced the old state or never happened, and the WAL only shrank if
// the snapshot covers it.
func TestSnapshotCrashEveryOp(t *testing.T) {
	for _, mode := range []vfs.LossMode{vfs.DropUnsynced, vfs.KeepUnsynced} {
		for crash := int64(0); ; crash++ {
			fs := vfs.NewFaultFS(mode)
			s := openFaultStore(t, fs)
			mustSeed(t, s)
			want, err := s.Graph()
			if err != nil {
				t.Fatalf("Graph: %v", err)
			}

			base := fs.Ops()
			fs.SetCrashAtOp(base + crash)
			snapErr := s.Snapshot()
			if !fs.Crashed() {
				// The whole snapshot completed before the crash point:
				// the op space is exhausted, this mode is done.
				if snapErr != nil {
					t.Fatalf("mode %v: clean snapshot failed: %v", mode, snapErr)
				}
				break
			}
			if snapErr == nil {
				t.Fatalf("mode %v crash@+%d: snapshot acked despite crash", mode, crash)
			}
			fs.Recover()

			s2, err := OpenFS(fs, "db")
			if err != nil {
				t.Fatalf("mode %v crash@+%d: reopen: %v", mode, crash, err)
			}
			got, err := s2.Graph()
			if err != nil {
				t.Fatalf("Graph: %v", err)
			}
			if !got.Equal(want) {
				t.Fatalf("mode %v crash@+%d: recovered graph differs from pre-snapshot state", mode, crash)
			}
		}
	}
}

// TestCloseSurfacesSyncError: Close now syncs the WAL on the way out
// and reports the failure instead of swallowing it.
func TestCloseSurfacesSyncError(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.DropUnsynced)
	s := openFaultStore(t, fs)
	if err := s.PutNode(graph.NewNode(1, "user")); err != nil {
		t.Fatalf("PutNode: %v", err)
	}

	// Close performs exactly Sync then Close on the WAL handle: two ops.
	// Fail the first — the Sync — and the error must come back.
	fs.FailAtOp(fs.Ops())
	if err := s.Close(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Close should surface the WAL sync failure, got %v", err)
	}
}

func mustSeed(t *testing.T, s *Store) {
	t.Helper()
	for i := graph.NodeID(1); i <= 4; i++ {
		if err := s.PutNode(graph.NewNode(i, "user")); err != nil {
			t.Fatalf("PutNode %d: %v", i, err)
		}
	}
	if err := s.PutLink(graph.NewLink(1, 1, 2, "connect")); err != nil {
		t.Fatalf("PutLink: %v", err)
	}
	if err := s.RemoveNode(4); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
}
