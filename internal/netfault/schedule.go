package netfault

import (
	"math/rand"
	"time"
)

// ScheduleConfig shapes a randomized fault schedule. Probabilities are
// per-op and independent; what remains is KindNone. The zero value is
// all-clear (no faults).
type ScheduleConfig struct {
	// Horizon is how many ops the schedule covers (faults are drawn for
	// op indices [0, Horizon)).
	Horizon int64
	// PFail, PReset, PDelay, PBlackhole, PPartial weight the fault kinds;
	// their sum must be <= 1.
	PFail, PReset, PDelay, PBlackhole, PPartial float64
	// MaxDelay bounds drawn delays (uniform in (0, MaxDelay]; default
	// 10ms).
	MaxDelay time.Duration
	// MaxBodyBytes bounds partial-body allowances (uniform in
	// [0, MaxBodyBytes]; default 64).
	MaxBodyBytes int
}

// Schedule is a deterministic assignment of faults to op indices on one
// backend, drawn from a seed. Two schedules with the same seed and
// config are identical, so a failing chaos run replays from its seed.
type Schedule struct {
	Seed   int64
	Faults map[int64]Fault
}

// NewSchedule draws a schedule from seed. The generator consumes a
// fixed number of random values per op regardless of outcome, so
// adding ops to the horizon never perturbs earlier assignments.
func NewSchedule(seed int64, cfg ScheduleConfig) *Schedule {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Faults: make(map[int64]Fault)}
	for op := int64(0); op < cfg.Horizon; op++ {
		// Fixed draw count per op: one kind selector, one delay, one size.
		u := rng.Float64()
		delay := time.Duration(1 + rng.Int63n(int64(cfg.MaxDelay)))
		size := rng.Intn(cfg.MaxBodyBytes + 1)
		var f Fault
		switch {
		case u < cfg.PFail:
			f = Fault{Kind: KindFail}
		case u < cfg.PFail+cfg.PReset:
			f = Fault{Kind: KindReset}
		case u < cfg.PFail+cfg.PReset+cfg.PDelay:
			f = Fault{Kind: KindDelay, Delay: delay}
		case u < cfg.PFail+cfg.PReset+cfg.PDelay+cfg.PBlackhole:
			f = Fault{Kind: KindBlackhole}
		case u < cfg.PFail+cfg.PReset+cfg.PDelay+cfg.PBlackhole+cfg.PPartial:
			f = Fault{Kind: KindPartial, BodyBytes: size}
		default:
			continue
		}
		s.Faults[op] = f
	}
	return s
}

// Arm installs the schedule's faults on backend.
func (s *Schedule) Arm(t *Transport, backend string) {
	for op, f := range s.Faults {
		t.SetAt(backend, op, f)
	}
}

// Count returns how many ops carry a fault.
func (s *Schedule) Count() int { return len(s.Faults) }
