// Package netfault is the network sibling of internal/vfs.FaultFS: a
// deterministic fault injector for HTTP transports. FaultTransport
// wraps an http.RoundTripper and makes every request to a backend one
// numbered "op" on that backend's own counter; faults are armed at op
// indices — fail, reset, delay, black-hole, serve-partial-body — or a
// whole backend is partitioned away, so every network failure mode a
// routing tier must survive is reproducible in-process, without
// listeners, timeouts tuned to real clocks, or packet filters.
//
// The idiom mirrors FaultFS deliberately: per-backend op counting gives
// a finite, enumerable fault-point space; a seedable Schedule draws a
// randomized-but-deterministic fault assignment over that space, so a
// chaos run that found a bug is re-runnable from its seed alone.
// Determinism holds when the driver is deterministic (sequential
// requests per backend); under concurrency the schedule stays valid but
// op→request assignment follows goroutine interleaving, which is
// exactly FaultFS's contract too.
package netfault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Injected fault errors. They satisfy errors.Is so routing layers can
// classify without string matching; all of them wrap ErrInjected.
var (
	// ErrInjected is the root of every netfault-produced error.
	ErrInjected = errors.New("netfault: injected fault")
	// ErrReset models a connection reset by peer mid-exchange: the
	// request may or may not have reached the backend.
	ErrReset = fmt.Errorf("%w: connection reset by peer", ErrInjected)
	// ErrRefused models a connection refused: the request never reached
	// the backend (safe to retry even for writes).
	ErrRefused = fmt.Errorf("%w: connection refused", ErrInjected)
)

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// KindNone injects nothing (schedule filler).
	KindNone Kind = iota
	// KindFail fails the request before it is sent (connection refused).
	KindFail
	// KindReset forwards the request, discards the response, and returns
	// a reset error — the backend did the work, the caller never learns.
	KindReset
	// KindDelay holds the request for Delay before forwarding (bounded
	// by the request context: an expired context returns its error).
	KindDelay
	// KindBlackhole never answers: the call blocks until the request
	// context is done and returns its error. This is the op-scoped
	// sibling of Partition.
	KindBlackhole
	// KindPartial forwards the request but truncates the response body
	// after BodyBytes bytes, erroring the read mid-stream — the torn
	// tail of the network world.
	KindPartial
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindFail:
		return "fail"
	case KindReset:
		return "reset"
	case KindDelay:
		return "delay"
	case KindBlackhole:
		return "blackhole"
	case KindPartial:
		return "partial"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one armed failure.
type Fault struct {
	Kind Kind
	// Delay is the hold time for KindDelay.
	Delay time.Duration
	// BodyBytes is how much of the response body KindPartial lets
	// through before tearing the stream.
	BodyBytes int
}

// backendState is the per-backend fault ledger, keyed by URL host.
type backendState struct {
	ops         int64
	faults      map[int64]Fault // op index -> fault
	partitioned bool
	refused     bool
}

// Transport is the deterministic fault-injecting RoundTripper. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Transport struct {
	inner http.RoundTripper

	mu       sync.Mutex
	backends map[string]*backendState
}

// New wraps inner (nil means http.DefaultTransport) with fault
// injection. With no faults armed it is a transparent proxy.
func New(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, backends: make(map[string]*backendState)}
}

func (t *Transport) state(backend string) *backendState {
	b, ok := t.backends[backend]
	if !ok {
		b = &backendState{faults: make(map[int64]Fault)}
		t.backends[backend] = b
	}
	return b
}

// SetAt arms fault f at op index op on backend (a URL host, e.g.
// "127.0.0.1:8385"). Later SetAt calls on the same index overwrite.
func (t *Transport) SetAt(backend string, op int64, f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(backend).faults[op] = f
}

// FailAt arms a connection-refused failure at op index op.
func (t *Transport) FailAt(backend string, op int64) {
	t.SetAt(backend, op, Fault{Kind: KindFail})
}

// ResetAt arms a connection reset at op index op.
func (t *Transport) ResetAt(backend string, op int64) {
	t.SetAt(backend, op, Fault{Kind: KindReset})
}

// DelayAt arms a hold of d at op index op.
func (t *Transport) DelayAt(backend string, op int64, d time.Duration) {
	t.SetAt(backend, op, Fault{Kind: KindDelay, Delay: d})
}

// BlackholeAt arms a never-answers at op index op.
func (t *Transport) BlackholeAt(backend string, op int64) {
	t.SetAt(backend, op, Fault{Kind: KindBlackhole})
}

// PartialAt arms a body truncation after n bytes at op index op.
func (t *Transport) PartialAt(backend string, op int64, n int) {
	t.SetAt(backend, op, Fault{Kind: KindPartial, BodyBytes: n})
}

// Partition drops the backend off the network: every request black-holes
// until the context expires, like a switch that ate the route. Heal
// reverses it.
func (t *Transport) Partition(backend string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(backend).partitioned = true
}

// Refuse makes the backend refuse connections immediately (a dead
// process with a live machine: kill -9 leaves this). Heal reverses it.
func (t *Transport) Refuse(backend string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(backend).refused = true
}

// Heal reconnects a partitioned or refusing backend. Armed per-op
// faults stay armed.
func (t *Transport) Heal(backend string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.state(backend)
	b.partitioned = false
	b.refused = false
}

// Ops returns the per-backend op counter — the fault-point space a
// chaos schedule enumerates.
func (t *Transport) Ops(backend string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state(backend).ops
}

// RoundTrip implements http.RoundTripper: consume one op on the
// request's backend, apply whatever is armed there, and otherwise
// forward to the inner transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	backend := req.URL.Host
	t.mu.Lock()
	b := t.state(backend)
	op := b.ops
	b.ops++
	fault := b.faults[op]
	partitioned, refused := b.partitioned, b.refused
	t.mu.Unlock()

	switch {
	case refused:
		return nil, &faultErr{backend, op, ErrRefused}
	case partitioned:
		<-req.Context().Done()
		return nil, &faultErr{backend, op, fmt.Errorf("%w: partitioned: %w", ErrInjected, req.Context().Err())}
	}

	switch fault.Kind {
	case KindNone:
		return t.inner.RoundTrip(req)
	case KindFail:
		return nil, &faultErr{backend, op, ErrRefused}
	case KindReset:
		resp, err := t.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, &faultErr{backend, op, ErrReset}
	case KindDelay:
		timer := time.NewTimer(fault.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, &faultErr{backend, op, fmt.Errorf("%w: delayed past deadline: %w", ErrInjected, req.Context().Err())}
		}
		return t.inner.RoundTrip(req)
	case KindBlackhole:
		<-req.Context().Done()
		return nil, &faultErr{backend, op, fmt.Errorf("%w: black-holed: %w", ErrInjected, req.Context().Err())}
	case KindPartial:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{inner: resp.Body, remain: fault.BodyBytes,
			err: &faultErr{backend, op, fmt.Errorf("%w: body truncated after %d bytes: %w",
				ErrInjected, fault.BodyBytes, io.ErrUnexpectedEOF)}}
		return resp, nil
	default:
		return nil, &faultErr{backend, op, fmt.Errorf("%w: unknown fault kind %v", ErrInjected, fault.Kind)}
	}
}

// faultErr carries the backend and op index for diagnosability; a chaos
// failure names the exact injection point that triggered it.
type faultErr struct {
	backend string
	op      int64
	err     error
}

func (e *faultErr) Error() string {
	return fmt.Sprintf("%v (backend %s op %d)", e.err, e.backend, e.op)
}

func (e *faultErr) Unwrap() error { return e.err }

// truncatedBody lets remain bytes through, then fails the read and
// swallows the rest — the caller sees a mid-stream connection tear, not
// a clean EOF (which would look like a complete short response).
type truncatedBody struct {
	inner  io.ReadCloser
	remain int
	err    error
	done   bool
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.done || b.remain <= 0 {
		b.done = true
		return 0, b.err
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The real body ended inside the allowance: pass the clean EOF.
		return n, err
	}
	if b.remain <= 0 {
		b.done = true
		if err == nil {
			err = b.err
		}
	}
	return n, err
}

func (b *truncatedBody) Close() error {
	io.Copy(io.Discard, b.inner)
	return b.inner.Close()
}

// Err reports whether err (anywhere in its chain) was injected by a
// Transport.
func Err(err error) bool { return errors.Is(err, ErrInjected) }

// Sent reports whether the request may have reached the backend. Only a
// refused connection provably never went out, so only ErrRefused makes
// even non-idempotent requests safe to retry; everything else — resets,
// black holes, partitions that time out — answers true, because the
// backend may have done the work.
func Sent(err error) bool {
	if errors.Is(err, ErrRefused) {
		return false
	}
	return true
}
