package netfault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend starts a trivial backend that answers with body and
// returns its host plus a client over a fresh fault transport.
func newBackend(t *testing.T, body string) (host string, ft *Transport, client *http.Client, url string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	ft = New(nil)
	return srv.Listener.Addr().String(), ft, &http.Client{Transport: ft}, srv.URL
}

func get(t *testing.T, client *http.Client, url string, timeout time.Duration) (string, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestTransparentWhenClean(t *testing.T) {
	_, _, client, url := newBackend(t, "hello")
	body, err := get(t, client, url, time.Second)
	if err != nil || body != "hello" {
		t.Fatalf("clean round trip: %q, %v", body, err)
	}
}

func TestFailAtOpExactIndex(t *testing.T) {
	host, ft, client, url := newBackend(t, "ok")
	ft.FailAt(host, 1)
	if _, err := get(t, client, url, time.Second); err != nil {
		t.Fatalf("op 0 should be clean: %v", err)
	}
	if _, err := get(t, client, url, time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("op 1 should refuse: %v", err)
	}
	if _, err := get(t, client, url, time.Second); err != nil {
		t.Fatalf("op 2 should be clean: %v", err)
	}
	if got := ft.Ops(host); got != 3 {
		t.Fatalf("ops = %d, want 3", got)
	}
}

func TestResetReachesBackendButCallerNeverLearns(t *testing.T) {
	reached := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached++
		io.WriteString(w, "did the work")
	}))
	defer srv.Close()
	ft := New(nil)
	client := &http.Client{Transport: ft}
	host := srv.Listener.Addr().String()
	ft.ResetAt(host, 0)
	if _, err := get(t, client, srv.URL, time.Second); !errors.Is(err, ErrReset) {
		t.Fatalf("want reset, got %v", err)
	}
	if reached != 1 {
		t.Fatalf("reset must still deliver the request: backend saw %d", reached)
	}
	if Sent(&faultErr{err: ErrReset}) != true {
		t.Fatal("a reset request may have been sent; Sent must say so")
	}
	if Sent(&faultErr{err: ErrRefused}) != false {
		t.Fatal("a refused request was never sent")
	}
}

func TestDelayHonorsContextDeadline(t *testing.T) {
	host, ft, client, url := newBackend(t, "slow")
	ft.DelayAt(host, 0, 10*time.Second)
	start := time.Now()
	_, err := get(t, client, url, 30*time.Millisecond)
	if err == nil {
		t.Fatal("delayed past deadline should error")
	}
	if !Err(err) {
		t.Fatalf("delay timeout should be an injected error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay did not respect context: %v", elapsed)
	}
	// A short delay passes through.
	ft.DelayAt(host, 1, time.Millisecond)
	if body, err := get(t, client, url, time.Second); err != nil || body != "slow" {
		t.Fatalf("short delay: %q, %v", body, err)
	}
}

func TestBlackholeBlocksUntilContextDone(t *testing.T) {
	host, ft, client, url := newBackend(t, "x")
	ft.BlackholeAt(host, 0)
	if _, err := get(t, client, url, 20*time.Millisecond); err == nil || !Err(err) {
		t.Fatalf("black hole should time the request out with an injected error, got %v", err)
	}
}

func TestPartialBodyTearsMidStream(t *testing.T) {
	host, ft, client, url := newBackend(t, strings.Repeat("abcdefgh", 16)) // 128 bytes
	ft.PartialAt(host, 0, 10)
	body, err := get(t, client, url, time.Second)
	if err == nil {
		t.Fatalf("truncated body should error the read, got %d clean bytes", len(body))
	}
	if len(body) > 10 {
		t.Fatalf("let %d bytes through, allowance was 10", len(body))
	}
	// A body shorter than the allowance ends cleanly.
	ft.PartialAt(host, 1, 1<<20)
	if body, err := get(t, client, url, time.Second); err != nil || len(body) != 128 {
		t.Fatalf("allowance > body must pass cleanly: %d bytes, %v", len(body), err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	host, ft, client, url := newBackend(t, "up")
	ft.Partition(host)
	if _, err := get(t, client, url, 20*time.Millisecond); err == nil || !Err(err) {
		t.Fatalf("partitioned backend should black-hole: %v", err)
	}
	ft.Heal(host)
	if body, err := get(t, client, url, time.Second); err != nil || body != "up" {
		t.Fatalf("healed backend: %q, %v", body, err)
	}
}

func TestRefuseFailsFast(t *testing.T) {
	host, ft, client, url := newBackend(t, "up")
	ft.Refuse(host)
	start := time.Now()
	_, err := get(t, client, url, 5*time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("refusing backend: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("refuse must fail fast, not wait for the deadline")
	}
}

func TestPerBackendCountersAreIndependent(t *testing.T) {
	hostA, ft, clientA, urlA := newBackend(t, "a")
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "b")
	}))
	defer srvB.Close()
	hostB := srvB.Listener.Addr().String()
	clientB := &http.Client{Transport: ft}

	ft.FailAt(hostB, 0)
	// Op 0 on A is clean even though op 0 on B is armed.
	if body, err := get(t, clientA, urlA, time.Second); err != nil || body != "a" {
		t.Fatalf("backend A op 0: %q, %v", body, err)
	}
	if _, err := get(t, clientB, srvB.URL, time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("backend B op 0 should refuse: %v", err)
	}
	if a, b := ft.Ops(hostA), ft.Ops(hostB); a != 1 || b != 1 {
		t.Fatalf("independent counters: a=%d b=%d, want 1,1", a, b)
	}
}

func TestScheduleDeterministicFromSeed(t *testing.T) {
	cfg := ScheduleConfig{
		Horizon: 500,
		PFail:   0.05, PReset: 0.05, PDelay: 0.1, PBlackhole: 0.02, PPartial: 0.05,
	}
	a := NewSchedule(42, cfg)
	b := NewSchedule(42, cfg)
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a.Faults), len(b.Faults))
	}
	for op, f := range a.Faults {
		if b.Faults[op] != f {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", op, f, b.Faults[op])
		}
	}
	if a.Count() == 0 {
		t.Fatal("schedule drew no faults at these probabilities")
	}
	c := NewSchedule(43, cfg)
	same := len(c.Faults) == len(a.Faults)
	if same {
		for op, f := range a.Faults {
			if c.Faults[op] != f {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleHorizonExtensionIsPrefixStable(t *testing.T) {
	cfg := ScheduleConfig{Horizon: 100, PFail: 0.2, PDelay: 0.2}
	long := cfg
	long.Horizon = 200
	a := NewSchedule(7, cfg)
	b := NewSchedule(7, long)
	for op, f := range a.Faults {
		if b.Faults[op] != f {
			t.Fatalf("extending the horizon perturbed op %d: %+v vs %+v", op, f, b.Faults[op])
		}
	}
}

func TestScheduleArm(t *testing.T) {
	host, ft, client, url := newBackend(t, "ok")
	s := &Schedule{Faults: map[int64]Fault{1: {Kind: KindFail}}}
	s.Arm(ft, host)
	if _, err := get(t, client, url, time.Second); err != nil {
		t.Fatalf("op 0: %v", err)
	}
	if _, err := get(t, client, url, time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("armed op 1 should refuse: %v", err)
	}
}
