package wal

import (
	"errors"
	"fmt"
	"testing"

	"socialscope/internal/vfs"
)

func pollAll(t *testing.T, tl *Tailer, confirm uint64) []rec {
	t.Helper()
	var got []rec
	_, err := tl.Poll(confirm, 0, func(lsn uint64, kind byte, payload []byte) error {
		got = append(got, rec{lsn, kind, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	return got
}

func TestTailerFollowsLiveAppends(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	tl := NewTailer(fsys, "w", 0)

	// Nothing exists yet: a poll is a quiet no-op.
	if got := pollAll(t, tl, 0); len(got) != 0 {
		t.Fatalf("poll on missing dir delivered %d records", len(got))
	}

	l, err := Open(fsys, "w", Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i := 1; i <= 10; i++ {
		payload := fmt.Sprintf("batch-%03d", i)
		if _, err := l.AppendSync(1, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec{uint64(i), 1, payload})

		got := pollAll(t, tl, 0)
		// The newest record has no bytes after it and no confirmation:
		// it must be withheld until the next append lands behind it.
		if len(got) != 1 && !(i == 1 && len(got) == 0) {
			t.Fatalf("append %d: delivered %d records, want the previous one", i, len(got))
		}
		if len(got) == 1 && got[0] != want[i-2] {
			t.Fatalf("append %d: got %+v, want %+v", i, got[0], want[i-2])
		}
	}
	if tl.NextLSN() != 10 {
		t.Fatalf("NextLSN=%d, want 10 (record 10 unconfirmed)", tl.NextLSN())
	}
	// An external confirmation (a checkpoint covering LSN 10) releases it.
	if got := pollAll(t, tl, 10); len(got) != 1 || got[0] != want[9] {
		t.Fatalf("confirmed poll: %+v", got)
	}
	if tl.NextLSN() != 11 {
		t.Fatalf("NextLSN=%d after confirmed poll", tl.NextLSN())
	}
}

func TestTailerPicksUpRotations(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(fsys, "w", 0)
	var got []rec
	for i := 1; i <= 30; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
		got = append(got, pollAll(t, tl, 0)...)
	}
	if len(l.segs) < 3 {
		t.Fatalf("expected rotations, got %d segments", len(l.segs))
	}
	// Everything but the final unconfirmed record arrived, in order.
	if len(got) != 29 {
		t.Fatalf("delivered %d records, want 29", len(got))
	}
	for i, r := range got {
		if r.lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.lsn)
		}
	}
	// A cold tailer starting from the middle sees the same suffix.
	tl2 := NewTailer(fsys, "w", 16)
	mid := pollAll(t, tl2, 0)
	if len(mid) != 14 || mid[0].lsn != 16 || mid[13].lsn != 29 {
		t.Fatalf("cold tail from 16: len=%d", len(mid))
	}
}

func TestTailerWithholdsUnackedRecordUntilSafe(t *testing.T) {
	// The divergence hazard: a record whose fsync failed sits complete at
	// the tail, and the leader later truncates and rewrites the same LSN
	// with a different payload. A follower that replayed the first
	// incarnation would fork history.
	fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
	fsys.SetWriteChunk(1 << 20)
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(fsys, "w", 0)
	if _, err := l.AppendSync(1, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	fsys.FailSyncAtOp(fsys.Ops() + 1)
	if _, err := l.AppendSync(1, []byte("retracted")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// The unacked record is complete on disk — and must not be delivered:
	// record 1 is confirmed by the bytes behind it, record 2 by nothing.
	got := pollAll(t, tl, 0)
	if len(got) != 1 || got[0].payload != "acked" {
		t.Fatalf("poll over unacked tail: %+v", got)
	}
	// The leader heals and writes a different record 2.
	if _, err := l.AppendSync(1, []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("third")); err != nil {
		t.Fatal(err)
	}
	got = pollAll(t, tl, 0)
	if len(got) != 1 || got[0] != (rec{2, 1, "replacement"}) {
		t.Fatalf("after heal: %+v", got)
	}
}

func TestTailerDrainDeliversUnackedTail(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
	fsys.SetWriteChunk(1 << 20)
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	fsys.FailSyncAtOp(fsys.Ops() + 1)
	if _, err := l.AppendSync(1, []byte("unacked")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// Leader dies here. Promotion drains: the complete-but-unacked record
	// is exactly what crash recovery would replay, so it arrives.
	tl := NewTailer(fsys, "w", 0)
	got := pollAll(t, tl, DrainConfirm)
	if len(got) != 2 || got[1] != (rec{2, 1, "unacked"}) {
		t.Fatalf("drain: %+v", got)
	}
	if tl.NextLSN() != 3 {
		t.Fatalf("NextLSN after drain: %d", tl.NextLSN())
	}
}

func TestTailerGoneAfterTruncation(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateThrough(l.segs[len(l.segs)-1].first - 1); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(fsys, "w", 1)
	if _, err := tl.Poll(0, 0, func(uint64, byte, []byte) error { return nil }); !errors.Is(err, ErrGone) {
		t.Fatalf("want ErrGone, got %v", err)
	}
	// A tailer positioned inside the surviving suffix is unaffected.
	tl2 := NewTailer(fsys, "w", l.segs[0].first)
	if got := pollAll(t, tl2, 0); len(got) == 0 || got[len(got)-1].lsn != 29 {
		t.Fatalf("tail of surviving suffix: %d records", len(got))
	}
}

func TestTailerTornTailCompletesAcrossPolls(t *testing.T) {
	// A torn write at the tail must park the tailer, not corrupt it, and
	// the same poll position must pick the record up once it completes.
	fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
	fsys.SetWriteChunk(3)
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(fsys, "w", 0)

	// Crash the leader mid-write: a few chunks of record 2 land.
	fsys.SetCrashAtOp(fsys.Ops() + 2)
	if _, err := l.AppendSync(1, []byte("torn-record-payload")); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	fsys.Recover()

	got := pollAll(t, tl, 0)
	if len(got) != 1 || got[0].lsn != 1 {
		t.Fatalf("poll over torn tail: %+v", got)
	}
	// The new leader heals the torn bytes and appends records 2 and 3.
	l2, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.AppendSync(1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.AppendSync(1, []byte("third")); err != nil {
		t.Fatal(err)
	}
	got = pollAll(t, tl, 0)
	if len(got) != 1 || got[0] != (rec{2, 1, "second"}) {
		t.Fatalf("after heal: %+v", got)
	}
}

func TestTailerMaxBudgetResumes(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tl := NewTailer(fsys, "w", 0)
	var got []rec
	for {
		n, err := tl.Poll(0, 3, func(lsn uint64, kind byte, payload []byte) error {
			got = append(got, rec{lsn, kind, string(payload)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if n > 3 {
			t.Fatalf("poll delivered %d > max 3", n)
		}
	}
	if len(got) != 19 {
		t.Fatalf("delivered %d records across budgeted polls, want 19", len(got))
	}
	for i, r := range got {
		if r.lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.lsn)
		}
	}
}
