// Package wal is a write-ahead log of opaque, CRC-framed records with
// monotone log sequence numbers (LSNs), segment rotation, and
// crash-tolerant recovery. The engine logs each Apply batch here —
// appended and fsynced — before publishing the new state, so an
// acknowledged batch is durable and recovery can replay the tail past
// the latest checkpoint.
//
// On-disk format. Each segment file `wal-%016x.seg` (named by the LSN
// of its first record) starts with an 8-byte magic and holds a
// sequence of frames:
//
//	[4B LE payload length][4B LE CRC32-C][8B LE lsn][1B kind][payload]
//
// The CRC covers lsn+kind+payload, so a frame vouches for its own
// identity, not just its bytes. Crash loss is prefix-shaped (a torn
// tail), so recovery truncates the last segment at the first
// undecodable offset; an undecodable record in any earlier segment is
// corruption and fails hard.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	// headerLen is the length of the segment magic header.
	headerLen = 8
	// frameHeaderLen is the fixed prefix of a record frame before the
	// payload: length + crc + lsn + kind.
	frameHeaderLen = 4 + 4 + 8 + 1
	// MaxPayload caps a record's declared payload length. The decoder
	// rejects larger claims as corrupt before allocating, so garbage
	// length fields cannot drive huge allocations.
	MaxPayload = 1 << 26
)

// magic identifies a WAL segment file.
var magic = [headerLen]byte{'S', 'S', 'W', 'A', 'L', '0', '1', '\n'}

// Decode and recovery errors. ErrTorn means the buffer ends before the
// frame does — the crash signature, recoverable by truncation at the
// tail. ErrCorrupt means the bytes are wrong, not merely missing.
var (
	ErrTorn    = errors.New("wal: torn record")
	ErrCorrupt = errors.New("wal: corrupt record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the framed encoding of one record to dst and
// returns the extended slice.
func AppendRecord(dst []byte, lsn uint64, kind byte, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	hdr[16] = kind
	crc := crc32.Update(0, castagnoli, hdr[8:frameHeaderLen])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord decodes the first record framed in b. It returns the
// record fields and the number of bytes consumed. The payload aliases
// b; callers that retain it must copy. Errors are ErrTorn when b ends
// mid-frame and ErrCorrupt when the length field is implausible or the
// CRC does not match — never a panic, whatever the input.
func DecodeRecord(b []byte) (lsn uint64, kind byte, payload []byte, n int, err error) {
	if len(b) < frameHeaderLen {
		return 0, 0, nil, 0, ErrTorn
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > MaxPayload {
		return 0, 0, nil, 0, ErrCorrupt
	}
	total := frameHeaderLen + int(plen)
	if len(b) < total {
		return 0, 0, nil, 0, ErrTorn
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	if crc32.Checksum(b[8:total], castagnoli) != want {
		return 0, 0, nil, 0, ErrCorrupt
	}
	lsn = binary.LittleEndian.Uint64(b[8:16])
	return lsn, b[16], b[frameHeaderLen:total], total, nil
}
