package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"socialscope/internal/vfs"
)

type rec struct {
	lsn     uint64
	kind    byte
	payload string
}

func collect(t *testing.T, l *Log, from uint64) []rec {
	t.Helper()
	var got []rec
	err := l.Replay(from, func(lsn uint64, kind byte, payload []byte) error {
		got = append(got, rec{lsn, kind, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTripWithRotation(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	// Tiny segments force several rotations over 40 records.
	l, err := Open(fsys, "w", Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i := 0; i < 40; i++ {
		payload := fmt.Sprintf("batch-%03d", i)
		lsn, err := l.AppendSync(1, []byte(payload))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn: got %d, want %d", lsn, i+1)
		}
		want = append(want, rec{lsn, 1, payload})
	}
	if len(l.segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(l.segs))
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Replay from the middle.
	mid := collect(t, l, 21)
	if len(mid) != 20 || mid[0].lsn != 21 {
		t.Fatalf("replay from 21: len=%d first=%+v", len(mid), mid[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resumes the sequence exactly.
	l2, err := Open(fsys, "w", Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextLSN() != 41 {
		t.Fatalf("NextLSN after reopen: %d", l2.NextLSN())
	}
	if lsn, err := l2.AppendSync(2, []byte("after")); err != nil || lsn != 41 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestTornTailHealedOnOpen(t *testing.T) {
	for _, mode := range []vfs.LossMode{vfs.KeepUnsynced, vfs.DropUnsynced} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			fsys := vfs.NewFaultFS(mode)
			fsys.SetWriteChunk(3)
			l, err := Open(fsys, "w", Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := l.AppendSync(1, []byte(fmt.Sprintf("ok-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Crash partway into the next append's write.
			fsys.SetCrashAtOp(fsys.Ops() + 2)
			if _, err := l.AppendSync(1, []byte("torn-record-payload")); !errors.Is(err, vfs.ErrCrashed) {
				t.Fatalf("want ErrCrashed, got %v", err)
			}
			fsys.Recover()

			l2, err := Open(fsys, "w", Options{})
			if err != nil {
				t.Fatalf("open after crash: %v", err)
			}
			got := collect(t, l2, 0)
			if len(got) != 5 {
				t.Fatalf("replayed %d records, want 5 (torn tail dropped)", len(got))
			}
			if l2.NextLSN() != 6 {
				t.Fatalf("NextLSN: %d", l2.NextLSN())
			}
			if lsn, err := l2.AppendSync(1, []byte("resumed")); err != nil || lsn != 6 {
				t.Fatalf("append after heal: lsn=%d err=%v", lsn, err)
			}
			if got := collect(t, l2, 0); len(got) != 6 || got[5].payload != "resumed" {
				t.Fatalf("after resume: %+v", got)
			}
		})
	}
}

func TestCrashDuringRotationHealedOnOpen(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the rotation threshold.
	for i := 0; i < 4; i++ {
		if _, err := l.AppendSync(1, []byte("0123456789abcdef0123")); err != nil {
			t.Fatal(err)
		}
	}
	// The next append rotates first: crash during the new segment's
	// header write, leaving a named-but-headerless segment behind.
	fsys.SetCrashAtOp(fsys.Ops() + 1)
	if _, err := l.AppendSync(1, []byte("x")); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	fsys.Recover()

	l2, err := Open(fsys, "w", Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open after rotation crash: %v", err)
	}
	if got := collect(t, l2, 0); len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if lsn, err := l2.AppendSync(1, []byte("resumed")); err != nil || lsn != 5 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
}

func TestFailedSyncSelfHeals(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	fsys.SetWriteChunk(1 << 20) // one op per write, so the sync's op index is predictable
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Fail the fsync of the next append: the record's bytes land in the
	// file but it is never acknowledged.
	fsys.FailSyncAtOp(fsys.Ops() + 1)
	if _, err := l.AppendSync(1, []byte("unacked")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// The next append reuses the LSN: the unacked record must be gone.
	lsn, err := l.AppendSync(1, []byte("second"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after failed sync: lsn=%d err=%v", lsn, err)
	}
	got := collect(t, l, 0)
	if len(got) != 2 || got[1].payload != "second" {
		t.Fatalf("log contents: %+v", got)
	}
}

func TestTruncateThroughDropsCoveredSegments(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	nsegs := len(l.segs)
	if nsegs < 3 {
		t.Fatalf("need several segments, got %d", nsegs)
	}
	// A checkpoint covering LSN 1..15 makes earlier segments redundant.
	if err := l.TruncateThrough(15); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) >= nsegs {
		t.Fatalf("no segments removed: %d -> %d", nsegs, len(l.segs))
	}
	got := collect(t, l, 16)
	if len(got) != 15 || got[0].lsn != 16 || got[14].lsn != 30 {
		t.Fatalf("replay after truncate: len=%d", len(got))
	}
	// Everything, including the active segment, is covered: the active
	// segment must survive anyway.
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) != 1 {
		t.Fatalf("want 1 surviving segment, got %d", len(l.segs))
	}
	if lsn, err := l.AppendSync(1, []byte("next")); err != nil || lsn != 31 {
		t.Fatalf("append after full truncate: lsn=%d err=%v", lsn, err)
	}
}

func TestMidStreamCorruptionFailsHard(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(l.segs))
	}
	// Flip a payload bit in the middle of the FIRST (non-last) segment.
	name := "w/" + l.segs[0].name
	data := fsys.Bytes(name)
	data[headerLen+frameHeaderLen+1] ^= 0x40
	if err := fsys.Truncate(name, 0); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = l.Replay(0, func(uint64, byte, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestFirstLSNSeedsEmptyLog(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{FirstLSN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.AppendSync(1, []byte("x")); err != nil || lsn != 100 {
		t.Fatalf("lsn=%d err=%v", lsn, err)
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	payload := []byte("some payload bytes")
	frame := AppendRecord(nil, 42, 7, payload)
	lsn, kind, got, n, err := DecodeRecord(frame)
	if err != nil || lsn != 42 || kind != 7 || !bytes.Equal(got, payload) || n != len(frame) {
		t.Fatalf("decode: lsn=%d kind=%d n=%d err=%v", lsn, kind, n, err)
	}
	// Every strict prefix is torn.
	for i := 0; i < len(frame); i++ {
		if _, _, _, _, err := DecodeRecord(frame[:i]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix %d: want ErrTorn, got %v", i, err)
		}
	}
	// Any single bit flip is corrupt (or torn, if it raises the length).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 1
		if _, _, _, _, err := DecodeRecord(mut); err == nil {
			t.Fatalf("bit flip at %d not detected", i)
		}
	}
}
