package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"socialscope/internal/vfs"
)

type rec struct {
	lsn     uint64
	kind    byte
	payload string
}

func collect(t *testing.T, l *Log, from uint64) []rec {
	t.Helper()
	var got []rec
	err := l.Replay(from, func(lsn uint64, kind byte, payload []byte) error {
		got = append(got, rec{lsn, kind, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTripWithRotation(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	// Tiny segments force several rotations over 40 records.
	l, err := Open(fsys, "w", Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i := 0; i < 40; i++ {
		payload := fmt.Sprintf("batch-%03d", i)
		lsn, err := l.AppendSync(1, []byte(payload))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn: got %d, want %d", lsn, i+1)
		}
		want = append(want, rec{lsn, 1, payload})
	}
	if len(l.segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(l.segs))
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Replay from the middle.
	mid := collect(t, l, 21)
	if len(mid) != 20 || mid[0].lsn != 21 {
		t.Fatalf("replay from 21: len=%d first=%+v", len(mid), mid[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resumes the sequence exactly.
	l2, err := Open(fsys, "w", Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextLSN() != 41 {
		t.Fatalf("NextLSN after reopen: %d", l2.NextLSN())
	}
	if lsn, err := l2.AppendSync(2, []byte("after")); err != nil || lsn != 41 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestTornTailHealedOnOpen(t *testing.T) {
	for _, mode := range []vfs.LossMode{vfs.KeepUnsynced, vfs.DropUnsynced} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			fsys := vfs.NewFaultFS(mode)
			fsys.SetWriteChunk(3)
			l, err := Open(fsys, "w", Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := l.AppendSync(1, []byte(fmt.Sprintf("ok-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Crash partway into the next append's write.
			fsys.SetCrashAtOp(fsys.Ops() + 2)
			if _, err := l.AppendSync(1, []byte("torn-record-payload")); !errors.Is(err, vfs.ErrCrashed) {
				t.Fatalf("want ErrCrashed, got %v", err)
			}
			fsys.Recover()

			l2, err := Open(fsys, "w", Options{})
			if err != nil {
				t.Fatalf("open after crash: %v", err)
			}
			got := collect(t, l2, 0)
			if len(got) != 5 {
				t.Fatalf("replayed %d records, want 5 (torn tail dropped)", len(got))
			}
			if l2.NextLSN() != 6 {
				t.Fatalf("NextLSN: %d", l2.NextLSN())
			}
			if lsn, err := l2.AppendSync(1, []byte("resumed")); err != nil || lsn != 6 {
				t.Fatalf("append after heal: lsn=%d err=%v", lsn, err)
			}
			if got := collect(t, l2, 0); len(got) != 6 || got[5].payload != "resumed" {
				t.Fatalf("after resume: %+v", got)
			}
		})
	}
}

func TestCrashDuringRotationHealedOnOpen(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Fill past the rotation threshold.
	for i := 0; i < 4; i++ {
		if _, err := l.AppendSync(1, []byte("0123456789abcdef0123")); err != nil {
			t.Fatal(err)
		}
	}
	// The next append rotates first: close the old segment (one op),
	// create the new one (one op), then crash during the new segment's
	// header write, leaving a named-but-headerless segment behind.
	fsys.SetCrashAtOp(fsys.Ops() + 2)
	if _, err := l.AppendSync(1, []byte("x")); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	fsys.Recover()

	l2, err := Open(fsys, "w", Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open after rotation crash: %v", err)
	}
	if got := collect(t, l2, 0); len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if lsn, err := l2.AppendSync(1, []byte("resumed")); err != nil || lsn != 5 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
}

func TestFailedSyncSelfHeals(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	fsys.SetWriteChunk(1 << 20) // one op per write, so the sync's op index is predictable
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Fail the fsync of the next append: the record's bytes land in the
	// file but it is never acknowledged.
	fsys.FailSyncAtOp(fsys.Ops() + 1)
	if _, err := l.AppendSync(1, []byte("unacked")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// The next append reuses the LSN: the unacked record must be gone.
	lsn, err := l.AppendSync(1, []byte("second"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after failed sync: lsn=%d err=%v", lsn, err)
	}
	got := collect(t, l, 0)
	if len(got) != 2 || got[1].payload != "second" {
		t.Fatalf("log contents: %+v", got)
	}
}

func TestTruncateThroughDropsCoveredSegments(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	nsegs := len(l.segs)
	if nsegs < 3 {
		t.Fatalf("need several segments, got %d", nsegs)
	}
	// A checkpoint covering LSN 1..15 makes earlier segments redundant.
	if err := l.TruncateThrough(15); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) >= nsegs {
		t.Fatalf("no segments removed: %d -> %d", nsegs, len(l.segs))
	}
	got := collect(t, l, 16)
	if len(got) != 15 || got[0].lsn != 16 || got[14].lsn != 30 {
		t.Fatalf("replay after truncate: len=%d", len(got))
	}
	// Everything, including the active segment, is covered: the active
	// segment must survive anyway.
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) != 1 {
		t.Fatalf("want 1 surviving segment, got %d", len(l.segs))
	}
	if lsn, err := l.AppendSync(1, []byte("next")); err != nil || lsn != 31 {
		t.Fatalf("append after full truncate: lsn=%d err=%v", lsn, err)
	}
}

func TestTruncateThroughPartialFailureKeepsReplayable(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	nsegs := len(l.segs)
	if nsegs < 4 {
		t.Fatalf("need >= 4 segments, got %d", nsegs)
	}
	covered := l.segs[nsegs-1].first - 1 // everything below the active segment
	// Fail the SECOND Remove: the first segment is gone, the second
	// survives on disk. The regression was l.segs still naming the
	// removed file, making every later Replay hard-fail on ErrNotExist.
	fsys.FailAtOp(fsys.Ops() + 1)
	if err := l.TruncateThrough(covered); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(l.segs) != nsegs-1 {
		t.Fatalf("segs after partial truncate: got %d, want %d", len(l.segs), nsegs-1)
	}
	got := collect(t, l, 0) // must not touch the removed file
	if len(got) == 0 || got[len(got)-1].lsn != 30 {
		t.Fatalf("replay after partial truncate: %d records", len(got))
	}
	if got[0].lsn != l.segs[0].first {
		t.Fatalf("replay starts at %d, surviving segment starts at %d", got[0].lsn, l.segs[0].first)
	}
	// The retry finishes the job.
	if err := l.TruncateThrough(covered); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) != 1 {
		t.Fatalf("want 1 segment after retry, got %d", len(l.segs))
	}
	if lsn, err := l.AppendSync(1, []byte("after")); err != nil || lsn != 31 {
		t.Fatalf("append after retry: lsn=%d err=%v", lsn, err)
	}
}

func TestReplayDoesNotBlockAppends(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	started := make(chan struct{})
	release := make(chan struct{})
	replayed := make(chan int, 1)
	go func() {
		n := 0
		_ = l.Replay(0, func(uint64, byte, []byte) error {
			if n == 0 {
				close(started)
				<-release // hold the replay mid-stream
			}
			n++
			return nil
		})
		replayed <- n
	}()
	<-started
	// With the lock held across the whole replay this deadlocks; the
	// snapshot-then-decode fix lets the append through immediately.
	appended := make(chan error, 1)
	go func() {
		_, err := l.AppendSync(1, []byte("live"))
		appended <- err
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatalf("append during replay: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AppendSync blocked behind an in-flight Replay")
	}
	close(release)
	if n := <-replayed; n != 3 {
		t.Fatalf("replay saw %d records, want the 3 pre-snapshot ones", n)
	}
}

func TestHealSurfacesCloseError(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	fsys.SetWriteChunk(1 << 20) // one op per write for predictable indices
	l, err := Open(fsys, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Fail the next append's fsync, leaving the log dirty.
	fsys.FailSyncAtOp(fsys.Ops() + 1)
	if _, err := l.AppendSync(1, []byte("unacked")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected from sync, got %v", err)
	}
	sizeBefore := int64(len(fsys.Bytes("w/" + l.segs[0].name)))
	// Now fail the heal's Close of the dirty handle: the heal must give
	// up before truncating, not truncate under a handle whose buffered
	// writes may still land.
	fsys.FailAtOp(fsys.Ops())
	if _, err := l.AppendSync(1, []byte("second")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected from heal close, got %v", err)
	}
	if size := int64(len(fsys.Bytes("w/" + l.segs[0].name))); size != sizeBefore {
		t.Fatalf("segment truncated under a dirty handle: %d -> %d", sizeBefore, size)
	}
	// With the fault gone the next append heals (truncate + reopen) and
	// reuses the LSN of the unacked record.
	lsn, err := l.AppendSync(1, []byte("second"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after recovered heal: lsn=%d err=%v", lsn, err)
	}
	got := collect(t, l, 0)
	if len(got) != 2 || got[1].payload != "second" {
		t.Fatalf("log contents: %+v", got)
	}
}

func TestReopenAfterTruncationContinuity(t *testing.T) {
	// Property: for any checkpoint LSN, TruncateThrough + Close + Open
	// preserves the LSN sequence and replays exactly the surviving
	// contiguous suffix.
	const total = 30
	for ckptLSN := uint64(0); ckptLSN <= total; ckptLSN += 5 {
		fsys := vfs.NewFaultFS(vfs.DropUnsynced)
		l, err := Open(fsys, "w", Options{SegmentBytes: 96})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= total; i++ {
			if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.TruncateThrough(ckptLSN); err != nil {
			t.Fatal(err)
		}
		first := l.segs[0].first
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(fsys, "w", Options{SegmentBytes: 96})
		if err != nil {
			t.Fatalf("ckpt=%d: reopen: %v", ckptLSN, err)
		}
		if l2.NextLSN() != total+1 {
			t.Fatalf("ckpt=%d: NextLSN=%d, want %d", ckptLSN, l2.NextLSN(), total+1)
		}
		got := collect(t, l2, 0)
		if len(got) == 0 {
			t.Fatalf("ckpt=%d: nothing replayed", ckptLSN)
		}
		if got[0].lsn != first {
			t.Fatalf("ckpt=%d: replay starts at %d, want %d", ckptLSN, got[0].lsn, first)
		}
		if got[0].lsn > ckptLSN+1 {
			t.Fatalf("ckpt=%d: replay lost records: starts at %d", ckptLSN, got[0].lsn)
		}
		for i := 1; i < len(got); i++ {
			if got[i].lsn != got[i-1].lsn+1 {
				t.Fatalf("ckpt=%d: gap at %d -> %d", ckptLSN, got[i-1].lsn, got[i].lsn)
			}
		}
		if last := got[len(got)-1].lsn; last != total {
			t.Fatalf("ckpt=%d: replay ends at %d, want %d", ckptLSN, last, total)
		}
		if lsn, err := l2.AppendSync(1, []byte("next")); err != nil || lsn != total+1 {
			t.Fatalf("ckpt=%d: append after reopen: lsn=%d err=%v", ckptLSN, lsn, err)
		}
	}
}

func TestMidStreamCorruptionFailsHard(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(l.segs))
	}
	// Flip a payload bit in the middle of the FIRST (non-last) segment.
	name := "w/" + l.segs[0].name
	data := fsys.Bytes(name)
	data[headerLen+frameHeaderLen+1] ^= 0x40
	if err := fsys.Truncate(name, 0); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = l.Replay(0, func(uint64, byte, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestFirstLSNSeedsEmptyLog(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	l, err := Open(fsys, "w", Options{FirstLSN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.AppendSync(1, []byte("x")); err != nil || lsn != 100 {
		t.Fatalf("lsn=%d err=%v", lsn, err)
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	payload := []byte("some payload bytes")
	frame := AppendRecord(nil, 42, 7, payload)
	lsn, kind, got, n, err := DecodeRecord(frame)
	if err != nil || lsn != 42 || kind != 7 || !bytes.Equal(got, payload) || n != len(frame) {
		t.Fatalf("decode: lsn=%d kind=%d n=%d err=%v", lsn, kind, n, err)
	}
	// Every strict prefix is torn.
	for i := 0; i < len(frame); i++ {
		if _, _, _, _, err := DecodeRecord(frame[:i]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix %d: want ErrTorn, got %v", i, err)
		}
	}
	// Any single bit flip is corrupt (or torn, if it raises the length).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 1
		if _, _, _, _, err := DecodeRecord(mut); err == nil {
			t.Fatalf("bit flip at %d not detected", i)
		}
	}
}
