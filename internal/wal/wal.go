package wal

import (
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
	"sync"
	"time"

	"socialscope/internal/obs"
	"socialscope/internal/vfs"
)

// DefaultSegmentBytes is the rotation threshold: once the active
// segment reaches this size a new one is started.
const DefaultSegmentBytes = 4 << 20

// Options configure a Log.
type Options struct {
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes if 0).
	SegmentBytes int64
	// FirstLSN seeds the LSN sequence when the directory holds no
	// segments (1 if 0). It is ignored when segments exist: the log
	// resumes where the files say it stopped.
	FirstLSN uint64
	// Obs selects the metrics registry (obs.Default when nil).
	Obs *obs.Registry
}

// Log is an append-only, segmented write-ahead log. Appends are
// serialized; AppendSync returns only after the record is written and
// fsynced, so a nil error means the record survives any crash.
type Log struct {
	fsys vfs.FS
	dir  string
	opts Options

	mu         sync.Mutex
	f          vfs.File // active segment handle; nil after an open failure
	activeSize int64    // bytes written to the active segment
	goodSize   int64    // last complete-record boundary in the active segment
	dirty      bool     // a failed append left bytes past goodSize
	nextLSN    uint64
	segs       []segInfo // ascending by first LSN; last is active
	closed     bool
	met        *walMetrics
}

type segInfo struct {
	name  string
	first uint64
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

func parseSegName(name string) (uint64, bool) {
	if len(name) != 4+16+4 || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	first, err := strconv.ParseUint(name[4:4+16], 16, 64)
	return first, err == nil
}

// Open loads (or initializes) the log in dir, healing a torn tail in
// the last segment — the crash signature — by truncating it to its last
// complete record. Corruption anywhere else fails hard.
func Open(fsys vfs.FS, dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FirstLSN == 0 {
		opts.FirstLSN = 1
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{fsys: fsys, dir: dir, opts: opts, met: newWalMetrics(opts.Obs)}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			l.segs = append(l.segs, segInfo{name: name, first: first})
		}
	}
	// ReadDir sorts names; zero-padded hex sorts numerically.
	if len(l.segs) == 0 {
		if err := l.startSegment(opts.FirstLSN); err != nil {
			return nil, err
		}
		return l, nil
	}
	if err := l.recoverTail(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

// recoverTail scans the last segment to find the next LSN and truncates
// any torn tail. Called with no handle open.
func (l *Log) recoverTail() error {
	seg := l.segs[len(l.segs)-1]
	p := path.Join(l.dir, seg.name)
	data, err := vfs.ReadFile(l.fsys, p)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerLen {
		// The crash hit during segment creation: the name is durable but
		// the header is not all there. Start the segment over.
		if err := l.fsys.Truncate(p, 0); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		data = nil
	} else if [headerLen]byte(data[:headerLen]) != magic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, seg.name)
	}
	if data == nil {
		f, err := l.fsys.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Write(magic[:]); err != nil {
			_ = f.Close() // the write error is the one the caller needs
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // the sync error already condemns the segment
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.nextLSN = seg.first
		l.activeSize, l.goodSize = headerLen, headerLen
		return nil
	}
	expect := seg.first
	off := headerLen
	for off < len(data) {
		lsn, _, _, n, err := DecodeRecord(data[off:])
		if err != nil {
			// Torn tail — or garbage after the last good record, which is
			// indistinguishable from one and equally discardable.
			if terr := l.fsys.Truncate(p, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			break
		}
		if lsn != expect {
			return fmt.Errorf("%w: %s: lsn %d, want %d", ErrCorrupt, seg.name, lsn, expect)
		}
		expect++
		off += n
	}
	l.nextLSN = expect
	l.activeSize, l.goodSize = int64(off), int64(off)
	return nil
}

// openActive (re)opens the handle on the active segment for appending.
func (l *Log) openActive() error {
	seg := l.segs[len(l.segs)-1]
	f, err := l.fsys.OpenFile(path.Join(l.dir, seg.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	return nil
}

// startSegment creates and syncs a fresh segment whose first record
// will carry LSN first, and makes it active.
func (l *Log) startSegment(first uint64) error {
	name := segName(first)
	f, err := l.fsys.OpenFile(path.Join(l.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		_ = f.Close() // the write error is the one the caller needs
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error already condemns the segment
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, segInfo{name: name, first: first})
	l.nextLSN = first
	l.activeSize, l.goodSize = headerLen, headerLen
	l.dirty = false
	return nil
}

// NextLSN returns the LSN the next appended record will carry.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// AppendSync appends one record and fsyncs it. On success the record is
// durable and its LSN is returned. On failure the log is logically
// unchanged: the next append first truncates any partial or unacked
// bytes back to the last acknowledged boundary, so a record that failed
// its sync is never followed by a later one. (If a crash intervenes
// before that heal, a complete-but-unacked record may survive and
// replay — allowed, since the ack guarantee is one-directional:
// acknowledged implies durable, not the converse.)
func (l *Log) AppendSync(kind byte, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	if err := l.heal(); err != nil {
		return 0, err
	}
	if l.activeSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	frame := AppendRecord(nil, l.nextLSN, kind, payload)
	start := time.Now()
	n, err := l.f.Write(frame)
	l.activeSize += int64(n)
	if err != nil {
		l.dirty = true
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.dirty = true
		return 0, fmt.Errorf("wal: sync: %w", err)
	}
	l.met.fsync.ObserveSince(start)
	l.met.appends.Inc()
	l.met.bytes.Add(uint64(len(frame)))
	l.goodSize = l.activeSize
	lsn := l.nextLSN
	l.nextLSN++
	return lsn, nil
}

// heal truncates the active segment back to the last acknowledged
// record boundary after a failed append, and (re)opens the append
// handle. The dirty handle must close cleanly before the truncate: a
// failed close means buffered writes may still land, so truncating
// under it could leave the file in a state neither boundary describes.
// On a close failure the handle is abandoned (l.f = nil) and the error
// surfaces; the next append retries the heal from the truncate step.
func (l *Log) heal() error {
	if l.dirty {
		if l.f != nil {
			err := l.f.Close()
			l.f = nil
			if err != nil {
				return fmt.Errorf("wal: heal: close before truncate: %w", err)
			}
		}
		seg := l.segs[len(l.segs)-1]
		if err := l.fsys.Truncate(path.Join(l.dir, seg.name), l.goodSize); err != nil {
			return fmt.Errorf("wal: heal: %w", err)
		}
		l.activeSize = l.goodSize
		l.dirty = false
	}
	if l.f == nil {
		return l.openActive()
	}
	return nil
}

// rotate closes the active segment (already durable — every append
// syncs) and starts a new one at the current next LSN.
func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		l.f = nil
		return fmt.Errorf("wal: %w", err)
	}
	l.f = nil
	l.met.rotations.Inc()
	return l.startSegment(l.nextLSN)
}

// Replay calls fn for every record with LSN >= from that was
// acknowledged as of the call, in LSN order, validating continuity and
// CRCs along the way. The payload passed to fn is only valid for the
// duration of the call.
//
// Replay snapshots the segment list and the acknowledged boundary under
// the lock, then reads and decodes with the lock released, so a long
// replay never stalls concurrent AppendSync callers; records appended
// after the snapshot are simply not replayed. Concurrent TruncateThrough
// must not drop segments the replay still needs (the engine serializes
// checkpoints against replay on its own lock).
func (l *Log) Replay(from uint64, fn func(lsn uint64, kind byte, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	good := l.goodSize
	l.mu.Unlock()
	for i, seg := range segs {
		last := i == len(segs)-1
		if !last && segs[i+1].first <= from {
			continue // every record in this segment is below from
		}
		data, err := vfs.ReadFile(l.fsys, path.Join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if last && int64(len(data)) > good {
			// Bytes past the snapshot boundary are either appends that
			// landed after the snapshot or an unacknowledged tail awaiting
			// heal; neither belongs to this replay.
			data = data[:good]
		}
		if len(data) < headerLen || [headerLen]byte(data[:headerLen]) != magic {
			return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, seg.name)
		}
		expect := seg.first
		off := headerLen
		for off < len(data) {
			lsn, kind, payload, n, err := DecodeRecord(data[off:])
			if err != nil {
				// Open already healed the tail, so undecodable bytes in the
				// last segment can only be a fresh torn append; anywhere
				// else it is corruption.
				if last {
					break
				}
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, seg.name, off, err)
			}
			if lsn != expect {
				return fmt.Errorf("%w: %s: lsn %d, want %d", ErrCorrupt, seg.name, lsn, expect)
			}
			if lsn >= from {
				if err := fn(lsn, kind, payload); err != nil {
					return err
				}
			}
			expect++
			off += n
		}
		if !last && segs[i+1].first != expect {
			return fmt.Errorf("%w: gap between %s and %s", ErrCorrupt, seg.name, segs[i+1].name)
		}
	}
	return nil
}

// TruncateThrough removes segments whose every record has LSN <= lsn.
// The active segment is always retained. Used after a checkpoint makes
// the prefix redundant.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Re-slice as each segment is removed, so a mid-loop Remove failure
	// leaves l.segs naming only files that still exist — a later Replay
	// must not trip over a half-finished truncation.
	for len(l.segs) > 1 && l.segs[1].first <= lsn+1 {
		if err := l.fsys.Remove(path.Join(l.dir, l.segs[0].name)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.segs = l.segs[1:]
	}
	return nil
}

// Close closes the active segment handle. Appends already acknowledged
// are durable; Close adds nothing and loses nothing.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
