package wal

import (
	"socialscope/internal/obs"
)

// walMetrics are the log's registry handles, resolved once at Open.
// The fsync histogram is the serving tier's durability price tag:
// every acknowledged write sits behind exactly one of these syncs.
type walMetrics struct {
	fsync     *obs.Histogram // ss_wal_fsync_seconds
	appends   *obs.Counter   // ss_wal_appends_total
	bytes     *obs.Counter   // ss_wal_append_bytes_total
	rotations *obs.Counter   // ss_wal_rotations_total
}

func newWalMetrics(reg *obs.Registry) *walMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return &walMetrics{
		fsync: reg.Histogram("ss_wal_fsync_seconds",
			"write+fsync latency per acknowledged WAL record", nil),
		appends: reg.Counter("ss_wal_appends_total",
			"WAL records acknowledged (written and fsynced)"),
		bytes: reg.Counter("ss_wal_append_bytes_total",
			"framed bytes acknowledged into the WAL"),
		rotations: reg.Counter("ss_wal_rotations_total",
			"WAL segment rotations"),
	}
}
