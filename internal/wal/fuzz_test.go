package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes — truncations, bit flips, pure
// garbage — to the record decoder. The decoder must never panic and
// must never return a record whose frame fails its own CRC: whenever it
// accepts a record, re-encoding the decoded fields must reproduce the
// consumed bytes exactly.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, 1, 1, []byte("hello")))
	f.Add(AppendRecord(nil, 0, 0, nil))
	two := AppendRecord(AppendRecord(nil, 7, 2, []byte("first")), 8, 1, []byte("second"))
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	flipped := append([]byte(nil), two...)
	flipped[9] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length claim
	f.Add(bytes.Repeat([]byte{0xa5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		lsn, kind, payload, n, err := DecodeRecord(data)
		if err != nil {
			if err != ErrTorn && err != ErrCorrupt {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if n < frameHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted ⇒ CRC-exact: the frame must be reproducible from the
		// decoded fields alone.
		if re := AppendRecord(nil, lsn, kind, payload); !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted record does not round-trip: lsn=%d kind=%d len=%d", lsn, kind, len(payload))
		}
	})
}
