package wal

// Tailing: the follower-side read path over a live WAL directory. A
// Tailer owns no lock on the log — it may run in a different process
// than the leader — and works purely from the directory contents,
// re-reading the active segment as the leader fsyncs new records,
// picking up rotations from new wal-*.seg names, and tolerating a torn
// tail that a later poll sees completed.
//
// The delicate part is the leader's heal path: a record whose fsync
// failed may sit complete at the tail of the active segment and later
// be truncated away and rewritten — same LSN, different payload. A
// follower that replayed the first incarnation would diverge silently.
// The leader's append discipline makes this detectable from the bytes
// alone: appends are serialized and a failed append is healed
// (truncated) before the next one writes, so
//
//	bytes exist beyond record k's frame  =>  record k was acknowledged.
//
// Poll therefore delivers a record only once it is CONFIRMED: bytes
// follow it in its segment, or its segment is sealed (a later segment
// exists), or its LSN is at or below an external confirmation watermark
// (the leader's checkpoint manifest covers it). The last record in the
// log stays undelivered until any of those happen — bounded staleness,
// in exchange for never replaying bytes the leader may retract.
//
// Promotion is the one moment that wants the opposite semantics: after
// the leader is dead, a complete-but-unacknowledged tail record is
// exactly what crash recovery would replay, so the promoting follower
// drains with confirm = DrainConfirm and then owns the log.

import (
	"errors"
	"fmt"
	"path"

	"socialscope/internal/vfs"
)

// ErrGone reports that the records the tailer still needs were
// truncated away: the leader checkpointed past the tail position and
// removed the segments holding it. The follower cannot catch up by
// replay alone and must re-base from the latest checkpoint.
var ErrGone = errors.New("wal: tailed records truncated away")

// DrainConfirm is the confirmation watermark that makes Poll deliver
// every decodable record, including a complete-but-unacknowledged tail
// — the same prefix crash recovery would replay. Only meaningful when
// the leader is known dead; a tailer that drained must not keep
// tailing a live log.
const DrainConfirm = ^uint64(0)

// Tailer incrementally decodes records from a WAL directory, resuming
// where the previous Poll stopped. It is not safe for concurrent use;
// the follower engine serializes polls under its own lock.
type Tailer struct {
	fsys vfs.FS
	dir  string
	next uint64 // next LSN to deliver
	cur  string // segment name the resume offset refers to
	off  int    // byte offset of next in cur; 0 forces a rescan
}

// NewTailer returns a tailer that will deliver records starting at LSN
// from (1 if 0). The directory may not exist yet — polls report nothing
// until the leader creates it.
func NewTailer(fsys vfs.FS, dir string, from uint64) *Tailer {
	if from == 0 {
		from = 1
	}
	return &Tailer{fsys: fsys, dir: dir, next: from}
}

// NextLSN returns the LSN the next delivered record will carry.
func (t *Tailer) NextLSN() uint64 { return t.next }

// Poll scans forward from the tail position and calls fn for every
// newly confirmed record, in LSN order, up to max records (max <= 0
// means no bound). It returns the number delivered. A nil error with
// zero delivered means the tailer is caught up (or the log does not
// exist yet); ErrGone means the position was truncated away and the
// caller must re-base; ErrCorrupt means the directory contradicts the
// log invariants. An error from fn stops the poll without advancing
// past that record. The payload passed to fn is only valid for the
// duration of the call.
func (t *Tailer) Poll(confirm uint64, max int, fn func(lsn uint64, kind byte, payload []byte) error) (int, error) {
	delivered := 0
	segs, err := t.listSegs()
	if err != nil {
		if vfs.IsNotExist(err) {
			return 0, nil // leader has not created the log yet
		}
		return 0, fmt.Errorf("wal: tail: %w", err)
	}
	if len(segs) == 0 {
		return 0, nil
	}
	// Locate the segment that holds (or, when caught up, will hold) next.
	ci := -1
	for i := range segs {
		if segs[i].first > t.next {
			break
		}
		ci = i
	}
	if ci < 0 {
		return 0, ErrGone
	}
	for {
		seg := segs[ci]
		sealed := ci < len(segs)-1
		data, err := vfs.ReadFile(t.fsys, path.Join(t.dir, seg.name))
		if err != nil {
			if vfs.IsNotExist(err) {
				return delivered, ErrGone // truncated between listing and read
			}
			return delivered, fmt.Errorf("wal: tail: %w", err)
		}
		if len(data) < headerLen {
			if sealed {
				return delivered, fmt.Errorf("%w: %s: truncated header", ErrCorrupt, seg.name)
			}
			return delivered, nil // segment creation in flight; come back later
		}
		if [headerLen]byte(data[:headerLen]) != magic {
			return delivered, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, seg.name)
		}
		off, expect := headerLen, seg.first
		if t.cur == seg.name && t.off >= headerLen && t.off <= len(data) {
			// Resume where the last poll stopped. The offset is always a
			// confirmed-record boundary, which the leader's heal never
			// truncates below, so the bytes from here on are fresh ground.
			off, expect = t.off, t.next
		}
		for off < len(data) {
			if max > 0 && delivered >= max {
				t.cur, t.off = seg.name, off
				return delivered, nil
			}
			lsn, kind, payload, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				if sealed {
					return delivered, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, seg.name, off, derr)
				}
				// Torn or still-in-flight bytes at the live tail: either a
				// write completes them or the leader's heal removes them.
				t.cur, t.off = seg.name, off
				return delivered, nil
			}
			if lsn != expect {
				return delivered, fmt.Errorf("%w: %s: lsn %d, want %d", ErrCorrupt, seg.name, lsn, expect)
			}
			if lsn >= t.next {
				confirmed := sealed || off+n < len(data) || lsn <= confirm
				if !confirmed {
					t.cur, t.off = seg.name, off
					return delivered, nil
				}
				if err := fn(lsn, kind, payload); err != nil {
					t.cur, t.off = seg.name, off
					return delivered, err
				}
				delivered++
				t.next = lsn + 1
			}
			expect = lsn + 1
			off += n
		}
		t.cur, t.off = seg.name, off
		if !sealed {
			return delivered, nil // caught up with the active segment
		}
		nxt := segs[ci+1]
		if nxt.first != expect {
			return delivered, fmt.Errorf("%w: gap between %s and %s", ErrCorrupt, seg.name, nxt.name)
		}
		ci++
		t.cur, t.off = nxt.name, headerLen
	}
}

func (t *Tailer) listSegs() ([]segInfo, error) {
	names, err := t.fsys.ReadDir(t.dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, name := range names {
		// ReadDir sorts names; zero-padded hex sorts numerically.
		if first, ok := parseSegName(name); ok {
			segs = append(segs, segInfo{name: name, first: first})
		}
	}
	return segs, nil
}
