package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Registry holds named metric families and renders them in the
// Prometheus text exposition format. Registration is get-or-create:
// asking twice for the same name returns the same metric, so
// components sharing a registry (several engines in one test process,
// say) accumulate into shared series instead of colliding. Asking for
// an existing name with a different type or label set panics — that is
// a programming error, not a runtime condition.
//
// Handle acquisition takes the registry lock; the returned Counter /
// Gauge / Histogram handles are lock-free. Hot paths resolve handles
// once at construction and hold the pointers.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// Default is the process-global registry, used whenever a component is
// not handed an explicit one.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// series is one labeled instance within a family.
type series struct {
	values []string
	metric any // *Counter, *Gauge or *Histogram
}

type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64

	mu     sync.Mutex
	series map[string]*series
}

// seriesKey joins label values unambiguously (values may not contain
// \xff, which cannot appear in valid UTF-8 label values anyway).
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.metric
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	}
	vals := make([]string, len(values))
	copy(vals, values)
	f.series[key] = &series{values: vals, metric: m}
	return m
}

func (r *Registry) family(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  labels,
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering replaces the function (last writer wins), so a
// test that rebuilds a component over the shared Default registry
// observes the newest instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[""] = &series{metric: &Gauge{fn: fn}}
}

// Histogram returns the unlabeled histogram registered under name.
// buckets is only consulted on first registration (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, buckets, nil).get(nil).(*Histogram)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// With returns (creating if needed) the counter for the label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// With returns (creating if needed) the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family under name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, buckets, labels)}
}

// With returns (creating if needed) the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelString renders {k="v",...} for the series, with extra appended
// as a pre-rendered pair (the histogram le label).
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every family in the Prometheus text exposition
// format, families sorted by name and series by label values, so the
// output is byte-stable for a given set of values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			s := f.series[k]
			switch m := s.metric.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, s.values, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.values, ""), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, upper := range m.upper {
					cum += m.counts[i].Load()
					le := `le="` + formatFloat(upper) + `"`
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, le), cum)
				}
				cum += m.counts[len(m.upper)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values, ""), formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, s.values, ""), cum)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Snapshot flattens the registry into name→value pairs: counters and
// gauges directly (labeled series as name{k="v",...}), histograms as
// name_count, name_sum and estimated name_p50 / name_p99 — the shape
// ssbench embeds into BENCH_<exp>.json so histogram behavior lands in
// the perf trajectory alongside wall times.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for _, s := range f.series {
			base := f.name + labelString(f.labels, s.values, "")
			switch m := s.metric.(type) {
			case *Counter:
				out[base] = float64(m.Value())
			case *Gauge:
				out[base] = m.Value()
			case *Histogram:
				out[base+"_count"] = float64(m.Count())
				out[base+"_sum"] = m.Sum()
				if m.Count() > 0 {
					out[base+"_p50"] = m.Quantile(0.50)
					out[base+"_p99"] = m.Quantile(0.99)
				}
			}
		}
		f.mu.Unlock()
	}
	return out
}
