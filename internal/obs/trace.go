package obs

import (
	"context"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"
)

// A Span is one request's trace: an ordered list of key/value
// annotations plus per-stage latencies, recorded as the request
// descends router → serve → facade → top-k/discovery. It is carried on
// the context (WithSpan / SpanFrom) so layers annotate without new
// plumbing; a nil *Span is a valid no-op receiver, so callers record
// unconditionally:
//
//	obs.SpanFrom(ctx).SetUint("postings_scanned", n)
//
// Spans render as a compact single-line JSON annex — the X-SS-Trace
// response header when the client asks for it, and the sampled
// structured slog line.
type Span struct {
	mu     sync.Mutex
	start  time.Time
	attrs  []attr
	stages []stage
}

type attr struct {
	key string
	val any // string, bool, uint64, int64 or float64
}

type stage struct {
	name string
	d    time.Duration
}

// NewSpan starts a span now.
func NewSpan() *Span { return &Span{start: time.Now()} }

type spanCtxKey struct{}

// WithSpan attaches s to the context.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the span on ctx, or nil — and nil is safe to record
// against.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

func (s *Span) set(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, val})
}

// SetString records a string annotation (overwriting a previous value
// under the same key).
func (s *Span) SetString(key, val string) { s.set(key, val) }

// SetUint records an unsigned integer annotation.
func (s *Span) SetUint(key string, val uint64) { s.set(key, val) }

// SetInt records a signed integer annotation.
func (s *Span) SetInt(key string, val int64) { s.set(key, val) }

// SetFloat records a float annotation.
func (s *Span) SetFloat(key string, val float64) { s.set(key, val) }

// SetBool records a boolean annotation.
func (s *Span) SetBool(key string, val bool) { s.set(key, val) }

// Stage starts a named stage timer; the returned func records the
// elapsed time when called (typically deferred):
//
//	defer sp.Stage("discovery")()
func (s *Span) Stage(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.mu.Lock()
		s.stages = append(s.stages, stage{name, d})
		s.mu.Unlock()
	}
}

// ms renders a duration as fractional milliseconds, 3 decimals.
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

func appendVal(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		b.WriteString(strconv.Quote(x))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	default:
		b.WriteString(strconv.Quote("?"))
	}
}

// Annex renders the span as one compact JSON object in insertion
// order, ending with per-stage latencies and the total elapsed time —
// newline-free, so it is valid as an HTTP header value.
func (s *Span) Annex() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(a.key))
		b.WriteByte(':')
		appendVal(&b, a.val)
	}
	for _, st := range s.stages {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(st.name + "_ms"))
		b.WriteByte(':')
		b.WriteString(ms(st.d))
	}
	if b.Len() > 1 {
		b.WriteByte(',')
	}
	b.WriteString(`"total_ms":`)
	b.WriteString(ms(time.Since(s.start)))
	b.WriteByte('}')
	return b.String()
}

// SlogAttrs renders the span as slog attributes for the sampled
// structured trace line.
func (s *Span) SlogAttrs() []slog.Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]slog.Attr, 0, len(s.attrs)+len(s.stages)+1)
	for _, a := range s.attrs {
		out = append(out, slog.Any(a.key, a.val))
	}
	for _, st := range s.stages {
		out = append(out, slog.Duration(st.name, st.d))
	}
	out = append(out, slog.Duration("total", time.Since(s.start)))
	return out
}
