package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWriteTextGolden pins the exposition format byte-for-byte:
// families sorted by name, series by label values, HELP/TYPE comments,
// cumulative le buckets with +Inf, _sum/_count, and label escaping of
// backslash, quote and newline.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "sorts last").Add(3)
	c := r.CounterVec("aa_requests_total", "requests by handler", "handler", "code")
	c.With("search", "200").Add(7)
	c.With("apply", "503").Inc()
	g := r.Gauge("mm_temp", `gauge with "quotes" and \slashes`)
	g.Set(1.5)
	r.GaugeVec("mm_labeled", "escaped label values", "path").
		With(`a\b"c` + "\n").Set(2)
	h := r.Histogram("hh_lat", "two-bucket histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total requests by handler
# TYPE aa_requests_total counter
aa_requests_total{handler="apply",code="503"} 1
aa_requests_total{handler="search",code="200"} 7
# HELP hh_lat two-bucket histogram
# TYPE hh_lat histogram
hh_lat_bucket{le="0.1"} 2
hh_lat_bucket{le="1"} 3
hh_lat_bucket{le="+Inf"} 4
hh_lat_sum 5.6
hh_lat_count 4
# HELP mm_labeled escaped label values
# TYPE mm_labeled gauge
mm_labeled{path="a\\b\"c\n"} 2
# HELP mm_temp gauge with "quotes" and \\slashes
# TYPE mm_temp gauge
mm_temp 1.5
# HELP zz_last sorts last
# TYPE zz_last counter
zz_last 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGetOrCreate verifies registration is idempotent — same name, same
// handle — and that a kind or label-arity mismatch panics.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second help ignored")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
	v1 := r.CounterVec("y_total", "h", "l")
	v2 := r.CounterVec("y_total", "h", "l")
	v1.With("a").Add(2)
	if v2.With("a").Value() != 2 {
		t.Fatal("vec handles do not share series")
	}

	for _, f := range []func(){
		func() { r.Gauge("x_total", "was a counter") },
		func() { r.CounterVec("x_total", "was unlabeled", "l") },
		func() { v1.With("a", "b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched re-registration did not panic")
				}
			}()
			f()
		}()
	}
}

// TestGaugeFuncLastWins verifies function-backed gauges replace on
// re-registration and ignore Set/Add.
func TestGaugeFuncLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn_gauge", "h", func() float64 { return 1 })
	r.GaugeFunc("fn_gauge", "h", func() float64 { return 42 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fn_gauge 42\n") {
		t.Fatalf("last-registered func did not win:\n%s", b.String())
	}
}

func TestGaugeOps(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("Set+Add = %v, want 1.5", v)
	}
	g.Max(1.0)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("Max lowered the gauge to %v", v)
	}
	g.Max(9)
	if v := g.Value(); v != 9 {
		t.Fatalf("Max(9) = %v", v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if n := h.Count(); n != 5 {
		t.Fatalf("count %d, want 5", n)
	}
	// p50: rank 2.5 lands in the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	// p99 lands in +Inf, clamped to the largest finite bound.
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %v, want clamp to 4", q)
	}
}

// TestConcurrentHammer drives counters, gauges and histograms from many
// goroutines; run under -race this is the lock-freedom proof, and the
// final counts double-check no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "h")
	g := r.Gauge("hammer_gauge", "h")
	h := r.Histogram("hammer_lat", "h", DefBuckets)
	vec := r.CounterVec("hammer_vec_total", "h", "worker")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Max(float64(i))
				h.Observe(float64(i%100) / 1000)
				vec.With(lbl).Inc()
				if i%100 == 0 {
					h.ObserveSince(time.Now())
				}
			}
		}(w)
	}
	// Concurrent scrapes while the hammer runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WriteText(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if v := c.Value(); v != workers*perWorker {
		t.Fatalf("counter %d, want %d", v, workers*perWorker)
	}
	if v := g.Value(); v != workers*perWorker {
		t.Fatalf("gauge %v, want %d", v, workers*perWorker)
	}
	wantObs := uint64(workers * (perWorker + perWorker/100))
	if n := h.Count(); n != wantObs {
		t.Fatalf("histogram count %d, want %d", n, wantObs)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "h").Add(4)
	r.CounterVec("s_vec_total", "h", "k").With("v").Add(2)
	h := r.Histogram("s_lat", "h", []float64{1, 2})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["s_total"] != 4 {
		t.Fatalf("s_total = %v", snap["s_total"])
	}
	if snap[`s_vec_total{k="v"}`] != 2 {
		t.Fatalf("labeled series missing: %v", snap)
	}
	if snap["s_lat_count"] != 1 || snap["s_lat_sum"] != 0.5 {
		t.Fatalf("histogram snapshot: %v", snap)
	}
	if _, ok := snap["s_lat_p50"]; !ok {
		t.Fatal("histogram p50 missing")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
