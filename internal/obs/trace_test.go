package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanNilSafe verifies every Span method is a no-op on nil — the
// property that lets instrumentation sites record unconditionally.
func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.SetString("k", "v")
	sp.SetUint("u", 1)
	sp.SetInt("i", -1)
	sp.SetFloat("f", 1.5)
	sp.SetBool("b", true)
	sp.Stage("s")()
	if sp.Annex() != "" {
		t.Fatal("nil span rendered an annex")
	}
	if sp.SlogAttrs() != nil {
		t.Fatal("nil span rendered slog attrs")
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatal("empty context produced a span")
	}
}

// TestSpanAnnex verifies the annex is valid single-line JSON carrying
// attrs in insertion order, overwrite-on-same-key, stage _ms entries
// and total_ms.
func TestSpanAnnex(t *testing.T) {
	sp := NewSpan()
	sp.SetString("strategy", "ta")
	sp.SetUint("snapshot_version", 7)
	sp.SetBool("early_terminated", false)
	sp.SetUint("snapshot_version", 8) // overwrite, not append
	sp.Stage("discovery")()
	annex := sp.Annex()
	if strings.ContainsAny(annex, "\n\r") {
		t.Fatalf("annex not single-line: %q", annex)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(annex), &m); err != nil {
		t.Fatalf("annex not JSON: %v\n%s", err, annex)
	}
	if m["strategy"] != "ta" || m["snapshot_version"] != float64(8) {
		t.Fatalf("attrs wrong: %v", m)
	}
	if _, ok := m["discovery_ms"]; !ok {
		t.Fatalf("stage latency missing: %v", m)
	}
	if _, ok := m["total_ms"]; !ok {
		t.Fatalf("total missing: %v", m)
	}
	if i := strings.Index(annex, "strategy"); i > strings.Index(annex, "snapshot_version") {
		t.Fatalf("insertion order lost: %s", annex)
	}
}

// TestSpanContext round-trips a span through a context.
func TestSpanContext(t *testing.T) {
	sp := NewSpan()
	ctx := WithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Fatal("span did not round-trip the context")
	}
}

// TestSpanConcurrent hammers one span from many goroutines (the serve
// handler and engine layers annotate the same span); meaningful under
// -race.
func TestSpanConcurrent(t *testing.T) {
	sp := NewSpan()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp.SetUint("shared", uint64(i))
				sp.SetInt(string(rune('a'+w)), int64(i))
				done := sp.Stage("stage")
				done()
				_ = sp.Annex()
			}
		}(w)
	}
	wg.Wait()
	var m map[string]any
	if err := json.Unmarshal([]byte(sp.Annex()), &m); err != nil {
		t.Fatalf("post-hammer annex not JSON: %v", err)
	}
}
