// Package obs is the unified observability layer: a stdlib-only metrics
// core (atomic counters, gauges, fixed-bucket histograms with a
// lock-free hot path), a process-global but injectable Registry with
// Prometheus-text-format exposition, and lightweight per-request
// tracing Spans carried on context.Context.
//
// The package deliberately depends on nothing outside the standard
// library (enforced by the sslint stdlibonly analyzer): every serving
// package — engine facade, serve, route, wal, store — imports obs, so
// obs must sit below all of them in the dependency order.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; all methods are lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Load is an alias for Value, matching the atomic.Uint64 method set so
// a Counter can drop in where code previously read a raw atomic.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Values are float64s held
// as atomic bits; all methods are lock-free. A Gauge may instead be
// backed by a function (Registry.GaugeFunc), in which case Value
// evaluates it at read time and Set/Add are ignored.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g.fn != nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetUint stores an integer value.
func (g *Gauge) SetUint(v uint64) { g.Set(float64(v)) }

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max raises the gauge to v if v exceeds the current value — a
// high-watermark gauge.
func (g *Gauge) Max(v float64) {
	if g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free: one atomic add per bucket counter plus a CAS on the sum.
// Buckets are cumulative on exposition (Prometheus semantics: the
// bucket labeled le=x counts observations <= x).
type Histogram struct {
	upper  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; the final slot is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the owning bucket, the standard
// histogram_quantile estimate. Observations in the +Inf bucket clamp
// to the largest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.upper) { // +Inf bucket
				return h.upper[len(h.upper)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.upper[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + (h.upper[i]-lower)*frac
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

// DefBuckets are latency buckets in seconds, 100µs to 10s — sized for
// in-memory top-k evaluation on the low end and fsync/checkpoint work
// on the high end.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n buckets starting at start, each factor times
// the previous — for size-like distributions (batch sizes, postings
// scanned, checkpoint bytes).
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}
