package route

import (
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-backend circuit breaker. It is not self-locking —
// the owning Backend's mutex guards it — and it takes time as an
// argument so tests drive it with a fake clock. threshold consecutive
// failures open the circuit; after cooldown one probe is let through
// (half-open); the probe's outcome closes or re-opens it.
//
// The point of the circuit is to stop burning retry budget and per-try
// timeouts on a backend that is down: with the breaker open, selection
// skips the backend entirely, so a dead replica costs nothing after the
// first few failures instead of a timeout per request.
type breaker struct {
	state     breakerState
	fails     int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
}

// allow reports whether a request may be sent now. In the open state it
// transitions to half-open once the cooldown has elapsed — the caller
// that got true IS the probe and must report success or failure.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	case breakerHalfOpen:
		// One probe at a time; concurrent requests keep routing elsewhere
		// until the probe resolves.
		return false
	}
	return false
}

// success records a completed request and closes the circuit.
func (b *breaker) success() {
	b.state = breakerClosed
	b.fails = 0
}

// failure records a failed request; threshold consecutive failures (or
// a failed half-open probe) open the circuit.
func (b *breaker) failure(now time.Time) {
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}
