package route

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"socialscope/internal/serve"
)

// healthLoop polls every backend's /healthz on the configured cadence
// until Close. Request paths never block on it: they read the view the
// last sweep left behind.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckNow()
		}
	}
}

// CheckNow runs one synchronous health sweep (all backends probed in
// parallel) and then evaluates the failover condition. Exported so
// deterministic tests drive membership without waiting out the ticker.
func (r *Router) CheckNow() {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			r.probe(b)
		}(b)
	}
	wg.Wait()
	r.maybeFailover()
}

// probe performs one health check against b and folds the outcome into
// the routing view.
func (r *Router) probe(b *Backend) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/healthz", nil)
	if err != nil {
		b.noteHealthFail(time.Now())
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		b.noteHealthFail(time.Now())
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		b.noteHealthFail(time.Now())
		return
	}
	var h serve.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		b.noteHealthFail(time.Now())
		return
	}
	role := RoleUnknown
	switch h.Role {
	case "leader":
		role = RoleLeader
	case "follower":
		role = RoleFollower
	}
	var lag uint64
	if h.Lag != nil {
		lag = *h.Lag
	}
	b.noteHealth(role, h.Version, lag, time.Now())
}

// maybeFailover triggers automatic failover when the backend we believe
// leads has missed FailoverAfter consecutive health checks.
func (r *Router) maybeFailover() {
	if r.cfg.DisableFailover {
		return
	}
	for _, b := range r.backends {
		s := b.snapshot()
		if s.Role == RoleLeader.String() && !s.Healthy && b.failCount() >= r.cfg.FailoverAfter {
			r.failover(context.Background(), b)
			return
		}
	}
}

// failover promotes the healthiest, most-caught-up follower to leader.
// dead is the leader being replaced (nil when there is no leader at
// all). Serialized so concurrent triggers — the health loop and a
// write that found no leader — promote at most one follower. Returns
// the new leader, or nil when no candidate could be promoted.
//
// Safe to automate because Promote is equivalent to crash recovery of
// the dead leader's directory (the replication layer's differential
// guarantee): the promoted follower serves exactly the state the dead
// leader's own reboot would have.
func (r *Router) failover(ctx context.Context, dead *Backend) *Backend {
	r.failoverMu.Lock()
	defer r.failoverMu.Unlock()

	// Another trigger may have won the race while we waited on the lock:
	// if a healthy leader exists now, the failover already happened.
	if l := r.Leader(); l != nil && l != dead && l.snapshot().Healthy {
		return l
	}

	// Candidates: healthy followers, most-caught-up first — highest
	// snapshot version, ties broken by lowest replication lag. Promote
	// drains the candidate's confirmed tail itself, so "most caught up"
	// is an optimization (least to drain, most acked data survives), not
	// a correctness requirement.
	type cand struct {
		b       *Backend
		version uint64
		lag     uint64
	}
	var cands []cand
	for _, b := range r.backends {
		if b == dead {
			continue
		}
		s := b.snapshot()
		if !s.Healthy || s.Role != RoleFollower.String() {
			continue
		}
		cands = append(cands, cand{b, s.Version, s.Lag})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.version > a.version || (b.version == a.version && b.lag < a.lag) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	if len(cands) == 0 {
		r.cfg.Logf("route: failover wanted, no promotable follower")
		return nil
	}

	for _, c := range cands {
		v, err := r.promote(ctx, c.b)
		if err != nil {
			r.cfg.Logf("route: promote %s failed: %v", c.b.Host, err)
			continue
		}
		// Depose first so a zombie ex-leader answering later health checks
		// can never reclaim the write path.
		if dead != nil {
			dead.depose()
		}
		c.b.promoted(v)
		r.stats.failovers.Add(1)
		r.cfg.Logf("route: failed over to %s (version %d)", c.b.Host, v)
		return c.b
	}
	return nil
}

// promote POSTs /promote to b and returns the promoted engine's
// version.
func (r *Router) promote(ctx context.Context, b *Backend) (uint64, error) {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.TryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, b.URL+"/promote", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	var pr serve.PromoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return 0, err
	}
	// 409 with role=leader means a retried promotion already landed —
	// that is success, not conflict.
	if pr.Role != "leader" {
		return 0, errNotPromoted{b.Host, resp.StatusCode, pr.Role}
	}
	return pr.Version, nil
}

type errNotPromoted struct {
	host   string
	status int
	role   string
}

func (e errNotPromoted) Error() string {
	return "route: " + e.host + " did not promote (status " +
		http.StatusText(e.status) + ", role " + e.role + ")"
}
