package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"socialscope/internal/serve"
)

// fake is a scriptable stand-in for one ssserve backend: role, version
// and lag for /healthz, a countdown of injected /search failures, and a
// settable per-request delay.
type fake struct {
	mu      sync.Mutex
	role    string
	version uint64
	lag     uint64
	fails   int           // next N reads answer 500
	delay   time.Duration // read latency
	applies int
	srv     *httptest.Server
}

func newFake(role string, version uint64) *fake {
	f := &fake{role: role, version: version}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", f.healthz)
	mux.HandleFunc("GET /search", f.search)
	mux.HandleFunc("POST /apply", f.apply)
	mux.HandleFunc("POST /promote", f.promote)
	f.srv = httptest.NewServer(mux)
	return f
}

func (f *fake) addr() string { return f.srv.Listener.Addr().String() }

func (f *fake) set(mutate func(*fake)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mutate(f)
}

func (f *fake) healthz(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	h := serve.HealthResponse{Status: "ok", Version: f.version, Role: f.role}
	if f.role == "follower" {
		lag := f.lag
		h.Lag = &lag
	}
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (f *fake) search(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	version := f.version
	delay := f.delay
	failing := f.fails > 0
	if failing {
		f.fails--
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if failing {
		http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(serve.HeaderVersion, strconv.FormatUint(version, 10))
	fmt.Fprintf(w, `{"version":%d,"results":[]}`, version)
}

func (f *fake) apply(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if f.role != "leader" {
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, `{"error":"engine is a follower"}`)
		return
	}
	f.version++
	f.applies++
	version := f.version
	f.mu.Unlock()
	w.Header().Set(serve.HeaderVersion, strconv.FormatUint(version, 10))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"version":%d,"applied":1,"coalesced":1,"batched":1}`, version)
}

func (f *fake) promote(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.role = "leader"
	f.lag = 0
	version := f.version
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"role":"leader","version":%d}`, version)
}

// testConfig returns a Config tuned for determinism: the health loop is
// effectively off (tests drive CheckNow), backoffs are tiny, jitter is
// seeded.
func testConfig(backends ...string) Config {
	return Config{
		Backends:        backends,
		TryTimeout:      2 * time.Second,
		BackoffBase:     time.Millisecond,
		BackoffCap:      5 * time.Millisecond,
		HealthEvery:     time.Hour,
		StalenessWait:   30 * time.Millisecond,
		BreakerCooldown: time.Hour,
		Seed:            1,
	}
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestReadRoutesAndAdvancesToken(t *testing.T) {
	leader := newFake("leader", 7)
	defer leader.srv.Close()
	fol := newFake("follower", 7)
	defer fol.srv.Close()

	r, err := New(testConfig(leader.addr(), fol.addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rec := get(t, r.Handler(), "/search?user=1&q=x", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read status %d: %s", rec.Code, rec.Body.String())
	}
	if v := rec.Header().Get(serve.HeaderVersion); v != "7" {
		t.Fatalf("version header %q, want 7", v)
	}
	if rec.Header().Get(serve.HeaderStale) != "" {
		t.Fatal("fresh answer marked stale")
	}
	if r.Token() != 7 {
		t.Fatalf("token %d, want 7", r.Token())
	}
}

func TestReadRetriesThroughTransientFailures(t *testing.T) {
	b := newFake("leader", 3)
	defer b.srv.Close()
	b.set(func(f *fake) { f.fails = 2 })

	r, err := New(testConfig(b.addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rec := get(t, r.Handler(), "/search?user=1&q=x", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read status %d after retries: %s", rec.Code, rec.Body.String())
	}
	if got := r.stats.retries.Load(); got < 2 {
		t.Fatalf("retries counter %d, want >= 2", got)
	}
}

func TestBreakerSkipsDeadBackend(t *testing.T) {
	dead := newFake("follower", 5)
	alive := newFake("leader", 5)
	defer alive.srv.Close()

	cfg := testConfig(dead.addr(), alive.addr())
	cfg.BreakerFails = 2
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Kill one backend after membership formed; its breaker must open
	// within a few reads and stop costing tries.
	dead.srv.Close()
	for i := 0; i < 6; i++ {
		rec := get(t, r.Handler(), "/search?user=1&q=x", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d status %d with one backend down", i, rec.Code)
		}
	}
	var opened bool
	for _, s := range r.Backends() {
		if s.Breaker == "open" {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("no breaker opened across %+v", r.Backends())
	}
	// With the breaker open, reads no longer pay the dead backend's
	// connection failures: no retries on this request.
	before := r.stats.retries.Load()
	if rec := get(t, r.Handler(), "/search?user=1&q=x", nil); rec.Code != http.StatusOK {
		t.Fatalf("read with open breaker: %d", rec.Code)
	}
	if after := r.stats.retries.Load(); after != before {
		t.Fatalf("open breaker still cost %d retries", after-before)
	}
}

func TestHedgedReadWinsOnSlowPrimary(t *testing.T) {
	a := newFake("leader", 4)
	defer a.srv.Close()
	b := newFake("follower", 4)
	defer b.srv.Close()

	cfg := testConfig(a.addr(), b.addr())
	cfg.HedgeMin = time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Prime both latency windows so the hedge trigger has signal.
	for i := 0; i < 20; i++ {
		if rec := get(t, r.Handler(), "/search?user=1&q=x", nil); rec.Code != http.StatusOK {
			t.Fatalf("prime read %d: %d", i, rec.Code)
		}
	}
	// Now make a slow: any read whose primary lands on a should hedge to
	// b and be answered fast.
	a.set(func(f *fake) { f.delay = 300 * time.Millisecond })
	deadline := time.Now().Add(5 * time.Second)
	for r.stats.hedgeWins.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no hedge win (hedges %d)", r.stats.hedges.Load())
		}
		start := time.Now()
		rec := get(t, r.Handler(), "/search?user=1&q=x", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("read: %d", rec.Code)
		}
		_ = start
	}
}

func TestWriteFailoverPromotesFollower(t *testing.T) {
	leader := newFake("leader", 10)
	behind := newFake("follower", 8)
	defer behind.srv.Close()
	ahead := newFake("follower", 10)
	defer ahead.srv.Close()

	cfg := testConfig(leader.addr(), behind.addr(), ahead.addr())
	cfg.FailoverAfter = 1
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A write lands on the live leader.
	rec := post(t, r.Handler(), "/apply", `{"mutations":[]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("write status %d: %s", rec.Code, rec.Body.String())
	}
	if r.Token() != 11 {
		t.Fatalf("token %d after write, want 11", r.Token())
	}

	// Kill the leader. The next write must fail over to the
	// most-caught-up follower and succeed there.
	leader.srv.Close()
	rec = post(t, r.Handler(), "/apply", `{"mutations":[]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("write after leader death: %d %s", rec.Code, rec.Body.String())
	}
	if got := r.stats.failovers.Load(); got != 1 {
		t.Fatalf("failovers %d, want 1", got)
	}
	ahead.mu.Lock()
	role, applies := ahead.role, ahead.applies
	ahead.mu.Unlock()
	if role != "leader" || applies != 1 {
		t.Fatalf("most-caught-up follower: role=%s applies=%d, want promoted with the write", role, applies)
	}
	behind.mu.Lock()
	brole := behind.role
	behind.mu.Unlock()
	if brole != "follower" {
		t.Fatal("failover picked the lagging follower over the caught-up one")
	}
	if l := r.Leader(); l == nil || l.Host != ahead.addr() {
		t.Fatalf("router leader view %v, want %s", l, ahead.addr())
	}
}

func TestStaleReadDegradesExplicitly(t *testing.T) {
	leader := newFake("leader", 5)
	stale := newFake("follower", 3)
	defer stale.srv.Close()

	cfg := testConfig(leader.addr(), stale.addr())
	cfg.DisableFailover = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Lift the token to 6 via a write, then kill the leader: only the
	// version-3 follower remains.
	if rec := post(t, r.Handler(), "/apply", `{"mutations":[]}`); rec.Code != http.StatusOK {
		t.Fatalf("write: %d", rec.Code)
	}
	leader.srv.Close()
	r.CheckNow()

	rec := get(t, r.Handler(), "/search?user=1&q=x", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded read status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(serve.HeaderStale) != "true" {
		t.Fatalf("stale answer not marked: headers %v", rec.Header())
	}
	if v := rec.Header().Get(serve.HeaderVersion); v != "3" {
		t.Fatalf("stale version header %q, want 3", v)
	}
	if got := r.stats.staleServed.Load(); got != 1 {
		t.Fatalf("staleServed %d, want 1", got)
	}
	// The token never regresses to the stale answer's version.
	if r.Token() != 6 {
		t.Fatalf("token %d after stale serve, want 6", r.Token())
	}
}

func TestClientMinVersionHeaderRaisesFloor(t *testing.T) {
	b := newFake("leader", 4)
	defer b.srv.Close()

	cfg := testConfig(b.addr())
	cfg.StalenessWait = 10 * time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The client demands a newer snapshot than any backend has: the
	// answer must come back explicitly stale, not silently fresh.
	rec := get(t, r.Handler(), "/search?user=1&q=x",
		map[string]string{serve.HeaderMinVersion: "9"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get(serve.HeaderStale) != "true" {
		t.Fatal("min-version miss not marked stale")
	}
}

func TestRouterzReportsView(t *testing.T) {
	leader := newFake("leader", 2)
	defer leader.srv.Close()
	fol := newFake("follower", 2)
	defer fol.srv.Close()

	r, err := New(testConfig(leader.addr(), fol.addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rec := get(t, r.Handler(), "/routerz", nil)
	var rs RouterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &rs); err != nil {
		t.Fatalf("routerz decode: %v", err)
	}
	if rs.Leader != leader.addr() {
		t.Fatalf("routerz leader %q, want %q", rs.Leader, leader.addr())
	}
	if len(rs.Backends) != 2 {
		t.Fatalf("routerz backends %d, want 2", len(rs.Backends))
	}
	rec = get(t, r.Handler(), "/healthz", nil)
	var rh RouterHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &rh); err != nil {
		t.Fatal(err)
	}
	if rh.Status != "ok" || rh.Healthy != 2 {
		t.Fatalf("router health %+v", rh)
	}
}

func TestZombieLeaderStaysDeposed(t *testing.T) {
	leader := newFake("leader", 5)
	defer leader.srv.Close()
	fol := newFake("follower", 5)
	defer fol.srv.Close()

	cfg := testConfig(leader.addr(), fol.addr())
	cfg.FailoverAfter = 1
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Partition the leader by swapping its handler for a hang... simplest
	// deterministic stand-in: close, fail over, then "revive" it by
	// noting health directly (the zombie still claims leadership).
	old := r.backends[0]
	leader.srv.CloseClientConnections()
	leader.srv.Close()
	if rec := post(t, r.Handler(), "/apply", `{"mutations":[]}`); rec.Code != http.StatusOK {
		t.Fatalf("failover write: %d", rec.Code)
	}
	if !old.snapshot().Deposed {
		t.Fatal("dead leader not deposed after failover")
	}
	// The zombie comes back up still claiming leadership: the deposed
	// flag must keep it out of the write path.
	old.noteHealth(RoleLeader, 5, 0, time.Now())
	if got := old.snapshot().Role; got == RoleLeader.String() {
		t.Fatalf("deposed backend re-admitted as leader: %s", got)
	}
	if l := r.Leader(); l == nil || l.Host != fol.addr() {
		t.Fatalf("leader view %v, want promoted follower %s", l, fol.addr())
	}
}
