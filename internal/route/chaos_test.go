package route

// The network-chaos differential harness: a real leader + followers
// over one vfs.FaultFS (shared-storage replication, PR 7's model) with
// every HTTP hop routed through a netfault.Transport, driven across
// deterministic injection schedules and an explicit leader kill. The
// invariants proved here are the tentpole's acceptance criteria:
//
//  1. no acknowledged write is ever lost — every node whose /apply got
//     a 200 exists in the post-failover state;
//  2. the monotonic-read token never regresses — an unmarked answer is
//     never older than any answer the router served before it;
//  3. reads keep succeeding through any single-backend failure
//     (injected faults, an open breaker, a dead leader);
//  4. the promoted follower's state is digest-identical to what
//     independently crash-recovering the dead leader's directory (a
//     FaultFS twin cloned at the kill instant) produces.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/netfault"
	"socialscope/internal/serve"
	"socialscope/internal/vfs"
	"socialscope/internal/workload"
)

const chaosDir = "hadir"

// follower bundles one replica's engine and server.
type follower struct {
	eng  *socialscope.Engine
	srv  *serve.Server
	http *httptest.Server
	host string
}

// harness is a leader + N followers + router, every hop through one
// netfault.Transport, all durable state on one FaultFS.
type harness struct {
	t      *testing.T
	fsys   *vfs.FaultFS
	ft     *netfault.Transport
	corpus *workload.TravelCorpus
	cfg    socialscope.Config

	leaderEng  *socialscope.Engine
	leaderSrv  *serve.Server
	leaderHTTP *httptest.Server
	leaderHost string

	fols []*follower
	r    *Router

	stopCatch chan struct{}
	catchWG   sync.WaitGroup

	nextNode graph.NodeID
	acked    []graph.NodeID // node ids of acknowledged writes
	ackedVer []uint64       // engine version each ack reported
}

func newHarness(t *testing.T, followers int, rcfg func(*Config)) *harness {
	t.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 40, Destinations: 20, Seed: 11, VisitsPerUser: 5, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:         t,
		fsys:      vfs.NewFaultFS(vfs.DropUnsynced),
		ft:        netfault.New(http.DefaultTransport),
		corpus:    corpus,
		cfg:       socialscope.Config{ItemType: "destination"},
		stopCatch: make(chan struct{}),
		nextNode:  corpus.Graph.MaxNodeID() + 1,
	}
	h.leaderEng, err = socialscope.OpenDurable(chaosDir, corpus.Graph, h.cfg, socialscope.DurableOptions{
		FS:              h.fsys,
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvCfg := serve.Config{FlushInterval: 2 * time.Millisecond, DisableCache: true}
	h.leaderSrv = serve.New(h.leaderEng, srvCfg)
	h.leaderHTTP = httptest.NewServer(h.leaderSrv.Handler())
	h.leaderHost = h.leaderHTTP.Listener.Addr().String()

	backends := []string{h.leaderHost}
	for i := 0; i < followers; i++ {
		eng, err := socialscope.OpenFollower(chaosDir, h.cfg, socialscope.DurableOptions{FS: h.fsys})
		if err != nil {
			t.Fatal(err)
		}
		f := &follower{eng: eng, srv: serve.New(eng, srvCfg)}
		f.http = httptest.NewServer(f.srv.Handler())
		f.host = f.http.Listener.Addr().String()
		h.fols = append(h.fols, f)
		backends = append(backends, f.host)

		h.catchWG.Add(1)
		go func(e *socialscope.Engine) {
			defer h.catchWG.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-h.stopCatch:
					return
				case <-tick.C:
					if !e.IsFollower() {
						return
					}
					// Transient errors (leader mid-rotation) retry next tick,
					// exactly like ssserve's follow loop.
					_, _ = e.CatchUp(0)
				}
			}
		}(eng)
	}

	cfg := Config{
		Backends:        backends,
		Client:          &http.Client{Transport: h.ft},
		TryTimeout:      2 * time.Second,
		BackoffBase:     time.Millisecond,
		BackoffCap:      10 * time.Millisecond,
		HealthEvery:     time.Hour, // tests drive CheckNow
		StalenessWait:   20 * time.Millisecond,
		BreakerFails:    3,
		BreakerCooldown: 25 * time.Millisecond,
		FailoverAfter:   2,
		Seed:            7,
	}
	if rcfg != nil {
		rcfg(&cfg)
	}
	h.r, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) close() {
	h.r.Close()
	close(h.stopCatch)
	h.catchWG.Wait()
	for _, f := range h.fols {
		f.http.Close()
		f.srv.Close()
	}
	h.leaderHTTP.Close()
	h.leaderSrv.Close()
}

// applyOne writes one uniquely-named node through the router and
// records the ack. mustOK fails the test if the write does not land.
func (h *harness) applyOne(mustOK bool) *httptest.ResponseRecorder {
	h.t.Helper()
	id := h.nextNode
	h.nextNode++
	body := fmt.Sprintf(
		`{"mutations":[{"op":"add-node","node":{"id":%d,"types":["destination"],"attrs":{"name":["chaos-%d"]}}}]}`,
		id, id)
	rec := post(h.t, h.r.Handler(), "/apply", body)
	if rec.Code == http.StatusOK {
		v, err := strconv.ParseUint(rec.Header().Get(serve.HeaderVersion), 10, 64)
		if err != nil {
			h.t.Fatalf("ack without version header: %v", err)
		}
		h.acked = append(h.acked, id)
		h.ackedVer = append(h.ackedVer, v)
	} else if mustOK {
		h.t.Fatalf("write not acked: %d %s", rec.Code, rec.Body.String())
	}
	return rec
}

// read issues one /search through the router and enforces invariants 2
// and 3: it must succeed, and if unmarked it must not be older than
// maxSeen. Returns the updated maxSeen.
func (h *harness) read(maxSeen uint64) uint64 {
	h.t.Helper()
	user := h.corpus.Users[0]
	rec := get(h.t, h.r.Handler(), fmt.Sprintf("/search?user=%d&q=beach", user), nil)
	if rec.Code != http.StatusOK {
		h.t.Fatalf("read failed: %d %s", rec.Code, rec.Body.String())
	}
	v, _ := strconv.ParseUint(rec.Header().Get(serve.HeaderVersion), 10, 64)
	if rec.Header().Get(serve.HeaderStale) == "true" {
		return maxSeen // degraded answers are allowed to be old — they say so
	}
	if v < maxSeen {
		h.t.Fatalf("monotonic-read violation: unmarked answer at version %d after %d", v, maxSeen)
	}
	return v
}

// chaosDigest summarizes an engine's externally observable state:
// version, the full deterministic graph encoding, and ranked answers
// for a sample of users. Two engines with equal digests are
// indistinguishable to clients.
func chaosDigest(t *testing.T, e *socialscope.Engine, users []graph.NodeID) string {
	t.Helper()
	d := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], e.Version())
	d.Write(buf[:])
	if err := e.Graph().Encode(d); err != nil {
		t.Fatal(err)
	}
	sample := users
	if len(sample) > 5 {
		sample = sample[:5]
	}
	for _, u := range sample {
		resp, err := e.Search(u, "")
		if err != nil {
			t.Fatalf("digest query for user %d: %v", u, err)
		}
		for _, r := range resp.Results() {
			binary.LittleEndian.PutUint64(buf[:], uint64(r.Item))
			d.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.Score))
			d.Write(buf[:])
		}
		d.Write([]byte{0xff})
	}
	return hex.EncodeToString(d.Sum(nil))
}

// TestChaosReadsSurviveInjectionSchedule drives mixed traffic across
// seeded randomized fault schedules on every replica: reads must keep
// succeeding (invariant 3) and unmarked answers must stay monotonic
// (invariant 2) while the transport fails, resets, delays and truncates
// responses underneath the router.
func TestChaosReadsSurviveInjectionSchedule(t *testing.T) {
	h := newHarness(t, 2, nil)
	defer h.close()

	// Arm a deterministic schedule per follower host. The leader stays
	// clean so every write in this scenario acks (leader death is the
	// next test's subject).
	scfg := netfault.ScheduleConfig{
		Horizon:      500,
		PFail:        0.08,
		PReset:       0.05,
		PDelay:       0.08,
		PPartial:     0.05,
		MaxDelay:     15 * time.Millisecond,
		MaxBodyBytes: 64,
	}
	armed := 0
	for i, f := range h.fols {
		s := netfault.NewSchedule(int64(100+i), scfg)
		s.Arm(h.ft, f.host)
		armed += s.Count()
	}
	if armed == 0 {
		t.Fatal("schedules armed no faults — chaos test would prove nothing")
	}

	maxSeen := uint64(0)
	for i := 0; i < 60; i++ {
		if i%5 == 0 {
			h.applyOne(true)
		}
		maxSeen = h.read(maxSeen)
	}
	if len(h.acked) != 12 {
		t.Fatalf("acked %d writes, want 12", len(h.acked))
	}
	// The schedule must actually have bitten: the router either retried,
	// hedged, served stale or opened a breaker at least once.
	handled := h.r.stats.retries.Load() + h.r.stats.hedges.Load() +
		h.r.stats.staleServed.Load() + h.r.stats.breakerSkips.Load()
	if handled == 0 {
		t.Fatalf("no fault-handling activity across %d armed faults (ops: %d/%d)",
			armed, h.ft.Ops(h.fols[0].host), h.ft.Ops(h.fols[1].host))
	}
	t.Logf("armed=%d retries=%d hedges=%d stale=%d breakerSkips=%d",
		armed, h.r.stats.retries.Load(), h.r.stats.hedges.Load(),
		h.r.stats.staleServed.Load(), h.r.stats.breakerSkips.Load())
}

// TestChaosFailoverDifferential is the headline: kill -9 the leader
// mid-stream, let the router fail over, and prove the promoted
// follower's state digest-identical to what independently
// crash-recovering the dead leader's directory produces — plus
// invariants 1–3 across the whole run.
func TestChaosFailoverDifferential(t *testing.T) {
	h := newHarness(t, 2, nil)
	defer h.close()

	// Phase 1: healthy traffic. CheckpointEvery=4 means the WAL rotates
	// and checkpoints land mid-stream, so the kill point sits between
	// confirmation boundaries, not at a clean one.
	maxSeen := uint64(0)
	for i := 0; i < 12; i++ {
		h.applyOne(true)
		if i%3 == 0 {
			maxSeen = h.read(maxSeen)
		}
	}
	tokenAtKill := h.r.Token()
	if tokenAtKill == 0 {
		t.Fatal("no token advanced before the kill")
	}

	// Phase 2: kill -9. The network refuses first (no write can slip
	// between the clone and the close), then the twin disk is cloned at
	// the kill instant and crash-marked: it is the dead machine's disk,
	// to be recovered independently.
	h.ft.Refuse(h.leaderHost)
	twin := h.fsys.Clone()
	twin.Crash()
	h.leaderHTTP.Close()
	h.leaderSrv.Close()

	// Invariant 3: reads never stop while the leader is dead and no
	// failover has happened yet.
	for i := 0; i < 4; i++ {
		maxSeen = h.read(maxSeen)
	}

	// Phase 3: the health checker notices (FailoverAfter=2 sweeps) and
	// fails over automatically.
	h.r.CheckNow()
	h.r.CheckNow()
	if got := h.r.stats.failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	lead := h.r.Leader()
	if lead == nil || lead.Host == h.leaderHost {
		t.Fatalf("leader after failover = %v", lead)
	}
	var promoted *socialscope.Engine
	for _, f := range h.fols {
		if f.host == lead.Host {
			promoted = f.eng
		}
	}
	if promoted == nil || promoted.IsFollower() {
		t.Fatal("routed leader is not actually promoted")
	}

	// Invariant 1: every acknowledged write survived the failover.
	if v := promoted.Version(); v < tokenAtKill {
		t.Fatalf("promoted version %d < token at kill %d: acked writes lost", v, tokenAtKill)
	}
	g := promoted.Graph()
	for i, id := range h.acked {
		if g.Node(id) == nil {
			t.Fatalf("acked write %d (node %d, version %d) lost in failover",
				i, id, h.ackedVer[i])
		}
	}

	// Invariant 4, the differential: recover the twin disk the way the
	// dead leader's own reboot would, and compare digests.
	twin.Recover()
	recovered, err := socialscope.OpenDurable(chaosDir, h.corpus.Graph, h.cfg,
		socialscope.DurableOptions{FS: twin})
	if err != nil {
		t.Fatalf("crash recovery of twin disk: %v", err)
	}
	defer recovered.Close()
	dPromoted := chaosDigest(t, promoted, h.corpus.Users)
	dRecovered := chaosDigest(t, recovered, h.corpus.Users)
	if dPromoted != dRecovered {
		t.Fatalf("failover differential divergence:\n  promoted  %s (version %d)\n  recovered %s (version %d)",
			dPromoted, promoted.Version(), dRecovered, recovered.Version())
	}

	// Phase 4: the post-failover write lands at the exact next version.
	before := promoted.Version()
	rec := h.applyOne(true)
	if v := rec.Header().Get(serve.HeaderVersion); v != strconv.FormatUint(before+1, 10) {
		t.Fatalf("post-failover write at version %s, want %d", v, before+1)
	}
	if h.r.Token() != before+1 {
		t.Fatalf("token %d after post-failover write, want %d", h.r.Token(), before+1)
	}
	// And reads see it, still monotonic.
	maxSeen = h.read(maxSeen)
	if maxSeen < before+1 && h.r.Token() >= before+1 {
		// A stale-marked answer is acceptable; an unmarked one must have
		// caught up — h.read enforces that. Nothing more to assert.
		t.Logf("read served stale during catch-up (token %d)", h.r.Token())
	}
}

// TestChaosWriteRetrySafety pins the write-retry discipline under
// injected faults: a refused connection (provably unsent) is retried to
// success, while a mid-response reset (possibly applied) surfaces as an
// error rather than risking a double apply.
func TestChaosWriteRetrySafety(t *testing.T) {
	h := newHarness(t, 1, nil)
	defer h.close()

	// One clean write to locate the op counter.
	h.applyOne(true)

	// Refuse the next request to the leader: the router must retry the
	// write — netfault.Sent reports it never went out — and the ack must
	// arrive on the retry with no version skipped.
	h.ft.FailAt(h.leaderHost, h.ft.Ops(h.leaderHost))
	before := h.leaderEng.Version()
	h.applyOne(true)
	if got := h.leaderEng.Version(); got != before+1 {
		t.Fatalf("retried write applied %d times (version %d → %d)", got-before, before, got)
	}

	// Reset the connection mid-response: the request reached the engine,
	// so the router must NOT retry — one client error, and the engine
	// version advanced exactly once underneath it.
	h.ft.ResetAt(h.leaderHost, h.ft.Ops(h.leaderHost))
	before = h.leaderEng.Version()
	rec := h.applyOne(false)
	if rec.Code == http.StatusOK {
		t.Fatalf("reset write acked: %d", rec.Code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.leaderEng.Version() != before+1 {
		if time.Now().After(deadline) {
			t.Fatalf("reset write applied %d times, want exactly 1",
				h.leaderEng.Version()-before)
		}
		time.Sleep(time.Millisecond)
	}
}
