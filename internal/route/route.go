// Package route is SocialScope's fault-tolerant serving tier: an HTTP
// front end over a leader + N follower ssserve backends that routes
// around failure the way internal/serve routes around load. It
// comprises
//
//   - health-check-driven membership: every backend's role-aware
//     /healthz (role, snapshot version, replication lag) is polled on
//     an interval and folded into the routing view (health.go);
//   - read routing with per-try timeouts, budgeted retries with
//     jittered exponential backoff honoring Retry-After hints, hedged
//     requests once a try outlives a high quantile of the backend's
//     recent latency, and a per-backend circuit breaker so a dead
//     replica stops costing a timeout per request (proxy.go,
//     breaker.go);
//   - explicit consistency: the router keeps a monotonic-read token —
//     the highest snapshot version any answer it relayed was evaluated
//     at — and selects backends that can satisfy it; when only stale
//     replicas remain it retries within a bounded staleness budget and
//     then degrades explicitly, serving the stale answer marked with
//     X-SS-Stale: true instead of erroring (never silently);
//   - write forwarding to the leader, and automatic failover when the
//     leader dies: the healthiest, most-caught-up follower is promoted
//     via POST /promote — safe to automate because promotion is
//     equivalent to crash-recovering the dead leader's directory (the
//     PR 7 guarantee), so the promoted state is exactly what the
//     leader's own reboot would have served.
//
// The chaos differential harness (chaos_test.go) proves the tier
// against internal/netfault's deterministic injection schedules with
// vfs.FaultFS underneath: no acknowledged write lost, the monotonic
// token never regresses, reads keep succeeding through any
// single-backend failure, and post-failover state digest-identical to
// crash recovery of the dead leader's directory.
package route

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"socialscope/internal/obs"
	"socialscope/internal/serve"
)

// Defaults for Config's zero values.
const (
	DefaultTryTimeout      = 1 * time.Second
	DefaultRetries         = 3
	DefaultBackoffBase     = 10 * time.Millisecond
	DefaultBackoffCap      = 500 * time.Millisecond
	DefaultHedgeQuantile   = 0.9
	DefaultHedgeMin        = 2 * time.Millisecond
	DefaultBreakerFails    = 3
	DefaultBreakerCooldown = 500 * time.Millisecond
	DefaultHealthEvery     = 250 * time.Millisecond
	DefaultStalenessWait   = 250 * time.Millisecond
	DefaultFailoverAfter   = 2
)

// Config parameterizes a Router. Backends is required; everything else
// has serviceable defaults.
type Config struct {
	// Backends lists the ssserve instances ("host:port" or full URLs).
	// Roles are discovered, not configured: the health checker asks.
	Backends []string
	// Client issues backend requests. Nil means a plain http.Client;
	// the chaos harness plugs a netfault.Transport in here. The client
	// must not set a global timeout — the router owns per-try deadlines.
	Client *http.Client
	// TryTimeout bounds each individual try (default 1s). The request's
	// own deadline still caps the total across tries.
	TryTimeout time.Duration
	// Retries is how many times a failed try is retried (default 3, so
	// up to 4 tries; 0 keeps the default — use NoRetries to disable).
	Retries   int
	NoRetries bool
	// BackoffBase/BackoffCap shape the jittered exponential backoff
	// between retries (defaults 10ms / 500ms, full jitter).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeQuantile is the latency quantile of the target backend's
	// recent reads after which a second try is hedged to another backend
	// (default 0.9); HedgeMin floors the wait. DisableHedging turns the
	// mechanism off.
	HedgeQuantile  float64
	HedgeMin       time.Duration
	DisableHedging bool
	// BreakerFails consecutive failures open a backend's circuit for
	// BreakerCooldown (defaults 3 / 500ms).
	BreakerFails    int
	BreakerCooldown time.Duration
	// HealthEvery is the membership poll interval (default 250ms);
	// HealthTimeout bounds each probe (default TryTimeout).
	HealthEvery   time.Duration
	HealthTimeout time.Duration
	// StalenessWait is the budget for satisfying the monotonic-read
	// token before degrading to an explicitly stale answer (default
	// 250ms).
	StalenessWait time.Duration
	// FailoverAfter consecutive failed leader health checks trigger
	// automatic failover (default 2); DisableFailover leaves promotion
	// to the operator.
	FailoverAfter   int
	DisableFailover bool
	// Seed makes retry jitter deterministic for tests (0 = seeded from
	// the default source, fine in production).
	Seed int64
	// Logf receives operational events (failovers, breaker trips). Nil
	// discards.
	Logf func(format string, args ...any)
	// Obs is the metrics registry the router records into and /metrics
	// exposes. Nil means a registry private to this router — not the
	// process-global obs.Default, so routers built side by side (tests
	// run many) never share counters.
	Obs *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default).
	EnablePprof bool
}

func (cfg *Config) fill() {
	if cfg.TryTimeout <= 0 {
		cfg.TryTimeout = DefaultTryTimeout
	}
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.NoRetries {
		cfg.Retries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile > 1 {
		cfg.HedgeQuantile = DefaultHedgeQuantile
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	if cfg.BreakerFails <= 0 {
		cfg.BreakerFails = DefaultBreakerFails
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = DefaultHealthEvery
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = cfg.TryTimeout
	}
	if cfg.StalenessWait <= 0 {
		cfg.StalenessWait = DefaultStalenessWait
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = DefaultFailoverAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// Router is the serving tier's front door. Create with New, expose with
// Handler, release with Close.
type Router struct {
	cfg      Config
	client   *http.Client
	backends []*Backend
	mux      *http.ServeMux

	// token is the monotonic-read token: the highest snapshot version
	// any relayed answer was evaluated at. It only ever goes up.
	token atomic.Uint64
	// rr spreads read selection round-robin.
	rr atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	// failoverMu serializes failover so concurrent triggers promote at
	// most one follower.
	failoverMu sync.Mutex

	reg   *obs.Registry
	stats routerCounters

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a router over the configured backends and starts its
// health-check loop. The first health sweep runs synchronously so a
// freshly constructed router already knows who leads.
func New(cfg Config) (*Router, error) {
	cfg.fill()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("route: no backends configured")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:    cfg,
		client: cfg.Client,
		mux:    http.NewServeMux(),
		reg:    reg,
		stats:  newRouterCounters(reg),
		stop:   make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r.rng = rand.New(rand.NewSource(seed))
	for _, addr := range cfg.Backends {
		b, err := newBackend(addr, cfg.BreakerFails, cfg.BreakerCooldown)
		if err != nil {
			return nil, err
		}
		b.met = newBackendMetrics(reg, b.Host)
		r.backends = append(r.backends, b)
	}
	reg.GaugeFunc("ss_route_token",
		"the router's monotonic-read token: the highest snapshot version any relayed answer was evaluated at",
		func() float64 { return float64(r.token.Load()) })

	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /routerz", r.handleRouterz)
	r.mux.Handle("GET /metrics", reg.Handler())
	r.mux.HandleFunc("GET /search", r.serveRead)
	r.mux.HandleFunc("POST /query", r.serveRead)
	r.mux.HandleFunc("GET /recommend", r.serveRead)
	r.mux.HandleFunc("GET /stats", r.serveRead)
	r.mux.HandleFunc("POST /apply", r.serveWrite)
	if cfg.EnablePprof {
		r.mux.HandleFunc("/debug/pprof/", pprof.Index)
		r.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		r.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		r.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		r.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	r.CheckNow()
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Handler returns the routed handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the health loop. In-flight requests finish on their own
// deadlines.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Token returns the current monotonic-read token.
func (r *Router) Token() uint64 { return r.token.Load() }

// advanceToken lifts the token to v if higher (CAS loop: tokens only
// ever go up).
func (r *Router) advanceToken(v uint64) {
	for {
		cur := r.token.Load()
		if v <= cur || r.token.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Leader returns the current leader backend, or nil.
func (r *Router) Leader() *Backend {
	for _, b := range r.backends {
		if role, _ := b.roleVersion(); role == RoleLeader {
			return b
		}
	}
	return nil
}

// Backends returns a snapshot of every backend's routing view.
func (r *Router) Backends() []BackendStatus {
	out := make([]BackendStatus, len(r.backends))
	for i, b := range r.backends {
		out[i] = b.snapshot()
	}
	return out
}

// jitter returns a full-jitter backoff: uniform in (0, d].
func (r *Router) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return time.Duration(1 + r.rng.Int63n(int64(d)))
}

// backoff computes the jittered exponential backoff before retry try
// (0-based), floored by any Retry-After hint the last answer carried.
func (r *Router) backoff(try int, hint time.Duration) time.Duration {
	d := r.cfg.BackoffBase << uint(try)
	if d > r.cfg.BackoffCap || d <= 0 {
		d = r.cfg.BackoffCap
	}
	d = r.jitter(d)
	if hint > d {
		d = hint
	}
	return d
}

// handleHealthz reports the router's own health: ok when at least one
// backend is serving reads; degraded (still 200 — the router IS up)
// when writes have nowhere to go.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy := 0
	for _, b := range r.backends {
		if b.snapshot().Healthy {
			healthy++
		}
	}
	status := "ok"
	if healthy == 0 {
		status = "no-backends"
	} else if r.Leader() == nil {
		status = "no-leader"
	}
	writeJSON(w, http.StatusOK, RouterHealth{
		Status:   status,
		Healthy:  healthy,
		Backends: len(r.backends),
		Token:    r.token.Load(),
	})
}

// handleRouterz reports the full routing view and counters.
func (r *Router) handleRouterz(w http.ResponseWriter, req *http.Request) {
	leader := ""
	if l := r.Leader(); l != nil {
		leader = l.Host
	}
	writeJSON(w, http.StatusOK, RouterStats{
		Token:          r.token.Load(),
		Leader:         leader,
		Backends:       r.Backends(),
		Reads:          r.stats.reads.Load(),
		Writes:         r.stats.writes.Load(),
		Retries:        r.stats.retries.Load(),
		Hedges:         r.stats.hedges.Load(),
		HedgeWins:      r.stats.hedgeWins.Load(),
		StaleServed:    r.stats.staleServed.Load(),
		StaleRedirects: r.stats.staleRedirects.Load(),
		BreakerSkips:   r.stats.breakerSkips.Load(),
		Failovers:      r.stats.failovers.Load(),
		ReadErrors:     r.stats.readErrors.Load(),
		WriteErrors:    r.stats.writeErrs.Load(),
	})
}

// errNoBackend reports that no backend was eligible for a try.
var errNoBackend = errors.New("route: no eligible backend")

// errLeaderGone reports that writes have no target.
var errLeaderGone = errors.New("route: no leader available")

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, serve.ErrorResponse{Error: err.Error()})
}
