package route

import (
	"socialscope/internal/obs"
)

// routerCounters are the routing tier's registry handles. All fields
// are lock-free counters; /routerz and /metrics are two views over the
// same handles, so they can never drift apart.
type routerCounters struct {
	reads, writes         *obs.Counter
	retries, hedges       *obs.Counter
	hedgeWins             *obs.Counter
	staleServed           *obs.Counter
	staleRedirects        *obs.Counter
	breakerSkips          *obs.Counter
	failovers             *obs.Counter
	readErrors, writeErrs *obs.Counter
}

func newRouterCounters(reg *obs.Registry) routerCounters {
	return routerCounters{
		reads:     reg.Counter("ss_route_reads_total", "read requests routed"),
		writes:    reg.Counter("ss_route_writes_total", "write requests routed"),
		retries:   reg.Counter("ss_route_retries_total", "tries retried after backoff"),
		hedges:    reg.Counter("ss_route_hedges_total", "hedged second tries launched"),
		hedgeWins: reg.Counter("ss_route_hedge_wins_total", "answers won by the hedged try"),
		staleServed: reg.Counter("ss_route_stale_served_total",
			"reads degraded to an explicitly stale answer (X-SS-Stale: true)"),
		staleRedirects: reg.Counter("ss_route_stale_redirects_total",
			"fresh-enough retries within the staleness budget"),
		breakerSkips: reg.Counter("ss_route_breaker_skips_total",
			"backend selections skipped by an open circuit breaker"),
		failovers: reg.Counter("ss_route_failovers_total",
			"automatic leader failovers (follower promoted via /promote)"),
		readErrors: reg.Counter("ss_route_read_errors_total",
			"reads that exhausted every try without an answer"),
		writeErrs: reg.Counter("ss_route_write_errors_total",
			"writes that exhausted every try without an ack"),
	}
}

// backendMetrics are one backend's per-host registry handles, labeled
// by the backend's Host. Gauges mirror the routing view (see
// Backend.syncLocked); the histogram feeds latency quantiles per
// backend — the same signal the hedging trigger reads from its ring.
type backendMetrics struct {
	up       *obs.Gauge // ss_route_backend_up{backend}
	brkState *obs.Gauge // ss_route_backend_breaker_state{backend}: 0 closed, 1 open, 2 half-open
	version  *obs.Gauge // ss_route_backend_version{backend}
	lag      *obs.Gauge // ss_route_backend_lag{backend}
	lat      *obs.Histogram
}

func newBackendMetrics(reg *obs.Registry, host string) *backendMetrics {
	return &backendMetrics{
		up: reg.GaugeVec("ss_route_backend_up",
			"1 when the backend's last health check succeeded", "backend").With(host),
		brkState: reg.GaugeVec("ss_route_backend_breaker_state",
			"circuit breaker state: 0 closed, 1 open, 2 half-open", "backend").With(host),
		version: reg.GaugeVec("ss_route_backend_version",
			"backend snapshot version as last observed", "backend").With(host),
		lag: reg.GaugeVec("ss_route_backend_lag",
			"backend replication lag in confirmed-but-unapplied WAL records", "backend").With(host),
		lat: reg.HistogramVec("ss_route_backend_seconds",
			"per-try latency of successful backend requests", nil, "backend").With(host),
	}
}

// syncLocked mirrors the routing view into the backend's gauges.
// Callers hold b.mu.
func (b *Backend) syncLocked() {
	if b.met == nil {
		return
	}
	if b.healthy {
		b.met.up.Set(1)
	} else {
		b.met.up.Set(0)
	}
	b.met.brkState.Set(float64(b.brk.state))
	b.met.version.SetUint(b.version)
	b.met.lag.SetUint(b.lag)
}
