package route

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"socialscope/internal/netfault"
	"socialscope/internal/serve"
)

// maxBody bounds request and response bodies relayed through the router.
const maxBody = 32 << 20

// tryResult is the outcome of one try against one backend: either a
// transport error (err set) or a fully-read HTTP answer.
type tryResult struct {
	backend *Backend
	status  int
	header  http.Header
	body    []byte
	version uint64
	err     error
}

// relayedHeaders are the backend response headers the router passes
// through to its client.
var relayedHeaders = []string{
	"Content-Type",
	serve.HeaderVersion,
	serve.HeaderCache,
	serve.HeaderRetryAfterMs,
	serve.HeaderTrace,
	"Retry-After",
}

// traceCtxKey carries a client's X-SS-Trace request header value
// through the retry/hedging machinery to each backend try, so the
// backend produces a span annex the router relays back.
type traceCtxKey struct{}

// withTrace propagates the trace request header, if present, onto ctx.
func withTrace(ctx context.Context, req *http.Request) context.Context {
	if v := req.Header.Get(serve.HeaderTrace); v != "" {
		ctx = context.WithValue(ctx, traceCtxKey{}, v)
	}
	return ctx
}

// tryOnce sends one request to b with a per-try timeout, reads the full
// body (a torn body is a transport failure, not a short answer), and
// reports the outcome to the backend's breaker and latency profile.
func (r *Router) tryOnce(ctx context.Context, b *Backend, method, uri string, body []byte) tryResult {
	tctx, cancel := context.WithTimeout(ctx, r.cfg.TryTimeout)
	defer cancel()
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tctx, method, b.URL+uri, rd)
	if err != nil {
		return tryResult{backend: b, err: err}
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if v, _ := ctx.Value(traceCtxKey{}).(string); v != "" {
		req.Header.Set(serve.HeaderTrace, v)
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		b.noteResult(false, 0, time.Now())
		return tryResult{backend: b, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	lat := time.Since(start)
	if err != nil {
		b.noteResult(false, 0, time.Now())
		return tryResult{backend: b, err: err}
	}
	// 503 is alive-but-shedding: not a breaker failure (Retry-After
	// governs the pacing), and not a latency sample either.
	ok := resp.StatusCode < 500 || resp.StatusCode == http.StatusServiceUnavailable
	obsLat := time.Duration(0)
	if resp.StatusCode < 300 {
		obsLat = lat
	}
	b.noteResult(ok, obsLat, time.Now())
	var version uint64
	if h := resp.Header.Get(serve.HeaderVersion); h != "" {
		version, _ = strconv.ParseUint(h, 10, 64)
	}
	if version > 0 && resp.StatusCode < 300 {
		b.observeVersion(version)
	}
	return tryResult{
		backend: b,
		status:  resp.StatusCode,
		header:  resp.Header,
		body:    payload,
		version: version,
	}
}

// pickRead selects a backend for a read try: round-robin over healthy
// backends whose snapshot version satisfies effMin and whose breaker
// admits the request, falling back to a stale-but-alive backend when no
// fresh one is available (the caller owns the staleness policy).
func (r *Router) pickRead(effMin uint64, exclude *Backend) *Backend {
	n := len(r.backends)
	start := int(r.rr.Add(1) % uint64(n))
	var fallback *Backend
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		if b == exclude {
			continue
		}
		s := b.snapshot()
		if !s.Healthy {
			continue
		}
		if s.Version >= effMin {
			if b.allow(time.Now()) {
				return b
			}
			r.stats.breakerSkips.Add(1)
			continue
		}
		if fallback == nil {
			fallback = b
		}
	}
	if fallback != nil && fallback.allow(time.Now()) {
		return fallback
	}
	return nil
}

// goodRead reports whether a try produced a definitive answer worth
// relaying (any fully-read status below 500 — 4xx is the backend's
// answer, not a routing failure).
func goodRead(res tryResult) bool {
	return res.err == nil && res.status < 500
}

// hedgedRead runs one read try against primary and, if it outlives the
// configured quantile of the primary's recent latency, hedges a second
// try to a different backend. The first definitive answer wins; the
// straggler finishes into a buffered channel and is dropped (its breaker
// bookkeeping still lands in tryOnce).
func (r *Router) hedgedRead(ctx context.Context, primary *Backend, method, uri string, body []byte, effMin uint64) tryResult {
	ch := make(chan tryResult, 2)
	go func() { ch <- r.tryOnce(ctx, primary, method, uri, body) }()
	inflight := 1
	var hedgeC <-chan time.Time
	if !r.cfg.DisableHedging {
		if d, ok := primary.hedgeDelay(r.cfg.HedgeQuantile, r.cfg.HedgeMin, r.cfg.TryTimeout); ok {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	var first *tryResult
	for {
		select {
		case res := <-ch:
			inflight--
			if goodRead(res) {
				if res.backend != primary {
					r.stats.hedgeWins.Add(1)
				}
				return res
			}
			if inflight == 0 {
				if first != nil && first.err == nil && res.err != nil {
					return *first
				}
				return res
			}
			first = &res
		case <-hedgeC:
			hedgeC = nil
			if sec := r.pickRead(effMin, primary); sec != nil {
				r.stats.hedges.Add(1)
				inflight++
				go func() { ch <- r.tryOnce(ctx, sec, method, uri, body) }()
			}
		case <-ctx.Done():
			return tryResult{err: ctx.Err()}
		}
	}
}

// serveRead answers /search, /query, /recommend and /stats by routing
// to a replica, with budgeted retries, hedging and the monotonic-read
// token. When only stale replicas can answer, the freshest stale answer
// is served explicitly marked (X-SS-Stale: true) after the staleness
// budget runs out — degraded, never silent.
func (r *Router) serveRead(w http.ResponseWriter, req *http.Request) {
	r.stats.reads.Add(1)
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	effMin := r.token.Load()
	if h := req.Header.Get(serve.HeaderMinVersion); h != "" {
		if v, perr := strconv.ParseUint(h, 10, 64); perr == nil && v > effMin {
			effMin = v
		}
	}
	ctx := withTrace(req.Context(), req)
	uri := req.URL.RequestURI()
	staleBy := time.Now().Add(r.cfg.StalenessWait)

	var last tryResult
	var stale *tryResult
	for try := 0; ; try++ {
		if b := r.pickRead(effMin, nil); b != nil {
			last = r.hedgedRead(ctx, b, req.Method, uri, body, effMin)
		} else {
			last = tryResult{err: errNoBackend}
		}
		switch {
		case last.err == nil && last.status < 300 && last.version >= effMin:
			r.advanceToken(last.version)
			r.relay(w, last, false)
			return
		case last.err == nil && last.status < 300:
			// A success evaluated below the monotonic token: remember the
			// freshest such answer, retry within the staleness budget, then
			// degrade explicitly.
			if stale == nil || last.version > stale.version {
				cp := last
				stale = &cp
			}
			if time.Now().After(staleBy) {
				try = r.cfg.Retries // budget spent: degrade now
			} else {
				r.stats.staleRedirects.Add(1)
			}
		case goodRead(last):
			// Definitive 4xx from the backend: its answer, relay as-is.
			r.relay(w, last, false)
			return
		}
		if try >= r.cfg.Retries || ctx.Err() != nil ||
			!sleepCtx(ctx, r.backoff(try, retryHint(last))) {
			break
		}
		r.stats.retries.Add(1)
	}
	if stale != nil {
		r.stats.staleServed.Add(1)
		r.advanceToken(stale.version)
		r.relay(w, *stale, true)
		return
	}
	r.stats.readErrors.Add(1)
	if last.err != nil {
		status := http.StatusBadGateway
		if ctx.Err() != nil || errors.Is(last.err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, last.err)
		return
	}
	r.relay(w, last, false)
}

// serveWrite forwards POST /apply to the leader, retrying only when the
// write provably did not apply: 409 (a follower answered — the leader
// view was stale), 503 (admission shed), or a transport error that
// occurred before the request was sent. A possibly-applied failure
// (timeout or torn response after send) is surfaced to the client —
// retrying it could double-apply the batch.
func (r *Router) serveWrite(w http.ResponseWriter, req *http.Request) {
	r.stats.writes.Add(1)
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := withTrace(req.Context(), req)
	uri := req.URL.RequestURI()
	var last tryResult
	for try := 0; ; try++ {
		leader := r.writeTarget(ctx)
		if leader == nil {
			last = tryResult{err: errLeaderGone}
		} else {
			last = r.tryOnce(ctx, leader, http.MethodPost, uri, body)
			if last.err == nil && last.status < 300 {
				r.advanceToken(last.version)
				r.relay(w, last, false)
				return
			}
			if !writeRetryable(last) {
				break
			}
			// The leader view is stale (409: a follower answered) or the
			// leader may be down (unsent transport error): refresh the view
			// so the next try's writeTarget can fail over.
			r.probe(leader)
		}
		if try >= r.cfg.Retries || ctx.Err() != nil ||
			!sleepCtx(ctx, r.backoff(try, retryHint(last))) {
			break
		}
		r.stats.retries.Add(1)
	}
	r.stats.writeErrs.Add(1)
	if last.err != nil {
		switch {
		case errors.Is(last.err, errLeaderGone):
			writeError(w, http.StatusServiceUnavailable, last.err)
		case ctx.Err() != nil || errors.Is(last.err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, last.err)
		default:
			writeError(w, http.StatusBadGateway, last.err)
		}
		return
	}
	r.relay(w, last, false)
}

// writeTarget returns the healthy leader, triggering failover first
// when the view has none.
func (r *Router) writeTarget(ctx context.Context) *Backend {
	if l := r.Leader(); l != nil && l.snapshot().Healthy {
		return l
	}
	if r.cfg.DisableFailover {
		// No automatic promotion: aim at whatever still claims leadership
		// (it may answer) and let the retry budget decide.
		return r.Leader()
	}
	return r.failover(ctx, r.Leader())
}

// writeRetryable reports whether a failed write try provably did not
// apply and may be retried.
func writeRetryable(res tryResult) bool {
	if res.err != nil {
		return unsent(res.err)
	}
	return res.status == http.StatusConflict || res.status == http.StatusServiceUnavailable
}

// unsent reports whether err happened before the request reached the
// backend: an injected connection-refused, or a real dial failure. Only
// these make a write safe to retry.
func unsent(err error) bool {
	if !netfault.Sent(err) {
		return true
	}
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return false
}

// relay writes a backend answer through to the client, passing through
// the wire headers and optionally marking the body stale.
func (r *Router) relay(w http.ResponseWriter, res tryResult, stale bool) {
	for _, h := range relayedHeaders {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if stale {
		w.Header().Set(serve.HeaderStale, "true")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// retryHint extracts the backend's millisecond Retry-After hint, if the
// last answer carried one.
func retryHint(res tryResult) time.Duration {
	if res.header == nil {
		return 0
	}
	ms, err := strconv.ParseInt(res.header.Get(serve.HeaderRetryAfterMs), 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// sleepCtx sleeps d unless ctx ends first; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
