package route

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"socialscope"
	"socialscope/internal/serve"
	"socialscope/internal/workload"
)

// TestWriteForwardingPreservesCoalescing is the regression pinning the
// serve layer's write-coalescing contract through the routing tier:
// concurrent /apply requests forwarded by the router still share
// flushes, and the engine version advances exactly once per flush — not
// once per request. A router that serialized, split or replayed batches
// would show up here as version delta ≠ distinct acked versions.
func TestWriteForwardingPreservesCoalescing(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 30, Destinations: 15, Seed: 21, VisitsPerUser: 4, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	// A long flush interval and high batch threshold force concurrent
	// requests to wait for company: coalescing is the only way out.
	srv := serve.New(eng, serve.Config{FlushInterval: 30 * time.Millisecond, MaxBatch: 1 << 20})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r, err := New(testConfig(ts.Listener.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const writers = 8
	before := eng.Version()
	base := corpus.Graph.MaxNodeID() + 1

	var wg sync.WaitGroup
	versions := make([]uint64, writers)
	coalesced := make([]int, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := base + socialscope.NodeID(i)
			body := fmt.Sprintf(
				`{"mutations":[{"op":"add-node","node":{"id":%d,"types":["destination"],"attrs":{"name":["coal-%d"]}}}]}`,
				id, id)
			rec := post(t, r.Handler(), "/apply", body)
			if rec.Code != http.StatusOK {
				t.Errorf("writer %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			v, err := strconv.ParseUint(rec.Header().Get(serve.HeaderVersion), 10, 64)
			if err != nil {
				t.Errorf("writer %d: no version header: %v", i, err)
				return
			}
			versions[i] = v
			var ar serve.ApplyResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
				t.Errorf("writer %d: decode ack: %v", i, err)
				return
			}
			coalesced[i] = ar.Coalesced
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Exactly one version bump per flush: the engine's total advance must
	// equal the number of distinct versions acked to the writers.
	distinct := make(map[uint64]bool)
	for _, v := range versions {
		distinct[v] = true
	}
	delta := eng.Version() - before
	if delta != uint64(len(distinct)) {
		t.Fatalf("version advanced %d times for %d distinct acked versions — coalescing broken through the router",
			delta, len(distinct))
	}
	if delta == uint64(writers) {
		// All 8 writers flushing alone despite the 30ms window would mean
		// the router serialized them; with coalescing intact at least two
		// must share.
		t.Fatalf("no coalescing at all: %d writers, %d flushes", writers, delta)
	}
	// Every mutation landed despite sharing flushes.
	g := eng.Graph()
	for i := 0; i < writers; i++ {
		if g.Node(base+socialscope.NodeID(i)) == nil {
			t.Fatalf("writer %d's node missing after coalesced flush", i)
		}
	}
	// The ack metadata agrees: a writer in a shared flush reports the
	// company it kept.
	maxCoal := 0
	for _, c := range coalesced {
		if c > maxCoal {
			maxCoal = c
		}
	}
	if maxCoal < 2 {
		t.Fatalf("coalesced counts %v: no flush carried more than one request", coalesced)
	}
}
