package route

// RouterHealth is the body of the router's own GET /healthz. Status is
// "ok", "no-leader" (reads fine, writes parked) or "no-backends"
// (nothing to route to). The router answers 200 in all three — it is
// the backends that are degraded, not the router.
type RouterHealth struct {
	Status   string `json:"status"`
	Healthy  int    `json:"healthy"`
	Backends int    `json:"backends"`
	Token    uint64 `json:"token"`
}

// RouterStats is the body of GET /routerz: the routing view plus the
// fault-handling counters — how often the router had to retry, hedge,
// trip a breaker, serve stale or fail over to keep answering.
type RouterStats struct {
	Token          uint64          `json:"token"`
	Leader         string          `json:"leader,omitempty"`
	Backends       []BackendStatus `json:"backends"`
	Reads          uint64          `json:"reads"`
	Writes         uint64          `json:"writes"`
	Retries        uint64          `json:"retries"`
	Hedges         uint64          `json:"hedges"`
	HedgeWins      uint64          `json:"hedge_wins"`
	StaleServed    uint64          `json:"stale_served"`
	StaleRedirects uint64          `json:"stale_redirects"`
	BreakerSkips   uint64          `json:"breaker_skips"`
	Failovers      uint64          `json:"failovers"`
	ReadErrors     uint64          `json:"read_errors"`
	WriteErrors    uint64          `json:"write_errors"`
}
