package route

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Role is a backend's replication role as reported by its /healthz.
type Role int

const (
	RoleUnknown Role = iota
	RoleLeader
	RoleFollower
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	}
	return "unknown"
}

// latencyWindow is a fixed-size ring of recent request latencies, the
// input to the hedging trigger: hedge when the in-flight try exceeds a
// high quantile of what this backend usually takes.
type latencyWindow struct {
	samples []time.Duration
	next    int
	full    bool
}

const latencyWindowSize = 64

func (w *latencyWindow) observe(d time.Duration) {
	if w.samples == nil {
		w.samples = make([]time.Duration, latencyWindowSize)
	}
	w.samples[w.next] = d
	w.next = (w.next + 1) % len(w.samples)
	if w.next == 0 {
		w.full = true
	}
}

// quantile returns the q-quantile of the window by nearest rank, or
// (0, false) with fewer than 8 samples — too little signal to hedge on.
func (w *latencyWindow) quantile(q float64) (time.Duration, bool) {
	n := w.next
	if w.full {
		n = len(w.samples)
	}
	if n < 8 {
		return 0, false
	}
	sorted := make([]time.Duration, n)
	copy(sorted, w.samples[:n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx], true
}

// Backend is one ssserve instance behind the router: its address plus
// the router's view of its health, role, snapshot version, replication
// lag, circuit breaker and latency profile. All mutable state is
// guarded by mu; the health checker writes it, request paths read it.
type Backend struct {
	// URL is the normalized base URL ("http://host:port").
	URL string
	// Host is the URL's host part — the key netfault.Transport counts
	// ops under, and the stable name in stats and logs.
	Host string

	// met holds this backend's per-host registry gauges; nil on
	// backends built outside a Router (see syncLocked).
	met *backendMetrics

	mu          sync.Mutex
	role        Role
	version     uint64
	lag         uint64
	healthy     bool
	consecFails int
	deposed     bool // was the leader, got failed over; never a leader again
	brk         breaker
	lat         latencyWindow
}

// newBackend normalizes addr ("host:port" or a full URL) into a Backend.
func newBackend(addr string, brkThreshold int, brkCooldown time.Duration) (*Backend, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("route: bad backend %q: %w", addr, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("route: backend %q has no host", addr)
	}
	return &Backend{
		URL:  u.Scheme + "://" + u.Host,
		Host: u.Host,
		brk:  breaker{threshold: brkThreshold, cooldown: brkCooldown},
	}, nil
}

// noteHealth folds one successful health check into the view.
func (b *Backend) noteHealth(role Role, version, lag uint64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.healthy = true
	b.consecFails = 0
	if !(b.deposed && role == RoleLeader) {
		// A deposed leader still claiming leadership is a zombie: keep it
		// demoted in our view so writes never reach it.
		b.role = role
	}
	b.version = version
	b.lag = lag
	b.brk.success()
	b.syncLocked()
}

// noteHealthFail folds one failed health check and returns the
// consecutive-failure count.
func (b *Backend) noteHealthFail(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.healthy = false
	b.consecFails++
	b.brk.failure(now)
	b.syncLocked()
	return b.consecFails
}

// failCount returns the consecutive failed-health-check count.
func (b *Backend) failCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecFails
}

// allow consults health and the circuit breaker; a true return may be a
// half-open probe, so the caller must report the outcome via noteResult.
func (b *Backend) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy && b.brk.allow(now)
}

// noteResult records a request outcome for the breaker, and latency for
// the hedging profile. lat <= 0 skips the latency sample (503 sheds are
// "ok" for the breaker — the backend is alive — but their fast turnaround
// would poison the hedging profile).
func (b *Backend) noteResult(ok bool, lat time.Duration, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.brk.success()
		if lat > 0 {
			b.lat.observe(lat)
			if b.met != nil {
				b.met.lat.Observe(lat.Seconds())
			}
		}
	} else {
		b.brk.failure(now)
	}
	b.syncLocked()
}

// snapshot returns a consistent view for selection and stats.
func (b *Backend) snapshot() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		URL:     b.URL,
		Host:    b.Host,
		Role:    b.role.String(),
		Healthy: b.healthy,
		Deposed: b.deposed,
		Version: b.version,
		Lag:     b.lag,
		Breaker: b.brk.state.String(),
	}
}

// observeVersion folds a snapshot version seen on a served answer into
// the view: between health sweeps, answers are fresher than the last
// probe, and selection by min-version works off the best known value.
func (b *Backend) observeVersion(v uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v > b.version {
		b.version = v
		b.syncLocked()
	}
}

func (b *Backend) roleVersion() (Role, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.role, b.version
}

// hedgeDelay returns how long to let a try run before hedging: the
// configured quantile of this backend's recent latencies, clamped to
// [min, max]. ok is false when the window is too thin to say.
func (b *Backend) hedgeDelay(q float64, min, max time.Duration) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.lat.quantile(q)
	if !ok {
		return 0, false
	}
	if d < min {
		d = min
	}
	if max > 0 && d > max {
		d = max
	}
	return d, true
}

// depose marks a former leader as permanently non-leader in the
// router's view (reads may still hit it; writes never will).
func (b *Backend) depose() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deposed = true
	if b.role == RoleLeader {
		b.role = RoleUnknown
	}
	b.syncLocked()
}

// promote records a successful /promote: this backend is the leader now.
func (b *Backend) promoted(version uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.role = RoleLeader
	b.version = version
	b.lag = 0
	b.healthy = true
	b.deposed = false
	b.brk.success()
	b.syncLocked()
}

// BackendStatus is one backend's state as reported by /routerz.
type BackendStatus struct {
	URL     string `json:"url"`
	Host    string `json:"host"`
	Role    string `json:"role"`
	Healthy bool   `json:"healthy"`
	Deposed bool   `json:"deposed,omitempty"`
	Version uint64 `json:"version"`
	Lag     uint64 `json:"lag"`
	Breaker string `json:"breaker"`
}
