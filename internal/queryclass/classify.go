// Package queryclass implements the query analysis behind the paper's
// Table 1: detecting location terms through a gazetteer and classifying
// each query as general, categorical or specific ("By leveraging the
// domain knowledge we have about geographical locations and travel
// destinations, we detect location terms in queries and classify each
// query into three classes"). Aggregating a classified log regenerates the
// table.
package queryclass

import (
	"fmt"
	"strings"

	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

// Classifier classifies travel queries against a gazetteer of locations,
// a list of named destinations, category terms and general-intent terms.
type Classifier struct {
	locations    map[string]struct{} // single-token location markers
	locPhrases   []string            // multi-token locations ("san francisco")
	destinations []string            // named destinations (phrase match)
	categories   map[string]struct{}
	general      map[string]struct{} // single general tokens
	generalPhr   []string            // multi-token general phrases
}

// NewClassifier builds a classifier from explicit vocabularies.
func NewClassifier(locations, destinations, categories, general []string) *Classifier {
	c := &Classifier{
		locations:  make(map[string]struct{}),
		categories: make(map[string]struct{}),
		general:    make(map[string]struct{}),
	}
	for _, l := range locations {
		l = strings.ToLower(l)
		if strings.Contains(l, " ") {
			c.locPhrases = append(c.locPhrases, l)
			continue
		}
		c.locations[l] = struct{}{}
	}
	for _, d := range destinations {
		c.destinations = append(c.destinations, strings.ToLower(d))
	}
	for _, cat := range categories {
		for _, tok := range scoring.Tokenize(cat) {
			c.categories[tok] = struct{}{}
		}
	}
	for _, g := range general {
		g = strings.ToLower(g)
		if strings.Contains(g, " ") {
			c.generalPhr = append(c.generalPhr, g)
			continue
		}
		c.general[g] = struct{}{}
	}
	return c
}

// Default returns the classifier wired to the shared workload gazetteers —
// the configuration the Table 1 experiment uses.
func Default() *Classifier {
	return NewClassifier(workload.Cities, workload.SpecificDestinations,
		workload.Categories, workload.GeneralTerms)
}

// Classify assigns the query a class and detects location terms. The
// precedence mirrors the paper's taxonomy: a named destination is
// specific; otherwise category terms make it categorical; otherwise
// general terms — or a bare location — make it general; anything else is
// unclassifiable.
func (c *Classifier) Classify(query string) (workload.QueryClass, bool) {
	lower := strings.ToLower(query)
	toks := scoring.Tokenize(lower)
	hasLoc := c.hasLocation(lower, toks)

	for _, d := range c.destinations {
		if containsPhrase(lower, d) {
			return workload.Specific, true
		}
	}
	for _, t := range toks {
		if _, ok := c.categories[t]; ok {
			return workload.Categorical, hasLoc
		}
	}
	for _, g := range c.generalPhr {
		if containsPhrase(lower, g) {
			return workload.General, hasLoc
		}
	}
	generalHit := false
	nonGeneralTokens := 0
	for _, t := range toks {
		if _, ok := c.general[t]; ok {
			generalHit = true
			continue
		}
		if !c.isLocationToken(t) {
			nonGeneralTokens++
		}
	}
	if generalHit {
		return workload.General, hasLoc
	}
	// A location by itself is a general query (paper: "or just a location
	// by itself").
	if hasLoc && nonGeneralTokens == 0 {
		return workload.General, true
	}
	return workload.Unclassifiable, hasLoc
}

func (c *Classifier) hasLocation(lower string, toks []string) bool {
	for _, t := range toks {
		if _, ok := c.locations[t]; ok {
			return true
		}
	}
	for _, p := range c.locPhrases {
		if containsPhrase(lower, p) {
			return true
		}
	}
	return false
}

func (c *Classifier) isLocationToken(t string) bool {
	if _, ok := c.locations[t]; ok {
		return true
	}
	for _, p := range c.locPhrases {
		for _, pt := range strings.Fields(p) {
			if pt == t {
				return true
			}
		}
	}
	return false
}

// containsPhrase reports a token-boundary phrase match.
func containsPhrase(haystack, phrase string) bool {
	idx := 0
	for {
		i := strings.Index(haystack[idx:], phrase)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(phrase)
		okLeft := start == 0 || !isWordChar(haystack[start-1])
		okRight := end == len(haystack) || !isWordChar(haystack[end])
		if okLeft && okRight {
			return true
		}
		idx = start + 1
	}
}

func isWordChar(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
}

// Table1 is the regenerated statistics table: percentages per (location ×
// class) cell, matching the paper's layout, plus the unclassifiable rate.
type Table1 struct {
	Total int
	// Cells[loc][class] in percent; loc 0 = with locations, 1 = without.
	Cells          [2][3]float64
	Unclassifiable float64
}

// Summarize classifies a log and aggregates Table 1.
func (c *Classifier) Summarize(queries []string) Table1 {
	t := Table1{Total: len(queries)}
	if len(queries) == 0 {
		return t
	}
	counts := [2][3]int{}
	unclass := 0
	for _, q := range queries {
		class, hasLoc := c.Classify(q)
		if class == workload.Unclassifiable {
			unclass++
			continue
		}
		row := 1
		if hasLoc {
			row = 0
		}
		counts[row][int(class)]++
	}
	n := float64(len(queries))
	for r := 0; r < 2; r++ {
		for cl := 0; cl < 3; cl++ {
			t.Cells[r][cl] = 100 * float64(counts[r][cl]) / n
		}
	}
	t.Unclassifiable = 100 * float64(unclass) / n
	return t
}

// String renders the table in the paper's layout.
func (t Table1) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-10s %-12s %-10s\n", "", "general", "categorical", "specific")
	fmt.Fprintf(&sb, "%-16s %-10s %-12s %-10s\n", "with locations",
		pct(t.Cells[0][0]), pct(t.Cells[0][1]), pct(t.Cells[0][2]))
	fmt.Fprintf(&sb, "%-16s %-10s %-12s %-10s\n", "w/o locations",
		pct(t.Cells[1][0]), pct(t.Cells[1][1]), pct(t.Cells[1][2]))
	fmt.Fprintf(&sb, "unclassifiable: %s (paper: ~10%%)\n", pct(t.Unclassifiable))
	return sb.String()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
