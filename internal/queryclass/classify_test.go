package queryclass

import (
	"math"
	"strings"
	"testing"

	"socialscope/internal/workload"
)

func TestClassifyPaperExamples(t *testing.T) {
	c := Default()
	cases := []struct {
		q     string
		class workload.QueryClass
		loc   bool
	}{
		// The paper's own examples.
		{"denver attractions", workload.General, true},
		{"things to do", workload.General, false},
		{"denver", workload.General, true}, // "just a location by itself"
		{"barcelona hotel", workload.Categorical, true},
		{"family", workload.Categorical, false},
		{"historic", workload.Categorical, false},
		{"disneyland", workload.Specific, true},
		{"yosemite park", workload.Specific, true},
		{"zzyx blorp", workload.Unclassifiable, false},
		// Location phrases.
		{"san francisco sightseeing", workload.General, true},
		{"new york hotel", workload.Categorical, true},
		// Specific beats categorical when both match.
		{"coors field baseball", workload.Specific, true},
	}
	for _, tc := range cases {
		class, loc := c.Classify(tc.q)
		if class != tc.class || loc != tc.loc {
			t.Errorf("Classify(%q) = (%v, %v), want (%v, %v)", tc.q, class, loc, tc.class, tc.loc)
		}
	}
}

func TestPhraseBoundaries(t *testing.T) {
	c := Default()
	// "romeo" must not match location "rome".
	if _, loc := c.Classify("romeo juliet"); loc {
		t.Error("substring matched across word boundary")
	}
	if !containsPhrase("visit rome now", "rome") {
		t.Error("exact phrase missed")
	}
	if containsPhrase("romeo", "rome") {
		t.Error("phrase matched inside a word")
	}
	if !containsPhrase("rome", "rome") {
		t.Error("whole-string phrase missed")
	}
}

// TestTable1Regeneration is experiment E1: generate a query log from the
// published mixture and verify the classifier recovers Table 1's cells
// within 1.5 percentage points.
func TestTable1Regeneration(t *testing.T) {
	log, err := workload.QueryLog(50000, workload.PaperMixture(), 42)
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, len(log))
	for i, q := range log {
		texts[i] = q.Text
	}
	table := Default().Summarize(texts)

	paper := [2][3]float64{
		{32.36, 22.52, 8.37},
		{21.38, 5.34, 0},
	}
	for r := 0; r < 2; r++ {
		for cl := 0; cl < 3; cl++ {
			if math.Abs(table.Cells[r][cl]-paper[r][cl]) > 1.5 {
				t.Errorf("cell[%d][%d] = %.2f%%, paper %.2f%%", r, cl, table.Cells[r][cl], paper[r][cl])
			}
		}
	}
	if math.Abs(table.Unclassifiable-10.03) > 1.5 {
		t.Errorf("unclassifiable = %.2f%%, paper ≈10%%", table.Unclassifiable)
	}
	out := table.String()
	for _, want := range []string{"with locations", "w/o locations", "general", "categorical", "specific"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
}

// TestClassifierAccuracy checks per-query agreement with the generator's
// ground truth — classification, not just aggregate rates.
func TestClassifierAccuracy(t *testing.T) {
	log, err := workload.QueryLog(5000, workload.PaperMixture(), 17)
	if err != nil {
		t.Fatal(err)
	}
	c := Default()
	agree := 0
	for _, q := range log {
		class, _ := c.Classify(q.Text)
		if class == q.Class {
			agree++
		}
	}
	if rate := float64(agree) / float64(len(log)); rate < 0.97 {
		t.Errorf("classifier agreement = %.3f, want ≥ 0.97", rate)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	table := Default().Summarize(nil)
	if table.Total != 0 || table.Unclassifiable != 0 {
		t.Errorf("empty summary = %+v", table)
	}
}

func TestCustomClassifier(t *testing.T) {
	c := NewClassifier([]string{"oz"}, []string{"emerald city"}, []string{"witch"}, []string{"wizard quest"})
	if class, loc := c.Classify("oz witch"); class != workload.Categorical || !loc {
		t.Errorf("custom categorical = %v, %v", class, loc)
	}
	if class, _ := c.Classify("emerald city"); class != workload.Specific {
		t.Errorf("custom specific = %v", class)
	}
	if class, _ := c.Classify("wizard quest"); class != workload.General {
		t.Errorf("custom general phrase = %v", class)
	}
}
