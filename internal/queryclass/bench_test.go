package queryclass

import (
	"testing"

	"socialscope/internal/workload"
)

func BenchmarkClassify(b *testing.B) {
	log, err := workload.QueryLog(1000, workload.PaperMixture(), 42)
	if err != nil {
		b.Fatal(err)
	}
	c := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := log[i%len(log)]
		c.Classify(q.Text)
	}
}

func BenchmarkSummarize(b *testing.B) {
	log, err := workload.QueryLog(5000, workload.PaperMixture(), 42)
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]string, len(log))
	for i, q := range log {
		texts[i] = q.Text
	}
	c := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Summarize(texts)
	}
}
