package index_test

import (
	"fmt"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
)

// ExampleBuild materializes the Section 6.2 network-aware inverted lists
// over a four-user tagging site and answers a top-k query against them.
func ExampleBuild() {
	b := graph.NewBuilder()
	for i := 1; i <= 4; i++ {
		b.NodeWithID(graph.NodeID(i), []string{graph.TypeUser})
	}
	for i := 11; i <= 13; i++ {
		b.NodeWithID(graph.NodeID(i), []string{graph.TypeItem})
	}
	// Friendships: 1-2, 1-3, 2-3, 3-4.
	b.Link(1, 2, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(1, 3, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(2, 3, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(3, 4, []string{graph.TypeConnect, graph.SubtypeFriend})
	// Taggings: score_go(11, u1) = |{u2, u3}| = 2, score_go(12, u1) = 1.
	b.Link(2, 11, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	b.Link(3, 11, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	b.Link(3, 12, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	g := b.Graph()

	clustering, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		panic(err)
	}
	ix, err := index.Build(index.Extract(g), clustering, scoring.CountF)
	if err != nil {
		panic(err)
	}
	fmt.Printf("lists=%d entries=%d bytes=%d\n", ix.NumLists(), ix.EntryCount(), ix.SizeBytes())
	for _, e := range ix.List(1, "go") {
		fmt.Printf("item %d stored score %.0f\n", e.Item, e.Score)
	}
	results, _, err := ix.TopK(1, []string{"go"}, 2, scoring.SumG)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("top: item %d score %.0f\n", r.Item, r.Score)
	}
	// Output:
	// lists=4 entries=7 bytes=70
	// item 11 stored score 2
	// item 12 stored score 1
	// top: item 11 score 2
	// top: item 12 score 1
}
