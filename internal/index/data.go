// Package index implements the activity-driven storage study of Section
// 6.2: network-aware inverted lists over tagging actions, user-cluster
// lists with score upper bounds (Equation 1), and threshold-algorithm
// top-k query processing with exact rescoring.
//
// The paper's score model: for a keyword-only query Q = k1..kn issued by
// user u,
//
//	score_k(i, u) = f(network(u) ∩ taggers(i, k))   (f monotone, = count)
//	score(i, u)   = g(score_k1, ..., score_kn)      (g monotone, = sum)
//
// A per-(tag,user) index stores exact scores but explodes in size (the
// paper estimates ~1TB for a moderate site); per-(tag,cluster) indexes
// store max upper bounds over the cluster's members, shrinking storage at
// the cost of exact rescoring during top-k. Because singleton clusters make
// the upper bound exact and one global cluster recovers classic IR lists,
// a single implementation parameterized by the clustering covers the whole
// design space of Section 6.2.
package index

import (
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// Data is the tagging substrate extracted from a social content graph:
// taggers(i,k), network(u), and the universe of users, items and tags.
type Data struct {
	Users []graph.NodeID
	Items []graph.NodeID
	Tags  []string

	// Taggers[tag][item] = set of users who tagged item with tag.
	Taggers map[string]map[graph.NodeID]scoring.Set[graph.NodeID]
	// Network[user] = users connected to user (either direction).
	Network map[graph.NodeID]scoring.Set[graph.NodeID]
	// ItemsOf[user] = items the user tagged (for behavior clustering and
	// content-based explanations).
	ItemsOf map[graph.NodeID]scoring.Set[graph.NodeID]

	// tagsOf[user] = distinct tags the user has used. Maintained alongside
	// ItemsOf so incremental maintenance of a connection mutation visits
	// only the (tag, item) pairs the other endpoint actually tagged
	// instead of scanning the whole tag vocabulary. Nil per-user entries
	// (hand-built Data) make the delta code fall back to the full scan.
	tagsOf map[graph.NodeID]scoring.Set[string]

	// sharedInner is set once this Data has been through a copy-on-write
	// snapshot (ApplyDelta), meaning inner sets and maps may be shared
	// with other versions: the in-place write APIs must then replace
	// rather than mutate them. Sole-owner Data (fresh Extract, never
	// snapshotted) keeps the cheap in-place path.
	sharedInner bool

	// tagDups and connDups count duplicate source records beyond the first:
	// two distinct links asserting the same (user, item, tag) action or the
	// same undirected connection. The sets above are deduplicated, so
	// removing one of several parallel links must decrement a refcount
	// instead of retracting the fact — otherwise incremental maintenance
	// would diverge from a from-scratch Extract of the surviving links.
	tagDups  map[taggingKey]int
	connDups map[edgeKey]int
}

// taggingKey identifies one (tag, item, user) assertion.
type taggingKey struct {
	tag  string
	item graph.NodeID
	user graph.NodeID
}

// edgeKey identifies one undirected connection, normalized a <= b.
type edgeKey struct {
	a, b graph.NodeID
}

func edgeOf(u, v graph.NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

func (d *Data) noteTagDup(k taggingKey, delta int) int {
	if d.tagDups == nil {
		d.tagDups = make(map[taggingKey]int)
	}
	n := d.tagDups[k] + delta
	if n <= 0 {
		delete(d.tagDups, k)
		return 0
	}
	d.tagDups[k] = n
	return n
}

func (d *Data) noteConnDup(k edgeKey, delta int) int {
	if d.connDups == nil {
		d.connDups = make(map[edgeKey]int)
	}
	n := d.connDups[k] + delta
	if n <= 0 {
		delete(d.connDups, k)
		return 0
	}
	d.connDups[k] = n
	return n
}

// Extract walks the graph once and builds the tagging substrate. Tag
// values come from the "tags" attribute of links typed act/tag; network
// membership from connect links, symmetric.
func Extract(g *graph.Graph) *Data {
	d := &Data{
		Taggers: make(map[string]map[graph.NodeID]scoring.Set[graph.NodeID]),
		Network: make(map[graph.NodeID]scoring.Set[graph.NodeID]),
		ItemsOf: make(map[graph.NodeID]scoring.Set[graph.NodeID]),
		tagsOf:  make(map[graph.NodeID]scoring.Set[string]),
	}
	userSet := make(map[graph.NodeID]struct{})
	itemSet := make(map[graph.NodeID]struct{})
	for _, n := range g.NodesOfType(graph.TypeUser) {
		userSet[n.ID] = struct{}{}
		d.Network[n.ID] = scoring.NewSet[graph.NodeID]()
		d.ItemsOf[n.ID] = scoring.NewSet[graph.NodeID]()
		d.tagsOf[n.ID] = scoring.NewSet[string]()
	}
	for _, l := range g.Links() {
		switch {
		case l.HasType(graph.TypeConnect):
			if _, ok := userSet[l.Src]; !ok {
				continue
			}
			if _, ok := userSet[l.Tgt]; !ok {
				continue
			}
			if d.Network[l.Src].Has(l.Tgt) {
				d.noteConnDup(edgeOf(l.Src, l.Tgt), 1)
				continue
			}
			d.Network[l.Src].Add(l.Tgt)
			d.Network[l.Tgt].Add(l.Src)
		case l.HasType(graph.SubtypeTag):
			tags := l.Attrs.All("tags")
			if len(tags) == 0 {
				continue
			}
			itemSet[l.Tgt] = struct{}{}
			if s, ok := d.ItemsOf[l.Src]; ok {
				s.Add(l.Tgt)
			}
			for _, tag := range tags {
				if s, ok := d.tagsOf[l.Src]; ok {
					s.Add(tag)
				}
				byItem, ok := d.Taggers[tag]
				if !ok {
					byItem = make(map[graph.NodeID]scoring.Set[graph.NodeID])
					d.Taggers[tag] = byItem
				}
				set, ok := byItem[l.Tgt]
				if !ok {
					set = scoring.NewSet[graph.NodeID]()
					byItem[l.Tgt] = set
				}
				if set.Has(l.Src) {
					d.noteTagDup(taggingKey{tag, l.Tgt, l.Src}, 1)
					continue
				}
				set.Add(l.Src)
			}
		}
	}
	for u := range userSet {
		d.Users = append(d.Users, u)
	}
	sort.Slice(d.Users, func(i, j int) bool { return d.Users[i] < d.Users[j] })
	for i := range itemSet {
		d.Items = append(d.Items, i)
	}
	sort.Slice(d.Items, func(i, j int) bool { return d.Items[i] < d.Items[j] })
	for tag := range d.Taggers {
		d.Tags = append(d.Tags, tag)
	}
	sort.Strings(d.Tags)
	return d
}

// ScoreTag computes the exact per-keyword score: f(|network(u) ∩
// taggers(i,k)|). Unknown users or tags score 0.
func (d *Data) ScoreTag(item, user graph.NodeID, tag string, f scoring.UserSetFn) float64 {
	byItem, ok := d.Taggers[tag]
	if !ok {
		return 0
	}
	taggers, ok := byItem[item]
	if !ok {
		return 0
	}
	net, ok := d.Network[user]
	if !ok {
		return 0
	}
	return f(scoring.IntersectionSize(net, taggers))
}

// Score computes the exact combined score g(score_k1, ..., score_kn).
func (d *Data) Score(item, user graph.NodeID, tags []string,
	f scoring.UserSetFn, g scoring.AggregateFn) float64 {
	per := make([]float64, len(tags))
	for i, tag := range tags {
		per[i] = d.ScoreTag(item, user, tag, f)
	}
	return g(per)
}

// Result is one ranked item.
type Result struct {
	Item  graph.NodeID
	Score float64
}

// ExactTopK is the brute-force ground truth: score every item for the user
// and return the k best (ties broken by ascending item id).
func (d *Data) ExactTopK(user graph.NodeID, tags []string, k int,
	f scoring.UserSetFn, g scoring.AggregateFn) []Result {
	results := make([]Result, 0, len(d.Items))
	for _, item := range d.Items {
		if s := d.Score(item, user, tags, f, g); s > 0 {
			results = append(results, Result{item, s})
		}
	}
	sortResults(results)
	if k < len(results) {
		results = results[:k]
	}
	return results
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Item < rs[j].Item
	})
}
