// Package index implements the activity-driven storage study of Section
// 6.2: network-aware inverted lists over tagging actions, user-cluster
// lists with score upper bounds (Equation 1), and threshold-algorithm
// top-k query processing with exact rescoring.
//
// The paper's score model: for a keyword-only query Q = k1..kn issued by
// user u,
//
//	score_k(i, u) = f(network(u) ∩ taggers(i, k))   (f monotone, = count)
//	score(i, u)   = g(score_k1, ..., score_kn)      (g monotone, = sum)
//
// A per-(tag,user) index stores exact scores but explodes in size (the
// paper estimates ~1TB for a moderate site); per-(tag,cluster) indexes
// store max upper bounds over the cluster's members, shrinking storage at
// the cost of exact rescoring during top-k. Because singleton clusters make
// the upper bound exact and one global cluster recovers classic IR lists,
// a single implementation parameterized by the clustering covers the whole
// design space of Section 6.2.
package index

import (
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/persist"
	"socialscope/internal/scoring"
)

// ItemTaggers is one tag's inner index: item → set of users who tagged it
// with that tag. Persistent, so substrate snapshots share it wholesale
// and a delta copies only the touched (item → set) trie path — the inner
// map of a popular tag grows with the corpus, and cloning it per batch
// would reintroduce an O(items) term on the live path.
type ItemTaggers = persist.Map[graph.NodeID, scoring.Set[graph.NodeID]]

// NewItemTaggers returns an empty per-tag item index.
func NewItemTaggers() ItemTaggers {
	return persist.NewIntMap[graph.NodeID, scoring.Set[graph.NodeID]]()
}

// Data is the tagging substrate extracted from a social content graph:
// taggers(i,k), network(u), and the universe of users, items and tags.
//
// The top-level structures are persistent (structurally shared): the
// by-tag, by-user maps are copy-on-write tries and the sorted universe
// slices follow a strict copy-on-write discipline (never modified in
// place once built). Snapshotting a Data (cowClone, the ApplyDelta path)
// therefore copies a constant-size header — O(1), not O(users+items+tags)
// — and every snapshot shares all untouched storage with its ancestors.
// Construct with NewData or Extract; the zero Data is not ready for use.
type Data struct {
	// Users, Items and Tags are the sorted universes. They are rebound —
	// never mutated in place — when the universe changes, so snapshots can
	// share them safely.
	Users []graph.NodeID
	Items []graph.NodeID
	Tags  []string

	// Taggers[tag][item] = set of users who tagged item with tag.
	Taggers persist.Map[string, ItemTaggers]
	// Network[user] = users connected to user (either direction).
	Network persist.Map[graph.NodeID, scoring.Set[graph.NodeID]]
	// ItemsOf[user] = items the user tagged (for behavior clustering and
	// content-based explanations).
	ItemsOf persist.Map[graph.NodeID, scoring.Set[graph.NodeID]]

	// tagsOf[user] = distinct tags the user has used. Maintained alongside
	// ItemsOf so incremental maintenance of a connection mutation visits
	// only the (tag, item) pairs the other endpoint actually tagged
	// instead of scanning the whole tag vocabulary. Absent per-user
	// entries (hand-built Data) make the delta code fall back to the full
	// scan.
	tagsOf persist.Map[graph.NodeID, scoring.Set[string]]

	// sharedInner is set once this Data has been through a copy-on-write
	// snapshot (ApplyDelta), meaning inner sets and maps may be shared
	// with other versions: the in-place write APIs must then replace
	// rather than mutate them. Sole-owner Data (fresh Extract, never
	// snapshotted) keeps the cheap in-place path. The persistent top-level
	// maps need no such flag — they are copy-on-write by construction.
	sharedInner bool

	// tagDups and connDups count duplicate source records beyond the first:
	// two distinct links asserting the same (user, item, tag) action or the
	// same undirected connection. The sets above are deduplicated, so
	// removing one of several parallel links must decrement a refcount
	// instead of retracting the fact — otherwise incremental maintenance
	// would diverge from a from-scratch Extract of the surviving links.
	tagDups  persist.Map[taggingKey, int]
	connDups persist.Map[edgeKey, int]
}

// NewData returns an empty, ready-to-use substrate.
func NewData() *Data {
	return &Data{
		Taggers: persist.NewStringMap[ItemTaggers](),
		Network: persist.NewIntMap[graph.NodeID, scoring.Set[graph.NodeID]](),
		ItemsOf: persist.NewIntMap[graph.NodeID, scoring.Set[graph.NodeID]](),
		tagsOf:  persist.NewIntMap[graph.NodeID, scoring.Set[string]](),
		tagDups: persist.NewMap[taggingKey, int](hashTaggingKey),
		connDups: persist.NewMap[edgeKey, int](func(k edgeKey) uint64 {
			return persist.Mix64(persist.Hash64(uint64(k.a)), persist.Hash64(uint64(k.b)))
		}),
	}
}

// taggingKey identifies one (tag, item, user) assertion.
type taggingKey struct {
	tag  string
	item graph.NodeID
	user graph.NodeID
}

func hashTaggingKey(k taggingKey) uint64 {
	return persist.Mix64(persist.HashString(k.tag),
		persist.Mix64(persist.Hash64(uint64(k.item)), persist.Hash64(uint64(k.user))))
}

// edgeKey identifies one undirected connection, normalized a <= b.
type edgeKey struct {
	a, b graph.NodeID
}

func edgeOf(u, v graph.NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

func (d *Data) noteTagDup(k taggingKey, delta int) int {
	n := d.tagDups.At(k) + delta
	if n <= 0 {
		d.tagDups = d.tagDups.Delete(k)
		return 0
	}
	d.tagDups = d.tagDups.Set(k, n)
	return n
}

func (d *Data) noteConnDup(k edgeKey, delta int) int {
	n := d.connDups.At(k) + delta
	if n <= 0 {
		d.connDups = d.connDups.Delete(k)
		return 0
	}
	d.connDups = d.connDups.Set(k, n)
	return n
}

// Extract walks the graph once and builds the tagging substrate. Tag
// values come from the "tags" attribute of links typed act/tag; network
// membership from connect links, symmetric.
//
// Construction is a cold bulk build, so every persistent structure is
// assembled through transients — the top-level maps and one transient per
// tag's inner item index — and sealed before the Data is returned. The
// sealed maps are byte-identical (canonical trie shapes) to what
// persistent per-write assembly produces, at a fraction of the
// allocation.
func Extract(g *graph.Graph) *Data {
	d := NewData()
	network := d.Network.Transient()
	itemsOf := d.ItemsOf.Transient()
	tagsOf := d.tagsOf.Transient()
	inner := make(map[string]*persist.TMap[graph.NodeID, scoring.Set[graph.NodeID]])
	userSet := make(map[graph.NodeID]struct{})
	itemSet := make(map[graph.NodeID]struct{})
	for _, n := range g.NodesOfType(graph.TypeUser) {
		userSet[n.ID] = struct{}{}
		network.Set(n.ID, scoring.NewSet[graph.NodeID]())
		itemsOf.Set(n.ID, scoring.NewSet[graph.NodeID]())
		tagsOf.Set(n.ID, scoring.NewSet[string]())
	}
	for _, l := range g.Links() {
		switch {
		case l.HasType(graph.TypeConnect):
			if _, ok := userSet[l.Src]; !ok {
				continue
			}
			if _, ok := userSet[l.Tgt]; !ok {
				continue
			}
			if network.At(l.Src).Has(l.Tgt) {
				d.noteConnDup(edgeOf(l.Src, l.Tgt), 1)
				continue
			}
			// Cold build: every set in these transients was created a few
			// lines up — nothing here is published yet.
			network.At(l.Src).Add(l.Tgt) //sslint:ignore rcupublish fresh per-build set, Data not yet returned
			network.At(l.Tgt).Add(l.Src) //sslint:ignore rcupublish fresh per-build set, Data not yet returned
		case l.HasType(graph.SubtypeTag):
			tags := l.Attrs.All("tags")
			if len(tags) == 0 {
				continue
			}
			itemSet[l.Tgt] = struct{}{}
			if s, ok := itemsOf.Get(l.Src); ok {
				s.Add(l.Tgt) //sslint:ignore rcupublish fresh per-build set, Data not yet returned
			}
			for _, tag := range tags {
				if s, ok := tagsOf.Get(l.Src); ok {
					s.Add(tag) //sslint:ignore rcupublish fresh per-build set, Data not yet returned
				}
				byItem := inner[tag]
				if byItem == nil {
					byItem = NewItemTaggers().Transient()
					inner[tag] = byItem
				}
				set, ok := byItem.Get(l.Tgt)
				if !ok {
					set = scoring.NewSet[graph.NodeID]()
					byItem.Set(l.Tgt, set)
				}
				if set.Has(l.Src) {
					d.noteTagDup(taggingKey{tag, l.Tgt, l.Src}, 1)
					continue
				}
				set.Add(l.Src)
			}
		}
	}
	taggers := d.Taggers.Transient()
	for tag, byItem := range inner {
		taggers.Set(tag, byItem.Persistent()) // seal once per tag shard
	}
	d.Taggers = taggers.Persistent()
	d.Network = network.Persistent()
	d.ItemsOf = itemsOf.Persistent()
	d.tagsOf = tagsOf.Persistent()
	for u := range userSet {
		d.Users = append(d.Users, u)
	}
	sort.Slice(d.Users, func(i, j int) bool { return d.Users[i] < d.Users[j] })
	for i := range itemSet {
		d.Items = append(d.Items, i)
	}
	sort.Slice(d.Items, func(i, j int) bool { return d.Items[i] < d.Items[j] })
	d.Tags = d.Taggers.Keys()
	sort.Strings(d.Tags)
	return d
}

// ScoreTag computes the exact per-keyword score: f(|network(u) ∩
// taggers(i,k)|). Unknown users or tags score 0.
func (d *Data) ScoreTag(item, user graph.NodeID, tag string, f scoring.UserSetFn) float64 {
	byItem, ok := d.Taggers.Get(tag)
	if !ok {
		return 0
	}
	taggers, ok := byItem.Get(item)
	if !ok {
		return 0
	}
	net, ok := d.Network.Get(user)
	if !ok {
		return 0
	}
	return f(scoring.IntersectionSize(net, taggers))
}

// Score computes the exact combined score g(score_k1, ..., score_kn).
func (d *Data) Score(item, user graph.NodeID, tags []string,
	f scoring.UserSetFn, g scoring.AggregateFn) float64 {
	per := make([]float64, len(tags))
	for i, tag := range tags {
		per[i] = d.ScoreTag(item, user, tag, f)
	}
	return g(per)
}

// Result is one ranked item.
type Result struct {
	Item  graph.NodeID
	Score float64
}

// ExactTopK is the brute-force ground truth: score every item for the user
// and return the k best (ties broken by ascending item id).
func (d *Data) ExactTopK(user graph.NodeID, tags []string, k int,
	f scoring.UserSetFn, g scoring.AggregateFn) []Result {
	results := make([]Result, 0, len(d.Items))
	for _, item := range d.Items {
		if s := d.Score(item, user, tags, f, g); s > 0 {
			results = append(results, Result{item, s})
		}
	}
	sortResults(results)
	if k < len(results) {
		results = results[:k]
	}
	return results
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Item < rs[j].Item
	})
}
