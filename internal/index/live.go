// Incremental index maintenance: the live-update answer to the problem
// Section 6.2 defers ("index maintenance upon updates"). ApplyDelta folds
// a graph-mutation changelog into the posting lists without a rebuild,
// returning a new copy-on-write snapshot: the receiver — and every list,
// tagger set and network set it holds — is never modified, so in-flight
// queries keep reading a consistent version while writers advance.
//
// Snapshot cost is O(1): the substrate's top-level maps and the by-tag
// list index are persistent tries, so cowClone and the lists share copy
// only constant-size headers. Per-batch work is then proportional to the
// delta — the touched tag shards, posting lists and inner sets — never to
// the corpus.
//
// Maintenance preserves the two structural invariants Build establishes:
// every (cluster, tag) list stays sorted by descending stored score
// (ascending item id on ties), and every stored score equals the Equation
// 1 upper bound max_{u∈C} score_k(i, u) over the current substrate — which
// for additive mutations (new taggings, new connections) only grows, so
// entries are raised in place, while retractions recompute the exact
// cluster maximum for the affected (cluster, tag, item) cells.
//
// The clustering is treated as fixed: re-clustering cadence is the Data
// Manager's policy decision, mirroring the paper's separation of index
// maintenance from cluster maintenance. Users who arrive after the
// partition was built are placed by cluster.Clustering.WithUser.
package index

import (
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/persist"
	"socialscope/internal/scoring"
)

// ApplyDelta returns a new index snapshot with the mutation batch applied,
// leaving the receiver untouched (RCU-style copy-on-write: untouched lists
// and substrate sets are shared between versions, touched ones are copied
// before the first write). Mutations that do not concern the tagging
// substrate — item nodes, match/belong links, unknown endpoints — are
// ignored, exactly as Extract ignores them. The returned index has
// Version() one higher than the receiver.
//
// Changelogs produced by graph.RecordInto replay exactly: removing a node
// arrives as its incident link removals followed by the node removal, and
// link consolidations carry their pre-merge state so re-asserted
// activities are not double counted.
func (ix *Index) ApplyDelta(muts []graph.Mutation) *Index {
	ix.shared = true
	d := &delta{
		ix: &Index{
			data:       ix.data.cowClone(),
			clustering: ix.clustering,
			f:          ix.f,
			lists:      ix.lists, // persistent: O(1) share, COW below
			entries:    ix.entries,
			version:    ix.version + 1,
			shared:     true,
		},
		ownedLists:   make(map[listKey]bool),
		ownedTagSets: make(map[string]map[graph.NodeID]bool),
		ownedNets:    make(map[graph.NodeID]bool),
		ownedItems:   make(map[graph.NodeID]bool),
		ownedTags:    make(map[graph.NodeID]bool),
		userDelta:    make(map[graph.NodeID]bool),
		itemDelta:    make(map[graph.NodeID]bool),
		tagDelta:     make(map[string]bool),
	}
	// Adaptive bulk window: batches of BulkDeltaThreshold or more route
	// their map writes through a persist transient, so repeated writes
	// into the same trie region (hot tag shards, the same user's sets)
	// claim each node once instead of path-copying per mutation. Small
	// batches keep the pure persistent path — their O(delta · log n)
	// profile and allocation behavior are unchanged. Either way nothing
	// the receiver (or any older snapshot) can reach is ever mutated: the
	// edit token is born here, so every pre-existing node is claimed
	// (copied) on first touch, and the token dies when this call returns —
	// before the new index can be published to readers.
	if len(muts) >= BulkDeltaThreshold {
		d.edit = persist.NewEdit()
	}
	for _, m := range muts {
		d.apply(m)
	}
	// Flush the buffered universe edits in one merge pass per slice.
	// Per-mutation InsertSorted/RemoveSorted would copy the whole
	// universe per arriving user/item/tag — O(batch x universe) on
	// arrival-heavy catch-up batches; buffering keeps the slices
	// O(universe) once per batch. Membership decisions above never read
	// these slices (they consult the substrate maps), so deferral is
	// invisible inside the batch.
	d.ix.data.Users = persist.ApplySortedDelta(d.ix.data.Users, d.userDelta)
	d.ix.data.Items = persist.ApplySortedDelta(d.ix.data.Items, d.itemDelta)
	d.ix.data.Tags = persist.ApplySortedDelta(d.ix.data.Tags, d.tagDelta)
	return d.ix
}

// BulkDeltaThreshold is the ApplyDelta batch size at which delta
// application opens a transient window over the new snapshot's maps. It
// mirrors graph.BulkApplyThreshold so one Engine.Apply batch switches
// both layers together.
const BulkDeltaThreshold = graph.BulkApplyThreshold

// cowClone returns a Data sharing every structure with the receiver:
// persistent top-level maps, copy-on-write universe slices, and the inner
// tagger/network/item sets, which delta handlers copy before their first
// write. O(1) — the snapshot is a header copy. Both versions are marked
// as sharing inner structures so the in-place write APIs
// (Data.AddTagging) switch to their replace-not-mutate path.
func (d *Data) cowClone() *Data {
	d.sharedInner = true
	c := *d
	return &c
}

// delta tracks which shared leaf structures — posting slices and inner
// sets, the only mutable values below the persistent maps — the new
// snapshot already owns, so each is copied at most once per batch
// regardless of how many mutations touch it. The maps themselves need no
// tracking: they are persistent, copy-on-write by construction.
type delta struct {
	ix           *Index
	ownedLists   map[listKey]bool                 // individual posting slice owned
	ownedTagSets map[string]map[graph.NodeID]bool // Taggers[tag][item] set owned
	ownedNets    map[graph.NodeID]bool
	ownedItems   map[graph.NodeID]bool // ItemsOf[user] set owned
	ownedTags    map[graph.NodeID]bool // tagsOf[user] set owned
	// edit is the transient ownership token of a large batch (nil below
	// BulkDeltaThreshold: pure persistent writes). It never outlives the
	// ApplyDelta call that created it.
	edit *persist.Edit
	// userDelta/itemDelta/tagDelta buffer the batch's sorted-universe
	// edits (true = insert, false = remove; last write wins), flushed by
	// ApplyDelta in one merge per slice.
	userDelta map[graph.NodeID]bool
	itemDelta map[graph.NodeID]bool
	tagDelta  map[string]bool
}

func (d *delta) apply(m graph.Mutation) {
	switch m.Kind {
	case graph.MutAddNode, graph.MutPutNode:
		if m.Node != nil && m.Node.HasType(graph.TypeUser) {
			d.addUser(m.Node.ID)
		}
	case graph.MutAddLink:
		d.applyLinkAdd(m.Link, nil, true)
	case graph.MutPutLink:
		// A consolidation re-asserts everything the link already carried;
		// only the diff against the pre-merge state is new activity. With
		// no recorded Prev (hand-built mutation), treat the whole link as
		// an idempotent ensure: existing facts are not re-counted.
		d.applyLinkAdd(m.Link, m.Prev, m.Prev != nil)
	case graph.MutRemoveLink:
		d.applyLinkRemove(m.Link)
	case graph.MutRemoveNode:
		if m.Node == nil {
			return
		}
		if m.Node.HasType(graph.TypeUser) {
			d.removeUser(m.Node.ID)
		}
		// Roles are not exclusive: Extract indexes any tag-link target,
		// so a user node can itself be a tagged item. Retract that role
		// too.
		d.removeItem(m.Node.ID)
	}
}

func (d *delta) applyLinkAdd(l, prev *graph.Link, countDups bool) {
	if l == nil {
		return
	}
	if l.HasType(graph.TypeConnect) && (prev == nil || !prev.HasType(graph.TypeConnect)) {
		d.addConnect(l.Src, l.Tgt, countDups)
	}
	if l.HasType(graph.SubtypeTag) {
		var prevTags []string
		if prev != nil && prev.HasType(graph.SubtypeTag) {
			prevTags = prev.Attrs.All("tags")
		}
		remaining := make(map[string]int, len(prevTags))
		for _, t := range prevTags {
			remaining[t]++
		}
		for _, tag := range l.Attrs.All("tags") {
			if remaining[tag] > 0 {
				remaining[tag]-- // the link asserted this before the merge
				continue
			}
			d.addTagging(l.Src, l.Tgt, tag, countDups)
		}
	}
}

func (d *delta) applyLinkRemove(l *graph.Link) {
	if l == nil {
		return
	}
	if l.HasType(graph.TypeConnect) {
		d.removeConnect(l.Src, l.Tgt)
	}
	if l.HasType(graph.SubtypeTag) {
		for _, tag := range l.Attrs.All("tags") {
			d.removeTagging(l.Src, l.Tgt, tag)
		}
	}
}

// addTagging folds "user tagged item with tag" into the substrate and
// raises the affected entries — precisely (cluster(v), tag, item) for
// every v in the tagger's network, since a monotone f only grows when a
// tagger is added.
func (d *delta) addTagging(user, item graph.NodeID, tag string, countDup bool) {
	data := d.ix.data
	byItem, hadTag := data.Taggers.Get(tag)
	var set scoring.Set[graph.NodeID]
	hadItem := false
	if hadTag {
		set, hadItem = byItem.Get(item)
	}
	if hadItem && set.Has(user) {
		if countDup {
			data.noteTagDup(taggingKey{tag, item, user}, 1)
		}
		return
	}
	if !hadTag {
		d.tagDelta[tag] = true
	}
	if !hadItem {
		d.itemDelta[item] = true
	}
	set = d.ownTagSet(tag, item)
	set.Add(user)
	if data.ItemsOf.Has(user) {
		d.ownItemsOf(user).Add(item)
	}
	if data.tagsOf.Has(user) {
		d.ownTagsOf(user).Add(tag)
	}
	for v := range data.Network.At(user) {
		cid := d.ix.clustering.Of(v)
		if cid < 0 {
			continue
		}
		if s := data.ScoreTag(item, v, tag, d.ix.f); s > 0 {
			d.raise(listKey{cid, tag}, item, s)
		}
	}
}

// removeTagging retracts one assertion of "user tagged item with tag".
// Parallel assertions (other links stating the same fact) only decrement
// the refcount; retracting the last one shrinks the tagger set, so the
// affected cluster maxima are recomputed exactly.
func (d *delta) removeTagging(user, item graph.NodeID, tag string) {
	data := d.ix.data
	byItem, ok := data.Taggers.Get(tag)
	if !ok {
		return
	}
	set, ok := byItem.Get(item)
	if !ok || !set.Has(user) {
		return
	}
	key := taggingKey{tag, item, user}
	if data.tagDups.At(key) > 0 {
		data.noteTagDup(key, -1)
		return
	}
	set = d.ownTagSet(tag, item)
	set.Remove(user)
	emptied := set.Len() == 0
	if emptied {
		byItem, _ = data.Taggers.Get(tag) // re-read: ownTagSet rebound it
		byItem = byItem.DeleteWith(d.edit, item)
		if byItem.Len() == 0 {
			data.Taggers = data.Taggers.DeleteWith(d.edit, tag)
			d.tagDelta[tag] = false
		} else {
			data.Taggers = data.Taggers.SetWith(d.edit, tag, byItem)
		}
	}
	if s, ok := data.ItemsOf.Get(user); ok && s.Has(item) && !d.stillTags(user, item) {
		d.ownItemsOf(user).Remove(item)
	}
	if s, ok := data.tagsOf.Get(user); ok && s.Has(tag) && !d.stillUsesTag(user, tag) {
		d.ownTagsOf(user).Remove(tag)
	}
	// A non-empty tagger set proves the item is still tagged; the
	// vocabulary-wide scan is only needed once this (tag, item) cell
	// drained.
	if emptied && !d.itemTagged(item) {
		d.itemDelta[item] = false
	}
	for v := range data.Network.At(user) {
		cid := d.ix.clustering.Of(v)
		if cid < 0 {
			continue
		}
		d.recompute(listKey{cid, tag}, item)
	}
}

// addConnect folds a new undirected connection between two known users.
// Each endpoint's scores can only grow — by the other endpoint's taggings
// — so the affected entries are raised in place.
func (d *delta) addConnect(u, v graph.NodeID, countDup bool) {
	data := d.ix.data
	if !data.Network.Has(u) || !data.Network.Has(v) {
		return // mirror Extract: connections only between user nodes
	}
	if data.Network.At(u).Has(v) {
		if countDup {
			data.noteConnDup(edgeOf(u, v), 1)
		}
		return
	}
	d.ownNet(u).Add(v)
	d.ownNet(v).Add(u)
	d.raisePair(u, v)
	if u != v {
		d.raisePair(v, u)
	}
}

// removeConnect retracts one assertion of the connection between u and v.
func (d *delta) removeConnect(u, v graph.NodeID) {
	data := d.ix.data
	net, ok := data.Network.Get(u)
	if !ok || !net.Has(v) {
		return
	}
	key := edgeOf(u, v)
	if data.connDups.At(key) > 0 {
		data.noteConnDup(key, -1)
		return
	}
	d.ownNet(u).Remove(v)
	if u != v {
		d.ownNet(v).Remove(u)
	}
	d.recomputePair(u, v)
	if u != v {
		d.recomputePair(v, u)
	}
}

// tagsUsedBy returns the tags a user's maintenance loops must visit: the
// user's own tag profile when tracked, the full vocabulary otherwise
// (hand-built Data without profiles stays correct, just slower). The
// vocabulary comes from the Taggers map, not the Tags slice — slice
// maintenance is deferred to the end of the batch, while the map always
// reflects every mutation applied so far.
func (d *delta) tagsUsedBy(u graph.NodeID) []string {
	if s, ok := d.ix.data.tagsOf.Get(u); ok {
		out := make([]string, 0, s.Len())
		for tag := range s {
			out = append(out, tag)
		}
		return out
	}
	return d.ix.data.Taggers.Keys()
}

// raisePair raises x's entries for everything other tagged: x just gained
// other in its network, so score_tag(i, x) grew exactly for other's
// taggings. The loop visits only other's own tags × items, not the whole
// vocabulary.
func (d *delta) raisePair(x, other graph.NodeID) {
	data := d.ix.data
	cid := d.ix.clustering.Of(x)
	if cid < 0 {
		return
	}
	items := data.ItemsOf.At(other)
	if items == nil {
		return
	}
	for _, tag := range d.tagsUsedBy(other) {
		byItem := data.Taggers.At(tag)
		for item := range items {
			if !byItem.At(item).Has(other) {
				continue
			}
			if s := data.ScoreTag(item, x, tag, d.ix.f); s > 0 {
				d.raise(listKey{cid, tag}, item, s)
			}
		}
	}
}

// recomputePair recomputes x's cluster entries for everything other
// tagged: x just lost other from its network, so those scores may shrink.
func (d *delta) recomputePair(x, other graph.NodeID) {
	data := d.ix.data
	cid := d.ix.clustering.Of(x)
	if cid < 0 {
		return
	}
	items := data.ItemsOf.At(other)
	if items == nil {
		return
	}
	for _, tag := range d.tagsUsedBy(other) {
		byItem := data.Taggers.At(tag)
		for item := range items {
			if byItem.At(item).Has(other) {
				d.recompute(listKey{cid, tag}, item)
			}
		}
	}
}

// addUser registers a user who arrived after the index was built: empty
// network and item profile, placed into the (copy-on-write extended)
// clustering.
func (d *delta) addUser(u graph.NodeID) {
	data := d.ix.data
	if data.Network.Has(u) {
		return
	}
	data.Network = data.Network.SetWith(d.edit, u, scoring.NewSet[graph.NodeID]())
	data.ItemsOf = data.ItemsOf.SetWith(d.edit, u, scoring.NewSet[graph.NodeID]())
	data.tagsOf = data.tagsOf.SetWith(d.edit, u, scoring.NewSet[string]())
	d.ownedNets[u] = true
	d.ownedItems[u] = true
	d.ownedTags[u] = true
	d.userDelta[u] = true
	d.ix.clustering = d.ix.clustering.WithUser(u)
}

// removeUser retracts a user from the substrate. Changelogs produced by a
// recorder arrive with the user's incident links already removed; any
// facts still standing (hand-built streams) are retracted defensively
// first. The clustering keeps the departed member — a cluster's upper
// bound over a gone user is simply never the maximum again.
func (d *delta) removeUser(u graph.NodeID) {
	data := d.ix.data
	net, ok := data.Network.Get(u)
	if !ok {
		return
	}
	for _, v := range sortedMembers(net) {
		data.connDups = data.connDups.Delete(edgeOf(u, v))
		d.removeConnect(u, v)
	}
	if items := data.ItemsOf.At(u); items != nil {
		tags := append([]string(nil), d.tagsUsedBy(u)...)
		for _, item := range sortedMembers(items) {
			for _, tag := range tags {
				if data.Taggers.At(tag).At(item).Has(u) {
					data.tagDups = data.tagDups.Delete(taggingKey{tag, item, u})
					d.removeTagging(u, item, tag)
				}
			}
		}
	}
	data.Network = data.Network.DeleteWith(d.edit, u)
	data.ItemsOf = data.ItemsOf.DeleteWith(d.edit, u)
	data.tagsOf = data.tagsOf.DeleteWith(d.edit, u)
	d.userDelta[u] = false
}

// removeItem retracts every tagging of a removed non-user node. Recorded
// changelogs arrive with the node's incident tag links already removed
// (the cascade emits them first), making this a no-op; hand-built
// MutRemoveNode mutations rely on it so the index never serves postings
// for an item the graph no longer holds.
func (d *delta) removeItem(item graph.NodeID) {
	data := d.ix.data
	for _, tag := range data.Taggers.Keys() {
		set := data.Taggers.At(tag).At(item)
		if set == nil {
			continue
		}
		for _, u := range sortedMembers(set) {
			data.tagDups = data.tagDups.Delete(taggingKey{tag, item, u})
			d.removeTagging(u, item, tag)
		}
	}
}

// recompute re-derives one posting entry exactly as Build would: the
// maximum of f over the cluster members' intersection counts, present only
// when positive.
func (d *delta) recompute(k listKey, item graph.NodeID) {
	data := d.ix.data
	taggers := data.Taggers.At(k.tag).At(item)
	best := 0.0
	for _, m := range d.ix.clustering.Members(k.cluster) {
		net, ok := data.Network.Get(m)
		if !ok {
			continue
		}
		c := scoring.IntersectionSize(net, taggers)
		if c <= 0 {
			continue
		}
		if s := d.ix.f(c); s > best {
			best = s
		}
	}
	l, n := setEntry(d.ownList(k), item, best)
	d.storeList(k, l, n)
}

func (d *delta) raise(k listKey, item graph.NodeID, score float64) {
	l, n := raiseEntry(d.ownList(k), item, score)
	d.storeList(k, l, n)
}

func (d *delta) storeList(k listKey, l []Entry, entryDelta int) {
	shard, ok := d.ix.lists.Get(k.tag)
	switch {
	case len(l) == 0:
		if ok {
			shard = shard.DeleteWith(d.edit, k.cluster) // Build never stores empty lists
			if shard.Len() == 0 {
				d.ix.lists = d.ix.lists.DeleteWith(d.edit, k.tag)
			} else {
				d.ix.lists = d.ix.lists.SetWith(d.edit, k.tag, shard)
			}
		}
	default:
		if !ok {
			shard = newClusterLists()
		}
		d.ix.lists = d.ix.lists.SetWith(d.edit, k.tag, shard.SetWith(d.edit, k.cluster, l))
	}
	d.ix.entries += entryDelta
}

// ownList returns the posting list for k, copied from the shared parent
// version on first write. The enclosing shard and by-tag maps are
// persistent, so only the one slice is ever duplicated.
func (d *delta) ownList(k listKey) []Entry {
	l := d.ix.lists.At(k.tag).At(k.cluster)
	if d.ownedLists[k] {
		return l
	}
	d.ownedLists[k] = true
	if l == nil {
		return nil
	}
	c := make([]Entry, len(l))
	copy(c, l)
	return c
}

// ownTagSet returns Taggers[tag][item] as an owned set, creating the tag
// and item cells on demand and rebinding the persistent maps around them.
func (d *delta) ownTagSet(tag string, item graph.NodeID) scoring.Set[graph.NodeID] {
	data := d.ix.data
	byItem, hadTag := data.Taggers.Get(tag)
	if !hadTag {
		byItem = NewItemTaggers()
	}
	owned := d.ownedTagSets[tag]
	if owned == nil {
		owned = make(map[graph.NodeID]bool)
		d.ownedTagSets[tag] = owned
	}
	set, hadSet := byItem.Get(item)
	if hadSet && owned[item] {
		return set
	}
	owned[item] = true
	if !hadSet {
		set = scoring.NewSet[graph.NodeID]()
	} else {
		set = set.Clone()
	}
	data.Taggers = data.Taggers.SetWith(d.edit, tag, byItem.SetWith(d.edit, item, set))
	return set
}

func (d *delta) ownNet(u graph.NodeID) scoring.Set[graph.NodeID] {
	data := d.ix.data
	if d.ownedNets[u] {
		return data.Network.At(u)
	}
	d.ownedNets[u] = true
	s := data.Network.At(u)
	if s == nil {
		s = scoring.NewSet[graph.NodeID]()
	} else {
		s = s.Clone()
	}
	data.Network = data.Network.SetWith(d.edit, u, s)
	return s
}

func (d *delta) ownItemsOf(u graph.NodeID) scoring.Set[graph.NodeID] {
	data := d.ix.data
	if d.ownedItems[u] {
		return data.ItemsOf.At(u)
	}
	d.ownedItems[u] = true
	s := data.ItemsOf.At(u)
	if s == nil {
		s = scoring.NewSet[graph.NodeID]()
	} else {
		s = s.Clone()
	}
	data.ItemsOf = data.ItemsOf.SetWith(d.edit, u, s)
	return s
}

func (d *delta) ownTagsOf(u graph.NodeID) scoring.Set[string] {
	data := d.ix.data
	if d.ownedTags[u] {
		return data.tagsOf.At(u)
	}
	d.ownedTags[u] = true
	s := data.tagsOf.At(u)
	if s == nil {
		s = scoring.NewSet[string]()
	} else {
		s = s.Clone()
	}
	data.tagsOf = data.tagsOf.SetWith(d.edit, u, s)
	return s
}

// stillTags reports whether user still tags item under any tag.
func (d *delta) stillTags(user, item graph.NodeID) bool {
	for _, tag := range d.tagsUsedBy(user) {
		if d.ix.data.Taggers.At(tag).At(item).Has(user) {
			return true
		}
	}
	return false
}

// stillUsesTag reports whether user still tags anything with tag.
func (d *delta) stillUsesTag(user graph.NodeID, tag string) bool {
	byItem, ok := d.ix.data.Taggers.Get(tag)
	if !ok {
		return false
	}
	for item := range d.ix.data.ItemsOf.At(user) {
		if byItem.At(item).Has(user) {
			return true
		}
	}
	return false
}

// itemTagged reports whether any tagger remains for item under any tag.
func (d *delta) itemTagged(item graph.NodeID) bool {
	tagged := false
	d.ix.data.Taggers.Range(func(_ string, byItem ItemTaggers) bool {
		if s := byItem.At(item); s != nil && s.Len() > 0 {
			tagged = true
			return false
		}
		return true
	})
	return tagged
}

func sortedMembers(s scoring.Set[graph.NodeID]) []graph.NodeID {
	out := make([]graph.NodeID, 0, s.Len())
	for m := range s {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

