// Incremental index maintenance: the live-update answer to the problem
// Section 6.2 defers ("index maintenance upon updates"). ApplyDelta folds
// a graph-mutation changelog into the posting lists without a rebuild,
// returning a new copy-on-write snapshot: the receiver — and every list,
// tagger set and network set it holds — is never modified, so in-flight
// queries keep reading a consistent version while writers advance.
//
// Maintenance preserves the two structural invariants Build establishes:
// every (cluster, tag) list stays sorted by descending stored score
// (ascending item id on ties), and every stored score equals the Equation
// 1 upper bound max_{u∈C} score_k(i, u) over the current substrate — which
// for additive mutations (new taggings, new connections) only grows, so
// entries are raised in place, while retractions recompute the exact
// cluster maximum for the affected (cluster, tag, item) cells.
//
// The clustering is treated as fixed: re-clustering cadence is the Data
// Manager's policy decision, mirroring the paper's separation of index
// maintenance from cluster maintenance. Users who arrive after the
// partition was built are placed by cluster.Clustering.WithUser.
package index

import (
	"maps"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// ApplyDelta returns a new index snapshot with the mutation batch applied,
// leaving the receiver untouched (RCU-style copy-on-write: untouched lists
// and substrate sets are shared between versions, touched ones are copied
// before the first write). Mutations that do not concern the tagging
// substrate — item nodes, match/belong links, unknown endpoints — are
// ignored, exactly as Extract ignores them. The returned index has
// Version() one higher than the receiver.
//
// Changelogs produced by graph.RecordInto replay exactly: removing a node
// arrives as its incident link removals followed by the node removal, and
// link consolidations carry their pre-merge state so re-asserted
// activities are not double counted.
func (ix *Index) ApplyDelta(muts []graph.Mutation) *Index {
	ix.shared = true
	d := &delta{
		ix: &Index{
			data:       ix.data.cowClone(),
			clustering: ix.clustering,
			f:          ix.f,
			lists:      maps.Clone(ix.lists),
			entries:    ix.entries,
			version:    ix.version + 1,
			shared:     true,
		},
		ownedLists:   make(map[listKey]bool),
		ownedShards:  make(map[string]bool),
		ownedTaggers: make(map[string]bool),
		ownedTagSets: make(map[string]map[graph.NodeID]bool),
		ownedNets:    make(map[graph.NodeID]bool),
		ownedItems:   make(map[graph.NodeID]bool),
		ownedTags:    make(map[graph.NodeID]bool),
	}
	if d.ix.lists == nil {
		d.ix.lists = make(map[string]map[int][]Entry)
	}
	for _, m := range muts {
		d.apply(m)
	}
	return d.ix
}

// cowClone returns a Data whose top-level maps and slices are independent
// copies while the inner tagger/network/item sets stay shared with the
// receiver; delta handlers copy an inner set before its first write. Both
// versions are marked as sharing inner structures so the in-place write
// APIs (Data.AddTagging) switch to their replace-not-mutate path.
func (d *Data) cowClone() *Data {
	d.sharedInner = true
	c := &Data{
		sharedInner: true,
		Users:       append([]graph.NodeID(nil), d.Users...),
		Items:       append([]graph.NodeID(nil), d.Items...),
		Tags:        append([]string(nil), d.Tags...),
		Taggers:     maps.Clone(d.Taggers),
		Network:     maps.Clone(d.Network),
		ItemsOf:     maps.Clone(d.ItemsOf),
		tagsOf:      maps.Clone(d.tagsOf),
	}
	if c.Taggers == nil {
		c.Taggers = make(map[string]map[graph.NodeID]scoring.Set[graph.NodeID])
	}
	if c.Network == nil {
		c.Network = make(map[graph.NodeID]scoring.Set[graph.NodeID])
	}
	if c.ItemsOf == nil {
		c.ItemsOf = make(map[graph.NodeID]scoring.Set[graph.NodeID])
	}
	if c.tagsOf == nil {
		c.tagsOf = make(map[graph.NodeID]scoring.Set[string])
	}
	if len(d.tagDups) > 0 {
		c.tagDups = maps.Clone(d.tagDups)
	}
	if len(d.connDups) > 0 {
		c.connDups = maps.Clone(d.connDups)
	}
	return c
}

// delta tracks which shared structures the new snapshot already owns, so
// each is copied at most once per batch regardless of how many mutations
// touch it.
type delta struct {
	ix           *Index
	ownedLists   map[listKey]bool                 // individual posting slice owned
	ownedShards  map[string]bool                  // lists[tag] inner map owned
	ownedTaggers map[string]bool                  // Taggers[tag] inner map owned
	ownedTagSets map[string]map[graph.NodeID]bool // Taggers[tag][item] set owned
	ownedNets    map[graph.NodeID]bool
	ownedItems   map[graph.NodeID]bool // ItemsOf[user] set owned
	ownedTags    map[graph.NodeID]bool // tagsOf[user] set owned
}

func (d *delta) apply(m graph.Mutation) {
	switch m.Kind {
	case graph.MutAddNode, graph.MutPutNode:
		if m.Node != nil && m.Node.HasType(graph.TypeUser) {
			d.addUser(m.Node.ID)
		}
	case graph.MutAddLink:
		d.applyLinkAdd(m.Link, nil, true)
	case graph.MutPutLink:
		// A consolidation re-asserts everything the link already carried;
		// only the diff against the pre-merge state is new activity. With
		// no recorded Prev (hand-built mutation), treat the whole link as
		// an idempotent ensure: existing facts are not re-counted.
		d.applyLinkAdd(m.Link, m.Prev, m.Prev != nil)
	case graph.MutRemoveLink:
		d.applyLinkRemove(m.Link)
	case graph.MutRemoveNode:
		if m.Node == nil {
			return
		}
		if m.Node.HasType(graph.TypeUser) {
			d.removeUser(m.Node.ID)
		}
		// Roles are not exclusive: Extract indexes any tag-link target,
		// so a user node can itself be a tagged item. Retract that role
		// too.
		d.removeItem(m.Node.ID)
	}
}

func (d *delta) applyLinkAdd(l, prev *graph.Link, countDups bool) {
	if l == nil {
		return
	}
	if l.HasType(graph.TypeConnect) && (prev == nil || !prev.HasType(graph.TypeConnect)) {
		d.addConnect(l.Src, l.Tgt, countDups)
	}
	if l.HasType(graph.SubtypeTag) {
		var prevTags []string
		if prev != nil && prev.HasType(graph.SubtypeTag) {
			prevTags = prev.Attrs.All("tags")
		}
		remaining := make(map[string]int, len(prevTags))
		for _, t := range prevTags {
			remaining[t]++
		}
		for _, tag := range l.Attrs.All("tags") {
			if remaining[tag] > 0 {
				remaining[tag]-- // the link asserted this before the merge
				continue
			}
			d.addTagging(l.Src, l.Tgt, tag, countDups)
		}
	}
}

func (d *delta) applyLinkRemove(l *graph.Link) {
	if l == nil {
		return
	}
	if l.HasType(graph.TypeConnect) {
		d.removeConnect(l.Src, l.Tgt)
	}
	if l.HasType(graph.SubtypeTag) {
		for _, tag := range l.Attrs.All("tags") {
			d.removeTagging(l.Src, l.Tgt, tag)
		}
	}
}

// addTagging folds "user tagged item with tag" into the substrate and
// raises the affected entries — precisely (cluster(v), tag, item) for
// every v in the tagger's network, since a monotone f only grows when a
// tagger is added.
func (d *delta) addTagging(user, item graph.NodeID, tag string, countDup bool) {
	data := d.ix.data
	byItem := d.ownTaggers(tag)
	set, ok := byItem[item]
	if !ok {
		set = scoring.NewSet[graph.NodeID]()
		byItem[item] = set
		d.ownedTagSets[tag][item] = true
		insertID(&data.Items, item)
	}
	if set.Has(user) {
		if countDup {
			data.noteTagDup(taggingKey{tag, item, user}, 1)
		}
		return
	}
	set = d.ownTagSet(tag, item)
	set.Add(user)
	if _, ok := data.ItemsOf[user]; ok {
		d.ownItemsOf(user).Add(item)
	}
	if _, ok := data.tagsOf[user]; ok {
		d.ownTagsOf(user).Add(tag)
	}
	net := data.Network[user]
	for v := range net {
		cid := d.ix.clustering.Of(v)
		if cid < 0 {
			continue
		}
		if s := data.ScoreTag(item, v, tag, d.ix.f); s > 0 {
			d.raise(listKey{cid, tag}, item, s)
		}
	}
}

// removeTagging retracts one assertion of "user tagged item with tag".
// Parallel assertions (other links stating the same fact) only decrement
// the refcount; retracting the last one shrinks the tagger set, so the
// affected cluster maxima are recomputed exactly.
func (d *delta) removeTagging(user, item graph.NodeID, tag string) {
	data := d.ix.data
	byItem := data.Taggers[tag]
	if byItem == nil {
		return
	}
	set := byItem[item]
	if set == nil || !set.Has(user) {
		return
	}
	key := taggingKey{tag, item, user}
	if data.tagDups[key] > 0 {
		data.noteTagDup(key, -1)
		return
	}
	set = d.ownTagSet(tag, item)
	set.Remove(user)
	emptied := set.Len() == 0
	if emptied {
		byItem = d.ownTaggers(tag)
		delete(byItem, item)
		if len(byItem) == 0 {
			delete(data.Taggers, tag)
			removeString(&data.Tags, tag)
		}
	}
	if s, ok := data.ItemsOf[user]; ok && s.Has(item) && !d.stillTags(user, item) {
		d.ownItemsOf(user).Remove(item)
	}
	if s, ok := data.tagsOf[user]; ok && s.Has(tag) && !d.stillUsesTag(user, tag) {
		d.ownTagsOf(user).Remove(tag)
	}
	// A non-empty tagger set proves the item is still tagged; the
	// vocabulary-wide scan is only needed once this (tag, item) cell
	// drained.
	if emptied && !d.itemTagged(item) {
		removeID(&data.Items, item)
	}
	for v := range data.Network[user] {
		cid := d.ix.clustering.Of(v)
		if cid < 0 {
			continue
		}
		d.recompute(listKey{cid, tag}, item)
	}
}

// addConnect folds a new undirected connection between two known users.
// Each endpoint's scores can only grow — by the other endpoint's taggings
// — so the affected entries are raised in place.
func (d *delta) addConnect(u, v graph.NodeID, countDup bool) {
	data := d.ix.data
	if data.Network[u] == nil || data.Network[v] == nil {
		return // mirror Extract: connections only between user nodes
	}
	if data.Network[u].Has(v) {
		if countDup {
			data.noteConnDup(edgeOf(u, v), 1)
		}
		return
	}
	d.ownNet(u).Add(v)
	d.ownNet(v).Add(u)
	d.raisePair(u, v)
	if u != v {
		d.raisePair(v, u)
	}
}

// removeConnect retracts one assertion of the connection between u and v.
func (d *delta) removeConnect(u, v graph.NodeID) {
	data := d.ix.data
	if data.Network[u] == nil || !data.Network[u].Has(v) {
		return
	}
	key := edgeOf(u, v)
	if data.connDups[key] > 0 {
		data.noteConnDup(key, -1)
		return
	}
	d.ownNet(u).Remove(v)
	if u != v {
		d.ownNet(v).Remove(u)
	}
	d.recomputePair(u, v)
	if u != v {
		d.recomputePair(v, u)
	}
}

// tagsUsedBy returns the tags a user's maintenance loops must visit: the
// user's own tag profile when tracked, the full vocabulary otherwise
// (hand-built Data without profiles stays correct, just slower).
func (d *delta) tagsUsedBy(u graph.NodeID) []string {
	if s, ok := d.ix.data.tagsOf[u]; ok {
		out := make([]string, 0, s.Len())
		for tag := range s {
			out = append(out, tag)
		}
		return out
	}
	return d.ix.data.Tags
}

// raisePair raises x's entries for everything other tagged: x just gained
// other in its network, so score_tag(i, x) grew exactly for other's
// taggings. The loop visits only other's own tags × items, not the whole
// vocabulary.
func (d *delta) raisePair(x, other graph.NodeID) {
	data := d.ix.data
	cid := d.ix.clustering.Of(x)
	if cid < 0 {
		return
	}
	items := data.ItemsOf[other]
	if items == nil {
		return
	}
	for _, tag := range d.tagsUsedBy(other) {
		byItem := data.Taggers[tag]
		for item := range items {
			if !byItem[item].Has(other) {
				continue
			}
			if s := data.ScoreTag(item, x, tag, d.ix.f); s > 0 {
				d.raise(listKey{cid, tag}, item, s)
			}
		}
	}
}

// recomputePair recomputes x's cluster entries for everything other
// tagged: x just lost other from its network, so those scores may shrink.
func (d *delta) recomputePair(x, other graph.NodeID) {
	data := d.ix.data
	cid := d.ix.clustering.Of(x)
	if cid < 0 {
		return
	}
	items := data.ItemsOf[other]
	if items == nil {
		return
	}
	for _, tag := range d.tagsUsedBy(other) {
		byItem := data.Taggers[tag]
		for item := range items {
			if byItem[item].Has(other) {
				d.recompute(listKey{cid, tag}, item)
			}
		}
	}
}

// addUser registers a user who arrived after the index was built: empty
// network and item profile, placed into the (copy-on-write extended)
// clustering.
func (d *delta) addUser(u graph.NodeID) {
	data := d.ix.data
	if _, ok := data.Network[u]; ok {
		return
	}
	data.Network[u] = scoring.NewSet[graph.NodeID]()
	data.ItemsOf[u] = scoring.NewSet[graph.NodeID]()
	data.tagsOf[u] = scoring.NewSet[string]()
	d.ownedNets[u] = true
	d.ownedItems[u] = true
	d.ownedTags[u] = true
	insertID(&data.Users, u)
	d.ix.clustering = d.ix.clustering.WithUser(u)
}

// removeUser retracts a user from the substrate. Changelogs produced by a
// recorder arrive with the user's incident links already removed; any
// facts still standing (hand-built streams) are retracted defensively
// first. The clustering keeps the departed member — a cluster's upper
// bound over a gone user is simply never the maximum again.
func (d *delta) removeUser(u graph.NodeID) {
	data := d.ix.data
	net := data.Network[u]
	if net == nil {
		return
	}
	for _, v := range sortedMembers(net) {
		delete(data.connDups, edgeOf(u, v))
		d.removeConnect(u, v)
	}
	if items := data.ItemsOf[u]; items != nil {
		tags := append([]string(nil), d.tagsUsedBy(u)...)
		for _, item := range sortedMembers(items) {
			for _, tag := range tags {
				if data.Taggers[tag][item].Has(u) {
					delete(data.tagDups, taggingKey{tag, item, u})
					d.removeTagging(u, item, tag)
				}
			}
		}
	}
	delete(data.Network, u)
	delete(data.ItemsOf, u)
	delete(data.tagsOf, u)
	removeID(&data.Users, u)
}

// removeItem retracts every tagging of a removed non-user node. Recorded
// changelogs arrive with the node's incident tag links already removed
// (the cascade emits them first), making this a no-op; hand-built
// MutRemoveNode mutations rely on it so the index never serves postings
// for an item the graph no longer holds.
func (d *delta) removeItem(item graph.NodeID) {
	data := d.ix.data
	for _, tag := range append([]string(nil), data.Tags...) {
		set := data.Taggers[tag][item]
		if set == nil {
			continue
		}
		for _, u := range sortedMembers(set) {
			delete(data.tagDups, taggingKey{tag, item, u})
			d.removeTagging(u, item, tag)
		}
	}
}

// recompute re-derives one posting entry exactly as Build would: the
// maximum of f over the cluster members' intersection counts, present only
// when positive.
func (d *delta) recompute(k listKey, item graph.NodeID) {
	data := d.ix.data
	taggers := data.Taggers[k.tag][item]
	best := 0.0
	for _, m := range d.ix.clustering.Members(k.cluster) {
		net := data.Network[m]
		if net == nil {
			continue
		}
		c := scoring.IntersectionSize(net, taggers)
		if c <= 0 {
			continue
		}
		if s := d.ix.f(c); s > best {
			best = s
		}
	}
	l, n := setEntry(d.ownList(k), item, best)
	d.storeList(k, l, n)
}

func (d *delta) raise(k listKey, item graph.NodeID, score float64) {
	l, n := raiseEntry(d.ownList(k), item, score)
	d.storeList(k, l, n)
}

func (d *delta) storeList(k listKey, l []Entry, entryDelta int) {
	shard := d.ownShard(k.tag)
	if len(l) == 0 {
		delete(shard, k.cluster) // Build never stores empty lists
		if len(shard) == 0 {
			delete(d.ix.lists, k.tag)
		}
	} else {
		shard[k.cluster] = l
	}
	d.ix.entries += entryDelta
}

// ownShard returns the tag's cluster→list map, copied from the shared
// parent version on first write (the only per-delta clone whose size
// scales with the corpus is the outer by-tag map).
func (d *delta) ownShard(tag string) map[int][]Entry {
	byCluster := d.ix.lists[tag]
	if byCluster == nil {
		byCluster = make(map[int][]Entry)
		d.ix.lists[tag] = byCluster
		d.ownedShards[tag] = true
		return byCluster
	}
	if d.ownedShards[tag] {
		return byCluster
	}
	d.ownedShards[tag] = true
	c := maps.Clone(byCluster)
	d.ix.lists[tag] = c
	return c
}

// ownList returns the posting list for k, copied from the shared parent
// version on first write.
func (d *delta) ownList(k listKey) []Entry {
	shard := d.ownShard(k.tag)
	l := shard[k.cluster]
	if d.ownedLists[k] {
		return l
	}
	d.ownedLists[k] = true
	if l == nil {
		return nil
	}
	c := make([]Entry, len(l))
	copy(c, l)
	shard[k.cluster] = c
	return c
}

// ownTaggers returns Taggers[tag] as an owned map, creating tag on demand.
func (d *delta) ownTaggers(tag string) map[graph.NodeID]scoring.Set[graph.NodeID] {
	data := d.ix.data
	byItem, ok := data.Taggers[tag]
	if !ok {
		byItem = make(map[graph.NodeID]scoring.Set[graph.NodeID])
		data.Taggers[tag] = byItem
		d.ownedTaggers[tag] = true
		d.ownedTagSets[tag] = make(map[graph.NodeID]bool)
		insertString(&data.Tags, tag)
		return byItem
	}
	if d.ownedTaggers[tag] {
		return byItem
	}
	c := make(map[graph.NodeID]scoring.Set[graph.NodeID], len(byItem))
	for i, s := range byItem {
		c[i] = s
	}
	data.Taggers[tag] = c
	d.ownedTaggers[tag] = true
	if d.ownedTagSets[tag] == nil {
		d.ownedTagSets[tag] = make(map[graph.NodeID]bool)
	}
	return c
}

// ownTagSet returns Taggers[tag][item] as an owned set.
func (d *delta) ownTagSet(tag string, item graph.NodeID) scoring.Set[graph.NodeID] {
	byItem := d.ownTaggers(tag)
	set := byItem[item]
	if d.ownedTagSets[tag][item] {
		return set
	}
	d.ownedTagSets[tag][item] = true
	if set == nil {
		set = scoring.NewSet[graph.NodeID]()
	} else {
		set = set.Clone()
	}
	byItem[item] = set
	return set
}

func (d *delta) ownNet(u graph.NodeID) scoring.Set[graph.NodeID] {
	data := d.ix.data
	if d.ownedNets[u] {
		return data.Network[u]
	}
	d.ownedNets[u] = true
	s := data.Network[u]
	if s == nil {
		s = scoring.NewSet[graph.NodeID]()
	} else {
		s = s.Clone()
	}
	data.Network[u] = s
	return s
}

func (d *delta) ownItemsOf(u graph.NodeID) scoring.Set[graph.NodeID] {
	data := d.ix.data
	if d.ownedItems[u] {
		return data.ItemsOf[u]
	}
	d.ownedItems[u] = true
	s := data.ItemsOf[u]
	if s == nil {
		s = scoring.NewSet[graph.NodeID]()
	} else {
		s = s.Clone()
	}
	data.ItemsOf[u] = s
	return s
}

func (d *delta) ownTagsOf(u graph.NodeID) scoring.Set[string] {
	data := d.ix.data
	if d.ownedTags[u] {
		return data.tagsOf[u]
	}
	d.ownedTags[u] = true
	s := data.tagsOf[u]
	if s == nil {
		s = scoring.NewSet[string]()
	} else {
		s = s.Clone()
	}
	data.tagsOf[u] = s
	return s
}

// stillTags reports whether user still tags item under any tag.
func (d *delta) stillTags(user, item graph.NodeID) bool {
	for _, tag := range d.tagsUsedBy(user) {
		if d.ix.data.Taggers[tag][item].Has(user) {
			return true
		}
	}
	return false
}

// stillUsesTag reports whether user still tags anything with tag.
func (d *delta) stillUsesTag(user graph.NodeID, tag string) bool {
	byItem := d.ix.data.Taggers[tag]
	if byItem == nil {
		return false
	}
	for item := range d.ix.data.ItemsOf[user] {
		if byItem[item].Has(user) {
			return true
		}
	}
	return false
}

// itemTagged reports whether any tagger remains for item under any tag.
func (d *delta) itemTagged(item graph.NodeID) bool {
	for _, byItem := range d.ix.data.Taggers {
		if s := byItem[item]; s != nil && s.Len() > 0 {
			return true
		}
	}
	return false
}

func sortedMembers(s scoring.Set[graph.NodeID]) []graph.NodeID {
	out := make([]graph.NodeID, 0, s.Len())
	for m := range s {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func insertID(ids *[]graph.NodeID, id graph.NodeID) {
	s := *ids
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	*ids = s
}

func removeID(ids *[]graph.NodeID, id graph.NodeID) {
	s := *ids
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		*ids = append(s[:i], s[i+1:]...)
	}
}

func insertString(ss *[]string, v string) {
	s := *ss
	i := sort.SearchStrings(s, v)
	if i < len(s) && s[i] == v {
		return
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	*ss = s
}

func removeString(ss *[]string, v string) {
	s := *ss
	i := sort.SearchStrings(s, v)
	if i < len(s) && s[i] == v {
		*ss = append(s[:i], s[i+1:]...)
	}
}
