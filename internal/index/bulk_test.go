package index

import (
	"fmt"
	"math/rand"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// TestDifferentialBulkBatches drives batches past BulkDeltaThreshold —
// the size at which ApplyDelta switches its map writes onto a transient
// window — and holds the result to the same contract as every other
// batch: byte-identical to a from-scratch rebuild, with the pre-batch
// snapshot untouched.
func TestDifferentialBulkBatches(t *testing.T) {
	const (
		batches   = 6
		batchSize = 2 * BulkDeltaThreshold
	)
	if batchSize < BulkDeltaThreshold {
		t.Fatal("test batch size must trigger the bulk window")
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed*104729 + 3))
		c := newDiffCorpus(t, rng, 16, 22, 6)
		cl, err := cluster.Build(c.g, cluster.NetworkBased, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(Extract(c.g), cl, nil)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < batches; batch++ {
			prev := ix
			prevEntries := prev.EntryCount()
			frozen, err := Build(Extract(c.g.Clone()), prev.Clustering(), nil)
			if err != nil {
				t.Fatal(err)
			}
			muts := make([]graph.Mutation, batchSize)
			for i := range muts {
				muts[i] = c.randMutation(rng)
			}
			if err := c.g.ApplyAll(muts); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			ix = prev.ApplyDelta(muts)
			ctx := fmt.Sprintf("bulk seed %d batch %d", seed, batch)
			assertSorted(t, ix, ctx)
			rebuilt, err := Build(Extract(c.g), ix.Clustering(), nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameLists(t, ix, rebuilt, ctx)
			// The parent snapshot must not have observed the transient
			// window: same entry count, same lists as its frozen twin.
			if prev.EntryCount() != prevEntries {
				t.Fatalf("%s: parent entry count changed under bulk delta", ctx)
			}
			assertSameLists(t, prev, frozen, ctx+" (parent snapshot)")
		}
	}
}

// TestExtractMatchesIncremental pins the transient-built Extract to the
// incremental substrate path: folding a stream through AddTagging must
// land on the same substrate (scores, universes) as re-extracting the
// mutated graph, exactly as before the bulk rebase.
func TestExtractMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := newDiffCorpus(t, rng, 12, 16, 5)
	data := Extract(c.g)
	reext := Extract(c.g)
	// Fold 2*threshold fresh taggings both ways.
	for i := 0; i < 2*BulkDeltaThreshold; i++ {
		m := c.randTagging(rng)
		if err := c.g.ApplyAll([]graph.Mutation{m}); err != nil {
			t.Fatal(err)
		}
		l := m.Link
		for _, tag := range l.Attrs.All("tags") {
			data.AddTagging(l.Src, l.Tgt, tag)
		}
	}
	reext = Extract(c.g)
	if len(data.Users) != len(reext.Users) || len(data.Items) != len(reext.Items) ||
		len(data.Tags) != len(reext.Tags) {
		t.Fatalf("universes diverged: %d/%d users %d/%d items %d/%d tags",
			len(data.Users), len(reext.Users), len(data.Items), len(reext.Items),
			len(data.Tags), len(reext.Tags))
	}
	for _, tag := range reext.Tags {
		for _, item := range reext.Items {
			for _, u := range reext.Users[:min(len(reext.Users), 6)] {
				got := data.ScoreTag(item, u, tag, scoring.CountF)
				want := reext.ScoreTag(item, u, tag, scoring.CountF)
				if got != want {
					t.Fatalf("ScoreTag(%d,%d,%q) = %v incremental, %v re-extract",
						item, u, tag, got, want)
				}
			}
		}
	}
}
