package index

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

func TestAddTaggingUpdatesSubstrate(t *testing.T) {
	g := tagFixture(t)
	d := Extract(g)
	// User 1 (network {2,3}) tags item 13 with a brand-new tag.
	affected := d.AddTagging(1, 13, "newtag")
	if !reflect.DeepEqual(affected, []graph.NodeID{2, 3}) {
		t.Errorf("affected = %v, want [2 3]", affected)
	}
	if !d.Taggers.At("newtag").At(13).Has(1) {
		t.Error("tagger not recorded")
	}
	if !slices.Contains(d.Items, 13) {
		t.Error("item universe not extended")
	}
	found := false
	for _, tag := range d.Tags {
		if tag == "newtag" {
			found = true
		}
	}
	if !found {
		t.Error("tag universe not extended")
	}
	// Duplicate action changes nothing.
	if dup := d.AddTagging(1, 13, "newtag"); dup != nil {
		t.Errorf("duplicate tagging affected %v", dup)
	}
	// Score visible: user 2's network contains 1, who tagged 13.
	if got := d.ScoreTag(13, 2, "newtag", scoring.CountF); got != 1 {
		t.Errorf("score after update = %f", got)
	}
}

func TestApplyTaggingMatchesRebuild(t *testing.T) {
	for _, s := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased, cluster.Global} {
		g := tagFixture(t)
		d := Extract(g)
		cl, err := cluster.Build(g, s, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(d, cl, scoring.CountF)
		if err != nil {
			t.Fatal(err)
		}
		// Apply a series of new actions incrementally.
		actions := []struct {
			user, item graph.NodeID
			tag        string
		}{
			{1, 13, "go"}, {2, 12, "db"}, {4, 11, "db"}, {3, 13, "go"},
		}
		for _, a := range actions {
			affected := d.AddTagging(a.user, a.item, a.tag)
			if err := ix.ApplyTagging(a.user, a.item, a.tag, affected); err != nil {
				t.Fatal(err)
			}
		}
		// Rebuild from the updated substrate: lists must agree.
		rebuilt, err := Build(d, cl, scoring.CountF)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range d.Users {
			for _, tag := range d.Tags {
				got, want := ix.List(u, tag), rebuilt.List(u, tag)
				if len(got) != len(want) {
					t.Fatalf("%s: list (%d,%s) length %d vs rebuild %d",
						s, u, tag, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s: list (%d,%s)[%d] = %v, rebuild %v",
							s, u, tag, i, got[i], want[i])
					}
				}
			}
		}
		if ix.EntryCount() != rebuilt.EntryCount() {
			t.Errorf("%s: entry count %d vs rebuild %d", s, ix.EntryCount(), rebuilt.EntryCount())
		}
	}
}

// TestApplyTaggingDoesNotCorruptSnapshots pins the interaction between
// the legacy single-writer API and the copy-on-write snapshot lineage: a
// child produced by ApplyDelta shares inner structures with its parent,
// so an in-place ApplyTagging/AddTagging on the parent must replace the
// touched structures, never mutate them, or the child's answers change
// underneath its readers.
func TestApplyTaggingDoesNotCorruptSnapshots(t *testing.T) {
	g := tagFixture(t)
	d := Extract(g)
	cl, err := cluster.Build(g, cluster.NetworkBased, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := Build(d, cl, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	child := parent.ApplyDelta(nil) // shares every list and set with parent

	type frozenList struct {
		cluster int
		tag     string
		entries []Entry
	}
	freeze := func(ix *Index) []frozenList {
		var out []frozenList
		ix.ForEachList(func(cl int, tag string, l []Entry) {
			out = append(out, frozenList{cl, tag, append([]Entry(nil), l...)})
		})
		return out
	}
	want := freeze(child)
	childScore := child.Data().ScoreTag(13, 2, "go", scoring.CountF)

	// Mutate the parent through the legacy in-place path.
	for _, a := range []struct {
		user, item graph.NodeID
		tag        string
	}{{1, 13, "go"}, {2, 12, "db"}, {3, 13, "go"}} {
		affected := d.AddTagging(a.user, a.item, a.tag)
		if err := parent.ApplyTagging(a.user, a.item, a.tag, affected); err != nil {
			t.Fatal(err)
		}
	}

	if got := freeze(child); !reflect.DeepEqual(got, want) {
		t.Fatalf("parent ApplyTagging corrupted the child snapshot\n got %v\nwant %v", got, want)
	}
	if got := child.Data().ScoreTag(13, 2, "go", scoring.CountF); got != childScore {
		t.Errorf("child substrate changed: score %v, was %v", got, childScore)
	}
}

// TestApplyDeltaOnHandBuiltData pins the fallback path: Data constructed
// by hand (no tag profiles) must survive every mutation kind through
// ApplyDelta — in particular addUser, which populates the lazily created
// profile maps — with the full-vocabulary scan standing in for missing
// per-user tag profiles.
func TestApplyDeltaOnHandBuiltData(t *testing.T) {
	d := NewData()
	d.Users = []graph.NodeID{1, 2}
	d.Items = []graph.NodeID{10}
	d.Tags = []string{"go"}
	d.Taggers = d.Taggers.Set("go", NewItemTaggers().Set(10, scoring.NewSet[graph.NodeID](1)))
	d.Network = d.Network.Set(1, scoring.NewSet[graph.NodeID](2))
	d.Network = d.Network.Set(2, scoring.NewSet[graph.NodeID](1))
	d.ItemsOf = d.ItemsOf.Set(1, scoring.NewSet[graph.NodeID](10))
	d.ItemsOf = d.ItemsOf.Set(2, scoring.NewSet[graph.NodeID]())
	cl, err := cluster.BuildFromProfiles(d.Users, nil, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, cl, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	newUser := graph.NewNode(3, graph.TypeUser)
	conn := graph.NewLink(1, 3, 1, graph.TypeConnect)
	tagLink := graph.NewLink(2, 3, 10, graph.TypeAct, graph.SubtypeTag)
	tagLink.Attrs.Add("tags", "go")
	ix = ix.ApplyDelta([]graph.Mutation{
		{Kind: graph.MutAddNode, Node: newUser},
		{Kind: graph.MutAddLink, Link: conn},
		{Kind: graph.MutAddLink, Link: tagLink},
		{Kind: graph.MutRemoveLink, Link: tagLink.Clone()},
	})
	// After add+retract of user 3's tagging, user 1 scores item 10 only
	// through their own original tagging's visibility.
	if got := ix.Data().ScoreTag(10, 3, "go", scoring.CountF); got != 1 {
		t.Errorf("new user's score = %v, want 1 (sees user 1's tagging)", got)
	}
	if l := ix.List(3, "go"); len(l) != 1 || l[0].Item != 10 {
		t.Errorf("new user's list = %v, want one entry for item 10", l)
	}
}

func TestApplyTaggingRequiresSubstrateUpdate(t *testing.T) {
	g := tagFixture(t)
	d := Extract(g)
	cl, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, cl, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyTagging(1, 13, "never-added", []graph.NodeID{2}); err == nil {
		t.Error("ApplyTagging without AddTagging accepted")
	}
}

// Property: a stream of random incremental updates leaves the index
// identical to a fresh rebuild, and top-k answers identical to brute
// force.
func TestQuickIncrementalEqualsRebuild(t *testing.T) {
	f := func(seed int64) bool {
		g := randomTagGraph(seed, 8, 10, 3)
		d := Extract(g)
		cl, err := cluster.Build(g, cluster.NetworkBased, 0.4)
		if err != nil {
			return false
		}
		ix, err := Build(d, cl, scoring.CountF)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		tags := []string{"a", "b", "z"}
		for i := 0; i < 12; i++ {
			u := d.Users[rng.Intn(len(d.Users))]
			it := d.Items[rng.Intn(len(d.Items))]
			tag := tags[rng.Intn(len(tags))]
			affected := d.AddTagging(u, it, tag)
			if err := ix.ApplyTagging(u, it, tag, affected); err != nil {
				return false
			}
		}
		rebuilt, err := Build(d, cl, scoring.CountF)
		if err != nil {
			return false
		}
		if ix.EntryCount() != rebuilt.EntryCount() {
			return false
		}
		for _, u := range d.Users {
			for _, tag := range d.Tags {
				a, b := ix.List(u, tag), rebuilt.List(u, tag)
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
			want := d.ExactTopK(u, d.Tags, 3, scoring.CountF, scoring.SumG)
			got, _, err := ix.TopK(u, d.Tags, 3, scoring.SumG)
			if err != nil || !sameResults(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
