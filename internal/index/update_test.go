package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

func TestAddTaggingUpdatesSubstrate(t *testing.T) {
	g := tagFixture(t)
	d := Extract(g)
	// User 1 (network {2,3}) tags item 13 with a brand-new tag.
	affected := d.AddTagging(1, 13, "newtag")
	if !reflect.DeepEqual(affected, []graph.NodeID{2, 3}) {
		t.Errorf("affected = %v, want [2 3]", affected)
	}
	if !d.Taggers["newtag"][13].Has(1) {
		t.Error("tagger not recorded")
	}
	if !containsID(d.Items, 13) {
		t.Error("item universe not extended")
	}
	found := false
	for _, tag := range d.Tags {
		if tag == "newtag" {
			found = true
		}
	}
	if !found {
		t.Error("tag universe not extended")
	}
	// Duplicate action changes nothing.
	if dup := d.AddTagging(1, 13, "newtag"); dup != nil {
		t.Errorf("duplicate tagging affected %v", dup)
	}
	// Score visible: user 2's network contains 1, who tagged 13.
	if got := d.ScoreTag(13, 2, "newtag", scoring.CountF); got != 1 {
		t.Errorf("score after update = %f", got)
	}
}

func TestApplyTaggingMatchesRebuild(t *testing.T) {
	for _, s := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased, cluster.Global} {
		g := tagFixture(t)
		d := Extract(g)
		cl, err := cluster.Build(g, s, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(d, cl, scoring.CountF)
		if err != nil {
			t.Fatal(err)
		}
		// Apply a series of new actions incrementally.
		actions := []struct {
			user, item graph.NodeID
			tag        string
		}{
			{1, 13, "go"}, {2, 12, "db"}, {4, 11, "db"}, {3, 13, "go"},
		}
		for _, a := range actions {
			affected := d.AddTagging(a.user, a.item, a.tag)
			if err := ix.ApplyTagging(a.user, a.item, a.tag, affected); err != nil {
				t.Fatal(err)
			}
		}
		// Rebuild from the updated substrate: lists must agree.
		rebuilt, err := Build(d, cl, scoring.CountF)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range d.Users {
			for _, tag := range d.Tags {
				got, want := ix.List(u, tag), rebuilt.List(u, tag)
				if len(got) != len(want) {
					t.Fatalf("%s: list (%d,%s) length %d vs rebuild %d",
						s, u, tag, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s: list (%d,%s)[%d] = %v, rebuild %v",
							s, u, tag, i, got[i], want[i])
					}
				}
			}
		}
		if ix.EntryCount() != rebuilt.EntryCount() {
			t.Errorf("%s: entry count %d vs rebuild %d", s, ix.EntryCount(), rebuilt.EntryCount())
		}
	}
}

func TestApplyTaggingRequiresSubstrateUpdate(t *testing.T) {
	g := tagFixture(t)
	d := Extract(g)
	cl, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, cl, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyTagging(1, 13, "never-added", []graph.NodeID{2}); err == nil {
		t.Error("ApplyTagging without AddTagging accepted")
	}
}

// Property: a stream of random incremental updates leaves the index
// identical to a fresh rebuild, and top-k answers identical to brute
// force.
func TestQuickIncrementalEqualsRebuild(t *testing.T) {
	f := func(seed int64) bool {
		g := randomTagGraph(seed, 8, 10, 3)
		d := Extract(g)
		cl, err := cluster.Build(g, cluster.NetworkBased, 0.4)
		if err != nil {
			return false
		}
		ix, err := Build(d, cl, scoring.CountF)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		tags := []string{"a", "b", "z"}
		for i := 0; i < 12; i++ {
			u := d.Users[rng.Intn(len(d.Users))]
			it := d.Items[rng.Intn(len(d.Items))]
			tag := tags[rng.Intn(len(tags))]
			affected := d.AddTagging(u, it, tag)
			if err := ix.ApplyTagging(u, it, tag, affected); err != nil {
				return false
			}
		}
		rebuilt, err := Build(d, cl, scoring.CountF)
		if err != nil {
			return false
		}
		if ix.EntryCount() != rebuilt.EntryCount() {
			return false
		}
		for _, u := range d.Users {
			for _, tag := range d.Tags {
				a, b := ix.List(u, tag), rebuilt.List(u, tag)
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
			want := d.ExactTopK(u, d.Tags, 3, scoring.CountF, scoring.SumG)
			got, _, err := ix.TopK(u, d.Tags, 3, scoring.SumG)
			if err != nil || !sameResults(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
