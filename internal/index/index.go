package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/persist"
	"socialscope/internal/scoring"
)

// EntryBytes is the per-entry storage estimate the paper uses in its
// back-of-envelope index sizing ("assuming 10 bytes per index entry").
const EntryBytes = 10

// Entry is one posting: an item with its stored score. For singleton
// clusters the score is exact; otherwise it is the Equation 1 upper bound
// max_{u∈C} score_k(i,u).
type Entry struct {
	Item  graph.NodeID
	Score float64
}

type listKey struct {
	cluster int
	tag     string
}

// clusterLists is one tag's shard: cluster id → posting list, persistent.
type clusterLists = persist.Map[int, []Entry]

func newClusterLists() clusterLists { return persist.NewIntMap[int, []Entry]() }

// Index is a network-aware inverted index: one posting list per
// (cluster, tag), sorted by descending stored score. PerUser clustering
// reproduces the paper's IL^u_k exact index; Global clustering reproduces
// classic IR lists; intermediate clusterings realize the space/time
// trade-off of [5].
//
// Lists are sharded by tag — tag → cluster → postings — mirroring the
// build's work split. Both levels are persistent maps, so an ApplyDelta
// snapshot shares the whole index at O(1) cost and a write duplicates
// only the touched posting slice plus its trie paths — never a whole
// shard, whose size grows with the corpus under fine clusterings.
type Index struct {
	data       *Data
	clustering *cluster.Clustering
	f          scoring.UserSetFn
	lists      persist.Map[string, clusterLists]
	entries    int
	// version counts the ApplyDelta snapshots this index descends from:
	// Build produces version 0 and every ApplyDelta batch returns a new
	// index at version+1. Query processors stamp it into their Stats so a
	// live system can tell which snapshot answered a query.
	version uint64
	// shared is set once this index has been through ApplyDelta (as
	// parent or child): inner shard maps and posting slices may then be
	// shared across versions, so in-place maintenance (ApplyTagging) must
	// replace rather than mutate them.
	shared bool
}

// Build materializes the posting lists. For every tag and item it computes
// per-user exact scores by walking the taggers' reverse networks (touching
// only users who can score > 0), folds them into per-cluster maxima, and
// sorts each list by descending score. Tags are independent, so the build
// is sharded by tag across a worker pool sized to the machine; the result
// is deterministic regardless of worker count.
func Build(data *Data, clustering *cluster.Clustering, f scoring.UserSetFn) (*Index, error) {
	return BuildWithWorkers(data, clustering, f, 0)
}

// BuildWithWorkers is Build with an explicit worker-pool size. workers <= 0
// means GOMAXPROCS. workers == 1 is the sequential reference build.
func BuildWithWorkers(data *Data, clustering *cluster.Clustering, f scoring.UserSetFn,
	workers int) (*Index, error) {
	if data == nil || clustering == nil {
		return nil, fmt.Errorf("index: nil data or clustering")
	}
	if f == nil {
		f = scoring.CountF
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data.Tags) && len(data.Tags) > 0 {
		workers = len(data.Tags)
	}
	ix := &Index{data: data, clustering: clustering, f: f,
		lists: persist.NewStringMap[clusterLists]()}

	// Shard by tag: each worker builds the complete, sorted per-cluster
	// lists of its tags. Shards write into disjoint slots of a per-tag
	// result slice, so the merge below needs no locking and the final map
	// contents do not depend on scheduling.
	shards := make([]map[int][]Entry, len(data.Tags))
	var wg sync.WaitGroup
	tagCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range tagCh {
				shards[ti] = buildTagLists(data, clustering, f, data.Tags[ti])
			}
		}()
	}
	for ti := range data.Tags {
		tagCh <- ti
	}
	close(tagCh)
	wg.Wait()

	// Seal the shards into the two persistent levels through transients:
	// the by-tag map and each tag's cluster map are assembled with
	// in-place writes (one node claim per trie region instead of one path
	// copy per Set) and sealed — once per shard, once for the index —
	// before anything is published. Trie shapes are canonical, so the
	// result is byte-identical to a persistent-only assembly.
	lists := ix.lists.Transient()
	for ti, tag := range data.Tags {
		if len(shards[ti]) == 0 {
			continue
		}
		sh := newClusterLists().Transient()
		for cid, l := range shards[ti] {
			sh.Set(cid, l)
			ix.entries += len(l)
		}
		lists.Set(tag, sh.Persistent())
	}
	ix.lists = lists.Persistent()
	return ix, nil
}

// buildTagLists computes the sorted posting lists of one tag, keyed by
// cluster id.
func buildTagLists(data *Data, clustering *cluster.Clustering, f scoring.UserSetFn,
	tag string) map[int][]Entry {
	byItem := data.Taggers.At(tag)
	items := byItem.Keys()
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	lists := make(map[int][]Entry)
	for _, item := range items {
		taggers := byItem.At(item)
		// Count taggers within each potential querier's network (the
		// reverse network: who has the tagger in their network; symmetric,
		// so identical to Network, but keep the access pattern explicit).
		counts := make(map[graph.NodeID]int)
		for tg := range taggers {
			for u := range data.Network.At(tg) {
				counts[u]++
			}
		}
		// Fold into per-cluster maxima of f(count).
		maxima := make(map[int]float64)
		for u, c := range counts {
			cid := clustering.Of(u)
			if cid < 0 {
				continue
			}
			if s := f(c); s > maxima[cid] {
				maxima[cid] = s
			}
		}
		for cid, ub := range maxima {
			if ub > 0 {
				lists[cid] = append(lists[cid], Entry{item, ub})
			}
		}
	}
	for cid := range lists {
		l := lists[cid]
		sort.Slice(l, func(i, j int) bool {
			if l[i].Score != l[j].Score {
				return l[i].Score > l[j].Score
			}
			return l[i].Item < l[j].Item
		})
	}
	return lists
}

// Strategy returns the clustering strategy the index was built with.
func (ix *Index) Strategy() cluster.Strategy { return ix.clustering.Strategy }

// Data returns the tagging substrate the index was built over; query
// processors use it for exact rescoring (random access).
func (ix *Index) Data() *Data { return ix.data }

// UserFn returns the monotone per-keyword scoring function f the stored
// upper bounds were computed with.
func (ix *Index) UserFn() scoring.UserSetFn { return ix.f }

// Clustering returns the user partition backing the lists.
func (ix *Index) Clustering() *cluster.Clustering { return ix.clustering }

// EntryCount returns the number of postings stored.
func (ix *Index) EntryCount() int { return ix.entries }

// SizeBytes estimates storage at the paper's 10 bytes/entry.
func (ix *Index) SizeBytes() int64 { return int64(ix.entries) * EntryBytes }

// NumLists returns the number of non-empty posting lists.
func (ix *Index) NumLists() int {
	n := 0
	ix.lists.Range(func(_ string, byCluster clusterLists) bool {
		n += byCluster.Len()
		return true
	})
	return n
}

// Version returns the snapshot version: 0 for a fresh Build, incremented
// by every ApplyDelta batch.
func (ix *Index) Version() uint64 { return ix.version }

// AtVersion sets the snapshot version and returns the receiver. It is for
// build-time seeding only — a live engine rebuilding its index mid-stream
// aligns the fresh index with its own state version so the
// SnapshotVersion reported by queries never regresses. Never call it on
// an index that has been published to readers.
func (ix *Index) AtVersion(v uint64) *Index {
	ix.version = v
	return ix
}

// ForEachList visits every posting list in deterministic order (ascending
// tag, then cluster id). The callback must not retain or mutate the slice.
func (ix *Index) ForEachList(fn func(cluster int, tag string, l []Entry)) {
	tags := ix.lists.Keys()
	sort.Strings(tags)
	for _, tag := range tags {
		byCluster := ix.lists.At(tag)
		cids := byCluster.Keys()
		sort.Ints(cids)
		for _, cid := range cids {
			fn(cid, tag, byCluster.At(cid))
		}
	}
}

// List exposes the posting list for a (user, tag) pair — the list of the
// user's cluster. Nil when the user is unknown or the tag unindexed. The
// slice is the live posting list of the published index version.
//
//ss:immutable — callers must not mutate or reorder; copy first.
func (ix *Index) List(user graph.NodeID, tag string) []Entry {
	cid := ix.clustering.Of(user)
	if cid < 0 {
		return nil
	}
	return ix.lists.At(tag).At(cid)
}

// QueryStats reports the work a top-k evaluation performed, the currency in
// which Section 6.2 prices clustering ("score upper-bounds entail having to
// compute exact scores at query time").
type QueryStats struct {
	EntriesScanned int // postings read across all lists
	ExactScores    int // exact score_k computations (the rescoring overhead)
	Candidates     int // distinct items considered
}

// TopK answers a keyword-only query with the threshold algorithm: scan the
// per-tag lists of the user's cluster in stored-score order, fully rescore
// each new item exactly, and stop when the k-th exact score reaches the
// upper-bound threshold g(heads). Monotonicity of f and g plus the max
// upper bound make early termination safe; singleton clusters never
// rescore wastefully because rescored scores equal the stored ones.
//
// This is the single-shot §6.2 study API. The query-processor layer,
// internal/topk, carries the canonical TA loop (plus NRA and the
// exhaustive baseline) with richer work counters; it cannot be delegated
// to from here without an import cycle, so behavioral changes to the TA
// termination rule must be mirrored in topk.(*Processor).ta.
func (ix *Index) TopK(user graph.NodeID, tags []string, k int,
	g scoring.AggregateFn) ([]Result, QueryStats, error) {
	var stats QueryStats
	if k <= 0 {
		return nil, stats, fmt.Errorf("index: k must be positive, got %d", k)
	}
	if g == nil {
		g = scoring.SumG
	}
	cid := ix.clustering.Of(user)
	if cid < 0 {
		return nil, stats, fmt.Errorf("index: unknown user %d", user)
	}
	lists := make([][]Entry, len(tags))
	pos := make([]int, len(tags))
	for i, tag := range tags {
		lists[i] = ix.lists.At(tag).At(cid)
	}

	seen := make(map[graph.NodeID]struct{})
	var results []Result
	kth := 0.0
	heads := make([]float64, len(tags))

	for {
		advanced := false
		for i := range lists {
			if pos[i] >= len(lists[i]) {
				continue
			}
			e := lists[i][pos[i]]
			pos[i]++
			stats.EntriesScanned++
			advanced = true
			if _, dup := seen[e.Item]; !dup {
				seen[e.Item] = struct{}{}
				stats.Candidates++
				per := make([]float64, len(tags))
				for j, tag := range tags {
					per[j] = ix.data.ScoreTag(e.Item, user, tag, ix.f)
					stats.ExactScores++
				}
				if s := g(per); s > 0 {
					results = append(results, Result{e.Item, s})
				}
			}
		}
		if !advanced {
			break
		}
		// Threshold: the best possible score of any unseen item.
		for i := range lists {
			if pos[i] < len(lists[i]) {
				heads[i] = lists[i][pos[i]].Score
			} else {
				heads[i] = 0
			}
		}
		threshold := g(heads)
		if len(results) >= k {
			sortResults(results)
			results = results[:min(len(results), 4*k)] // bound the buffer
			kth = results[k-1].Score
			// Strict comparison: at equality an unseen item could still tie
			// the k-th score and win the ascending-item-id tie-break, so
			// draining continues until no unseen item can reach kth.
			if kth > threshold {
				break
			}
		}
	}
	sortResults(results)
	if k < len(results) {
		results = results[:k]
	}
	return results, stats, nil
}

// SizeReport summarizes an index build for the Section 6.2 tables.
type SizeReport struct {
	Strategy cluster.Strategy
	Theta    float64
	Clusters int
	Lists    int
	Entries  int
	Bytes    int64
}

// Report returns the index's size summary.
func (ix *Index) Report() SizeReport {
	return SizeReport{
		Strategy: ix.clustering.Strategy,
		Theta:    ix.clustering.Theta,
		Clusters: ix.clustering.NumClusters(),
		Lists:    ix.NumLists(),
		Entries:  ix.entries,
		Bytes:    ix.SizeBytes(),
	}
}
