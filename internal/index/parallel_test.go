package index

import (
	"reflect"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/scoring"
)

// TestParallelBuildDeterministic asserts the sharded build produces the
// same index as the sequential reference regardless of worker count.
func TestParallelBuildDeterministic(t *testing.T) {
	g := randomTagGraph(17, 50, 100, 9)
	d := Extract(g)
	for _, s := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased, cluster.Global} {
		cl, err := cluster.Build(g, s, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := BuildWithWorkers(d, cl, scoring.CountF, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8} {
			par, err := BuildWithWorkers(d, cl, scoring.CountF, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.EntryCount() != seq.EntryCount() || par.NumLists() != seq.NumLists() {
				t.Fatalf("%s workers=%d: entries/lists %d/%d, want %d/%d", s, workers,
					par.EntryCount(), par.NumLists(), seq.EntryCount(), seq.NumLists())
			}
			for _, u := range d.Users {
				for _, tag := range d.Tags {
					if !reflect.DeepEqual(par.List(u, tag), seq.List(u, tag)) {
						t.Fatalf("%s workers=%d: list (%d,%s) diverges", s, workers, u, tag)
					}
				}
			}
		}
	}
}

func TestBuildEmptyData(t *testing.T) {
	d := NewData()
	cl, err := cluster.BuildFromProfiles(nil, nil, cluster.Global, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 0 || ix.NumLists() != 0 {
		t.Errorf("empty build: %d entries, %d lists", ix.EntryCount(), ix.NumLists())
	}
}
