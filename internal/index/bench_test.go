package index

import (
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

func benchData(b *testing.B) (*Data, *graph.Graph) {
	b.Helper()
	g := randomTagGraph(42, 60, 120, 8)
	return Extract(g), g
}

func BenchmarkExtract(b *testing.B) {
	g := randomTagGraph(42, 60, 120, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(g)
	}
}

func BenchmarkBuildPerUser(b *testing.B) {
	d, g := benchData(b)
	c, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d, c, scoring.CountF); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	d, g := benchData(b)
	c, err := cluster.Build(g, cluster.NetworkBased, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(d, c, scoring.CountF)
	if err != nil {
		b.Fatal(err)
	}
	tags := d.Tags
	if len(tags) > 2 {
		tags = tags[:2]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.TopK(d.Users[i%len(d.Users)], tags, 10, scoring.SumG); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	d, g := benchData(b)
	c, err := cluster.Build(g, cluster.NetworkBased, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(d, c, scoring.CountF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := d.Users[i%len(d.Users)]
		it := d.Items[i%len(d.Items)]
		affected := d.AddTagging(u, it, "benchtag")
		if err := ix.ApplyTagging(u, it, "benchtag", affected); err != nil {
			b.Fatal(err)
		}
	}
}
