package index

import (
	"fmt"
	"math/rand"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// The differential harness: a live graph absorbs a random mutation stream
// while ApplyDelta maintains the index incrementally; after every batch
// the maintained index must be byte-identical — same lists, same order,
// same scores — to a from-scratch Build over the mutated graph. This is
// the executable statement of the maintenance contract: incremental ≡
// rebuild.

// diffCorpus is the mutable state of one differential run.
type diffCorpus struct {
	g     *graph.Graph
	users []graph.NodeID
	items []graph.NodeID
	tags  []string
	// present source links, by kind, for removal picks.
	tagLinks  []*graph.Link
	connLinks []*graph.Link
	nextLink  graph.LinkID
	nextNode  graph.NodeID
}

func newDiffCorpus(t *testing.T, rng *rand.Rand, users, items, tags int) *diffCorpus {
	t.Helper()
	c := &diffCorpus{g: graph.New()}
	for i := 0; i < users; i++ {
		c.nextNode++
		if err := c.g.AddNode(graph.NewNode(c.nextNode, graph.TypeUser)); err != nil {
			t.Fatal(err)
		}
		c.users = append(c.users, c.nextNode)
	}
	for i := 0; i < items; i++ {
		c.nextNode++
		if err := c.g.AddNode(graph.NewNode(c.nextNode, graph.TypeItem)); err != nil {
			t.Fatal(err)
		}
		c.items = append(c.items, c.nextNode)
	}
	for i := 0; i < tags; i++ {
		c.tags = append(c.tags, fmt.Sprintf("tag%02d", i))
	}
	// Seed activity so the initial Build is non-trivial.
	for i := 0; i < users*2; i++ {
		c.g.ApplyAll([]graph.Mutation{c.randConnect(rng)})
	}
	for i := 0; i < users*3; i++ {
		c.g.ApplyAll([]graph.Mutation{c.randTagging(rng)})
	}
	return c
}

func (c *diffCorpus) newTagLink(src, tgt graph.NodeID, tags ...string) *graph.Link {
	c.nextLink++
	l := graph.NewLink(c.nextLink, src, tgt, graph.TypeAct, graph.SubtypeTag)
	for _, tag := range tags {
		l.Attrs.Add("tags", tag)
	}
	c.tagLinks = append(c.tagLinks, l)
	return l
}

func (c *diffCorpus) randTagging(rng *rand.Rand) graph.Mutation {
	u := c.users[rng.Intn(len(c.users))]
	i := c.items[rng.Intn(len(c.items))]
	n := 1 + rng.Intn(2) // multi-tag links exercise the per-tag path
	tags := make([]string, 0, n)
	for len(tags) < n {
		tags = append(tags, c.tags[rng.Intn(len(c.tags))])
	}
	return graph.Mutation{Kind: graph.MutAddLink, Link: c.newTagLink(u, i, tags...)}
}

func (c *diffCorpus) randConnect(rng *rand.Rand) graph.Mutation {
	u := c.users[rng.Intn(len(c.users))]
	v := c.users[rng.Intn(len(c.users))]
	c.nextLink++
	l := graph.NewLink(c.nextLink, u, v, graph.TypeConnect, graph.SubtypeFriend)
	c.connLinks = append(c.connLinks, l)
	return graph.Mutation{Kind: graph.MutAddLink, Link: l}
}

// randMutation draws one mutation: mostly new taggings and connections
// (including deliberate parallel duplicates), with a steady stream of
// retractions and occasionally a brand-new item joining the site.
func (c *diffCorpus) randMutation(rng *rand.Rand) graph.Mutation {
	switch p := rng.Float64(); {
	case p < 0.40:
		return c.randTagging(rng)
	case p < 0.55:
		return c.randConnect(rng)
	case p < 0.60: // brand-new item, immediately tagged
		c.nextNode++
		c.items = append(c.items, c.nextNode)
		return graph.Mutation{Kind: graph.MutAddNode,
			Node: graph.NewNode(c.nextNode, graph.TypeItem)}
	case p < 0.65: // brand-new tag vocabulary entry
		tag := fmt.Sprintf("tag%02d", len(c.tags))
		c.tags = append(c.tags, tag)
		u := c.users[rng.Intn(len(c.users))]
		i := c.items[rng.Intn(len(c.items))]
		return graph.Mutation{Kind: graph.MutAddLink, Link: c.newTagLink(u, i, tag)}
	case p < 0.85 && len(c.tagLinks) > 0: // retract a tagging action
		i := rng.Intn(len(c.tagLinks))
		l := c.tagLinks[i]
		c.tagLinks = append(c.tagLinks[:i], c.tagLinks[i+1:]...)
		return graph.Mutation{Kind: graph.MutRemoveLink, Link: l.Clone()}
	case len(c.connLinks) > 0: // retract a connection
		i := rng.Intn(len(c.connLinks))
		l := c.connLinks[i]
		c.connLinks = append(c.connLinks[:i], c.connLinks[i+1:]...)
		return graph.Mutation{Kind: graph.MutRemoveLink, Link: l.Clone()}
	default:
		return c.randTagging(rng)
	}
}

// assertSameLists fails unless the two indexes hold byte-identical posting
// lists: same (cluster, tag) keys, same entries in the same order with the
// same scores.
func assertSameLists(t *testing.T, got, want *Index, ctx string) {
	t.Helper()
	if got.EntryCount() != want.EntryCount() {
		t.Fatalf("%s: entry count %d, want %d", ctx, got.EntryCount(), want.EntryCount())
	}
	if got.NumLists() != want.NumLists() {
		t.Fatalf("%s: list count %d, want %d", ctx, got.NumLists(), want.NumLists())
	}
	type key struct {
		cluster int
		tag     string
	}
	wantLists := make(map[key][]Entry, want.NumLists())
	want.ForEachList(func(cl int, tag string, l []Entry) {
		wantLists[key{cl, tag}] = l
	})
	got.ForEachList(func(cl int, tag string, l []Entry) {
		w, ok := wantLists[key{cl, tag}]
		if !ok {
			t.Fatalf("%s: maintained index has list (%d,%q) the rebuild lacks", ctx, cl, tag)
		}
		if len(w) != len(l) {
			t.Fatalf("%s: list (%d,%q) has %d entries, want %d\n got %v\nwant %v",
				ctx, cl, tag, len(l), len(w), l, w)
		}
		for i := range l {
			if l[i] != w[i] {
				t.Fatalf("%s: list (%d,%q) entry %d = %+v, want %+v",
					ctx, cl, tag, i, l[i], w[i])
			}
		}
	})
}

func assertSorted(t *testing.T, ix *Index, ctx string) {
	t.Helper()
	ix.ForEachList(func(cl int, tag string, l []Entry) {
		for i := 1; i < len(l); i++ {
			if less(l[i-1], l[i]) {
				t.Fatalf("%s: list (%d,%q) out of order at %d: %+v before %+v",
					ctx, cl, tag, i, l[i-1], l[i])
			}
			if l[i].Score <= 0 {
				t.Fatalf("%s: list (%d,%q) stores non-positive score %+v", ctx, cl, tag, l[i])
			}
		}
	})
}

// TestDifferentialIncrementalVsRebuild drives > 1000 random mutations per
// clustering strategy through ApplyDelta and cross-checks against a full
// rebuild after every batch.
func TestDifferentialIncrementalVsRebuild(t *testing.T) {
	const (
		batches   = 26
		batchSize = 8
		seeds     = 5
	)
	strategies := []struct {
		s     cluster.Strategy
		theta float64
	}{
		{cluster.PerUser, 0},
		{cluster.Global, 0},
		{cluster.NetworkBased, 0.25},
		{cluster.BehaviorBased, 0.4},
	}
	for _, sc := range strategies {
		sc := sc
		t.Run(sc.s.String(), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(seed*7919 + 17))
				c := newDiffCorpus(t, rng, 14, 20, 5)
				cl, err := cluster.Build(c.g, sc.s, sc.theta)
				if err != nil {
					t.Fatal(err)
				}
				ix, err := Build(Extract(c.g), cl, nil)
				if err != nil {
					t.Fatal(err)
				}
				for batch := 0; batch < batches; batch++ {
					muts := make([]graph.Mutation, batchSize)
					for i := range muts {
						muts[i] = c.randMutation(rng)
					}
					if err := c.g.ApplyAll(muts); err != nil {
						t.Fatalf("seed %d batch %d: %v", seed, batch, err)
					}
					ix = ix.ApplyDelta(muts)
					ctx := fmt.Sprintf("%s seed %d batch %d", sc.s, seed, batch)
					assertSorted(t, ix, ctx)
					rebuilt, err := Build(Extract(c.g), ix.Clustering(), nil)
					if err != nil {
						t.Fatal(err)
					}
					assertSameLists(t, ix, rebuilt, ctx)
				}
				if got, want := ix.Version(), uint64(batches); got != want {
					t.Errorf("seed %d: version %d, want %d", seed, got, want)
				}
			}
		})
	}
}

// TestDifferentialRecordedChangelog drives the same contract through the
// recorder: mutations are performed directly on the graph, the changelog
// is drained, and replaying it through ApplyDelta must match a rebuild.
// This covers consolidation (PutLink re-asserting and extending tag sets)
// and cascading node removal, which hand-built mutations above do not.
func TestDifferentialRecordedChangelog(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := newDiffCorpus(t, rng, 12, 16, 4)
	cl, err := cluster.Build(c.g, cluster.NetworkBased, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Extract(c.g), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	log := graph.RecordInto(c.g)

	step := func(ctx string, mutate func()) {
		t.Helper()
		mutate()
		ix = ix.ApplyDelta(log.Drain())
		rebuilt, err := Build(Extract(c.g), ix.Clustering(), nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameLists(t, ix, rebuilt, ctx)
	}

	// Consolidate an existing tag link: re-assert its tag and add one.
	target := c.tagLinks[0]
	step("putlink extends tags", func() {
		ext := target.Clone()
		ext.Attrs = graph.NewAttrs("tags", ext.Attrs.All("tags")[0], "tags", "brandnew")
		if err := c.g.PutLink(ext); err != nil {
			t.Fatal(err)
		}
	})
	// Remove the consolidated link: both its tags must retract.
	step("remove consolidated link", func() {
		c.g.RemoveLink(target.ID)
	})
	// A new user arrives, connects, and tags.
	var newcomer graph.NodeID
	step("new user joins", func() {
		c.nextNode++
		newcomer = c.nextNode
		if err := c.g.AddNode(graph.NewNode(newcomer, graph.TypeUser)); err != nil {
			t.Fatal(err)
		}
		c.nextLink++
		if err := c.g.AddLink(graph.NewLink(c.nextLink, newcomer, c.users[0], graph.TypeConnect)); err != nil {
			t.Fatal(err)
		}
		l := c.newTagLink(newcomer, c.items[0], c.tags[0])
		if err := c.g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	})
	// A heavy user quits: cascading removal of every incident link.
	step("user quits", func() {
		c.g.RemoveNode(c.users[1])
	})
	if ix.Version() != 4 {
		t.Errorf("version %d after 4 batches, want 4", ix.Version())
	}
}

// TestDifferentialHandBuiltItemRemoval covers the mutation shape a
// recorder never produces: a bare MutRemoveNode for a tagged item with no
// preceding link removals. ApplyDelta must retract the item's postings
// itself so the index never serves an item the graph no longer holds.
func TestDifferentialHandBuiltItemRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := newDiffCorpus(t, rng, 12, 15, 4)
	cl, err := cluster.Build(c.g, cluster.NetworkBased, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Extract(c.g), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an item that actually has postings.
	var victim graph.NodeID = -1
	ix.ForEachList(func(cl int, tag string, l []Entry) {
		if victim < 0 && len(l) > 0 {
			victim = l[0].Item
		}
	})
	if victim < 0 {
		t.Fatal("corpus has no postings")
	}
	muts := []graph.Mutation{{Kind: graph.MutRemoveNode, Node: graph.NewNode(victim, graph.TypeItem)}}
	if err := c.g.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	ix = ix.ApplyDelta(muts)
	rebuilt, err := Build(Extract(c.g), ix.Clustering(), nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLists(t, ix, rebuilt, "hand-built item removal")
	ix.ForEachList(func(cl int, tag string, l []Entry) {
		for _, e := range l {
			if e.Item == victim {
				t.Fatalf("ghost posting for removed item %d in (%d,%q)", victim, cl, tag)
			}
		}
	})
	for _, it := range ix.Data().Items {
		if it == victim {
			t.Errorf("removed item %d still in Items universe", victim)
		}
	}

	// Roles compose: a user node can itself be a tagged target. Removing
	// such a node must retract both its activity and its postings.
	guru := c.users[0]
	tagged := c.newTagLink(c.users[1], guru, c.tags[0])
	muts = []graph.Mutation{{Kind: graph.MutAddLink, Link: tagged}}
	if err := c.g.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	ix = ix.ApplyDelta(muts)
	muts = []graph.Mutation{{Kind: graph.MutRemoveNode, Node: graph.NewNode(guru, graph.TypeUser)}}
	if err := c.g.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	ix = ix.ApplyDelta(muts)
	rebuilt, err = Build(Extract(c.g), ix.Clustering(), nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLists(t, ix, rebuilt, "hand-built tagged-user removal")
}

// TestApplyDeltaIsCopyOnWrite pins the RCU contract: a snapshot taken
// before ApplyDelta must remain byte-identical afterwards, and answer
// queries from the old substrate.
func TestApplyDeltaIsCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newDiffCorpus(t, rng, 10, 12, 4)
	cl, err := cluster.Build(c.g, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Build(Extract(c.g), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Deep-freeze the old version's observable state.
	frozen, err := Build(Extract(c.g.Clone()), cl, nil)
	if err != nil {
		t.Fatal(err)
	}

	cur := old
	for i := 0; i < 20; i++ {
		muts := []graph.Mutation{c.randMutation(rng)}
		if err := c.g.ApplyAll(muts); err != nil {
			t.Fatal(err)
		}
		cur = cur.ApplyDelta(muts)
	}
	assertSameLists(t, old, frozen, "pre-delta snapshot")
	if old.Version() != 0 || cur.Version() != 20 {
		t.Errorf("versions old=%d cur=%d, want 0 and 20", old.Version(), cur.Version())
	}
	// The old snapshot still answers queries from its frozen substrate.
	for _, u := range c.users[:3] {
		gotOld, _, err := old.TopK(u, c.tags[:2], 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := frozen.Data().ExactTopK(u, c.tags[:2], 5, frozen.UserFn(), scoring.SumG)
		if len(gotOld) != len(want) {
			t.Fatalf("user %d: old snapshot returned %d results, want %d", u, len(gotOld), len(want))
		}
		for i := range want {
			if gotOld[i] != want[i] {
				t.Errorf("user %d rank %d: %+v, want %+v", u, i, gotOld[i], want[i])
			}
		}
	}
}

// TestDifferentialIDReuseAfterRemoval is the regression case for id
// recycling on the mutation path. Before high-water-mark id tracking,
// graph.IDSourceFor seeded from the *present* maxima, so removing the
// max-id user and then allocating a fresh one handed the retracted id
// back out — and the incremental index, keyed by node id, would alias
// the newcomer with the departed user's half-retracted facts (duplicate
// refcounts, cluster membership) and silently diverge from a rebuild.
// The scenario: a late-arriving user takes the top of the id space, tags
// a few items, departs (recorded cascade), and a fresh user joins
// tagging the same items. Incremental must stay byte-identical to a
// from-scratch rebuild throughout, and the fresh id must not be the
// retracted one.
func TestDifferentialIDReuseAfterRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := newDiffCorpus(t, rng, 10, 14, 4)
	cl, err := cluster.Build(c.g, cluster.NetworkBased, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Extract(c.g), cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	step := func(muts []graph.Mutation, ctx string) {
		t.Helper()
		ix = ix.ApplyDelta(muts)
		assertSorted(t, ix, ctx)
		rebuilt, err := Build(Extract(c.g), ix.Clustering(), nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameLists(t, ix, rebuilt, ctx)
	}

	// A newcomer claims the top of the node-id space and gets active.
	c.nextNode++
	maxUser := c.nextNode
	taggedItems := []graph.NodeID{c.items[0], c.items[3], c.items[7]}
	arrival := []graph.Mutation{
		{Kind: graph.MutAddNode, Node: graph.NewNode(maxUser, graph.TypeUser)},
	}
	{
		c.nextLink++
		l := graph.NewLink(c.nextLink, maxUser, c.users[0], graph.TypeConnect, graph.SubtypeFriend)
		arrival = append(arrival, graph.Mutation{Kind: graph.MutAddLink, Link: l})
	}
	for _, item := range taggedItems {
		arrival = append(arrival, graph.Mutation{Kind: graph.MutAddLink,
			Link: c.newTagLink(maxUser, item, c.tags[0])})
	}
	if err := c.g.ApplyAll(arrival); err != nil {
		t.Fatal(err)
	}
	step(arrival, "max-user arrival")

	// The newcomer departs: recorded cascade (incident link removals, then
	// the node removal), exactly what a live engine's changelog carries.
	log := graph.RecordInto(c.g)
	c.g.RemoveNode(maxUser)
	c.g.SetRecorder(nil)
	step(log.Drain(), "max-user removal")

	// Fresh-id allocation must not resurrect the retracted id.
	ids := graph.IDSourceFor(c.g)
	freshUser := ids.NextNode()
	if freshUser == maxUser {
		t.Fatalf("IDSource reused retracted node id %d", maxUser)
	}
	if freshUser <= maxUser {
		t.Fatalf("fresh user id %d not past high-water mark %d", freshUser, maxUser)
	}

	// The fresh user tags the same items with the same tag — the exact
	// shape that aliased under id reuse.
	rejoin := []graph.Mutation{
		{Kind: graph.MutAddNode, Node: graph.NewNode(freshUser, graph.TypeUser)},
	}
	{
		lid := ids.NextLink()
		l := graph.NewLink(lid, freshUser, c.users[1], graph.TypeConnect, graph.SubtypeFriend)
		rejoin = append(rejoin, graph.Mutation{Kind: graph.MutAddLink, Link: l})
	}
	for _, item := range taggedItems {
		lid := ids.NextLink()
		l := graph.NewLink(lid, freshUser, item, graph.TypeAct, graph.SubtypeTag)
		l.Attrs.Add("tags", c.tags[0])
		rejoin = append(rejoin, graph.Mutation{Kind: graph.MutAddLink, Link: l})
	}
	if err := c.g.ApplyAll(rejoin); err != nil {
		t.Fatal(err)
	}
	step(rejoin, "fresh-user rejoin")

	// The departed user must be fully gone from the substrate; the fresh
	// one fully present.
	data := ix.Data()
	for _, u := range data.Users {
		if u == maxUser {
			t.Errorf("retracted user %d still in substrate universe", maxUser)
		}
	}
	if data.Network.Has(maxUser) {
		t.Errorf("retracted user %d still has a network entry", maxUser)
	}
	if !data.Network.Has(freshUser) {
		t.Errorf("fresh user %d missing from substrate", freshUser)
	}
	if got := data.ScoreTag(taggedItems[0], c.users[1], c.tags[0], ix.UserFn()); got < 1 {
		t.Errorf("fresh user's tagging invisible to their connection: score %v", got)
	}
}
