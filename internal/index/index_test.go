package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// tagFixture builds a del.icio.us-style graph:
//
//	users 1..4; friendships 1-2, 1-3, 2-3, 3-4
//	items 11..13
//	tags: u2 tags 11 'go', u3 tags 11 'go' and 12 'go db', u4 tags 13 'db'
//
// For u1 (network {2,3}): score_go(11) = |{2,3}| = 2, score_go(12) = 1,
// score_db(12) = 1, everything else 0.
func tagFixture(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	users := make([]graph.NodeID, 5)
	for i := 1; i <= 4; i++ {
		users[i] = b.NodeWithID(graph.NodeID(i), []string{graph.TypeUser})
	}
	items := map[int]graph.NodeID{}
	for i := 11; i <= 13; i++ {
		items[i] = b.NodeWithID(graph.NodeID(i), []string{graph.TypeItem})
	}
	b.Link(1, 2, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(1, 3, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(2, 3, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(3, 4, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(2, 11, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	b.Link(3, 11, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	b.Link(3, 12, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go", "tags", "db")
	b.Link(4, 13, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "db")
	return b.Graph()
}

func TestExtract(t *testing.T) {
	d := Extract(tagFixture(t))
	if len(d.Users) != 4 || len(d.Items) != 3 {
		t.Fatalf("users=%v items=%v", d.Users, d.Items)
	}
	if !reflect.DeepEqual(d.Tags, []string{"db", "go"}) {
		t.Fatalf("tags = %v", d.Tags)
	}
	if d.Taggers.At("go").At(11).Len() != 2 {
		t.Errorf("taggers(11,go) = %d, want 2", d.Taggers.At("go").At(11).Len())
	}
	if !d.Network.At(1).Has(2) || !d.Network.At(1).Has(3) || d.Network.At(1).Has(4) {
		t.Errorf("network(1) = %v", d.Network.At(1))
	}
	if !d.Network.At(2).Has(1) {
		t.Error("network must be symmetric")
	}
	if !d.ItemsOf.At(3).Has(11) || !d.ItemsOf.At(3).Has(12) {
		t.Errorf("items(3) = %v", d.ItemsOf.At(3))
	}
}

func TestExactScores(t *testing.T) {
	d := Extract(tagFixture(t))
	cases := []struct {
		item graph.NodeID
		user graph.NodeID
		tag  string
		want float64
	}{
		{11, 1, "go", 2}, // friends 2 and 3 tagged 11 'go'
		{12, 1, "go", 1},
		{12, 1, "db", 1},
		{13, 1, "db", 0}, // tagger 4 not in u1's network
		{11, 4, "go", 1}, // u4's network {3}; 3 tagged 11
		{11, 1, "nosuch", 0},
		{99, 1, "go", 0},
	}
	for _, c := range cases {
		if got := d.ScoreTag(c.item, c.user, c.tag, scoring.CountF); got != c.want {
			t.Errorf("score_%s(%d,%d) = %f, want %f", c.tag, c.item, c.user, got, c.want)
		}
	}
	// Combined: score(12, u1, {go,db}) = 1+1 = 2.
	if got := d.Score(12, 1, []string{"go", "db"}, scoring.CountF, scoring.SumG); got != 2 {
		t.Errorf("combined score = %f", got)
	}
}

func TestExactTopK(t *testing.T) {
	d := Extract(tagFixture(t))
	top := d.ExactTopK(1, []string{"go", "db"}, 2, scoring.CountF, scoring.SumG)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// 11: 2 (go), 12: 1+1 = 2 — tie broken by item id: 11 first.
	if top[0].Item != 11 || top[1].Item != 12 || top[0].Score != 2 || top[1].Score != 2 {
		t.Errorf("top = %v", top)
	}
}

func buildIndex(t testing.TB, g *graph.Graph, s cluster.Strategy, theta float64) (*Data, *Index) {
	t.Helper()
	d := Extract(g)
	c, err := cluster.Build(g, s, theta)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, c, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	return d, ix
}

func TestPerUserIndexStoresExactScores(t *testing.T) {
	d, ix := buildIndex(t, tagFixture(t), cluster.PerUser, 0)
	for _, u := range d.Users {
		for _, tag := range d.Tags {
			for _, e := range ix.List(u, tag) {
				if exact := d.ScoreTag(e.Item, u, tag, scoring.CountF); e.Score != exact {
					t.Errorf("peruser list score (%d,%s,%d) = %f, exact %f",
						u, tag, e.Item, e.Score, exact)
				}
			}
		}
	}
}

func TestClusterUpperBoundAdmissible(t *testing.T) {
	for _, s := range []cluster.Strategy{NetworkStrategy(), cluster.BehaviorBased, cluster.Global} {
		d, ix := buildIndex(t, tagFixture(t), s, 0.3)
		for _, u := range d.Users {
			for _, tag := range d.Tags {
				// Stored score must dominate the user's exact score for
				// every item in the user's cluster list.
				listed := map[graph.NodeID]float64{}
				for _, e := range ix.List(u, tag) {
					listed[e.Item] = e.Score
				}
				for _, item := range d.Items {
					exact := d.ScoreTag(item, u, tag, scoring.CountF)
					if exact <= 0 {
						continue
					}
					ub, ok := listed[item]
					if !ok {
						t.Fatalf("%s: item %d with positive score missing from list (%d,%s)",
							s, item, u, tag)
					}
					if ub < exact {
						t.Errorf("%s: ub %f < exact %f for (%d,%s,%d)", s, ub, exact, u, tag, item)
					}
				}
			}
		}
	}
}

// NetworkStrategy is a tiny indirection so the test table reads naturally.
func NetworkStrategy() cluster.Strategy { return cluster.NetworkBased }

func TestTopKMatchesExactAcrossStrategies(t *testing.T) {
	g := tagFixture(t)
	d := Extract(g)
	for _, s := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased,
		cluster.BehaviorBased, cluster.Hybrid, cluster.Global} {
		_, ix := buildIndex(t, g, s, 0.3)
		for _, u := range d.Users {
			want := d.ExactTopK(u, []string{"go", "db"}, 3, scoring.CountF, scoring.SumG)
			got, _, err := ix.TopK(u, []string{"go", "db"}, 3, scoring.SumG)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(want, got) {
				t.Errorf("%s user %d: TopK = %v, exact = %v", s, u, got, want)
			}
		}
	}
}

func TestTopKStatsShowRescoringOverhead(t *testing.T) {
	g := tagFixture(t)
	_, per := buildIndex(t, g, cluster.PerUser, 0)
	_, glob := buildIndex(t, g, cluster.Global, 0)
	_, sPer, err := per.TopK(1, []string{"go"}, 1, scoring.SumG)
	if err != nil {
		t.Fatal(err)
	}
	_, sGlob, err := glob.TopK(1, []string{"go"}, 1, scoring.SumG)
	if err != nil {
		t.Fatal(err)
	}
	if sGlob.ExactScores < sPer.ExactScores {
		t.Errorf("global index should rescore at least as much: %d vs %d",
			sGlob.ExactScores, sPer.ExactScores)
	}
	if sPer.EntriesScanned == 0 || sPer.Candidates == 0 {
		t.Error("stats not populated")
	}
}

func TestIndexSizeOrdering(t *testing.T) {
	// Per-user indexes are at least as large as behavior-based clustered
	// ones, which are at least as large as the global index (the Section
	// 6.2 trade-off).
	g := tagFixture(t)
	_, per := buildIndex(t, g, cluster.PerUser, 0)
	_, beh := buildIndex(t, g, cluster.BehaviorBased, 0.3)
	_, glob := buildIndex(t, g, cluster.Global, 0)
	if per.EntryCount() < beh.EntryCount() || beh.EntryCount() < glob.EntryCount() {
		t.Errorf("size ordering violated: per=%d behavior=%d global=%d",
			per.EntryCount(), beh.EntryCount(), glob.EntryCount())
	}
	if per.SizeBytes() != int64(per.EntryCount())*EntryBytes {
		t.Error("SizeBytes inconsistent with EntryCount")
	}
	r := per.Report()
	if r.Entries != per.EntryCount() || r.Strategy != cluster.PerUser {
		t.Errorf("report = %+v", r)
	}
	if per.NumLists() == 0 || per.Strategy() != cluster.PerUser {
		t.Error("NumLists/Strategy accessors broken")
	}
}

func TestTopKErrors(t *testing.T) {
	g := tagFixture(t)
	_, ix := buildIndex(t, g, cluster.PerUser, 0)
	if _, _, err := ix.TopK(1, []string{"go"}, 0, scoring.SumG); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.TopK(999, []string{"go"}, 1, scoring.SumG); err == nil {
		t.Error("unknown user accepted")
	}
	if _, err := Build(nil, nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
	// Unindexed tags are silently empty lists.
	got, _, err := ix.TopK(1, []string{"nosuch"}, 2, scoring.SumG)
	if err != nil || len(got) != 0 {
		t.Errorf("unindexed tag: %v, %v", got, err)
	}
	if ix.List(999, "go") != nil {
		t.Error("unknown user List should be nil")
	}
}

// randomTagGraph generates a random tagging site.
func randomTagGraph(seed int64, nUsers, nItems, nTags int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	users := make([]graph.NodeID, nUsers)
	for i := range users {
		users[i] = b.Node([]string{graph.TypeUser})
	}
	items := make([]graph.NodeID, nItems)
	for i := range items {
		items[i] = b.Node([]string{graph.TypeItem})
	}
	tags := make([]string, nTags)
	for i := range tags {
		tags[i] = string(rune('a' + i))
	}
	for i, u := range users {
		for j := i + 1; j < len(users); j++ {
			if rng.Intn(3) == 0 {
				b.Link(u, users[j], []string{graph.TypeConnect, graph.SubtypeFriend})
			}
		}
		for _, it := range items {
			if rng.Intn(3) == 0 {
				b.Link(u, it, []string{graph.TypeAct, graph.SubtypeTag},
					"tags", tags[rng.Intn(nTags)])
			}
		}
	}
	return b.Graph()
}

// Property: for every strategy and θ, TopK over the clustered index equals
// brute force — upper bounds plus rescoring never change answers.
func TestQuickTopKCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		g := randomTagGraph(seed, 8, 10, 3)
		d := Extract(g)
		if len(d.Tags) == 0 {
			return true
		}
		queryTags := d.Tags
		if len(queryTags) > 2 {
			queryTags = queryTags[:2]
		}
		for _, s := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased,
			cluster.BehaviorBased, cluster.Global} {
			c, err := cluster.Build(g, s, 0.4)
			if err != nil {
				return false
			}
			ix, err := Build(d, c, scoring.CountF)
			if err != nil {
				return false
			}
			for _, u := range d.Users {
				want := d.ExactTopK(u, queryTags, 3, scoring.CountF, scoring.SumG)
				got, _, err := ix.TopK(u, queryTags, 3, scoring.SumG)
				if err != nil {
					return false
				}
				if !sameResults(want, got) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: entry counts never increase as clustering coarsens from
// per-user through behavior-based to global.
func TestQuickSizeMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		g := randomTagGraph(seed, 8, 10, 3)
		d := Extract(g)
		sizes := make([]int, 0, 3)
		for _, s := range []cluster.Strategy{cluster.PerUser, cluster.BehaviorBased, cluster.Global} {
			c, err := cluster.Build(g, s, 0.4)
			if err != nil {
				return false
			}
			ix, err := Build(d, c, scoring.CountF)
			if err != nil {
				return false
			}
			sizes = append(sizes, ix.EntryCount())
		}
		return sizes[0] >= sizes[1] && sizes[1] >= sizes[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// sameResults treats nil and empty result slices as equal.
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
