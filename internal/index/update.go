package index

import (
	"fmt"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/persist"
	"socialscope/internal/scoring"
)

// AddTagging folds a new tagging action into the substrate: user tagged
// item with tag. It returns the users whose score for (item, tag) may have
// changed — precisely the tagger's network — so callers can refresh
// derived structures incrementally.
//
// Once the Data has been through an ApplyDelta snapshot, the write turns
// copy-on-write at the inner-structure level: the touched tagger map and
// sets are replaced with copies rather than mutated, so sibling versions
// sharing them are never modified underneath their readers. A sole-owner
// Data (never snapshotted) keeps the cheap in-place insert.
func (d *Data) AddTagging(user, item graph.NodeID, tag string) []graph.NodeID {
	byItem, ok := d.Taggers.Get(tag)
	if !ok {
		byItem = NewItemTaggers()
		d.Taggers = d.Taggers.Set(tag, byItem)
		d.Tags = persist.InsertSorted(d.Tags, tag)
	}
	set, ok := byItem.Get(item)
	switch {
	case !ok:
		set = scoring.NewSet[graph.NodeID]()
		d.Taggers = d.Taggers.Set(tag, byItem.Set(item, set))
		d.Items = persist.InsertSorted(d.Items, item)
	case d.sharedInner:
		set = set.Clone()
		d.Taggers = d.Taggers.Set(tag, byItem.Set(item, set))
	}
	if set.Has(user) {
		d.noteTagDup(taggingKey{tag, item, user}, 1)
		return nil // duplicate action: scores unchanged
	}
	set.Add(user)
	if s, ok := d.ItemsOf.Get(user); ok {
		if d.sharedInner {
			s = s.Clone()
			d.ItemsOf = d.ItemsOf.Set(user, s)
		}
		s.Add(item)
	}
	if s, ok := d.tagsOf.Get(user); ok {
		if d.sharedInner {
			s = s.Clone()
			d.tagsOf = d.tagsOf.Set(user, s)
		}
		s.Add(tag)
	}
	net, ok := d.Network.Get(user)
	if !ok {
		return nil
	}
	affected := make([]graph.NodeID, 0, net.Len())
	for v := range net {
		affected = append(affected, v)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return affected
}

// ApplyTagging incrementally maintains the index after a new tagging
// action has been folded into the substrate via Data.AddTagging. Because
// scores under a monotone f only grow when taggers are added, the stored
// per-cluster maximum can be raised in place without a rebuild: for every
// affected user v (the tagger's network), the entry for (cluster(v), tag,
// item) is set to max(current, score_tag(item, v)).
//
// The clustering itself is treated as fixed — re-clustering cadence is the
// Data Manager's policy decision, mirroring Section 6.2's separation of
// index maintenance from cluster maintenance.
//
// Like Data.AddTagging, the update turns copy-on-write below the receiver
// once the index has been through an ApplyDelta snapshot: the tag's shard
// map and every touched posting list are then replaced with copies, never
// mutated, so sibling versions keep their lists intact. (The receiver
// itself changes in place — this is the single-writer study API; the
// snapshot-per-batch API is ApplyDelta.)
func (ix *Index) ApplyTagging(user, item graph.NodeID, tag string, affected []graph.NodeID) error {
	if !ix.data.Taggers.At(tag).At(item).Has(user) {
		return fmt.Errorf("index: ApplyTagging before Data.AddTagging for (%d,%d,%s)", user, item, tag)
	}
	shard, ok := ix.lists.Get(tag)
	if !ok {
		shard = newClusterLists()
	}
	touched := false
	owned := make(map[int]bool)
	for _, v := range affected {
		cid := ix.clustering.Of(v)
		if cid < 0 {
			continue
		}
		score := ix.data.ScoreTag(item, v, tag, ix.f)
		if score <= 0 {
			continue
		}
		l := shard.At(cid)
		if ix.shared && !owned[cid] {
			l = append([]Entry(nil), l...)
		}
		owned[cid] = true
		l, added := raiseEntry(l, item, score)
		shard = shard.Set(cid, l)
		touched = true
		ix.entries += added
	}
	if touched {
		ix.lists = ix.lists.Set(tag, shard)
	}
	return nil
}

// raiseEntry lifts item's entry to at least score (inserting when absent),
// preserving descending-score, ascending-id order. It returns the list and
// the entry-count delta (1 on insert, else 0). The slice is mutated in
// place; callers on the copy-on-write path must own it first.
func raiseEntry(l []Entry, item graph.NodeID, score float64) ([]Entry, int) {
	for i := range l {
		if l[i].Item != item {
			continue
		}
		if l[i].Score >= score {
			return l, 0
		}
		l[i].Score = score
		// Bubble the raised entry toward the front to restore order.
		for i > 0 && less(l[i-1], l[i]) {
			l[i-1], l[i] = l[i], l[i-1]
			i--
		}
		return l, 0
	}
	l = append(l, Entry{item, score})
	i := len(l) - 1
	for i > 0 && less(l[i-1], l[i]) {
		l[i-1], l[i] = l[i], l[i-1]
		i--
	}
	return l, 1
}

// setEntry pins item's entry to exactly score — removing it when score is
// not positive, matching Build's "entries exist only for positive upper
// bounds" invariant — and restores order in either direction (scores can
// fall after a retraction). It returns the list and the entry-count delta.
func setEntry(l []Entry, item graph.NodeID, score float64) ([]Entry, int) {
	for i := range l {
		if l[i].Item != item {
			continue
		}
		if score <= 0 {
			return append(l[:i], l[i+1:]...), -1
		}
		if l[i].Score == score {
			return l, 0
		}
		l[i].Score = score
		for i > 0 && less(l[i-1], l[i]) {
			l[i-1], l[i] = l[i], l[i-1]
			i--
		}
		for i+1 < len(l) && less(l[i], l[i+1]) {
			l[i], l[i+1] = l[i+1], l[i]
			i++
		}
		return l, 0
	}
	if score <= 0 {
		return l, 0
	}
	return raiseEntry(l, item, score)
}

// less reports whether a should sort after b (descending score, ascending
// item id).
func less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

