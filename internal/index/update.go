package index

import (
	"fmt"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// AddTagging folds a new tagging action into the substrate: user tagged
// item with tag. It returns the users whose score for (item, tag) may have
// changed — precisely the tagger's network — so callers can refresh
// derived structures incrementally.
func (d *Data) AddTagging(user, item graph.NodeID, tag string) []graph.NodeID {
	byItem, ok := d.Taggers[tag]
	if !ok {
		byItem = make(map[graph.NodeID]scoring.Set[graph.NodeID])
		d.Taggers[tag] = byItem
		d.Tags = append(d.Tags, tag)
		sort.Strings(d.Tags)
	}
	set, ok := byItem[item]
	if !ok {
		set = scoring.NewSet[graph.NodeID]()
		byItem[item] = set
		if !containsID(d.Items, item) {
			d.Items = append(d.Items, item)
			sort.Slice(d.Items, func(i, j int) bool { return d.Items[i] < d.Items[j] })
		}
	}
	if set.Has(user) {
		return nil // duplicate action: scores unchanged
	}
	set.Add(user)
	if s, ok := d.ItemsOf[user]; ok {
		s.Add(item)
	}
	net, ok := d.Network[user]
	if !ok {
		return nil
	}
	affected := make([]graph.NodeID, 0, net.Len())
	for v := range net {
		affected = append(affected, v)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return affected
}

// ApplyTagging incrementally maintains the index after a new tagging
// action has been folded into the substrate via Data.AddTagging. Because
// scores under a monotone f only grow when taggers are added, the stored
// per-cluster maximum can be raised in place without a rebuild: for every
// affected user v (the tagger's network), the entry for (cluster(v), tag,
// item) is set to max(current, score_tag(item, v)).
//
// The clustering itself is treated as fixed — re-clustering cadence is the
// Data Manager's policy decision, mirroring Section 6.2's separation of
// index maintenance from cluster maintenance.
func (ix *Index) ApplyTagging(user, item graph.NodeID, tag string, affected []graph.NodeID) error {
	if ix.data.Taggers[tag] == nil || !ix.data.Taggers[tag][item].Has(user) {
		return fmt.Errorf("index: ApplyTagging before Data.AddTagging for (%d,%d,%s)", user, item, tag)
	}
	for _, v := range affected {
		cid := ix.clustering.Of(v)
		if cid < 0 {
			continue
		}
		score := ix.data.ScoreTag(item, v, tag, ix.f)
		if score <= 0 {
			continue
		}
		ix.raise(listKey{cid, tag}, item, score)
	}
	return nil
}

// raise sets the entry for item in the list to at least score, inserting
// if absent, and restores descending-score order around the touched entry.
func (ix *Index) raise(k listKey, item graph.NodeID, score float64) {
	l := ix.lists[k]
	for i := range l {
		if l[i].Item != item {
			continue
		}
		if l[i].Score >= score {
			return
		}
		l[i].Score = score
		// Bubble the raised entry toward the front to restore order.
		for i > 0 && less(l[i-1], l[i]) {
			l[i-1], l[i] = l[i], l[i-1]
			i--
		}
		return
	}
	// New posting: insert in order.
	l = append(l, Entry{item, score})
	i := len(l) - 1
	for i > 0 && less(l[i-1], l[i]) {
		l[i-1], l[i] = l[i], l[i-1]
		i--
	}
	ix.lists[k] = l
	ix.entries++
}

// less reports whether a should sort after b (descending score, ascending
// item id).
func less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

func containsID(ids []graph.NodeID, id graph.NodeID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
