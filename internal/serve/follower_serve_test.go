package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"socialscope"
	"socialscope/internal/vfs"
	"socialscope/internal/workload"
)

// TestFollowerServingAndPromotion exercises the HTTP surface of a read
// replica: /healthz reports the role, writes bounce with 409 while
// following, and POST /promote flips the engine to a writable leader
// that then accepts the same write.
func TestFollowerServingAndPromotion(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 40, Destinations: 20, Seed: 7, VisitsPerUser: 5, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA, ClusterStrategy: "peruser",
	}
	fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
	const dir = "repl"

	leader, err := socialscope.OpenDurable(dir, corpus.Graph, cfg, socialscope.DurableOptions{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewTaggingStream(corpus.Graph, corpus.Users, corpus.Destinations,
		workload.Categories, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Apply(stream.Batch(4)); err != nil {
		t.Fatal(err)
	}
	ackedVersion := leader.Version()
	held := stream.Batch(2) // the write the promoted follower will accept
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	fol, err := socialscope.OpenFollower(dir, cfg, socialscope.DurableOptions{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.CatchUp(0); err != nil {
		t.Fatal(err)
	}
	srv := New(fol, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return resp.StatusCode
	}
	postJSON := func(path string, body string, out any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	applyBody := func(muts []MutationWire) string {
		buf, err := json.Marshal(ApplyRequest{Mutations: muts})
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	wire := make([]MutationWire, len(held))
	for i, m := range held {
		wire[i] = MutationToWire(m)
	}

	var health HealthResponse
	if code := getJSON("/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz on follower: %d", code)
	}
	if health.Role != "follower" || health.Version != ackedVersion {
		t.Fatalf("follower healthz = %+v, want role=follower version=%d", health, ackedVersion)
	}

	if code := postJSON("/apply", applyBody(wire), nil); code != http.StatusConflict {
		t.Fatalf("apply on follower = %d, want 409", code)
	}

	var promoted PromoteResponse
	if code := postJSON("/promote", "", &promoted); code != http.StatusOK {
		t.Fatalf("promote: %d (%+v)", code, promoted)
	}
	if promoted.Role != "leader" || promoted.Version != ackedVersion {
		t.Fatalf("promote = %+v, want role=leader version=%d", promoted, ackedVersion)
	}

	// Promotion is idempotent at the HTTP layer: a retry reports the
	// current role with 409 instead of failing the failover script.
	var again PromoteResponse
	if code := postJSON("/promote", "", &again); code != http.StatusConflict {
		t.Fatalf("second promote = %d, want 409", code)
	}
	if again.Role != "leader" {
		t.Fatalf("second promote role = %q", again.Role)
	}

	var out ApplyResponse
	if code := postJSON("/apply", applyBody(wire), &out); code != http.StatusOK {
		t.Fatalf("apply after promote = %d", code)
	}
	if out.Version != ackedVersion+1 {
		t.Fatalf("post-promote apply version = %d, want %d", out.Version, ackedVersion+1)
	}
	if code := getJSON("/healthz", &health); code != http.StatusOK || health.Role != "leader" {
		t.Fatalf("healthz after promote = %d %+v", code, health)
	}
}
