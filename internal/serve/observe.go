package serve

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"socialscope/internal/obs"
)

// serverMetrics are the HTTP front end's registry handles plus the
// trace-sampling sequence. Cache, coalescer and limiter carry their own
// handles (see their Instrument methods); /stats is a thin view over
// all of them.
type serverMetrics struct {
	reg  *obs.Registry
	reqs *obs.CounterVec   // ss_http_requests_total{handler,code}
	lat  *obs.HistogramVec // ss_http_request_seconds{handler}
	seq  atomic.Uint64     // trace-log sampling sequence
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return &serverMetrics{
		reg: reg,
		reqs: reg.CounterVec("ss_http_requests_total",
			"HTTP requests served, by handler and status code", "handler", "code"),
		lat: reg.HistogramVec("ss_http_request_seconds",
			"end-to-end request latency, by handler", nil, "handler"),
	}
}

// obsWriter wraps the ResponseWriter to capture the status code and, for
// clients that asked (by sending an X-SS-Trace request header), inject
// the span's JSON annex as the X-SS-Trace response header just before
// the header section is flushed — the latest point at which headers can
// still change, so the annex covers all evaluation stages.
type obsWriter struct {
	http.ResponseWriter
	sp     *obs.Span
	emit   bool // client asked for the trace annex
	status int
}

func (w *obsWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		if w.emit && w.sp != nil {
			w.ResponseWriter.Header().Set(HeaderTrace, w.sp.Annex())
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// instrumented wraps a handler with request metrics and per-request
// tracing. A span is created when the client sends the X-SS-Trace
// request header (the annex comes back in the response header) or when
// the request falls on the TraceLogEvery sampling grid (the annex goes
// to a structured slog line); the span rides the context, so every
// layer below — engine facade, top-k, discovery — annotates it without
// new plumbing. Untraced requests pay one histogram observation and one
// counter increment, nothing else.
func (s *Server) instrumented(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		wantHeader := r.Header.Get(HeaderTrace) != ""
		sampled := s.cfg.TraceLogEvery > 0 &&
			s.met.seq.Add(1)%uint64(s.cfg.TraceLogEvery) == 0
		var sp *obs.Span
		if wantHeader || sampled {
			sp = obs.NewSpan()
			sp.SetString("handler", name)
			r = r.WithContext(obs.WithSpan(r.Context(), sp))
		}
		ow := &obsWriter{ResponseWriter: w, sp: sp, emit: wantHeader}
		h(ow, r)
		if ow.status == 0 {
			ow.status = http.StatusOK
		}
		s.met.reqs.With(name, strconv.Itoa(ow.status)).Inc()
		s.met.lat.With(name).ObserveSince(start)
		if sampled {
			attrs := append(sp.SlogAttrs(), slog.Int("status", ow.status))
			slog.LogAttrs(r.Context(), slog.LevelInfo, "ss.trace", attrs...)
		}
	}
}

// Instrument points the cache's counters at reg (obs.Default when nil)
// and registers the entries gauge; returns the receiver for chaining.
// Called once at construction time, before any traffic.
func (c *Cache) Instrument(reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.Default
	}
	c.hits = reg.Counter("ss_cache_hits_total", "result-cache hits")
	c.misses = reg.Counter("ss_cache_misses_total", "result-cache misses (led a compute)")
	c.shared = reg.Counter("ss_cache_shared_total",
		"misses that piggybacked on an identical in-flight compute")
	c.evictions = reg.Counter("ss_cache_evictions_total", "result-cache evictions")
	c.vetoes = reg.Counter("ss_cache_store_vetoes_total",
		"computed bodies not stored because the engine version advanced mid-compute")
	reg.GaugeFunc("ss_cache_entries", "result-cache resident entries", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.entries))
	})
	return c
}

// Instrument points the coalescer's counters at reg (obs.Default when
// nil); returns the receiver for chaining.
func (c *Coalescer) Instrument(reg *obs.Registry) *Coalescer {
	if reg == nil {
		reg = obs.Default
	}
	c.flushes = reg.Counter("ss_coalescer_flushes_total", "write-coalescer flushes")
	c.requests = reg.Counter("ss_coalescer_requests_total", "apply requests accepted for coalescing")
	c.mutations = reg.Counter("ss_coalescer_mutations_total", "mutations accepted for coalescing")
	c.bulkFlushes = reg.Counter("ss_coalescer_bulk_flushes_total",
		"flushes large enough for the storage layer's transient bulk path")
	c.fallbacks = reg.Counter("ss_coalescer_fallbacks_total",
		"flushes that degraded to per-request applies after a combined-batch rejection")
	c.maxFlush = reg.Gauge("ss_coalescer_max_flush", "largest single flush, in mutations")
	c.batchSize = reg.Histogram("ss_coalescer_batch_size",
		"mutations per flush", obs.ExpBuckets(1, 2, 12))
	return c
}

// Instrument points the limiter's counters at reg (obs.Default when
// nil) and registers the occupancy gauges; returns the receiver.
func (l *Limiter) Instrument(reg *obs.Registry) *Limiter {
	if reg == nil {
		reg = obs.Default
	}
	l.admitted = reg.Counter("ss_limiter_admitted_total", "requests admitted past the limiter")
	l.rejected = reg.Counter("ss_limiter_rejected_total",
		"requests shed by the limiter (queue bound exceeded or caller deadline expired while queued)")
	reg.GaugeFunc("ss_limiter_inflight", "requests currently executing", func() float64 {
		return float64(len(l.slots))
	})
	reg.GaugeFunc("ss_limiter_queued", "requests waiting for an execution slot", func() float64 {
		return float64(l.queued.Load())
	})
	return l
}
