package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleflight verifies concurrent identical misses share one
// computation: the leader computes, everyone else piggybacks.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(16)
	key := cacheKey{version: 1, kind: "search", scope: "c1", query: "'museum'|k=10|a=0.5"}
	var computes atomic.Int32
	release := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, callers)
	bodies := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, outcome, err := c.Do(context.Background(), key, func() ([]byte, bool, error) {
				computes.Add(1)
				<-release // hold the flight open until everyone queued
				return []byte("answer"), true, nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = outcome
			bodies[i] = body
		}(i)
	}
	// Wait until every caller has either started the flight or joined it.
	for {
		if c.shared.Value() == callers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations for %d concurrent identical misses, want 1", n, callers)
	}
	misses, shares := 0, 0
	for i, o := range outcomes {
		if string(bodies[i]) != "answer" {
			t.Fatalf("caller %d got %q", i, bodies[i])
		}
		switch o {
		case OutcomeMiss:
			misses++
		case OutcomeShared:
			shares++
		default:
			t.Fatalf("caller %d outcome %q", i, o)
		}
	}
	if misses != 1 || shares != callers-1 {
		t.Fatalf("outcomes: %d misses, %d shared; want 1 and %d", misses, shares, callers-1)
	}
	// The stored entry now serves hits.
	if _, outcome, _ := c.Do(context.Background(), key, func() ([]byte, bool, error) {
		t.Fatal("hit path recomputed")
		return nil, false, nil
	}); outcome != OutcomeHit {
		t.Fatalf("follow-up outcome %q, want hit", outcome)
	}
}

// TestCacheErrorNotStored verifies failed computations are returned to
// every waiter but never cached.
func TestCacheErrorNotStored(t *testing.T) {
	c := NewCache(16)
	key := cacheKey{version: 1, kind: "search", scope: "u1", query: "q"}
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), key, func() ([]byte, bool, error) { return nil, false, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	called := false
	if _, outcome, err := c.Do(context.Background(), key, func() ([]byte, bool, error) {
		called = true
		return []byte("ok"), true, nil
	}); err != nil || outcome != OutcomeMiss || !called {
		t.Fatalf("error was cached: outcome=%v err=%v called=%v", outcome, err, called)
	}
}

// TestCacheStoreVeto verifies a computation may decline storage (the
// server does when the engine version advanced mid-compute): the body is
// served but never cached.
func TestCacheStoreVeto(t *testing.T) {
	c := NewCache(16)
	key := cacheKey{version: 1, kind: "search", scope: "u1", query: "q"}
	if _, _, err := c.Do(context.Background(), key, func() ([]byte, bool, error) { return []byte("x"), false, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("vetoed store left %d entries", s.Entries)
	}
}

// TestCachePanicDoesNotWedgeKey verifies a panicking compute releases
// its waiters and the key stays usable.
func TestCachePanicDoesNotWedgeKey(t *testing.T) {
	c := NewCache(16)
	key := cacheKey{version: 1, kind: "search", scope: "u1", query: "q"}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do(context.Background(), key, func() ([]byte, bool, error) { panic("boom") })
	}()
	// The key is not wedged: a fresh Do computes normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, outcome, err := c.Do(context.Background(), key, func() ([]byte, bool, error) {
			return []byte("ok"), true, nil
		})
		if err != nil || outcome != OutcomeMiss || string(body) != "ok" {
			t.Errorf("post-panic Do: body=%q outcome=%v err=%v", body, outcome, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after a panicking compute")
	}
}

// TestCacheWaiterHonorsOwnContext verifies a piggybacked request is not
// held past its own deadline by a slow leader — and that a leader
// failing with its own context error does not fail a healthy waiter.
func TestCacheWaiterHonorsOwnContext(t *testing.T) {
	c := NewCache(16)
	key := cacheKey{version: 1, kind: "search", scope: "u1", query: "q"}
	leaderStarted := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // slow leader that ultimately fails with its own ctx error
		defer wg.Done()
		c.Do(context.Background(), key, func() ([]byte, bool, error) {
			close(leaderStarted)
			<-release
			return nil, false, context.DeadlineExceeded // the leader's budget ran out
		})
	}()
	<-leaderStarted

	// Waiter 1: its own short deadline expires while parked on the flight.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := c.Do(ctx, key, func() ([]byte, bool, error) {
		t.Error("expired waiter recomputed")
		return nil, false, nil
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter err = %v, want its own deadline", err)
	}

	// Waiter 2: healthy context; the leader's context failure must trigger
	// a recompute, not be inherited.
	wg.Add(1)
	var body []byte
	var outcome Outcome
	var err error
	go func() {
		defer wg.Done()
		body, outcome, err = c.Do(context.Background(), key, func() ([]byte, bool, error) {
			return []byte("fresh"), true, nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let waiter 2 park on the flight
	close(release)
	wg.Wait()
	if err != nil || string(body) != "fresh" || outcome != OutcomeMiss {
		t.Fatalf("healthy waiter after leader ctx failure: body=%q outcome=%v err=%v", body, outcome, err)
	}
}

// TestCacheEvictionPrefersStaleVersions verifies the capacity bound
// holds and orphaned (older-version) entries are reclaimed first.
func TestCacheEvictionPrefersStaleVersions(t *testing.T) {
	c := NewCache(4)
	put := func(version uint64, q string) {
		key := cacheKey{version: version, kind: "search", scope: "u1", query: q}
		c.Do(context.Background(), key, func() ([]byte, bool, error) { return []byte(q), true, nil })
	}
	put(1, "a")
	put(1, "b")
	put(2, "c")
	put(2, "d")
	put(2, "e") // full: must evict, and from version 1 first
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 4 {
		t.Fatalf("cache grew to %d entries past its bound of 4", len(c.entries))
	}
	v2 := 0
	for k := range c.entries {
		if k.version == 2 {
			v2++
		}
	}
	if v2 != 3 {
		t.Fatalf("eviction removed a current-version entry: %d v2 entries, want 3", v2)
	}
}
