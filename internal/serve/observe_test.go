package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"socialscope/internal/obs"
)

// TestMetricsEndpoint scrapes /metrics after known traffic: the request
// counters, cache counters and query counters must all be visible in
// one exposition with the expected values.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	site := newTestSite(t, Config{Obs: reg})
	u := site.corpus.Users[0]

	// Miss then hit on the same cacheable search.
	for i := 0; i < 2; i++ {
		if code, _, _ := site.get(t, site.searchPath(u, "museum", false)); code != http.StatusOK {
			t.Fatalf("search %d: status %d", i, code)
		}
	}
	code, body, hdr := site.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("exposition content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`ss_http_requests_total{handler="search",code="200"} 2`,
		"ss_cache_hits_total 1",
		"ss_cache_misses_total 1",
		"ss_limiter_admitted_total 2",
		"ss_http_request_seconds_count", // histogram materialized
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	// /metrics itself is not instrumented — scraping must not move the
	// counters it reports.
	if strings.Contains(text, `handler="metrics"`) {
		t.Error("scrape traffic counted itself")
	}
}

// TestTraceHeaderOptIn pins the annex contract: a request carrying the
// X-SS-Trace header gets the span's JSON annex back in the response
// header; a plain request gets nothing.
func TestTraceHeaderOptIn(t *testing.T) {
	site := newTestSite(t, Config{Obs: obs.NewRegistry()})
	u := site.corpus.Users[0]

	req, err := http.NewRequest("GET", site.ts.URL+site.searchPath(u, "museum", false), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderTrace, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	annex := resp.Header.Get(HeaderTrace)
	if annex == "" {
		t.Fatal("no trace annex despite opting in")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(annex), &m); err != nil {
		t.Fatalf("annex not JSON: %v\n%s", err, annex)
	}
	for _, k := range []string{"handler", "strategy", "snapshot_version", "cache", "total_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("annex missing %q: %s", k, annex)
		}
	}
	if m["handler"] != "search" {
		t.Errorf("handler = %v", m["handler"])
	}

	// Without the request header the annex must not leak.
	_, _, hdr := site.get(t, site.searchPath(u, "museum", true))
	if got := hdr.Get(HeaderTrace); got != "" {
		t.Fatalf("unsolicited trace annex %q", got)
	}
}

// TestTraceCacheOutcomes drives miss → hit with tracing on and checks
// the annex labels each outcome.
func TestTraceCacheOutcomes(t *testing.T) {
	site := newTestSite(t, Config{Obs: obs.NewRegistry()})
	u := site.corpus.Users[1]
	outcome := func() string {
		req, err := http.NewRequest("GET", site.ts.URL+site.searchPath(u, "park", false), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderTrace, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		var m map[string]any
		if err := json.Unmarshal([]byte(resp.Header.Get(HeaderTrace)), &m); err != nil {
			t.Fatal(err)
		}
		s, _ := m["cache"].(string)
		return s
	}
	if got := outcome(); got != "miss" {
		t.Errorf("first request cache=%q, want miss", got)
	}
	if got := outcome(); got != "hit" {
		t.Errorf("second request cache=%q, want hit", got)
	}
}
