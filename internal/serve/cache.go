package serve

import (
	"context"
	"errors"
	"sync"

	"socialscope/internal/obs"
)

// cacheKey identifies one cacheable evaluation: the engine state version
// the answer was computed against, the handler kind (search results and
// recommendations never alias), the user's cache scope (see
// Engine.CacheScope) and the normalized query. Keying on the version
// makes invalidation free: an Apply batch bumps the engine version, new
// requests carry the new version, and entries under older versions are
// simply never read again — they are reclaimed by capacity eviction,
// which prefers them.
type cacheKey struct {
	version uint64
	kind    string
	scope   string
	query   string
}

// flight is one in-progress computation other requests for the same key
// wait on instead of recomputing — singleflight deduplication of
// concurrent identical misses.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Cache is the snapshot-version-keyed result cache. Values are fully
// marshaled response bodies, so a hit costs one map lookup and one
// write — and the cached and uncached paths are byte-identical by
// construction. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey][]byte
	flights map[cacheKey]*flight

	// registry handles (see Instrument); never nil after construction
	hits, misses, shared, evictions, vetoes *obs.Counter
}

// DefaultCacheEntries bounds the cache when the configuration does not.
const DefaultCacheEntries = 4096

// NewCache returns a cache holding at most max marshaled bodies
// (DefaultCacheEntries when max <= 0).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	c := &Cache{
		max:     max,
		entries: make(map[cacheKey][]byte),
		flights: make(map[cacheKey]*flight),
	}
	// A private registry keeps a bare cache's counters isolated (tests
	// build many); the Server re-points them at its configured registry.
	return c.Instrument(obs.NewRegistry())
}

// Outcome classifies how a Do call was answered, for the X-SS-Cache
// response header and the hit-rate metrics.
type Outcome string

const (
	// OutcomeHit: served from a stored entry.
	OutcomeHit Outcome = "hit"
	// OutcomeMiss: computed by this call (and stored if permitted).
	OutcomeMiss Outcome = "miss"
	// OutcomeShared: piggybacked on an identical concurrent computation.
	OutcomeShared Outcome = "shared"
	// OutcomeBypass: cache disabled or sidestepped for this request.
	OutcomeBypass Outcome = "bypass"
)

// Do returns the body for key, computing it at most once across
// concurrent callers. compute returns the marshaled body plus whether it
// may be stored — the server declines storage when the engine version
// advanced mid-computation, so a body computed against state v+1 is
// never pinned under a version-v key. A compute error is returned to
// every waiter of the flight and nothing is stored.
//
// Waiters honor their own ctx while parked on another request's flight,
// and a leader whose compute fails with its *own* context error (the
// leading client disconnected or ran out its per-request budget) does
// not fail healthy piggybackers — they re-enter the flight protocol, so
// exactly one of them becomes the new leader (whose result is stored)
// and the rest share it. A panicking compute releases its waiters with
// an error before propagating, so a key can never be wedged.
func (c *Cache) Do(ctx context.Context, key cacheKey,
	compute func() (body []byte, store bool, err error)) ([]byte, Outcome, error) {
	var f *flight
	for {
		c.mu.Lock()
		if body, ok := c.entries[key]; ok {
			c.hits.Inc()
			c.mu.Unlock()
			return body, OutcomeHit, nil
		}
		prev, inFlight := c.flights[key]
		if !inFlight {
			f = &flight{done: make(chan struct{})}
			c.flights[key] = f
			c.misses.Inc()
			c.mu.Unlock()
			break // this caller leads
		}
		c.shared.Inc()
		c.mu.Unlock()
		select {
		case <-prev.done:
		case <-ctx.Done():
			return nil, OutcomeShared, ctx.Err()
		}
		if isContextErr(prev.err) && ctx.Err() == nil {
			// The leader died of its own request budget, not ours: go
			// around — one healthy waiter becomes the new leader, the
			// others pile onto its flight.
			continue
		}
		return prev.body, OutcomeShared, prev.err
	}

	completed := false
	defer func() {
		if completed {
			return
		}
		// compute panicked. Fail the flight so waiters unblock and the key
		// is not wedged forever, then let the panic continue to the HTTP
		// layer's recovery.
		f.err = errors.New("serve: cache compute panicked")
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
	}()
	body, store, err := compute()
	completed = true
	f.body, f.err = body, err

	// Deregister before waking waiters, so a waiter that goes around the
	// loop (failed-leader retry) finds either no flight or a successor's —
	// never this finished one.
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && store {
		c.evictFor(key)
		c.entries[key] = body
	} else if err == nil {
		c.vetoes.Inc()
	}
	c.mu.Unlock()
	close(f.done)
	return body, OutcomeMiss, err
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// evictFor makes room for one insertion under key. Entries from older
// engine versions are orphans — no future request carries their key — so
// they go first; only a cache full of current-version entries evicts
// arbitrarily. Called with mu held.
func (c *Cache) evictFor(key cacheKey) {
	if len(c.entries) < c.max {
		return
	}
	for k := range c.entries {
		if k.version < key.version {
			delete(c.entries, k)
			c.evictions.Inc()
			if len(c.entries) < c.max {
				return
			}
		}
	}
	for k := range c.entries {
		delete(c.entries, k)
		c.evictions.Inc()
		if len(c.entries) < c.max {
			return
		}
	}
}

// Stats snapshots the cache counters — a thin view over the registry
// handles, so /stats and /metrics can never drift apart.
func (c *Cache) Stats() CacheStatsWire {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return CacheStatsWire{
		Entries:   entries,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Shared:    c.shared.Value(),
		Evictions: c.evictions.Value(),
	}
}
