package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"socialscope"
	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/obs"
	"socialscope/internal/topk"
)

// Config parameterizes a Server. The zero value serves with sane
// defaults: 2s request deadline, DefaultCacheEntries cache,
// bulk-threshold write coalescing, DefaultMaxConcurrent admission.
type Config struct {
	// RequestTimeout bounds each request's evaluation (default 2s). The
	// deadline propagates into the engine's top-k accumulation loops via
	// the request context.
	RequestTimeout time.Duration
	// CacheEntries bounds the result cache (default
	// DefaultCacheEntries); DisableCache turns caching off entirely.
	CacheEntries int
	DisableCache bool
	// MaxBatch is the buffered mutation count that triggers an immediate
	// coalescer flush (default graph.BulkApplyThreshold, the smallest
	// batch riding the storage layer's transient bulk path);
	// FlushInterval bounds how long a write waits for company (default
	// DefaultFlushInterval).
	MaxBatch      int
	FlushInterval time.Duration
	// MaxConcurrent and MaxQueue shape admission control (defaults
	// DefaultMaxConcurrent / DefaultMaxQueue).
	MaxConcurrent int
	MaxQueue      int
	// Obs is the metrics registry the server (and its cache, coalescer
	// and limiter) record into and /metrics exposes — obs.Default when
	// nil. Handles are resolved once at construction; the request hot
	// path touches only lock-free atomics.
	Obs *obs.Registry
	// TraceLogEvery samples 1-in-N requests onto a structured "ss.trace"
	// slog line carrying the full span annex (0 disables). Clients get a
	// trace regardless of sampling by sending an X-SS-Trace request
	// header; the annex comes back in the same response header.
	TraceLogEvery int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiles are operator tooling, not a public API). Profile
	// endpoints bypass the per-request timeout — a 30s CPU profile must
	// outlive a 2s request budget.
	EnablePprof bool
}

// Server is the HTTP query-serving subsystem over one Engine. Create
// with New, expose with Handler (or Serve), release with Shutdown or
// Close.
type Server struct {
	eng     *socialscope.Engine
	cfg     Config
	cache   *Cache
	coal    *Coalescer
	limiter *Limiter
	met     *serverMetrics
	mux     *http.ServeMux
	httpSrv *http.Server
	started time.Time
}

// New builds a server over the engine. The engine may already be serving
// other callers; the server adds no constraints beyond Engine's own
// concurrency contract.
func New(eng *socialscope.Engine, cfg Config) *Server {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		coal:    NewCoalescer(eng, cfg.MaxBatch, cfg.FlushInterval).Instrument(cfg.Obs),
		limiter: NewLimiter(cfg.MaxConcurrent, cfg.MaxQueue).Instrument(cfg.Obs),
		met:     newServerMetrics(cfg.Obs),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if !cfg.DisableCache {
		s.cache = NewCache(cfg.CacheEntries).Instrument(cfg.Obs)
	}
	s.mux.HandleFunc("GET /healthz", s.instrumented("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.instrumented("stats", s.handleStats))
	s.mux.HandleFunc("GET /search", s.instrumented("search", s.limited(s.handleSearch)))
	s.mux.HandleFunc("POST /query", s.instrumented("query", s.limited(s.handleQuery)))
	s.mux.HandleFunc("GET /recommend", s.instrumented("recommend", s.limited(s.handleRecommend)))
	s.mux.HandleFunc("POST /apply", s.instrumented("apply", s.limited(s.handleApply)))
	s.mux.HandleFunc("POST /promote", s.instrumented("promote", s.handlePromote))
	s.mux.Handle("GET /metrics", s.met.reg.Handler())
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Constructed here, not in Serve, so Shutdown never races the Serve
	// goroutine's startup: a signal arriving before Serve runs still finds
	// a server to shut down (whose Serve then returns ErrServerClosed
	// immediately).
	s.httpSrv = &http.Server{Handler: s.Handler()}
	return s
}

// Handler returns the routed handler with per-request deadlines and
// admission control applied. /healthz and /stats bypass admission so
// they stay responsive under overload — that is when they matter most.
// /debug/pprof/ bypasses the deadline: a 30-second CPU profile must
// outlive the request budget.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.EnablePprof && strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
			s.mux.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		s.mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// limited wraps a handler in the admission limiter. Sheds carry a
// Retry-After hint so callers back off instead of hammering.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.limiter.Acquire(r.Context())
		if err != nil {
			s.writeStatusError(w, err)
			return
		}
		defer release()
		h(w, r)
	}
}

// writeStatusError maps err through statusFor and, on a 503 shed,
// attaches the backpressure hint: the standard Retry-After (whole
// seconds, never below 1) plus the millisecond-precision
// X-SS-Retry-After-Ms the router's backoff actually consumes. The hint
// is the write coalescer's flush interval — the natural period at which
// admission pressure drains.
func (s *Server) writeStatusError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		hint := s.cfg.FlushInterval
		if hint <= 0 {
			hint = DefaultFlushInterval
		}
		secs := int(hint / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.Header().Set(HeaderRetryAfterMs, strconv.FormatInt(hint.Milliseconds(), 10))
	}
	writeError(w, status, err)
}

// Serve accepts connections on ln until Shutdown. It returns the error
// from the underlying http.Server (http.ErrServerClosed after a clean
// Shutdown).
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Shutdown drains gracefully: stop accepting, wait for in-flight
// requests (bounded by ctx), then flush the write coalescer so no
// accepted mutation is lost.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.coal.Stop()
	return err
}

// Close releases the server's background resources without a listener
// (the Handler-only usage, e.g. under httptest).
func (s *Server) Close() { s.coal.Stop() }

// Engine returns the served engine.
func (s *Server) Engine() *socialscope.Engine { return s.eng }

// parseQueryRequest extracts a QueryRequest from GET parameters
// (/search) or a JSON body (/query).
func parseQueryRequest(r *http.Request) (QueryRequest, error) {
	if r.Method == http.MethodPost {
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return QueryRequest{}, fmt.Errorf("serve: bad request body: %w", err)
		}
		return req, nil
	}
	var req QueryRequest
	userStr := r.FormValue("user")
	if userStr == "" {
		return QueryRequest{}, errors.New("serve: missing user parameter")
	}
	uid, err := strconv.ParseInt(userStr, 10, 64)
	if err != nil {
		return QueryRequest{}, fmt.Errorf("serve: bad user parameter: %w", err)
	}
	req.User = graph.NodeID(uid)
	req.Query = r.FormValue("q")
	if ks := r.FormValue("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil {
			return QueryRequest{}, fmt.Errorf("serve: bad k parameter: %w", err)
		}
		req.K = k
	}
	if as := r.FormValue("alpha"); as != "" {
		a, err := strconv.ParseFloat(as, 64)
		if err != nil {
			return QueryRequest{}, fmt.Errorf("serve: bad alpha parameter: %w", err)
		}
		req.Alpha = &a
	}
	return req, nil
}

// handleSearch answers GET /search?user=&q=&k=&alpha=[&nocache=1].
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.answerQuery(w, r)
}

// handleQuery answers POST /query with a QueryRequest body.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.answerQuery(w, r)
}

func (s *Server) answerQuery(w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := discovery.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.K > 0 {
		q.K = req.K
	}
	if req.Alpha != nil {
		q.Alpha = *req.Alpha
	}
	version := s.eng.Version()
	bodyVersion := version // what the served body was evaluated against
	compute := func() ([]byte, bool, error) {
		resp, err := s.eng.QueryCtx(r.Context(), req.User, q)
		if err != nil {
			return nil, false, err
		}
		var stats *QueryStatsWire
		if resp.Stats != nil {
			stats = &QueryStatsWire{
				Strategy:        resp.Stats.Strategy.String(),
				PostingsScanned: resp.Stats.PostingsScanned,
				ExactScores:     resp.Stats.ExactScores,
				Candidates:      resp.Stats.Candidates,
				EarlyTerminated: resp.Stats.EarlyTerminated,
			}
		}
		// The response carries the exact snapshot version the evaluation
		// read — which may be newer than this request's cache key if an
		// Apply landed in between.
		bodyVersion = resp.Version
		body, err := json.Marshal(SearchResponseFromEngine(s.eng, resp.Version, q, resp, stats))
		if err != nil {
			return nil, false, err
		}
		// Store only if the keyed version held through evaluation AND body
		// assembly: the wire shaping's name fallback reads the live graph,
		// so a version bump between evaluation and marshal could otherwise
		// pin a mixed-version body under this version's key.
		store := resp.Version == version && s.eng.Version() == version
		obs.SpanFrom(r.Context()).SetBool("cache_veto", !store)
		return body, store, nil
	}
	s.respondCached(w, r, cacheKey{
		version: version,
		kind:    "search",
		scope:   s.eng.CacheScope(req.User),
		query:   NormalizeQuery(q),
	}, compute, &bodyVersion)
}

// handleRecommend answers GET /recommend?user=&variant=stepwise|pattern.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	userStr := r.FormValue("user")
	uid, err := strconv.ParseInt(userStr, 10, 64)
	if userStr == "" || err != nil {
		writeError(w, http.StatusBadRequest, errors.New("serve: missing or bad user parameter"))
		return
	}
	user := graph.NodeID(uid)
	variant := discovery.CFStepwise
	switch v := r.FormValue("variant"); v {
	case "", "stepwise":
	case "pattern":
		variant = discovery.CFPattern
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown variant %q", v))
		return
	}
	version := s.eng.Version()
	bodyVersion := version
	compute := func() ([]byte, bool, error) {
		recs, err := s.eng.RecommendCtx(r.Context(), user, variant)
		if err != nil {
			return nil, false, err
		}
		g := s.eng.Graph()
		// If the engine advanced mid-evaluation, label the body with the
		// post-evaluation version (best effort — CF reads the then-current
		// graph) and veto the store; when the version is unchanged around
		// the evaluation, the label is exact.
		after := s.eng.Version()
		bodyVersion = after
		out := RecommendResponse{
			Version:         after,
			User:            user,
			Variant:         variant.String(),
			Recommendations: make([]RecommendationWire, 0, len(recs)),
		}
		for _, rec := range recs {
			name := ""
			if n := g.Node(rec.Item); n != nil {
				name = n.Attrs.Get("name")
			}
			out.Recommendations = append(out.Recommendations, RecommendationWire{
				Item: rec.Item, Name: name, Score: rec.Score, Basis: rec.Basis,
			})
		}
		body, err := json.Marshal(out)
		if err != nil {
			return nil, false, err
		}
		return body, after == version, nil
	}
	s.respondCached(w, r, cacheKey{
		version: version,
		kind:    "recommend",
		scope:   s.eng.CacheScope(user),
		query:   variant.String(),
	}, compute, &bodyVersion)
}

// respondCached answers through the result cache (unless disabled or
// bypassed with ?nocache=1) and reports the outcome in the X-SS-Cache
// header — kept out of the body so cached and uncached bodies stay
// byte-identical. bodyVersion points at the version the served body was
// evaluated against: updated by compute when it runs here; for hits it
// keeps the key version, which is exactly what stored bodies were
// evaluated at (a mid-compute version bump vetoes the store). A shared
// flight whose leader straddled a bump may label the header with the key
// version while the body carries the exact one — the body is
// authoritative.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request,
	key cacheKey, compute func() ([]byte, bool, error), bodyVersion *uint64) {
	var (
		body    []byte
		outcome Outcome
		err     error
	)
	if s.cache == nil || r.FormValue("nocache") != "" {
		outcome = OutcomeBypass
		body, _, err = compute()
	} else {
		body, outcome, err = s.cache.Do(r.Context(), key, compute)
	}
	if err != nil {
		s.writeStatusError(w, err)
		return
	}
	sp := obs.SpanFrom(r.Context())
	sp.SetString("cache", string(outcome))
	sp.SetUint("version", *bodyVersion)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderCache, string(outcome))
	w.Header().Set(HeaderVersion, strconv.FormatUint(*bodyVersion, 10))
	w.Write(body)
}

// handleApply folds POST /apply mutation batches into the engine through
// the write coalescer.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	var req ApplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	muts := make([]graph.Mutation, 0, len(req.Mutations))
	for i, mw := range req.Mutations {
		m, err := mw.Mutation()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("mutation %d: %w", i, err))
			return
		}
		muts = append(muts, m)
	}
	out, err := s.coal.Enqueue(r.Context(), muts)
	if err != nil {
		s.writeStatusError(w, err)
		return
	}
	sp := obs.SpanFrom(r.Context())
	sp.SetInt("mutations", int64(len(muts)))
	sp.SetInt("coalesced", int64(out.coalesced))
	sp.SetInt("batched", int64(out.batched))
	sp.SetUint("version", out.version)
	// The version header rides on writes too, so a routing tier updates
	// its monotonic-read token from acks without decoding bodies.
	w.Header().Set(HeaderVersion, strconv.FormatUint(out.version, 10))
	writeJSON(w, http.StatusOK, ApplyResponse{
		Version:   out.version,
		Applied:   len(muts),
		Coalesced: out.coalesced,
		Batched:   out.batched,
	})
}

// handleStats answers GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	g := s.eng.Graph()
	var cs CacheStatsWire
	if s.cache != nil {
		cs = s.cache.Stats()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Version:   s.eng.Version(),
		MaxNodeID: g.MaxNodeID(),
		MaxLinkID: g.MaxLinkID(),
		UptimeSec: time.Since(s.started).Seconds(),
		Cache:     cs,
		Coalescer: s.coal.Stats(),
		Limiter:   s.limiter.Stats(),
	})
}

// handleHealthz answers GET /healthz: role, snapshot version and (for
// followers) replication lag — the facts a routing tier's health
// checker builds membership from.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthResponse{Status: "ok", Version: s.eng.Version(), Role: s.role()}
	if lag, ok := s.eng.ReplicationLag(); ok {
		h.Lag = &lag
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) role() string {
	if s.eng.IsFollower() {
		return "follower"
	}
	return "leader"
}

// handlePromote answers POST /promote: upgrade a follower to a
// writable leader after the previous leader died. The caller is the
// failover orchestrator (or operator) and owns the "leader is really
// dead" judgement; the engine still refuses when the WAL contradicts
// the drained tail. On a non-follower it reports the current role with
// 409 rather than failing a retried promotion.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !s.eng.IsFollower() {
		writeJSON(w, http.StatusConflict, PromoteResponse{Role: s.role(), Version: s.eng.Version()})
		return
	}
	if err := s.eng.Promote(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Role: s.role(), Version: s.eng.Version()})
}

// statusFor maps evaluation errors to HTTP statuses: deadline and
// cancellation to 504 (the per-request budget ran out), admission
// rejection to 503, unknown users to 404, everything else to 422 (the
// request was syntactically fine but the engine rejected it).
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, discovery.ErrUnknownUser), errors.Is(err, topk.ErrUnknownUser):
		return http.StatusNotFound
	case errors.Is(err, socialscope.ErrFollower):
		// Writes against a read replica: the request is fine, this server
		// is the wrong one — retry against the leader (or /promote first).
		return http.StatusConflict
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
