package serve

import (
	"context"
	"sync"
	"time"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/obs"
)

// applyOutcome is what one /apply request learns from the flush that
// carried it.
type applyOutcome struct {
	version   uint64 // engine version after the flush
	coalesced int    // requests that shared the flush
	batched   int    // mutations in the whole flush
	err       error
}

// applyReq is one enqueued mutation batch waiting for a flush.
type applyReq struct {
	muts []graph.Mutation
	done chan applyOutcome // buffered; the flusher never blocks on it
}

// Coalescer buffers incoming mutation batches and flushes them into
// Engine.Apply as one combined batch, so concurrent small writes ride
// the storage layer's transient bulk path (graph.BulkApplyThreshold)
// instead of paying per-write persistent path copies — and the engine
// version bumps once per flush, not once per request, which keeps the
// result cache's version keys stable under write bursts.
//
// A flush happens when the buffered mutation count reaches MaxBatch or
// when the flush ticker fires, whichever comes first — the ticker bounds
// the latency any single write can be held for. If the combined batch is
// rejected (one request's mutations conflict with another's, or with the
// engine), the flush degrades to applying each request's batch
// individually so one bad request cannot poison the others; each request
// then learns its own outcome.
type Coalescer struct {
	eng      *socialscope.Engine
	maxBatch int
	interval time.Duration

	mu          sync.Mutex
	pending     []applyReq
	pendingMuts int
	stopped     bool

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	// registry handles (see Instrument); never nil after construction
	flushes     *obs.Counter
	requests    *obs.Counter
	mutations   *obs.Counter
	bulkFlushes *obs.Counter
	fallbacks   *obs.Counter
	maxFlush    *obs.Gauge // high watermark: largest single flush
	batchSize   *obs.Histogram
}

// DefaultFlushInterval bounds write latency when the configuration does
// not: long enough for concurrent writers to pile into one flush, short
// enough to stay invisible next to network latency.
const DefaultFlushInterval = 10 * time.Millisecond

// NewCoalescer starts a coalescer over the engine. maxBatch <= 0
// defaults to graph.BulkApplyThreshold — the smallest batch that rides
// the transient bulk path; interval <= 0 defaults to
// DefaultFlushInterval. Stop must be called to release the flusher.
func NewCoalescer(eng *socialscope.Engine, maxBatch int, interval time.Duration) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = graph.BulkApplyThreshold
	}
	if interval <= 0 {
		interval = DefaultFlushInterval
	}
	// The private registry keeps a bare coalescer's counters isolated
	// (tests build many); the Server re-points them at its own registry.
	c := (&Coalescer{
		eng:      eng,
		maxBatch: maxBatch,
		interval: interval,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}).Instrument(obs.NewRegistry())
	c.wg.Add(1)
	go c.loop()
	return c
}

// Enqueue hands a mutation batch to the coalescer and waits for the
// flush that carries it. The wait is bounded by the flush interval plus
// one Engine.Apply. If ctx expires first the call returns ctx.Err() —
// but the batch is already queued and will still be applied; a caller
// that must know the outcome retries idempotently (re-adding an element
// the engine absorbed is rejected loudly, not double-counted).
func (c *Coalescer) Enqueue(ctx context.Context, muts []graph.Mutation) (applyOutcome, error) {
	if len(muts) == 0 {
		return applyOutcome{version: c.eng.Version()}, nil
	}
	req := applyReq{muts: muts, done: make(chan applyOutcome, 1)}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return applyOutcome{}, context.Canceled
	}
	c.pending = append(c.pending, req)
	c.pendingMuts += len(muts)
	full := c.pendingMuts >= c.maxBatch
	c.mu.Unlock()
	c.requests.Inc()
	c.mutations.Add(uint64(len(muts)))
	if full {
		select {
		case c.kick <- struct{}{}:
		default: // a kick is already pending
		}
	}
	select {
	case out := <-req.done:
		return out, out.err
	case <-ctx.Done():
		return applyOutcome{}, ctx.Err()
	}
}

func (c *Coalescer) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			c.flush()
			return
		case <-c.kick:
			c.flush()
		case <-ticker.C:
			c.flush()
		}
	}
}

// flush applies everything pending as one batch, falling back to
// per-request application when the combined batch is rejected.
func (c *Coalescer) flush() {
	c.mu.Lock()
	reqs := c.pending
	nmuts := c.pendingMuts
	c.pending = nil
	c.pendingMuts = 0
	c.mu.Unlock()
	if len(reqs) == 0 {
		return
	}

	combined := make([]graph.Mutation, 0, nmuts)
	for _, r := range reqs {
		combined = append(combined, r.muts...)
	}
	err := c.eng.Apply(combined)
	fellBack := false
	if err == nil {
		v := c.eng.Version()
		for _, r := range reqs {
			r.done <- applyOutcome{version: v, coalesced: len(reqs), batched: nmuts}
		}
	} else if len(reqs) == 1 {
		reqs[0].done <- applyOutcome{err: err}
	} else {
		// Combined batch rejected: isolate the offender(s) by applying each
		// request's batch on its own.
		fellBack = true
		for _, r := range reqs {
			e := c.eng.Apply(r.muts)
			out := applyOutcome{version: c.eng.Version(), coalesced: 1, batched: len(r.muts), err: e}
			r.done <- out
		}
	}

	c.flushes.Inc()
	c.maxFlush.Max(float64(nmuts))
	c.batchSize.Observe(float64(nmuts))
	if nmuts >= graph.BulkApplyThreshold {
		c.bulkFlushes.Inc()
	}
	if fellBack {
		c.fallbacks.Inc()
	}
}

// Stop flushes whatever is pending and releases the flusher goroutine.
// Subsequent Enqueue calls fail.
func (c *Coalescer) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

// Stats snapshots the coalescer counters — a thin view over the
// registry handles, so /stats and /metrics can never drift apart.
func (c *Coalescer) Stats() CoalescerStatsWire {
	return CoalescerStatsWire{
		Flushes:     c.flushes.Value(),
		Requests:    c.requests.Value(),
		Mutations:   c.mutations.Value(),
		MaxFlush:    int(c.maxFlush.Value()),
		BulkFlushes: c.bulkFlushes.Value(),
		Fallbacks:   c.fallbacks.Value(),
	}
}
