package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"socialscope"
	"socialscope/internal/discovery"
	"socialscope/internal/topk"
	"socialscope/internal/vfs"
	"socialscope/internal/workload"
)

// TestStatusForMapping pins the error→HTTP contract the router's retry
// classifier depends on: a drifting mapping silently turns retryable
// conditions into terminal ones (or worse, the reverse).
func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, http.StatusGatewayTimeout},
		{"wrapped deadline", fmt.Errorf("evaluating: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"overloaded", ErrOverloaded, http.StatusServiceUnavailable},
		{"wrapped overloaded", fmt.Errorf("admission: %w", ErrOverloaded), http.StatusServiceUnavailable},
		{"unknown user (discovery)", discovery.ErrUnknownUser, http.StatusNotFound},
		{"unknown user (topk)", topk.ErrUnknownUser, http.StatusNotFound},
		{"follower write", socialscope.ErrFollower, http.StatusConflict},
		{"wrapped follower write", fmt.Errorf("apply: %w", socialscope.ErrFollower), http.StatusConflict},
		{"engine rejection", errors.New("bad mutation"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusFor(tc.err); got != tc.want {
				t.Fatalf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestShedCarriesRetryAfter asserts the 503 shed path emits both the
// standard Retry-After and the millisecond-precision hint the router's
// backoff consumes.
func TestShedCarriesRetryAfter(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 20, Destinations: 10, Seed: 3, VisitsPerUser: 4, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	// One slot, no queue, and a handler that blocks: the second request
	// must shed.
	srv := New(eng, Config{MaxConcurrent: 1, MaxQueue: 0, FlushInterval: 40 * time.Millisecond})
	defer srv.Close()
	block := make(chan struct{})
	srv.mux.HandleFunc("GET /block", srv.limited(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(block)

	go http.Get(ts.URL + "/block")
	// Wait for the blocker to hold the slot.
	deadline := time.Now().Add(2 * time.Second)
	var resp *http.Response
	for {
		resp, err = http.Get(ts.URL + "/search?user=1&q=x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("never shed: last status %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (sub-second hints round up)", ra)
	}
	if ms := resp.Header.Get(HeaderRetryAfterMs); ms != "40" {
		t.Fatalf("%s = %q, want \"40\"", HeaderRetryAfterMs, ms)
	}
}

// TestHealthzReportsFollowerLag asserts the enriched /healthz: version
// always, lag only on followers, and lag reflecting unapplied records.
func TestHealthzReportsFollowerLag(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 30, Destinations: 15, Seed: 5, VisitsPerUser: 4, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := socialscope.Config{ItemType: "destination"}
	fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
	leader, err := socialscope.OpenDurable("lagdir", corpus.Graph, cfg, socialscope.DurableOptions{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := socialscope.OpenFollower("lagdir", cfg, socialscope.DurableOptions{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}

	leaderSrv := New(leader, Config{})
	defer leaderSrv.Close()
	rec := httptest.NewRecorder()
	leaderSrv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var lh HealthResponse
	decodeBody(t, rec, &lh)
	if lh.Role != "leader" || lh.Lag != nil {
		t.Fatalf("leader healthz = %+v, want role=leader lag=nil", lh)
	}
	if lh.Version != leader.Version() {
		t.Fatalf("leader healthz version = %d, want %d", lh.Version, leader.Version())
	}

	// Write through the leader and checkpoint (confirming the records)
	// WITHOUT letting the follower catch up: lag must surface.
	stream, err := workload.NewTaggingStream(corpus.Graph, corpus.Users, corpus.Destinations,
		workload.Categories, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := leader.Apply(stream.Batch(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	folSrv := New(fol, Config{})
	defer folSrv.Close()
	health := func() HealthResponse {
		rec := httptest.NewRecorder()
		folSrv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var h HealthResponse
		decodeBody(t, rec, &h)
		return h
	}
	// The follower hasn't polled: it reports zero lag only until its next
	// CatchUp observes the manifest. Poll the manifest by catching up
	// with a budget of 0 records? CatchUp(max) with max<0 is not a mode;
	// instead catch up fully and assert lag returns to zero, then verify
	// the intermediate observation with a 1-record budget.
	if _, err := fol.CatchUp(1); err != nil {
		t.Fatal(err)
	}
	h := health()
	if h.Role != "follower" || h.Lag == nil {
		t.Fatalf("follower healthz = %+v, want role=follower with lag", h)
	}
	if *h.Lag == 0 {
		t.Fatalf("follower applied 1 of several confirmed records, lag = 0 (version %d)", h.Version)
	}
	if _, err := fol.CatchUp(0); err != nil {
		t.Fatal(err)
	}
	h = health()
	if h.Lag == nil || *h.Lag != 0 {
		t.Fatalf("caught-up follower lag = %v, want 0", h.Lag)
	}
	if h.Version != leader.Version() {
		t.Fatalf("caught-up follower version = %d, leader %d", h.Version, leader.Version())
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("decode: %v (body %q)", err, rec.Body.String())
	}
}
