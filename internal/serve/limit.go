package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"socialscope/internal/obs"
)

// ErrOverloaded is returned when a request would exceed both the
// concurrency limit and the waiting-queue bound; the server maps it to
// 503 so load sheds at admission instead of piling latency onto every
// in-flight request.
var ErrOverloaded = errors.New("serve: overloaded — concurrency limit and queue depth exceeded")

// Limiter is the admission controller: at most maxConcurrent requests
// execute, at most maxQueue more wait, the rest are rejected
// immediately. Queue-depth gauges make saturation observable through
// /stats before it becomes an outage.
type Limiter struct {
	slots    chan struct{}
	maxQueue int64

	queued atomic.Int64
	// registry handles (see Instrument); never nil after construction
	admitted *obs.Counter
	rejected *obs.Counter
}

// Defaults when the configuration leaves the limits unset.
const (
	DefaultMaxConcurrent = 64
	DefaultMaxQueue      = 256
)

// NewLimiter returns a limiter admitting maxConcurrent concurrent
// requests with a waiting queue of maxQueue (defaults applied for
// non-positive maxConcurrent; maxQueue < 0 defaults, 0 means no queue).
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	if maxQueue < 0 {
		maxQueue = DefaultMaxQueue
	}
	// The private registry keeps a bare limiter's counters isolated
	// (tests build many); the Server re-points them at its own registry.
	return (&Limiter{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}).Instrument(obs.NewRegistry())
}

// Acquire admits the request or reports why it cannot run: ErrOverloaded
// when the queue bound is exceeded, ctx.Err() when the caller's deadline
// expires while waiting. On success the returned release function must
// be called exactly once.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Inc()
		return l.release, nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.rejected.Inc()
		return nil, ErrOverloaded
	}
	select {
	case l.slots <- struct{}{}:
		l.queued.Add(-1)
		l.admitted.Inc()
		return l.release, nil
	case <-ctx.Done():
		l.queued.Add(-1)
		l.rejected.Inc()
		return nil, ctx.Err()
	}
}

func (l *Limiter) release() { <-l.slots }

// Stats snapshots the admission gauges — a thin view over the registry
// handles, so /stats and /metrics can never drift apart.
func (l *Limiter) Stats() LimiterStatsWire {
	return LimiterStatsWire{
		Inflight: len(l.slots),
		Queued:   l.queued.Load(),
		Admitted: l.admitted.Value(),
		Rejected: l.rejected.Value(),
	}
}
