// Package serve is SocialScope's query-serving subsystem: an HTTP JSON
// front end over the facade Engine that turns the storage layer's RCU
// snapshots, O(delta) live updates and transient bulk mutation into
// end-to-end request latency. It comprises
//
//   - handlers for /search, /query, /recommend, /apply, /stats and
//     /healthz with per-request deadlines and graceful shutdown
//     (server.go);
//   - a snapshot-version-keyed result cache with singleflight
//     deduplication of concurrent identical misses — invalidation is
//     free, a version bump from Apply simply orphans old entries
//     (cache.go);
//   - a write coalescer that buffers incoming mutation batches and
//     flushes them sized to ride the storage layer's transient bulk
//     path, with a ticker bounding flush latency (coalesce.go);
//   - an admission limiter with queue-depth metrics (limit.go).
//
// This file defines the JSON wire types, shared by cmd/ssserve (the
// server) and cmd/ssquery -addr (the client).
package serve

import (
	"fmt"

	"socialscope"
	"socialscope/internal/discovery"
	"socialscope/internal/graph"
)

// NodeWire is a graph node on the wire; the shape matches the graph's
// JSON encoding (Encode/Decode), so corpora and mutations speak one
// dialect.
type NodeWire struct {
	ID    graph.NodeID        `json:"id"`
	Types []string            `json:"types,omitempty"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

// LinkWire is a graph link on the wire.
type LinkWire struct {
	ID    graph.LinkID        `json:"id"`
	Src   graph.NodeID        `json:"src"`
	Tgt   graph.NodeID        `json:"tgt"`
	Types []string            `json:"types,omitempty"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

// MutationWire is one graph mutation on the wire. Op is the changelog
// kind's string form: add-node, put-node, add-link, put-link,
// remove-node, remove-link. Node is set for node ops, Link for link ops;
// Prev optionally carries the pre-merge state of a put-link.
type MutationWire struct {
	Op   string    `json:"op"`
	Node *NodeWire `json:"node,omitempty"`
	Link *LinkWire `json:"link,omitempty"`
	Prev *LinkWire `json:"prev,omitempty"`
}

func (w NodeWire) node() *graph.Node {
	n := graph.NewNode(w.ID, w.Types...)
	for k, vs := range w.Attrs {
		n.Attrs.Set(k, vs...)
	}
	return n
}

func (w LinkWire) link() *graph.Link {
	l := graph.NewLink(w.ID, w.Src, w.Tgt, w.Types...)
	for k, vs := range w.Attrs {
		l.Attrs.Set(k, vs...)
	}
	return l
}

// NodeToWire and LinkToWire convert graph elements for transmission.
func NodeToWire(n *graph.Node) NodeWire {
	return NodeWire{ID: n.ID, Types: n.Types, Attrs: n.Attrs}
}

func LinkToWire(l *graph.Link) LinkWire {
	return LinkWire{ID: l.ID, Src: l.Src, Tgt: l.Tgt, Types: l.Types, Attrs: l.Attrs}
}

// MutationToWire converts a changelog entry for transmission.
func MutationToWire(m graph.Mutation) MutationWire {
	w := MutationWire{Op: m.Kind.String()}
	if m.Node != nil {
		nw := NodeToWire(m.Node)
		w.Node = &nw
	}
	if m.Link != nil {
		lw := LinkToWire(m.Link)
		w.Link = &lw
	}
	if m.Prev != nil {
		pw := LinkToWire(m.Prev)
		w.Prev = &pw
	}
	return w
}

// Mutation converts the wire form back into a changelog entry.
func (w MutationWire) Mutation() (graph.Mutation, error) {
	var kind graph.MutationKind
	switch w.Op {
	case graph.MutAddNode.String():
		kind = graph.MutAddNode
	case graph.MutPutNode.String():
		kind = graph.MutPutNode
	case graph.MutAddLink.String():
		kind = graph.MutAddLink
	case graph.MutPutLink.String():
		kind = graph.MutPutLink
	case graph.MutRemoveNode.String():
		kind = graph.MutRemoveNode
	case graph.MutRemoveLink.String():
		kind = graph.MutRemoveLink
	default:
		return graph.Mutation{}, fmt.Errorf("serve: unknown mutation op %q", w.Op)
	}
	m := graph.Mutation{Kind: kind}
	switch kind {
	case graph.MutAddNode, graph.MutPutNode, graph.MutRemoveNode:
		if w.Node == nil {
			return graph.Mutation{}, fmt.Errorf("serve: %s mutation without node", w.Op)
		}
		m.Node = w.Node.node()
	default:
		if w.Link == nil {
			return graph.Mutation{}, fmt.Errorf("serve: %s mutation without link", w.Op)
		}
		m.Link = w.Link.link()
		if w.Prev != nil {
			m.Prev = w.Prev.link()
		}
	}
	return m, nil
}

// QueryRequest is the body of POST /query (and the parameter set of
// GET /search). Query uses the search-box syntax of discovery.ParseQuery;
// K and Alpha override the parser defaults when positive / non-nil.
type QueryRequest struct {
	User  graph.NodeID `json:"user"`
	Query string       `json:"query"`
	K     int          `json:"k,omitempty"`
	Alpha *float64     `json:"alpha,omitempty"`
}

// ResultWire is one ranked result.
type ResultWire struct {
	Item        graph.NodeID   `json:"item"`
	Name        string         `json:"name,omitempty"`
	Score       float64        `json:"score"`
	Semantic    float64        `json:"semantic"`
	Social      float64        `json:"social"`
	Endorsers   []graph.NodeID `json:"endorsers,omitempty"`
	Explanation string         `json:"explanation,omitempty"`
}

// GroupWire is one presentation group.
type GroupWire struct {
	Label   string         `json:"label"`
	Items   []graph.NodeID `json:"items"`
	Quality float64        `json:"quality"`
}

// GroupingWire is the chosen grouping of the presentation layer.
type GroupingWire struct {
	Criterion string      `json:"criterion,omitempty"`
	Groups    []GroupWire `json:"groups,omitempty"`
}

// RelatedWire is Example 3's onward exploration payload.
type RelatedWire struct {
	Topics []RelatedEntryWire `json:"topics,omitempty"`
	Users  []RelatedEntryWire `json:"users,omitempty"`
}

// RelatedEntryWire is one related entity with its result-set count.
type RelatedEntryWire struct {
	ID    graph.NodeID `json:"id"`
	Name  string       `json:"name,omitempty"`
	Count int          `json:"count"`
}

// QueryStatsWire is the work report of an index-backed evaluation.
type QueryStatsWire struct {
	Strategy        string `json:"strategy"`
	PostingsScanned int    `json:"postings_scanned"`
	ExactScores     int    `json:"exact_scores"`
	Candidates      int    `json:"candidates"`
	EarlyTerminated bool   `json:"early_terminated"`
}

// SearchResponse is the body of /search and /query answers. It is
// deterministic for a given engine state and query — maps are avoided in
// favor of ordered slices — so the cached and uncached paths produce
// byte-identical bodies.
type SearchResponse struct {
	Version uint64          `json:"version"`
	Query   string          `json:"query"`
	Basis   string          `json:"basis,omitempty"`
	Results []ResultWire    `json:"results"`
	Groups  GroupingWire    `json:"grouping"`
	Related RelatedWire     `json:"related"`
	Stats   *QueryStatsWire `json:"stats,omitempty"`
}

// SearchResponseFromEngine shapes a facade Response for the wire. Names
// are resolved against the MSG's own snapshot-consistent graph, falling
// back to the serving graph for entities the MSG does not carry.
func SearchResponseFromEngine(eng *socialscope.Engine, version uint64,
	q discovery.Query, resp *socialscope.Response, stats *QueryStatsWire) SearchResponse {
	g := eng.Graph()
	name := func(id graph.NodeID) string {
		if resp.MSG.Graph != nil {
			if n := resp.MSG.Graph.Node(id); n != nil {
				if nm := n.Attrs.Get("name"); nm != "" {
					return nm
				}
			}
		}
		if n := g.Node(id); n != nil {
			return n.Attrs.Get("name")
		}
		return ""
	}
	out := SearchResponse{
		Version: version,
		Query:   q.String(),
		Basis:   resp.MSG.Basis.Kind.String(),
		Results: make([]ResultWire, 0, len(resp.MSG.Results)),
		Stats:   stats,
	}
	for _, r := range resp.MSG.Results {
		out.Results = append(out.Results, ResultWire{
			Item:        r.Item,
			Name:        name(r.Item),
			Score:       r.Score,
			Semantic:    r.Semantic,
			Social:      r.Social,
			Endorsers:   r.Endorsers,
			Explanation: resp.Explanations[r.Item].Summary,
		})
	}
	out.Groups.Criterion = resp.Presentation.Chosen.Criterion
	for _, grp := range resp.Presentation.Chosen.Groups {
		out.Groups.Groups = append(out.Groups.Groups, GroupWire{
			Label: grp.Label, Items: grp.Items, Quality: grp.Quality,
		})
	}
	for _, rt := range resp.Related.Topics {
		out.Related.Topics = append(out.Related.Topics, RelatedEntryWire{
			ID: rt.Topic, Name: name(rt.Topic), Count: rt.Count,
		})
	}
	for _, ru := range resp.Related.Users {
		out.Related.Users = append(out.Related.Users, RelatedEntryWire{
			ID: ru.User, Name: name(ru.User), Count: ru.Count,
		})
	}
	return out
}

// RecommendationWire is one collaborative-filtering recommendation.
type RecommendationWire struct {
	Item  graph.NodeID   `json:"item"`
	Name  string         `json:"name,omitempty"`
	Score float64        `json:"score"`
	Basis []graph.NodeID `json:"basis,omitempty"`
}

// RecommendResponse is the body of /recommend answers.
type RecommendResponse struct {
	Version         uint64               `json:"version"`
	User            graph.NodeID         `json:"user"`
	Variant         string               `json:"variant"`
	Recommendations []RecommendationWire `json:"recommendations"`
}

// ApplyRequest is the body of POST /apply: a batch of mutations to fold
// into the live engine. The server coalesces concurrent batches before
// applying (see Coalescer), so the response's Coalesced reports how many
// requests shared the flush that carried this one.
type ApplyRequest struct {
	Mutations []MutationWire `json:"mutations"`
}

// ApplyResponse reports the outcome of an apply: the engine version
// after the flush that carried the batch, and how the flush was shaped.
type ApplyResponse struct {
	Version   uint64 `json:"version"`
	Applied   int    `json:"applied"`   // mutations in this request
	Coalesced int    `json:"coalesced"` // requests that shared the flush
	Batched   int    `json:"batched"`   // mutations in the whole flush
}

// CacheStatsWire reports result-cache effectiveness.
type CacheStatsWire struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"` // misses that piggybacked on an identical in-flight compute
	Evictions uint64 `json:"evictions"`
}

// CoalescerStatsWire reports write-coalescing effectiveness.
type CoalescerStatsWire struct {
	Flushes     uint64 `json:"flushes"`
	Requests    uint64 `json:"requests"`
	Mutations   uint64 `json:"mutations"`
	MaxFlush    int    `json:"max_flush"`    // largest single flush, in mutations
	BulkFlushes uint64 `json:"bulk_flushes"` // flushes large enough for the transient bulk path
	Fallbacks   uint64 `json:"fallbacks"`    // flushes that degraded to per-request applies
}

// LimiterStatsWire reports admission control state.
type LimiterStatsWire struct {
	Inflight int    `json:"inflight"`
	Queued   int64  `json:"queued"`
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
}

// StatsResponse is the body of /stats: engine and subsystem gauges. Max
// ids let remote writers allocate fresh element ids without a round trip
// per element.
type StatsResponse struct {
	Version   uint64             `json:"version"`
	MaxNodeID graph.NodeID       `json:"max_node_id"`
	MaxLinkID graph.LinkID       `json:"max_link_id"`
	UptimeSec float64            `json:"uptime_sec"`
	Cache     CacheStatsWire     `json:"cache"`
	Coalescer CoalescerStatsWire `json:"coalescer"`
	Limiter   LimiterStatsWire   `json:"limiter"`
}

// Response and request header names shared by the server, the router
// (internal/route) and the remote clients. Kept here so all tiers speak
// one dialect.
const (
	// HeaderVersion carries the engine snapshot version a body was
	// evaluated against — the currency of monotonic-read tokens.
	HeaderVersion = "X-SS-Version"
	// HeaderCache reports the result-cache outcome (hit/miss/shared/bypass).
	HeaderCache = "X-SS-Cache"
	// HeaderMinVersion is the client's monotonic-read token: the lowest
	// snapshot version an answer may be evaluated against.
	HeaderMinVersion = "X-SS-Min-Version"
	// HeaderStale marks a degraded answer that could not satisfy the
	// requested min-version within the staleness budget ("true").
	HeaderStale = "X-SS-Stale"
	// HeaderRetryAfterMs is the millisecond-precision sibling of the
	// standard Retry-After header (whose granularity is whole seconds —
	// useless for a router backing off tens of milliseconds).
	HeaderRetryAfterMs = "X-SS-Retry-After-Ms"
	// HeaderTrace is the per-request trace annex. A client opts in by
	// sending the header (any value) on the request; the response comes
	// back with the span's compact JSON annex — strategy, snapshot
	// version, cache outcome, postings scanned, per-stage latencies —
	// under the same header. The router forwards the request header
	// downstream and relays the response annex back unchanged.
	HeaderTrace = "X-SS-Trace"
)

// HealthResponse is the body of /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Version uint64 `json:"version"`
	// Role is "leader" for engines that accept writes and "follower"
	// for read replicas tailing a leader's WAL (see /promote).
	Role string `json:"role"`
	// Lag is the follower's replication lag in confirmed-but-unapplied
	// WAL records; absent on leaders. Zero means caught up to everything
	// the leader has confirmed (the unconfirmed tail record is bounded
	// staleness, not lag).
	Lag *uint64 `json:"lag,omitempty"`
}

// PromoteResponse is the body of POST /promote.
type PromoteResponse struct {
	Role    string `json:"role"`
	Version uint64 `json:"version"`
}

// ErrorResponse is the body every non-2xx answer carries.
type ErrorResponse struct {
	Error string `json:"error"`
}

// NormalizeQuery renders the cache-key form of a parsed query: the
// canonical string (tokenized keywords, ordered predicates) plus the
// result-shaping parameters, so two textual spellings of the same
// evaluation share one cache entry and different k or α never collide.
func NormalizeQuery(q discovery.Query) string {
	return fmt.Sprintf("%s|k=%d|a=%g", q.String(), q.K, q.Alpha)
}
