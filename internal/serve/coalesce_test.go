package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

func newTestEngine(t *testing.T) (*socialscope.Engine, *workload.TravelCorpus, *workload.TaggingStream) {
	t.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 40, Destinations: 15, Seed: 3, VisitsPerUser: 5, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewTaggingStream(corpus.Graph, corpus.Users, corpus.Destinations,
		workload.Categories, 5)
	if err != nil {
		t.Fatal(err)
	}
	return eng, corpus, stream
}

// TestCoalescerMergesConcurrentWrites verifies concurrent Enqueues land
// in one flush: one Engine.Apply, one version bump, shared outcome.
func TestCoalescerMergesConcurrentWrites(t *testing.T) {
	eng, _, stream := newTestEngine(t)
	// A long ticker so the flush that carries both requests is the one the
	// maxBatch trigger fires, not a timing accident.
	c := NewCoalescer(eng, 4, time.Hour)
	defer c.Stop()
	v0 := eng.Version()

	const writers = 2
	outcomes := make([]applyOutcome, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := c.Enqueue(context.Background(), stream.Batch(2))
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = out
		}(i)
	}
	wg.Wait()

	if v := eng.Version(); v != v0+1 {
		t.Fatalf("version %d -> %d across one coalesced flush, want exactly +1", v0, v)
	}
	for i, out := range outcomes {
		if out.version != v0+1 {
			t.Fatalf("writer %d saw version %d, want %d", i, out.version, v0+1)
		}
		if out.coalesced != writers || out.batched != 4 {
			t.Fatalf("writer %d: coalesced=%d batched=%d, want %d and 4", i, out.coalesced, out.batched, writers)
		}
	}
	st := c.Stats()
	if st.Flushes != 1 || st.Requests != writers || st.Mutations != 4 {
		t.Fatalf("stats = %+v, want one 4-mutation flush of %d requests", st, writers)
	}
}

// TestCoalescerTickerBoundsLatency verifies a lone small write is not
// held hostage by the batch threshold: the ticker flushes it.
func TestCoalescerTickerBoundsLatency(t *testing.T) {
	eng, _, stream := newTestEngine(t)
	c := NewCoalescer(eng, 1<<20, 5*time.Millisecond)
	defer c.Stop()
	start := time.Now()
	out, err := c.Enqueue(context.Background(), stream.Batch(1))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone write waited %v for a flush", elapsed)
	}
	if out.version == 0 {
		t.Fatalf("no version bump")
	}
}

// TestCoalescerErrorIsolation verifies a poisoned flush degrades to
// per-request application: the conflicting request fails, the innocent
// one lands.
func TestCoalescerErrorIsolation(t *testing.T) {
	eng, corpus, stream := newTestEngine(t)
	c := NewCoalescer(eng, 1<<20, time.Hour)
	defer c.Stop()
	v0 := eng.Version()

	good := stream.Batch(2)
	// The bad request re-adds a node the engine already serves —
	// Engine.Apply rejects the whole combined batch, forcing the
	// per-request fallback.
	bad := []graph.Mutation{{Kind: graph.MutAddNode,
		Node: corpus.Graph.Node(corpus.Users[0]).Clone()}}

	var wg sync.WaitGroup
	var goodOut, badOut applyOutcome
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodOut, goodErr = c.Enqueue(context.Background(), good)
	}()
	go func() {
		defer wg.Done()
		badOut, badErr = c.Enqueue(context.Background(), bad)
	}()
	// Wait for both to queue, then force the flush via Stop's drain.
	for {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	wg.Wait()

	if goodErr != nil {
		t.Fatalf("innocent request failed: %v (outcome %+v)", goodErr, goodOut)
	}
	if badErr == nil {
		t.Fatalf("conflicting request succeeded: %+v", badOut)
	}
	if eng.Version() != v0+1 {
		t.Fatalf("version %d -> %d, want exactly the innocent request's bump", v0, eng.Version())
	}
	if !eng.Graph().HasLink(good[0].Link.ID) || !eng.Graph().HasLink(good[1].Link.ID) {
		t.Fatalf("innocent request's links missing")
	}
	st := c.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want one fallback flush", st)
	}
}

// TestCoalescerStoppedRejects verifies Enqueue after Stop fails instead
// of hanging.
func TestCoalescerStoppedRejects(t *testing.T) {
	eng, _, stream := newTestEngine(t)
	c := NewCoalescer(eng, 4, time.Millisecond)
	c.Stop()
	if _, err := c.Enqueue(context.Background(), stream.Batch(1)); err == nil {
		t.Fatal("Enqueue on a stopped coalescer succeeded")
	}
}

// TestLimiter verifies admission control: concurrency is capped, the
// queue bound sheds load, and a waiting request honors its context.
func TestLimiter(t *testing.T) {
	l := NewLimiter(1, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("second acquire with zero queue: %v, want ErrOverloaded", err)
	}
	release()
	release, err = l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}

	// With one queue slot, a waiter parks until its context expires.
	l2 := NewLimiter(1, 1)
	r2, _ := l2.Acquire(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := l2.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire: %v, want deadline exceeded", err)
	}
	r2()
	release()

	st := l.Stats()
	if st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 2 admitted / 1 rejected", st)
	}
}
