package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

// testSite builds a small live site: corpus, engine (TA over peruser, so
// index-backed queries and exact per-user caching), HTTP server.
type testSite struct {
	corpus *workload.TravelCorpus
	eng    *socialscope.Engine
	srv    *Server
	ts     *httptest.Server
	stream *workload.TaggingStream
}

func newTestSite(t *testing.T, cfg Config) *testSite {
	t.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 60, Destinations: 25, Seed: 7, VisitsPerUser: 6, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA, ClusterStrategy: "peruser",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	stream, err := workload.NewTaggingStream(corpus.Graph, corpus.Users, corpus.Destinations,
		workload.Categories, 11)
	if err != nil {
		t.Fatal(err)
	}
	return &testSite{corpus: corpus, eng: eng, srv: srv, ts: ts, stream: stream}
}

func (s *testSite) get(t *testing.T, path string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(s.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func (s *testSite) searchPath(user graph.NodeID, q string, nocache bool) string {
	v := url.Values{"user": {strconv.FormatInt(int64(user), 10)}, "q": {q}}
	if nocache {
		v.Set("nocache", "1")
	}
	return "/search?" + v.Encode()
}

func (s *testSite) apply(t *testing.T, muts []graph.Mutation) (int, ApplyResponse, []byte) {
	t.Helper()
	req := ApplyRequest{Mutations: make([]MutationWire, len(muts))}
	for i, m := range muts {
		req.Mutations[i] = MutationToWire(m)
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+"/apply", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out ApplyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad apply response %s: %v", body, err)
		}
	}
	return resp.StatusCode, out, body
}

// friendOf returns one user connected to u.
func friendOf(t *testing.T, g *graph.Graph, u graph.NodeID) graph.NodeID {
	t.Helper()
	for _, l := range g.Out(u) {
		if l.HasType(graph.TypeConnect) {
			return l.Tgt
		}
	}
	for _, l := range g.In(u) {
		if l.HasType(graph.TypeConnect) {
			return l.Src
		}
	}
	t.Fatalf("user %d has no connections", u)
	return 0
}

// TestVersionBumpsOncePerApplyBatch pins the cache's invalidation
// contract: one Apply batch — whatever its size — bumps Engine.Version()
// exactly once, both through the facade and through coalesced /apply.
func TestVersionBumpsOncePerApplyBatch(t *testing.T) {
	site := newTestSite(t, Config{})
	v0 := site.eng.Version()

	// Facade: a 5-mutation batch is one bump.
	if err := site.eng.Apply(site.stream.Batch(5)); err != nil {
		t.Fatal(err)
	}
	if got := site.eng.Version(); got != v0+1 {
		t.Fatalf("5-mutation Apply bumped version %d -> %d, want exactly +1", v0, got)
	}
	// Sequential /apply requests: one flush each, one bump each.
	for i := 0; i < 3; i++ {
		before := site.eng.Version()
		status, out, body := site.apply(t, site.stream.Batch(2))
		if status != http.StatusOK {
			t.Fatalf("apply %d: %d: %s", i, status, body)
		}
		if out.Version != before+1 {
			t.Fatalf("apply %d: version %d -> %d, want exactly +1", i, before, out.Version)
		}
	}
}

// TestCacheHitByteIdentical pins the cache's correctness contract: a
// hit serves exactly the bytes the miss computed, and an explicit bypass
// recomputes the same bytes.
func TestCacheHitByteIdentical(t *testing.T) {
	site := newTestSite(t, Config{})
	user := site.corpus.Users[3]
	path := site.searchPath(user, "museum hotel", false)

	_, miss, h1 := site.get(t, path)
	_, hit, h2 := site.get(t, path)
	_, bypass, h3 := site.get(t, site.searchPath(user, "museum hotel", true))

	if got := h1.Get("X-SS-Cache"); got != string(OutcomeMiss) {
		t.Fatalf("first request outcome %q, want miss", got)
	}
	if got := h2.Get("X-SS-Cache"); got != string(OutcomeHit) {
		t.Fatalf("second request outcome %q, want hit", got)
	}
	if got := h3.Get("X-SS-Cache"); got != string(OutcomeBypass) {
		t.Fatalf("bypass request outcome %q, want bypass", got)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatalf("hit differs from miss:\n%s\n%s", miss, hit)
	}
	if !bytes.Equal(miss, bypass) {
		t.Fatalf("bypass differs from miss:\n%s\n%s", miss, bypass)
	}
}

// TestPostApplyNeverStale pins freshness: a search after an Apply that
// changes its answer must serve the new answer, not the cached old one —
// the version key makes the old entry unreachable.
func TestPostApplyNeverStale(t *testing.T) {
	site := newTestSite(t, Config{})
	user := site.corpus.Users[5]
	friend := friendOf(t, site.corpus.Graph, user)
	const tag = "zzztesttag" // unseen in the corpus: pre-apply answer is empty
	path := site.searchPath(user, tag, false)

	status, before, _ := site.get(t, path)
	if status != http.StatusOK {
		t.Fatalf("pre-apply search: %d: %s", status, before)
	}
	var pre SearchResponse
	if err := json.Unmarshal(before, &pre); err != nil {
		t.Fatal(err)
	}
	if len(pre.Results) != 0 {
		t.Fatalf("want empty pre-apply answer, got %d results", len(pre.Results))
	}
	// Cache it again so the stale entry definitely exists.
	if _, _, h := site.get(t, path); h.Get("X-SS-Cache") != string(OutcomeHit) {
		t.Fatalf("expected a cached entry before the apply")
	}

	// The user's friend tags a destination with the query tag: the answer
	// must change.
	dest := site.corpus.Destinations[0]
	l := graph.NewLink(site.corpus.Graph.MaxLinkID()+1000, friend, dest, graph.TypeAct, graph.SubtypeTag)
	l.Attrs.Add("tags", tag)
	status, out, body := site.apply(t, []graph.Mutation{{Kind: graph.MutAddLink, Link: l}})
	if status != http.StatusOK {
		t.Fatalf("apply: %d: %s", status, body)
	}
	if out.Version == pre.Version {
		t.Fatalf("apply did not bump the version")
	}

	status, after, h := site.get(t, path)
	if status != http.StatusOK {
		t.Fatalf("post-apply search: %d: %s", status, after)
	}
	if got := h.Get("X-SS-Cache"); got == string(OutcomeHit) {
		t.Fatalf("post-apply search served a stale hit")
	}
	var post SearchResponse
	if err := json.Unmarshal(after, &post); err != nil {
		t.Fatal(err)
	}
	if len(post.Results) != 1 || post.Results[0].Item != dest {
		t.Fatalf("post-apply answer = %s, want the freshly tagged destination %d", after, dest)
	}
	// And the fresh answer must itself be byte-identical to an uncached
	// evaluation.
	_, bypass, _ := site.get(t, site.searchPath(user, tag, true))
	if !bytes.Equal(after, bypass) {
		t.Fatalf("post-apply cached path differs from bypass:\n%s\n%s", after, bypass)
	}
}

// TestConcurrentSearchApply hammers handler reads against /apply writes;
// run with -race this is the serving layer's snapshot-consistency test.
func TestConcurrentSearchApply(t *testing.T) {
	site := newTestSite(t, Config{FlushInterval: 2 * time.Millisecond})
	const (
		readers      = 6
		readsPer     = 25
		writers      = 2
		writesPer    = 8
		mutsPerWrite = 3
		expectedMuts = writers * writesPer * mutsPerWrite
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers*readsPer+writers*writesPer)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsPer; i++ {
				u := site.corpus.Users[(r*readsPer+i)%len(site.corpus.Users)]
				q := workload.Categories[i%len(workload.Categories)]
				resp, err := http.Get(site.ts.URL + site.searchPath(u, q, false))
				if err != nil {
					errc <- err
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("search %d/%d: %d: %s", r, i, resp.StatusCode, body)
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				muts := site.stream.Batch(mutsPerWrite)
				req := ApplyRequest{Mutations: make([]MutationWire, len(muts))}
				for j, m := range muts {
					req.Mutations[j] = MutationToWire(m)
				}
				buf, _ := json.Marshal(req)
				resp, err := http.Post(site.ts.URL+"/apply", "application/json", bytes.NewReader(buf))
				if err != nil {
					errc <- err
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("apply: %d: %s", resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Every accepted mutation landed: the serving graph grew by exactly
	// the stream's output.
	wantLinks := site.corpus.Graph.NumLinks() + expectedMuts
	if got := site.eng.Graph().NumLinks(); got != wantLinks {
		t.Fatalf("serving graph has %d links, want %d", got, wantLinks)
	}
	if v := site.eng.Version(); v == 0 {
		t.Fatalf("no version bumps despite %d writes", writers*writesPer)
	}
}

// TestApplyRejectionIsClean verifies a rejected batch surfaces as an
// error response and changes nothing.
func TestApplyRejectionIsClean(t *testing.T) {
	site := newTestSite(t, Config{})
	v0 := site.eng.Version()
	// Re-adding a node the engine already holds is rejected by Engine.Apply.
	n := site.corpus.Graph.Node(site.corpus.Users[0]).Clone()
	status, _, body := site.apply(t, []graph.Mutation{{Kind: graph.MutAddNode, Node: n}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate add: status %d (%s), want 422", status, body)
	}
	if got := site.eng.Version(); got != v0 {
		t.Fatalf("rejected apply bumped version %d -> %d", v0, got)
	}
}

// TestUnknownUserIs404 verifies the sentinel-based status mapping.
func TestUnknownUserIs404(t *testing.T) {
	site := newTestSite(t, Config{})
	status, body, _ := site.get(t, site.searchPath(999999, "museum", true))
	if status != http.StatusNotFound {
		t.Fatalf("unknown user: status %d (%s), want 404", status, body)
	}
	status, body, _ = site.get(t, "/recommend?user=999999")
	if status != http.StatusNotFound {
		t.Fatalf("unknown user recommend: status %d (%s), want 404", status, body)
	}
}

// TestRequestDeadline verifies the per-request budget propagates: a
// server whose deadline is already unmeetable answers 504, not never.
func TestRequestDeadline(t *testing.T) {
	site := newTestSite(t, Config{RequestTimeout: time.Nanosecond})
	status, body, _ := site.get(t, site.searchPath(site.corpus.Users[0], "museum", true))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", status, body)
	}
}

// TestHealthzAndStats smoke-tests the unlimited endpoints.
func TestHealthzAndStats(t *testing.T) {
	site := newTestSite(t, Config{})
	status, body, _ := site.get(t, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d: %s", status, body)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %s (%v)", body, err)
	}
	status, body, _ = site.get(t, "/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d: %s", status, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body %s (%v)", body, err)
	}
	if st.MaxNodeID == 0 || st.MaxLinkID == 0 {
		t.Fatalf("stats did not report id high-water marks: %s", body)
	}
}

// TestMutationWireRoundTrip pins the wire encoding of every mutation
// kind.
func TestMutationWireRoundTrip(t *testing.T) {
	n := graph.NewNode(42, graph.TypeUser)
	n.Attrs.Add("name", "jane")
	l := graph.NewLink(7, 42, 43, graph.TypeAct, graph.SubtypeTag)
	l.Attrs.Add("tags", "museum")
	prev := graph.NewLink(7, 42, 43, graph.TypeAct)
	muts := []graph.Mutation{
		{Kind: graph.MutAddNode, Node: n},
		{Kind: graph.MutPutNode, Node: n},
		{Kind: graph.MutRemoveNode, Node: n},
		{Kind: graph.MutAddLink, Link: l},
		{Kind: graph.MutPutLink, Link: l, Prev: prev},
		{Kind: graph.MutRemoveLink, Link: l},
	}
	for _, m := range muts {
		buf, err := json.Marshal(MutationToWire(m))
		if err != nil {
			t.Fatal(err)
		}
		var w MutationWire
		if err := json.Unmarshal(buf, &w); err != nil {
			t.Fatal(err)
		}
		got, err := w.Mutation()
		if err != nil {
			t.Fatalf("%s: %v", m.Kind, err)
		}
		if got.Kind != m.Kind {
			t.Fatalf("kind %s round-tripped to %s", m.Kind, got.Kind)
		}
		if m.Node != nil && !got.Node.Equal(m.Node) {
			t.Fatalf("%s: node %s round-tripped to %s", m.Kind, m.Node, got.Node)
		}
		if m.Link != nil && !got.Link.Equal(m.Link) {
			t.Fatalf("%s: link %s round-tripped to %s", m.Kind, m.Link, got.Link)
		}
		if (m.Prev == nil) != (got.Prev == nil) || (m.Prev != nil && !got.Prev.Equal(m.Prev)) {
			t.Fatalf("%s: prev mismatch", m.Kind)
		}
	}
	if _, err := (MutationWire{Op: "explode"}).Mutation(); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := (MutationWire{Op: "add-link"}).Mutation(); err == nil {
		t.Fatal("add-link without link accepted")
	}
}
