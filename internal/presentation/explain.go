package presentation

import (
	"fmt"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// Explanation is Section 7.2's Expl(u, i): the items or users grounding a
// recommendation, each with its similarity weight, plus the aggregate
// phrasing ("60% of your friends endorsed this item").
type Explanation struct {
	Strategy string // "content" or "cf"
	Items    []WeightedID
	Users    []WeightedID
	Summary  string
}

// WeightedID is one explanation element with its weight
// (ItemSim × rating or UserSim × rating per the paper).
type WeightedID struct {
	ID     graph.NodeID
	Weight float64
}

// rating returns rating(u, i): the rating attribute of u's act link onto
// i, or 0 when u has not rated i (the paper's convention). Unrated acts
// count as endorsement strength 1.
func rating(g *graph.Graph, user, item graph.NodeID) float64 {
	for _, l := range g.Out(user) {
		if l.Tgt != item || !l.HasType(graph.TypeAct) {
			continue
		}
		if v, ok := l.Attrs.Float("rating"); ok {
			return v
		}
		return 1
	}
	return 0
}

// itemSim is ItemSim(i, i'): Jaccard over the items' content token sets.
// Only attribute text participates — the shared type vocabulary ('item',
// 'destination') would otherwise make every pair spuriously similar.
func itemSim(g *graph.Graph, a, b graph.NodeID) float64 {
	na, nb := g.Node(a), g.Node(b)
	if na == nil || nb == nil {
		return 0
	}
	return scoring.Jaccard(scoring.TokenSet(na.Attrs.Text()), scoring.TokenSet(nb.Attrs.Text()))
}

// userSim is UserSim(u, u'): 1 for directly connected users, else Jaccard
// of their acted-item sets (0 for strangers with no overlap, matching "it
// is 0 if u and u' are not connected").
func userSim(g *graph.Graph, a, b graph.NodeID) float64 {
	for _, l := range g.Incident(a) {
		if !l.HasType(graph.TypeConnect) {
			continue
		}
		if l.Src == b || l.Tgt == b {
			return 1
		}
	}
	return scoring.Jaccard(actedItems(g, a), actedItems(g, b))
}

func actedItems(g *graph.Graph, u graph.NodeID) scoring.Set[graph.NodeID] {
	s := scoring.NewSet[graph.NodeID]()
	for _, l := range g.Out(u) {
		if l.HasType(graph.TypeAct) {
			s.Add(l.Tgt)
		}
	}
	return s
}

// ExplainContent builds the content-based explanation:
// Expl(u,i) = {i' ∈ Items(u) | ItemSim(i,i') > 0}, weighted by
// ItemSim(i,i') × rating(u,i').
func ExplainContent(g *graph.Graph, user, item graph.NodeID) Explanation {
	ex := Explanation{Strategy: "content"}
	past := scoring.SortedInts(actedItems(g, user))
	var totalPast int
	for _, p := range past {
		if p == item {
			continue
		}
		totalPast++
		if sim := itemSim(g, item, p); sim > 0 {
			ex.Items = append(ex.Items, WeightedID{p, sim * rating(g, user, p)})
		}
	}
	sortWeighted(ex.Items)
	if totalPast > 0 {
		pct := 100 * len(ex.Items) / totalPast
		ex.Summary = fmt.Sprintf("This item is similar to %d%% of items you visited before", pct)
	} else {
		ex.Summary = "You have no past activity to relate this item to"
	}
	return ex
}

// ExplainCF builds the collaborative-filtering explanation:
// Expl(u,i) = {u' | UserSim(u,u') > 0 & i ∈ Items(u')}, weighted by
// UserSim(u,u') × rating(u',i). The aggregate phrasing counts the user's
// direct connections among the endorsers.
func ExplainCF(g *graph.Graph, user, item graph.NodeID) Explanation {
	ex := Explanation{Strategy: "cf"}
	friends := scoring.NewSet[graph.NodeID]()
	for _, l := range g.Incident(user) {
		if !l.HasType(graph.TypeConnect) {
			continue
		}
		other := l.Tgt
		if other == user {
			other = l.Src
		}
		friends.Add(other)
	}
	endorsingFriends := 0
	for _, other := range sortedUsers(g) {
		if other == user {
			continue
		}
		if !actedItems(g, other).Has(item) {
			continue
		}
		sim := userSim(g, user, other)
		if sim <= 0 {
			continue
		}
		ex.Users = append(ex.Users, WeightedID{other, sim * rating(g, other, item)})
		if friends.Has(other) {
			endorsingFriends++
		}
	}
	sortWeighted(ex.Users)
	if friends.Len() > 0 {
		pct := 100 * endorsingFriends / friends.Len()
		ex.Summary = fmt.Sprintf("%d%% of your friends endorsed this item", pct)
	} else if len(ex.Users) > 0 {
		ex.Summary = fmt.Sprintf("%d similar users endorsed this item", len(ex.Users))
	} else {
		ex.Summary = "No social endorsement found for this item"
	}
	return ex
}

// ExplainGroup aggregates item explanations into a group-level explanation
// (Section 7.2's Expl(u, g)): the union of the member explanations'
// users/items with summed weights, summarized concisely.
func ExplainGroup(g *graph.Graph, user graph.NodeID, group Group, strategy string) Explanation {
	agg := Explanation{Strategy: strategy}
	userW := map[graph.NodeID]float64{}
	itemW := map[graph.NodeID]float64{}
	for _, it := range group.Items {
		var ex Explanation
		if strategy == "content" {
			ex = ExplainContent(g, user, it)
		} else {
			ex = ExplainCF(g, user, it)
		}
		for _, w := range ex.Users {
			userW[w.ID] += w.Weight
		}
		for _, w := range ex.Items {
			itemW[w.ID] += w.Weight
		}
	}
	for id, w := range userW {
		agg.Users = append(agg.Users, WeightedID{id, w})
	}
	for id, w := range itemW {
		agg.Items = append(agg.Items, WeightedID{id, w})
	}
	sortWeighted(agg.Users)
	sortWeighted(agg.Items)
	switch {
	case len(agg.Users) > 0:
		agg.Summary = fmt.Sprintf("Group %q is endorsed by %d related users", group.Label, len(agg.Users))
	case len(agg.Items) > 0:
		agg.Summary = fmt.Sprintf("Group %q is similar to %d items you know", group.Label, len(agg.Items))
	default:
		agg.Summary = fmt.Sprintf("Group %q has no social provenance", group.Label)
	}
	return agg
}

func sortWeighted(ws []WeightedID) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Weight != ws[j].Weight {
			return ws[i].Weight > ws[j].Weight
		}
		return ws[i].ID < ws[j].ID
	})
}

func sortedUsers(g *graph.Graph) []graph.NodeID {
	users := g.NodesOfType(graph.TypeUser)
	out := make([]graph.NodeID, len(users))
	for i, u := range users {
		out[i] = u.ID
	}
	return out
}
