// Package presentation implements SocialScope's Information Presentation
// layer (Section 7): dynamic grouping of query results (social grouping per
// Definition 14, topical grouping over derived topics, structural grouping
// over attributes), group meaningfulness and selection, hierarchical
// zoom-in, and item/group explanations with social provenance (Section 7.2).
package presentation

import (
	"fmt"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// Group is one presentation unit: a labeled subset of the result items.
type Group struct {
	Label string
	Items []graph.NodeID
	// Quality is the mean relevance of the group's items under the scores
	// the grouping was built with (one of the paper's meaningfulness
	// criteria).
	Quality float64
}

// Size returns the number of items in the group.
func (g Group) Size() int { return len(g.Items) }

// Grouping is a named partition of a result set.
type Grouping struct {
	Criterion string
	Groups    []Group
}

// taggers returns the set of users with act links onto the item —
// taggers(i) in Definition 14.
func taggers(g *graph.Graph, item graph.NodeID) scoring.Set[graph.NodeID] {
	s := scoring.NewSet[graph.NodeID]()
	for _, l := range g.In(item) {
		if l.HasType(graph.TypeAct) {
			s.Add(l.Src)
		}
	}
	return s
}

// SocialGrouping partitions items by endorser overlap (Definition 14): two
// items share a group when Jaccard(taggers(i1), taggers(i2)) ≥ θ. Like the
// user clusterings it is materialized with deterministic leader
// clustering. Groups are labeled by their leading item's name.
func SocialGrouping(g *graph.Graph, items []graph.NodeID, scores map[graph.NodeID]float64, theta float64) (Grouping, error) {
	if theta < 0 || theta > 1 {
		return Grouping{}, fmt.Errorf("presentation: theta %g outside [0,1]", theta)
	}
	tagSets := make(map[graph.NodeID]scoring.Set[graph.NodeID], len(items))
	for _, it := range items {
		tagSets[it] = taggers(g, it)
	}
	var groups []Group
	leaders := []graph.NodeID{}
	assign := map[graph.NodeID]int{}
	for _, it := range sortedIDs(items) {
		placed := false
		for gi, leader := range leaders {
			if scoring.Jaccard(tagSets[leader], tagSets[it]) >= theta {
				groups[gi].Items = append(groups[gi].Items, it)
				assign[it] = gi
				placed = true
				break
			}
		}
		if !placed {
			assign[it] = len(groups)
			leaders = append(leaders, it)
			groups = append(groups, Group{Label: labelFor(g, it), Items: []graph.NodeID{it}})
		}
	}
	finishGroups(groups, scores)
	return Grouping{Criterion: "social", Groups: groups}, nil
}

// TopicalGrouping partitions items by the topic node their belong link
// points to (items without a topic go to an "untopiced" group). It
// requires the Content Analyzer to have derived topics.
func TopicalGrouping(g *graph.Graph, items []graph.NodeID, scores map[graph.NodeID]float64) Grouping {
	byTopic := map[graph.NodeID][]graph.NodeID{}
	var untopiced []graph.NodeID
	for _, it := range sortedIDs(items) {
		topic := graph.NodeID(0)
		for _, l := range g.Out(it) {
			if l.HasType(graph.TypeBelong) {
				topic = l.Tgt
				break
			}
		}
		if topic == 0 {
			untopiced = append(untopiced, it)
			continue
		}
		byTopic[topic] = append(byTopic[topic], it)
	}
	var groups []Group
	for _, topic := range sortedIDs(keysOf(byTopic)) {
		groups = append(groups, Group{Label: labelFor(g, topic), Items: byTopic[topic]})
	}
	if len(untopiced) > 0 {
		groups = append(groups, Group{Label: "other", Items: untopiced})
	}
	finishGroups(groups, scores)
	return Grouping{Criterion: "topical", Groups: groups}
}

// StructuralGrouping partitions items by the (first) value of an attribute
// — faceted grouping over the items' rich structure, e.g. by city or
// category. Items lacking the attribute group under "unknown".
func StructuralGrouping(g *graph.Graph, items []graph.NodeID, scores map[graph.NodeID]float64, attr string) Grouping {
	byVal := map[string][]graph.NodeID{}
	for _, it := range sortedIDs(items) {
		n := g.Node(it)
		val := "unknown"
		if n != nil {
			if v := n.Attrs.Get(attr); v != "" {
				val = v
			}
		}
		byVal[val] = append(byVal[val], it)
	}
	vals := make([]string, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	var groups []Group
	for _, v := range vals {
		groups = append(groups, Group{Label: v, Items: byVal[v]})
	}
	finishGroups(groups, scores)
	return Grouping{Criterion: "structural:" + attr, Groups: groups}
}

// finishGroups computes qualities and orders each group's items by
// descending score (Result Selector: ranking within groups), then orders
// groups by descending quality (ranking across groups).
func finishGroups(groups []Group, scores map[graph.NodeID]float64) {
	for i := range groups {
		items := groups[i].Items
		sort.Slice(items, func(a, b int) bool {
			sa, sb := scores[items[a]], scores[items[b]]
			if sa != sb {
				return sa > sb
			}
			return items[a] < items[b]
		})
		var sum float64
		for _, it := range items {
			sum += scores[it]
		}
		if len(items) > 0 {
			groups[i].Quality = sum / float64(len(items))
		}
	}
	sort.SliceStable(groups, func(a, b int) bool {
		if groups[a].Quality != groups[b].Quality {
			return groups[a].Quality > groups[b].Quality
		}
		return groups[a].Label < groups[b].Label
	})
}

func labelFor(g *graph.Graph, id graph.NodeID) string {
	if n := g.Node(id); n != nil {
		if name := n.Attrs.Get("name"); name != "" {
			return name
		}
	}
	return fmt.Sprintf("group-%d", id)
}

func sortedIDs(ids []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func keysOf(m map[graph.NodeID][]graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
