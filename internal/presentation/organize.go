package presentation

import (
	"fmt"
	"math"

	"socialscope/internal/graph"
)

// OrganizeConfig bounds a presentation: the paper's meaningfulness
// criteria are the total number of groups (screen real estate), group
// quality, and group size.
type OrganizeConfig struct {
	MaxGroups   int     // groups shown at once (default 6)
	MinSize     int     // groups smaller than this fold into "more" (default 1)
	SocialTheta float64 // θ for social grouping (default 0.3)
	FacetAttr   string  // attribute for structural grouping (default "city")
}

func (c *OrganizeConfig) fill() {
	if c.MaxGroups <= 0 {
		c.MaxGroups = 6
	}
	if c.MinSize <= 0 {
		c.MinSize = 1
	}
	if c.SocialTheta <= 0 {
		c.SocialTheta = 0.3
	}
	if c.FacetAttr == "" {
		c.FacetAttr = "city"
	}
}

// Meaningfulness scores a grouping for the Information Organizer's choice
// among candidate criteria. It combines the paper's three criteria:
// group count fit (penalizing more groups than fit on screen and the
// degenerate 1-group case), balance (entropy of the size distribution, so
// all-singletons and one-giant-group both score low), and mean quality.
func Meaningfulness(gr Grouping, cfg OrganizeConfig) float64 {
	cfg.fill()
	n := len(gr.Groups)
	if n == 0 {
		return 0
	}
	total := 0
	var quality float64
	for _, g := range gr.Groups {
		total += g.Size()
		quality += g.Quality * float64(g.Size())
	}
	if total == 0 {
		return 0
	}
	quality /= float64(total)

	// Count fit: 1 when 2..MaxGroups, decaying outside.
	countFit := 1.0
	switch {
	case n == 1:
		countFit = 0.25
	case n > cfg.MaxGroups:
		countFit = float64(cfg.MaxGroups) / float64(n)
	}
	// Balance: normalized entropy of group sizes.
	entropy := 0.0
	for _, g := range gr.Groups {
		p := float64(g.Size()) / float64(total)
		if p > 0 {
			entropy -= p * math.Log(p)
		}
	}
	balance := 1.0
	if n > 1 {
		balance = entropy / math.Log(float64(n))
	}
	return countFit * (0.5 + 0.5*balance) * (0.5 + 0.5*quality)
}

// Presentation is the organized result: the chosen grouping plus the
// alternatives considered, so a UI can offer "group by ..." toggles.
type Presentation struct {
	Chosen       Grouping
	Score        float64
	Alternatives []Grouping
}

// Organize runs the Information Organizer: build the social, topical and
// structural candidate groupings, score each for meaningfulness, cap the
// chosen one at MaxGroups (folding the overflow into a "more" group), and
// return the winner with the alternatives.
func Organize(g *graph.Graph, items []graph.NodeID, scores map[graph.NodeID]float64, cfg OrganizeConfig) (Presentation, error) {
	cfg.fill()
	if len(items) == 0 {
		return Presentation{}, fmt.Errorf("presentation: nothing to organize")
	}
	social, err := SocialGrouping(g, items, scores, cfg.SocialTheta)
	if err != nil {
		return Presentation{}, err
	}
	candidates := []Grouping{
		social,
		TopicalGrouping(g, items, scores),
		StructuralGrouping(g, items, scores, cfg.FacetAttr),
	}
	best, bestScore := 0, -1.0
	for i, c := range candidates {
		if s := Meaningfulness(c, cfg); s > bestScore {
			best, bestScore = i, s
		}
	}
	chosen := capGroups(candidates[best], cfg.MaxGroups)
	var alts []Grouping
	for i, c := range candidates {
		if i != best {
			alts = append(alts, c)
		}
	}
	return Presentation{Chosen: chosen, Score: bestScore, Alternatives: alts}, nil
}

// capGroups keeps the MaxGroups best groups and folds the rest into a
// trailing "more" group, mirroring the paper's screen-real-estate
// constraint with hierarchical presentation.
func capGroups(gr Grouping, max int) Grouping {
	if len(gr.Groups) <= max {
		return gr
	}
	kept := append([]Group(nil), gr.Groups[:max-1]...)
	var overflow Group
	overflow.Label = "more"
	var qualitySum float64
	count := 0
	for _, g := range gr.Groups[max-1:] {
		overflow.Items = append(overflow.Items, g.Items...)
		qualitySum += g.Quality * float64(g.Size())
		count += g.Size()
	}
	if count > 0 {
		overflow.Quality = qualitySum / float64(count)
	}
	kept = append(kept, overflow)
	return Grouping{Criterion: gr.Criterion, Groups: kept}
}

// Zoom expands one group into subgroups — the paper's zoom-in request.
// Social groups re-cluster at a tighter θ; other criteria re-group the
// subset structurally by the fallback attribute. The returned grouping is
// again capped at MaxGroups.
func Zoom(g *graph.Graph, parent Group, scores map[graph.NodeID]float64, cfg OrganizeConfig, criterion string) (Grouping, error) {
	cfg.fill()
	switch criterion {
	case "social":
		sub, err := SocialGrouping(g, parent.Items, scores, math.Min(1, cfg.SocialTheta*2))
		if err != nil {
			return Grouping{}, err
		}
		return capGroups(sub, cfg.MaxGroups), nil
	default:
		sub := StructuralGrouping(g, parent.Items, scores, cfg.FacetAttr)
		return capGroups(sub, cfg.MaxGroups), nil
	}
}
