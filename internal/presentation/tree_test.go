package presentation

import (
	"strings"
	"testing"

	"socialscope/internal/graph"
)

func TestBuildTreeAndZoom(t *testing.T) {
	f := buildAlexia(t)
	tree, err := BuildTree(f.g, f.items, f.scores, OrganizeConfig{MaxGroups: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 || tree.Focus() != tree.Root {
		t.Fatal("fresh tree should focus the root")
	}
	if len(tree.Root.Children) == 0 {
		t.Fatal("root has no groups")
	}
	// Zoom into the first group.
	first := tree.Root.Children[0].Group.Label
	if err := tree.ZoomIn(first); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 || tree.Focus().Group.Label != first {
		t.Errorf("focus after zoom = %q at depth %d", tree.Focus().Group.Label, tree.Depth())
	}
	// Zoom out returns to the root; at root it is a no-op.
	tree.ZoomOut()
	if tree.Depth() != 0 {
		t.Error("zoom out did not return to root")
	}
	tree.ZoomOut()
	if tree.Depth() != 0 {
		t.Error("zoom out at root should be a no-op")
	}
	// Unknown label.
	if err := tree.ZoomIn("no-such-group"); err == nil {
		t.Error("zoom into unknown group accepted")
	}
	out := tree.Render()
	if !strings.Contains(out, "all results") || !strings.Contains(out, "focus") {
		t.Errorf("render = %q", out)
	}
}

func TestTreeLeavesStayLeaves(t *testing.T) {
	// A single-item group must not expand into a ladder of itself.
	b := graph.NewBuilder()
	u := b.Node([]string{graph.TypeUser})
	it := b.Node([]string{graph.TypeItem}, "name", "only", "city", "c")
	b.Link(u, it, []string{graph.TypeAct, graph.SubtypeVisit})
	scores := map[graph.NodeID]float64{it: 1}
	tree, err := BuildTree(b.Graph(), []graph.NodeID{it}, scores, OrganizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	label := tree.Root.Children[0].Group.Label
	if err := tree.ZoomIn(label); err != nil {
		t.Fatal(err)
	}
	if len(tree.Focus().Children) != 0 {
		t.Errorf("singleton group expanded: %v", tree.Focus().Children)
	}
}

func TestDiversify(t *testing.T) {
	// Three near-duplicate items and one distinct; with λ=0.5 the distinct
	// item must displace a duplicate despite a lower score.
	b := graph.NewBuilder()
	a1 := b.Node([]string{graph.TypeItem}, "keywords", "baseball stadium denver")
	a2 := b.Node([]string{graph.TypeItem}, "keywords", "baseball stadium denver")
	a3 := b.Node([]string{graph.TypeItem}, "keywords", "baseball stadium denver")
	d := b.Node([]string{graph.TypeItem}, "keywords", "opera house vienna")
	g := b.Graph()
	items := []graph.NodeID{a1, a2, a3, d}
	scores := map[graph.NodeID]float64{a1: 1.0, a2: 0.9, a3: 0.8, d: 0.5}

	pure := Diversify(g, items, scores, 1, 3)
	if pure[0] != a1 || pure[1] != a2 || pure[2] != a3 {
		t.Errorf("λ=1 should be pure relevance order: %v", pure)
	}
	div := Diversify(g, items, scores, 0.5, 3)
	foundDistinct := false
	for _, it := range div {
		if it == d {
			foundDistinct = true
		}
	}
	if !foundDistinct {
		t.Errorf("λ=0.5 failed to diversify: %v", div)
	}
	if div[0] != a1 {
		t.Errorf("top result should stay the best item: %v", div)
	}
	// k capping and λ clamping.
	if got := Diversify(g, items, scores, 2.0, 2); len(got) != 2 {
		t.Errorf("k=2 gave %v", got)
	}
	if got := Diversify(g, items, scores, -1, 0); len(got) != len(items) {
		t.Errorf("k=0 should return all: %v", got)
	}
}
