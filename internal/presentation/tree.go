package presentation

import (
	"fmt"
	"strings"

	"socialscope/internal/graph"
)

// TreeNode is one level of the hierarchical presentation Section 7.1
// sketches ("present the groups hierarchically, i.e., initially present a
// small number of groups appropriate for the screen area and upon request
// divide a group that the user is interested in into subgroups"): a group
// with lazily-materialized subgroups.
type TreeNode struct {
	Group    Group
	Depth    int
	Children []*TreeNode // nil until Expand
	expanded bool
}

// Tree is a navigable presentation hierarchy with zoom-in and zoom-out.
type Tree struct {
	g      *graph.Graph
	scores map[graph.NodeID]float64
	cfg    OrganizeConfig
	Root   *TreeNode
	// path is the zoom trail from root to the current focus.
	path []*TreeNode
}

// BuildTree organizes the items once and wraps the result as the top level
// of a zoomable hierarchy. The root's children are the chosen grouping's
// groups.
func BuildTree(g *graph.Graph, items []graph.NodeID, scores map[graph.NodeID]float64, cfg OrganizeConfig) (*Tree, error) {
	cfg.fill()
	pres, err := Organize(g, items, scores, cfg)
	if err != nil {
		return nil, err
	}
	root := &TreeNode{
		Group:    Group{Label: "all results", Items: append([]graph.NodeID(nil), items...)},
		expanded: true,
	}
	for _, grp := range pres.Chosen.Groups {
		root.Children = append(root.Children, &TreeNode{Group: grp, Depth: 1})
	}
	t := &Tree{g: g, scores: scores, cfg: cfg, Root: root}
	t.path = []*TreeNode{root}
	return t, nil
}

// Focus returns the node currently zoomed into.
func (t *Tree) Focus() *TreeNode { return t.path[len(t.path)-1] }

// Depth returns the current zoom depth (0 = root).
func (t *Tree) Depth() int { return len(t.path) - 1 }

// ZoomIn expands the focus's child with the given label and moves the
// focus into it. Children are materialized on demand: social re-grouping
// at a tighter threshold for odd depths, structural faceting for even
// ones, so successive zooms alternate criteria the way a faceted UI would.
func (t *Tree) ZoomIn(label string) error {
	focus := t.Focus()
	if err := t.expand(focus); err != nil {
		return err
	}
	for _, child := range focus.Children {
		if child.Group.Label == label {
			if err := t.expand(child); err != nil {
				return err
			}
			t.path = append(t.path, child)
			return nil
		}
	}
	return fmt.Errorf("presentation: no group %q at depth %d", label, focus.Depth)
}

// ZoomOut moves the focus one level up; it is a no-op at the root.
func (t *Tree) ZoomOut() {
	if len(t.path) > 1 {
		t.path = t.path[:len(t.path)-1]
	}
}

// expand materializes a node's children if not already done. Singleton
// groups stay leaves.
func (t *Tree) expand(n *TreeNode) error {
	if n.expanded {
		return nil
	}
	n.expanded = true
	if len(n.Group.Items) <= 1 {
		return nil
	}
	criterion := "social"
	if n.Depth%2 == 0 {
		criterion = "structural"
	}
	sub, err := Zoom(t.g, n.Group, t.scores, t.cfg, criterion)
	if err != nil {
		return err
	}
	// A zoom that fails to subdivide (one group equal to the parent)
	// leaves the node a leaf rather than an infinite ladder.
	if len(sub.Groups) == 1 && sub.Groups[0].Size() == n.Group.Size() {
		return nil
	}
	for _, grp := range sub.Groups {
		n.Children = append(n.Children, &TreeNode{Group: grp, Depth: n.Depth + 1})
	}
	return nil
}

// Render draws the hierarchy from the root down to expanded nodes, marking
// the focus, for terminal UIs and tests.
func (t *Tree) Render() string {
	var sb strings.Builder
	var rec func(n *TreeNode, indent string)
	rec = func(n *TreeNode, indent string) {
		marker := ""
		if n == t.Focus() {
			marker = " ← focus"
		}
		fmt.Fprintf(&sb, "%s[%s] %d item(s)%s\n", indent, n.Group.Label, n.Group.Size(), marker)
		for _, c := range n.Children {
			rec(c, indent+"  ")
		}
	}
	rec(t.Root, "")
	return sb.String()
}

// Diversify re-ranks a scored result list with maximal marginal relevance:
// each pick maximizes λ·score − (1−λ)·max-similarity-to-picked, where
// similarity is content Jaccard. The paper's Section 7.2 cites
// diversification [30] as the companion concern to explanations; this is
// the Result Selector hook for it. λ=1 reduces to pure relevance order.
func Diversify(g *graph.Graph, items []graph.NodeID, scores map[graph.NodeID]float64, lambda float64, k int) []graph.NodeID {
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	if k <= 0 || k > len(items) {
		k = len(items)
	}
	remaining := append([]graph.NodeID(nil), sortedIDs(items)...)
	var picked []graph.NodeID
	for len(picked) < k && len(remaining) > 0 {
		bestIdx, bestVal := -1, 0.0
		for i, cand := range remaining {
			maxSim := 0.0
			for _, p := range picked {
				if s := itemSim(g, cand, p); s > maxSim {
					maxSim = s
				}
			}
			val := lambda*scores[cand] - (1-lambda)*maxSim
			if bestIdx < 0 || val > bestVal {
				bestIdx, bestVal = i, val
			}
		}
		picked = append(picked, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return picked
}
