package presentation

import (
	"strings"
	"testing"

	"socialscope/internal/graph"
)

// alexiaFixture models Example 3: a broad "american history" query whose
// results span cities and endorser communities.
type alexiaFixture struct {
	g           *graph.Graph
	alexia      graph.NodeID
	classmates  []graph.NodeID
	soccerTeam  []graph.NodeID
	items       []graph.NodeID // 0,1: endorsed by classmates; 2,3: by soccer team
	topicWar    graph.NodeID
	topicMuseum graph.NodeID
	scores      map[graph.NodeID]float64
}

func buildAlexia(t testing.TB) *alexiaFixture {
	t.Helper()
	b := graph.NewBuilder()
	f := &alexiaFixture{scores: map[graph.NodeID]float64{}}
	f.alexia = b.Node([]string{graph.TypeUser}, "name", "Alexia")
	for i := 0; i < 2; i++ {
		f.classmates = append(f.classmates, b.Node([]string{graph.TypeUser}, "name", "classmate"))
		f.soccerTeam = append(f.soccerTeam, b.Node([]string{graph.TypeUser}, "name", "soccer"))
	}
	cities := []string{"Boston", "Boston", "Philadelphia", "Philadelphia"}
	for i := 0; i < 4; i++ {
		it := b.Node([]string{graph.TypeItem, "destination"},
			"name", "site", "city", cities[i], "keywords", "american history")
		f.items = append(f.items, it)
		f.scores[it] = 1.0 - float64(i)*0.1
	}
	f.topicWar = b.Node([]string{graph.TypeTopic}, "name", "Independence War")
	f.topicMuseum = b.Node([]string{graph.TypeTopic}, "name", "Museums")
	// Belong links: items 0,2 → war; 1,3 → museum.
	b.Link(f.items[0], f.topicWar, []string{graph.TypeBelong})
	b.Link(f.items[2], f.topicWar, []string{graph.TypeBelong})
	b.Link(f.items[1], f.topicMuseum, []string{graph.TypeBelong})
	b.Link(f.items[3], f.topicMuseum, []string{graph.TypeBelong})
	// Endorsements: classmates act on items 0,1; soccer on 2,3.
	for _, c := range f.classmates {
		b.Link(f.alexia, c, []string{graph.TypeConnect, graph.SubtypeFriend})
		b.Link(c, f.items[0], []string{graph.TypeAct, graph.SubtypeReview}, "rating", "0.8")
		b.Link(c, f.items[1], []string{graph.TypeAct, graph.SubtypeReview})
	}
	for _, s := range f.soccerTeam {
		b.Link(f.alexia, s, []string{graph.TypeConnect, graph.SubtypeFriend})
		b.Link(s, f.items[2], []string{graph.TypeAct, graph.SubtypeVisit})
		b.Link(s, f.items[3], []string{graph.TypeAct, graph.SubtypeVisit})
	}
	f.g = b.Graph()
	return f
}

func TestSocialGrouping(t *testing.T) {
	f := buildAlexia(t)
	gr, err := SocialGrouping(f.g, f.items, f.scores, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Items 0,1 share taggers (classmates); 2,3 share taggers (soccer):
	// exactly two groups.
	if len(gr.Groups) != 2 {
		t.Fatalf("groups = %+v", gr.Groups)
	}
	for _, g := range gr.Groups {
		if g.Size() != 2 {
			t.Errorf("group %q size = %d, want 2", g.Label, g.Size())
		}
	}
	if gr.Criterion != "social" {
		t.Error("criterion label wrong")
	}
	if _, err := SocialGrouping(f.g, f.items, f.scores, 2); err == nil {
		t.Error("theta > 1 accepted")
	}
}

func TestTopicalGrouping(t *testing.T) {
	f := buildAlexia(t)
	gr := TopicalGrouping(f.g, f.items, f.scores)
	if len(gr.Groups) != 2 {
		t.Fatalf("groups = %+v", gr.Groups)
	}
	labels := map[string]bool{}
	for _, g := range gr.Groups {
		labels[g.Label] = true
	}
	if !labels["Independence War"] || !labels["Museums"] {
		t.Errorf("labels = %v", labels)
	}
	// Items without belong links fall into "other".
	b := graph.NewBuilder()
	lone := b.Node([]string{graph.TypeItem})
	gr2 := TopicalGrouping(b.Graph(), []graph.NodeID{lone}, nil)
	if len(gr2.Groups) != 1 || gr2.Groups[0].Label != "other" {
		t.Errorf("untopiced grouping = %+v", gr2.Groups)
	}
}

func TestStructuralGrouping(t *testing.T) {
	f := buildAlexia(t)
	gr := StructuralGrouping(f.g, f.items, f.scores, "city")
	if len(gr.Groups) != 2 {
		t.Fatalf("groups = %+v", gr.Groups)
	}
	for _, g := range gr.Groups {
		if g.Label != "Boston" && g.Label != "Philadelphia" {
			t.Errorf("unexpected label %q", g.Label)
		}
	}
	// Missing attribute → "unknown".
	gr2 := StructuralGrouping(f.g, f.items, f.scores, "no-such-attr")
	if len(gr2.Groups) != 1 || gr2.Groups[0].Label != "unknown" {
		t.Errorf("missing-attr grouping = %+v", gr2.Groups)
	}
}

func TestGroupOrderingAndQuality(t *testing.T) {
	f := buildAlexia(t)
	gr := StructuralGrouping(f.g, f.items, f.scores, "city")
	// Boston group: scores 1.0, 0.9 → quality 0.95; Philadelphia: 0.8,
	// 0.7 → 0.75. Boston first.
	if gr.Groups[0].Label != "Boston" {
		t.Errorf("groups not ordered by quality: %+v", gr.Groups)
	}
	if q := gr.Groups[0].Quality; q < 0.94 || q > 0.96 {
		t.Errorf("Boston quality = %f", q)
	}
	// Within-group ranking: best item first.
	if gr.Groups[0].Items[0] != f.items[0] {
		t.Error("within-group ranking wrong")
	}
}

func TestMeaningfulness(t *testing.T) {
	f := buildAlexia(t)
	cfg := OrganizeConfig{}
	balanced := StructuralGrouping(f.g, f.items, f.scores, "city")
	single := Grouping{Criterion: "x", Groups: []Group{{Label: "all", Items: f.items}}}
	if Meaningfulness(balanced, cfg) <= Meaningfulness(single, cfg) {
		t.Error("balanced grouping should beat the single-group degenerate")
	}
	if Meaningfulness(Grouping{}, cfg) != 0 {
		t.Error("empty grouping should score 0")
	}
	many := Grouping{Criterion: "y"}
	for i := 0; i < 20; i++ {
		many.Groups = append(many.Groups, Group{Items: []graph.NodeID{graph.NodeID(i + 1)}})
	}
	if Meaningfulness(many, cfg) >= Meaningfulness(balanced, cfg) {
		t.Error("20 singleton groups should not beat a balanced 2-group split")
	}
}

func TestOrganize(t *testing.T) {
	f := buildAlexia(t)
	p, err := Organize(f.g, f.items, f.scores, OrganizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chosen.Groups) == 0 || p.Score <= 0 {
		t.Fatalf("presentation = %+v", p)
	}
	if len(p.Alternatives) != 2 {
		t.Errorf("alternatives = %d, want 2", len(p.Alternatives))
	}
	if _, err := Organize(f.g, nil, nil, OrganizeConfig{}); err == nil {
		t.Error("empty item set accepted")
	}
}

func TestCapGroupsAndZoom(t *testing.T) {
	// Three items with pairwise-disjoint taggers: θ=1 social grouping
	// yields three singleton groups; capping at 2 folds two into "more".
	b := graph.NewBuilder()
	scores := map[graph.NodeID]float64{}
	var items []graph.NodeID
	for i := 0; i < 3; i++ {
		u := b.Node([]string{graph.TypeUser})
		it := b.Node([]string{graph.TypeItem}, "name", "it", "city", "C")
		b.Link(u, it, []string{graph.TypeAct, graph.SubtypeVisit})
		items = append(items, it)
		scores[it] = 1.0 - float64(i)*0.1
	}
	g := b.Graph()
	gr, err := SocialGrouping(g, items, scores, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 3 {
		t.Fatalf("expected 3 singleton groups, got %+v", gr.Groups)
	}
	capped := capGroups(gr, 2)
	if len(capped.Groups) != 2 {
		t.Fatalf("capped = %+v", capped.Groups)
	}
	if capped.Groups[1].Label != "more" {
		t.Errorf("overflow label = %q", capped.Groups[1].Label)
	}
	total := 0
	for _, grp := range capped.Groups {
		total += grp.Size()
	}
	if total != len(items) {
		t.Error("capping lost items")
	}

	// Zoom into the merged group.
	sub, err := Zoom(g, capped.Groups[1], scores, OrganizeConfig{}, "social")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Groups) != 2 { // disjoint taggers separate again
		t.Errorf("social zoom groups = %+v", sub.Groups)
	}
	sub2, err := Zoom(g, capped.Groups[1], scores, OrganizeConfig{}, "structural")
	if err != nil || len(sub2.Groups) == 0 {
		t.Error("structural zoom failed")
	}
}

func TestExplainCF(t *testing.T) {
	f := buildAlexia(t)
	ex := ExplainCF(f.g, f.alexia, f.items[0])
	// Both classmates endorse item 0 and are Alexia's friends (sim 1,
	// rating 0.8): weights 0.8.
	if len(ex.Users) != 2 {
		t.Fatalf("explanation users = %+v", ex.Users)
	}
	for _, w := range ex.Users {
		if w.Weight != 0.8 {
			t.Errorf("weight = %f, want 0.8 (sim 1 × rating 0.8)", w.Weight)
		}
	}
	// 2 of 4 friends endorsed: "50% of your friends...".
	if !strings.Contains(ex.Summary, "50%") {
		t.Errorf("summary = %q", ex.Summary)
	}
}

func TestExplainCFNoFriends(t *testing.T) {
	b := graph.NewBuilder()
	u := b.Node([]string{graph.TypeUser})
	v := b.Node([]string{graph.TypeUser})
	i := b.Node([]string{graph.TypeItem})
	// v acted on i; u and v share no connection and no items → sim 0 → no
	// explanation users.
	b.Link(v, i, []string{graph.TypeAct, graph.SubtypeVisit})
	ex := ExplainCF(b.Graph(), u, i)
	if len(ex.Users) != 0 || !strings.Contains(ex.Summary, "No social endorsement") {
		t.Errorf("explanation = %+v", ex)
	}
}

func TestExplainContent(t *testing.T) {
	b := graph.NewBuilder()
	u := b.Node([]string{graph.TypeUser})
	past := b.Node([]string{graph.TypeItem}, "keywords", "baseball stadium denver")
	rec := b.Node([]string{graph.TypeItem}, "keywords", "baseball museum denver")
	other := b.Node([]string{graph.TypeItem}, "keywords", "beach resort")
	b.Link(u, past, []string{graph.TypeAct, graph.SubtypeVisit}, "rating", "0.5")
	b.Link(u, other, []string{graph.TypeAct, graph.SubtypeVisit})
	g := b.Graph()
	ex := ExplainContent(g, u, rec)
	if len(ex.Items) != 1 || ex.Items[0].ID != past {
		t.Fatalf("explanation items = %+v", ex.Items)
	}
	if ex.Items[0].Weight <= 0 || ex.Items[0].Weight > 0.5 {
		t.Errorf("weight = %f, want (0, 0.5]", ex.Items[0].Weight)
	}
	if !strings.Contains(ex.Summary, "50%") { // 1 of 2 past items similar
		t.Errorf("summary = %q", ex.Summary)
	}
	// User with no history.
	lone := graph.NewNode(graph.IDSourceFor(g).NextNode(), graph.TypeUser)
	if err := g.AddNode(lone); err != nil {
		t.Fatal(err)
	}
	ex2 := ExplainContent(g, lone.ID, rec)
	if len(ex2.Items) != 0 || !strings.Contains(ex2.Summary, "no past activity") {
		t.Errorf("explanation = %+v", ex2)
	}
}

func TestExplainGroup(t *testing.T) {
	f := buildAlexia(t)
	group := Group{Label: "Boston", Items: f.items[:2]}
	ex := ExplainGroup(f.g, f.alexia, group, "cf")
	if len(ex.Users) != 2 { // both classmates, weights summed over 2 items
		t.Fatalf("group explanation users = %+v", ex.Users)
	}
	// Each classmate: item0 weight 0.8 + item1 weight 1.0 (unrated act) = 1.8.
	for _, w := range ex.Users {
		if w.Weight < 1.79 || w.Weight > 1.81 {
			t.Errorf("aggregated weight = %f, want 1.8", w.Weight)
		}
	}
	if !strings.Contains(ex.Summary, "Boston") {
		t.Errorf("summary = %q", ex.Summary)
	}
	exContent := ExplainGroup(f.g, f.alexia, group, "content")
	if exContent.Strategy != "content" {
		t.Error("strategy not propagated")
	}
}
