package presentation

import "testing"

func BenchmarkSocialGroupingSmall(b *testing.B) {
	f := buildAlexiaB(b)
	for i := 0; i < b.N; i++ {
		if _, err := SocialGrouping(f.g, f.items, f.scores, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrganizeSmall(b *testing.B) {
	f := buildAlexiaB(b)
	for i := 0; i < b.N; i++ {
		if _, err := Organize(f.g, f.items, f.scores, OrganizeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplainCFSmall(b *testing.B) {
	f := buildAlexiaB(b)
	for i := 0; i < b.N; i++ {
		ExplainCF(f.g, f.alexia, f.items[i%len(f.items)])
	}
}

func buildAlexiaB(b *testing.B) *alexiaFixture { return buildAlexia(b) }
