package core

import (
	"fmt"
	"sort"

	"socialscope/internal/graph"
)

// NodeAggregate implements γN⟨C,d,att,A⟩(G) (Definition 9): the output is
// isomorphic to G, and every node v that anchors at least one link
// satisfying C at its d end receives att = A({l | l satisfies C, l.d = v}).
// The directionality parameter d acts as the group-by: d=Src groups a
// node's outgoing links, d=Tgt its incoming links. When att is "type", the
// aggregated values extend the node's type set.
func NodeAggregate(g *graph.Graph, c Condition, d graph.Direction, att string, a Aggregator) (*graph.Graph, error) {
	if a == nil {
		return nil, fmt.Errorf("core: NodeAggregate requires an aggregation function")
	}
	out := g.Clone()
	groups := make(map[graph.NodeID][]*graph.Link)
	for _, l := range out.Links() {
		if c.SatisfiedByLink(l) {
			v := l.End(d)
			groups[v] = append(groups[v], l)
		}
	}
	for v, ls := range groups {
		values := a.Aggregate(ls)
		node := out.Node(v)
		if att == "type" {
			for _, t := range values {
				node.AddType(t)
			}
			continue
		}
		node.Attrs.Set(att, values...)
	}
	return out, nil
}

// LinkAggregateOption customizes LinkAggregate beyond the paper's
// signature.
type LinkAggregateOption func(*linkAggConfig)

type linkAggConfig struct {
	carry []string
}

// WithCarry copies the named attributes from one input link of each group
// onto the aggregated link. Example 5 step 6 relies on this ("retains the
// value of sim from any of the input links" — well defined because the
// value is constant within a group).
func WithCarry(attrs ...string) LinkAggregateOption {
	return func(c *linkAggConfig) { c.carry = append(c.carry, attrs...) }
}

// LinkAggregate implements γL⟨C,att,A⟩(G) (Definition 10):
//
//  1. partition the links satisfying C on (src, tgt);
//  2. replace each group L(s,t) with a single fresh link s→t;
//  3. attach att = A(L(s,t)) to the new link.
//
// Links not satisfying C pass through unchanged, as do all nodes. When att
// is "type", the aggregated values become the new link's type set. Fresh
// link ids come from ids.
func LinkAggregate(g *graph.Graph, c Condition, att string, a Aggregator, ids *graph.IDSource, opts ...LinkAggregateOption) (*graph.Graph, error) {
	if a == nil {
		return nil, fmt.Errorf("core: LinkAggregate requires an aggregation function")
	}
	if ids == nil {
		return nil, fmt.Errorf("core: LinkAggregate requires an id source")
	}
	var cfg linkAggConfig
	for _, o := range opts {
		o(&cfg)
	}

	out := graph.New()
	for _, n := range g.Nodes() {
		out.PutNode(n)
	}
	type pair struct{ s, t graph.NodeID }
	groups := make(map[pair][]*graph.Link)
	var order []pair // deterministic group emission order
	for _, l := range g.Links() {
		if !c.SatisfiedByLink(l) {
			if err := out.AddLink(l); err != nil {
				return nil, err
			}
			continue
		}
		p := pair{l.Src, l.Tgt}
		if _, ok := groups[p]; !ok {
			order = append(order, p)
		}
		groups[p] = append(groups[p], l)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].s != order[j].s {
			return order[i].s < order[j].s
		}
		return order[i].t < order[j].t
	})
	for _, p := range order {
		ls := groups[p]
		values := a.Aggregate(ls)
		var nl *graph.Link
		if att == "type" {
			nl = graph.NewLink(ids.NextLink(), p.s, p.t, values...)
		} else {
			nl = graph.NewLink(ids.NextLink(), p.s, p.t)
			nl.Attrs.Set(att, values...)
		}
		for _, k := range cfg.carry {
			if vs := ls[0].Attrs.All(k); len(vs) > 0 {
				nl.Attrs.Set(k, vs...)
			}
		}
		if err := out.AddLink(nl); err != nil {
			return nil, err
		}
	}
	return out, nil
}
