package core

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse feeds the algebra parser arbitrary input. The parser fronts
// the ssalgebra REPL and any stored query text, so it must never panic or
// hang — errors are the only acceptable failure mode. For inputs it does
// accept, the parse must be deterministic and the resulting plan must
// render (String is part of the Expr contract and walks the whole tree,
// so it smokes out malformed nodes).
//
// Seeds mirror the hand-written parse_test cases: every accepted syntax
// form plus the documented rejection cases, so fuzzing explores mutations
// of both sides of the grammar.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// accepted forms
		"G",
		"selectN{type=destination; rating>=0.5}(G)",
		"selectN{type=destination; 'near Denver'}(G)",
		"selectN{type=user,traveler}(G)",
		"selectL{type=friend}(semijoin(src,src)(G, selectN{id=101}(G)))",
		"selectN{type=user}(G) union selectN{type=item}(G)",
		"G minus selectN{type=user}(G) union selectN{type=user}(G)",
		"(G intersect G) lminus selectL{type=friend}(G)",
		"selectL{type=visit}(G) intersect selectL{type=act}(G)",
		"(selectN{type=user}(G))",
		"selectN{a!=1; b<2; c<=3; d>4; e>=5; f=6,7,8}(G)",
		// rejected forms
		"",
		"selectN{type=user}(G",
		"selectN{type=user(G)",
		"selectN{type=}(G)",
		"selectN{type user}(G)",
		"selectN{'unterminated}(G)",
		"semijoin(up,down)(G, G)",
		"semijoin(src,src)(G G)",
		"G union",
		"union G",
		"G extra",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return // bound recursion depth; real query text is short
		}
		e1, err1 := Parse(input)
		e2, err2 := Parse(input)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic accept/reject for %q: %v vs %v", input, err1, err2)
		}
		if err1 != nil {
			if !strings.HasPrefix(err1.Error(), "core: parse") {
				t.Fatalf("error without package prefix for %q: %v", input, err1)
			}
			return
		}
		s1, s2 := e1.String(), e2.String()
		if s1 != s2 {
			t.Fatalf("nondeterministic plan for %q: %q vs %q", input, s1, s2)
		}
		if utf8.ValidString(input) && !utf8.ValidString(s1) {
			t.Fatalf("plan rendering corrupted UTF-8 for %q: %q", input, s1)
		}
	})
}
