package core

import (
	"math"
	"testing"

	"socialscope/internal/graph"
)

// cfFixture builds the collaborative-filtering scenario for Example 5:
//
//	John(1)  visits a(10), b(11)
//	Ann(2)   visits a, b, c(12)   → Jaccard(John,Ann) = 2/3 > 0.5
//	Bob(3)   visits a, d(13), e(14) → 1/4 ≤ 0.5
//	Eve(4)   visits b, c          → 1/3 ≤ 0.5
//
// Only Ann lands in John's similarity network, so CF recommends Ann's
// destinations with score 2/3.
func cfFixture(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	addN := func(id graph.NodeID, types ...string) {
		if err := g.AddNode(graph.NewNode(id, types...)); err != nil {
			t.Fatal(err)
		}
	}
	addL := func(id graph.LinkID, src, tgt graph.NodeID) {
		if err := g.AddLink(graph.NewLink(id, src, tgt, graph.TypeAct, graph.SubtypeVisit)); err != nil {
			t.Fatal(err)
		}
	}
	for id := graph.NodeID(1); id <= 4; id++ {
		addN(id, graph.TypeUser)
	}
	for id := graph.NodeID(10); id <= 14; id++ {
		addN(id, graph.TypeItem, "destination")
	}
	addL(101, 1, 10)
	addL(102, 1, 11)
	addL(103, 2, 10)
	addL(104, 2, 11)
	addL(105, 2, 12)
	addL(106, 3, 10)
	addL(107, 3, 13)
	addL(108, 3, 14)
	addL(109, 4, 11)
	addL(110, 4, 12)
	return g
}

// runExample5Steps executes the nine steps of Example 5 and returns the
// final recommendation graph G7 (John→destination links with a score
// attribute).
func runExample5Steps(t testing.TB, g *graph.Graph) *graph.Graph {
	t.Helper()
	ids := graph.IDSourceFor(g)
	visit := NewCondition(Cond("type", graph.SubtypeVisit))

	// Step 1: John and the places he has visited.
	g1 := LinkSelect(SemiJoin(g, NodeSelect(g, NewCondition(Cond("id", "1")), nil),
		Delta(graph.Src, graph.Src)), visit, nil)

	// Step 2: vst = set of John's destinations, as a node attribute.
	g1p, err := NodeAggregate(g1, visit, graph.Src, "vst", CollectEnd(graph.Tgt))
	if err != nil {
		t.Fatal(err)
	}

	// Step 3: other users and their visits.
	g2 := LinkSelect(SemiJoin(g, NodeSelect(g, NewCondition(CondOp("id", Ne, "1"),
		Cond("type", graph.TypeUser)), nil), Delta(graph.Src, graph.Src)), visit, nil)

	// Step 4: vst per other user.
	g2p, err := NodeAggregate(g2, visit, graph.Src, "vst", CollectEnd(graph.Tgt))
	if err != nil {
		t.Fatal(err)
	}

	// Step 5: compose on shared destinations; F computes Jaccard of the
	// two users' vst sets into sim. One John→user link per common place.
	delta := Delta(graph.Tgt, graph.Tgt)
	g3, err := Compose(g1p, g2p, delta, JaccardComposer("simpair", "vst", "sim", delta), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Step 6: collapse link groups with sim>0.5 into one 'match' link,
	// retaining sim; then keep only the match links (the paper's G4 is
	// described as John's similarity network).
	g4raw, err := LinkAggregate(g3, NewCondition(CondOp("sim", Gt, "0.5")),
		"type", ConstAgg("match"), ids, WithCarry("sim"))
	if err != nil {
		t.Fatal(err)
	}
	g4 := LinkSelect(g4raw, NewCondition(Cond("type", "match")), nil)

	// Step 7: users and the destinations they have visited.
	g5 := LinkSelect(SemiJoin(g, NodeSelect(g, NewCondition(Cond("type", "destination")), nil),
		Delta(graph.Tgt, graph.Src)), visit, nil)

	// Step 8: compose similarity network with visits; F' copies sim into
	// sim_sc on the new John→destination links.
	g6, err := Compose(SemiJoin(g4, g5, Delta(graph.Tgt, graph.Src)),
		SemiJoin(g5, g4, Delta(graph.Src, graph.Tgt)),
		Delta(graph.Tgt, graph.Src), CopyAttrComposer("rec", "sim", "sim_sc"), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Step 9: one link per destination; score = average sim_sc.
	g7, err := LinkAggregate(g6, NewCondition(Cond("type", "rec")),
		"score", Num(Average(AttrNum("sim_sc"))), ids)
	if err != nil {
		t.Fatal(err)
	}
	return g7
}

func TestExample5CollaborativeFiltering(t *testing.T) {
	g := cfFixture(t)
	g7 := runExample5Steps(t, g)

	// Recommendations: Ann's destinations {10,11,12}, score 2/3 each.
	if g7.NumLinks() != 3 {
		t.Fatalf("recommendation links = %v", g7.LinkIDs())
	}
	seen := map[graph.NodeID]bool{}
	for _, l := range g7.Links() {
		if l.Src != 1 {
			t.Errorf("recommendation source = %d, want John", l.Src)
		}
		seen[l.Tgt] = true
		score, ok := l.Attrs.Float("score")
		if !ok || math.Abs(score-2.0/3.0) > 1e-9 {
			t.Errorf("score to %d = %v, want 2/3", l.Tgt, l.Attrs.Get("score"))
		}
	}
	for _, d := range []graph.NodeID{10, 11, 12} {
		if !seen[d] {
			t.Errorf("destination %d not recommended", d)
		}
	}
	// Bob's and Eve's exclusive places must not be recommended.
	if seen[13] || seen[14] {
		t.Error("dissimilar users' destinations leaked into recommendations")
	}
}

// TestExample5PatternEquivalence verifies the paper's claim at the end of
// Section 5.4: the multi-step composition+aggregation (steps 8-9) and the
// single graph-pattern aggregation over G4 ∪ G5 produce the same
// recommendations.
func TestExample5PatternEquivalence(t *testing.T) {
	g := cfFixture(t)
	ids := graph.IDSourceFor(g)
	visit := NewCondition(Cond("type", graph.SubtypeVisit))

	// Rebuild G4 and G5 (steps 1-7) — shared prefix of both variants.
	g1 := LinkSelect(SemiJoin(g, NodeSelect(g, NewCondition(Cond("id", "1")), nil),
		Delta(graph.Src, graph.Src)), visit, nil)
	g1p, err := NodeAggregate(g1, visit, graph.Src, "vst", CollectEnd(graph.Tgt))
	if err != nil {
		t.Fatal(err)
	}
	g2 := LinkSelect(SemiJoin(g, NodeSelect(g, NewCondition(CondOp("id", Ne, "1"),
		Cond("type", graph.TypeUser)), nil), Delta(graph.Src, graph.Src)), visit, nil)
	g2p, err := NodeAggregate(g2, visit, graph.Src, "vst", CollectEnd(graph.Tgt))
	if err != nil {
		t.Fatal(err)
	}
	delta := Delta(graph.Tgt, graph.Tgt)
	g3, err := Compose(g1p, g2p, delta, JaccardComposer("simpair", "vst", "sim", delta), ids)
	if err != nil {
		t.Fatal(err)
	}
	g4raw, err := LinkAggregate(g3, NewCondition(CondOp("sim", Gt, "0.5")),
		"type", ConstAgg("match"), ids, WithCarry("sim"))
	if err != nil {
		t.Fatal(err)
	}
	g4 := LinkSelect(g4raw, NewCondition(Cond("type", "match")), nil)
	g5 := LinkSelect(SemiJoin(g, NodeSelect(g, NewCondition(Cond("type", "destination")), nil),
		Delta(graph.Tgt, graph.Src)), visit, nil)

	// Variant A: steps 8-9.
	g6, err := Compose(SemiJoin(g4, g5, Delta(graph.Tgt, graph.Src)),
		SemiJoin(g5, g4, Delta(graph.Src, graph.Tgt)),
		Delta(graph.Tgt, graph.Src), CopyAttrComposer("rec", "sim", "sim_sc"), ids)
	if err != nil {
		t.Fatal(err)
	}
	stepwise, err := LinkAggregate(g6, NewCondition(Cond("type", "rec")),
		"score", Num(Average(AttrNum("sim_sc"))), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Variant B: γL⟨GP,score,avg⟩(G4 ∪ G5) with the Figure 2 pattern.
	u45, err := Union(g4, g5)
	if err != nil {
		t.Fatal(err)
	}
	pattern := Pattern{
		Start: NewCondition(Cond("id", "1")),
		Steps: []PatternStep{
			{Link: NewCondition(Cond("type", "match"))},
			{Link: NewCondition(Cond("type", graph.SubtypeVisit)),
				Node: NewCondition(Cond("type", "destination"))},
		},
	}
	patterned, err := PatternAggregate(u45, pattern, "score", AvgPathAttr(0, "sim"), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Same (src, tgt, score) triples.
	type rec struct {
		src, tgt graph.NodeID
	}
	collect := func(g *graph.Graph) map[rec]float64 {
		out := make(map[rec]float64)
		for _, l := range g.Links() {
			s, _ := l.Attrs.Float("score")
			out[rec{l.Src, l.Tgt}] = s
		}
		return out
	}
	a, b := collect(stepwise), collect(patterned)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("recommendation counts differ: stepwise=%d pattern=%d", len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Errorf("pattern variant missing recommendation %v", k)
			continue
		}
		if math.Abs(va-vb) > 1e-9 {
			t.Errorf("score mismatch for %v: stepwise=%f pattern=%f", k, va, vb)
		}
	}
}
