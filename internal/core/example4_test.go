package core

import (
	"testing"

	"socialscope/internal/graph"
)

// TestExample4Search reproduces the paper's Example 4 step by step:
// "Find John's friends who have visited travel destinations near Denver and
// all their activities."
//
//	G1 = σL⟨C2⟩(G ⋉(src,src) σN⟨C1⟩(G))        C1: id=101, C2: type=friend
//	G2 = σL⟨C4⟩(G ⋉(tgt,src) σN⟨C3⟩(G))        C3: {type=destination, 'near
//	                                            Denver'}, C4: type=visit
//	G3 = G1 ⋉(tgt,src) G2
//	G4 = G2 ⋉(src,tgt) G1
//	G5 = G3 ∪ G4
//	G6 = σL⟨C5⟩(G ⋉(src,tgt) G3)               C5: type=act
//	G7 = G5 ∪ G6
func TestExample4Search(t *testing.T) {
	f := travelFixture(t)
	g := f.g

	// G1: John's friendship network.
	c1 := NewCondition(Cond("id", "101"))
	c2 := NewCondition(Cond("type", graph.SubtypeFriend))
	g1 := LinkSelect(SemiJoin(g, NodeSelect(g, c1, nil), Delta(graph.Src, graph.Src)), c2, nil)
	if g1.NumLinks() != 2 { // John→Ann, John→Bob
		t.Fatalf("G1 links = %v", g1.LinkIDs())
	}

	// G2: users who visited destinations near Denver.
	c3 := NewCondition(Cond("type", "destination")).WithKeywords("near Denver")
	c4 := NewCondition(Cond("type", graph.SubtypeVisit))
	nearDenver := NodeSelect(g, c3, nil)
	hasNodeIDs(t, nearDenver, f.coors, f.museum)
	g2 := LinkSelect(SemiJoin(g, nearDenver, Delta(graph.Tgt, graph.Src)), c4, nil)
	// Visits into Coors/Museum: Ann→Coors, Ann→Museum, Bob→Coors,
	// John→Museum (the tag link is filtered by C4).
	if g2.NumLinks() != 4 {
		t.Fatalf("G2 links = %v", g2.LinkIDs())
	}

	// G3: John's friends who visited near-Denver places (friend links).
	g3 := SemiJoin(g1, g2, Delta(graph.Tgt, graph.Src))
	if g3.NumLinks() != 2 { // both Ann and Bob qualify
		t.Fatalf("G3 links = %v", g3.LinkIDs())
	}

	// G4: near-Denver visits by John's friends.
	g4 := SemiJoin(g2, g1, Delta(graph.Src, graph.Tgt))
	if g4.NumLinks() != 3 { // Ann→Coors, Ann→Museum, Bob→Coors
		t.Fatalf("G4 links = %v", g4.LinkIDs())
	}
	if g4.HasLink(f.vJohnMuseum) {
		t.Error("John's own visit must not appear in G4")
	}

	// G5 = G3 ∪ G4.
	g5, err := Union(g3, g4)
	if err != nil {
		t.Fatal(err)
	}
	if g5.NumLinks() != 5 {
		t.Fatalf("G5 links = %v", g5.LinkIDs())
	}

	// G6: all activities by those friends.
	c5 := NewCondition(Cond("type", graph.TypeAct))
	g6 := LinkSelect(SemiJoin(g, g3, Delta(graph.Src, graph.Tgt)), c5, nil)
	// Ann's acts: visit Coors, visit Museum, tag Coors; Bob's: visit Coors,
	// visit Gate. Total 5.
	if g6.NumLinks() != 5 {
		t.Fatalf("G6 links = %v", g6.LinkIDs())
	}
	if !g6.HasLink(f.tAnnTag) {
		t.Error("G6 must include Ann's tagging activity")
	}

	// G7 = G5 ∪ G6: the final answer graph.
	g7, err := Union(g5, g6)
	if err != nil {
		t.Fatal(err)
	}
	// Links: 2 friend + 3 near-Denver visits + Bob→Gate visit + Ann tag = 7
	// (Ann/Bob's near-Denver visits are shared between G5 and G6).
	if g7.NumLinks() != 7 {
		t.Fatalf("G7 links = %v", g7.LinkIDs())
	}
	// John, his two qualifying friends, their destinations.
	for _, id := range []graph.NodeID{f.john, f.ann, f.bob, f.coors, f.museum, f.gate} {
		if !g7.HasNode(id) {
			t.Errorf("G7 missing node %d", id)
		}
	}
	// Eve is not John's friend: absent.
	if g7.HasNode(f.eve) || g7.HasNode(f.parc) {
		t.Error("G7 leaked non-friends")
	}
	if err := g7.Validate(); err != nil {
		t.Error(err)
	}
}

// TestExample4AsExpression runs the same program through the expression
// tree, checking the declarative form evaluates to the same graph.
func TestExample4AsExpression(t *testing.T) {
	f := travelFixture(t)
	c1 := NewCondition(Cond("id", "101"))
	c2 := NewCondition(Cond("type", graph.SubtypeFriend))
	c3 := NewCondition(Cond("type", "destination")).WithKeywords("near Denver")
	c4 := NewCondition(Cond("type", graph.SubtypeVisit))
	c5 := NewCondition(Cond("type", graph.TypeAct))

	G := Base("G")
	g1 := SelectLinks(SemiJoinOf(G, SelectNodes(G, c1), Delta(graph.Src, graph.Src)), c2)
	g2 := SelectLinks(SemiJoinOf(G, SelectNodes(G, c3), Delta(graph.Tgt, graph.Src)), c4)
	g3 := SemiJoinOf(g1, g2, Delta(graph.Tgt, graph.Src))
	g4 := SemiJoinOf(g2, g1, Delta(graph.Src, graph.Tgt))
	g5 := UnionOf(g3, g4)
	g6 := SelectLinks(SemiJoinOf(G, g3, Delta(graph.Src, graph.Tgt)), c5)
	g7 := UnionOf(g5, g6)

	got, err := g7.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLinks() != 7 {
		t.Fatalf("expression result links = %v", got.LinkIDs())
	}
	if got.HasNode(f.eve) {
		t.Error("expression result leaked Eve")
	}
	// The plan explains itself.
	if Explain(g7) == "" || g7.String() == "" {
		t.Error("plan rendering empty")
	}
}
