package core

import (
	"strings"
	"testing"

	"socialscope/internal/graph"
)

func TestParseBase(t *testing.T) {
	e, err := Parse("G")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := e.(BaseExpr); !ok || b.Name != "G" {
		t.Fatalf("parsed %T %v", e, e)
	}
}

func TestParseSelectN(t *testing.T) {
	e, err := Parse("selectN{type=destination; rating>=0.5}(G)")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := e.(NodeSelectExpr)
	if !ok {
		t.Fatalf("parsed %T", e)
	}
	if len(sel.C.Structural) != 2 {
		t.Fatalf("conds = %v", sel.C.Structural)
	}
	if sel.C.Structural[1].Op != Ge || sel.C.Structural[1].Values[0] != "0.5" {
		t.Errorf("second cond = %v", sel.C.Structural[1])
	}
}

func TestParseKeywords(t *testing.T) {
	e, err := Parse("selectN{type=destination; 'near Denver'}(G)")
	if err != nil {
		t.Fatal(err)
	}
	sel := e.(NodeSelectExpr)
	if len(sel.C.Keywords) != 2 || sel.C.Keywords[0] != "near" {
		t.Errorf("keywords = %v", sel.C.Keywords)
	}
}

func TestParseMultiValueCond(t *testing.T) {
	e, err := Parse("selectN{type=user,traveler}(G)")
	if err != nil {
		t.Fatal(err)
	}
	sel := e.(NodeSelectExpr)
	if len(sel.C.Structural[0].Values) != 2 {
		t.Errorf("values = %v", sel.C.Structural[0].Values)
	}
}

func TestParseExample4G1(t *testing.T) {
	// The textual form of Example 4's G1 must evaluate identically to the
	// programmatic construction.
	f := travelFixture(t)
	e, err := Parse("selectL{type=friend}(semijoin(src,src)(G, selectN{id=101}(G)))")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	want := LinkSelect(SemiJoin(f.g, NodeSelect(f.g, NewCondition(Cond("id", "101")), nil),
		Delta(graph.Src, graph.Src)), NewCondition(Cond("type", graph.SubtypeFriend)), nil)
	if !got.Equal(want) {
		t.Errorf("parsed plan diverges: %v vs %v", got.LinkIDs(), want.LinkIDs())
	}
}

func TestParseSetOps(t *testing.T) {
	f := travelFixture(t)
	e, err := Parse("selectN{type=user}(G) union selectN{type=item}(G)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 8 {
		t.Errorf("union nodes = %d", got.NumNodes())
	}
	// Left associativity: a minus b union c == (a minus b) union c.
	e2, err := Parse("G minus selectN{type=user}(G) union selectN{type=user}(G)")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := e2.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumNodes() != 8 {
		t.Errorf("left-assoc result nodes = %d", got2.NumNodes())
	}
	for _, src := range []string{
		"(G intersect G) lminus selectL{type=friend}(G)",
		"selectL{type=visit}(G) intersect selectL{type=act}(G)",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
}

func TestParseParenthesized(t *testing.T) {
	f := travelFixture(t)
	e, err := Parse("(selectN{type=user}(G))")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 4 {
		t.Errorf("nodes = %d", got.NumNodes())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"selectN{type=user}(G",           // missing close paren
		"selectN{type=user(G)",           // unterminated condition
		"selectN{type=}(G)",              // empty value
		"selectN{type user}(G)",          // missing operator
		"selectN{'unterminated}(G)",      // unterminated keywords
		"semijoin(up,down)(G, G)",        // bad directions
		"semijoin(src,src)(G G)",         // missing comma
		"G union",                        // dangling operator
		"union G",                        // operator as operand
		"G extra",                        // trailing input
		"selectX{type=user}(G) trailing", // unknown op treated as base + trailing
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Parsed expressions render with the paper's symbols.
	e, err := Parse("selectL{type=friend}(G) union selectN{id=101}(G)")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"σL", "σN", "∪"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered plan %q missing %q", s, want)
		}
	}
}

func TestParsedPlanOptimizes(t *testing.T) {
	f := travelFixture(t)
	e, err := Parse("selectN{city=Denver}(selectN{type=destination}(G))")
	if err != nil {
		t.Fatal(err)
	}
	rewritten, fired := Rewrite(e, DefaultRules)
	if len(fired) == 0 {
		t.Fatal("no rewrite fired on parsed plan")
	}
	want, err := e.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rewritten.Eval(NewContext(f.g))
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("optimized parsed plan diverges")
	}
}
