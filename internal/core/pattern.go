package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"socialscope/internal/graph"
)

// PatternStep is one hop of a graph pattern: a condition on the traversed
// link and an optional condition on the node reached after the hop.
type PatternStep struct {
	Link Condition
	Node Condition
}

// Pattern is the paper's graph pattern (Figure 2): a start-node condition
// followed by a chain of link/node conditions. The Figure 2 pattern —
// $1 --match--> $2 --visit--> $3 with $1.id=101 and $3.type=destination —
// is expressed as:
//
//	Pattern{
//	    Start: NewCondition(Cond("id", "101")),
//	    Steps: []PatternStep{
//	        {Link: NewCondition(Cond("type", "match"))},
//	        {Link: NewCondition(Cond("type", "visit")),
//	         Node: NewCondition(Cond("type", "destination"))},
//	    },
//	}
type Pattern struct {
	Start Condition
	Steps []PatternStep
}

// String renders the pattern as $1 -c1-> $2 -c2-> ... .
func (p Pattern) String() string {
	var sb strings.Builder
	sb.WriteString("$1")
	if !p.Start.IsEmpty() {
		sb.WriteString(p.Start.String())
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, " -%s-> $%d", s.Link.String(), i+2)
		if !s.Node.IsEmpty() {
			sb.WriteString(s.Node.String())
		}
	}
	return sb.String()
}

// PathAggregator maps the set of pattern paths between one (start, end)
// node pair to the destination attribute's values — the A of a
// pattern-based γL.
type PathAggregator interface {
	AggregatePaths(paths []graph.Path) []string
	String() string
}

// avgPathAttr averages a numeric attribute of the link at a fixed step
// across all paths of the group — Figure 2's score, "computed as the
// average value of sim_sc on the match link of the set of match-visit
// paths".
type avgPathAttr struct {
	step int
	attr string
}

// AvgPathAttr returns the path aggregator that averages attr on the link at
// position step.
func AvgPathAttr(step int, attr string) PathAggregator { return avgPathAttr{step, attr} }

func (a avgPathAttr) AggregatePaths(paths []graph.Path) []string {
	var sum float64
	n := 0
	for _, p := range paths {
		if a.step >= len(p) {
			continue
		}
		if v, ok := p[a.step].Attrs.Float(a.attr); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return []string{"0"}
	}
	return []string{strconv.FormatFloat(sum/float64(n), 'g', -1, 64)}
}

func (a avgPathAttr) String() string { return fmt.Sprintf("avg(step%d.%s)", a.step, a.attr) }

// countPaths counts the matching paths per (start, end) pair.
type countPaths struct{}

// CountPaths returns the path aggregator counting paths per endpoint pair.
func CountPaths() PathAggregator { return countPaths{} }

func (countPaths) AggregatePaths(paths []graph.Path) []string {
	return []string{strconv.Itoa(len(paths))}
}
func (countPaths) String() string { return "countPaths" }

// PatternAggregate implements the graph-pattern form of link aggregation
// sketched at the end of Section 5.4: γL⟨GP,att,A⟩(G). For every node
// matching the pattern's start condition and every node reachable from it
// by a path matching the pattern's steps, it creates exactly one new link
// start→end carrying att = A(paths between the pair). The output graph
// contains the new links and their endpoints (the same null-graph
// convention as composition); fresh ids come from ids.
func PatternAggregate(g *graph.Graph, p Pattern, att string, a PathAggregator, ids *graph.IDSource) (*graph.Graph, error) {
	if a == nil {
		return nil, fmt.Errorf("core: PatternAggregate requires a path aggregator")
	}
	if ids == nil {
		return nil, fmt.Errorf("core: PatternAggregate requires an id source")
	}
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("core: PatternAggregate requires at least one step")
	}
	out := graph.New()
	for _, start := range g.Nodes() {
		if !p.Start.SatisfiedByNode(start) {
			continue
		}
		paths := g.PathsMatching(start.ID, len(p.Steps), func(step int, l *graph.Link) bool {
			st := p.Steps[step]
			if !st.Link.SatisfiedByLink(l) {
				return false
			}
			if !st.Node.IsEmpty() {
				end := g.Node(l.Tgt)
				if end == nil || !st.Node.SatisfiedByNode(end) {
					return false
				}
			}
			return true
		})
		if len(paths) == 0 {
			continue
		}
		byEnd := make(map[graph.NodeID][]graph.Path)
		for _, path := range paths {
			byEnd[path.Last()] = append(byEnd[path.Last()], path)
		}
		ends := make([]graph.NodeID, 0, len(byEnd))
		for end := range byEnd {
			ends = append(ends, end)
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		if !out.HasNode(start.ID) {
			out.PutNode(start)
		}
		for _, end := range ends {
			values := a.AggregatePaths(byEnd[end])
			if !out.HasNode(end) {
				out.PutNode(g.Node(end))
			}
			var nl *graph.Link
			if att == "type" {
				nl = graph.NewLink(ids.NextLink(), start.ID, end, values...)
			} else {
				nl = graph.NewLink(ids.NextLink(), start.ID, end)
				nl.Attrs.Set(att, values...)
			}
			if err := out.AddLink(nl); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
