package core

import (
	"fmt"

	"socialscope/internal/graph"
)

// DirCond is the paper's directional condition δ = (d1, d2): two links
// compose (or semi-join) when the d1 end of the first equals the d2 end of
// the second.
type DirCond struct {
	D1, D2 graph.Direction
}

// Delta builds a directional condition, mirroring the paper's δ=(src,tgt)
// notation.
func Delta(d1, d2 graph.Direction) DirCond { return DirCond{D1: d1, D2: d2} }

func (d DirCond) String() string { return "(" + d.D1.String() + "," + d.D2.String() + ")" }

// ComposeFn is the class CF of composition functions (Section 5.3): it
// receives the two input links plus their host graphs (so it can read node
// attributes as well as link attributes, as the paper requires) and
// produces the type set and uniquely-named attributes of the composed link.
type ComposeFn func(l1, l2 *graph.Link, g1, g2 *graph.Graph) (types []string, attrs graph.Attrs)

// Compose implements G1 ⟨δ,F⟩ G2 (Definition 5). For every pair of links
// l1 ∈ G1, l2 ∈ G2 with l1.δd1 = l2.δd2, it emits a new link from
// u = l1.δd̄1 to v = l2.δd̄2 carrying F(l1, l2). The output graph contains
// exactly the new links and their endpoints; fresh link ids come from ids.
func Compose(g1, g2 *graph.Graph, d DirCond, f ComposeFn, ids *graph.IDSource) (*graph.Graph, error) {
	if f == nil {
		return nil, fmt.Errorf("core: Compose requires a composition function")
	}
	if ids == nil {
		return nil, fmt.Errorf("core: Compose requires an id source")
	}
	out := graph.New()
	// Index G2 links by their d2 endpoint for a hash join.
	byEnd := make(map[graph.NodeID][]*graph.Link)
	for _, l2 := range g2.Links() {
		end := l2.End(d.D2)
		byEnd[end] = append(byEnd[end], l2)
	}
	for _, l1 := range g1.Links() {
		joinOn := l1.End(d.D1)
		matches := byEnd[joinOn]
		if len(matches) == 0 {
			continue
		}
		u := l1.End(d.D1.Opposite())
		for _, l2 := range matches {
			v := l2.End(d.D2.Opposite())
			types, attrs := f(l1, l2, g1, g2)
			if !out.HasNode(u) {
				out.PutNode(nodeFromEither(u, g1, g2))
			}
			if !out.HasNode(v) {
				out.PutNode(nodeFromEither(v, g2, g1))
			}
			nl := graph.NewLink(ids.NextLink(), u, v, types...)
			if attrs != nil {
				nl.Attrs = attrs
			}
			if err := out.AddLink(nl); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// nodeFromEither fetches the node value from the preferred graph, falling
// back to the other; composition endpoints always exist in at least one
// input because they are link endpoints there.
func nodeFromEither(id graph.NodeID, pref, alt *graph.Graph) *graph.Node {
	if n := pref.Node(id); n != nil {
		return n
	}
	return alt.Node(id)
}

// SemiJoin implements G1 ⋉δ G2 (Definition 6): the subgraph of G1 induced
// by the G1 links whose δd1 end matches the δd2 end of some G2 link.
//
// Special case (used throughout Example 4): when G2 is a null graph — no
// links — the join degenerates to membership of the link's δd1 end in
// nodes(G2). This is how selections "anchor" a traversal on a node set,
// e.g. G ⋉(src,src) σN⟨id=101⟩(G) keeps the links leaving John.
func SemiJoin(g1, g2 *graph.Graph, d DirCond) *graph.Graph {
	keep := make(map[graph.LinkID]struct{})
	if g2.NumLinks() == 0 {
		for _, l1 := range g1.Links() {
			if g2.HasNode(l1.End(d.D1)) {
				keep[l1.ID] = struct{}{}
			}
		}
	} else {
		ends := make(map[graph.NodeID]struct{})
		for _, l2 := range g2.Links() {
			ends[l2.End(d.D2)] = struct{}{}
		}
		for _, l1 := range g1.Links() {
			if _, ok := ends[l1.End(d.D1)]; ok {
				keep[l1.ID] = struct{}{}
			}
		}
	}
	return g1.InducedByLinks(keep).ShallowClone()
}

// --- Common composition functions ---------------------------------------

// ConstComposer returns a composition function that stamps a fixed type and
// copies the named attributes from the first link onto the composed link.
func ConstComposer(newType string, copyFromL1 ...string) ComposeFn {
	return func(l1, _ *graph.Link, _, _ *graph.Graph) ([]string, graph.Attrs) {
		attrs := graph.Attrs{}
		for _, k := range copyFromL1 {
			if vs := l1.Attrs.All(k); len(vs) > 0 {
				attrs.Set(k, vs...)
			}
		}
		return []string{newType}, attrs
	}
}

// CopyAttrComposer returns Example 5 step 8's F': it copies srcAttr of the
// first link into dstAttr of the composed link and stamps the given type.
func CopyAttrComposer(newType, srcAttr, dstAttr string) ComposeFn {
	return func(l1, _ *graph.Link, _, _ *graph.Graph) ([]string, graph.Attrs) {
		attrs := graph.Attrs{}
		if vs := l1.Attrs.All(srcAttr); len(vs) > 0 {
			attrs.Set(dstAttr, vs...)
		}
		return []string{newType}, attrs
	}
}

// JaccardComposer returns Example 5 step 5's F: it reads the set-valued
// attribute setAttr from the two links' far endpoint nodes (the endpoints
// opposite the join ends) and stores their Jaccard similarity in simAttr of
// the composed link. The composed link's type is newType.
func JaccardComposer(newType, setAttr, simAttr string, d DirCond) ComposeFn {
	return func(l1, l2 *graph.Link, g1, g2 *graph.Graph) ([]string, graph.Attrs) {
		u := nodeFromEither(l1.End(d.D1.Opposite()), g1, g2)
		v := nodeFromEither(l2.End(d.D2.Opposite()), g2, g1)
		attrs := graph.Attrs{}
		attrs.SetFloat(simAttr, jaccardStrings(u.Attrs.All(setAttr), v.Attrs.All(setAttr)))
		return []string{newType}, attrs
	}
}

func jaccardStrings(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	sa := make(map[string]struct{}, len(a))
	for _, v := range a {
		sa[v] = struct{}{}
	}
	inter := 0
	sb := make(map[string]struct{}, len(b))
	for _, v := range b {
		if _, dup := sb[v]; dup {
			continue
		}
		sb[v] = struct{}{}
		if _, ok := sa[v]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
