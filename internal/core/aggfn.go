package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"socialscope/internal/graph"
)

// Aggregator is the paper's A parameter: a function from a collection of
// links to the value(s) stored in the destination attribute. The two
// classes the paper defines — SAF (set aggregate functions, Definition 7)
// and NAF (numerical aggregate functions, Definition 8) — both implement
// it; AF = SAF ∪ NAF.
type Aggregator interface {
	// Aggregate maps a group of links to the destination attribute's values.
	Aggregate(ls []*graph.Link) []string
	// String describes the aggregator for plan explanations.
	String() string
}

// --- SAF: set aggregate functions (Definition 7) -------------------------

// collectAttr is {$x | l ∈ L & l.att = $x}: the set of distinct values of
// att across the links, sorted for determinism.
type collectAttr struct{ attr string }

// Collect returns the SAF that gathers the distinct values of a link
// attribute, e.g. the set of all tags a user has assigned.
func Collect(attr string) Aggregator { return collectAttr{attr} }

func (c collectAttr) Aggregate(ls []*graph.Link) []string {
	seen := make(map[string]struct{})
	for _, l := range ls {
		for _, v := range l.Attrs.All(c.attr) {
			seen[v] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (c collectAttr) String() string { return fmt.Sprintf("collect(%s)", c.attr) }

// collectEnd gathers the distinct endpoint ids at a direction — the SAF
// Example 5 step 2 needs ("collects the set of destinations that John has
// visited"), where the collected scalars are node ids rather than attribute
// values.
type collectEnd struct{ d graph.Direction }

// CollectEnd returns the SAF that gathers the distinct node ids at the
// given end of the links.
func CollectEnd(d graph.Direction) Aggregator { return collectEnd{d} }

func (c collectEnd) Aggregate(ls []*graph.Link) []string {
	seen := make(map[graph.NodeID]struct{})
	for _, l := range ls {
		seen[l.End(c.d)] = struct{}{}
	}
	ids := make([]int64, 0, len(seen))
	for id := range seen {
		ids = append(ids, int64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = strconv.FormatInt(id, 10)
	}
	return out
}

func (c collectEnd) String() string { return fmt.Sprintf("collectEnd(%s)", c.d) }

// constAgg assigns a constant value — Example 5 step 6's A', which stamps
// type='match' on the aggregated link.
type constAgg struct{ values []string }

// ConstAgg returns the aggregator that always produces the given values.
func ConstAgg(values ...string) Aggregator { return constAgg{values} }

func (c constAgg) Aggregate([]*graph.Link) []string { return append([]string(nil), c.values...) }
func (c constAgg) String() string                   { return "const(" + strings.Join(c.values, ",") + ")" }

// --- NAF: numerical aggregate functions (Definition 8) -------------------
//
// NAF is defined inductively: the arithmetic operations, the constant
// functions 0 and 1, summation and product over a collection of a NAF-
// mapped value, and closure under composition. We realize the induction as
// two small ASTs: LinkFn, a per-element numeric function (the f inside
// Σ_{x∈X} f(x)), and NumExpr, a collection-level expression. COUNT, SUM,
// AVG are derived exactly as the paper constructs them
// (COUNT(X) = Σ_{x∈X} 1(x)); MIN and MAX are provided as the primitives
// whose construction the paper notes is possible but omits.

// LinkFn is a per-link numeric function.
type LinkFn interface {
	Eval(l *graph.Link) float64
	String() string
}

type oneFn struct{}

// One is the constant function 1 of Definition 8.
func One() LinkFn { return oneFn{} }

func (oneFn) Eval(*graph.Link) float64 { return 1 }
func (oneFn) String() string           { return "1" }

type zeroFn struct{}

// Zero is the constant function 0 of Definition 8.
func Zero() LinkFn { return zeroFn{} }

func (zeroFn) Eval(*graph.Link) float64 { return 0 }
func (zeroFn) String() string           { return "0" }

type attrNum struct{ attr string }

// AttrNum reads a link attribute as a number (0 when absent or
// non-numeric); it is the accessor that lets arithmetic reach the data.
func AttrNum(attr string) LinkFn { return attrNum{attr} }

func (a attrNum) Eval(l *graph.Link) float64 {
	v, _ := l.Attrs.Float(a.attr)
	return v
}
func (a attrNum) String() string { return "$" + a.attr }

type arithFn struct {
	op   byte
	l, r LinkFn
}

// AddF, SubF, MulF, DivF lift the arithmetic operations of Definition 8 to
// per-link functions. DivF yields 0 on a zero denominator, keeping the
// algebra total.
func AddF(l, r LinkFn) LinkFn { return arithFn{'+', l, r} }

// SubF is per-link subtraction.
func SubF(l, r LinkFn) LinkFn { return arithFn{'-', l, r} }

// MulF is per-link multiplication.
func MulF(l, r LinkFn) LinkFn { return arithFn{'*', l, r} }

// DivF is per-link division (total: x/0 = 0).
func DivF(l, r LinkFn) LinkFn { return arithFn{'/', l, r} }

func (a arithFn) Eval(l *graph.Link) float64 {
	x, y := a.l.Eval(l), a.r.Eval(l)
	switch a.op {
	case '+':
		return x + y
	case '-':
		return x - y
	case '*':
		return x * y
	case '/':
		if y == 0 {
			return 0
		}
		return x / y
	}
	return 0
}
func (a arithFn) String() string {
	return "(" + a.l.String() + string(a.op) + a.r.String() + ")"
}

// NumExpr is a collection-level NAF expression.
type NumExpr interface {
	Eval(ls []*graph.Link) float64
	String() string
}

type sumExpr struct{ f LinkFn }

// Sum is Σ_{x∈X} f(x) of Definition 8.
func Sum(f LinkFn) NumExpr { return sumExpr{f} }

func (s sumExpr) Eval(ls []*graph.Link) float64 {
	var t float64
	for _, l := range ls {
		t += s.f.Eval(l)
	}
	return t
}
func (s sumExpr) String() string { return "sum(" + s.f.String() + ")" }

type prodExpr struct{ f LinkFn }

// Product is Π_{x∈X} f(x) of Definition 8.
func Product(f LinkFn) NumExpr { return prodExpr{f} }

func (p prodExpr) Eval(ls []*graph.Link) float64 {
	t := 1.0
	for _, l := range ls {
		t *= p.f.Eval(l)
	}
	return t
}
func (p prodExpr) String() string { return "prod(" + p.f.String() + ")" }

type constExpr struct{ v float64 }

// ConstNum is a constant collection-level expression.
func ConstNum(v float64) NumExpr { return constExpr{v} }

func (c constExpr) Eval([]*graph.Link) float64 { return c.v }
func (c constExpr) String() string             { return strconv.FormatFloat(c.v, 'g', -1, 64) }

type arithExpr struct {
	op   byte
	l, r NumExpr
}

// AddN, SubN, MulN, DivN combine collection-level expressions; NAF is
// closed under these compositions.
func AddN(l, r NumExpr) NumExpr { return arithExpr{'+', l, r} }

// SubN is collection-level subtraction.
func SubN(l, r NumExpr) NumExpr { return arithExpr{'-', l, r} }

// MulN is collection-level multiplication.
func MulN(l, r NumExpr) NumExpr { return arithExpr{'*', l, r} }

// DivN is collection-level division (total: x/0 = 0).
func DivN(l, r NumExpr) NumExpr { return arithExpr{'/', l, r} }

func (a arithExpr) Eval(ls []*graph.Link) float64 {
	x, y := a.l.Eval(ls), a.r.Eval(ls)
	switch a.op {
	case '+':
		return x + y
	case '-':
		return x - y
	case '*':
		return x * y
	case '/':
		if y == 0 {
			return 0
		}
		return x / y
	}
	return 0
}
func (a arithExpr) String() string {
	return "(" + a.l.String() + string(a.op) + a.r.String() + ")"
}

// Count is the paper's COUNT(X) ::= Σ_{x∈X} 1(x).
func Count() NumExpr { return Sum(One()) }

// Average is AVG(f) = Σf / COUNT, total (0 over the empty collection).
func Average(f LinkFn) NumExpr { return DivN(Sum(f), Count()) }

type minMaxExpr struct {
	f   LinkFn
	max bool
}

// MinOf is the minimum of f over the collection (0 over the empty one).
// The paper states min/max are expressible in NAF but omits the
// construction; we provide them as primitives.
func MinOf(f LinkFn) NumExpr { return minMaxExpr{f, false} }

// MaxOf is the maximum of f over the collection (0 over the empty one).
func MaxOf(f LinkFn) NumExpr { return minMaxExpr{f, true} }

func (m minMaxExpr) Eval(ls []*graph.Link) float64 {
	if len(ls) == 0 {
		return 0
	}
	best := m.f.Eval(ls[0])
	for _, l := range ls[1:] {
		v := m.f.Eval(l)
		if m.max && v > best || !m.max && v < best {
			best = v
		}
	}
	return best
}
func (m minMaxExpr) String() string {
	if m.max {
		return "max(" + m.f.String() + ")"
	}
	return "min(" + m.f.String() + ")"
}

// numAgg adapts a NumExpr into an Aggregator producing a single numeric
// attribute value.
type numAgg struct{ e NumExpr }

// Num wraps a NAF expression as an aggregator.
func Num(e NumExpr) Aggregator { return numAgg{e} }

func (n numAgg) Aggregate(ls []*graph.Link) []string {
	return []string{strconv.FormatFloat(n.e.Eval(ls), 'g', -1, 64)}
}
func (n numAgg) String() string { return n.e.String() }
