package core

import (
	"testing"

	"socialscope/internal/graph"
)

func TestSemiJoinAgainstNullGraph(t *testing.T) {
	f := travelFixture(t)
	// G ⋉(src,src) σN⟨id=101⟩(G): links leaving John.
	johnNode := NodeSelect(f.g, NewCondition(Cond("id", "101")), nil)
	got := SemiJoin(f.g, johnNode, Delta(graph.Src, graph.Src))
	if got.NumLinks() != 3 { // friend→Ann, friend→Bob, visit→Museum
		t.Fatalf("links leaving John = %v", got.LinkIDs())
	}
	for _, l := range got.Links() {
		if l.Src != f.john {
			t.Errorf("link %d does not leave John", l.ID)
		}
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSemiJoinLinkToLink(t *testing.T) {
	f := travelFixture(t)
	friends := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeFriend)), nil)
	visits := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeVisit)), nil)
	// Friend links whose target is someone who visited something:
	// John→Ann, John→Bob, Ann→Eve all qualify (Ann, Bob, Eve all visited).
	got := SemiJoin(friends, visits, Delta(graph.Tgt, graph.Src))
	if got.NumLinks() != 3 {
		t.Fatalf("semijoin links = %v", got.LinkIDs())
	}
	// Visits whose source is a friend-target: Ann, Bob, Eve's visits (5).
	got2 := SemiJoin(visits, friends, Delta(graph.Src, graph.Tgt))
	if got2.NumLinks() != 5 {
		t.Fatalf("semijoin links = %v", got2.LinkIDs())
	}
	if got2.HasLink(f.vJohnMuseum) {
		t.Error("John's own visit should not qualify (John is no friend target)")
	}
}

func TestSemiJoinFiltersNotCreates(t *testing.T) {
	f := travelFixture(t)
	friends := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeFriend)), nil)
	visits := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeVisit)), nil)
	got := SemiJoin(friends, visits, Delta(graph.Tgt, graph.Src))
	for _, id := range got.LinkIDs() {
		if !friends.HasLink(id) {
			t.Errorf("semi-join invented link %d", id)
		}
	}
}

func TestComposeBasic(t *testing.T) {
	f := travelFixture(t)
	friends := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeFriend)), nil)
	visits := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeVisit)), nil)
	ids := graph.IDSourceFor(f.g)
	// friend ∘ visit with δ=(tgt,src): u -friend-> w -visit-> v becomes
	// u -user_friend_item-> v.
	got, err := Compose(friends, visits, Delta(graph.Tgt, graph.Src),
		ConstComposer("user_friend_item"), ids)
	if err != nil {
		t.Fatal(err)
	}
	// John→Ann→{Coors,Museum}, John→Bob→{Coors,Gate}, Ann→Eve→{Parc}: 5.
	if got.NumLinks() != 5 {
		t.Fatalf("composed links = %d, want 5", got.NumLinks())
	}
	for _, l := range got.Links() {
		if !l.HasType("user_friend_item") {
			t.Errorf("composed link lacks stamped type: %v", l.Types)
		}
		if f.g.HasLink(l.ID) {
			t.Errorf("composed link id %d collides with base graph", l.ID)
		}
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
	// Endpoints follow δ̄: sources are users (John/Ann), targets items.
	for _, l := range got.Links() {
		if !got.Node(l.Src).HasType(graph.TypeUser) {
			t.Errorf("composed source %d is not a user", l.Src)
		}
		if !got.Node(l.Tgt).HasType(graph.TypeItem) {
			t.Errorf("composed target %d is not an item", l.Tgt)
		}
	}
}

func TestComposeDirectionality(t *testing.T) {
	// δ=(tgt,tgt): l1.tgt == l2.tgt — the Example 5 step 5 shape, where two
	// users' visit links meeting at a common destination compose into a
	// user-user link.
	b := graph.NewBuilder()
	u1 := b.Node([]string{graph.TypeUser}, "name", "u1")
	u2 := b.Node([]string{graph.TypeUser}, "name", "u2")
	d := b.Node([]string{graph.TypeItem}, "name", "d")
	b.Link(u1, d, []string{graph.SubtypeVisit})
	b.Link(u2, d, []string{graph.SubtypeVisit})
	g := b.Graph()
	ids := graph.IDSourceFor(g)
	got, err := Compose(g, g, Delta(graph.Tgt, graph.Tgt), ConstComposer("meet"), ids)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (l1,l2) with equal targets: (1,1),(1,2),(2,1),(2,2) → 4 links
	// including self-pairs u1→u1.
	if got.NumLinks() != 4 {
		t.Fatalf("composed links = %d, want 4", got.NumLinks())
	}
	srcs := map[graph.NodeID]int{}
	for _, l := range got.Links() {
		srcs[l.Src]++
		if l.Src != u1 && l.Src != u2 {
			t.Errorf("unexpected composed source %d", l.Src)
		}
	}
	if srcs[u1] != 2 || srcs[u2] != 2 {
		t.Errorf("composed fanout = %v", srcs)
	}
}

func TestComposeErrors(t *testing.T) {
	f := travelFixture(t)
	if _, err := Compose(f.g, f.g, Delta(graph.Src, graph.Src), nil, graph.IDSourceFor(f.g)); err == nil {
		t.Error("nil composition function should be rejected")
	}
	if _, err := Compose(f.g, f.g, Delta(graph.Src, graph.Src), ConstComposer("x"), nil); err == nil {
		t.Error("nil id source should be rejected")
	}
}

func TestComposeEmptyInputs(t *testing.T) {
	f := travelFixture(t)
	ids := graph.IDSourceFor(f.g)
	got, err := Compose(graph.New(), f.g, Delta(graph.Src, graph.Src), ConstComposer("x"), ids)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumLinks() != 0 {
		t.Error("composition with empty graph should be empty")
	}
}

func TestJaccardComposer(t *testing.T) {
	// Two users with vst attribute sets {a,b} and {b,c}: Jaccard = 1/3.
	b := graph.NewBuilder()
	u1 := b.Node([]string{graph.TypeUser})
	u2 := b.Node([]string{graph.TypeUser})
	d := b.Node([]string{graph.TypeItem})
	b.Graph().Node(u1).Attrs.Set("vst", "a", "b")
	b.Graph().Node(u2).Attrs.Set("vst", "b", "c")
	b.Link(u1, d, []string{graph.SubtypeVisit})
	b.Link(u2, d, []string{graph.SubtypeVisit})
	g := b.Graph()
	dlt := Delta(graph.Tgt, graph.Tgt)
	got, err := Compose(g, g, dlt, JaccardComposer("sim_link", "vst", "sim", dlt), graph.IDSourceFor(g))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range got.Links() {
		if l.Src == u1 && l.Tgt == u2 {
			found = true
			if v, ok := l.Attrs.Float("sim"); !ok || v < 0.33 || v > 0.34 {
				t.Errorf("sim = %v, want 1/3", l.Attrs.Get("sim"))
			}
		}
	}
	if !found {
		t.Error("missing u1→u2 composed link")
	}
}

func TestCopyAttrComposer(t *testing.T) {
	b := graph.NewBuilder()
	a := b.Node([]string{graph.TypeUser})
	m := b.Node([]string{graph.TypeUser})
	d := b.Node([]string{graph.TypeItem})
	b.Link(a, m, []string{graph.TypeMatch}, "sim", "0.8")
	b.Link(m, d, []string{graph.SubtypeVisit})
	g := b.Graph()
	got, err := Compose(g, g, Delta(graph.Tgt, graph.Src),
		CopyAttrComposer("rec", "sim", "sim_sc"), graph.IDSourceFor(g))
	if err != nil {
		t.Fatal(err)
	}
	var recLink *graph.Link
	for _, l := range got.Links() {
		if l.Src == a && l.Tgt == d {
			recLink = l
		}
	}
	if recLink == nil {
		t.Fatal("missing a→d composed link")
	}
	if recLink.Attrs.Get("sim_sc") != "0.8" {
		t.Errorf("sim_sc = %q", recLink.Attrs.Get("sim_sc"))
	}
	if !recLink.HasType("rec") {
		t.Error("composed link missing type")
	}
}
