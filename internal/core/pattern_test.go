package core

import (
	"strconv"
	"testing"

	"socialscope/internal/graph"
)

// figure2Fixture: John --match(sim_sc)--> {u2,u3} --visit--> destinations.
// John to d1 via two paths (sim 0.8 through u2, 0.6 through u3), to d2 via
// one path (0.8 through u2).
func figure2Fixture(t testing.TB) (*graph.Graph, graph.NodeID, graph.NodeID, graph.NodeID) {
	b := graph.NewBuilder()
	john := b.Node([]string{graph.TypeUser}, "name", "John")
	u2 := b.Node([]string{graph.TypeUser})
	u3 := b.Node([]string{graph.TypeUser})
	d1 := b.Node([]string{graph.TypeItem, "destination"}, "name", "d1")
	d2 := b.Node([]string{graph.TypeItem, "destination"}, "name", "d2")
	b.Link(john, u2, []string{graph.TypeMatch}, "sim_sc", "0.8")
	b.Link(john, u3, []string{graph.TypeMatch}, "sim_sc", "0.6")
	b.Link(u2, d1, []string{graph.SubtypeVisit})
	b.Link(u2, d2, []string{graph.SubtypeVisit})
	b.Link(u3, d1, []string{graph.SubtypeVisit})
	return b.Graph(), john, d1, d2
}

func figure2Pattern(johnID graph.NodeID) Pattern {
	return Pattern{
		Start: NewCondition(Cond("id", idStr(johnID))),
		Steps: []PatternStep{
			{Link: NewCondition(Cond("type", graph.TypeMatch))},
			{Link: NewCondition(Cond("type", graph.SubtypeVisit)),
				Node: NewCondition(Cond("type", "destination"))},
		},
	}
}

func idStr(id graph.NodeID) string { return strconv.FormatInt(int64(id), 10) }

func TestPatternAggregateFigure2(t *testing.T) {
	g, john, d1, d2 := figure2Fixture(t)
	p := figure2Pattern(john)
	got, err := PatternAggregate(g, p, "score", AvgPathAttr(0, "sim_sc"), graph.IDSourceFor(g))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one link per reachable destination.
	if got.NumLinks() != 2 {
		t.Fatalf("pattern links = %d, want 2", got.NumLinks())
	}
	var toD1, toD2 *graph.Link
	for _, l := range got.Links() {
		if l.Src != john {
			t.Errorf("pattern link source = %d, want John", l.Src)
		}
		switch l.Tgt {
		case d1:
			toD1 = l
		case d2:
			toD2 = l
		}
	}
	if toD1 == nil || toD2 == nil {
		t.Fatal("missing destination links")
	}
	// d1: average of {0.8, 0.6} = 0.7; d2: 0.8.
	if v, _ := toD1.Attrs.Float("score"); v < 0.699 || v > 0.701 {
		t.Errorf("d1 score = %v, want 0.7", toD1.Attrs.Get("score"))
	}
	if v, _ := toD2.Attrs.Float("score"); v != 0.8 {
		t.Errorf("d2 score = %v, want 0.8", toD2.Attrs.Get("score"))
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPatternAggregateNodeConditionFilters(t *testing.T) {
	g, john, _, _ := figure2Fixture(t)
	// Require an impossible end-node type: no links.
	p := figure2Pattern(john)
	p.Steps[1].Node = NewCondition(Cond("type", "no-such-type"))
	got, err := PatternAggregate(g, p, "score", CountPaths(), graph.IDSourceFor(g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLinks() != 0 {
		t.Errorf("links = %d, want 0", got.NumLinks())
	}
}

func TestPatternAggregateCountPaths(t *testing.T) {
	g, john, d1, _ := figure2Fixture(t)
	got, err := PatternAggregate(g, figure2Pattern(john), "paths", CountPaths(), graph.IDSourceFor(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range got.Links() {
		want := int64(1)
		if l.Tgt == d1 {
			want = 2
		}
		if v, _ := l.Attrs.Int("paths"); v != want {
			t.Errorf("paths to %d = %d, want %d", l.Tgt, v, want)
		}
	}
}

func TestPatternAggregateErrors(t *testing.T) {
	g, john, _, _ := figure2Fixture(t)
	p := figure2Pattern(john)
	if _, err := PatternAggregate(g, p, "s", nil, graph.IDSourceFor(g)); err == nil {
		t.Error("nil aggregator should be rejected")
	}
	if _, err := PatternAggregate(g, p, "s", CountPaths(), nil); err == nil {
		t.Error("nil id source should be rejected")
	}
	if _, err := PatternAggregate(g, Pattern{Start: p.Start}, "s", CountPaths(), graph.IDSourceFor(g)); err == nil {
		t.Error("empty pattern should be rejected")
	}
}

func TestPatternString(t *testing.T) {
	_, john, _, _ := figure2Fixture(t)
	s := figure2Pattern(john).String()
	if s == "" || s[0] != '$' {
		t.Errorf("pattern String = %q", s)
	}
}

func TestAvgPathAttrEmptyAndMissing(t *testing.T) {
	if got := AvgPathAttr(0, "x").AggregatePaths(nil); got[0] != "0" {
		t.Errorf("empty avg = %v", got)
	}
	// Paths whose step lacks the attribute are skipped.
	l := graph.NewLink(1, 1, 2, "t")
	if got := AvgPathAttr(5, "x").AggregatePaths([]graph.Path{{l}}); got[0] != "0" {
		t.Errorf("out-of-range step avg = %v", got)
	}
	if AvgPathAttr(0, "w").String() == "" || CountPaths().String() == "" {
		t.Error("String should be non-empty")
	}
}
