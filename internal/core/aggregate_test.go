package core

import (
	"math"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"socialscope/internal/graph"
)

func TestNodeAggregateFriendCount(t *testing.T) {
	f := travelFixture(t)
	// The paper's fnd_cnt example: count outgoing friend links per node.
	got, err := NodeAggregate(f.g, NewCondition(Cond("type", graph.SubtypeFriend)),
		graph.Src, "fnd_cnt", Num(Count()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Node(f.john).Attrs.Int("fnd_cnt"); v != 2 {
		t.Errorf("John fnd_cnt = %d, want 2", v)
	}
	if v, _ := got.Node(f.ann).Attrs.Int("fnd_cnt"); v != 1 {
		t.Errorf("Ann fnd_cnt = %d, want 1", v)
	}
	// Nodes without matching links stay untouched.
	if _, ok := got.Node(f.bob).Attrs.Int("fnd_cnt"); ok {
		t.Error("Bob should have no fnd_cnt")
	}
	// Output is isomorphic: same nodes and links.
	if got.NumNodes() != f.g.NumNodes() || got.NumLinks() != f.g.NumLinks() {
		t.Error("node aggregation changed the graph structure")
	}
	// Input untouched.
	if _, ok := f.g.Node(f.john).Attrs.Int("fnd_cnt"); ok {
		t.Error("node aggregation mutated its input")
	}
}

func TestNodeAggregateCollectTags(t *testing.T) {
	f := travelFixture(t)
	// tags_used: collect all tags assigned by each user.
	got, err := NodeAggregate(f.g, NewCondition(Cond("type", graph.SubtypeTag)),
		graph.Src, "tags_used", Collect("tags"))
	if err != nil {
		t.Fatal(err)
	}
	if tags := got.Node(f.ann).Attrs.All("tags_used"); !reflect.DeepEqual(tags, []string{"baseball"}) {
		t.Errorf("Ann tags_used = %v", tags)
	}
}

func TestNodeAggregateCollectEnd(t *testing.T) {
	f := travelFixture(t)
	// Example 5 step 2: vst = set of destinations visited, grouped on src.
	got, err := NodeAggregate(f.g, NewCondition(Cond("type", graph.SubtypeVisit)),
		graph.Src, "vst", CollectEnd(graph.Tgt))
	if err != nil {
		t.Fatal(err)
	}
	if vst := got.Node(f.ann).Attrs.All("vst"); !reflect.DeepEqual(vst, []string{"201", "202"}) {
		t.Errorf("Ann vst = %v", vst)
	}
	if vst := got.Node(f.john).Attrs.All("vst"); !reflect.DeepEqual(vst, []string{"202"}) {
		t.Errorf("John vst = %v", vst)
	}
}

func TestNodeAggregateGroupByTgt(t *testing.T) {
	f := travelFixture(t)
	// Visitor count per destination: group visit links on their target.
	got, err := NodeAggregate(f.g, NewCondition(Cond("type", graph.SubtypeVisit)),
		graph.Tgt, "visitors", Num(Count()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Node(f.coors).Attrs.Int("visitors"); v != 2 {
		t.Errorf("Coors visitors = %d, want 2 (Ann, Bob)", v)
	}
	if v, _ := got.Node(f.museum).Attrs.Int("visitors"); v != 2 {
		t.Errorf("Museum visitors = %d, want 2 (Ann, John)", v)
	}
}

func TestNodeAggregateTypeDestination(t *testing.T) {
	f := travelFixture(t)
	// Aggregating into the reserved attribute extends the type set.
	got, err := NodeAggregate(f.g, NewCondition(Cond("type", graph.SubtypeVisit)),
		graph.Src, "type", ConstAgg("active"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Node(f.ann).HasType("active") {
		t.Error("Ann should gain type 'active'")
	}
	if got.Node(f.parc).HasType("active") {
		t.Error("Parc has no outgoing visits and should not gain the type")
	}
}

func TestNodeAggregateNilAggregator(t *testing.T) {
	f := travelFixture(t)
	if _, err := NodeAggregate(f.g, Condition{}, graph.Src, "x", nil); err == nil {
		t.Error("nil aggregator should be rejected")
	}
}

func TestLinkAggregateReplacesGroups(t *testing.T) {
	// Two parallel 'user_friend_item' links John→Coors collapse into one
	// with vst_cnt=2 (the Section 5.4 example).
	b := graph.NewBuilder()
	u := b.Node([]string{graph.TypeUser})
	d := b.Node([]string{graph.TypeItem})
	b.Link(u, d, []string{"user_friend_item"})
	b.Link(u, d, []string{"user_friend_item"})
	other := b.Link(u, d, []string{graph.SubtypeVisit}) // does not satisfy C
	g := b.Graph()
	got, err := LinkAggregate(g, NewCondition(Cond("type", "user_friend_item")),
		"vst_cnt", Num(Count()), graph.IDSourceFor(g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLinks() != 2 { // 1 aggregated + 1 passthrough
		t.Fatalf("links = %d, want 2", got.NumLinks())
	}
	if !got.HasLink(other) {
		t.Error("non-matching link must pass through")
	}
	var agg *graph.Link
	for _, l := range got.Links() {
		if l.ID != other {
			agg = l
		}
	}
	if agg == nil {
		t.Fatal("aggregated link missing")
	}
	if v, _ := agg.Attrs.Int("vst_cnt"); v != 2 {
		t.Errorf("vst_cnt = %d, want 2", v)
	}
	if agg.Src != u || agg.Tgt != d {
		t.Error("aggregated link endpoints wrong")
	}
}

func TestLinkAggregateTypeAndCarry(t *testing.T) {
	// Example 5 step 6: replace sim>0.5 link groups with a 'match' link
	// retaining sim.
	b := graph.NewBuilder()
	john := b.Node([]string{graph.TypeUser})
	u := b.Node([]string{graph.TypeUser})
	b.Link(john, u, []string{"simpair"}, "sim", "0.8")
	b.Link(john, u, []string{"simpair"}, "sim", "0.8")
	g := b.Graph()
	got, err := LinkAggregate(g, NewCondition(CondOp("sim", Gt, "0.5")),
		"type", ConstAgg("match"), graph.IDSourceFor(g), WithCarry("sim"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLinks() != 1 {
		t.Fatalf("links = %d, want 1", got.NumLinks())
	}
	l := got.Links()[0]
	if !l.HasType("match") {
		t.Errorf("types = %v", l.Types)
	}
	if l.Attrs.Get("sim") != "0.8" {
		t.Errorf("sim = %q, want carried 0.8", l.Attrs.Get("sim"))
	}
}

func TestLinkAggregateKeepsAllNodes(t *testing.T) {
	f := travelFixture(t)
	got, err := LinkAggregate(f.g, NewCondition(Cond("type", graph.SubtypeVisit)),
		"n", Num(Count()), graph.IDSourceFor(f.g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != f.g.NumNodes() {
		t.Error("link aggregation dropped nodes")
	}
	// Each (src,tgt) visit pair is unique in the fixture: 6 aggregated
	// links + 4 non-visit passthroughs.
	if got.NumLinks() != 10 {
		t.Errorf("links = %d, want 10", got.NumLinks())
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLinkAggregateErrors(t *testing.T) {
	f := travelFixture(t)
	if _, err := LinkAggregate(f.g, Condition{}, "x", nil, graph.IDSourceFor(f.g)); err == nil {
		t.Error("nil aggregator should be rejected")
	}
	if _, err := LinkAggregate(f.g, Condition{}, "x", Num(Count()), nil); err == nil {
		t.Error("nil id source should be rejected")
	}
}

// --- SAF / NAF -------------------------------------------------------------

func mkLinks(vals ...float64) []*graph.Link {
	ls := make([]*graph.Link, len(vals))
	for i, v := range vals {
		l := graph.NewLink(graph.LinkID(i+1), 1, 2, "t")
		l.Attrs.SetFloat("w", v)
		ls[i] = l
	}
	return ls
}

func TestNAFPrimitives(t *testing.T) {
	ls := mkLinks(1, 2, 3)
	if got := Sum(AttrNum("w")).Eval(ls); got != 6 {
		t.Errorf("Sum = %f", got)
	}
	if got := Product(AttrNum("w")).Eval(ls); got != 6 {
		t.Errorf("Product = %f", got)
	}
	if got := Count().Eval(ls); got != 3 {
		t.Errorf("Count = %f", got)
	}
	if got := Average(AttrNum("w")).Eval(ls); got != 2 {
		t.Errorf("Average = %f", got)
	}
	if got := Average(AttrNum("w")).Eval(nil); got != 0 {
		t.Errorf("Average over empty = %f, want total 0", got)
	}
	if got := MinOf(AttrNum("w")).Eval(ls); got != 1 {
		t.Errorf("Min = %f", got)
	}
	if got := MaxOf(AttrNum("w")).Eval(ls); got != 3 {
		t.Errorf("Max = %f", got)
	}
	if got := MinOf(AttrNum("w")).Eval(nil); got != 0 {
		t.Errorf("Min over empty = %f", got)
	}
}

func TestNAFArithmeticAndClosure(t *testing.T) {
	ls := mkLinks(1, 2, 3)
	// (sum(w) - count) * 2 / count = (6-3)*2/3 = 2
	e := DivN(MulN(SubN(Sum(AttrNum("w")), Count()), ConstNum(2)), Count())
	if got := e.Eval(ls); got != 2 {
		t.Errorf("composite NAF = %f", got)
	}
	// Per-link arithmetic: sum((w+1)*w - w/w) over {1,2,3} = (2*1-1)+(3*2-1)+(4*3-1) = 1+5+11 = 17
	f := SubF(MulF(AddF(AttrNum("w"), One()), AttrNum("w")), DivF(AttrNum("w"), AttrNum("w")))
	if got := Sum(f).Eval(ls); got != 17 {
		t.Errorf("per-link arithmetic = %f", got)
	}
	// Division by zero is total.
	if got := DivN(ConstNum(1), ConstNum(0)).Eval(nil); got != 0 {
		t.Errorf("1/0 = %f, want 0", got)
	}
	if got := DivF(One(), Zero()).Eval(mkLinks(1)[0]); got != 0 {
		t.Errorf("per-link 1/0 = %f, want 0", got)
	}
	if AddN(ConstNum(2), ConstNum(3)).Eval(nil) != 5 {
		t.Error("AddN broken")
	}
	if SubF(One(), Zero()).Eval(mkLinks(1)[0]) != 1 {
		t.Error("SubF broken")
	}
}

func TestNAFStrings(t *testing.T) {
	e := DivN(Sum(AttrNum("w")), Count())
	if e.String() != "(sum($w)/sum(1))" {
		t.Errorf("NAF String = %q", e.String())
	}
	if MaxOf(One()).String() != "max(1)" || MinOf(Zero()).String() != "min(0)" {
		t.Error("min/max String wrong")
	}
	if Product(One()).String() != "prod(1)" || ConstNum(2).String() != "2" {
		t.Error("prod/const String wrong")
	}
	if AddF(One(), Zero()).String() != "(1+0)" {
		t.Error("arith LinkFn String wrong")
	}
	if Num(Count()).String() != "sum(1)" {
		t.Error("Num String wrong")
	}
}

func TestSAFCollect(t *testing.T) {
	ls := []*graph.Link{
		graph.NewLink(1, 1, 2, "t"), graph.NewLink(2, 1, 3, "t"), graph.NewLink(3, 1, 2, "t"),
	}
	ls[0].Attrs.Set("tags", "b", "a")
	ls[1].Attrs.Set("tags", "a", "c")
	// ls[2] has no tags.
	if got := Collect("tags").Aggregate(ls); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Collect = %v", got)
	}
	if got := CollectEnd(graph.Tgt).Aggregate(ls); !reflect.DeepEqual(got, []string{"2", "3"}) {
		t.Errorf("CollectEnd = %v", got)
	}
	if got := ConstAgg("x", "y").Aggregate(nil); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("ConstAgg = %v", got)
	}
	if Collect("tags").String() != "collect(tags)" || CollectEnd(graph.Src).String() != "collectEnd(src)" {
		t.Error("SAF String wrong")
	}
}

// Property: COUNT as derived in the paper (Σ 1) agrees with len; AVG agrees
// with direct computation; SUM distributes over concatenation.
func TestQuickNAFLaws(t *testing.T) {
	f := func(raw []float64, raw2 []float64) bool {
		clean := func(xs []float64) []float64 {
			out := make([]float64, 0, len(xs))
			for _, x := range xs {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					continue
				}
				// Keep magnitudes tame so float addition stays exact enough.
				out = append(out, math.Mod(x, 1000))
			}
			return out
		}
		a, b := clean(raw), clean(raw2)
		la, lb := mkLinks(a...), mkLinks(b...)
		if Count().Eval(la) != float64(len(a)) {
			return false
		}
		var want float64
		for _, x := range a {
			want += x
		}
		if math.Abs(Sum(AttrNum("w")).Eval(la)-want) > 1e-6 {
			return false
		}
		both := append(append([]*graph.Link(nil), la...), lb...)
		lhs := Sum(AttrNum("w")).Eval(both)
		rhs := Sum(AttrNum("w")).Eval(la) + Sum(AttrNum("w")).Eval(lb)
		if math.Abs(lhs-rhs) > 1e-6 {
			return false
		}
		if len(a) > 0 {
			avg := Average(AttrNum("w")).Eval(la)
			if math.Abs(avg-want/float64(len(a))) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Num formats round-trippable floats.
func TestNumFormatting(t *testing.T) {
	ls := mkLinks(0.125, 0.25)
	got := Num(Sum(AttrNum("w"))).Aggregate(ls)
	if len(got) != 1 {
		t.Fatalf("Num values = %v", got)
	}
	v, err := strconv.ParseFloat(got[0], 64)
	if err != nil || v != 0.375 {
		t.Errorf("Num value = %q", got[0])
	}
}
