package core

import (
	"testing"

	"socialscope/internal/graph"
)

func TestStructCondTypeSuperset(t *testing.T) {
	f := travelFixture(t)
	john := f.g.Node(f.john)
	if !Cond("type", "user").satisfies(int64(john.ID), john.Types, john.Attrs) {
		t.Error("type=user should match John")
	}
	if !Cond("type", "user", "traveler").satisfies(int64(john.ID), john.Types, john.Attrs) {
		t.Error("type=user,traveler should match John (superset rule)")
	}
	if Cond("type", "user", "expert").satisfies(int64(john.ID), john.Types, john.Attrs) {
		t.Error("type=user,expert should not match John")
	}
	if !CondOp("type", Ne, "item").satisfies(int64(john.ID), john.Types, john.Attrs) {
		t.Error("type!=item should match John")
	}
}

func TestStructCondID(t *testing.T) {
	f := travelFixture(t)
	john := f.g.Node(f.john)
	if !Cond("id", "101").satisfies(int64(john.ID), john.Types, john.Attrs) {
		t.Error("id=101 should match John")
	}
	if !CondOp("id", Ne, "101").satisfies(102, nil, nil) {
		t.Error("id!=101 should match 102")
	}
	if CondOp("id", Ne, "101").satisfies(101, nil, nil) {
		t.Error("id!=101 should not match 101")
	}
	if !CondOp("id", Ge, "200").satisfies(201, nil, nil) {
		t.Error("id>=200 should match 201")
	}
	if CondOp("id", Lt, "200").satisfies(201, nil, nil) {
		t.Error("id<200 should not match 201")
	}
	if CondOp("id", Ge, "not-a-number").satisfies(201, nil, nil) {
		t.Error("malformed numeric comparison should be false")
	}
}

func TestStructCondNumericAttr(t *testing.T) {
	f := travelFixture(t)
	coors := f.g.Node(f.coors) // rating 0.9
	for _, c := range []struct {
		cond StructCond
		want bool
	}{
		{CondOp("rating", Ge, "0.5"), true},
		{CondOp("rating", Gt, "0.9"), false},
		{CondOp("rating", Ge, "0.9"), true},
		{CondOp("rating", Le, "1.0"), true},
		{CondOp("rating", Lt, "0.9"), false},
		{CondOp("missing", Ge, "0"), false},
		{CondOp("name", Ge, "1"), false}, // non-numeric attr
	} {
		if got := c.cond.satisfies(int64(coors.ID), coors.Types, coors.Attrs); got != c.want {
			t.Errorf("%v on Coors = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestStructCondAttrEquality(t *testing.T) {
	f := travelFixture(t)
	coors := f.g.Node(f.coors)
	if !Cond("city", "Denver").satisfies(int64(coors.ID), coors.Types, coors.Attrs) {
		t.Error("city=Denver should match")
	}
	if Cond("city", "Paris").satisfies(int64(coors.ID), coors.Types, coors.Attrs) {
		t.Error("city=Paris should not match")
	}
	if !CondOp("city", Ne, "Paris").satisfies(int64(coors.ID), coors.Types, coors.Attrs) {
		t.Error("city!=Paris should match")
	}
}

func TestConditionConjunction(t *testing.T) {
	f := travelFixture(t)
	c := NewCondition(Cond("type", "destination"), Cond("city", "Denver"))
	if !c.SatisfiedByNode(f.g.Node(f.coors)) {
		t.Error("Coors should satisfy destination ∧ Denver")
	}
	if c.SatisfiedByNode(f.g.Node(f.gate)) {
		t.Error("Golden Gate should not satisfy Denver")
	}
	if c.SatisfiedByNode(f.g.Node(f.john)) {
		t.Error("John should not satisfy destination")
	}
}

func TestConditionOnLinks(t *testing.T) {
	f := travelFixture(t)
	c := NewCondition(Cond("type", graph.SubtypeVisit))
	if !c.SatisfiedByLink(f.g.Link(f.vAnnCoors)) {
		t.Error("visit link should satisfy type=visit")
	}
	if c.SatisfiedByLink(f.g.Link(f.fJohnAnn)) {
		t.Error("friend link should not satisfy type=visit")
	}
}

func TestConditionEmptyAndString(t *testing.T) {
	c := Condition{}
	if !c.IsEmpty() {
		t.Error("empty condition should report empty")
	}
	c2 := NewCondition(Cond("type", "city")).WithKeywords("Denver attractions")
	if c2.IsEmpty() {
		t.Error("non-empty condition reported empty")
	}
	want := "{type=city, 'denver attractions'}"
	if got := c2.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := CondOp("rating", Ge, "0.5").String(); got != "rating>=0.5" {
		t.Errorf("StructCond String = %q", got)
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{Eq: "=", Ne: "!=", Gt: ">", Ge: ">=", Lt: "<", Le: "<="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
}
