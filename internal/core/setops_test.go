package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"socialscope/internal/graph"
)

func TestUnionConsolidates(t *testing.T) {
	f := travelFixture(t)
	friends := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeFriend)), nil)
	visits := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeVisit)), nil)
	u, err := Union(friends, visits)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumLinks() != 9 { // 3 friend + 6 visit
		t.Errorf("union links = %d", u.NumLinks())
	}
	// John appears in both operands and must appear once.
	if u.NumNodes() != 8 {
		t.Errorf("union nodes = %d, want 8", u.NumNodes())
	}
	if err := u.Validate(); err != nil {
		t.Error(err)
	}
	// Union must not alias its inputs' elements.
	u.Node(f.john).Attrs.Set("name", "X")
	if f.g.Node(f.john).Attrs.Get("name") != "John" {
		t.Error("union aliases input nodes")
	}
}

func TestUnionMergesAttrs(t *testing.T) {
	g1 := graph.New()
	n1 := graph.NewNode(1, graph.TypeUser)
	n1.Attrs.Set("a", "1")
	if err := g1.AddNode(n1); err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	n2 := graph.NewNode(1, "expert")
	n2.Attrs.Set("b", "2")
	if err := g2.AddNode(n2); err != nil {
		t.Fatal(err)
	}
	u, err := Union(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	n := u.Node(1)
	if !n.HasType(graph.TypeUser) || !n.HasType("expert") {
		t.Error("union lost a type during consolidation")
	}
	if n.Attrs.Get("a") != "1" || n.Attrs.Get("b") != "2" {
		t.Error("union lost attributes during consolidation")
	}
}

func TestUnionConflictingLinkEndpoints(t *testing.T) {
	g1 := graph.New()
	g2 := graph.New()
	for _, g := range []*graph.Graph{g1, g2} {
		for id := graph.NodeID(1); id <= 2; id++ {
			if err := g.AddNode(graph.NewNode(id, graph.TypeUser)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g1.AddLink(graph.NewLink(1, 1, 2, graph.TypeConnect)); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddLink(graph.NewLink(1, 2, 1, graph.TypeConnect)); err != nil {
		t.Fatal(err)
	}
	if _, err := Union(g1, g2); err == nil {
		t.Error("union of conflicting link endpoints should fail")
	}
	if _, err := Intersect(g1, g2); err == nil {
		t.Error("intersection of conflicting link endpoints should fail")
	}
}

func TestIntersect(t *testing.T) {
	f := travelFixture(t)
	acts := LinkSelect(f.g, NewCondition(Cond("type", graph.TypeAct)), nil)
	visits := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeVisit)), nil)
	i, err := Intersect(acts, visits)
	if err != nil {
		t.Fatal(err)
	}
	if i.NumLinks() != 6 { // visits ⊂ acts
		t.Errorf("intersection links = %d, want 6", i.NumLinks())
	}
	if err := i.Validate(); err != nil {
		t.Error(err)
	}
	empty, err := Intersect(acts, graph.New())
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumNodes() != 0 || empty.NumLinks() != 0 {
		t.Error("intersection with empty graph should be empty")
	}
}

// TestMinusPaperExample reproduces the Remarks of Section 5.2 verbatim:
// G1 = {(a,b),(a,c),(b,c)}, G2 = {(a,b)}. Node-driven G1\G2 is the null
// graph {c}; link-driven G1\·G2 keeps all three nodes and links (a,c),(b,c).
func TestMinusPaperExample(t *testing.T) {
	g1, g2 := triExample(t)

	nd := Minus(g1, g2)
	hasNodeIDs(t, nd, 3)
	if nd.NumLinks() != 0 {
		t.Errorf("node-driven minus links = %d, want 0", nd.NumLinks())
	}

	ld := LinkMinus(g1, g2)
	hasNodeIDs(t, ld, 1, 2, 3)
	if ld.NumLinks() != 2 || ld.HasLink(1) {
		t.Errorf("link-driven minus links = %v, want {2,3}", ld.LinkIDs())
	}
}

// TestLemma1OnPaperExample checks the Lemma 1 reconstruction on the
// Remarks' example, where G2 is link-closed w.r.t. G1 (the only G1 link
// inside nodes(G2) is (a,b), which G2 contains).
func TestLemma1OnPaperExample(t *testing.T) {
	g1, g2 := triExample(t)
	if !LinkClosed(g1, g2) {
		t.Fatal("fixture should be link-closed")
	}
	want := LinkMinus(g1, g2)
	got, err := LinkMinusViaLemma1(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("Lemma 1 mismatch:\nwant %v %v\ngot  %v %v",
			want.NodeIDs(), want.LinkIDs(), got.NodeIDs(), got.LinkIDs())
	}
}

// TestLemma1CounterexampleWithoutClosure documents that the Lemma 1 rewrite
// requires link-closure: when G2 contains both endpoints of a G1 link but
// not the link itself, \· keeps the link while the rewrite drops it.
func TestLemma1CounterexampleWithoutClosure(t *testing.T) {
	g1, _ := triExample(t)
	// G2: nodes a,b and no links — not link-closed w.r.t. G1 (link (a,b)).
	g2 := graph.New()
	if err := g2.AddNode(graph.NewNode(1, graph.TypeUser)); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode(graph.NewNode(2, graph.TypeUser)); err != nil {
		t.Fatal(err)
	}
	if LinkClosed(g1, g2) {
		t.Fatal("fixture should not be link-closed")
	}
	direct := LinkMinus(g1, g2) // keeps every link of G1
	if direct.NumLinks() != 3 {
		t.Fatalf("direct \\· links = %d, want 3", direct.NumLinks())
	}
	viaLemma, err := LinkMinusViaLemma1(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if viaLemma.HasLink(1) {
		t.Error("rewrite should lose link (a,b) without closure — counterexample broken")
	}
	if direct.Equal(viaLemma) {
		t.Error("expected a divergence without link-closure")
	}
}

// randomSite builds a random base graph and a random induced subgraph of
// it; induced subgraphs are always link-closed, the situation the paper's
// operators produce.
func randomSite(seed int64) (base, sub *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.New()
	n := 8 + rng.Intn(8)
	for i := 1; i <= n; i++ {
		if err := b.AddNode(graph.NewNode(graph.NodeID(i), graph.TypeUser)); err != nil {
			panic(err)
		}
	}
	m := rng.Intn(3 * n)
	for i := 1; i <= m; i++ {
		src := graph.NodeID(rng.Intn(n) + 1)
		tgt := graph.NodeID(rng.Intn(n) + 1)
		if err := b.AddLink(graph.NewLink(graph.LinkID(i), src, tgt, graph.TypeConnect)); err != nil {
			panic(err)
		}
	}
	keep := make(map[graph.NodeID]struct{})
	for i := 1; i <= n; i++ {
		if rng.Intn(2) == 0 {
			keep[graph.NodeID(i)] = struct{}{}
		}
	}
	return b, b.InducedByNodes(keep).ShallowClone()
}

// Property: on induced (hence link-closed) subgraphs, the Lemma 1 rewrite
// agrees with the native link-driven minus.
func TestQuickLemma1OnInducedSubgraphs(t *testing.T) {
	f := func(seed int64) bool {
		g1, g2 := randomSite(seed)
		if !LinkClosed(g1, g2) {
			return false // induced subgraphs must be link-closed
		}
		want := LinkMinus(g1, g2)
		got, err := LinkMinusViaLemma1(g1, g2)
		if err != nil {
			return false
		}
		return want.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: algebraic laws of the set operators under consolidation
// semantics — union commutes and is idempotent, intersection commutes,
// minus with self is empty, and G\∅ = G (modulo clone).
func TestQuickSetAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		g1, g2 := randomSite(seed)
		u12, err := Union(g1, g2)
		if err != nil {
			return false
		}
		u21, err := Union(g2, g1)
		if err != nil {
			return false
		}
		if !u12.Equal(u21) {
			return false
		}
		uSelf, err := Union(g1, g1)
		if err != nil {
			return false
		}
		if !uSelf.Equal(g1) {
			return false
		}
		i12, err := Intersect(g1, g2)
		if err != nil {
			return false
		}
		i21, err := Intersect(g2, g1)
		if err != nil {
			return false
		}
		if !i12.Equal(i21) {
			return false
		}
		if Minus(g1, g1).NumNodes() != 0 {
			return false
		}
		if !Minus(g1, graph.New()).Equal(g1) {
			return false
		}
		// \· with the empty graph keeps every link but only link-induced
		// nodes (Definition 4 drops isolated nodes).
		lm := LinkMinus(g1, graph.New())
		if lm.NumLinks() != g1.NumLinks() {
			return false
		}
		for _, id := range lm.NodeIDs() {
			if !g1.HasNode(id) {
				return false
			}
		}
		// \· with self keeps no links, and only link-free nodes.
		if LinkMinus(g1, g1).NumLinks() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in both operands; minus is disjoint
// from the subtrahend's nodes.
func TestQuickContainment(t *testing.T) {
	f := func(seed int64) bool {
		g1, g2 := randomSite(seed)
		i, err := Intersect(g1, g2)
		if err != nil {
			return false
		}
		for _, id := range i.NodeIDs() {
			if !g1.HasNode(id) || !g2.HasNode(id) {
				return false
			}
		}
		for _, id := range i.LinkIDs() {
			if !g1.HasLink(id) || !g2.HasLink(id) {
				return false
			}
		}
		m := Minus(g1, g2)
		for _, id := range m.NodeIDs() {
			if g2.HasNode(id) || !g1.HasNode(id) {
				return false
			}
		}
		return m.Validate() == nil && i.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
