package core

import (
	"testing"

	"socialscope/internal/graph"
)

// travelFixture builds a miniature Y!Travel-style social content graph used
// across the operator tests:
//
//	users:   John(101), Ann(102), Bob(103), Eve(104)
//	places:  Coors Field(201, near Denver), Ballpark Museum(202, near
//	         Denver), Golden Gate(203, San Francisco), Parc(204, Barcelona)
//	friend:  John→Ann, John→Bob, Ann→Eve
//	visit:   Ann→201, Ann→202, Bob→201, Bob→203, Eve→204, John→202
//	tag:     Ann tags 201 'baseball'
type fixture struct {
	g *graph.Graph
	// node ids
	john, ann, bob, eve            graph.NodeID
	coors, museum, gate, parc      graph.NodeID
	fJohnAnn, fJohnBob, fAnnEve    graph.LinkID
	vAnnCoors, vAnnMuseum          graph.LinkID
	vBobCoors, vBobGate            graph.LinkID
	vEveParc, vJohnMuseum, tAnnTag graph.LinkID
}

func travelFixture(t testing.TB) *fixture {
	t.Helper()
	f := &fixture{g: graph.New()}
	addNode := func(id graph.NodeID, types []string, kv ...string) graph.NodeID {
		n := graph.NewNode(id, types...)
		n.Attrs = graph.NewAttrs(kv...)
		if err := f.g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		return id
	}
	addLink := func(id graph.LinkID, src, tgt graph.NodeID, types []string, kv ...string) graph.LinkID {
		l := graph.NewLink(id, src, tgt, types...)
		l.Attrs = graph.NewAttrs(kv...)
		if err := f.g.AddLink(l); err != nil {
			t.Fatal(err)
		}
		return id
	}
	f.john = addNode(101, []string{graph.TypeUser, "traveler"}, "name", "John", "interests", "baseball")
	f.ann = addNode(102, []string{graph.TypeUser}, "name", "Ann")
	f.bob = addNode(103, []string{graph.TypeUser}, "name", "Bob")
	f.eve = addNode(104, []string{graph.TypeUser}, "name", "Eve")
	f.coors = addNode(201, []string{graph.TypeItem, "destination"},
		"name", "Coors Field", "city", "Denver", "keywords", "baseball near Denver", "rating", "0.9")
	f.museum = addNode(202, []string{graph.TypeItem, "destination"},
		"name", "Ballpark Museum", "city", "Denver", "keywords", "baseball museum near Denver", "rating", "0.6")
	f.gate = addNode(203, []string{graph.TypeItem, "destination"},
		"name", "Golden Gate", "city", "San Francisco", "keywords", "bridge views", "rating", "0.8")
	f.parc = addNode(204, []string{graph.TypeItem, "destination"},
		"name", "Parc de la Ciutadella", "city", "Barcelona", "keywords", "family park babies", "rating", "0.7")

	f.fJohnAnn = addLink(301, f.john, f.ann, []string{graph.TypeConnect, graph.SubtypeFriend})
	f.fJohnBob = addLink(302, f.john, f.bob, []string{graph.TypeConnect, graph.SubtypeFriend})
	f.fAnnEve = addLink(303, f.ann, f.eve, []string{graph.TypeConnect, graph.SubtypeFriend})

	f.vAnnCoors = addLink(401, f.ann, f.coors, []string{graph.TypeAct, graph.SubtypeVisit})
	f.vAnnMuseum = addLink(402, f.ann, f.museum, []string{graph.TypeAct, graph.SubtypeVisit})
	f.vBobCoors = addLink(403, f.bob, f.coors, []string{graph.TypeAct, graph.SubtypeVisit})
	f.vBobGate = addLink(404, f.bob, f.gate, []string{graph.TypeAct, graph.SubtypeVisit})
	f.vEveParc = addLink(405, f.eve, f.parc, []string{graph.TypeAct, graph.SubtypeVisit})
	f.vJohnMuseum = addLink(406, f.john, f.museum, []string{graph.TypeAct, graph.SubtypeVisit})

	f.tAnnTag = addLink(501, f.ann, f.coors, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "baseball")
	return f
}

// tri builds the Remarks' example: G1 = {(a,b),(a,c),(b,c)} on nodes
// a=1,b=2,c=3 and G2 = {(a,b)}.
func triExample(t testing.TB) (g1, g2 *graph.Graph) {
	t.Helper()
	g1 = graph.New()
	for id := graph.NodeID(1); id <= 3; id++ {
		if err := g1.AddNode(graph.NewNode(id, graph.TypeUser)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct {
		id       graph.LinkID
		src, tgt graph.NodeID
	}{{1, 1, 2}, {2, 1, 3}, {3, 2, 3}} {
		if err := g1.AddLink(graph.NewLink(e.id, e.src, e.tgt, graph.TypeConnect)); err != nil {
			t.Fatal(err)
		}
	}
	g2 = graph.New()
	if err := g2.AddNode(graph.NewNode(1, graph.TypeUser)); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode(graph.NewNode(2, graph.TypeUser)); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddLink(graph.NewLink(1, 1, 2, graph.TypeConnect)); err != nil {
		t.Fatal(err)
	}
	return g1, g2
}

func nodeIDs(g *graph.Graph) []graph.NodeID { return g.NodeIDs() }

func hasNodeIDs(t *testing.T, g *graph.Graph, want ...graph.NodeID) {
	t.Helper()
	if g.NumNodes() != len(want) {
		t.Fatalf("node count = %d, want %d (%v vs %v)", g.NumNodes(), len(want), g.NodeIDs(), want)
	}
	for _, id := range want {
		if !g.HasNode(id) {
			t.Fatalf("missing node %d; have %v", id, g.NodeIDs())
		}
	}
}
