package core

import (
	"testing"

	"socialscope/internal/graph"
)

func TestNodeSelectStructural(t *testing.T) {
	f := travelFixture(t)
	got := NodeSelect(f.g, NewCondition(Cond("type", "destination")), nil)
	hasNodeIDs(t, got, f.coors, f.museum, f.gate, f.parc)
	if got.NumLinks() != 0 {
		t.Error("node selection must produce a null graph (no links)")
	}
	// Input untouched.
	if f.g.NumNodes() != 8 || f.g.NumLinks() != 10 {
		t.Error("NodeSelect mutated its input")
	}
}

func TestNodeSelectByID(t *testing.T) {
	f := travelFixture(t)
	got := NodeSelect(f.g, NewCondition(Cond("id", "101")), nil)
	hasNodeIDs(t, got, f.john)
	inv := NodeSelect(f.g, NewCondition(CondOp("id", Ne, "101"), Cond("type", graph.TypeUser)), nil)
	hasNodeIDs(t, inv, f.ann, f.bob, f.eve)
}

func TestNodeSelectKeywordsScore(t *testing.T) {
	f := travelFixture(t)
	c := NewCondition(Cond("type", "destination")).WithKeywords("baseball denver")
	got := NodeSelect(f.g, c, nil)
	// Coors and Museum match both terms; Gate and Parc match neither.
	hasNodeIDs(t, got, f.coors, f.museum)
	for _, n := range got.Nodes() {
		if !n.Scored || n.Score <= 0 {
			t.Errorf("selected node %d lacks a positive score", n.ID)
		}
	}
	// Scores attach to clones: the base graph's node must stay unscored.
	if f.g.Node(f.coors).Scored {
		t.Error("NodeSelect scored a node of the input graph")
	}
}

func TestNodeSelectCustomScorer(t *testing.T) {
	f := travelFixture(t)
	constant := func(_ []string, _ string) float64 { return 0.42 }
	c := Condition{Keywords: []string{"anything"}}
	got := NodeSelect(f.g, c, constant)
	if got.NumNodes() != f.g.NumNodes() {
		t.Fatalf("constant scorer should admit all nodes, got %d", got.NumNodes())
	}
	if got.Node(f.john).Score != 0.42 {
		t.Error("custom scorer not applied")
	}
	// A scorer returning zero excludes everything.
	zero := func(_ []string, _ string) float64 { return 0 }
	if NodeSelect(f.g, c, zero).NumNodes() != 0 {
		t.Error("zero scorer should exclude all nodes")
	}
}

func TestNodeSelectEmptyCondition(t *testing.T) {
	f := travelFixture(t)
	got := NodeSelect(f.g, Condition{}, nil)
	if got.NumNodes() != f.g.NumNodes() || got.NumLinks() != 0 {
		t.Error("empty condition should select every node as a null graph")
	}
}

func TestLinkSelectInducesEndpoints(t *testing.T) {
	f := travelFixture(t)
	got := LinkSelect(f.g, NewCondition(Cond("type", graph.SubtypeFriend)), nil)
	if got.NumLinks() != 3 {
		t.Fatalf("friend links = %d, want 3", got.NumLinks())
	}
	hasNodeIDs(t, got, f.john, f.ann, f.bob, f.eve)
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLinkSelectKeywords(t *testing.T) {
	f := travelFixture(t)
	c := Condition{Keywords: []string{"baseball"}}
	got := LinkSelect(f.g, c, nil)
	// Only Ann's tag link mentions baseball in its attrs.
	if got.NumLinks() != 1 || !got.HasLink(f.tAnnTag) {
		t.Fatalf("links = %v", got.LinkIDs())
	}
	l := got.Link(f.tAnnTag)
	if !l.Scored || l.Score <= 0 {
		t.Error("selected link lacks a score")
	}
	if f.g.Link(f.tAnnTag).Scored {
		t.Error("LinkSelect scored a link of the input graph")
	}
}

func TestLinkSelectNumericCondition(t *testing.T) {
	// σL sim>0.5 — the Example 5 step 6 shape.
	b := graph.NewBuilder()
	u1 := b.Node([]string{graph.TypeUser})
	u2 := b.Node([]string{graph.TypeUser})
	l1 := b.Link(u1, u2, []string{graph.TypeMatch}, "sim", "0.7")
	b.Link(u1, u2, []string{graph.TypeMatch}, "sim", "0.3")
	got := LinkSelect(b.Graph(), NewCondition(CondOp("sim", Gt, "0.5")), nil)
	if got.NumLinks() != 1 || !got.HasLink(l1) {
		t.Fatalf("links = %v", got.LinkIDs())
	}
}

func TestLinkSelectEmptyResult(t *testing.T) {
	f := travelFixture(t)
	got := LinkSelect(f.g, NewCondition(Cond("type", "no-such-type")), nil)
	if got.NumNodes() != 0 || got.NumLinks() != 0 {
		t.Error("no matches should give the empty graph")
	}
}
