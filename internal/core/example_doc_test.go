package core_test

import (
	"fmt"

	"socialscope/internal/core"
	"socialscope/internal/graph"
)

// ExampleParse shows the textual algebra: Example 4's G1 — the friendship
// network of the user with id 1 — evaluated against a three-user site.
func ExampleParse() {
	b := graph.NewBuilder()
	john := b.Node([]string{graph.TypeUser}, "name", "John")
	ann := b.Node([]string{graph.TypeUser}, "name", "Ann")
	bob := b.Node([]string{graph.TypeUser}, "name", "Bob")
	b.Link(john, ann, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(ann, bob, []string{graph.TypeConnect, graph.SubtypeFriend})

	expr, err := core.Parse("selectL{type=friend}(semijoin(src,src)(G, selectN{id=1}(G)))")
	if err != nil {
		panic(err)
	}
	result, err := expr.Eval(core.NewContext(b.Graph()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("links=%d nodes=%d\n", result.NumLinks(), result.NumNodes())
	// Output:
	// links=1 nodes=2
}

// ExampleNodeAggregate shows γN: counting each user's friends into a
// fnd_cnt attribute, the paper's Definition 9 example.
func ExampleNodeAggregate() {
	b := graph.NewBuilder()
	john := b.Node([]string{graph.TypeUser}, "name", "John")
	ann := b.Node([]string{graph.TypeUser}, "name", "Ann")
	bob := b.Node([]string{graph.TypeUser}, "name", "Bob")
	b.Link(john, ann, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(john, bob, []string{graph.TypeConnect, graph.SubtypeFriend})

	out, err := core.NodeAggregate(b.Graph(),
		core.NewCondition(core.Cond("type", graph.SubtypeFriend)),
		graph.Src, "fnd_cnt", core.Num(core.Count()))
	if err != nil {
		panic(err)
	}
	n, _ := out.Node(john).Attrs.Int("fnd_cnt")
	fmt.Println("John's friends:", n)
	// Output:
	// John's friends: 2
}

// ExamplePatternAggregate shows the Figure 2 graph pattern: one link per
// destination reachable over a match-visit path, scored by the average
// similarity of the paths.
func ExamplePatternAggregate() {
	b := graph.NewBuilder()
	john := b.Node([]string{graph.TypeUser}, "name", "John")
	peer := b.Node([]string{graph.TypeUser}, "name", "Peer")
	dest := b.Node([]string{graph.TypeItem, "destination"}, "name", "Coors Field")
	b.Link(john, peer, []string{graph.TypeMatch}, "sim", "0.8")
	b.Link(peer, dest, []string{graph.TypeAct, graph.SubtypeVisit})
	g := b.Graph()

	pattern := core.Pattern{
		Start: core.NewCondition(core.Cond("id", "1")),
		Steps: []core.PatternStep{
			{Link: core.NewCondition(core.Cond("type", "match"))},
			{Link: core.NewCondition(core.Cond("type", "visit")),
				Node: core.NewCondition(core.Cond("type", "destination"))},
		},
	}
	out, err := core.PatternAggregate(g, pattern, "score",
		core.AvgPathAttr(0, "sim"), graph.IDSourceFor(g))
	if err != nil {
		panic(err)
	}
	for _, l := range out.Links() {
		fmt.Printf("recommend %d -> %d score=%s\n", l.Src, l.Tgt, l.Attrs.Get("score"))
	}
	// Output:
	// recommend 1 -> 3 score=0.8
}
