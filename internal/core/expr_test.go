package core

import (
	"strings"
	"testing"

	"socialscope/internal/graph"
)

func TestBaseAndLitExpr(t *testing.T) {
	f := travelFixture(t)
	ctx := NewContext(f.g)
	g, err := Base("G").Eval(ctx)
	if err != nil || g != f.g {
		t.Fatalf("Base eval = %v, %v", g, err)
	}
	if _, err := Base("missing").Eval(ctx); err == nil {
		t.Error("unknown base should error")
	}
	lit := graph.New()
	got, err := Lit(lit).Eval(ctx)
	if err != nil || got != lit {
		t.Error("Lit should return the wrapped graph")
	}
}

func TestExprEvalMatchesDirectOperators(t *testing.T) {
	f := travelFixture(t)
	ctx := NewContext(f.g)
	c := NewCondition(Cond("type", "destination"))

	fromExpr, err := SelectNodes(Base("G"), c).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	direct := NodeSelect(f.g, c, nil)
	if !fromExpr.Equal(direct) {
		t.Error("NodeSelectExpr diverges from NodeSelect")
	}

	lc := NewCondition(Cond("type", graph.SubtypeFriend))
	fromExpr2, err := SelectLinks(Base("G"), lc).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !fromExpr2.Equal(LinkSelect(f.g, lc, nil)) {
		t.Error("LinkSelectExpr diverges from LinkSelect")
	}

	u, err := UnionOf(SelectLinks(Base("G"), lc), SelectNodes(Base("G"), c)).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumLinks() != 3 || u.NumNodes() != 8 {
		t.Errorf("union expr = %v", u)
	}

	i, err := IntersectOf(SelectNodes(Base("G"), c), SelectNodes(Base("G"), Condition{})).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if i.NumNodes() != 4 {
		t.Errorf("intersect expr nodes = %d", i.NumNodes())
	}

	m, err := MinusOf(Base("G"), SelectNodes(Base("G"), c)).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 4 { // users only
		t.Errorf("minus expr nodes = %d", m.NumNodes())
	}

	lm, err := LinkMinusOf(Base("G"), SelectLinks(Base("G"), lc)).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lm.NumLinks() != 7 { // 10 - 3 friend links
		t.Errorf("link-minus expr links = %d", lm.NumLinks())
	}
}

func TestExprAggregations(t *testing.T) {
	f := travelFixture(t)
	ctx := NewContext(f.g)
	visit := NewCondition(Cond("type", graph.SubtypeVisit))

	na, err := AggregateNodes(Base("G"), visit, graph.Src, "vst", CollectEnd(graph.Tgt)).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(na.Node(f.ann).Attrs.All("vst")) != 2 {
		t.Error("node aggregation expr wrong")
	}

	la, err := AggregateLinks(Base("G"), visit, "cnt", Num(Count())).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if la.NumLinks() != 10 {
		t.Errorf("link aggregation expr links = %d", la.NumLinks())
	}

	comp, err := ComposeOf(
		SelectLinks(Base("G"), NewCondition(Cond("type", graph.SubtypeFriend))),
		SelectLinks(Base("G"), visit),
		Delta(graph.Tgt, graph.Src), ConstComposer("ufi")).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumLinks() != 5 {
		t.Errorf("compose expr links = %d", comp.NumLinks())
	}

	sj, err := SemiJoinOf(Base("G"), SelectNodes(Base("G"), NewCondition(Cond("id", "101"))),
		Delta(graph.Src, graph.Src)).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sj.NumLinks() != 3 {
		t.Errorf("semijoin expr links = %d", sj.NumLinks())
	}

	pat := Pattern{
		Start: NewCondition(Cond("id", "101")),
		Steps: []PatternStep{{Link: NewCondition(Cond("type", graph.SubtypeFriend))}},
	}
	pa, err := AggregatePattern(Base("G"), pat, "n", CountPaths()).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pa.NumLinks() != 2 { // John→Ann, John→Bob
		t.Errorf("pattern expr links = %d", pa.NumLinks())
	}
}

func TestExprErrorPropagation(t *testing.T) {
	ctx := NewContext(graph.New())
	bad := Base("missing")
	exprs := []Expr{
		SelectNodes(bad, Condition{}),
		SelectLinks(bad, Condition{}),
		UnionOf(bad, Base("G")),
		UnionOf(Base("G"), bad),
		ComposeOf(bad, Base("G"), Delta(graph.Src, graph.Src), ConstComposer("x")),
		ComposeOf(Base("G"), bad, Delta(graph.Src, graph.Src), ConstComposer("x")),
		SemiJoinOf(bad, Base("G"), Delta(graph.Src, graph.Src)),
		SemiJoinOf(Base("G"), bad, Delta(graph.Src, graph.Src)),
		AggregateNodes(bad, Condition{}, graph.Src, "x", Num(Count())),
		AggregateLinks(bad, Condition{}, "x", Num(Count())),
		AggregatePattern(bad, Pattern{Steps: []PatternStep{{}}}, "x", CountPaths()),
	}
	for i, e := range exprs {
		if _, err := e.Eval(ctx); err == nil {
			t.Errorf("expr %d should propagate the unknown-base error", i)
		}
	}
}

func TestExprStrings(t *testing.T) {
	c := NewCondition(Cond("type", "user"))
	e := UnionOf(SelectNodes(Base("G"), c), SelectLinks(Base("G"), c))
	s := e.String()
	for _, want := range []string{"σN", "σL", "∪", "G"} {
		if !strings.Contains(s, want) {
			t.Errorf("expr String %q missing %q", s, want)
		}
	}
	if SetOpKind(9).String() != "?" {
		t.Error("unknown set op should render ?")
	}
}
