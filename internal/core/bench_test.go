package core

import (
	"testing"

	"socialscope/internal/graph"
)

func benchBase(b *testing.B) *graph.Graph {
	b.Helper()
	g, _ := randomSite(42)
	return g
}

func BenchmarkNodeSelect(b *testing.B) {
	g := benchBase(b)
	c := NewCondition(Cond("type", graph.TypeUser))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NodeSelect(g, c, nil)
	}
}

func BenchmarkLinkSelect(b *testing.B) {
	g := benchBase(b)
	c := NewCondition(Cond("type", graph.TypeConnect))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinkSelect(g, c, nil)
	}
}

func BenchmarkUnion(b *testing.B) {
	g := benchBase(b)
	h := LinkSelect(g, NewCondition(Cond("type", graph.TypeConnect)), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Union(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemiJoin(b *testing.B) {
	g := benchBase(b)
	anchor := NodeSelect(g, NewCondition(Cond("id", "1")), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoin(g, anchor, Delta(graph.Src, graph.Src))
	}
}

func BenchmarkCompose(b *testing.B) {
	g := benchBase(b)
	ids := graph.IDSourceFor(g)
	f := ConstComposer("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(g, g, Delta(graph.Tgt, graph.Src), f, ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkAggregate(b *testing.B) {
	g := benchBase(b)
	ids := graph.IDSourceFor(g)
	c := NewCondition(Cond("type", graph.TypeConnect))
	agg := Num(Count())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LinkAggregate(g, c, "n", agg, ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const src = "selectL{type=friend}(semijoin(src,src)(G, selectN{id=101}(G))) union selectN{type=item; 'denver attractions'}(G)"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewrite(b *testing.B) {
	c := NewCondition(Cond("type", "user"))
	e := UnionOf(SelectNodes(SelectNodes(Base("G"), c), c), SelectNodes(SelectNodes(Base("G"), c), c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rewrite(e, DefaultRules)
	}
}
