package core

import (
	"strings"
	"testing"
	"testing/quick"

	"socialscope/internal/graph"
)

func TestFuseNodeSelections(t *testing.T) {
	f := travelFixture(t)
	c1 := NewCondition(Cond("type", "destination"))
	c2 := NewCondition(Cond("city", "Denver"))
	stacked := SelectNodes(SelectNodes(Base("G"), c1), c2)
	rewritten, fired := Rewrite(stacked, DefaultRules)
	if len(fired) == 0 || fired[0] != "fuse-node-selections" {
		t.Fatalf("fired = %v", fired)
	}
	if _, ok := rewritten.(NodeSelectExpr); !ok {
		t.Fatalf("rewritten = %T", rewritten)
	}
	ctx := NewContext(f.g)
	want, err := stacked.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rewritten.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("fusion changed the result")
	}
	hasNodeIDs(t, got, f.coors, f.museum)
}

func TestFuseNodeSelectionsKeywordGuard(t *testing.T) {
	// Inner keyword selection must not fuse: the keyword threshold filters.
	inner := SelectNodes(Base("G"), Condition{Keywords: []string{"baseball"}})
	outer := SelectNodes(inner, NewCondition(Cond("type", "destination")))
	_, fired := Rewrite(outer, DefaultRules)
	for _, r := range fired {
		if r == "fuse-node-selections" {
			t.Error("fused across a keyword selection")
		}
	}
}

func TestFuseLinkSelections(t *testing.T) {
	f := travelFixture(t)
	stacked := SelectLinks(SelectLinks(Base("G"),
		NewCondition(Cond("type", graph.TypeAct))),
		NewCondition(Cond("type", graph.SubtypeVisit)))
	rewritten, fired := Rewrite(stacked, DefaultRules)
	if len(fired) == 0 {
		t.Fatal("link fusion did not fire")
	}
	ctx := NewContext(f.g)
	want, _ := stacked.Eval(ctx)
	got, err := rewritten.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("link fusion changed the result")
	}
}

func TestIdempotentUnion(t *testing.T) {
	f := travelFixture(t)
	sel := SelectNodes(Base("G"), NewCondition(Cond("type", "destination")))
	u := UnionOf(sel, sel)
	rewritten, fired := Rewrite(u, DefaultRules)
	found := false
	for _, r := range fired {
		if r == "idempotent-union" {
			found = true
		}
	}
	if !found {
		t.Fatalf("idempotent-union did not fire: %v", fired)
	}
	ctx := NewContext(f.g)
	want, _ := u.Eval(ctx)
	got, err := rewritten.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("idempotent-union changed the result")
	}
}

func TestIdempotentUnionSkipsImpureOperands(t *testing.T) {
	// Compositions allocate fresh ids; identical subtrees are NOT
	// interchangeable and must not be deduplicated.
	comp := ComposeOf(Base("G"), Base("G"), Delta(graph.Tgt, graph.Src), ConstComposer("x"))
	u := UnionOf(comp, comp)
	_, fired := Rewrite(u, DefaultRules)
	for _, r := range fired {
		if r == "idempotent-union" {
			t.Error("deduplicated an id-allocating subtree")
		}
	}
}

func TestExpandLinkMinusRule(t *testing.T) {
	g1, g2 := triExample(t)
	e := LinkMinusOf(Lit(g1), Lit(g2))
	rewritten, fired := Rewrite(e, []Rule{ExpandLinkMinus})
	if len(fired) != 1 || fired[0] != "expand-link-minus-lemma1" {
		t.Fatalf("fired = %v", fired)
	}
	ctx := NewContext(g1)
	want, err := e.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rewritten.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("Lemma 1 expansion changed the result on a link-closed input:\nwant %v\ngot %v",
			want.LinkIDs(), got.LinkIDs())
	}
}

func TestRewriteReachesFixedPoint(t *testing.T) {
	// Triple-stacked selections need two fusion passes.
	c := NewCondition(Cond("type", "user"))
	e := SelectNodes(SelectNodes(SelectNodes(Base("G"), c), c), c)
	rewritten, fired := Rewrite(e, DefaultRules)
	if len(fired) < 2 {
		t.Errorf("expected two fusions, fired = %v", fired)
	}
	sel, ok := rewritten.(NodeSelectExpr)
	if !ok {
		t.Fatalf("rewritten = %T", rewritten)
	}
	if _, isBase := sel.In.(BaseExpr); !isBase {
		t.Errorf("not fully fused: %s", rewritten)
	}
}

func TestRewriteTraversesAllShapes(t *testing.T) {
	f := travelFixture(t)
	c := NewCondition(Cond("type", "user"))
	stack := SelectNodes(SelectNodes(Base("G"), c), c)
	// Bury the fusable stack under every composite expression type.
	exprs := []Expr{
		UnionOf(stack, Base("G")),
		IntersectOf(Base("G"), stack),
		ComposeOf(stack, Base("G"), Delta(graph.Src, graph.Src), ConstComposer("x")),
		SemiJoinOf(Base("G"), stack, Delta(graph.Src, graph.Src)),
		AggregateNodes(stack, c, graph.Src, "a", Num(Count())),
		AggregateLinks(stack, c, "a", Num(Count())),
		AggregatePattern(stack, Pattern{Steps: []PatternStep{{}}}, "a", CountPaths()),
		SelectLinks(stack, c),
	}
	for i, e := range exprs {
		_, fired := Rewrite(e, DefaultRules)
		if len(fired) == 0 {
			t.Errorf("expr %d: rewriter did not descend (%s)", i, e)
		}
	}
	_ = f
}

func TestExplain(t *testing.T) {
	e := UnionOf(
		SelectNodes(Base("G"), NewCondition(Cond("type", "user"))),
		AggregateLinks(SelectLinks(Base("G"), Condition{}), Condition{}, "n", Num(Count())))
	out := Explain(e)
	for _, want := range []string{"∪", "σN", "σL", "γL", "base G"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

// Property: the default rules never change evaluation results on plans
// combining selections and set operators over random link-closed pairs.
func TestQuickRewriteEquivalence(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		g1, _ := randomSite(seed)
		ctx := NewContext(g1)
		conds := []Condition{
			NewCondition(Cond("type", graph.TypeUser)),
			NewCondition(Cond("type", graph.TypeConnect)),
			Condition{},
		}
		c1 := conds[int(pick)%len(conds)]
		c2 := conds[int(pick/3)%len(conds)]
		plans := []Expr{
			SelectNodes(SelectNodes(Base("G"), c1), c2),
			SelectLinks(SelectLinks(Base("G"), c1), c2),
			UnionOf(SelectNodes(Base("G"), c1), SelectNodes(Base("G"), c1)),
			MinusOf(SelectNodes(Base("G"), c1), SelectNodes(SelectNodes(Base("G"), c1), c2)),
		}
		e := plans[int(pick/7)%len(plans)]
		want, err := e.Eval(ctx)
		if err != nil {
			return false
		}
		rewritten, _ := Rewrite(e, DefaultRules)
		got, err := rewritten.Eval(ctx)
		if err != nil {
			return false
		}
		return want.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
