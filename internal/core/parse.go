package core

import (
	"fmt"
	"strings"
	"unicode"

	"socialscope/internal/graph"
)

// Parse turns a textual algebra expression into an Expr tree. The syntax
// mirrors the paper's notation with ASCII operator names:
//
//	expr     := term (("union" | "intersect" | "minus" | "lminus") term)*
//	term     := base | select | semijoin | "(" expr ")"
//	base     := identifier                       // context graph, e.g. G
//	select   := ("selectN" | "selectL") "{" conds "}" "(" expr ")"
//	semijoin := "semijoin" "(" dir "," dir ")" "(" expr "," expr ")"
//	conds    := cond (";" cond)* [";"] ["'" keywords "'"]
//	cond     := attr ("=" | "!=" | ">" | ">=" | "<" | "<=") value[,value...]
//	dir      := "src" | "tgt"
//
// Examples (Example 4's G1):
//
//	selectL{type=friend}(semijoin(src,src)(G, selectN{id=101}(G)))
//
// Binary set operators are left-associative with equal precedence, as in
// the paper's linear notation. Composition and aggregation carry function
// values and are constructed programmatically rather than parsed.
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("core: parse at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// peekWord returns the identifier at the cursor without consuming it.
func (p *parser) peekWord() string {
	p.skipSpace()
	end := p.pos
	for end < len(p.src) && (isIdent(p.src[end])) {
		end++
	}
	return p.src[p.pos:end]
}

func isIdent(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

func (p *parser) consumeWord() string {
	w := p.peekWord()
	p.pos += len(w)
	return w
}

func (p *parser) expect(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return p.errorf("expected %q", tok)
	}
	p.pos += len(tok)
	return nil
}

var setOps = map[string]SetOpKind{
	"union":     OpUnion,
	"intersect": OpIntersect,
	"minus":     OpMinus,
	"lminus":    OpLinkMinus,
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		w := p.peekWord()
		kind, ok := setOps[w]
		if !ok {
			return left, nil
		}
		p.consumeWord()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = SetExpr{Kind: kind, L: left, R: right}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	w := p.peekWord()
	switch w {
	case "":
		return nil, p.errorf("expected expression")
	case "selectN", "selectL":
		return p.parseSelect(w)
	case "semijoin":
		return p.parseSemiJoin()
	case "union", "intersect", "minus", "lminus":
		return nil, p.errorf("operator %q where an operand was expected", w)
	default:
		p.consumeWord()
		return BaseExpr{Name: w}, nil
	}
}

func (p *parser) parseSelect(kind string) (Expr, error) {
	p.consumeWord()
	cond, err := p.parseCondition()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	in, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if kind == "selectN" {
		return NodeSelectExpr{In: in, C: cond}, nil
	}
	return LinkSelectExpr{In: in, C: cond}, nil
}

func (p *parser) parseSemiJoin() (Expr, error) {
	p.consumeWord()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	d1, err := p.parseDirection()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	d2, err := p.parseDirection()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return SemiJoinExpr{L: l, R: r, D: Delta(d1, d2)}, nil
}

func (p *parser) parseDirection() (graph.Direction, error) {
	switch p.peekWord() {
	case "src":
		p.consumeWord()
		return graph.Src, nil
	case "tgt":
		p.consumeWord()
		return graph.Tgt, nil
	}
	return graph.Src, p.errorf("expected src or tgt")
}

// parseCondition reads {attr=val,...; attr>=val; 'keywords'}.
func (p *parser) parseCondition() (Condition, error) {
	var c Condition
	if err := p.expect("{"); err != nil {
		return c, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return c, p.errorf("unterminated condition")
		}
		if p.src[p.pos] == '}' {
			p.pos++
			return c, nil
		}
		if p.src[p.pos] == '\'' {
			kw, err := p.parseQuoted()
			if err != nil {
				return c, err
			}
			c = c.WithKeywords(kw)
			continue
		}
		if p.src[p.pos] == ';' {
			p.pos++
			continue
		}
		sc, err := p.parseStructCond()
		if err != nil {
			return c, err
		}
		c.Structural = append(c.Structural, sc)
	}
}

func (p *parser) parseQuoted() (string, error) {
	// cursor on opening quote
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], '\'')
	if end < 0 {
		return "", p.errorf("unterminated keyword string")
	}
	s := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return s, nil
}

var condOps = []struct {
	sym string
	op  Op
}{
	{">=", Ge}, {"<=", Le}, {"!=", Ne}, {">", Gt}, {"<", Lt}, {"=", Eq},
}

func (p *parser) parseStructCond() (StructCond, error) {
	attr := p.consumeWord()
	if attr == "" {
		return StructCond{}, p.errorf("expected attribute name")
	}
	p.skipSpace()
	var op Op
	found := false
	for _, c := range condOps {
		if strings.HasPrefix(p.src[p.pos:], c.sym) {
			op = c.op
			p.pos += len(c.sym)
			found = true
			break
		}
	}
	if !found {
		return StructCond{}, p.errorf("expected comparison operator after %q", attr)
	}
	// Values: comma-separated runs up to ';', '}' or "'".
	var values []string
	for {
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && !strings.ContainsRune(",;}'", rune(p.src[p.pos])) {
			p.pos++
		}
		v := strings.TrimSpace(p.src[start:p.pos])
		if v == "" {
			return StructCond{}, p.errorf("empty value for attribute %q", attr)
		}
		values = append(values, v)
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	return StructCond{Attr: attr, Op: op, Values: values}, nil
}
