package core

import (
	"fmt"

	"socialscope/internal/graph"
)

// Context supplies an algebra evaluation with its named input graphs and a
// shared id source for operators that create links. One Context per query
// evaluation keeps derived ids collision-free.
type Context struct {
	Graphs map[string]*graph.Graph
	IDs    *graph.IDSource
}

// NewContext builds a context whose base graph is registered under "G" (the
// paper's convention) and whose id source starts past the base graph's ids.
func NewContext(base *graph.Graph) *Context {
	return &Context{
		Graphs: map[string]*graph.Graph{"G": base},
		IDs:    graph.IDSourceFor(base),
	}
}

// Expr is a node of an algebra expression tree. Expressions are immutable;
// the rewriter builds new trees.
type Expr interface {
	// Eval evaluates the expression against the context.
	Eval(ctx *Context) (*graph.Graph, error)
	// String renders the expression in the paper's notation.
	String() string
}

// --- Leaves ---------------------------------------------------------------

// BaseExpr references a named input graph in the context.
type BaseExpr struct{ Name string }

// Base references the context graph registered under name ("G" for the
// site graph).
func Base(name string) Expr { return BaseExpr{name} }

// Eval looks the named graph up in the context.
func (b BaseExpr) Eval(ctx *Context) (*graph.Graph, error) {
	g, ok := ctx.Graphs[b.Name]
	if !ok {
		return nil, fmt.Errorf("core: unknown graph %q in context", b.Name)
	}
	return g, nil
}

func (b BaseExpr) String() string { return b.Name }

// ConstExpr wraps a literal graph as a leaf.
type ConstExpr struct{ G *graph.Graph }

// Lit wraps a graph value as an expression leaf.
func Lit(g *graph.Graph) Expr { return ConstExpr{g} }

// Eval returns the wrapped literal graph.
func (c ConstExpr) Eval(*Context) (*graph.Graph, error) { return c.G, nil }
func (c ConstExpr) String() string                      { return c.G.String() }

// --- Unary selections -------------------------------------------------------

// NodeSelectExpr is σN⟨C,S⟩(In).
type NodeSelectExpr struct {
	In     Expr
	C      Condition
	Scorer Scorer
}

// SelectNodes builds a node selection expression with the default scorer.
func SelectNodes(in Expr, c Condition) Expr { return NodeSelectExpr{In: in, C: c} }

// SelectNodesScored builds a node selection with an explicit scorer.
func SelectNodesScored(in Expr, c Condition, s Scorer) Expr {
	return NodeSelectExpr{In: in, C: c, Scorer: s}
}

// Eval evaluates the input then applies NodeSelect.
func (e NodeSelectExpr) Eval(ctx *Context) (*graph.Graph, error) {
	g, err := e.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return NodeSelect(g, e.C, e.Scorer), nil
}

func (e NodeSelectExpr) String() string { return "σN" + e.C.String() + "(" + e.In.String() + ")" }

// LinkSelectExpr is σL⟨C,S⟩(In).
type LinkSelectExpr struct {
	In     Expr
	C      Condition
	Scorer Scorer
}

// SelectLinks builds a link selection expression with the default scorer.
func SelectLinks(in Expr, c Condition) Expr { return LinkSelectExpr{In: in, C: c} }

// SelectLinksScored builds a link selection with an explicit scorer.
func SelectLinksScored(in Expr, c Condition, s Scorer) Expr {
	return LinkSelectExpr{In: in, C: c, Scorer: s}
}

// Eval evaluates the input then applies LinkSelect.
func (e LinkSelectExpr) Eval(ctx *Context) (*graph.Graph, error) {
	g, err := e.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return LinkSelect(g, e.C, e.Scorer), nil
}

func (e LinkSelectExpr) String() string { return "σL" + e.C.String() + "(" + e.In.String() + ")" }

// --- Set-theoretic operators ------------------------------------------------

// SetOpKind distinguishes the binary set-theoretic expressions.
type SetOpKind uint8

// The four set-theoretic operators of Definitions 3 and 4.
const (
	OpUnion SetOpKind = iota
	OpIntersect
	OpMinus     // node-driven \
	OpLinkMinus // link-driven \·
)

func (k SetOpKind) String() string {
	switch k {
	case OpUnion:
		return "∪"
	case OpIntersect:
		return "∩"
	case OpMinus:
		return "\\"
	case OpLinkMinus:
		return "\\·"
	}
	return "?"
}

// SetExpr is a binary set-theoretic expression.
type SetExpr struct {
	Kind SetOpKind
	L, R Expr
}

// UnionOf builds L ∪ R.
func UnionOf(l, r Expr) Expr { return SetExpr{OpUnion, l, r} }

// IntersectOf builds L ∩ R.
func IntersectOf(l, r Expr) Expr { return SetExpr{OpIntersect, l, r} }

// MinusOf builds the node-driven L \ R.
func MinusOf(l, r Expr) Expr { return SetExpr{OpMinus, l, r} }

// LinkMinusOf builds the link-driven L \· R.
func LinkMinusOf(l, r Expr) Expr { return SetExpr{OpLinkMinus, l, r} }

// Eval evaluates both sides then applies the set operator.
func (e SetExpr) Eval(ctx *Context) (*graph.Graph, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return nil, err
	}
	switch e.Kind {
	case OpUnion:
		return Union(l, r)
	case OpIntersect:
		return Intersect(l, r)
	case OpMinus:
		return Minus(l, r), nil
	case OpLinkMinus:
		return LinkMinus(l, r), nil
	}
	return nil, fmt.Errorf("core: unknown set operator %d", e.Kind)
}

func (e SetExpr) String() string {
	return "(" + e.L.String() + " " + e.Kind.String() + " " + e.R.String() + ")"
}

// --- Composition and semi-join ----------------------------------------------

// ComposeExpr is L ⟨δ,F⟩ R.
type ComposeExpr struct {
	L, R Expr
	D    DirCond
	F    ComposeFn
}

// ComposeOf builds a composition expression.
func ComposeOf(l, r Expr, d DirCond, f ComposeFn) Expr { return ComposeExpr{l, r, d, f} }

// Eval evaluates both sides then composes them.
func (e ComposeExpr) Eval(ctx *Context) (*graph.Graph, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return Compose(l, r, e.D, e.F, ctx.IDs)
}

func (e ComposeExpr) String() string {
	return "(" + e.L.String() + " ⊙" + e.D.String() + " " + e.R.String() + ")"
}

// SemiJoinExpr is L ⋉δ R.
type SemiJoinExpr struct {
	L, R Expr
	D    DirCond
}

// SemiJoinOf builds a semi-join expression.
func SemiJoinOf(l, r Expr, d DirCond) Expr { return SemiJoinExpr{l, r, d} }

// Eval evaluates both sides then semi-joins them.
func (e SemiJoinExpr) Eval(ctx *Context) (*graph.Graph, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return SemiJoin(l, r, e.D), nil
}

func (e SemiJoinExpr) String() string {
	return "(" + e.L.String() + " ⋉" + e.D.String() + " " + e.R.String() + ")"
}

// --- Aggregations -------------------------------------------------------------

// NodeAggExpr is γN⟨C,d,att,A⟩(In).
type NodeAggExpr struct {
	In  Expr
	C   Condition
	D   graph.Direction
	Att string
	A   Aggregator
}

// AggregateNodes builds a node aggregation expression.
func AggregateNodes(in Expr, c Condition, d graph.Direction, att string, a Aggregator) Expr {
	return NodeAggExpr{in, c, d, att, a}
}

// Eval evaluates the input then applies NodeAggregate.
func (e NodeAggExpr) Eval(ctx *Context) (*graph.Graph, error) {
	g, err := e.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return NodeAggregate(g, e.C, e.D, e.Att, e.A)
}

func (e NodeAggExpr) String() string {
	return fmt.Sprintf("γN⟨%s,%s,%s,%s⟩(%s)", e.C, e.D, e.Att, e.A, e.In)
}

// LinkAggExpr is γL⟨C,att,A⟩(In).
type LinkAggExpr struct {
	In    Expr
	C     Condition
	Att   string
	A     Aggregator
	Carry []string
}

// AggregateLinks builds a link aggregation expression.
func AggregateLinks(in Expr, c Condition, att string, a Aggregator, carry ...string) Expr {
	return LinkAggExpr{in, c, att, a, carry}
}

// Eval evaluates the input then applies LinkAggregate.
func (e LinkAggExpr) Eval(ctx *Context) (*graph.Graph, error) {
	g, err := e.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return LinkAggregate(g, e.C, e.Att, e.A, ctx.IDs, WithCarry(e.Carry...))
}

func (e LinkAggExpr) String() string {
	return fmt.Sprintf("γL⟨%s,%s,%s⟩(%s)", e.C, e.Att, e.A, e.In)
}

// PatternAggExpr is γL⟨GP,att,A⟩(In).
type PatternAggExpr struct {
	In  Expr
	P   Pattern
	Att string
	A   PathAggregator
}

// AggregatePattern builds a pattern aggregation expression.
func AggregatePattern(in Expr, p Pattern, att string, a PathAggregator) Expr {
	return PatternAggExpr{in, p, att, a}
}

// Eval evaluates the input then applies PatternAggregate.
func (e PatternAggExpr) Eval(ctx *Context) (*graph.Graph, error) {
	g, err := e.In.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return PatternAggregate(g, e.P, e.Att, e.A, ctx.IDs)
}

func (e PatternAggExpr) String() string {
	return fmt.Sprintf("γL⟨%s,%s,%s⟩(%s)", e.P, e.Att, e.A, e.In)
}
