package core

import "socialscope/internal/graph"

// NodeSelect implements σN⟨C,S⟩(G) (Definition 1): the null graph — nodes
// only, no links — of the input nodes that satisfy C's structural
// conditions, each with a score attached. When C carries keywords, only
// nodes with a positive score qualify, and the score is computed by s
// (or DefaultScorer when s is nil). Without keywords the score is left
// unset. Selected nodes are cloned, so attaching scores never mutates g.
func NodeSelect(g *graph.Graph, c Condition, s Scorer) *graph.Graph {
	if s == nil {
		s = DefaultScorer
	}
	out := graph.New()
	for _, n := range g.Nodes() {
		if !c.SatisfiedByNode(n) {
			continue
		}
		if len(c.Keywords) > 0 {
			score := s(c.Keywords, n.Text())
			if score <= 0 {
				continue
			}
			cn := n.Clone()
			cn.SetScore(score)
			out.PutNode(cn)
			continue
		}
		out.PutNode(n)
	}
	return out
}

// LinkSelect implements σL⟨C,S⟩(G) (Definition 2): the subgraph of the input
// induced by the links that satisfy C — the qualifying links plus precisely
// their endpoint nodes. Scores attach to links the same way NodeSelect
// attaches them to nodes.
func LinkSelect(g *graph.Graph, c Condition, s Scorer) *graph.Graph {
	if s == nil {
		s = DefaultScorer
	}
	out := graph.New()
	add := func(l *graph.Link) {
		if !out.HasNode(l.Src) {
			out.PutNode(g.Node(l.Src))
		}
		if !out.HasNode(l.Tgt) {
			out.PutNode(g.Node(l.Tgt))
		}
		// Endpoints were just ensured; the only failure mode is a duplicate
		// id, which the iteration order precludes.
		if err := out.AddLink(l); err != nil {
			panic("core: LinkSelect internal: " + err.Error())
		}
	}
	for _, l := range g.Links() {
		if !c.SatisfiedByLink(l) {
			continue
		}
		if len(c.Keywords) > 0 {
			score := s(c.Keywords, l.Text())
			if score <= 0 {
				continue
			}
			cl := l.Clone()
			cl.SetScore(score)
			add(cl)
			continue
		}
		add(l)
	}
	return out
}
