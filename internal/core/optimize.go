package core

import (
	"strings"

	"socialscope/internal/graph"
)

// Rule is a local rewrite on an expression tree. A rule returns the
// rewritten expression and whether it fired; rules must preserve the
// evaluation result (equivalence is property-tested).
type Rule struct {
	Name  string
	Apply func(Expr) (Expr, bool)
}

// FuseNodeSelections rewrites σN⟨C1⟩(σN⟨C2⟩(E)) into σN⟨C1∧C2⟩(E). Valid
// because the inner selection produces a null graph whose nodes all satisfy
// C2; keyword scoring of the outer selection is preserved by keeping C1's
// keywords and scorer (the inner score is overwritten by the outer in the
// original plan as well).
var FuseNodeSelections = Rule{
	Name: "fuse-node-selections",
	Apply: func(e Expr) (Expr, bool) {
		outer, ok := e.(NodeSelectExpr)
		if !ok {
			return e, false
		}
		inner, ok := outer.In.(NodeSelectExpr)
		if !ok {
			return e, false
		}
		// Only fuse when the inner selection carries no keywords: keyword
		// filtering contributes a score threshold that must still apply.
		if len(inner.C.Keywords) > 0 {
			return e, false
		}
		fused := Condition{
			Structural: append(append([]StructCond(nil), inner.C.Structural...), outer.C.Structural...),
			Keywords:   outer.C.Keywords,
		}
		return NodeSelectExpr{In: inner.In, C: fused, Scorer: outer.Scorer}, true
	},
}

// FuseLinkSelections rewrites σL⟨C1⟩(σL⟨C2⟩(E)) into σL⟨C1∧C2⟩(E) under the
// same keyword proviso as FuseNodeSelections.
var FuseLinkSelections = Rule{
	Name: "fuse-link-selections",
	Apply: func(e Expr) (Expr, bool) {
		outer, ok := e.(LinkSelectExpr)
		if !ok {
			return e, false
		}
		inner, ok := outer.In.(LinkSelectExpr)
		if !ok {
			return e, false
		}
		if len(inner.C.Keywords) > 0 {
			return e, false
		}
		fused := Condition{
			Structural: append(append([]StructCond(nil), inner.C.Structural...), outer.C.Structural...),
			Keywords:   outer.C.Keywords,
		}
		return LinkSelectExpr{In: inner.In, C: fused, Scorer: outer.Scorer}, true
	},
}

// IdempotentUnion rewrites E ∪ E (syntactically identical operands without
// scorers, compared by their printed form) into E. Valid because union
// consolidation of an element with itself is the element.
var IdempotentUnion = Rule{
	Name: "idempotent-union",
	Apply: func(e Expr) (Expr, bool) {
		s, ok := e.(SetExpr)
		if !ok || s.Kind != OpUnion {
			return e, false
		}
		if s.L.String() == s.R.String() && pureExpr(s.L) && pureExpr(s.R) {
			return s.L, true
		}
		return e, false
	},
}

// ExpandLinkMinus rewrites L \· R into the Lemma 1 form
// (L ⋉(src,src) σN⟨∅⟩(L\R)) ∪ (L ⋉(tgt,src) σN⟨∅⟩(L\R)). The expansion is
// only equivalent when R is link-closed with respect to L (see
// LinkMinusViaLemma1); the optimizer therefore exposes it as an opt-in rule
// rather than including it in DefaultRules.
var ExpandLinkMinus = Rule{
	Name: "expand-link-minus-lemma1",
	Apply: func(e Expr) (Expr, bool) {
		s, ok := e.(SetExpr)
		if !ok || s.Kind != OpLinkMinus {
			return e, false
		}
		n := SelectNodes(MinusOf(s.L, s.R), Condition{})
		left := SemiJoinOf(s.L, n, Delta(graph.Src, graph.Src))
		right := SemiJoinOf(s.L, n, Delta(graph.Tgt, graph.Src))
		return UnionOf(left, right), true
	},
}

// pureExpr reports whether the expression contains no operator that
// allocates fresh ids (composition, aggregation): those make syntactically
// identical subtrees evaluate to graphs with different ids, so they must
// not be deduplicated or compared by printed form.
func pureExpr(e Expr) bool {
	switch v := e.(type) {
	case BaseExpr, ConstExpr:
		return true
	case NodeSelectExpr:
		return pureExpr(v.In)
	case LinkSelectExpr:
		return pureExpr(v.In)
	case SetExpr:
		return pureExpr(v.L) && pureExpr(v.R)
	case SemiJoinExpr:
		return pureExpr(v.L) && pureExpr(v.R)
	default:
		return false
	}
}

// DefaultRules are the always-safe rewrites.
var DefaultRules = []Rule{FuseNodeSelections, FuseLinkSelections, IdempotentUnion}

// Rewrite applies the rules bottom-up repeatedly until a fixed point (or a
// generous iteration cap, preventing pathological rule sets from looping).
// It returns the rewritten tree and the names of the rules that fired.
func Rewrite(e Expr, rules []Rule) (Expr, []string) {
	var fired []string
	cur := e
	for iter := 0; iter < 32; iter++ {
		next, changed := rewriteOnce(cur, rules, &fired)
		cur = next
		if !changed {
			break
		}
	}
	return cur, fired
}

func rewriteOnce(e Expr, rules []Rule, fired *[]string) (Expr, bool) {
	changed := false
	// Rewrite children first.
	switch v := e.(type) {
	case NodeSelectExpr:
		in, c := rewriteOnce(v.In, rules, fired)
		changed = changed || c
		e = NodeSelectExpr{In: in, C: v.C, Scorer: v.Scorer}
	case LinkSelectExpr:
		in, c := rewriteOnce(v.In, rules, fired)
		changed = changed || c
		e = LinkSelectExpr{In: in, C: v.C, Scorer: v.Scorer}
	case SetExpr:
		l, cl := rewriteOnce(v.L, rules, fired)
		r, cr := rewriteOnce(v.R, rules, fired)
		changed = changed || cl || cr
		e = SetExpr{Kind: v.Kind, L: l, R: r}
	case ComposeExpr:
		l, cl := rewriteOnce(v.L, rules, fired)
		r, cr := rewriteOnce(v.R, rules, fired)
		changed = changed || cl || cr
		e = ComposeExpr{L: l, R: r, D: v.D, F: v.F}
	case SemiJoinExpr:
		l, cl := rewriteOnce(v.L, rules, fired)
		r, cr := rewriteOnce(v.R, rules, fired)
		changed = changed || cl || cr
		e = SemiJoinExpr{L: l, R: r, D: v.D}
	case NodeAggExpr:
		in, c := rewriteOnce(v.In, rules, fired)
		changed = changed || c
		e = NodeAggExpr{In: in, C: v.C, D: v.D, Att: v.Att, A: v.A}
	case LinkAggExpr:
		in, c := rewriteOnce(v.In, rules, fired)
		changed = changed || c
		e = LinkAggExpr{In: in, C: v.C, Att: v.Att, A: v.A, Carry: v.Carry}
	case PatternAggExpr:
		in, c := rewriteOnce(v.In, rules, fired)
		changed = changed || c
		e = PatternAggExpr{In: in, P: v.P, Att: v.Att, A: v.A}
	}
	// Then the node itself.
	for _, r := range rules {
		if next, ok := r.Apply(e); ok {
			*fired = append(*fired, r.Name)
			e = next
			changed = true
		}
	}
	return e, changed
}

// Explain renders a plan with one operator per line, indented by depth.
func Explain(e Expr) string {
	var sb strings.Builder
	explain(e, 0, &sb)
	return sb.String()
}

func explain(e Expr, depth int, sb *strings.Builder) {
	indent := strings.Repeat("  ", depth)
	switch v := e.(type) {
	case BaseExpr:
		sb.WriteString(indent + "base " + v.Name + "\n")
	case ConstExpr:
		sb.WriteString(indent + "lit " + v.G.String() + "\n")
	case NodeSelectExpr:
		sb.WriteString(indent + "σN " + v.C.String() + "\n")
		explain(v.In, depth+1, sb)
	case LinkSelectExpr:
		sb.WriteString(indent + "σL " + v.C.String() + "\n")
		explain(v.In, depth+1, sb)
	case SetExpr:
		sb.WriteString(indent + v.Kind.String() + "\n")
		explain(v.L, depth+1, sb)
		explain(v.R, depth+1, sb)
	case ComposeExpr:
		sb.WriteString(indent + "compose " + v.D.String() + "\n")
		explain(v.L, depth+1, sb)
		explain(v.R, depth+1, sb)
	case SemiJoinExpr:
		sb.WriteString(indent + "semijoin " + v.D.String() + "\n")
		explain(v.L, depth+1, sb)
		explain(v.R, depth+1, sb)
	case NodeAggExpr:
		sb.WriteString(indent + "γN " + v.C.String() + " " + v.D.String() + " → " + v.Att + "\n")
		explain(v.In, depth+1, sb)
	case LinkAggExpr:
		sb.WriteString(indent + "γL " + v.C.String() + " → " + v.Att + "\n")
		explain(v.In, depth+1, sb)
	case PatternAggExpr:
		sb.WriteString(indent + "γL pattern " + v.P.String() + " → " + v.Att + "\n")
		explain(v.In, depth+1, sb)
	default:
		sb.WriteString(indent + e.String() + "\n")
	}
}
