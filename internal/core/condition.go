// Package core implements SocialScope's logical algebra for manipulating
// social content graphs (Section 5 of the paper) — the paper's primary
// contribution. Every operator takes social content graphs as input and
// produces a social content graph:
//
//   - unary selections σN⟨C,S⟩ and σL⟨C,S⟩ (Definitions 1-2)
//   - set-theoretic ∪, ∩, node-driven minus \ (Definition 3) and
//     link-driven minus \· (Definition 4)
//   - composition ⟨δ,F⟩ and semi-join ⋉δ (Definitions 5-6)
//   - node and link aggregation γN, γL with the SAF and NAF aggregation
//     function classes (Definitions 7-10)
//   - graph-pattern aggregation (Figure 2)
//
// Operators never mutate their inputs: they share unmodified elements and
// clone elements before attaching scores or aggregation results. The package
// also provides an expression tree over the operators with a rule-based
// rewriter (including the Lemma 1 expansion of \· into \ and ⋉).
package core

import (
	"fmt"
	"strings"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// Op is a comparison operator usable in a structural condition. Eq uses the
// paper's superset satisfaction rule for multi-valued attributes; the
// ordered operators compare numerically (first value) and fail on
// non-numeric data.
type Op uint8

const (
	Eq Op = iota // value set is a superset of the required values
	Ne           // negation of Eq
	Gt           // numeric >
	Ge           // numeric >=
	Lt           // numeric <
	Le           // numeric <=
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Lt:
		return "<"
	case Le:
		return "<="
	}
	return "?"
}

// StructCond is one structural predicate over a node's or link's attributes.
// The reserved attribute names "type" and "id" address the type set and the
// element id respectively, matching the paper's usage (type='city',
// id=101, id≠101, sim>0.5, rating>=0.5).
type StructCond struct {
	Attr   string
	Op     Op
	Values []string
}

// Cond builds an equality structural condition.
func Cond(attr string, values ...string) StructCond {
	return StructCond{Attr: attr, Op: Eq, Values: values}
}

// CondOp builds a structural condition with an explicit operator.
func CondOp(attr string, op Op, values ...string) StructCond {
	return StructCond{Attr: attr, Op: op, Values: values}
}

func (sc StructCond) String() string {
	return fmt.Sprintf("%s%s%s", sc.Attr, sc.Op, strings.Join(sc.Values, ","))
}

// element abstracts the attribute surface shared by nodes and links so one
// satisfaction routine serves both selections.
type element interface {
	TypeSuperset([]string) bool
	Text() string
}

// satisfies evaluates one structural condition against an element's id,
// types and attributes.
func (sc StructCond) satisfies(id int64, types []string, attrs graph.Attrs) bool {
	switch sc.Attr {
	case "id":
		return sc.compareID(id)
	case "type":
		return sc.compareTypes(types)
	default:
		return sc.compareAttr(attrs)
	}
}

func (sc StructCond) compareID(id int64) bool {
	if len(sc.Values) == 0 {
		return sc.Op != Ne
	}
	match := false
	for _, v := range sc.Values {
		if v == fmt.Sprintf("%d", id) {
			match = true
			break
		}
	}
	switch sc.Op {
	case Eq:
		return match
	case Ne:
		return !match
	default:
		// Ordered comparison against the first value.
		var want int64
		if _, err := fmt.Sscanf(sc.Values[0], "%d", &want); err != nil {
			return false
		}
		return compareOrdered(sc.Op, float64(id), float64(want))
	}
}

func (sc StructCond) compareTypes(types []string) bool {
	superset := true
	for _, w := range sc.Values {
		found := false
		for _, t := range types {
			if t == w {
				found = true
				break
			}
		}
		if !found {
			superset = false
			break
		}
	}
	if sc.Op == Ne {
		return !superset
	}
	return superset // ordered ops are meaningless on types; treat as Eq
}

func (sc StructCond) compareAttr(attrs graph.Attrs) bool {
	switch sc.Op {
	case Eq:
		return attrs.Superset(sc.Attr, sc.Values)
	case Ne:
		return !attrs.Superset(sc.Attr, sc.Values)
	default:
		have, ok := attrs.Float(sc.Attr)
		if !ok || len(sc.Values) == 0 {
			return false
		}
		var want float64
		if _, err := fmt.Sscanf(sc.Values[0], "%g", &want); err != nil {
			return false
		}
		return compareOrdered(sc.Op, have, want)
	}
}

func compareOrdered(op Op, have, want float64) bool {
	switch op {
	case Gt:
		return have > want
	case Ge:
		return have >= want
	case Lt:
		return have < want
	case Le:
		return have <= want
	}
	return false
}

// Condition is the paper's C parameter: a list of structural conditions
// (interpreted as a Boolean conjunction) plus a set of keywords used to
// compute semantic relevance. When keywords are present, an element
// satisfies C only if its score is positive — content conditions scope the
// selection as well as score it (Example 4 uses C3 = {type='destination',
// 'near Denver'} as a filter).
type Condition struct {
	Structural []StructCond
	Keywords   []string
}

// NewCondition builds a condition from structural predicates.
func NewCondition(structural ...StructCond) Condition {
	return Condition{Structural: structural}
}

// WithKeywords returns a copy of the condition with the given keyword
// string tokenized and attached.
func (c Condition) WithKeywords(keywords string) Condition {
	c.Keywords = scoring.Tokenize(keywords)
	return c
}

// IsEmpty reports whether the condition constrains nothing (an empty query,
// which the paper allows: "when a query is empty, only social relevance is
// accounted for").
func (c Condition) IsEmpty() bool {
	return len(c.Structural) == 0 && len(c.Keywords) == 0
}

// String renders the condition in the paper's {cond, cond, 'keywords'} form.
func (c Condition) String() string {
	parts := make([]string, 0, len(c.Structural)+1)
	for _, sc := range c.Structural {
		parts = append(parts, sc.String())
	}
	if len(c.Keywords) > 0 {
		parts = append(parts, "'"+strings.Join(c.Keywords, " ")+"'")
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SatisfiedByNode evaluates the structural part of the condition on a node.
func (c Condition) SatisfiedByNode(n *graph.Node) bool {
	for _, sc := range c.Structural {
		if !sc.satisfies(int64(n.ID), n.Types, n.Attrs) {
			return false
		}
	}
	return true
}

// SatisfiedByLink evaluates the structural part of the condition on a link.
func (c Condition) SatisfiedByLink(l *graph.Link) bool {
	for _, sc := range c.Structural {
		if !sc.satisfies(int64(l.ID), l.Types, l.Attrs) {
			return false
		}
	}
	return true
}

// Scorer is the paper's optional S parameter: it maps an element's
// searchable text and the condition's keywords to a relevance score.
type Scorer func(keywords []string, text string) float64

// DefaultScorer is used when S is omitted but keywords are present
// (Section 5.1: "If no scoring function is specified, but C includes
// keywords, a default scoring function is used").
var DefaultScorer Scorer = scoring.DefaultScorer
