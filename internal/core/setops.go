package core

import "socialscope/internal/graph"

// Union implements G1 ∪ G2 (Definition 3): the node and link unions, with
// nodes and links sharing an id consolidated (types, attributes and scores
// merged). Inputs must originate from the same site id space; a link id
// present in both graphs with different endpoints indicates corrupted
// inputs and is reported as an error.
func Union(g1, g2 *graph.Graph) (*graph.Graph, error) {
	out := graph.New()
	for _, n := range g1.Nodes() {
		out.PutNode(n.Clone())
	}
	for _, n := range g2.Nodes() {
		out.PutNode(n.Clone())
	}
	for _, l := range g1.Links() {
		if err := out.PutLink(l.Clone()); err != nil {
			return nil, err
		}
	}
	for _, l := range g2.Links() {
		if err := out.PutLink(l.Clone()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Intersect implements G1 ∩ G2 (Definition 3): nodes present in both (by
// id, consolidated) and links present in both. Every surviving link's
// endpoints necessarily survive, because each input graph is well formed.
func Intersect(g1, g2 *graph.Graph) (*graph.Graph, error) {
	out := graph.New()
	for _, n := range g1.Nodes() {
		if other := g2.Node(n.ID); other != nil {
			merged := n.Clone()
			merged.Merge(other)
			out.PutNode(merged)
		}
	}
	for _, l := range g1.Links() {
		other := g2.Link(l.ID)
		if other == nil {
			continue
		}
		if other.Src != l.Src || other.Tgt != l.Tgt {
			return nil, graph.ErrEndpointChange
		}
		merged := l.Clone()
		merged.Merge(other)
		if err := out.PutLink(merged); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Minus implements the node-driven minus G1 \ G2 (Definition 3 with the
// Remarks' reading): the subgraph of G1 induced by the nodes of G1 that are
// not present in G2. All surviving links have both endpoints outside G2 and
// are therefore automatically absent from G2.
func Minus(g1, g2 *graph.Graph) *graph.Graph {
	keep := make(map[graph.NodeID]struct{})
	for _, n := range g1.Nodes() {
		if !g2.HasNode(n.ID) {
			keep[n.ID] = struct{}{}
		}
	}
	return g1.InducedByNodes(keep).ShallowClone()
}

// LinkMinus implements the link-driven minus G1 \· G2 (Definition 4):
// links(G1) minus links(G2) by id, with nodes precisely those induced by
// the surviving links. In the paper's example, for G1 = {(a,b),(a,c),(b,c)}
// and G2 = {(a,b)}, LinkMinus keeps all three nodes and links (a,c),(b,c),
// whereas Minus keeps only node c.
func LinkMinus(g1, g2 *graph.Graph) *graph.Graph {
	keep := make(map[graph.LinkID]struct{})
	for _, l := range g1.Links() {
		if !g2.HasLink(l.ID) {
			keep[l.ID] = struct{}{}
		}
	}
	return g1.InducedByLinks(keep).ShallowClone()
}

// LinkMinusViaLemma1 computes G1 \· G2 using only \, σN and ⋉, following
// Lemma 1. Writing N = σN⟨∅⟩(G1 \ G2) for the null graph of G1-only nodes:
//
//	G1 \· G2  =  (G1 ⋉(src,src) N) ∪ (G1 ⋉(tgt,src) N)
//
// The identity holds whenever G2 is link-closed with respect to G1: every
// G1 link whose endpoints both appear in G2 is itself in G2. That is the
// situation the paper's operators produce (G2 a selection or induced
// subgraph of the same base); the package tests document a counterexample
// when the precondition fails. The paper omits the lemma's construction —
// this is the reconstruction our rewriter uses.
func LinkMinusViaLemma1(g1, g2 *graph.Graph) (*graph.Graph, error) {
	n := NodeSelect(Minus(g1, g2), Condition{}, nil)
	left := SemiJoin(g1, n, Delta(graph.Src, graph.Src))
	right := SemiJoin(g1, n, Delta(graph.Tgt, graph.Src))
	return Union(left, right)
}

// LinkClosed reports whether g2 is link-closed with respect to g1: every g1
// link with both endpoints present in g2 is itself present in g2. This is
// the precondition under which LinkMinusViaLemma1 agrees with LinkMinus.
func LinkClosed(g1, g2 *graph.Graph) bool {
	for _, l := range g1.Links() {
		if g2.HasNode(l.Src) && g2.HasNode(l.Tgt) && !g2.HasLink(l.ID) {
			return false
		}
	}
	return true
}
