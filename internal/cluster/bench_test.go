package cluster

import "testing"

func BenchmarkBuild(b *testing.B) {
	g := randomUserGraph(42)
	for _, s := range []Strategy{PerUser, NetworkBased, BehaviorBased, Hybrid, Global} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, s, 0.4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
