// Package cluster implements the user clustering strategies of Section 6.2:
// network-based (Definition 11), behavior-based (Definition 12) and hybrid
// (Definition 13). Clustering trades index space for query-time work in the
// activity-driven indexes of internal/index: one inverted list per cluster
// instead of one per user, with score upper bounds per Equation 1.
//
// The definitions specify pairwise predicates; materializing them into a
// partition ("each user falls into a single cluster") uses leader
// clustering: users are scanned in id order, joining the first cluster
// whose leader satisfies the predicate, else founding a new cluster. Leader
// clustering is deterministic, single-pass, and the standard way [5]'s
// strategies are realized.
package cluster

import (
	"fmt"

	"socialscope/internal/analyzer"
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// Strategy selects the clustering predicate.
type Strategy uint8

const (
	// PerUser puts every user in a singleton cluster (the straightforward
	// one-inverted-list-per-(tag,user) baseline of Section 6.2).
	PerUser Strategy = iota
	// NetworkBased clusters users whose networks overlap: Definition 11.
	NetworkBased
	// BehaviorBased clusters users whose tagged items overlap: Definition 12.
	BehaviorBased
	// Hybrid clusters users whose network members tag similarly: Definition 13.
	Hybrid
	// Global puts every user in one cluster (the network-oblivious
	// baseline; equivalent to classic IR inverted lists).
	Global
)

func (s Strategy) String() string {
	switch s {
	case PerUser:
		return "peruser"
	case NetworkBased:
		return "network"
	case BehaviorBased:
		return "behavior"
	case Hybrid:
		return "hybrid"
	case Global:
		return "global"
	}
	return "unknown"
}

// ParseStrategy maps a name back to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range []Strategy{PerUser, NetworkBased, BehaviorBased, Hybrid, Global} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown strategy %q", name)
}

// Cluster is one user group.
type Cluster struct {
	ID      int
	Leader  graph.NodeID
	Members []graph.NodeID
}

// Clustering is a partition of the users.
type Clustering struct {
	Strategy Strategy
	Theta    float64
	Clusters []Cluster
	byUser   map[graph.NodeID]int
}

// Of returns the cluster id of a user (-1 when the user is unknown).
func (c *Clustering) Of(u graph.NodeID) int {
	if id, ok := c.byUser[u]; ok {
		return id
	}
	return -1
}

// Members returns the member list of a cluster id (nil when out of range).
func (c *Clustering) Members(id int) []graph.NodeID {
	if id < 0 || id >= len(c.Clusters) {
		return nil
	}
	return c.Clusters[id].Members
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Clusters) }

// WithUser returns a clustering extended with a user who arrived after the
// partition was built, leaving the receiver untouched (copy-on-write, so
// index snapshots sharing the old partition stay consistent). Placement is
// the cheapest sound policy per strategy: Global joins the one cluster,
// every other strategy founds a singleton — exact for PerUser, and for the
// leader-based strategies the conservative choice until the Data Manager's
// next re-clustering (Section 6.2 separates index maintenance from cluster
// maintenance). Known users return the receiver unchanged.
func (c *Clustering) WithUser(u graph.NodeID) *Clustering {
	if _, ok := c.byUser[u]; ok {
		return c
	}
	n := &Clustering{Strategy: c.Strategy, Theta: c.Theta, byUser: make(map[graph.NodeID]int, len(c.byUser)+1)}
	for k, v := range c.byUser {
		n.byUser[k] = v
	}
	n.Clusters = append([]Cluster(nil), c.Clusters...)
	if c.Strategy == Global && len(n.Clusters) > 0 {
		cl := &n.Clusters[0]
		cl.Members = append(append([]graph.NodeID(nil), cl.Members...), u)
		n.byUser[u] = 0
		return n
	}
	id := len(n.Clusters)
	n.Clusters = append(n.Clusters, Cluster{ID: id, Leader: u, Members: []graph.NodeID{u}})
	n.byUser[u] = id
	return n
}

// Stats summarizes the partition.
type Stats struct {
	Strategy   Strategy
	Theta      float64
	Users      int
	Clusters   int
	Singletons int
	MaxSize    int
	AvgSize    float64
}

// Stats computes summary statistics of the clustering.
func (c *Clustering) Stats() Stats {
	s := Stats{Strategy: c.Strategy, Theta: c.Theta, Clusters: len(c.Clusters)}
	for _, cl := range c.Clusters {
		n := len(cl.Members)
		s.Users += n
		if n == 1 {
			s.Singletons++
		}
		if n > s.MaxSize {
			s.MaxSize = n
		}
	}
	if s.Clusters > 0 {
		s.AvgSize = float64(s.Users) / float64(s.Clusters)
	}
	return s
}

// Build partitions the users of g under the given strategy and threshold θ.
// Profiles are extracted once (network(u) from connect links, items(u) from
// act links). θ is ignored by PerUser and Global.
func Build(g *graph.Graph, strategy Strategy, theta float64) (*Clustering, error) {
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("cluster: theta %g outside [0,1]", theta)
	}
	profiles := analyzer.Profiles(g)
	users := make([]graph.NodeID, 0, len(profiles))
	for _, n := range g.NodesOfType(graph.TypeUser) {
		users = append(users, n.ID)
	}
	return buildFromProfiles(users, profiles, strategy, theta)
}

// BuildFromProfiles clusters an explicit profile set; the index layer uses
// it to avoid re-extracting profiles it already holds.
func BuildFromProfiles(users []graph.NodeID, profiles map[graph.NodeID]*analyzer.UserProfile,
	strategy Strategy, theta float64) (*Clustering, error) {
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("cluster: theta %g outside [0,1]", theta)
	}
	return buildFromProfiles(users, profiles, strategy, theta)
}

func buildFromProfiles(users []graph.NodeID, profiles map[graph.NodeID]*analyzer.UserProfile,
	strategy Strategy, theta float64) (*Clustering, error) {
	c := &Clustering{Strategy: strategy, Theta: theta, byUser: make(map[graph.NodeID]int)}
	switch strategy {
	case Global:
		if len(users) > 0 {
			cl := Cluster{ID: 0, Leader: users[0], Members: append([]graph.NodeID(nil), users...)}
			c.Clusters = append(c.Clusters, cl)
			for _, u := range users {
				c.byUser[u] = 0
			}
		}
		return c, nil
	case PerUser:
		for i, u := range users {
			c.Clusters = append(c.Clusters, Cluster{ID: i, Leader: u, Members: []graph.NodeID{u}})
			c.byUser[u] = i
		}
		return c, nil
	case NetworkBased, BehaviorBased, Hybrid:
		pred, err := predicate(strategy, profiles, theta)
		if err != nil {
			return nil, err
		}
		for _, u := range users {
			placed := false
			for i := range c.Clusters {
				if pred(c.Clusters[i].Leader, u) {
					c.Clusters[i].Members = append(c.Clusters[i].Members, u)
					c.byUser[u] = i
					placed = true
					break
				}
			}
			if !placed {
				id := len(c.Clusters)
				c.Clusters = append(c.Clusters, Cluster{ID: id, Leader: u, Members: []graph.NodeID{u}})
				c.byUser[u] = id
			}
		}
		return c, nil
	}
	return nil, fmt.Errorf("cluster: unknown strategy %d", strategy)
}

func predicate(strategy Strategy, profiles map[graph.NodeID]*analyzer.UserProfile,
	theta float64) (func(a, b graph.NodeID) bool, error) {
	prof := func(u graph.NodeID) *analyzer.UserProfile {
		if p := profiles[u]; p != nil {
			return p
		}
		return &analyzer.UserProfile{
			ID:      u,
			Network: scoring.NewSet[graph.NodeID](),
			Items:   scoring.NewSet[graph.NodeID](),
		}
	}
	switch strategy {
	case NetworkBased:
		// |network(u1) ∩ network(u2)| / |network(u1) ∪ network(u2)| ≥ θ.
		return func(a, b graph.NodeID) bool {
			return scoring.Jaccard(prof(a).Network, prof(b).Network) >= theta
		}, nil
	case BehaviorBased:
		// |items(u1) ∩ items(u2)| / |items(u1) ∪ items(u2)| ≥ θ.
		return func(a, b graph.NodeID) bool {
			return scoring.Jaccard(prof(a).Items, prof(b).Items) >= theta
		}, nil
	case Hybrid:
		// Definition 13: items(v1)~items(v2) ≥ θ for ALL v1 ∈ network(u1),
		// v2 ∈ network(u2). Vacuously false when either network is empty
		// (an empty-network user clusters with nobody but itself).
		return func(a, b graph.NodeID) bool {
			na, nb := prof(a).Network, prof(b).Network
			if na.Len() == 0 || nb.Len() == 0 {
				return false
			}
			for v1 := range na {
				for v2 := range nb {
					if scoring.Jaccard(prof(v1).Items, prof(v2).Items) < theta {
						return false
					}
				}
			}
			return true
		}, nil
	}
	return nil, fmt.Errorf("cluster: no predicate for strategy %d", strategy)
}
