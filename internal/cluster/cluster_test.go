package cluster

import (
	"testing"
	"testing/quick"

	"socialscope/internal/graph"
)

// clusterFixture: users 1..4; 1 and 2 share their whole network and items;
// 3 overlaps partially; 4 is isolated.
func clusterFixture(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	var users [5]graph.NodeID
	for i := 1; i <= 4; i++ {
		users[i] = b.Node([]string{graph.TypeUser}, "name", "u")
	}
	hub1 := b.Node([]string{graph.TypeUser})
	hub2 := b.Node([]string{graph.TypeUser})
	items := make([]graph.NodeID, 6)
	for i := range items {
		items[i] = b.Node([]string{graph.TypeItem})
	}
	// Networks: u1,u2 both connect to hub1 and hub2 (identical networks).
	// u3 connects to hub1 only; u4 to nobody.
	for _, u := range []graph.NodeID{users[1], users[2]} {
		b.Link(u, hub1, []string{graph.TypeConnect, graph.SubtypeFriend})
		b.Link(u, hub2, []string{graph.TypeConnect, graph.SubtypeFriend})
	}
	b.Link(users[3], hub1, []string{graph.TypeConnect, graph.SubtypeFriend})
	// Items: u1,u2 tag items 0,1; u3 tags 1,2; u4 tags nothing.
	for _, u := range []graph.NodeID{users[1], users[2]} {
		b.Link(u, items[0], []string{graph.TypeAct, graph.SubtypeTag}, "tags", "x")
		b.Link(u, items[1], []string{graph.TypeAct, graph.SubtypeTag}, "tags", "x")
	}
	b.Link(users[3], items[1], []string{graph.TypeAct, graph.SubtypeTag}, "tags", "x")
	b.Link(users[3], items[2], []string{graph.TypeAct, graph.SubtypeTag}, "tags", "x")
	// Hubs tag identically so hybrid can group via them.
	b.Link(hub1, items[4], []string{graph.TypeAct, graph.SubtypeTag}, "tags", "y")
	b.Link(hub2, items[4], []string{graph.TypeAct, graph.SubtypeTag}, "tags", "y")
	return b.Graph()
}

func TestPerUserAndGlobal(t *testing.T) {
	g := clusterFixture(t)
	users := g.CountNodes(graph.TypeUser)

	per, err := Build(g, PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	if per.NumClusters() != users {
		t.Errorf("peruser clusters = %d, want %d", per.NumClusters(), users)
	}
	st := per.Stats()
	if st.Singletons != users || st.MaxSize != 1 {
		t.Errorf("peruser stats = %+v", st)
	}

	glob, err := Build(g, Global, 0)
	if err != nil {
		t.Fatal(err)
	}
	if glob.NumClusters() != 1 || len(glob.Members(0)) != users {
		t.Errorf("global clustering = %+v", glob.Stats())
	}
}

func TestNetworkBased(t *testing.T) {
	g := clusterFixture(t)
	c, err := Build(g, NetworkBased, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// u1 (id 1) and u2 (id 2) have identical networks → same cluster.
	if c.Of(1) != c.Of(2) {
		t.Error("identical networks should cluster together")
	}
	// u3's network Jaccard with u1 is 1/2 < 0.9 → different cluster.
	if c.Of(3) == c.Of(1) {
		t.Error("half-overlapping network clustered at θ=0.9")
	}
	// Lower θ merges u3 into u1's cluster.
	c2, err := Build(g, NetworkBased, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Of(3) != c2.Of(1) {
		t.Error("θ=0.5 should merge u3 with u1")
	}
}

func TestBehaviorBased(t *testing.T) {
	g := clusterFixture(t)
	c, err := Build(g, BehaviorBased, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Of(1) != c.Of(2) {
		t.Error("identical item sets should cluster together")
	}
	if c.Of(3) == c.Of(1) {
		t.Error("items Jaccard 1/3 clustered at θ=0.9")
	}
	// θ=1/3 merges u3 (items {1,2} vs {0,1}: J = 1/3).
	c2, err := Build(g, BehaviorBased, 1.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Of(3) != c2.Of(1) {
		t.Error("θ=1/3 should merge u3 with u1")
	}
}

func TestHybrid(t *testing.T) {
	g := clusterFixture(t)
	// hub1 and hub2 tag identically (J=1), so all pairs of u1/u2's network
	// members tag with similarity 1 → u1,u2 hybrid-cluster at any θ.
	c, err := Build(g, Hybrid, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Of(1) != c.Of(2) {
		t.Error("hybrid should cluster u1,u2 via identically-tagging networks")
	}
	// u4 has an empty network: stays a singleton.
	if len(c.Members(c.Of(4))) != 1 {
		t.Error("empty-network user should be a singleton under hybrid")
	}
}

func TestBuildErrors(t *testing.T) {
	g := clusterFixture(t)
	if _, err := Build(g, NetworkBased, -0.1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := Build(g, NetworkBased, 1.1); err == nil {
		t.Error("theta > 1 accepted")
	}
	if _, err := Build(g, Strategy(99), 0.5); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{PerUser, NetworkBased, BehaviorBased, Hybrid, Global} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy String wrong")
	}
}

func TestOfUnknownUser(t *testing.T) {
	g := clusterFixture(t)
	c, err := Build(g, PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Of(9999) != -1 {
		t.Error("unknown user should map to -1")
	}
	if c.Members(-1) != nil || c.Members(999) != nil {
		t.Error("out-of-range Members should be nil")
	}
}

// Property: every strategy yields a partition — each user in exactly one
// cluster, cluster sizes sum to the user count, and θ monotonicity holds
// for network clustering (higher θ never yields fewer clusters).
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomUserGraph(seed)
		users := g.CountNodes(graph.TypeUser)
		var prevClusters int
		for i, theta := range []float64{0.2, 0.5, 0.8} {
			for _, s := range []Strategy{PerUser, NetworkBased, BehaviorBased, Hybrid, Global} {
				c, err := Build(g, s, theta)
				if err != nil {
					return false
				}
				seen := map[graph.NodeID]int{}
				total := 0
				for _, cl := range c.Clusters {
					total += len(cl.Members)
					for _, m := range cl.Members {
						seen[m]++
						if c.Of(m) != cl.ID {
							return false
						}
					}
				}
				if total != users || len(seen) != users {
					return false
				}
				for _, n := range seen {
					if n != 1 {
						return false
					}
				}
			}
			c, _ := Build(g, NetworkBased, theta)
			if i > 0 && c.NumClusters() < prevClusters {
				return false // raising θ cannot merge clusters
			}
			prevClusters = c.NumClusters()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func randomUserGraph(seed int64) *graph.Graph {
	rng := newRand(seed)
	b := graph.NewBuilder()
	const nUsers, nItems = 12, 8
	users := make([]graph.NodeID, nUsers)
	for i := range users {
		users[i] = b.Node([]string{graph.TypeUser})
	}
	items := make([]graph.NodeID, nItems)
	for i := range items {
		items[i] = b.Node([]string{graph.TypeItem})
	}
	for _, u := range users {
		for _, v := range users {
			if u != v && rng.Intn(4) == 0 {
				b.Link(u, v, []string{graph.TypeConnect, graph.SubtypeFriend})
			}
		}
		for _, it := range items {
			if rng.Intn(3) == 0 {
				b.Link(u, it, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "t")
			}
		}
	}
	return b.Graph()
}
