package workload

import (
	"fmt"
	"math/rand"

	"socialscope/internal/graph"
)

// Cities is the gazetteer shared by the corpus generator, the query
// generator and the query classifier — location detection must agree
// across layers, as it did for the paper's analysts.
var Cities = []string{
	"denver", "barcelona", "paris", "tokyo", "sydney", "boston",
	"philadelphia", "san francisco", "new york", "london", "rome",
	"amsterdam", "lisbon", "prague", "vienna",
}

// Categories is the categorical vocabulary ("hotel", "family",
// "historic", ... in the paper's terms).
var Categories = []string{
	"hotel", "family", "historic", "restaurant", "museum", "beach",
	"nightlife", "shopping", "outdoors", "baseball",
}

// GeneralTerms are the paper's general-class markers ("things to do",
// "attraction", ...).
var GeneralTerms = []string{
	"things to do", "attractions", "vacation", "trip", "sightseeing",
	"what to see", "guide",
}

// SpecificDestinations are named destinations ("Disneyland", "Yosemite
// Park"); each belongs to a city so visits nest geographically.
var SpecificDestinations = []string{
	"disneyland", "yosemite park", "coors field", "sagrada familia",
	"eiffel tower", "louvre", "golden gate bridge", "statue of liberty",
	"colosseum", "big ben", "fisherman's wharf", "parc ciutadella",
}

// TravelConfig sizes a synthetic Y!Travel-style corpus.
type TravelConfig struct {
	Users        int
	Destinations int
	Seed         int64
	// VisitsPerUser is the mean number of visit links per user (Zipf over
	// destination popularity).
	VisitsPerUser int
	// TagFraction of visits also produce tag links.
	TagFraction float64
	// SmallWorldK and Rewire shape the friendship graph.
	SmallWorldK int
	Rewire      float64
	// InterestBias, when positive, assigns every user an interest category
	// and redirects that fraction of their visits to destinations of the
	// category. It plants the recoverable social signal the fusion-quality
	// experiment measures (users' tastes predict what they and their
	// friends visit).
	InterestBias float64
}

func (c *TravelConfig) fill() error {
	if c.Users < 3 || c.Destinations < 1 {
		return fmt.Errorf("workload: travel corpus needs ≥3 users and ≥1 destination")
	}
	if c.VisitsPerUser <= 0 {
		c.VisitsPerUser = 6
	}
	if c.TagFraction <= 0 {
		c.TagFraction = 0.5
	}
	if c.SmallWorldK <= 0 {
		c.SmallWorldK = 4
	}
	if c.SmallWorldK >= c.Users {
		c.SmallWorldK = (c.Users - 1) / 2 * 2 // largest even K < Users
	}
	if c.Rewire <= 0 {
		c.Rewire = 0.1
	}
	return nil
}

// TravelCorpus is the generated site: the graph plus the id ranges the
// experiments address.
type TravelCorpus struct {
	Graph        *graph.Graph
	Users        []graph.NodeID
	Destinations []graph.NodeID
	// Interests maps each user to the planted interest category when the
	// corpus was generated with InterestBias > 0.
	Interests map[graph.NodeID]string
}

// Travel generates a travel social content site: a small-world friendship
// graph; destinations attached to cities with category keywords and
// ratings; Zipf-popular visit activities; tagging on a fraction of visits
// with category tags. Deterministic per seed.
func Travel(cfg TravelConfig) (*TravelCorpus, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	users, err := SmallWorld(b, SmallWorldConfig{
		Users: cfg.Users, K: cfg.SmallWorldK, Rewire: cfg.Rewire, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	dests := make([]graph.NodeID, cfg.Destinations)
	for i := range dests {
		city := Cities[rng.Intn(len(Cities))]
		cat := Categories[rng.Intn(len(Categories))]
		cat2 := Categories[rng.Intn(len(Categories))]
		name := fmt.Sprintf("dest-%d", i)
		if rng.Float64() < 0.2 && i < len(SpecificDestinations) {
			name = SpecificDestinations[i]
		}
		dests[i] = b.Node([]string{graph.TypeItem, "destination"},
			"name", name,
			"city", city,
			"keywords", fmt.Sprintf("%s %s %s attractions", city, cat, cat2),
			"category", cat,
			"rating", fmt.Sprintf("%.2f", 0.3+rng.Float64()*0.7),
		)
	}

	// Planted interests: per-user category plus the per-category
	// destination pools biased visits draw from.
	interests := make(map[graph.NodeID]string)
	byCategory := make(map[string][]graph.NodeID)
	if cfg.InterestBias > 0 {
		for _, d := range dests {
			cat := b.Peek().Node(d).Attrs.Get("category")
			byCategory[cat] = append(byCategory[cat], d)
		}
		// Interests are homophilous: contiguous ring blocks share a
		// category, so small-world friends mostly share interests — the
		// property that makes social relevance informative on real sites.
		for i, u := range users {
			cat := Categories[i*len(Categories)/len(users)]
			interests[u] = cat
			// Peek's documented use: mid-construction attribute writes by
			// the builder's owner, before any snapshot is published.
			b.Peek().Node(u).Attrs.Set("interests", cat) //sslint:ignore rcupublish builder-owned graph, unpublished
		}
	}

	// Zipf destination popularity: rank-skewed visit targets.
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(cfg.Destinations-1))
	for _, u := range users {
		visits := 1 + rng.Intn(cfg.VisitsPerUser*2)
		visited := make(map[graph.NodeID]struct{})
		for v := 0; v < visits; v++ {
			d := dests[int(zipf.Uint64())]
			if cfg.InterestBias > 0 && rng.Float64() < cfg.InterestBias {
				if pool := byCategory[interests[u]]; len(pool) > 0 {
					d = pool[rng.Intn(len(pool))]
				}
			}
			if _, dup := visited[d]; dup {
				continue
			}
			visited[d] = struct{}{}
			b.Link(u, d, []string{graph.TypeAct, graph.SubtypeVisit})
			if rng.Float64() < cfg.TagFraction {
				tag := Categories[rng.Intn(len(Categories))]
				b.Link(u, d, []string{graph.TypeAct, graph.SubtypeTag}, "tags", tag)
			}
			if rng.Float64() < 0.3 {
				b.Link(u, d, []string{graph.TypeAct, graph.SubtypeReview},
					"rating", fmt.Sprintf("%.1f", 0.2+rng.Float64()*0.8))
			}
		}
	}
	return &TravelCorpus{Graph: b.Graph(), Users: users, Destinations: dests, Interests: interests}, nil
}

// TaggingConfig sizes a del.icio.us-style corpus for the Section 6.2 index
// study.
type TaggingConfig struct {
	Users int
	Items int
	Tags  int
	Seed  int64
	// TagsPerUser is the mean number of tagging actions per user.
	TagsPerUser int
	// SmallWorldK and Rewire shape the friendship graph.
	SmallWorldK int
	Rewire      float64
}

func (c *TaggingConfig) fill() error {
	if c.Users < 3 || c.Items < 1 || c.Tags < 1 {
		return fmt.Errorf("workload: tagging corpus needs ≥3 users, ≥1 item, ≥1 tag")
	}
	if c.TagsPerUser <= 0 {
		c.TagsPerUser = 10
	}
	if c.SmallWorldK <= 0 {
		c.SmallWorldK = 6
	}
	if c.SmallWorldK >= c.Users {
		c.SmallWorldK = (c.Users - 1) / 2 * 2 // largest even K < Users
	}
	if c.Rewire <= 0 {
		c.Rewire = 0.15
	}
	return nil
}

// TaggingCorpus is the generated tagging site.
type TaggingCorpus struct {
	Graph *graph.Graph
	Users []graph.NodeID
	Items []graph.NodeID
	Tags  []string
}

// Tagging generates a collaborative tagging site: small-world users, Zipf
// item popularity and Zipf tag popularity (the Golder–Huberman shape).
func Tagging(cfg TaggingConfig) (*TaggingCorpus, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	users, err := SmallWorld(b, SmallWorldConfig{
		Users: cfg.Users, K: cfg.SmallWorldK, Rewire: cfg.Rewire, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	items := make([]graph.NodeID, cfg.Items)
	for i := range items {
		items[i] = b.Node([]string{graph.TypeItem, "url"}, "name", fmt.Sprintf("item-%d", i))
	}
	tags := make([]string, cfg.Tags)
	for i := range tags {
		tags[i] = fmt.Sprintf("tag%d", i)
	}
	itemZipf := rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.Items-1))
	var tagZipf *rand.Zipf
	if cfg.Tags > 1 {
		tagZipf = rand.NewZipf(rng, 1.1, 1.0, uint64(cfg.Tags-1))
	}
	pickTag := func() string {
		if tagZipf == nil {
			return tags[0]
		}
		return tags[int(tagZipf.Uint64())]
	}
	for _, u := range users {
		n := 1 + rng.Intn(cfg.TagsPerUser*2)
		for i := 0; i < n; i++ {
			item := items[int(itemZipf.Uint64())]
			b.Link(u, item, []string{graph.TypeAct, graph.SubtypeTag}, "tags", pickTag())
		}
	}
	return &TaggingCorpus{Graph: b.Graph(), Users: users, Items: items, Tags: tags}, nil
}
