package workload

import (
	"testing"

	"socialscope/internal/graph"
)

func BenchmarkTravelGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Travel(TravelConfig{Users: 100, Destinations: 50, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaggingGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Tagging(TaggingConfig{Users: 100, Items: 200, Tags: 15, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryLogGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := QueryLog(10000, PaperMixture(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSmallWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := graph.NewBuilder()
		if _, err := SmallWorld(bld, SmallWorldConfig{Users: 200, K: 6, Rewire: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
