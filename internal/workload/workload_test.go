package workload

import (
	"math"
	"testing"

	"socialscope/internal/graph"
)

func TestSmallWorld(t *testing.T) {
	b := graph.NewBuilder()
	users, err := SmallWorld(b, SmallWorldConfig{Users: 20, K: 4, Rewire: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	if len(users) != 20 || g.CountNodes(graph.TypeUser) != 20 {
		t.Fatalf("users = %d", len(users))
	}
	// Ring lattice with K=4 has ~2 links per node (dedup may drop rewired
	// duplicates).
	if links := g.NumLinks(); links < 30 || links > 40 {
		t.Errorf("links = %d, want ≈40", links)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Determinism.
	b2 := graph.NewBuilder()
	if _, err := SmallWorld(b2, SmallWorldConfig{Users: 20, K: 4, Rewire: 0.1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !b.Graph().Equal(b2.Graph()) {
		t.Error("same seed produced different graphs")
	}
}

func TestSmallWorldErrors(t *testing.T) {
	b := graph.NewBuilder()
	if _, err := SmallWorld(b, SmallWorldConfig{Users: 2}); err == nil {
		t.Error("too few users accepted")
	}
	if _, err := SmallWorld(b, SmallWorldConfig{Users: 5, K: 10}); err == nil {
		t.Error("K ≥ Users accepted")
	}
	if _, err := SmallWorld(b, SmallWorldConfig{Users: 5, K: 2, Rewire: 1.5}); err == nil {
		t.Error("invalid rewire accepted")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	b := graph.NewBuilder()
	users, err := PreferentialAttachment(b, 50, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	if len(users) != 50 {
		t.Fatalf("users = %d", len(users))
	}
	// Power-law shape: max degree well above the mean.
	stats := g.ComputeStats()
	maxDeg := 0
	for d := range g.DegreeHistogram() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 2*stats.AvgOutDegree {
		t.Errorf("max degree %d vs avg %.1f: no hub formed", maxDeg, stats.AvgOutDegree)
	}
	if _, err := PreferentialAttachment(b, 1, 1, 7); err == nil {
		t.Error("too few users accepted")
	}
}

func TestTravelCorpus(t *testing.T) {
	c, err := Travel(TravelConfig{Users: 30, Destinations: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	if g.CountNodes(graph.TypeUser) != 30 || g.CountNodes("destination") != 20 {
		t.Fatalf("corpus shape wrong: %v", g.ComputeStats())
	}
	if g.CountLinks(graph.SubtypeVisit) == 0 || g.CountLinks(graph.SubtypeTag) == 0 {
		t.Error("no activity generated")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Every destination has a city from the shared gazetteer.
	for _, d := range c.Destinations {
		city := g.Node(d).Attrs.Get("city")
		found := false
		for _, known := range Cities {
			if city == known {
				found = true
			}
		}
		if !found {
			t.Errorf("destination %d has unknown city %q", d, city)
		}
	}
	// Zipf skew: the most-visited destination gets far more than the mean.
	maxIn, total := 0, 0
	for _, d := range c.Destinations {
		in := g.InDegree(d)
		total += in
		if in > maxIn {
			maxIn = in
		}
	}
	mean := float64(total) / float64(len(c.Destinations))
	if float64(maxIn) < 2*mean {
		t.Errorf("no popularity skew: max %d vs mean %.1f", maxIn, mean)
	}
	if _, err := Travel(TravelConfig{Users: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTaggingCorpus(t *testing.T) {
	c, err := Tagging(TaggingConfig{Users: 25, Items: 40, Tags: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.CountLinks(graph.SubtypeTag) == 0 {
		t.Fatal("no tagging activity")
	}
	if len(c.Tags) != 8 {
		t.Errorf("tags = %v", c.Tags)
	}
	if err := c.Graph.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := Tagging(TaggingConfig{Users: 1}); err == nil {
		t.Error("invalid config accepted")
	}
	// Single-tag corpora avoid the Zipf generator's s>1 requirement.
	one, err := Tagging(TaggingConfig{Users: 5, Items: 5, Tags: 1, Seed: 3})
	if err != nil || one.Graph.CountLinks(graph.SubtypeTag) == 0 {
		t.Error("single-tag corpus failed")
	}
}

func TestQueryLogMixture(t *testing.T) {
	mix := PaperMixture()
	log, err := QueryLog(20000, mix, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[QueryClass]int{}
	locCount := 0
	for _, q := range log {
		counts[q.Class]++
		if q.HasLocation {
			locCount++
		}
		if q.Text == "" {
			t.Fatal("empty query generated")
		}
	}
	n := float64(len(log))
	wantClass := map[QueryClass]float64{
		General:        mix.GeneralWithLoc + mix.GeneralNoLoc,
		Categorical:    mix.CategoricalWithLoc + mix.CategoricalNoLoc,
		Specific:       mix.SpecificWithLoc,
		Unclassifiable: mix.Unclassifiable,
	}
	for class, want := range wantClass {
		got := float64(counts[class]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("class %v rate = %.4f, want ≈%.4f", class, got, want)
		}
	}
	wantLoc := mix.GeneralWithLoc + mix.CategoricalWithLoc + mix.SpecificWithLoc
	if got := float64(locCount) / n; math.Abs(got-wantLoc) > 0.02 {
		t.Errorf("location rate = %.4f, want ≈%.4f", got, wantLoc)
	}
}

func TestQueryLogDeterministic(t *testing.T) {
	a, err := QueryLog(100, PaperMixture(), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QueryLog(100, PaperMixture(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different logs")
		}
	}
}

func TestQueryLogErrors(t *testing.T) {
	if _, err := QueryLog(0, PaperMixture(), 1); err == nil {
		t.Error("n=0 accepted")
	}
	bad := PaperMixture()
	bad.GeneralWithLoc = 0.9
	if _, err := QueryLog(10, bad, 1); err == nil {
		t.Error("non-normalized mixture accepted")
	}
}

func TestQueryClassString(t *testing.T) {
	for _, c := range []QueryClass{General, Categorical, Specific, Unclassifiable} {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("class %d String broken", c)
		}
	}
	if QueryClass(9).String() != "unknown" {
		t.Error("unknown class String broken")
	}
}
