// Package workload generates the synthetic substrates the experiments run
// on, standing in for the paper's proprietary data (the 10M Yahoo! Travel
// query log, the Y!Travel corpus, del.icio.us-scale tagging): small-world
// social graphs (Watts–Strogatz, the paper's reference [29]), Zipf-skewed
// tagging behaviour (Golder–Huberman shape, reference [19]), a travel
// domain corpus, and a query log drawn from Table 1's published class
// mixture. All generators are deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"

	"socialscope/internal/graph"
)

// SmallWorldConfig parameterizes a Watts–Strogatz friendship graph.
type SmallWorldConfig struct {
	Users  int     // ring size
	K      int     // each user connects to K nearest ring neighbors (even, ≥2)
	Rewire float64 // rewiring probability β in [0,1]
	Seed   int64
}

// SmallWorld adds `Users` user nodes to the builder and wires them into a
// Watts–Strogatz small world: a ring lattice with K neighbors per node,
// each edge rewired with probability β. It returns the user node ids.
func SmallWorld(b *graph.Builder, cfg SmallWorldConfig) ([]graph.NodeID, error) {
	if cfg.Users < 3 {
		return nil, fmt.Errorf("workload: small world needs ≥3 users, got %d", cfg.Users)
	}
	if cfg.K < 2 {
		cfg.K = 2
	}
	if cfg.K%2 != 0 {
		cfg.K++
	}
	if cfg.K >= cfg.Users {
		return nil, fmt.Errorf("workload: K=%d must be < Users=%d", cfg.K, cfg.Users)
	}
	if cfg.Rewire < 0 || cfg.Rewire > 1 {
		return nil, fmt.Errorf("workload: rewire probability %g outside [0,1]", cfg.Rewire)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	users := make([]graph.NodeID, cfg.Users)
	for i := range users {
		users[i] = b.Node([]string{graph.TypeUser}, "name", fmt.Sprintf("user-%d", i))
	}
	type edge struct{ a, b int }
	seen := make(map[edge]struct{})
	addEdge := func(a, c int) {
		if a == c {
			return
		}
		if a > c {
			a, c = c, a
		}
		e := edge{a, c}
		if _, dup := seen[e]; dup {
			return
		}
		seen[e] = struct{}{}
		b.Link(users[a], users[c], []string{graph.TypeConnect, graph.SubtypeFriend})
	}
	n := cfg.Users
	for i := 0; i < n; i++ {
		for j := 1; j <= cfg.K/2; j++ {
			target := (i + j) % n
			if rng.Float64() < cfg.Rewire {
				// Rewire to a uniform random non-self node.
				target = rng.Intn(n)
				for target == i {
					target = rng.Intn(n)
				}
			}
			addEdge(i, target)
		}
	}
	return users, nil
}

// PreferentialAttachment adds `Users` user nodes wired by the
// Barabási–Albert process: each new node attaches to M existing nodes with
// probability proportional to degree, yielding the power-law connectivity
// observed on real social content sites.
func PreferentialAttachment(b *graph.Builder, users, m int, seed int64) ([]graph.NodeID, error) {
	if users < 2 || m < 1 {
		return nil, fmt.Errorf("workload: preferential attachment needs users ≥ 2, m ≥ 1")
	}
	if m >= users {
		m = users - 1
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]graph.NodeID, users)
	for i := range ids {
		ids[i] = b.Node([]string{graph.TypeUser}, "name", fmt.Sprintf("user-%d", i))
	}
	// Repeated-node list: picking uniformly from it is degree-proportional.
	var pool []int
	b.Link(ids[0], ids[1], []string{graph.TypeConnect, graph.SubtypeFriend})
	pool = append(pool, 0, 1)
	for i := 2; i < users; i++ {
		attach := make(map[int]struct{})
		limit := m
		if i < m {
			limit = i
		}
		for len(attach) < limit {
			var pick int
			if len(pool) == 0 || rng.Float64() < 0.1 {
				pick = rng.Intn(i)
			} else {
				pick = pool[rng.Intn(len(pool))]
			}
			if pick != i {
				attach[pick] = struct{}{}
			}
		}
		for p := range attach {
			b.Link(ids[i], ids[p], []string{graph.TypeConnect, graph.SubtypeFriend})
			pool = append(pool, i, p)
		}
	}
	return ids, nil
}
