package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// QueryClass is the Table 1 taxonomy.
type QueryClass uint8

const (
	// General queries carry terms like "things to do" or just a location.
	General QueryClass = iota
	// Categorical queries carry category terms like "hotel" or "family".
	Categorical
	// Specific queries name a particular destination.
	Specific
	// Unclassifiable queries defeat the taxonomy (~10% in the paper).
	Unclassifiable
)

func (c QueryClass) String() string {
	switch c {
	case General:
		return "general"
	case Categorical:
		return "categorical"
	case Specific:
		return "specific"
	case Unclassifiable:
		return "unclassifiable"
	}
	return "unknown"
}

// LabeledQuery is one generated query with its ground truth.
type LabeledQuery struct {
	Text        string
	Class       QueryClass
	HasLocation bool
}

// Table1Mixture is the published distribution of the paper's Table 1:
// cell probabilities for (class × location) plus the unclassifiable
// residue mentioned in footnote 4.
type Table1Mixture struct {
	GeneralWithLoc     float64 // 0.3236
	GeneralNoLoc       float64 // 0.2138
	CategoricalWithLoc float64 // 0.2252
	CategoricalNoLoc   float64 // 0.0534
	SpecificWithLoc    float64 // 0.0837
	Unclassifiable     float64 // 0.1003
}

// PaperMixture returns Table 1's published cell values.
func PaperMixture() Table1Mixture {
	return Table1Mixture{
		GeneralWithLoc:     0.3236,
		GeneralNoLoc:       0.2138,
		CategoricalWithLoc: 0.2252,
		CategoricalNoLoc:   0.0534,
		SpecificWithLoc:    0.0837,
		Unclassifiable:     0.1003,
	}
}

// junkTerms defeat every classifier list (the ~10% residue).
var junkTerms = []string{
	"asdf", "zzyx", "qwerty", "lorem", "foo123", "xyzzy", "blorp", "wibble",
}

// QueryLog generates n labeled queries drawn from the mixture,
// deterministic per seed. Generated text uses the shared gazetteers, so
// internal/queryclass can recover the mixture.
func QueryLog(n int, mix Table1Mixture, seed int64) ([]LabeledQuery, error) {
	total := mix.GeneralWithLoc + mix.GeneralNoLoc + mix.CategoricalWithLoc +
		mix.CategoricalNoLoc + mix.SpecificWithLoc + mix.Unclassifiable
	if total < 0.999 || total > 1.001 {
		return nil, fmt.Errorf("workload: mixture sums to %f, want 1", total)
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: query log size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]LabeledQuery, 0, n)
	cum := []struct {
		p     float64
		class QueryClass
		loc   bool
	}{
		{mix.GeneralWithLoc, General, true},
		{mix.GeneralNoLoc, General, false},
		{mix.CategoricalWithLoc, Categorical, true},
		{mix.CategoricalNoLoc, Categorical, false},
		{mix.SpecificWithLoc, Specific, true},
		{mix.Unclassifiable, Unclassifiable, false},
	}
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		acc := 0.0
		choice := cum[len(cum)-1]
		for _, c := range cum {
			acc += c.p
			if u < acc {
				choice = c
				break
			}
		}
		out = append(out, generate(rng, choice.class, choice.loc))
	}
	return out, nil
}

func generate(rng *rand.Rand, class QueryClass, withLoc bool) LabeledQuery {
	loc := Cities[rng.Intn(len(Cities))]
	var text string
	switch class {
	case General:
		term := GeneralTerms[rng.Intn(len(GeneralTerms))]
		switch {
		case withLoc && rng.Float64() < 0.3:
			text = loc // a bare location is a general query per the paper
		case withLoc:
			text = loc + " " + term
		default:
			text = term
		}
	case Categorical:
		cat := Categories[rng.Intn(len(Categories))]
		if withLoc {
			text = loc + " " + cat
			if rng.Float64() < 0.3 {
				text += " " + Categories[rng.Intn(len(Categories))]
			}
		} else {
			text = cat
			if rng.Float64() < 0.3 {
				text += " " + Categories[rng.Intn(len(Categories))]
			}
		}
	case Specific:
		text = SpecificDestinations[rng.Intn(len(SpecificDestinations))]
		if rng.Float64() < 0.3 {
			text += " tickets"
		}
		withLoc = true // named destinations imply a location (Table 1 shape)
	case Unclassifiable:
		k := 1 + rng.Intn(3)
		terms := make([]string, k)
		for i := range terms {
			terms[i] = junkTerms[rng.Intn(len(junkTerms))]
		}
		text = strings.Join(terms, " ")
		withLoc = false
	}
	return LabeledQuery{Text: text, Class: class, HasLocation: withLoc}
}
