package workload

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestLatenciesNearestRank pins the percentile definition: nearest-rank
// (ceil(q·n)) over the sorted samples.
func TestLatenciesNearestRank(t *testing.T) {
	l := &Latencies{}
	for _, d := range []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond} {
		l.Add(d)
	}
	if got := l.P(0.50); got != 2*time.Millisecond {
		t.Fatalf("median of [1ms 2ms 3ms] = %v, want 2ms", got)
	}
	if got := l.P(1.0); got != 3*time.Millisecond {
		t.Fatalf("P100 = %v, want 3ms", got)
	}
	if got := l.P(0.01); got != time.Millisecond {
		t.Fatalf("P1 = %v, want 1ms", got)
	}
	if got := (&Latencies{}).P(0.99); got != 0 {
		t.Fatalf("empty P99 = %v, want 0", got)
	}
	if got := l.Mean(); got != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", got)
	}
}

// TestClosedLoop verifies the driver's accounting: op counts by class,
// errors excluded from latencies, deterministic per-worker rngs.
func TestClosedLoop(t *testing.T) {
	res, err := ClosedLoop(3, 40, 1, func(w, i int, rng *rand.Rand) (bool, error) {
		switch {
		case i%10 == 9:
			return true, errors.New("transient")
		case rng.Float64() < 0.75:
			return true, nil
		default:
			return false, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 3*4 {
		t.Fatalf("errors = %d, want 12", res.Errors)
	}
	if res.Reads+res.Writes+res.Errors != 3*40 {
		t.Fatalf("ops accounted %d+%d+%d, want 120", res.Reads, res.Writes, res.Errors)
	}
	if res.ReadLat.Len() != res.Reads || res.WriteLat.Len() != res.Writes {
		t.Fatalf("latency sample counts (%d, %d) disagree with op counts (%d, %d)",
			res.ReadLat.Len(), res.WriteLat.Len(), res.Reads, res.Writes)
	}
	if res.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
	if _, err := ClosedLoop(0, 1, 1, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
}
