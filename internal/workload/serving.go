package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"socialscope/internal/graph"
)

// Latencies collects operation latencies and reports percentiles — the
// currency of the serving experiments (p50/p99 under load). Not safe
// for concurrent use; give each worker its own and Merge afterwards.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Merge folds another collection into l.
func (l *Latencies) Merge(o *Latencies) {
	l.samples = append(l.samples, o.samples...)
	l.sorted = false
}

// Len returns the sample count.
func (l *Latencies) Len() int { return len(l.samples) }

// P returns the q-quantile (0 < q <= 1) by nearest-rank over the sorted
// samples, 0 when empty.
func (l *Latencies) P(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Mean returns the arithmetic mean, 0 when empty.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// ClosedLoopResult aggregates one closed-loop run: wall time, per-class
// op counts and latency distributions.
type ClosedLoopResult struct {
	Wall     time.Duration
	Reads    int
	Writes   int
	Errors   int
	ReadLat  *Latencies
	WriteLat *Latencies
}

// Throughput returns completed operations per second.
func (r ClosedLoopResult) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Reads+r.Writes) / r.Wall.Seconds()
}

// ClosedLoop drives a closed-loop workload: workers goroutines each
// perform opsPerWorker operations back-to-back — the next op issues only
// when the previous one returns, so offered load self-regulates with
// server latency (the standard closed-loop model for saturation
// studies). do performs one operation and reports whether it was a read
// and whether it failed; each worker gets a private deterministic rng
// derived from seed. Latencies are recorded around do.
func ClosedLoop(workers, opsPerWorker int, seed int64,
	do func(worker, i int, rng *rand.Rand) (read bool, err error)) (ClosedLoopResult, error) {
	if workers <= 0 || opsPerWorker <= 0 {
		return ClosedLoopResult{}, fmt.Errorf("workload: closed loop needs positive workers and ops")
	}
	type workerResult struct {
		reads, writes, errors int
		readLat, writeLat     *Latencies
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			res := workerResult{readLat: &Latencies{}, writeLat: &Latencies{}}
			for i := 0; i < opsPerWorker; i++ {
				opStart := time.Now()
				read, err := do(w, i, rng)
				lat := time.Since(opStart)
				if err != nil {
					res.errors++
					continue
				}
				if read {
					res.reads++
					res.readLat.Add(lat)
				} else {
					res.writes++
					res.writeLat.Add(lat)
				}
			}
			results[w] = res
		}(w)
	}
	wg.Wait()
	out := ClosedLoopResult{
		Wall:     time.Since(start),
		ReadLat:  &Latencies{},
		WriteLat: &Latencies{},
	}
	for _, res := range results {
		out.Reads += res.reads
		out.Writes += res.writes
		out.Errors += res.errors
		if res.readLat != nil {
			out.ReadLat.Merge(res.readLat)
		}
		if res.writeLat != nil {
			out.WriteLat.Merge(res.writeLat)
		}
	}
	return out, nil
}

// TaggingStream generates an endless stream of fresh tagging mutations
// (user tags item) against a site graph — the write side of a mixed
// serving workload. Link ids are allocated past the graph's high-water
// mark and never reused, so every batch is acceptable to Engine.Apply.
// Safe for concurrent use.
type TaggingStream struct {
	mu    sync.Mutex
	rng   *rand.Rand
	users []graph.NodeID
	items []graph.NodeID
	tags  []string
	next  graph.LinkID
}

// NewTaggingStream returns a stream drawing users, items and tags
// uniformly, with ids starting after g's high-water mark.
func NewTaggingStream(g *graph.Graph, users, items []graph.NodeID, tags []string,
	seed int64) (*TaggingStream, error) {
	if len(users) == 0 || len(items) == 0 || len(tags) == 0 {
		return nil, fmt.Errorf("workload: tagging stream needs users, items and tags")
	}
	return &TaggingStream{
		rng:   rand.New(rand.NewSource(seed)),
		users: users,
		items: items,
		tags:  tags,
		next:  g.MaxLinkID(),
	}, nil
}

// Batch returns n fresh tagging mutations.
func (s *TaggingStream) Batch(n int) []graph.Mutation {
	s.mu.Lock()
	defer s.mu.Unlock()
	muts := make([]graph.Mutation, n)
	for i := range muts {
		s.next++
		u := s.users[s.rng.Intn(len(s.users))]
		d := s.items[s.rng.Intn(len(s.items))]
		tag := s.tags[s.rng.Intn(len(s.tags))]
		l := graph.NewLink(s.next, u, d, graph.TypeAct, graph.SubtypeTag)
		l.Attrs.Add("tags", tag)
		muts[i] = graph.Mutation{Kind: graph.MutAddLink, Link: l}
	}
	return muts
}
