// Transient (batch-mutation) mode: the Clojure-style escape hatch that
// makes bulk construction allocation-lean without giving up persistence.
//
// A persistent Set copies one root-to-leaf path per write, so building an
// N-entry map allocates O(N log N) trie nodes and immediately discards
// all but the last path — pure GC churn. A transient instead carries an
// ownership token (an Edit): trie nodes created or first-touched under
// the token are stamped with it and may be mutated in place by later
// writes of the same transient; nodes reachable from previously published
// Maps are never stamped, so the first write through them falls back to
// copy-on-write. The effect is that a bulk build pays one copy per
// *touched node*, not one per *write*, while every Map snapshot taken
// before the transient was created stays exactly as immutable as always.
//
// Sealing (TMap.Persistent) is O(1): the token is dropped, the current
// root becomes an ordinary immutable Map. Stamped edit pointers remain in
// the nodes but are inert — ownership tests compare against a live
// transient's token, and every NewEdit allocation is distinct — so a
// sealed result is safe to share across goroutines like any other Map.
//
// Contract: a transient is single-goroutine; a sealed transient panics on
// further mutation. Structures embedding persistent maps (graph.Graph,
// the index) open bulk windows through the lower-level SetWith/DeleteWith
// edit-parameter API instead of TMap, so their read paths keep working on
// ordinary Map headers mid-batch.
package persist

import "math/bits"

// Edit is a transient ownership token. Trie nodes stamped with a live
// Edit may be mutated in place by writes carrying the same token; all
// other nodes are copied first. Obtain one with NewEdit (for the
// SetWith/DeleteWith embedding API) or implicitly via Map.Transient.
type Edit struct {
	_ int8 // non-zero size: every NewEdit allocation is a distinct identity
}

// NewEdit returns a fresh ownership token for one bulk-mutation window.
func NewEdit() *Edit { return &Edit{} }

// DisableTransients, when true, makes SetWith/DeleteWith (and therefore
// TMap and every bulk path built on them) ignore their edit token and run
// the pure persistent path. It exists so benchmarks (ssbench -exp
// bulkload) can measure the transient mode against the exact
// persistent-only code it replaces. Not for concurrent toggling.
var DisableTransients bool

// owned reports whether the node may be mutated in place under e.
func (n *node[K, V]) owned(e *Edit) bool { return e != nil && n.edit == e }

// claim returns a node the edit may freely write: n itself when already
// owned, otherwise a copy — slices included, since in-place mutation of a
// shared backing array would corrupt published versions — stamped with e.
func claim[K comparable, V any](e *Edit, n *node[K, V]) *node[K, V] {
	if n.owned(e) {
		return n
	}
	c := &node[K, V]{
		datamap: n.datamap,
		nodemap: n.nodemap,
		coll:    n.coll,
		edit:    e,
	}
	if n.keys != nil {
		c.keys = append(make([]K, 0, len(n.keys)+1), n.keys...)
		c.vals = append(make([]V, 0, len(n.vals)+1), n.vals...)
	}
	if n.subs != nil {
		c.subs = append(make([]*node[K, V], 0, len(n.subs)+1), n.subs...)
	}
	return c
}

// SetWith is Set carrying a transient ownership token: nodes owned by e
// are mutated in place, everything else is copied first (and the copy
// stamped with e, so the next write through it is free). A nil e — or
// DisableTransients — is exactly Set. This is the embedding API for
// structures that hold Maps as fields and want a bulk window without
// routing reads through a TMap; the single-goroutine transient contract
// applies to the whole window, and the final headers must only be
// published (shared with readers) after the window closes.
func (m Map[K, V]) SetWith(e *Edit, k K, v V) Map[K, V] {
	if e == nil || DisableTransients {
		return m.Set(k, v)
	}
	h := m.hash(k)
	if m.root == nil {
		return Map[K, V]{
			root: &node[K, V]{
				datamap: 1 << (h & branchMask),
				keys:    []K{k},
				vals:    []V{v},
				edit:    e,
			},
			size: 1,
			hash: m.hash,
		}
	}
	root, added := m.setT(e, m.root, 0, h, k, v)
	size := m.size
	if added {
		size++
	}
	return Map[K, V]{root: root, size: size, hash: m.hash}
}

// setT is the transient write: claim-then-mutate instead of copy-per-path.
// It mirrors Map.set case for case; TestTransientEquivalence holds the two
// implementations to identical observable behavior.
func (m Map[K, V]) setT(e *Edit, n *node[K, V], shift uint, h uint64, k K, v V) (*node[K, V], bool) {
	if n.coll {
		for i := range n.keys {
			if n.keys[i] == k {
				n = claim(e, n)
				n.vals[i] = v
				return n, false
			}
		}
		n = claim(e, n)
		n.keys = append(n.keys, k)
		n.vals = append(n.vals, v)
		return n, true
	}
	bit := uint64(1) << ((h >> shift) & branchMask)
	switch {
	case n.datamap&bit != 0:
		i := bits.OnesCount64(n.datamap & (bit - 1))
		if n.keys[i] == k {
			n = claim(e, n)
			n.vals[i] = v
			return n, false
		}
		// Slot conflict: push the resident entry and the new one down into
		// a fresh subtree (merge stamps it with e, so follow-up writes into
		// the same region stay in place).
		sub := m.merge(e, shift+branchBits, m.hash(n.keys[i]), n.keys[i], n.vals[i], h, k, v)
		j := bits.OnesCount64(n.nodemap & (bit - 1))
		n = claim(e, n)
		n.datamap &^= bit
		n.nodemap |= bit
		n.keys = removeInPlace(n.keys, i)
		n.vals = removeInPlace(n.vals, i)
		n.subs = insertInPlace(n.subs, j, sub)
		return n, true
	case n.nodemap&bit != 0:
		j := bits.OnesCount64(n.nodemap & (bit - 1))
		sub, added := m.setT(e, n.subs[j], shift+branchBits, h, k, v)
		n = claim(e, n)
		n.subs[j] = sub
		return n, added
	default:
		i := bits.OnesCount64(n.datamap & (bit - 1))
		n = claim(e, n)
		n.datamap |= bit
		n.keys = insertInPlace(n.keys, i, k)
		n.vals = insertInPlace(n.vals, i, v)
		return n, true
	}
}

// DeleteWith is Delete carrying a transient ownership token; see SetWith.
func (m Map[K, V]) DeleteWith(e *Edit, k K) Map[K, V] {
	if e == nil || DisableTransients {
		return m.Delete(k)
	}
	if m.root == nil {
		return m
	}
	root, removed := m.delT(e, m.root, 0, m.hash(k), k)
	if !removed {
		return m
	}
	return Map[K, V]{root: root, size: m.size - 1, hash: m.hash}
}

// delT is the transient delete, mirroring Map.del with claim-then-mutate.
// Canonicalization (inlining single-entry subtrees) is preserved so
// transient and persistent histories converge on identical trie shapes.
func (m Map[K, V]) delT(e *Edit, n *node[K, V], shift uint, h uint64, k K) (*node[K, V], bool) {
	if n.coll {
		for i := range n.keys {
			if n.keys[i] != k {
				continue
			}
			if len(n.keys) == 1 {
				return nil, true
			}
			n = claim(e, n)
			n.keys = removeInPlace(n.keys, i)
			n.vals = removeInPlace(n.vals, i)
			return n, true
		}
		return n, false
	}
	bit := uint64(1) << ((h >> shift) & branchMask)
	switch {
	case n.datamap&bit != 0:
		i := bits.OnesCount64(n.datamap & (bit - 1))
		if n.keys[i] != k {
			return n, false
		}
		if len(n.keys) == 1 && n.nodemap == 0 {
			return nil, true
		}
		n = claim(e, n)
		n.datamap &^= bit
		n.keys = removeInPlace(n.keys, i)
		n.vals = removeInPlace(n.vals, i)
		return n, true
	case n.nodemap&bit != 0:
		j := bits.OnesCount64(n.nodemap & (bit - 1))
		sub, removed := m.delT(e, n.subs[j], shift+branchBits, h, k)
		if !removed {
			return n, false
		}
		switch {
		case sub == nil:
			if len(n.subs) == 1 && n.datamap == 0 {
				return nil, true
			}
			n = claim(e, n)
			n.nodemap &^= bit
			n.subs = removeInPlace(n.subs, j)
			return n, true
		case sub.inlineable():
			i := bits.OnesCount64(n.datamap & (bit - 1))
			key, val := sub.keys[0], sub.vals[0]
			n = claim(e, n)
			n.datamap |= bit
			n.nodemap &^= bit
			n.keys = insertInPlace(n.keys, i, key)
			n.vals = insertInPlace(n.vals, i, val)
			n.subs = removeInPlace(n.subs, j)
			return n, true
		default:
			n = claim(e, n)
			n.subs[j] = sub
			return n, true
		}
	default:
		return n, false
	}
}

// TMap is a transient view of a Map: a mutable builder that shares all
// storage with the Map it came from, mutates in place what it alone owns,
// and seals back into an immutable Map in O(1). Use it for bulk
// construction — build, seal, publish:
//
//	t := persist.NewIntMap[int, string]().Transient()
//	for k, v := range input {
//		t.Set(k, v)
//	}
//	m := t.Persistent() // immutable from here on
//
// A TMap is single-goroutine by contract (mutation is in place; there is
// nothing to snapshot mid-build), and every mutating method panics once
// the transient has been sealed. Maps obtained from Persistent, and every
// Map that existed before Transient was called, carry the full persistent
// guarantees: concurrent readers, O(1) snapshots, total immunity to the
// transient's edits.
type TMap[K comparable, V any] struct {
	m    Map[K, V]
	edit *Edit
}

// Transient opens a batch-mutation window over the map's current
// contents. O(1): no storage is copied up front; the receiver — like
// every other published version — is never modified by the transient's
// writes (shared nodes are copied on first touch).
func (m Map[K, V]) Transient() *TMap[K, V] {
	return &TMap[K, V]{m: m, edit: NewEdit()}
}

func (t *TMap[K, V]) mustBeLive() {
	if t.edit == nil {
		panic("persist: mutation of a sealed TMap (Persistent was called)")
	}
}

// Set binds k to v, mutating owned trie nodes in place. Panics if sealed.
func (t *TMap[K, V]) Set(k K, v V) {
	t.mustBeLive()
	t.m = t.m.SetWith(t.edit, k, v)
}

// Delete removes k (no-op when absent). Panics if sealed.
func (t *TMap[K, V]) Delete(k K) {
	t.mustBeLive()
	t.m = t.m.DeleteWith(t.edit, k)
}

// Get returns the value stored under k and whether it is present.
func (t *TMap[K, V]) Get(k K) (V, bool) { return t.m.Get(k) }

// At returns the value stored under k, or V's zero value when absent.
func (t *TMap[K, V]) At(k K) V { return t.m.At(k) }

// Has reports whether k is present.
func (t *TMap[K, V]) Has(k K) bool { return t.m.Has(k) }

// Len returns the number of entries. O(1).
func (t *TMap[K, V]) Len() int { return t.m.Len() }

// Range calls fn for every entry until fn returns false, in the same
// canonical hash order as Map.Range. fn must not mutate the transient.
func (t *TMap[K, V]) Range(fn func(K, V) bool) { t.m.Range(fn) }

// Persistent seals the transient and returns its contents as an immutable
// Map. O(1): the ownership token is dropped, so no node can be mutated in
// place anymore and the result is safe to share across goroutines. The
// TMap is dead afterwards — further Set/Delete calls panic.
func (t *TMap[K, V]) Persistent() Map[K, V] {
	t.mustBeLive()
	t.edit = nil
	return t.m
}

// insertInPlace inserts v before index i, shifting in place (the slice
// must be transient-owned; growth via append is fine, the backing array
// is private).
func insertInPlace[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeInPlace removes the element at index i, shifting in place and
// zeroing the vacated tail slot so owned slices never pin dead values.
func removeInPlace[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	var zero T
	s[len(s)-1] = zero
	return s[:len(s)-1]
}
