package persist_test

import (
	"fmt"

	"socialscope/internal/persist"
)

// Bulk-build a map through a transient, then seal it back into an
// immutable Map. The transient mutates trie nodes it owns in place, so
// the build allocates O(n) nodes instead of the O(n log n) a chain of
// persistent Sets would; the sealed result — and every Map that existed
// before the transient was opened — carries the usual persistent
// guarantees (O(1) snapshots, lock-free concurrent readers).
func ExampleMap_Transient() {
	base := persist.NewStringMap[int]().Set("seed", 1)

	t := base.Transient()
	for i, tag := range []string{"denver", "museum", "hiking"} {
		t.Set(tag, i)
	}
	t.Delete("seed")
	m := t.Persistent() // seals: the transient is dead, m is immutable

	fmt.Println("built:", m.Len(), "entries; has hiking:", m.Has("hiking"))
	fmt.Println("base untouched:", base.Len(), "entry; has hiking:", base.Has("hiking"))
	// Output:
	// built: 3 entries; has hiking: true
	// base untouched: 1 entry; has hiking: false
}

// Sealing is what makes a transient's result shareable: after
// Persistent returns, no write can reach the sealed nodes — further
// mutation of the transient panics instead.
func ExampleTMap_Persistent() {
	t := persist.NewIntMap[int, string]().Transient()
	t.Set(1, "a")
	sealed := t.Persistent()

	defer func() {
		fmt.Println("recovered:", recover() != nil)
		fmt.Println("sealed still holds:", sealed.At(1))
	}()
	t.Set(2, "b") // panics: the transient was sealed
	// Output:
	// recovered: true
	// sealed still holds: a
}
