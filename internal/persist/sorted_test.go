package persist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestInsertRemoveSorted(t *testing.T) {
	s := []int{2, 4, 6}
	if got := InsertSorted(s, 4); !sameSlice(got, s) {
		t.Fatalf("inserting present key rebuilt the slice: %v", got)
	}
	if got := InsertSorted(s, 5); !reflect.DeepEqual(got, []int{2, 4, 5, 6}) {
		t.Fatalf("InsertSorted = %v", got)
	}
	if got := RemoveSorted(s, 5); !sameSlice(got, s) {
		t.Fatalf("removing absent key rebuilt the slice: %v", got)
	}
	if got := RemoveSorted(s, 4); !reflect.DeepEqual(got, []int{2, 6}) {
		t.Fatalf("RemoveSorted = %v", got)
	}
	if !reflect.DeepEqual(s, []int{2, 4, 6}) {
		t.Fatalf("input mutated: %v", s)
	}
}

// TestApplySortedDelta holds the batch merge to the per-edit reference:
// any delta map applied at once must equal the same edits applied one by
// one through InsertSorted/RemoveSorted (order-independent by
// construction — one entry per key).
func TestApplySortedDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		base := make([]int, 0, 40)
		for _, k := range rng.Perm(100)[:rng.Intn(40)] {
			base = InsertSorted(base, k)
		}
		delta := make(map[int]bool)
		for i := 0; i < rng.Intn(20); i++ {
			delta[rng.Intn(120)] = rng.Intn(2) == 0
		}
		want := append([]int(nil), base...)
		for k, add := range delta {
			if add {
				want = InsertSorted(want, k)
			} else {
				want = RemoveSorted(want, k)
			}
		}
		got := ApplySortedDelta(base, delta)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: base %v delta %v\n got %v\nwant %v", trial, base, delta, got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: result unsorted: %v", trial, got)
		}
	}
	s := []int{1, 2, 3}
	if got := ApplySortedDelta(s, nil); !sameSlice(got, s) {
		t.Fatal("empty delta must return the input unchanged")
	}
}

func sameSlice[T comparable](a, b []T) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}
