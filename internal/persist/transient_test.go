package persist

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestTransientEquivalence is the contract test the transient
// implementation lives under: any interleaving of Set/Delete on a TMap
// must observably equal the same ops on a persistent Map (and a built-in
// map), including the canonical trie shape — checked through iteration
// order — and Len.
func TestTransientEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		p := NewIntMap[int64, int]()
		tr := NewIntMap[int64, int]().Transient()
		ref := make(map[int64]int)
		const ops = 8000
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(1500))
			switch rng.Intn(3) {
			case 0, 1:
				p = p.Set(k, i)
				tr.Set(k, i)
				ref[k] = i
			case 2:
				p = p.Delete(k)
				tr.Delete(k)
				delete(ref, k)
			}
			if p.Len() != tr.Len() {
				t.Fatalf("seed %d op %d: persistent Len %d != transient Len %d",
					seed, i, p.Len(), tr.Len())
			}
		}
		m := tr.Persistent()
		if !reflect.DeepEqual(p.Keys(), m.Keys()) {
			t.Fatalf("seed %d: iteration order diverged — trie shapes differ", seed)
		}
		if m.Len() != len(ref) {
			t.Fatalf("seed %d: Len %d, want %d", seed, m.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := m.Get(k); !ok || got != v {
				t.Fatalf("seed %d: Get(%d) = %d, %v; want %d", seed, k, got, ok, v)
			}
		}
	}
}

// TestTransientCollisions drives the equivalence property through the
// collision-bucket paths by forcing every key onto one hash.
func TestTransientCollisions(t *testing.T) {
	badHash := func(int) uint64 { return 42 }
	p := NewMap[int, int](badHash)
	tr := NewMap[int, int](badHash).Transient()
	ref := make(map[int]int)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		k := rng.Intn(150)
		if rng.Intn(3) == 0 {
			p = p.Delete(k)
			tr.Delete(k)
			delete(ref, k)
		} else {
			p = p.Set(k, i)
			tr.Set(k, i)
			ref[k] = i
		}
	}
	m := tr.Persistent()
	if m.Len() != len(ref) || p.Len() != len(ref) {
		t.Fatalf("Len: transient %d persistent %d ref %d", m.Len(), p.Len(), len(ref))
	}
	for k, v := range ref {
		if got := m.At(k); got != v {
			t.Fatalf("At(%d) = %d, want %d", k, got, v)
		}
	}
}

// TestTransientSnapshotIsolation is the safety property the bulk paths
// rely on: no persistent snapshot — the base the transient was opened
// over, or any Map sealed earlier — ever observes transient edits.
func TestTransientSnapshotIsolation(t *testing.T) {
	base := NewIntMap[int, int]()
	for i := 0; i < 3000; i++ {
		base = base.Set(i, i*7)
	}
	tr := base.Transient()
	for i := 0; i < 3000; i += 2 {
		tr.Delete(i)
	}
	mid := tr.Persistent() // seal a checkpoint...
	tr2 := mid.Transient() // ...and keep building from it
	for i := 5000; i < 9000; i++ {
		tr2.Set(i, -i)
	}
	for i := 1; i < 3000; i += 2 {
		tr2.Set(i, 0)
	}
	final := tr2.Persistent()

	if base.Len() != 3000 {
		t.Fatalf("base Len changed to %d", base.Len())
	}
	for i := 0; i < 3000; i++ {
		if got := base.At(i); got != i*7 {
			t.Fatalf("base entry %d = %d, want %d (transient edit leaked)", i, got, i*7)
		}
	}
	if mid.Len() != 1500 {
		t.Fatalf("sealed checkpoint Len changed to %d", mid.Len())
	}
	mid.Range(func(k, v int) bool {
		if k%2 == 0 || v != k*7 {
			t.Fatalf("sealed checkpoint entry (%d,%d) corrupted by later transient", k, v)
		}
		return true
	})
	if final.Len() != 1500+4000 {
		t.Fatalf("final Len = %d", final.Len())
	}
}

// TestTransientSealedPanics: a sealed transient must refuse mutation
// loudly rather than corrupt the Map it handed out.
func TestTransientSealedPanics(t *testing.T) {
	tr := NewIntMap[int, int]().Transient()
	tr.Set(1, 1)
	_ = tr.Persistent()
	for name, fn := range map[string]func(){
		"Set":        func() { tr.Set(2, 2) },
		"Delete":     func() { tr.Delete(1) },
		"Persistent": func() { tr.Persistent() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on sealed TMap did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSealedSafeToShare builds maps transiently, seals them, and hands
// them to concurrent readers while a sibling transient keeps mutating —
// run under -race this proves sealing really does end in-place mutation
// of anything a reader can reach.
func TestSealedSafeToShare(t *testing.T) {
	tr := NewIntMap[int, int]().Transient()
	for i := 0; i < 4096; i++ {
		tr.Set(i, i)
	}
	sealed := tr.Persistent()

	// A second transient over the sealed map mutates concurrently with
	// the readers below; claim-on-first-touch must keep them disjoint.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr2 := sealed.Transient()
		for i := 0; i < 4096; i++ {
			tr2.Set(i, -i)
			tr2.Set(i+10000, i)
		}
		_ = tr2.Persistent()
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := 0
			sealed.Range(func(_, v int) bool {
				sum += v
				return true
			})
			for i := 0; i < 4096; i++ {
				if got := sealed.At(i); got != i {
					t.Errorf("sealed map entry %d = %d", i, got)
					return
				}
			}
			_ = sum
		}()
	}
	wg.Wait()
}

// TestTransientFromPopulatedBase checks claim-on-first-touch against a
// shared base: repeated writes into one region must converge to in-place
// mutation while the base stays whole.
func TestTransientFromPopulatedBase(t *testing.T) {
	base := NewStringMap[int]()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		base = base.Set(k, 1)
	}
	tr := base.Transient()
	for i := 0; i < 100; i++ {
		tr.Set("a", i)
		tr.Set("z", i)
	}
	m := tr.Persistent()
	if m.At("a") != 99 || m.At("z") != 99 || m.Len() != 6 {
		t.Fatalf("transient result wrong: a=%d z=%d len=%d", m.At("a"), m.At("z"), m.Len())
	}
	if base.At("a") != 1 || base.Has("z") || base.Len() != 5 {
		t.Fatalf("base observed transient edits: a=%d has(z)=%v len=%d",
			base.At("a"), base.Has("z"), base.Len())
	}
}

// TestTransientReads: reads on a live transient see its own writes.
func TestTransientReads(t *testing.T) {
	tr := NewIntMap[int, string]().Transient()
	tr.Set(1, "one")
	tr.Set(2, "two")
	tr.Delete(1)
	if tr.Has(1) || !tr.Has(2) || tr.Len() != 1 {
		t.Fatalf("transient reads wrong: has1=%v has2=%v len=%d", tr.Has(1), tr.Has(2), tr.Len())
	}
	if v, ok := tr.Get(2); !ok || v != "two" {
		t.Fatalf("Get(2) = %q, %v", v, ok)
	}
	n := 0
	tr.Range(func(int, string) bool { n++; return true })
	if n != 1 {
		t.Fatalf("Range visited %d entries", n)
	}
	if tr.At(2) != "two" {
		t.Fatalf("At(2) = %q", tr.At(2))
	}
}

// TestSetWithNilEditIsSet: the embedding API with no open window must be
// exactly the persistent path.
func TestSetWithNilEditIsSet(t *testing.T) {
	m := NewIntMap[int, int]()
	m2 := m.SetWith(nil, 1, 10).SetWith(nil, 2, 20).DeleteWith(nil, 1)
	if m.Len() != 0 || m2.Len() != 1 || m2.At(2) != 20 {
		t.Fatalf("nil-edit path diverged: base=%d new=%d", m.Len(), m2.Len())
	}
}

// TestDisableTransients: the benchmark escape hatch must leave behavior
// identical while routing everything through the persistent path.
func TestDisableTransients(t *testing.T) {
	DisableTransients = true
	defer func() { DisableTransients = false }()
	tr := NewIntMap[int, int]().Transient()
	for i := 0; i < 500; i++ {
		tr.Set(i, i)
	}
	tr.Delete(100)
	m := tr.Persistent()
	if m.Len() != 499 || m.Has(100) || m.At(3) != 3 {
		t.Fatalf("DisableTransients changed behavior: len=%d", m.Len())
	}
}
