package persist

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBasicSetGetDelete(t *testing.T) {
	m := NewIntMap[int, string]()
	if m.Len() != 0 {
		t.Fatalf("empty map Len = %d", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map has key")
	}
	m = m.Set(1, "a").Set(2, "b").Set(3, "c")
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	for k, want := range map[int]string{1: "a", 2: "b", 3: "c"} {
		if got, ok := m.Get(k); !ok || got != want {
			t.Errorf("Get(%d) = %q, %v; want %q", k, got, ok, want)
		}
	}
	m = m.Set(2, "B")
	if got := m.At(2); got != "B" {
		t.Errorf("overwrite: At(2) = %q", got)
	}
	if m.Len() != 3 {
		t.Errorf("overwrite changed Len to %d", m.Len())
	}
	m = m.Delete(1)
	if m.Has(1) || m.Len() != 2 {
		t.Errorf("after Delete(1): Has=%v Len=%d", m.Has(1), m.Len())
	}
	if m2 := m.Delete(99); m2.Len() != 2 {
		t.Errorf("deleting absent key changed Len to %d", m2.Len())
	}
}

func TestAtZeroValue(t *testing.T) {
	m := NewStringMap[[]int]()
	if v := m.At("missing"); v != nil {
		t.Errorf("At(missing) = %v, want nil", v)
	}
	m = m.Set("x", []int{1})
	if v := m.At("x"); len(v) != 1 {
		t.Errorf("At(x) = %v", v)
	}
}

// TestSnapshotImmutability is the load-bearing property: a snapshot taken
// before a write sequence must never change, entry for entry.
func TestSnapshotImmutability(t *testing.T) {
	m := NewIntMap[int, int]()
	for i := 0; i < 1000; i++ {
		m = m.Set(i, i*10)
	}
	snap := m // O(1) snapshot
	for i := 0; i < 1000; i += 2 {
		m = m.Delete(i)
	}
	for i := 1000; i < 1500; i++ {
		m = m.Set(i, -i)
	}
	for i := 1; i < 1000; i += 2 {
		m = m.Set(i, 0)
	}
	if snap.Len() != 1000 {
		t.Fatalf("snapshot Len changed to %d", snap.Len())
	}
	for i := 0; i < 1000; i++ {
		if got, ok := snap.Get(i); !ok || got != i*10 {
			t.Fatalf("snapshot entry %d = %d, %v; want %d", i, got, ok, i*10)
		}
	}
	if snap.Has(1200) {
		t.Fatal("snapshot sees later insert")
	}
}

// TestDifferentialVsMap drives random operations through the HAMT and a
// built-in map in lockstep and compares full contents periodically.
func TestDifferentialVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewIntMap[int64, int]()
	ref := make(map[int64]int)
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := int64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			m = m.Set(k, i)
			ref[k] = i
		case 2:
			m = m.Delete(k)
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != ref %d", i, m.Len(), len(ref))
		}
		if i%1000 == 999 {
			got := make(map[int64]int, m.Len())
			m.Range(func(k int64, v int) bool {
				if _, dup := got[k]; dup {
					t.Fatalf("Range yields key %d twice", k)
				}
				got[k] = v
				return true
			})
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("op %d: contents diverged (%d vs %d entries)", i, len(got), len(ref))
			}
		}
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("final Get(%d) = %d, %v; want %d", k, got, ok, v)
		}
	}
}

func TestStringKeys(t *testing.T) {
	m := NewStringMap[int]()
	ref := make(map[string]int)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("tag%04d", i%700)
		m = m.Set(k, i)
		ref[k] = i
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got := m.At(k); got != v {
			t.Fatalf("At(%q) = %d, want %d", k, got, v)
		}
	}
}

// TestCollisions forces every key onto one hash so the collision-bucket
// path carries the whole workload.
func TestCollisions(t *testing.T) {
	m := NewMap[int, string](func(int) uint64 { return 0xdeadbeef })
	ref := make(map[int]string)
	for i := 0; i < 200; i++ {
		m = m.Set(i, fmt.Sprint(i))
		ref[i] = fmt.Sprint(i)
	}
	snap := m
	for i := 0; i < 200; i += 3 {
		m = m.Delete(i)
		delete(ref, i)
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for i := 0; i < 200; i++ {
		got, ok := m.Get(i)
		want, wok := ref[i]
		if ok != wok || got != want {
			t.Errorf("Get(%d) = %q, %v; want %q, %v", i, got, ok, want, wok)
		}
	}
	if snap.Len() != 200 {
		t.Errorf("collision snapshot Len changed to %d", snap.Len())
	}
	// Drain to empty and rebuild: exercises bucket inlining and root removal.
	for i := range ref {
		m = m.Delete(i)
	}
	if m.Len() != 0 || m.root != nil {
		t.Fatalf("drained map: Len=%d root=%v", m.Len(), m.root)
	}
	m = m.Set(5, "five")
	if m.At(5) != "five" {
		t.Fatal("reuse after drain failed")
	}
}

// TestIterationDeterministic asserts the canonical-shape property: the
// same key set iterates in the same order regardless of how it was built.
func TestIterationDeterministic(t *testing.T) {
	keys := rand.New(rand.NewSource(3)).Perm(500)
	a := NewIntMap[int, int]()
	for _, k := range keys {
		a = a.Set(k, k)
	}
	// b: insert extra keys then delete them, and insert in another order.
	b := NewIntMap[int, int]()
	for i := 499; i >= 0; i-- {
		b = b.Set(i, i)
	}
	for i := 1000; i < 1200; i++ {
		b = b.Set(i, i)
	}
	for i := 1000; i < 1200; i++ {
		b = b.Delete(i)
	}
	ka, kb := a.Keys(), b.Keys()
	if !reflect.DeepEqual(ka, kb) {
		t.Fatal("iteration order depends on construction history")
	}
	sort.Ints(ka)
	for i, k := range ka {
		if i != k {
			t.Fatalf("key set wrong at %d: %d", i, k)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := NewIntMap[int, int]()
	for i := 0; i < 100; i++ {
		m = m.Set(i, i)
	}
	n := 0
	m.Range(func(int, int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range visited %d entries after early stop", n)
	}
}

func TestKeysEmpty(t *testing.T) {
	m := NewStringMap[int]()
	if ks := m.Keys(); len(ks) != 0 {
		t.Fatalf("Keys of empty = %v", ks)
	}
}

func TestMix64Spread(t *testing.T) {
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 50; b++ {
			h := Mix64(Hash64(a), Hash64(b))
			if seen[h] {
				t.Fatalf("Mix64 collision at (%d,%d)", a, b)
			}
			seen[h] = true
		}
	}
	if Mix64(Hash64(1), Hash64(2)) == Mix64(Hash64(2), Hash64(1)) {
		t.Error("Mix64 should not be symmetric")
	}
}

// TestConcurrentReadersUnderWriter publishes successive versions while
// readers walk older snapshots; run with -race this proves structural
// sharing never hands a mutable node to a reader.
func TestConcurrentReadersUnderWriter(t *testing.T) {
	m := NewIntMap[int, int]()
	for i := 0; i < 512; i++ {
		m = m.Set(i, i)
	}
	snaps := make(chan Map[int, int], 64)
	done := make(chan struct{})
	go func() {
		defer close(snaps)
		cur := m
		for i := 0; i < 2000; i++ {
			cur = cur.Set(i%700, i).Delete((i * 7) % 900)
			if i%50 == 0 {
				select {
				case snaps <- cur:
				default:
				}
			}
		}
	}()
	go func() {
		defer close(done)
		for s := range snaps {
			sum := 0
			s.Range(func(_, v int) bool {
				sum += v
				return true
			})
			_ = sum
		}
	}()
	<-done
	// The original version must still hold its exact contents.
	for i := 0; i < 512; i++ {
		if got := m.At(i); got != i {
			t.Fatalf("base version entry %d = %d", i, got)
		}
	}
}
