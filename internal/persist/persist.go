// Package persist implements a generic persistent (immutable,
// structurally-shared) hash map: a compressed hash-array-mapped trie in
// the CHAMP style. Every write — Set, Delete — returns a new Map that
// shares all untouched trie nodes with the receiver, so
//
//   - taking a snapshot is O(1): copy the small Map header;
//   - a write costs O(log n) node copies along one root-to-leaf path;
//   - readers of older versions never observe a write (RCU discipline:
//     publish a new version, never mutate a reachable one).
//
// This is the storage substrate that makes the live-update path of the
// SocialScope engine O(delta): graph snapshots (graph.ShallowClone) and
// index substrate snapshots (index ApplyDelta) copy a constant-size
// header instead of every entry.
//
// Iteration order is hash order: deterministic for a given key set —
// independent of insertion and deletion history, because deletes restore
// the canonical trie shape — but not sorted. Callers that need sorted
// output collect and sort, exactly as they would over a built-in map.
//
// The zero Map is not ready for use: construct with NewMap (explicit hash
// function), NewIntMap or NewStringMap.
//
// Bulk construction should go through the transient mode (Map.Transient /
// TMap, or the SetWith/DeleteWith embedding API — see transient.go): same
// resulting Maps, same canonical trie shapes, a fraction of the
// allocation.
package persist

import "math/bits"

const (
	// branchBits is the chunk of hash consumed per trie level; nodes fan
	// out up to 1<<branchBits ways, addressed through popcount-compressed
	// bitmaps.
	branchBits = 6
	branchMask = 1<<branchBits - 1
	// maxShift is the deepest level that still draws fresh hash bits from
	// a 64-bit hash; below it, equal-hash keys go to collision buckets.
	maxShift = 63 - (63 % branchBits)
)

// Map is a persistent hash-array-mapped-trie map from K to V. Map values
// are cheap headers (a root pointer, a count, the hash function); copying
// one is an O(1) snapshot. All methods are read-only on the receiver —
// Set and Delete return new Maps — so any number of goroutines may read
// any number of versions concurrently without synchronization. The usual
// single-writer discipline applies only to whatever variable holds the
// latest version.
type Map[K comparable, V any] struct {
	root *node[K, V]
	size int
	hash func(K) uint64
}

// NewMap returns an empty map that hashes keys with the given function.
// The hash must be deterministic for the lifetime of the map and spread
// keys across all 64 bits (wrap integer ids with Hash64, strings with
// HashString, and combine fields of composite keys with Mix64).
func NewMap[K comparable, V any](hash func(K) uint64) Map[K, V] {
	return Map[K, V]{hash: hash}
}

// Integer matches the built-in integer kinds so NewIntMap can cover every
// id-like key type (graph.NodeID, graph.LinkID, plain ints).
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// NewIntMap returns an empty map keyed by an integer-like type.
func NewIntMap[K Integer, V any]() Map[K, V] {
	return NewMap[K, V](func(k K) uint64 { return Hash64(uint64(int64(k))) })
}

// NewStringMap returns an empty map keyed by strings.
func NewStringMap[V any]() Map[string, V] {
	return NewMap[string, V](HashString)
}

// Hash64 finalizes a 64-bit value into a well-mixed hash (the splitmix64
// finalizer). Sequential ids become uniformly spread trie paths.
func Hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString hashes a string with 64-bit FNV-1a. Deterministic across
// processes, so trie shapes — and therefore iteration order — are
// reproducible run to run.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Mix64 combines two hashes into one, for composite keys.
func Mix64(a, b uint64) uint64 {
	return Hash64(a ^ (b*0x9e3779b97f4a7c15 + 0x7f4a7c15))
}

// node is one trie level. datamap marks slots holding inline entries
// (parallel keys/vals, in slot order); nodemap marks slots holding child
// pointers (subs, in slot order). A slot is never in both maps. Collision
// buckets — keys whose 64-bit hashes are fully equal — are nodes with
// coll set; they hold every colliding entry in keys/vals and use neither
// bitmap. Nodes are immutable once linked into a published Map.
type node[K comparable, V any] struct {
	datamap uint64
	nodemap uint64
	keys    []K
	vals    []V
	subs    []*node[K, V]
	coll    bool
	// edit, when non-nil, is the ownership token of the transient that
	// created (or claimed) this node; writes carrying the same token may
	// mutate the node in place (see transient.go). Nodes reachable from a
	// sealed Map are never owned by any live transient, so the field is
	// inert outside a bulk-mutation window.
	edit *Edit
}

// Len returns the number of entries. O(1).
func (m Map[K, V]) Len() int { return m.size }

// Get returns the value stored under k and whether it is present. When V
// is a reference type the value aliases the trie's shared state across
// every snapshot that includes this entry.
//
//ss:immutable — copy before mutating reference-typed values.
func (m Map[K, V]) Get(k K) (V, bool) {
	var zero V
	n := m.root
	if n == nil {
		return zero, false
	}
	h := m.hash(k)
	for shift := uint(0); ; shift += branchBits {
		if n.coll {
			for i := range n.keys {
				if n.keys[i] == k {
					return n.vals[i], true
				}
			}
			return zero, false
		}
		bit := uint64(1) << ((h >> shift) & branchMask)
		if n.datamap&bit != 0 {
			i := bits.OnesCount64(n.datamap & (bit - 1))
			if n.keys[i] == k {
				return n.vals[i], true
			}
			return zero, false
		}
		if n.nodemap&bit == 0 {
			return zero, false
		}
		n = n.subs[bits.OnesCount64(n.nodemap&(bit-1))]
	}
}

// At returns the value stored under k, or V's zero value when absent —
// the built-in map's indexing convenience for nil-tolerant value types
// (slices, maps, sets). When V is a reference type the value aliases the
// trie's shared state across every snapshot that includes this entry.
//
//ss:immutable — copy before mutating reference-typed values.
func (m Map[K, V]) At(k K) V {
	v, _ := m.Get(k)
	return v
}

// Has reports whether k is present.
func (m Map[K, V]) Has(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Set returns a map with k bound to v. The receiver is unchanged.
func (m Map[K, V]) Set(k K, v V) Map[K, V] {
	h := m.hash(k)
	if m.root == nil {
		return Map[K, V]{
			root: &node[K, V]{
				datamap: 1 << (h & branchMask),
				keys:    []K{k},
				vals:    []V{v},
			},
			size: 1,
			hash: m.hash,
		}
	}
	root, added := m.set(m.root, 0, h, k, v)
	size := m.size
	if added {
		size++
	}
	return Map[K, V]{root: root, size: size, hash: m.hash}
}

func (m Map[K, V]) set(n *node[K, V], shift uint, h uint64, k K, v V) (*node[K, V], bool) {
	if n.coll {
		for i := range n.keys {
			if n.keys[i] == k {
				c := &node[K, V]{coll: true, keys: n.keys, vals: setAt(n.vals, i, v)}
				return c, false
			}
		}
		return &node[K, V]{
			coll: true,
			keys: append(append(make([]K, 0, len(n.keys)+1), n.keys...), k),
			vals: append(append(make([]V, 0, len(n.vals)+1), n.vals...), v),
		}, true
	}
	bit := uint64(1) << ((h >> shift) & branchMask)
	switch {
	case n.datamap&bit != 0:
		i := bits.OnesCount64(n.datamap & (bit - 1))
		if n.keys[i] == k {
			return &node[K, V]{
				datamap: n.datamap, nodemap: n.nodemap,
				keys: n.keys, vals: setAt(n.vals, i, v), subs: n.subs,
			}, false
		}
		// Slot conflict: push the resident entry and the new one down
		// into a fresh subtree keyed by deeper hash bits.
		sub := m.merge(nil, shift+branchBits, m.hash(n.keys[i]), n.keys[i], n.vals[i], h, k, v)
		j := bits.OnesCount64(n.nodemap & (bit - 1))
		return &node[K, V]{
			datamap: n.datamap &^ bit,
			nodemap: n.nodemap | bit,
			keys:    removeAt(n.keys, i),
			vals:    removeAt(n.vals, i),
			subs:    insertAt(n.subs, j, sub),
		}, true
	case n.nodemap&bit != 0:
		j := bits.OnesCount64(n.nodemap & (bit - 1))
		sub, added := m.set(n.subs[j], shift+branchBits, h, k, v)
		return &node[K, V]{
			datamap: n.datamap, nodemap: n.nodemap,
			keys: n.keys, vals: n.vals, subs: setAt(n.subs, j, sub),
		}, added
	default:
		i := bits.OnesCount64(n.datamap & (bit - 1))
		return &node[K, V]{
			datamap: n.datamap | bit, nodemap: n.nodemap,
			keys: insertAt(n.keys, i, k),
			vals: insertAt(n.vals, i, v),
			subs: n.subs,
		}, true
	}
}

// merge builds the minimal subtree holding two distinct keys, descending
// while their hash chunks collide and dropping into a collision bucket
// once the hash is exhausted. The fresh nodes are stamped with e (nil on
// the persistent path) so a transient build keeps owning the region.
func (m Map[K, V]) merge(e *Edit, shift uint, h1 uint64, k1 K, v1 V, h2 uint64, k2 K, v2 V) *node[K, V] {
	if shift > maxShift {
		return &node[K, V]{coll: true, keys: []K{k1, k2}, vals: []V{v1, v2}, edit: e}
	}
	i1 := (h1 >> shift) & branchMask
	i2 := (h2 >> shift) & branchMask
	if i1 == i2 {
		return &node[K, V]{
			nodemap: 1 << i1,
			subs:    []*node[K, V]{m.merge(e, shift+branchBits, h1, k1, v1, h2, k2, v2)},
			edit:    e,
		}
	}
	if i1 > i2 {
		i1, i2 = i2, i1
		k1, k2 = k2, k1
		v1, v2 = v2, v1
	}
	return &node[K, V]{
		datamap: 1<<i1 | 1<<i2,
		keys:    []K{k1, k2},
		vals:    []V{v1, v2},
		edit:    e,
	}
}

// Delete returns a map without k. The receiver is unchanged; deleting an
// absent key returns the receiver as-is.
func (m Map[K, V]) Delete(k K) Map[K, V] {
	if m.root == nil {
		return m
	}
	root, removed := m.del(m.root, 0, m.hash(k), k)
	if !removed {
		return m
	}
	return Map[K, V]{root: root, size: m.size - 1, hash: m.hash}
}

func (m Map[K, V]) del(n *node[K, V], shift uint, h uint64, k K) (*node[K, V], bool) {
	if n.coll {
		for i := range n.keys {
			if n.keys[i] != k {
				continue
			}
			if len(n.keys) == 1 {
				return nil, true
			}
			return &node[K, V]{coll: true, keys: removeAt(n.keys, i), vals: removeAt(n.vals, i)}, true
		}
		return n, false
	}
	bit := uint64(1) << ((h >> shift) & branchMask)
	switch {
	case n.datamap&bit != 0:
		i := bits.OnesCount64(n.datamap & (bit - 1))
		if n.keys[i] != k {
			return n, false
		}
		if len(n.keys) == 1 && n.nodemap == 0 {
			return nil, true
		}
		return &node[K, V]{
			datamap: n.datamap &^ bit, nodemap: n.nodemap,
			keys: removeAt(n.keys, i), vals: removeAt(n.vals, i), subs: n.subs,
		}, true
	case n.nodemap&bit != 0:
		j := bits.OnesCount64(n.nodemap & (bit - 1))
		sub, removed := m.del(n.subs[j], shift+branchBits, h, k)
		if !removed {
			return n, false
		}
		switch {
		case sub == nil:
			if len(n.subs) == 1 && n.datamap == 0 {
				return nil, true
			}
			return &node[K, V]{
				datamap: n.datamap, nodemap: n.nodemap &^ bit,
				keys: n.keys, vals: n.vals, subs: removeAt(n.subs, j),
			}, true
		case sub.inlineable():
			// Canonical form: a subtree holding a single entry collapses
			// into its parent's datamap, so a key set has exactly one trie
			// shape no matter how it was reached.
			i := bits.OnesCount64(n.datamap & (bit - 1))
			return &node[K, V]{
				datamap: n.datamap | bit, nodemap: n.nodemap &^ bit,
				keys: insertAt(n.keys, i, sub.keys[0]),
				vals: insertAt(n.vals, i, sub.vals[0]),
				subs: removeAt(n.subs, j),
			}, true
		default:
			return &node[K, V]{
				datamap: n.datamap, nodemap: n.nodemap,
				keys: n.keys, vals: n.vals, subs: setAt(n.subs, j, sub),
			}, true
		}
	default:
		return n, false
	}
}

// inlineable reports whether the node holds exactly one entry and no
// subtrees, so a parent can absorb it as an inline entry.
func (n *node[K, V]) inlineable() bool {
	if n.coll {
		return len(n.keys) == 1
	}
	return len(n.subs) == 0 && len(n.keys) == 1
}

// Range calls fn for every entry until fn returns false. The order is
// hash order: fixed for a given key set, unrelated to insertion order.
// fn must not write to the map variable being ranged (take a snapshot
// first — it is free).
func (m Map[K, V]) Range(fn func(K, V) bool) {
	if m.root != nil {
		m.root.visit(fn)
	}
}

func (n *node[K, V]) visit(fn func(K, V) bool) bool {
	if n.coll {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	// Interleave inline entries and subtrees in slot order so iteration
	// follows the hash-path order at every depth.
	di, si := 0, 0
	remaining := n.datamap | n.nodemap
	for remaining != 0 {
		bit := remaining & (-remaining)
		remaining &^= bit
		if n.datamap&bit != 0 {
			if !fn(n.keys[di], n.vals[di]) {
				return false
			}
			di++
		} else {
			if !n.subs[si].visit(fn) {
				return false
			}
			si++
		}
	}
	return true
}

// Keys returns every key, in Range order.
func (m Map[K, V]) Keys() []K {
	out := make([]K, 0, m.size)
	m.Range(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// setAt returns a copy of s with s[i] replaced by v.
func setAt[T any](s []T, i int, v T) []T {
	c := make([]T, len(s))
	copy(c, s)
	c[i] = v
	return c
}

// insertAt returns a copy of s with v inserted before index i.
func insertAt[T any](s []T, i int, v T) []T {
	c := make([]T, len(s)+1)
	copy(c, s[:i])
	c[i] = v
	copy(c[i+1:], s[i:])
	return c
}

// removeAt returns a copy of s without the element at index i.
func removeAt[T any](s []T, i int) []T {
	c := make([]T, len(s)-1)
	copy(c, s[:i])
	copy(c[i:], s[i+1:])
	return c
}
