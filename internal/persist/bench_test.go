package persist

import "testing"

// BenchmarkSet measures the per-write path-copy cost at several sizes —
// the O(log n) that replaces the O(n) full-map clone on the live path.
func BenchmarkSet(b *testing.B) {
	for _, size := range []int{1000, 100000} {
		m := NewIntMap[int64, int]()
		for i := 0; i < size; i++ {
			m = m.Set(int64(i), i)
		}
		b.Run(benchName("n", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.Set(int64(i%size), i)
			}
		})
	}
}

func BenchmarkGet(b *testing.B) {
	for _, size := range []int{1000, 100000} {
		m := NewIntMap[int64, int]()
		for i := 0; i < size; i++ {
			m = m.Set(int64(i), i)
		}
		b.Run(benchName("n", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = m.Get(int64(i % size))
			}
		})
	}
}

// BenchmarkSnapshotVsClone contrasts the O(1) persistent snapshot with
// what the pre-persistent engine paid per Apply batch: cloning the whole
// built-in map.
func BenchmarkSnapshotVsClone(b *testing.B) {
	const size = 100000
	m := NewIntMap[int64, int]()
	ref := make(map[int64]int, size)
	for i := 0; i < size; i++ {
		m = m.Set(int64(i), i)
		ref[int64(i)] = i
	}
	b.Run("persistent-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap := m
			_ = snap.Len()
		}
	})
	b.Run("map-clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := make(map[int64]int, len(ref))
			for k, v := range ref {
				c[k] = v
			}
			_ = len(c)
		}
	})
}

// BenchmarkBulkBuild contrasts cold construction through persistent Sets
// (one path copy per write, O(n log n) discarded nodes) with the
// transient mode (claim-once, mutate in place). b.ReportAllocs makes the
// allocation gap — the reason every bulk path in graph/index goes through
// transients — visible in CI's bench smoke.
func BenchmarkBulkBuild(b *testing.B) {
	const size = 100000
	b.Run("persistent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewIntMap[int64, int]()
			for j := 0; j < size; j++ {
				m = m.Set(int64(j), j)
			}
			if m.Len() != size {
				b.Fatal("bad build")
			}
		}
	})
	b.Run("transient", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := NewIntMap[int64, int]().Transient()
			for j := 0; j < size; j++ {
				t.Set(int64(j), j)
			}
			if m := t.Persistent(); m.Len() != size {
				b.Fatal("bad build")
			}
		}
	})
}

func BenchmarkRange(b *testing.B) {
	m := NewIntMap[int64, int]()
	for i := 0; i < 100000; i++ {
		m = m.Set(int64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		m.Range(func(_ int64, v int) bool {
			sum += v
			return true
		})
	}
}

func benchName(prefix string, n int) string {
	switch {
	case n >= 1000000:
		return prefix + "=" + itoa(n/1000000) + "M"
	case n >= 1000:
		return prefix + "=" + itoa(n/1000) + "k"
	}
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
