package persist

import (
	"cmp"
	"sort"
)

// InsertSorted returns a fresh ascending-sorted slice with v inserted,
// or the original slice when v is already present. It never modifies the
// input, so sorted slices can be shared across snapshots under the same
// copy-on-write discipline as Map versions.
func InsertSorted[T cmp.Ordered](s []T, v T) []T {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	out := make([]T, len(s)+1)
	copy(out, s[:i])
	out[i] = v
	copy(out[i+1:], s[i:])
	return out
}

// RemoveSorted returns a fresh ascending-sorted slice without v, or the
// original slice when v is absent. It never modifies the input.
func RemoveSorted[T cmp.Ordered](s []T, v T) []T {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	out := make([]T, len(s)-1)
	copy(out, s[:i])
	copy(out[i:], s[i+1:])
	return out
}

// ApplySortedDelta returns a fresh ascending-sorted slice with a batch of
// edits applied in one merge pass: keys mapped to true are inserted
// (no-op when already present, like InsertSorted), keys mapped to false
// removed (no-op when absent, like RemoveSorted). This is the bulk
// counterpart for callers that buffer a batch of universe edits and flush
// once — one allocation per batch instead of one O(len(s)) copy per edit.
// The input is never modified; an empty delta returns it unchanged.
func ApplySortedDelta[T cmp.Ordered](s []T, delta map[T]bool) []T {
	if len(delta) == 0 {
		return s
	}
	ins := make([]T, 0, len(delta))
	for k, add := range delta {
		if add {
			ins = append(ins, k)
		}
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	out := make([]T, 0, len(s)+len(ins))
	j := 0
	for _, v := range s {
		for j < len(ins) && ins[j] < v {
			out = append(out, ins[j])
			j++
		}
		if j < len(ins) && ins[j] == v {
			j++ // insert of a present key: keep the resident one
		}
		if del, ok := delta[v]; ok && !del {
			continue // removal
		}
		out = append(out, v)
	}
	return append(out, ins[j:]...)
}
