package persist

import (
	"cmp"
	"sort"
)

// InsertSorted returns a fresh ascending-sorted slice with v inserted,
// or the original slice when v is already present. It never modifies the
// input, so sorted slices can be shared across snapshots under the same
// copy-on-write discipline as Map versions.
func InsertSorted[T cmp.Ordered](s []T, v T) []T {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	out := make([]T, len(s)+1)
	copy(out, s[:i])
	out[i] = v
	copy(out[i+1:], s[i:])
	return out
}

// RemoveSorted returns a fresh ascending-sorted slice without v, or the
// original slice when v is absent. It never modifies the input.
func RemoveSorted[T cmp.Ordered](s []T, v T) []T {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	out := make([]T, len(s)-1)
	copy(out, s[:i])
	copy(out[i:], s[i+1:])
	return out
}
