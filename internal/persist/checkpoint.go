package persist

// Checkpoint encoding for persistent maps. A checkpoint serializes the
// trie as a flat sequence of node records with globally sequential ids,
// children before parents, so records reference their subtrees by id.
// The ids — and the CkptState that remembers which live *node carries
// which id — are what make deltas work: structural sharing means a map
// a few batches after the last checkpoint consists almost entirely of
// trie nodes the previous checkpoint already wrote, and EncodeDelta
// emits only the nodes the state has not seen. A decoder accumulates
// the node table across the checkpoint chain, so a delta file is
// meaningful only on top of its ancestors.
//
// Node record format (all integers unsigned varints):
//
//	branch:    0x00, datamap, nodemap,
//	           popcount(datamap) × (key, value),
//	           popcount(nodemap) × child id
//	collision: 0x01, count, count × (key, value)
//
// Ids start at 1; 0 is the nil root (empty map). Children always carry
// smaller ids than parents, so decoding is a single pass and cycles are
// impossible by construction. Key and value codecs are supplied by the
// caller (the graph layer), keeping this file agnostic of what the map
// stores.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// AppendEncoder serializes v by appending to dst, returning the
// extended slice.
type AppendEncoder[T any] func(dst []byte, v T) []byte

// Decoder deserializes one value from the front of src, returning the
// value and the bytes consumed. It must reject malformed input with an
// error, never panic.
type Decoder[T any] func(src []byte) (T, int, error)

// ErrCkptCorrupt is returned by checkpoint decoding on malformed input.
var ErrCkptCorrupt = errors.New("persist: corrupt checkpoint")

// CkptState tracks which live trie nodes have already been written by a
// checkpoint chain, keyed by pointer identity (nodes are immutable once
// published, so a pointer is a faithful identity). One state serves one
// map lineage; a full checkpoint is simply a delta against a fresh
// state.
type CkptState[K comparable, V any] struct {
	ids  map[*node[K, V]]uint64
	next uint64
}

// NewCkptState returns an empty state: the next EncodeDelta against it
// writes the whole trie (a full checkpoint).
func NewCkptState[K comparable, V any]() *CkptState[K, V] {
	return &CkptState[K, V]{ids: make(map[*node[K, V]]uint64), next: 1}
}

// Emitted returns how many node ids the chain has assigned so far.
func (st *CkptState[K, V]) Emitted() uint64 { return st.next - 1 }

// EncodeDelta appends to dst the records of every trie node of m not
// already covered by the state, children before parents, and returns
// the extended buffer plus the id of m's root (0 for an empty map).
// Afterwards the state covers exactly m's reachable nodes — ids of
// nodes no longer reachable are forgotten (they can never be referenced
// again), keeping the state O(live trie) across arbitrarily long
// chains.
func (st *CkptState[K, V]) EncodeDelta(dst []byte, m Map[K, V], encK AppendEncoder[K], encV AppendEncoder[V]) ([]byte, uint64) {
	var rootID uint64
	if m.root != nil {
		dst, rootID = st.emit(dst, m.root, encK, encV)
	}
	reach := make(map[*node[K, V]]uint64, len(st.ids))
	if m.root != nil {
		st.retain(m.root, reach)
	}
	st.ids = reach
	return dst, rootID
}

func (st *CkptState[K, V]) emit(dst []byte, n *node[K, V], encK AppendEncoder[K], encV AppendEncoder[V]) ([]byte, uint64) {
	if id, ok := st.ids[n]; ok {
		return dst, id
	}
	if n.coll {
		dst = append(dst, 0x01)
		dst = binary.AppendUvarint(dst, uint64(len(n.keys)))
		for i := range n.keys {
			dst = encK(dst, n.keys[i])
			dst = encV(dst, n.vals[i])
		}
	} else {
		var subIDs [64]uint64
		for i, sub := range n.subs {
			dst, subIDs[i] = st.emit(dst, sub, encK, encV)
		}
		dst = append(dst, 0x00)
		dst = binary.AppendUvarint(dst, n.datamap)
		dst = binary.AppendUvarint(dst, n.nodemap)
		for i := range n.keys {
			dst = encK(dst, n.keys[i])
			dst = encV(dst, n.vals[i])
		}
		for i := range n.subs {
			dst = binary.AppendUvarint(dst, subIDs[i])
		}
	}
	id := st.next
	st.next++
	st.ids[n] = id
	return dst, id
}

func (st *CkptState[K, V]) retain(n *node[K, V], reach map[*node[K, V]]uint64) {
	if _, ok := reach[n]; ok {
		return
	}
	reach[n] = st.ids[n]
	for _, sub := range n.subs {
		st.retain(sub, reach)
	}
}

// CkptLoader accumulates decoded trie nodes across a checkpoint chain —
// full checkpoint first, then each delta in order — and materializes
// Maps from root ids.
type CkptLoader[K comparable, V any] struct {
	nodes []*node[K, V] // nodes[id-1]
}

// Decoded returns how many node ids the loader has materialized.
func (ld *CkptLoader[K, V]) Decoded() uint64 { return uint64(len(ld.nodes)) }

// DecodeDelta decodes one checkpoint file's node records, appending to
// the chain's node table. Records must reference only already-decoded
// ids; any malformed framing yields ErrCkptCorrupt.
func (ld *CkptLoader[K, V]) DecodeDelta(data []byte, decK Decoder[K], decV Decoder[V]) error {
	off := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint at offset %d", ErrCkptCorrupt, off)
		}
		off += n
		return v, nil
	}
	readEntry := func(n *node[K, V]) error {
		k, kn, err := decK(data[off:])
		if err != nil {
			return fmt.Errorf("%w: key at offset %d: %v", ErrCkptCorrupt, off, err)
		}
		off += kn
		v, vn, err := decV(data[off:])
		if err != nil {
			return fmt.Errorf("%w: value at offset %d: %v", ErrCkptCorrupt, off, err)
		}
		off += vn
		n.keys = append(n.keys, k)
		n.vals = append(n.vals, v)
		return nil
	}
	for off < len(data) {
		tag := data[off]
		off++
		n := &node[K, V]{}
		switch tag {
		case 0x01:
			n.coll = true
			count, err := readUvarint()
			if err != nil {
				return err
			}
			if count < 1 || count > uint64(len(data)) {
				return fmt.Errorf("%w: collision count %d", ErrCkptCorrupt, count)
			}
			for i := uint64(0); i < count; i++ {
				if err := readEntry(n); err != nil {
					return err
				}
			}
		case 0x00:
			var err error
			if n.datamap, err = readUvarint(); err != nil {
				return err
			}
			if n.nodemap, err = readUvarint(); err != nil {
				return err
			}
			if n.datamap&n.nodemap != 0 {
				return fmt.Errorf("%w: overlapping bitmaps", ErrCkptCorrupt)
			}
			for i := 0; i < bits.OnesCount64(n.datamap); i++ {
				if err := readEntry(n); err != nil {
					return err
				}
			}
			for i := 0; i < bits.OnesCount64(n.nodemap); i++ {
				id, err := readUvarint()
				if err != nil {
					return err
				}
				if id < 1 || id > uint64(len(ld.nodes)) {
					return fmt.Errorf("%w: child id %d of %d known", ErrCkptCorrupt, id, len(ld.nodes))
				}
				n.subs = append(n.subs, ld.nodes[id-1])
			}
		default:
			return fmt.Errorf("%w: unknown node tag %#x", ErrCkptCorrupt, tag)
		}
		ld.nodes = append(ld.nodes, n)
	}
	return nil
}

// Map materializes the map whose root carries rootID (0 for empty) with
// size entries. proto supplies the hash function — it must be the same
// family the encoded map used, or lookups will miss.
func (ld *CkptLoader[K, V]) Map(proto Map[K, V], rootID uint64, size int) (Map[K, V], error) {
	if rootID == 0 {
		if size != 0 {
			return proto, fmt.Errorf("%w: empty root with size %d", ErrCkptCorrupt, size)
		}
		return Map[K, V]{hash: proto.hash}, nil
	}
	if rootID > uint64(len(ld.nodes)) {
		return proto, fmt.Errorf("%w: root id %d of %d known", ErrCkptCorrupt, rootID, len(ld.nodes))
	}
	return Map[K, V]{root: ld.nodes[rootID-1], size: size, hash: proto.hash}, nil
}
