package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// Test codecs: varint ints, length-prefixed strings.

func encInt(dst []byte, v int) []byte { return binary.AppendUvarint(dst, uint64(v)) }

func decInt(src []byte) (int, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad varint")
	}
	return int(v), n, nil
}

func encStr(dst []byte, v string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

func decStr(src []byte) (string, int, error) {
	l, n := binary.Uvarint(src)
	if n <= 0 || l > uint64(len(src)-n) {
		return "", 0, fmt.Errorf("bad string")
	}
	return string(src[n : n+int(l)]), n + int(l), nil
}

// roundTrip encodes m as a full checkpoint and decodes it back.
func roundTrip(t *testing.T, m Map[int, string]) Map[int, string] {
	t.Helper()
	st := NewCkptState[int, string]()
	data, rootID := st.EncodeDelta(nil, m, encInt, encStr)
	var ld CkptLoader[int, string]
	if err := ld.DecodeDelta(data, decInt, decStr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, err := ld.Map(m, rootID, m.Len())
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	return got
}

// entries collects (k, v) pairs in Range order — the canonical
// iteration order a round trip must preserve exactly.
func entries(m Map[int, string]) [][2]any {
	var out [][2]any
	m.Range(func(k int, v string) bool {
		out = append(out, [2]any{k, v})
		return true
	})
	return out
}

func assertSameMap(t *testing.T, want, got Map[int, string]) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len: got %d, want %d", got.Len(), want.Len())
	}
	we, ge := entries(want), entries(got)
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("entry %d in iteration order: got %v, want %v", i, ge[i], we[i])
		}
	}
	want.Range(func(k int, v string) bool {
		if gv, ok := got.Get(k); !ok || gv != v {
			t.Fatalf("Get(%d): got %q,%v want %q", k, gv, ok, v)
		}
		return true
	})
}

func TestCheckpointRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		m := NewIntMap[int, string]()
		n := rng.Intn(400)
		keys := make([]int, 0, n)
		for i := 0; i < n; i++ {
			k := rng.Intn(1000)
			m = m.Set(k, fmt.Sprintf("v%d-%d", k, trial))
			keys = append(keys, k)
		}
		// Random deletions exercise canonical delete shapes.
		for _, k := range keys[:len(keys)/3] {
			if rng.Intn(2) == 0 {
				m = m.Delete(k)
			}
		}
		assertSameMap(t, m, roundTrip(t, m))
	}
}

func TestCheckpointRoundTripCollisions(t *testing.T) {
	// A 4-value hash forces deep slot conflicts and, past maxShift,
	// genuine collision buckets.
	m := NewMap[int, string](func(k int) uint64 { return uint64(k % 4) })
	for i := 0; i < 64; i++ {
		m = m.Set(i, fmt.Sprintf("c%d", i))
	}
	m = m.Delete(12).Delete(40).Delete(3)
	assertSameMap(t, m, roundTrip(t, m))

	// Total collision: everything lives in one bucket.
	one := NewMap[int, string](func(int) uint64 { return 7 })
	for i := 0; i < 20; i++ {
		one = one.Set(i, fmt.Sprintf("b%d", i))
	}
	assertSameMap(t, one, roundTrip(t, one))
}

func TestCheckpointEncodingCanonical(t *testing.T) {
	// Two maps with the same final key set — built in different orders,
	// one via a detour through extra keys since deleted — encode to
	// byte-identical full checkpoints: trie shape is canonical and the
	// emission order is structure-determined.
	a := NewIntMap[int, string]()
	for i := 0; i < 200; i++ {
		a = a.Set(i, fmt.Sprintf("v%d", i))
	}
	b := NewIntMap[int, string]()
	for i := 199; i >= 0; i-- {
		b = b.Set(i, fmt.Sprintf("v%d", i))
	}
	for i := 500; i < 600; i++ {
		b = b.Set(i, "doomed")
	}
	for i := 500; i < 600; i++ {
		b = b.Delete(i)
	}
	da, _ := NewCkptState[int, string]().EncodeDelta(nil, a, encInt, encStr)
	db, _ := NewCkptState[int, string]().EncodeDelta(nil, b, encInt, encStr)
	if !bytes.Equal(da, db) {
		t.Fatalf("canonical encoding violated: %d vs %d bytes", len(da), len(db))
	}
}

func TestCheckpointDeltaChain(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := NewCkptState[int, string]()
	var ld CkptLoader[int, string]

	m := NewIntMap[int, string]()
	for i := 0; i < 500; i++ {
		m = m.Set(i, fmt.Sprintf("base%d", i))
	}
	full, _ := st.EncodeDelta(nil, m, encInt, encStr)
	if err := ld.DecodeDelta(full, decInt, decStr); err != nil {
		t.Fatal(err)
	}

	// A chain of small edit batches: each delta must decode on top of
	// the accumulated table and reproduce the evolving map exactly.
	for step := 0; step < 10; step++ {
		for i := 0; i < 10; i++ {
			k := rng.Intn(600)
			if rng.Intn(5) == 0 {
				m = m.Delete(k)
			} else {
				m = m.Set(k, fmt.Sprintf("s%d-%d", step, k))
			}
		}
		delta, root := st.EncodeDelta(nil, m, encInt, encStr)
		if len(delta) >= len(full)/2 {
			t.Fatalf("step %d: delta %dB not small vs full %dB", step, len(delta), len(full))
		}
		if err := ld.DecodeDelta(delta, decInt, decStr); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		got, err := ld.Map(m, root, m.Len())
		if err != nil {
			t.Fatal(err)
		}
		assertSameMap(t, m, got)
	}
	if st.Emitted() != ld.Decoded() {
		t.Fatalf("id streams diverged: emitted %d, decoded %d", st.Emitted(), ld.Decoded())
	}
}

func TestCheckpointUnchangedMapEmitsNothing(t *testing.T) {
	st := NewCkptState[int, string]()
	m := NewIntMap[int, string]()
	for i := 0; i < 100; i++ {
		m = m.Set(i, "x")
	}
	_, root1 := st.EncodeDelta(nil, m, encInt, encStr)
	delta, root2 := st.EncodeDelta(nil, m, encInt, encStr)
	if len(delta) != 0 || root1 != root2 {
		t.Fatalf("unchanged map re-emitted %d bytes, roots %d/%d", len(delta), root1, root2)
	}
}

func TestCheckpointEmptyMap(t *testing.T) {
	m := NewIntMap[int, string]()
	st := NewCkptState[int, string]()
	data, rootID := st.EncodeDelta(nil, m, encInt, encStr)
	if len(data) != 0 || rootID != 0 {
		t.Fatalf("empty map: %d bytes, root %d", len(data), rootID)
	}
	var ld CkptLoader[int, string]
	got, err := ld.Map(m, 0, 0)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty decode: %v len=%d", err, got.Len())
	}
	if _, err := ld.Map(m, 0, 5); err == nil {
		t.Fatal("size/root mismatch accepted")
	}
}

func TestCheckpointDecodeRejectsGarbage(t *testing.T) {
	m := NewIntMap[int, string]().Set(1, "a").Set(2, "b").Set(900, "c")
	st := NewCkptState[int, string]()
	data, _ := st.EncodeDelta(nil, m, encInt, encStr)
	// Truncations and single-byte mutations must error or decode
	// cleanly — never panic — and dangling child/root ids are caught.
	for i := 0; i < len(data); i++ {
		var ld CkptLoader[int, string]
		_ = ld.DecodeDelta(data[:i], decInt, decStr)
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		var ld2 CkptLoader[int, string]
		_ = ld2.DecodeDelta(mut, decInt, decStr)
	}
	var ld CkptLoader[int, string]
	if err := ld.DecodeDelta(data, decInt, decStr); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Map(m, ld.Decoded()+1, m.Len()); err == nil {
		t.Fatal("dangling root id accepted")
	}
}

func TestCheckpointTransientBuiltMapRoundTrips(t *testing.T) {
	// Maps built through the transient path must checkpoint identically
	// to persistently-built ones: sealed tries are what they are.
	tm := NewIntMap[int, string]().Transient()
	for i := 0; i < 300; i++ {
		tm.Set(i, fmt.Sprintf("t%d", i))
	}
	m := tm.Persistent()
	p := NewIntMap[int, string]()
	for i := 0; i < 300; i++ {
		p = p.Set(i, fmt.Sprintf("t%d", i))
	}
	dm, _ := NewCkptState[int, string]().EncodeDelta(nil, m, encInt, encStr)
	dp, _ := NewCkptState[int, string]().EncodeDelta(nil, p, encInt, encStr)
	if !bytes.Equal(dm, dp) {
		t.Fatal("transient-built map encodes differently")
	}
	assertSameMap(t, m, roundTrip(t, m))
}
