package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Node is an entity in the social content graph: a user, an item (city,
// restaurant, URL, ...), a derived topic, or a group. The multi-valued Types
// field realizes the paper's mandatory, multi-valued type attribute; all
// other structure lives in Attrs. Score carries the relevance score attached
// by a selection or discovery operator; Scored distinguishes "score zero"
// from "never scored".
type Node struct {
	ID     NodeID
	Types  []string
	Attrs  Attrs
	Score  float64
	Scored bool
}

// NewNode constructs a node with the given id and types and an empty
// attribute map.
func NewNode(id NodeID, types ...string) *Node {
	return &Node{ID: id, Types: append([]string(nil), types...), Attrs: Attrs{}}
}

// HasType reports whether the node carries the given type value.
func (n *Node) HasType(t string) bool {
	for _, v := range n.Types {
		if v == t {
			return true
		}
	}
	return false
}

// AddType appends a type value if not already present.
func (n *Node) AddType(t string) {
	if !n.HasType(t) {
		n.Types = append(n.Types, t)
	}
}

// TypeSuperset reports whether the node's type set contains every wanted
// type, per the paper's structural-condition satisfaction rule.
func (n *Node) TypeSuperset(want []string) bool {
	for _, w := range want {
		if !n.HasType(w) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the node. Algebra operators clone before
// attaching scores or aggregation results so inputs stay immutable.
func (n *Node) Clone() *Node {
	c := *n
	c.Types = append([]string(nil), n.Types...)
	c.Attrs = n.Attrs.Clone()
	return &c
}

// SetScore attaches a relevance score to the node.
func (n *Node) SetScore(s float64) {
	n.Score = s
	n.Scored = true
}

// Merge consolidates another node with the same id into this one:
// types and attributes merge with set semantics; the higher score wins.
// Definition 3 requires nodes with the same id to be consolidated in the
// output of set-theoretic operators.
func (n *Node) Merge(other *Node) {
	if other == nil || other.ID != n.ID {
		return
	}
	for _, t := range other.Types {
		n.AddType(t)
	}
	if n.Attrs == nil {
		n.Attrs = Attrs{}
	}
	n.Attrs.Merge(other.Attrs)
	if other.Scored && (!n.Scored || other.Score > n.Score) {
		n.SetScore(other.Score)
	}
}

// Equal reports whether two nodes have the same id, type set, attributes and
// score state.
func (n *Node) Equal(other *Node) bool {
	if n == nil || other == nil {
		return n == other
	}
	if n.ID != other.ID || n.Scored != other.Scored {
		return false
	}
	if n.Scored && n.Score != other.Score {
		return false
	}
	if len(n.Types) != len(other.Types) || !n.TypeSuperset(other.Types) || !other.TypeSuperset(n.Types) {
		return false
	}
	return n.Attrs.Equal(other.Attrs)
}

// Text returns the node's searchable text: types plus all attribute values.
func (n *Node) Text() string {
	ts := strings.ToLower(strings.Join(n.Types, " "))
	at := n.Attrs.Text()
	if ts == "" {
		return at
	}
	if at == "" {
		return ts
	}
	return ts + " " + at
}

// String renders the node in the paper's notation, e.g.
// {id=1; type='user,traveler'; name=John}.
func (n *Node) String() string {
	types := append([]string(nil), n.Types...)
	sort.Strings(types)
	s := fmt.Sprintf("{id=%d; type='%s'", n.ID, strings.Join(types, ","))
	for _, k := range n.Attrs.Keys() {
		s += fmt.Sprintf("; %s=%s", k, strings.Join(n.Attrs[k], ","))
	}
	if n.Scored {
		s += fmt.Sprintf("; score=%.4g", n.Score)
	}
	return s + "}"
}
