package graph

import "sync"

// MutationKind identifies one write operation on a graph.
type MutationKind uint8

const (
	// MutAddNode records a fresh node insertion.
	MutAddNode MutationKind = iota
	// MutPutNode records a node consolidation (Definition 3 merge); the
	// mutation carries the post-merge node state.
	MutPutNode
	// MutAddLink records a fresh link insertion.
	MutAddLink
	// MutPutLink records a link consolidation; the mutation carries the
	// post-merge link state.
	MutPutLink
	// MutRemoveNode records a node deletion. A recorder emits the node's
	// incident MutRemoveLink mutations first, so a changelog replays the
	// same cascade the original graph performed.
	MutRemoveNode
	// MutRemoveLink records a link deletion; the mutation carries a
	// snapshot of the removed link so downstream maintenance (index delta
	// application) knows which activity disappeared.
	MutRemoveLink
)

func (k MutationKind) String() string {
	switch k {
	case MutAddNode:
		return "add-node"
	case MutPutNode:
		return "put-node"
	case MutAddLink:
		return "add-link"
	case MutPutLink:
		return "put-link"
	case MutRemoveNode:
		return "remove-node"
	case MutRemoveLink:
		return "remove-link"
	}
	return "unknown"
}

// Mutation is one entry of a graph changelog: the write operation plus a
// snapshot (deep clone) of the element it touched, taken at emission time
// so later edits to the live element cannot retroactively change history.
// Node is set for node ops, Link for link ops.
type Mutation struct {
	Kind MutationKind
	Node *Node
	Link *Link
	// Prev is the pre-merge state of a MutPutLink consolidation (nil for
	// every other kind). Incremental index maintenance diffs Prev against
	// Link to learn which activities the merge actually added, instead of
	// re-counting facts the link already asserted.
	Prev *Link
}

// SetRecorder installs a changelog callback invoked after every successful
// write operation (AddNode, PutNode, AddLink, PutLink, RemoveNode,
// RemoveLink — Builder writes route through these). A nil fn detaches the
// recorder. The callback runs synchronously on the mutating goroutine;
// keep it cheap and do not mutate the graph from inside it.
func (g *Graph) SetRecorder(fn func(Mutation)) { g.recorder = fn }

// emitNode and emitLink snapshot the element only when a recorder is
// attached, keeping recorder-less graph construction free of clone work.
func (g *Graph) emitNode(kind MutationKind, n *Node) {
	if g.recorder != nil {
		g.recorder(Mutation{Kind: kind, Node: n.Clone()})
	}
}

func (g *Graph) emitLink(kind MutationKind, l *Link) {
	if g.recorder != nil {
		g.recorder(Mutation{Kind: kind, Link: l.Clone()})
	}
}

// Changelog accumulates mutations from one or more graphs. It is safe for
// concurrent appends, so a recorder can stay attached while several
// writers take turns (the graph itself still requires external write
// serialization).
type Changelog struct {
	mu   sync.Mutex
	muts []Mutation
}

// Record appends one mutation.
func (c *Changelog) Record(m Mutation) {
	c.mu.Lock()
	c.muts = append(c.muts, m)
	c.mu.Unlock()
}

// Len returns the number of recorded mutations.
func (c *Changelog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.muts)
}

// Drain returns the recorded mutations and resets the log.
func (c *Changelog) Drain() []Mutation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.muts
	c.muts = nil
	return out
}

// RecordInto attaches a fresh Changelog to the graph as its recorder and
// returns it. Subsequent write operations append to the log until the
// recorder is replaced.
func RecordInto(g *Graph) *Changelog {
	c := &Changelog{}
	g.SetRecorder(c.Record)
	return c
}

// Apply replays one mutation onto the graph. Replay never mutates shared
// element values: consolidations (PutNode/PutLink) merge on a clone of
// the resident element and swap the clone in, so a graph produced by
// ShallowClone can absorb a changelog while readers of the original keep
// a consistent view (the copy-on-write discipline Engine.Apply builds
// its snapshots on). Fresh insertions store a clone of the mutation's
// element, so later edits to the caller's copy cannot leak in. Removals
// of absent elements are no-ops, which makes replaying a changelog that
// already cascaded (MutRemoveNode after its incident MutRemoveLink
// entries) idempotent.
func (g *Graph) Apply(m Mutation) error {
	switch m.Kind {
	case MutAddNode, MutPutNode:
		if m.Node == nil {
			return ErrNilElement
		}
		if g.nodes.Has(m.Node.ID) {
			g.PutNode(m.Node)
			return nil
		}
		return g.AddNode(m.Node.Clone())
	case MutAddLink, MutPutLink:
		if m.Link == nil {
			return ErrNilElement
		}
		if g.links.Has(m.Link.ID) {
			return g.PutLink(m.Link)
		}
		return g.AddLink(m.Link.Clone())
	case MutRemoveNode:
		if m.Node == nil {
			return ErrNilElement
		}
		g.RemoveNode(m.Node.ID)
		return nil
	case MutRemoveLink:
		if m.Link == nil {
			return ErrNilElement
		}
		g.RemoveLink(m.Link.ID)
		return nil
	}
	return ErrNilElement
}

// BulkApplyThreshold is the batch size at which ApplyAll switches to a
// bulk-mutation window (persist transients). Below it the persistent
// per-write path is used unchanged — small live batches keep their exact
// O(delta · log n) profile and never claim trie nodes; at or above it the
// batch amortizes one node claim across every write that lands in the
// same trie region, cutting allocation on large replays (cold loads,
// migration catch-up) several-fold.
const BulkApplyThreshold = 32

// ApplyAll replays mutations in order, stopping at the first error.
// Batches of BulkApplyThreshold or more run inside a bulk-mutation
// window (sealed again before returning, even on error); snapshots taken
// before the call never observe the batch either way.
func (g *Graph) ApplyAll(muts []Mutation) error {
	if len(muts) >= BulkApplyThreshold && g.bulk == nil {
		g.BeginBulk()
		defer g.EndBulk()
	}
	for _, m := range muts {
		if err := g.Apply(m); err != nil {
			return err
		}
	}
	return nil
}
