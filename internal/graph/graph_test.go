package graph

import (
	"errors"
	"reflect"
	"testing"
)

// buildSample constructs the paper's running micro-example: John (user,
// traveler) tagged Denver (item, city) with 'rockies baseball'.
func buildSample(t *testing.T) *Graph {
	t.Helper()
	g := New()
	john := NewNode(1, TypeUser, "traveler")
	john.Attrs.Set("name", "John")
	denver := NewNode(2, TypeItem, "city")
	denver.Attrs.Set("name", "Denver")
	denver.Attrs.Set("keywords", "skiing")
	if err := g.AddNode(john); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(denver); err != nil {
		t.Fatal(err)
	}
	tag := NewLink(12, 1, 2, TypeAct, SubtypeTag)
	tag.Attrs.Set("date", "2008-8-2")
	tag.Attrs.Set("tags", "rockies", "baseball")
	if err := g.AddLink(tag); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddAndLookup(t *testing.T) {
	g := buildSample(t)
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("size = %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if n := g.Node(1); n == nil || n.Attrs.Get("name") != "John" {
		t.Errorf("Node(1) = %v", n)
	}
	if l := g.Link(12); l == nil || !l.HasType(SubtypeTag) {
		t.Errorf("Link(12) = %v", l)
	}
	if g.Node(99) != nil || g.Link(99) != nil {
		t.Error("lookup of absent ids should be nil")
	}
}

func TestAddErrors(t *testing.T) {
	g := buildSample(t)
	if err := g.AddNode(NewNode(1, TypeUser)); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate node error = %v", err)
	}
	if err := g.AddLink(NewLink(12, 1, 2, TypeAct)); !errors.Is(err, ErrDuplicateLink) {
		t.Errorf("duplicate link error = %v", err)
	}
	if err := g.AddLink(NewLink(13, 1, 99, TypeAct)); !errors.Is(err, ErrMissingEnd) {
		t.Errorf("dangling endpoint error = %v", err)
	}
	if err := g.AddNode(nil); !errors.Is(err, ErrNilElement) {
		t.Errorf("nil node error = %v", err)
	}
	if err := g.AddLink(nil); !errors.Is(err, ErrNilElement) {
		t.Errorf("nil link error = %v", err)
	}
}

func TestPutConsolidates(t *testing.T) {
	g := buildSample(t)
	dup := NewNode(1, TypeUser, "expert")
	dup.Attrs.Set("interests", "baseball")
	g.PutNode(dup)
	n := g.Node(1)
	if !n.HasType("expert") || !n.HasType("traveler") {
		t.Errorf("consolidation lost types: %v", n.Types)
	}
	if n.Attrs.Get("interests") != "baseball" || n.Attrs.Get("name") != "John" {
		t.Errorf("consolidation lost attrs: %v", n.Attrs)
	}

	dupL := NewLink(12, 1, 2, TypeAct, SubtypeReview)
	if err := g.PutLink(dupL); err != nil {
		t.Fatal(err)
	}
	if l := g.Link(12); !l.HasType(SubtypeReview) || !l.HasType(SubtypeTag) {
		t.Errorf("link consolidation lost types: %v", l.Types)
	}
	// Consolidating a link with different endpoints is rejected.
	bad := NewLink(12, 2, 1, TypeAct)
	if err := g.PutLink(bad); !errors.Is(err, ErrEndpointChange) {
		t.Errorf("endpoint change error = %v", err)
	}
}

func TestAdjacency(t *testing.T) {
	g := buildSample(t)
	out := g.Out(1)
	if len(out) != 1 || out[0].ID != 12 {
		t.Errorf("Out(1) = %v", out)
	}
	in := g.In(2)
	if len(in) != 1 || in[0].ID != 12 {
		t.Errorf("In(2) = %v", in)
	}
	if g.OutDegree(1) != 1 || g.InDegree(1) != 0 || g.InDegree(2) != 1 {
		t.Error("degree bookkeeping wrong")
	}
	if nb := g.Neighbors(1); !reflect.DeepEqual(nb, []NodeID{2}) {
		t.Errorf("Neighbors(1) = %v", nb)
	}
	if inc := g.Incident(2); len(inc) != 1 {
		t.Errorf("Incident(2) = %v", inc)
	}
}

func TestRemove(t *testing.T) {
	g := buildSample(t)
	g.RemoveLink(12)
	if g.NumLinks() != 0 || g.OutDegree(1) != 0 || g.InDegree(2) != 0 {
		t.Error("RemoveLink left residue")
	}
	g.RemoveLink(12) // idempotent
	g2 := buildSample(t)
	g2.RemoveNode(1)
	if g2.NumNodes() != 1 || g2.NumLinks() != 0 {
		t.Errorf("RemoveNode left %d nodes %d links", g2.NumNodes(), g2.NumLinks())
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("invalid after removal: %v", err)
	}
	g2.RemoveNode(1) // idempotent
}

func TestDeterministicOrder(t *testing.T) {
	g := New()
	for _, id := range []NodeID{5, 3, 9, 1} {
		if err := g.AddNode(NewNode(id, TypeUser)); err != nil {
			t.Fatal(err)
		}
	}
	want := []NodeID{1, 3, 5, 9}
	if got := g.NodeIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("NodeIDs = %v", got)
	}
	ns := g.Nodes()
	for i, n := range ns {
		if n.ID != want[i] {
			t.Errorf("Nodes()[%d].ID = %d", i, n.ID)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	g := buildSample(t)
	c := g.Clone()
	c.Node(1).Attrs.Set("name", "NotJohn")
	c.Link(12).Attrs.Set("tags", "soccer")
	if g.Node(1).Attrs.Get("name") != "John" {
		t.Error("Clone shares node attrs")
	}
	if !g.Link(12).Attrs.Has("tags", "rockies") {
		t.Error("Clone shares link attrs")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
	if !g.Equal(buildSample(t)) {
		t.Error("original changed")
	}
}

func TestShallowCloneShares(t *testing.T) {
	g := buildSample(t)
	// A fan of parallel links exercises multi-entry adjacency lists.
	for id := LinkID(20); id < 28; id++ {
		if err := g.AddLink(NewLink(id, 1, 2, TypeAct)); err != nil {
			t.Fatal(err)
		}
	}
	c := g.ShallowClone()
	if c.Node(1) != g.Node(1) {
		t.Error("ShallowClone should share node values")
	}
	// Adjacency order is deterministic — ascending link id — and identical
	// between a graph and its clones, its deep copy and its induced
	// subgraphs: a regression guard for the map-iteration-order rebuild the
	// old clone paths performed.
	wantOrder := []LinkID{12, 20, 21, 22, 23, 24, 25, 26, 27}
	assertOrder := func(name string, sub *Graph) {
		t.Helper()
		var gotOut, gotIn []LinkID
		for _, l := range sub.Out(1) {
			gotOut = append(gotOut, l.ID)
		}
		for _, l := range sub.In(2) {
			gotIn = append(gotIn, l.ID)
		}
		if !reflect.DeepEqual(gotOut, wantOrder) || !reflect.DeepEqual(gotIn, wantOrder) {
			t.Errorf("%s adjacency order: out=%v in=%v, want %v", name, gotOut, gotIn, wantOrder)
		}
	}
	assertOrder("graph", g)
	assertOrder("shallow clone", c)
	assertOrder("deep clone", g.Clone())
	assertOrder("induced-by-nodes", g.InducedByNodes(map[NodeID]struct{}{1: {}, 2: {}}))
	allLinks := make(map[LinkID]struct{})
	for _, l := range g.Links() {
		allLinks[l.ID] = struct{}{}
	}
	assertOrder("induced-by-links", g.InducedByLinks(allLinks))

	c.RemoveLink(12)
	if g.NumLinks() != 9 {
		t.Error("ShallowClone structure not independent")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("shallow clone invalid: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("origin invalid after clone write: %v", err)
	}
}

// TestSnapshotIsolation pins the persistent-storage contract Engine.Apply
// relies on: a ShallowClone taken before a write burst is bit-for-bit
// stable while its origin keeps mutating — and, run under -race, that
// readers of the snapshot never touch memory the writer is changing.
func TestSnapshotIsolation(t *testing.T) {
	g := New()
	for i := NodeID(1); i <= 200; i++ {
		if err := g.AddNode(NewNode(i, TypeUser)); err != nil {
			t.Fatal(err)
		}
	}
	for i := LinkID(1); i <= 199; i++ {
		if err := g.AddLink(NewLink(i, NodeID(i), NodeID(i+1), TypeConnect)); err != nil {
			t.Fatal(err)
		}
	}
	snap := g.ShallowClone()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for pass := 0; pass < 20; pass++ {
			if snap.NumNodes() != 200 || snap.NumLinks() != 199 {
				t.Errorf("snapshot resized: %v", snap)
				return
			}
			for i := NodeID(1); i <= 200; i++ {
				if !snap.HasNode(i) {
					t.Errorf("snapshot lost node %d", i)
					return
				}
			}
			if err := snap.Validate(); err != nil {
				t.Errorf("snapshot invalid mid-writes: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		id := NodeID(201 + i)
		if err := g.AddNode(NewNode(id, TypeUser)); err != nil {
			t.Fatal(err)
		}
		if err := g.AddLink(NewLink(LinkID(200+i), id, NodeID(1+i%200), TypeConnect)); err != nil {
			t.Fatal(err)
		}
		g.RemoveLink(LinkID(1 + i%150))
	}
	<-done
	if err := g.Validate(); err != nil {
		t.Fatalf("writer graph invalid: %v", err)
	}
}

// TestIDHighWaterMark pins the ID-reuse fix: removing the max-id element
// and allocating a fresh id must not resurrect the retracted one, across
// clones and encode/decode.
func TestIDHighWaterMark(t *testing.T) {
	g := buildSample(t)
	g.RemoveNode(2) // max node id, cascades link 12 (max link id)
	if g.MaxNodeID() != 2 || g.MaxLinkID() != 12 {
		t.Fatalf("high-water marks retreated: node=%d link=%d", g.MaxNodeID(), g.MaxLinkID())
	}
	ids := IDSourceFor(g)
	if n := ids.NextNode(); n != 3 {
		t.Errorf("NextNode after removal = %d, want 3 (no reuse of 2)", n)
	}
	if l := ids.NextLink(); l != 13 {
		t.Errorf("NextLink after removal = %d, want 13 (no reuse of 12)", l)
	}
	for _, c := range map[string]*Graph{"shallow": g.ShallowClone(), "deep": g.Clone()} {
		if c.MaxNodeID() != 2 || c.MaxLinkID() != 12 {
			t.Errorf("clone dropped high-water marks: node=%d link=%d", c.MaxNodeID(), c.MaxLinkID())
		}
	}
}

func TestInducedByNodes(t *testing.T) {
	g := buildSample(t)
	// Only John: the tag link must drop (its target is absent).
	sub := g.InducedByNodes(map[NodeID]struct{}{1: {}})
	if sub.NumNodes() != 1 || sub.NumLinks() != 0 {
		t.Errorf("induced = %v", sub)
	}
	// Both endpoints: link survives.
	sub2 := g.InducedByNodes(map[NodeID]struct{}{1: {}, 2: {}})
	if sub2.NumLinks() != 1 {
		t.Errorf("induced with both endpoints lost link")
	}
	if err := sub2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInducedByLinks(t *testing.T) {
	g := buildSample(t)
	sub := g.InducedByLinks(map[LinkID]struct{}{12: {}})
	if sub.NumNodes() != 2 || sub.NumLinks() != 1 {
		t.Errorf("induced = %v", sub)
	}
	// Unknown link ids are ignored.
	sub2 := g.InducedByLinks(map[LinkID]struct{}{99: {}})
	if sub2.NumNodes() != 0 || sub2.NumLinks() != 0 {
		t.Errorf("induced by unknown link = %v", sub2)
	}
}

func TestEqual(t *testing.T) {
	a, b := buildSample(t), buildSample(t)
	if !a.Equal(b) {
		t.Error("identical graphs unequal")
	}
	b.Node(1).SetScore(0.7)
	if a.Equal(b) {
		t.Error("score difference not detected")
	}
}

func TestMaxIDs(t *testing.T) {
	g := buildSample(t)
	if g.MaxNodeID() != 2 || g.MaxLinkID() != 12 {
		t.Errorf("max ids = %d,%d", g.MaxNodeID(), g.MaxLinkID())
	}
	if New().MaxNodeID() != 0 || New().MaxLinkID() != 0 {
		t.Error("empty graph maxima should be 0")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := buildSample(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("fresh graph invalid: %v", err)
	}
	// Corrupt: delete a node map entry behind the adjacency index's back.
	g.nodes = g.nodes.Delete(2)
	if err := g.Validate(); err == nil {
		t.Error("Validate missed dangling endpoint")
	}
}

func TestIDSource(t *testing.T) {
	g := buildSample(t)
	ids := IDSourceFor(g)
	if n := ids.NextNode(); n != 3 {
		t.Errorf("NextNode = %d, want 3", n)
	}
	if l := ids.NextLink(); l != 13 {
		t.Errorf("NextLink = %d, want 13", l)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder()
	u := b.Node([]string{TypeUser}, "name", "Selma")
	i := b.Node([]string{TypeItem}, "name", "Parc de la Ciutadella")
	l := b.Link(u, i, []string{TypeAct, SubtypeVisit})
	g := b.Graph()
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("builder graph = %v", g)
	}
	if g.Link(l).Src != u || g.Link(l).Tgt != i {
		t.Error("builder link endpoints wrong")
	}
	b.NodeWithID(100, []string{TypeTopic}, "name", "family")
	if next := b.IDs().NextNode(); next != 101 {
		t.Errorf("NodeWithID did not advance allocator: next=%d", next)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNodeLinkString(t *testing.T) {
	g := buildSample(t)
	ns := g.Node(1).String()
	if ns != "{id=1; type='traveler,user'; name=John}" {
		t.Errorf("node String = %q", ns)
	}
	ls := g.Link(12).String()
	if ls != "l12(1->2){type='act,tag'; date=2008-8-2; tags=rockies,baseball}" {
		t.Errorf("link String = %q", ls)
	}
}

func TestDirection(t *testing.T) {
	if Src.Opposite() != Tgt || Tgt.Opposite() != Src {
		t.Error("Opposite broken")
	}
	if Src.String() != "src" || Tgt.String() != "tgt" {
		t.Error("String broken")
	}
	l := NewLink(1, 10, 20, TypeConnect)
	if l.End(Src) != 10 || l.End(Tgt) != 20 {
		t.Error("End broken")
	}
}

// TestPutConsolidationPreservesSnapshots: PutNode/PutLink merge on a
// clone and swap it in, so a ShallowClone taken before the consolidation
// keeps the pre-merge element values.
func TestPutConsolidationPreservesSnapshots(t *testing.T) {
	g := buildSample(t)
	snap := g.ShallowClone()
	n := NewNode(1, TypeUser)
	n.Attrs.Set("name", "Johnny")
	g.PutNode(n)
	l := NewLink(12, 1, 2, TypeAct)
	l.Attrs.Add("tags", "mountains")
	if err := g.PutLink(l); err != nil {
		t.Fatal(err)
	}
	if names := g.Node(1).Attrs.All("name"); len(names) != 2 {
		t.Errorf("merge lost: names = %v, want union [John Johnny]", names)
	}
	if names := snap.Node(1).Attrs.All("name"); len(names) != 1 || names[0] != "John" {
		t.Errorf("snapshot observed consolidation: names = %v", names)
	}
	if tags := snap.Link(12).Attrs.All("tags"); len(tags) != 2 {
		t.Errorf("snapshot observed link consolidation: tags = %v", tags)
	}
	if tags := g.Link(12).Attrs.All("tags"); len(tags) != 3 {
		t.Errorf("link merge lost: tags = %v", tags)
	}
}
